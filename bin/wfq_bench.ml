(* Parameterized benchmark CLI: regenerate individual paper figures with
   custom thread counts, iteration counts and repetitions.

     wfq_bench fig7 --threads 1,2,4,8 --iters 100000 --runs 5
     wfq_bench fig10 --sizes 1,100,10000
     wfq_bench all --paper --csv
*)

open Cmdliner
module F = Wfq_harness.Figures
module R = Wfq_harness.Report

let ints_of_string s =
  String.split_on_char ',' s
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let threads_arg =
  let doc = "Comma-separated thread counts (x axis of figs. 7-9)." in
  Arg.(value & opt (some string) None & info [ "threads" ] ~docv:"LIST" ~doc)

let iters_arg =
  let doc = "Iterations per thread." in
  Arg.(value & opt (some int) None & info [ "iters" ] ~docv:"N" ~doc)

(* The stats subcommand runs at one domain count (it snapshots one
   configuration, it does not sweep an axis), so --threads is a single
   int there rather than the comma list of the figure commands. *)
let threads_single_arg =
  let doc = "Number of worker domains (default 4)." in
  Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"N" ~doc)

let runs_arg =
  let doc = "Repetitions averaged per data point (paper: 10)." in
  Arg.(value & opt (some int) None & info [ "runs" ] ~docv:"N" ~doc)

let sizes_arg =
  let doc = "Comma-separated initial queue sizes (fig. 10)." in
  Arg.(value & opt (some string) None & info [ "sizes" ] ~docv:"LIST" ~doc)

let batch_arg =
  let doc =
    "Also run the batch-native decomposition at this batch size: the \
     per-item WF fps baseline vs the native enqueue_batch/dequeue_batch \
     of the fps, KP, ring and sharded backends on the batch pairs \
     workload (docs/BATCHING.md). Adds batch:-prefixed series to the \
     tables and the JSON."
  in
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"K" ~doc)

let paper_arg =
  let doc = "Use the paper's full parameters (1..16 threads, 1M iters, 10 runs)." in
  Arg.(value & flag & info [ "paper" ] ~doc)

let csv_arg =
  let doc = "Also print machine-readable CSV blocks." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let json_arg =
  let doc =
    "Also write the series as machine-readable JSON (shard series go to \
     BENCH_shard.json; the perf trajectory across PRs is diffed from \
     these files)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let build_scale paper threads iters runs sizes : F.scale =
  let base = if paper then F.paper else F.quick in
  {
    threads =
      (match threads with Some t -> ints_of_string t | None -> base.threads);
    iters = Option.value iters ~default:base.iters;
    runs = Option.value runs ~default:base.runs;
    sizes =
      (match sizes with Some s -> ints_of_string s | None -> base.sizes);
  }

let emit ~csv ~title ~y_label series =
  R.print_table ~title ~x_label:"threads" ~y_label series;
  if csv then R.print_csv ~title series

let run_figure which paper threads iters runs sizes csv =
  let scale = build_scale paper threads iters runs sizes in
  (match which with
  | `Fig7 | `All ->
      emit ~csv ~title:"Figure 7: enqueue-dequeue pairs" ~y_label:"seconds"
        (F.fig7 ~scale ())
  | _ -> ());
  (match which with
  | `Fig8 | `All ->
      emit ~csv ~title:"Figure 8: 50% enqueues" ~y_label:"seconds"
        (F.fig8 ~scale ())
  | _ -> ());
  (match which with
  | `Fig9 | `All ->
      emit ~csv ~title:"Figure 9: impact of the optimizations"
        ~y_label:"seconds" (F.fig9 ~scale ())
  | _ -> ());
  (match which with
  | `Fig10 | `All ->
      let series = F.fig10 ~scale () in
      R.print_table ~title:"Figure 10: live space overhead (WF / LF)"
        ~x_label:"queue size" ~y_label:"live-words ratio" series;
      if csv then R.print_csv ~title:"fig10" series
  | _ -> ());
  match which with
  | `Extended | `All ->
      emit ~csv ~title:"Extension: all implementations (pairs)"
        ~y_label:"seconds"
        (F.extended_pairs ~scale ())
  | _ -> ()

(* Shard-scaling series (lib/shard): the sharded front-end vs the best
   unsharded variant on the relaxed pairs workload. Default thread axis
   reaches 8 domains, where sharding must pay off. *)
(* On a small host, stop-the-world minor collections synchronized
   across 8 domains dominate the default-arena (256k-word) run time and
   bury the queue-level differences in noise; an 8M-word minor heap
   removes that floor and roughly halves wall time at 8 domains. The
   arena is reserved at runtime startup, so it can only be set from the
   environment ([Gc.set] after startup measurably does nothing here):

     OCAMLRUNPARAM='s=8M' wfq_bench shard --json

   The actual arena size is recorded in the JSON meta so results are
   never compared across environments by accident. *)
let canonical_minor_heap_words = 8 * 1024 * 1024

let run_shard paper threads iters runs sizes csv json =
  let minor_words = (Gc.get ()).Gc.minor_heap_size in
  if minor_words < canonical_minor_heap_words then
    Printf.eprintf
      "note: minor heap is %d words; the canonical shard-bench \
       environment is OCAMLRUNPARAM='s=8M' (see EXPERIMENTS.md).\n%!"
      minor_words;
  let scale = build_scale paper threads iters runs sizes in
  let scale =
    if threads = None && not paper then
      { scale with threads = [ 1; 2; 4; 8 ] }
    else scale
  in
  let title = "Shard scaling: enqueue-dequeue pairs (relaxed)" in
  let series = F.shard_scaling ~scale () in
  emit ~csv ~title ~y_label:"seconds" series;
  if json then begin
    let meta =
      [
        ("workload", "pairs_relaxed");
        ("threads",
         String.concat "," (List.map string_of_int scale.threads));
        ("iters", string_of_int scale.iters);
        ("runs", string_of_int scale.runs);
        ("aggregation", "median, interleaved run order");
        ("minor_heap_words", string_of_int minor_words);
        ("y", "seconds");
      ]
    in
    R.write_json ~path:"BENCH_shard.json" ~title ~meta series;
    print_endline "wrote BENCH_shard.json"
  end

let prefix_labels p =
  List.map (fun s -> { s with R.label = p ^ ":" ^ s.R.label })

(* Fast-path/slow-path series: WF fps (unpooled and pooled) and its
   max_failures sweep vs the acceptance baselines (LF, base WF, opt WF
   (1+2)) on the strict pairs workload. Same canonical environment as
   the shard bench. *)
let run_fps paper threads iters runs sizes batch csv json =
  let minor_words = (Gc.get ()).Gc.minor_heap_size in
  if minor_words < canonical_minor_heap_words then
    Printf.eprintf
      "note: minor heap is %d words; the canonical fps-bench environment \
       is OCAMLRUNPARAM='s=8M' (see EXPERIMENTS.md).\n%!"
      minor_words;
  let scale = build_scale paper threads iters runs sizes in
  let scale =
    if threads = None && not paper then
      { scale with threads = [ 1; 2; 4; 8 ] }
    else scale
  in
  let title = "Fast-path/slow-path: enqueue-dequeue pairs" in
  let { F.time; minor_gcs } = F.fps_scaling_gc ~scale () in
  emit ~csv ~title ~y_label:"seconds" time;
  emit ~csv ~title:"Fast-path/slow-path: minor collections per run"
    ~y_label:"minor gcs" minor_gcs;
  let batch_series =
    match batch with
    | None -> []
    | Some k ->
        (* The batch workload needs at least one full round per thread. *)
        let bscale = { scale with F.iters = max scale.F.iters k } in
        let b = F.batch_decomposition ~scale:bscale ~batch:k () in
        emit ~csv
          ~title:(Printf.sprintf "Batch pairs (k=%d): per-item vs native" k)
          ~y_label:"seconds" b.F.batch_time;
        prefix_labels "batch" b.F.batch_time
        @ prefix_labels "batch-minor-gcs" b.F.batch_minor_gcs
  in
  if json then begin
    let meta =
      [
        ("workload", "pairs; batch: series are the batch pairs workload");
        ("threads",
         String.concat "," (List.map string_of_int scale.threads));
        ("iters", string_of_int scale.iters);
        ("runs", string_of_int scale.runs);
        ("batch",
         match batch with None -> "none" | Some k -> string_of_int k);
        ("aggregation", "median, interleaved run order");
        ("minor_heap_words", string_of_int minor_words);
        ("y", "seconds; minor-gcs: series are collections per run");
      ]
    in
    R.write_json ~path:"BENCH_fps.json" ~title ~meta
      (time @ prefix_labels "minor-gcs" minor_gcs @ batch_series);
    print_endline "wrote BENCH_fps.json"
  end

(* Allocation-rate decomposition: words/op and induced GC work of each
   family's headline member vs its segment-pooled counterpart. Unlike
   the timing benches this is robust to host noise — allocation counts
   are near-deterministic — so it is also the CI guard's data source
   (pooled must never allocate more words/op than unpooled). *)
let run_alloc paper threads iters runs sizes csv json =
  let minor_words = (Gc.get ()).Gc.minor_heap_size in
  if minor_words < canonical_minor_heap_words then
    Printf.eprintf
      "note: minor heap is %d words; the canonical alloc-bench \
       environment is OCAMLRUNPARAM='s=8M' (see EXPERIMENTS.md).\n%!"
      minor_words;
  let scale = build_scale paper threads iters runs sizes in
  let scale =
    if threads = None && not paper then
      { scale with threads = [ 1; 2; 4; 8 ] }
    else scale
  in
  let title = "Allocation decomposition: enqueue-dequeue pairs" in
  let a = F.alloc_decomposition ~scale () in
  emit ~csv ~title:"Allocation: minor-heap words per operation"
    ~y_label:"words/op" a.F.words_per_op;
  emit ~csv ~title:"Allocation: words promoted to the major heap per op"
    ~y_label:"promoted/op" a.F.promoted_per_op;
  emit ~csv ~title:"Allocation: minor collections per run"
    ~y_label:"minor gcs" a.F.minor_collections;
  emit ~csv ~title:"Allocation: major collections per run"
    ~y_label:"major gcs" a.F.major_collections;
  if json then begin
    let meta =
      [
        ("workload", "pairs");
        ("threads",
         String.concat "," (List.map string_of_int scale.threads));
        ("iters", string_of_int scale.iters);
        ("runs", string_of_int scale.runs);
        ("aggregation", "median, interleaved run order");
        ("minor_heap_words", string_of_int minor_words);
        ("y",
         "per series-label prefix: words_per_op, promoted_per_op \
          (words/operation); minor_gcs, major_gcs (collections/run)");
      ]
    in
    R.write_json ~path:"BENCH_alloc.json" ~title ~meta
      (prefix_labels "words_per_op" a.F.words_per_op
      @ prefix_labels "promoted_per_op" a.F.promoted_per_op
      @ prefix_labels "minor_gcs" a.F.minor_collections
      @ prefix_labels "major_gcs" a.F.major_collections);
    print_endline "wrote BENCH_alloc.json"
  end

(* Bounded-memory ring decomposition: the ring backend vs the linked
   families' pooled floor on the strict pairs workload — completion
   time, words/op and minor collections from one interleaved
   collection. The words/op series is the ring-smoke CI guard's data
   source: the ring's steady state allocates nothing, so its words/op
   must stay flat and sit strictly below "opt WF (1+2) pooled" (the
   BENCH_alloc floor) at every thread count, and below "WF fps pooled"
   once domains contend (the fps fast path's uncontended allocation
   dropped under the ring's ABA-proofing floor when its retry-loop
   closures were lifted — see EXPERIMENTS.md). *)
let run_ring paper threads iters runs sizes csv json =
  let minor_words = (Gc.get ()).Gc.minor_heap_size in
  if minor_words < canonical_minor_heap_words then
    Printf.eprintf
      "note: minor heap is %d words; the canonical ring-bench \
       environment is OCAMLRUNPARAM='s=8M' (see EXPERIMENTS.md).\n%!"
      minor_words;
  let scale = build_scale paper threads iters runs sizes in
  let scale =
    if threads = None && not paper then
      { scale with threads = [ 1; 2; 4; 8 ] }
    else scale
  in
  let r = F.ring_decomposition ~scale () in
  emit ~csv ~title:"Ring: enqueue-dequeue pairs" ~y_label:"seconds"
    r.F.ring_time;
  emit ~csv ~title:"Ring: minor-heap words per operation"
    ~y_label:"words/op" r.F.ring_words_per_op;
  emit ~csv ~title:"Ring: minor collections per run" ~y_label:"minor gcs"
    r.F.ring_minor_gcs;
  if json then begin
    let meta =
      [
        ("workload", "pairs");
        ("threads",
         String.concat "," (List.map string_of_int scale.threads));
        ("iters", string_of_int scale.iters);
        ("runs", string_of_int scale.runs);
        ("aggregation", "median, interleaved run order");
        ("minor_heap_words", string_of_int minor_words);
        ("y",
         "per series-label prefix: time (seconds), words_per_op \
          (words/operation), minor_gcs (collections/run)");
      ]
    in
    R.write_json ~path:"BENCH_ring.json"
      ~title:"Bounded ring vs pooled linked queues (pairs)" ~meta
      (prefix_labels "time" r.F.ring_time
      @ prefix_labels "words_per_op" r.F.ring_words_per_op
      @ prefix_labels "minor_gcs" r.F.ring_minor_gcs);
    print_endline "wrote BENCH_ring.json"
  end

(* Polylog crossover (Polylog_queue vs the KP family): the measured
   half is the usual interleaved pairs sweep over polylog_series; the
   asymptotic half is a certified step-bound-vs-p table built from
   Wfq_sim.Check.certify on the simulator plane.

   The certification scenario is one active enq+deq fiber among p
   registered threads — deterministic, so DPOR certifies it from a
   single schedule, and it isolates exactly the structural
   p-dependence the paper's bounds are about: the base KP queue scans
   all p state slots per operation (Phase_scan + Help_all) even with
   nobody else running, so its certified bound is Theta(p) (measured:
   43 + 4p), while the polylog tree only grows by one level per
   doubling of p (one +~71-step propagate stage), i.e. Theta(log p)
   with large constants. The table runs p up to 128, past their
   crossover. kp-opt12 and fps appear as flat reference rows: their
   optimizations amortize the helping scan off the solo path (the
   adversarial O(p) cost remains, but needs p concurrently pending
   ops, which no tractable exhaustive exploration reaches — the
   contended p=2 certificates live in wfq_check's litmus library and
   test_polylog instead).

   The growth guard — polylog's certified bound must grow strictly
   slower from the smallest to the largest p than kp-base's — is the
   polylog-smoke CI gate. *)
module Qi = Wfq_core.Queue_intf
module Bks = Wfq_core.Backends
module Ck = Wfq_sim.Check
module Sim_kp = Wfq_core.Kp_queue.Make (Wfq_sim.Sim_atomic)

let cert_sim_ops (module Bk : Qi.BACKEND) : int Qi.instance Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        Bks.instantiate_with
          (module Wfq_sim.Sim_atomic)
          (module Bk)
          ~num_threads ());
    enqueue = (fun i ~tid v -> i.Qi.enq ~tid v);
    dequeue = (fun i ~tid -> i.Qi.deq ~tid);
    contents = (fun i -> i.Qi.dump ());
  }

(* The paper's base configuration is where the Theta(p) scans live; it
   is deliberately not in the registry (its Help_all slow path has
   million-trace DPOR scenarios that would sink every registry-driven
   battery), so the bench builds it directly. *)
let kp_base_sim_ops : int Sim_kp.t Ck.ops =
  {
    Ck.create = (fun ~num_threads -> Sim_kp.create ~num_threads ());
    enqueue = (fun q ~tid v -> Sim_kp.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Sim_kp.dequeue q ~tid);
    contents = Sim_kp.to_list;
  }

let certified_bound (type q) name (queue : q Ck.ops) ~p =
  let scripts = [ `Enq 1; `Deq ] :: List.init (p - 1) (fun _ -> []) in
  match
    Ck.certify ~mode:Ck.Dpor ~max_schedules:10_000 ~bound:1_000_000 ~queue
      ~scripts ()
  with
  | Ok c -> c.Ck.observed_bound
  | Error msg ->
      Printf.eprintf "certify %s at p=%d failed: %s\n%!" name p msg;
      exit 2

let cert_ps = [ 2; 4; 8; 16; 32; 64; 128 ]

let cert_rows : (string * (int -> int)) list =
  [
    ("kp-base", fun p -> certified_bound "kp-base" kp_base_sim_ops ~p);
    ( "kp-opt12",
      fun p ->
        certified_bound "kp-opt12" (cert_sim_ops (Bks.find "kp-opt12")) ~p );
    ( "fps-pooled",
      fun p ->
        certified_bound "fps-pooled"
          (cert_sim_ops (Bks.find "fps-pooled"))
          ~p );
    ( "polylog",
      fun p ->
        certified_bound "polylog" (cert_sim_ops (Bks.find "polylog")) ~p );
  ]

let cert_table () =
  List.map
    (fun (label, bound_at) ->
      {
        R.label;
        points =
          List.map
            (fun p -> (float_of_int p, float_of_int (bound_at p)))
            cert_ps;
      })
    cert_rows

let cert_bound_at series id p =
  let s = List.find (fun s -> s.R.label = id) series in
  List.assoc (float_of_int p) s.R.points

(* growth of the certified bound from the smallest to the largest p *)
let cert_growth series id =
  cert_bound_at series id (List.fold_left max 0 cert_ps)
  -. cert_bound_at series id (List.fold_left min max_int cert_ps)

let run_polylog paper threads iters runs sizes csv json =
  let minor_words = (Gc.get ()).Gc.minor_heap_size in
  if minor_words < canonical_minor_heap_words then
    Printf.eprintf
      "note: minor heap is %d words; the canonical polylog-bench \
       environment is OCAMLRUNPARAM='s=8M' (see EXPERIMENTS.md).\n%!"
      minor_words;
  let scale = build_scale paper threads iters runs sizes in
  let scale =
    if threads = None && not paper then
      { scale with threads = [ 1; 2; 4; 8 ] }
    else scale
  in
  let title = "Polylog crossover: enqueue-dequeue pairs" in
  let { F.time; minor_gcs } = F.polylog_crossover_gc ~scale () in
  emit ~csv ~title ~y_label:"seconds" time;
  emit ~csv ~title:"Polylog crossover: minor collections per run"
    ~y_label:"minor gcs" minor_gcs;
  Printf.printf
    "\ncertified per-fiber step bounds (simulator, one active enq+deq \
     fiber among p registered threads, DPOR-exhaustive):\n%!";
  let cert = cert_table () in
  R.print_table ~title:"Certified step bound vs p" ~x_label:"p"
    ~y_label:"max steps/fiber" cert;
  if csv then R.print_csv ~title:"cert_steps" cert;
  let poly_growth = cert_growth cert "polylog" in
  let kp_growth = cert_growth cert "kp-base" in
  let guard_ok = poly_growth < kp_growth in
  let p_lo = List.fold_left min max_int cert_ps in
  let p_hi = List.fold_left max 0 cert_ps in
  Printf.printf
    "growth guard (p=%d -> p=%d): polylog +%.0f steps vs kp-base \
     +%.0f steps — %s\n%!"
    p_lo p_hi poly_growth kp_growth
    (if guard_ok then "OK (polylog grows strictly slower)"
     else "** GUARD FAILED **");
  (match
     List.find_opt
       (fun p -> cert_bound_at cert "polylog" p < cert_bound_at cert "kp-base" p)
       cert_ps
   with
  | Some p ->
      Printf.printf
        "crossover: polylog's certified bound drops below kp-base's at \
         p=%d (%.0f vs %.0f steps)\n%!"
        p
        (cert_bound_at cert "polylog" p)
        (cert_bound_at cert "kp-base" p)
  | None ->
      Printf.printf
        "crossover: not reached by p=%d (polylog %.0f vs kp-base %.0f \
         steps)\n%!"
        p_hi
        (cert_bound_at cert "polylog" p_hi)
        (cert_bound_at cert "kp-base" p_hi));
  if json then begin
    let meta =
      [
        ("workload", "pairs; cert_steps: series are certified bounds");
        ("threads",
         String.concat "," (List.map string_of_int scale.threads));
        ("iters", string_of_int scale.iters);
        ("runs", string_of_int scale.runs);
        ("aggregation", "median, interleaved run order");
        ("minor_heap_words", string_of_int minor_words);
        ("cert_scenario",
         "one active enq+deq fiber among p registered threads \
          (structural per-op p-dependence; contended p=2 certificates \
          live in wfq_check dpor --queue polylog)");
        ("cert_mode", "Dpor, exhaustive (deterministic scenario)");
        ("cert_growth_guard",
         Printf.sprintf
           "polylog +%.0f vs kp-base +%.0f steps (p=%d->%d): %s"
           poly_growth kp_growth p_lo p_hi
           (if guard_ok then "ok" else "FAILED"));
        ("y",
         "seconds; minor-gcs: collections per run; cert_steps: max \
          certified steps/fiber vs p");
      ]
    in
    R.write_json ~path:"BENCH_polylog.json" ~title ~meta
      (time
      @ prefix_labels "minor-gcs" minor_gcs
      @ prefix_labels "cert_steps" cert);
    print_endline "wrote BENCH_polylog.json"
  end;
  if not guard_ok then exit 1

let polylog_cmd =
  let term =
    Term.(
      const run_polylog
      $ paper_arg $ threads_arg $ iters_arg $ runs_arg $ sizes_arg
      $ csv_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "polylog"
       ~doc:
         "Helping-cost crossover: the polylog tournament-tree queue \
          (Polylog_queue, O(log^2 p) steps/op) vs opt WF (1+2) and WF \
          fps pooled on the pairs workload, plus the certified \
          step-bound-vs-p table (Wfq_sim.Check.certify, solo fiber \
          among p threads, up to p=128) with the growth guard \
          (polylog must grow strictly slower than base KP); --json \
          writes BENCH_polylog.json. Exits 1 on guard failure.")
    term

(* Observability snapshot: instrumented multi-domain runs populating the
   Wfq_obsv metric registry (phase lag, slow-path rate, pool hit rate,
   shard steals, ...), a human report, the disabled-vs-enabled overhead
   guard, and --json for the BENCH_stats.json artifact CI diffs. *)
let run_stats threads iters runs json =
  let module OB = Wfq_harness.Obsv_bench in
  let threads = Option.value threads ~default:4 in
  let iters = Option.value iters ~default:20_000 in
  let runs = Option.value runs ~default:50 in
  Printf.printf
    "collecting instrumented runs (%d domains x %d iters per queue)...\n%!"
    threads iters;
  let reg, lines = OB.collect ~threads ~iters () in
  print_endline "";
  print_endline "=== metric registry ===";
  Wfq_obsv.Metrics.dump reg stdout;
  print_endline "";
  print_endline "=== per-queue timings ===";
  List.iter
    (fun l ->
      Printf.printf "%-12s %d domains  %9d ops  %8.3f s  %10.0f ops/s\n"
        l.OB.queue l.OB.threads l.OB.ops l.OB.seconds
        (float_of_int l.OB.ops /. l.OB.seconds))
    lines;
  print_endline "";
  Printf.printf "=== overhead guard (budget: enabled/disabled <= %.2f) ===\n%!"
    OB.overhead_budget;
  let overheads = OB.measure_overhead ~iters ~runs () in
  List.iter
    (fun o ->
      Printf.printf
        "%-12s disabled %8.1f ns/op   enabled %8.1f ns/op   ratio %.4f%s\n"
        o.OB.oh_queue o.OB.disabled_ns_per_op o.OB.enabled_ns_per_op
        o.OB.ratio
        (if o.OB.ratio > OB.overhead_budget then "  ** OVER BUDGET **"
         else ""))
    overheads;
  if json then begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      "  \"title\": \"Observability snapshot: instrumented pairs runs\",\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"meta\": {\"threads\": %d, \"iters\": %d, \"runs\": %d, \
          \"workload\": \"pairs (shard_rr4: relaxed)\", \
          \"latency_unit\": \"ns (bechamel monotonic clock)\", \
          \"minor_heap_words\": %d},\n"
         threads iters runs (Gc.get ()).Gc.minor_heap_size);
    Buffer.add_string buf "  \"runs\": [\n";
    List.iteri
      (fun i l ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"queue\": \"%s\", \"threads\": %d, \"iters\": %d, \
              \"seconds\": %g, \"ops\": %d}"
             l.OB.queue l.OB.threads l.OB.iters l.OB.seconds l.OB.ops))
      lines;
    Buffer.add_string buf "\n  ],\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"overhead\": {\"budget\": %g, \"queues\": [\n"
         OB.overhead_budget);
    List.iteri
      (fun i o ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"queue\": \"%s\", \"disabled_ns_per_op\": %g, \
              \"enabled_ns_per_op\": %g, \"ratio\": %g}"
             o.OB.oh_queue o.OB.disabled_ns_per_op o.OB.enabled_ns_per_op
             o.OB.ratio))
      overheads;
    Buffer.add_string buf "\n  ]},\n  ";
    Wfq_obsv.Metrics.to_json_body buf reg;
    Buffer.add_string buf "\n}\n";
    let oc = open_out "BENCH_stats.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "wrote BENCH_stats.json"
  end

(* Scheduler service scenario (lib/sched): request fan-out with mixed
   CPU work and queue hops over the effect-based fiber scheduler, swept
   across run-queue backends and domain counts. *)
let domains_arg =
  let doc = "Comma-separated worker-domain counts (default 1,2,4)." in
  Arg.(value & opt (some string) None & info [ "domains" ] ~docv:"LIST" ~doc)

let requests_arg =
  let doc = "Request fibers per run (default 200)." in
  Arg.(value & opt (some int) None & info [ "requests" ] ~docv:"N" ~doc)

let fanout_arg =
  let doc = "Subfibers spawned and awaited per request (default 8)." in
  Arg.(value & opt (some int) None & info [ "fanout" ] ~docv:"N" ~doc)

let work_arg =
  let doc = "CPU-burn loop iterations per request stage (default 400)." in
  Arg.(value & opt (some int) None & info [ "work" ] ~docv:"N" ~doc)

let run_sched domains requests fanout work runs csv json =
  let module SB = Wfq_harness.Sched_bench in
  let scale =
    {
      SB.domains =
        (match domains with
        | Some d -> ints_of_string d
        | None -> SB.default.SB.domains);
      requests = Option.value requests ~default:SB.default.SB.requests;
      fanout = Option.value fanout ~default:SB.default.SB.fanout;
      work = Option.value work ~default:SB.default.SB.work;
      runs = Option.value runs ~default:SB.default.SB.runs;
    }
  in
  let lines = SB.service ~scale () in
  Printf.printf
    "%-12s %7s %9s %12s %12s %12s %8s\n" "backend" "domains" "fibers"
    "req/s" "p50 ns" "p99 ns" "steals";
  List.iter
    (fun l ->
      Printf.printf "%-12s %7d %9d %12.0f %12.0f %12.0f %8d\n"
        l.SB.backend l.SB.domains l.SB.fibers l.SB.throughput
        l.SB.fiber_p50_ns l.SB.fiber_p99_ns l.SB.steals_won)
    lines;
  let title = "Scheduler service scenario: request fan-out" in
  let series = SB.series lines in
  if csv then R.print_csv ~title series;
  if json then begin
    let meta =
      [
        ("workload", "request fan-out; subfibers yield once + cpu burn");
        ("domains",
         String.concat ","
           (List.map string_of_int scale.SB.domains));
        ("requests", string_of_int scale.SB.requests);
        ("fanout", string_of_int scale.SB.fanout);
        ("work", string_of_int scale.SB.work);
        ("runs", string_of_int scale.SB.runs);
        ("aggregation", "median over runs, per field");
        ("minor_heap_words",
         string_of_int (Gc.get ()).Gc.minor_heap_size);
        ("x", "worker domains");
        ("y",
         "per series-label prefix: throughput (requests/s), \
          fiber_p50_ns / fiber_p99_ns (spawn-to-completion), steals \
          (tasks stolen per run)");
      ]
    in
    R.write_json ~path:"BENCH_sched.json" ~title ~meta series;
    print_endline "wrote BENCH_sched.json"
  end

let sched_cmd =
  let term =
    Term.(
      const run_sched
      $ domains_arg $ requests_arg $ fanout_arg $ work_arg $ runs_arg
      $ csv_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "End-to-end service scenario on the effect-based fiber scheduler \
          (lib/sched): request fan-out with CPU work and queue hops over \
          the kp_opt12 / fps_pooled / shard_rr2 / ring run-queue \
          backends; --json writes BENCH_sched.json.")
    term

let stats_cmd =
  let term =
    Term.(const run_stats $ threads_single_arg $ iters_arg $ runs_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Observability snapshot (Wfq_obsv): run instrumented pairs \
          workloads over opt WF (1+2), WF fps (pooled and forced-slow), \
          the sharded front-end and the tid registry; print the metric \
          registry and the 2% overhead guard; --json writes \
          BENCH_stats.json.")
    term

let alloc_cmd =
  let term =
    Term.(
      const run_alloc
      $ paper_arg $ threads_arg $ iters_arg $ runs_arg $ sizes_arg $ csv_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:
         "Allocation-rate decomposition: minor-heap words/op, promoted \
          words/op and collection counts for LF / opt WF (1+2) / WF fps \
          against their segment-pooled counterparts; --json writes \
          BENCH_alloc.json.")
    term

let ring_cmd =
  let term =
    Term.(
      const run_ring
      $ paper_arg $ threads_arg $ iters_arg $ runs_arg $ sizes_arg $ csv_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "ring"
       ~doc:
         "Bounded-memory ring (Ring_queue) vs opt WF (1+2), its pooled \
          counterpart and WF fps pooled: completion time, words/op and \
          minor collections on the pairs workload; --json writes \
          BENCH_ring.json (the ring-smoke CI guard's input).")
    term

let fps_cmd =
  let term =
    Term.(
      const run_fps
      $ paper_arg $ threads_arg $ iters_arg $ runs_arg $ sizes_arg $ batch_arg
      $ csv_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "fps"
       ~doc:
         "Fast-path/slow-path queue (Kp_queue_fps) vs LF / base WF / opt \
          WF (1+2), with the max_failures sweep; --batch K adds the \
          batch-native decomposition; --json writes BENCH_fps.json.")
    term

(* All paper figures in one canonical dataset (bench hygiene: one file
   to diff across PRs for the core figures, alongside the per-extension
   BENCH_*.json files). *)
let run_figures paper threads iters runs sizes batch csv json =
  let minor_words = (Gc.get ()).Gc.minor_heap_size in
  let scale = build_scale paper threads iters runs sizes in
  (* The _gc variants project time and GC activity from the same runs,
     so the GC columns cost no extra benchmarking. *)
  let f7 = F.fig7_gc ~scale () in
  let f8 = F.fig8_gc ~scale () in
  let f9 = F.fig9_gc ~scale () in
  let f10 = F.fig10 ~scale () in
  emit ~csv ~title:"Figure 7: enqueue-dequeue pairs" ~y_label:"seconds"
    f7.F.time;
  emit ~csv ~title:"Figure 7 (GC): minor collections per run"
    ~y_label:"minor gcs" f7.F.minor_gcs;
  emit ~csv ~title:"Figure 8: 50% enqueues" ~y_label:"seconds" f8.F.time;
  emit ~csv ~title:"Figure 8 (GC): minor collections per run"
    ~y_label:"minor gcs" f8.F.minor_gcs;
  emit ~csv ~title:"Figure 9: impact of the optimizations" ~y_label:"seconds"
    f9.F.time;
  emit ~csv ~title:"Figure 9 (GC): minor collections per run"
    ~y_label:"minor gcs" f9.F.minor_gcs;
  R.print_table ~title:"Figure 10: live space overhead (WF / LF)"
    ~x_label:"queue size" ~y_label:"live-words ratio" f10;
  let batch_series =
    match batch with
    | None -> []
    | Some k ->
        let bscale = { scale with F.iters = max scale.F.iters k } in
        let b = F.batch_decomposition ~scale:bscale ~batch:k () in
        emit ~csv
          ~title:(Printf.sprintf "Batch pairs (k=%d): per-item vs native" k)
          ~y_label:"seconds" b.F.batch_time;
        emit ~csv
          ~title:
            (Printf.sprintf "Batch pairs (k=%d, GC): minor collections" k)
          ~y_label:"minor gcs" b.F.batch_minor_gcs;
        prefix_labels "batch" b.F.batch_time
        @ prefix_labels "batch-minor-gcs" b.F.batch_minor_gcs
  in
  if json then begin
    let series =
      prefix_labels "fig7" f7.F.time
      @ prefix_labels "fig7-minor-gcs" f7.F.minor_gcs
      @ prefix_labels "fig8" f8.F.time
      @ prefix_labels "fig8-minor-gcs" f8.F.minor_gcs
      @ prefix_labels "fig9" f9.F.time
      @ prefix_labels "fig9-minor-gcs" f9.F.minor_gcs
      @ prefix_labels "fig10" f10
      @ batch_series
    in
    let meta =
      [
        ("workloads",
         "fig7/fig9 pairs; fig8 p_enq; fig10 live-space ratio; batch: \
          series are the batch pairs workload (docs/BATCHING.md)");
        ("threads",
         String.concat "," (List.map string_of_int scale.threads));
        ("iters", string_of_int scale.iters);
        ("runs", string_of_int scale.runs);
        ("batch",
         match batch with None -> "none" | Some k -> string_of_int k);
        ("aggregation",
         "mean, sequential run order; batch: median, interleaved");
        ("minor_heap_words", string_of_int minor_words);
        ("x", "threads for fig7-9 and batch labels; initial queue size \
               for fig10");
        ("y",
         "seconds for fig7-9 and batch; live-words ratio for fig10; \
          *-minor-gcs series are minor collections per run");
      ]
    in
    R.write_json ~path:"BENCH_figures.json"
      ~title:"Paper figures 7-10 (combined)" ~meta series;
    print_endline "wrote BENCH_figures.json"
  end

let figures_cmd =
  let term =
    Term.(
      const run_figures
      $ paper_arg $ threads_arg $ iters_arg $ runs_arg $ sizes_arg $ batch_arg
      $ csv_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Every paper figure (7-10) in one run; --batch K adds the \
          batch-native decomposition (per-item WF fps vs native batch \
          backends); --json writes the combined BENCH_figures.json with \
          figN- and batch-prefixed series labels.")
    term

let shard_cmd =
  let term =
    Term.(
      const run_shard
      $ paper_arg $ threads_arg $ iters_arg $ runs_arg $ sizes_arg $ csv_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Shard-count scaling of the sharded front-end (lib/shard) vs opt \
          WF (1+2); --json writes BENCH_shard.json.")
    term

let figure_cmd which name doc =
  let term =
    Term.(
      const (run_figure which)
      $ paper_arg $ threads_arg $ iters_arg $ runs_arg $ sizes_arg $ csv_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

(* Open-loop latency sweep (docs/LATENCY.md): seeded arrival schedules
   drive every registry backend at fixed offered loads, and every
   latency is measured from the event's intended send time on the
   monotonic clock — a saturated or stalled queue shows the queueing
   delay it caused instead of silently throttling the load generator
   (coordinated omission). The sojourn-p99-vs-load curve's saturation
   knee is the headline SLO statistic and the CI gate's input. *)
module OL = Wfq_harness.Open_loop
module Arr = Wfq_harness.Arrivals

let floats_of_string s =
  String.split_on_char ',' s
  |> List.filter (fun x -> x <> "")
  |> List.map float_of_string

let rates_arg =
  let doc = "Comma-separated offered loads in events/second (x axis)." in
  Arg.(
    value
    & opt string "2000,4000,8000,16000"
    & info [ "rates" ] ~docv:"LIST" ~doc)

let events_arg =
  let doc = "Events per (backend, rate) point." in
  Arg.(value & opt int 4000 & info [ "events" ] ~docv:"N" ~doc)

let producers_arg =
  let doc = "Producer domains following the arrival schedule." in
  Arg.(value & opt int 1 & info [ "producers" ] ~docv:"N" ~doc)

let consumers_arg =
  let doc = "Consumer domains." in
  Arg.(value & opt int 1 & info [ "consumers" ] ~docv:"N" ~doc)

let pattern_arg =
  let doc =
    "Arrival pattern: $(b,poisson) (exponential interarrivals) or \
     $(b,burst) (on/off Markov-modulated; see --duty, --burst-len)."
  in
  Arg.(
    value
    & opt (enum [ ("poisson", `Poisson); ("burst", `Burst) ]) `Poisson
    & info [ "pattern" ] ~docv:"NAME" ~doc)

let duty_arg =
  let doc = "Burst pattern: fraction of time spent in the ON state." in
  Arg.(value & opt float 0.2 & info [ "duty" ] ~docv:"F" ~doc)

let burst_len_arg =
  let doc = "Burst pattern: mean events per ON burst." in
  Arg.(value & opt int 32 & info [ "burst-len" ] ~docv:"N" ~doc)

let skew_arg =
  let doc =
    "Producer-affinity skew: events are assigned to producers with \
     Zipf-like weights (i+1)^-skew; 0 is uniform."
  in
  Arg.(value & opt float 0.0 & info [ "skew" ] ~docv:"F" ~doc)

let seed_arg =
  let doc = "Schedule seed (deterministic arrivals per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let stall_us_arg =
  let doc =
    "Inject a slow consumer: consumer 0 goes dark for this many \
     microseconds after its --stall-after-th dequeue (0 disables)."
  in
  Arg.(value & opt int 0 & info [ "stall-us" ] ~docv:"US" ~doc)

let stall_after_arg =
  let doc = "Dequeues by consumer 0 before the injected stall." in
  Arg.(value & opt int 100 & info [ "stall-after" ] ~docv:"N" ~doc)

let knee_mult_arg =
  let doc =
    "Saturation-knee multiplier: the knee is the first offered load \
     whose sojourn p99 exceeds this multiple of the lowest load's p99."
  in
  Arg.(value & opt float 4.0 & info [ "knee-mult" ] ~docv:"F" ~doc)

let knee_floor_arg =
  let doc =
    "Regression gate: exit 3 if any backend's saturation knee falls \
     below this offered load (events/s). A backend whose tail never \
     crosses the knee threshold passes."
  in
  Arg.(value & opt (some float) None & info [ "knee-floor" ] ~docv:"RATE" ~doc)

let backends_arg =
  let doc =
    "Comma-separated registry backend ids to sweep (default: all; see \
     --list-backends)."
  in
  Arg.(value & opt (some string) None & info [ "backends" ] ~docv:"LIST" ~doc)

let run_openloop rates events producers consumers pattern duty burst_len skew
    seed stall_us stall_after knee_mult knee_floor backends json =
  let rates = List.sort_uniq compare (floats_of_string rates) in
  if rates = [] then begin
    prerr_endline "latency-openloop: --rates must name at least one load";
    exit 2
  end;
  let pattern =
    match pattern with
    | `Poisson -> Arr.Poisson
    | `Burst -> Arr.Burst { duty; burst_len }
  in
  let stall =
    if stall_us > 0 then
      Some { OL.victim = 0; after = stall_after; duration_ns = stall_us * 1000 }
    else None
  in
  let selected =
    match backends with
    | None -> Bks.all ()
    | Some ids ->
        String.split_on_char ',' ids
        |> List.filter (fun x -> x <> "")
        |> List.map Bks.find
  in
  Printf.printf
    "open-loop sweep: %s arrivals, %d events/point, %dP/%dC, skew %g, \
     seed %d%s\n\n"
    (Arr.pattern_name pattern) events producers consumers skew seed
    (match stall with
    | None -> ""
    | Some s ->
        Printf.sprintf ", stall %dus after %d dequeues"
          (s.OL.duration_ns / 1000) s.OL.after);
  Printf.printf "%-16s %10s %10s %12s %12s %12s %12s\n" "backend" "offered"
    "achieved" "enq p99 ns" "soj p50 ns" "soj p99 ns" "soj p999 ns";
  let results =
    List.map
      (fun (module B : Qi.BACKEND) ->
        let impl = OL.impl_of_backend (module B) in
        let pts =
          List.map
            (fun rate ->
              let cfg =
                {
                  OL.producers;
                  consumers;
                  rate;
                  events;
                  pattern;
                  skew;
                  seed;
                  stall;
                }
              in
              let r = OL.run cfg impl in
              Printf.printf
                "%-16s %10.0f %10.0f %12.0f %12.0f %12.0f %12.0f\n%!" B.id
                rate r.OL.achieved_rate r.OL.enq.OL.p99 r.OL.sojourn.OL.p50
                r.OL.sojourn.OL.p99 r.OL.sojourn.OL.p999;
              (rate, r))
            rates
        in
        (B.id, pts))
      selected
  in
  let knees =
    List.map
      (fun (id, pts) ->
        ( id,
          OL.knee ~mult:knee_mult
            (List.map (fun (rate, r) -> (rate, r.OL.sojourn.OL.p99)) pts) ))
      results
  in
  Printf.printf
    "\nsaturation knees (first load with sojourn p99 > %gx the lowest \
     load's):\n"
    knee_mult;
  List.iter
    (fun (id, knee) ->
      match knee with
      | Some k -> Printf.printf "  %-16s %10.0f events/s\n" id k
      | None -> Printf.printf "  %-16s %10s\n" id "not reached")
    knees;
  if json then begin
    let series =
      List.concat_map
        (fun (id, pts) ->
          let line name proj =
            {
              R.label = name ^ ":" ^ id;
              points = List.map (fun (rate, r) -> (rate, proj r)) pts;
            }
          in
          [
            line "enq_p50" (fun r -> r.OL.enq.OL.p50);
            line "enq_p99" (fun r -> r.OL.enq.OL.p99);
            line "enq_p999" (fun r -> r.OL.enq.OL.p999);
            line "sojourn_p50" (fun r -> r.OL.sojourn.OL.p50);
            line "sojourn_p99" (fun r -> r.OL.sojourn.OL.p99);
            line "sojourn_p999" (fun r -> r.OL.sojourn.OL.p999);
            line "achieved_rate" (fun r -> r.OL.achieved_rate);
          ])
        results
    in
    let meta =
      [
        ("workload", "open-loop arrivals; latency from intended send time");
        ("pattern", Arr.pattern_name pattern);
        ("rates", String.concat "," (List.map string_of_float rates));
        ("events", string_of_int events);
        ("producers", string_of_int producers);
        ("consumers", string_of_int consumers);
        ("skew", string_of_float skew);
        ("seed", string_of_int seed);
        ("stall",
         (match stall with
         | None -> "none"
         | Some s ->
             Printf.sprintf "victim 0, %d ns after %d dequeues"
               s.OL.duration_ns s.OL.after));
        ("knee_mult", string_of_float knee_mult);
        ("knee",
         String.concat "; "
           (List.map
              (fun (id, knee) ->
                Printf.sprintf "%s=%s" id
                  (match knee with
                  | Some k -> Printf.sprintf "%.0f" k
                  | None -> "none"))
              knees));
        ("minor_heap_words", string_of_int (Gc.get ()).Gc.minor_heap_size);
        ("x", "offered load, events/s");
        ("y",
         "per series-label prefix: enq_* (enqueue completion - intended \
          send, ns), sojourn_* (dequeue completion - intended send, \
          ns), achieved_rate (events/s)");
      ]
    in
    R.write_json ~path:"BENCH_latency_openloop.json"
      ~title:"Open-loop latency vs offered load" ~meta series;
    print_endline "wrote BENCH_latency_openloop.json"
  end;
  match knee_floor with
  | None -> ()
  | Some floor ->
      let regressed =
        List.filter_map
          (fun (id, knee) ->
            match knee with Some k when k < floor -> Some (id, k) | _ -> None)
          knees
      in
      if regressed <> [] then begin
        List.iter
          (fun (id, k) ->
            Printf.eprintf
              "knee regression: %s saturates at %.0f events/s (floor \
               %.0f)\n%!"
              id k floor)
          regressed;
        exit 3
      end

let openloop_cmd =
  let term =
    Term.(
      const run_openloop
      $ rates_arg $ events_arg $ producers_arg $ consumers_arg $ pattern_arg
      $ duty_arg $ burst_len_arg $ skew_arg $ seed_arg $ stall_us_arg
      $ stall_after_arg $ knee_mult_arg $ knee_floor_arg $ backends_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "latency-openloop"
       ~doc:
         "Open-loop SLO latency sweep: seeded Poisson or burst arrivals \
          drive each registry backend at fixed offered loads; p50/p99/p999 \
          of enqueue latency and end-to-end sojourn are measured from the \
          intended send time (coordinated-omission-safe, docs/LATENCY.md) \
          and the sojourn-p99 saturation knee is reported per backend. \
          --json writes BENCH_latency_openloop.json; --knee-floor RATE \
          exits 3 if any backend's knee regresses below RATE.")
    term

let cmds =
  [
    figure_cmd `Fig7 "fig7" "Enqueue-dequeue pairs benchmark (paper Fig. 7).";
    figure_cmd `Fig8 "fig8" "50% enqueues benchmark (paper Fig. 8).";
    figure_cmd `Fig9 "fig9" "Optimization ablation (paper Fig. 9).";
    figure_cmd `Fig10 "fig10" "Live-space overhead (paper Fig. 10).";
    figure_cmd `Extended "extended"
      "All implementations on the pairs benchmark (extension).";
    shard_cmd;
    sched_cmd;
    openloop_cmd;
    fps_cmd;
    polylog_cmd;
    ring_cmd;
    alloc_cmd;
    stats_cmd;
    figures_cmd;
    figure_cmd `All "all" "Every figure in sequence.";
  ]

(* wfq_bench --list-backends: the registry, one row per backend — the
   single source of truth the benches, the conformance battery, the
   shard front-end and the scheduler all instantiate from. *)
let print_backends () =
  Printf.printf "%-16s %-22s %-8s %-10s %s\n" "id" "label" "family"
    "capacity" "sim";
  List.iter
    (fun (module B : Wfq_core.Queue_intf.BACKEND) ->
      Printf.printf "%-16s %-22s %-8s %-10s %s\n" B.id B.label B.family
        (match B.capacity with
        | None -> "unbounded"
        | Some c -> string_of_int c)
        (if B.sim_safe then "yes" else "no"))
    (Wfq_core.Backends.all ())

let list_backends_arg =
  let doc =
    "List every backend registered in Wfq_core.Backends (id, label, \
     family, capacity, simulator-safety) and exit."
  in
  Arg.(value & flag & info [ "list-backends" ] ~doc)

let default =
  Term.(
    ret
      (const (fun list ->
           if list then begin
             print_backends ();
             `Ok ()
           end
           else `Help (`Pager, None))
      $ list_backends_arg))

let () =
  let info =
    Cmd.info "wfq_bench" ~version:"1.0"
      ~doc:
        "Benchmarks for the Kogan-Petrank wait-free queue reproduction \
         (PPoPP 2011)."
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
