(* Model-checking CLI: run DPOR (exhaustive-equivalent), systematic
   preemption-bounded exploration, or random-schedule fuzzing of a queue
   implementation under the deterministic simulator, checking
   linearizability of every explored interleaving.

     wfq_check dpor --queue kp-opt12 --out _counterexamples
     wfq_check explore --queue kp-base --budget 2
     wfq_check fuzz --queue kp-hp --count 5000
     wfq_check stall --queue kp-base

   [dpor] exits non-zero on a violation and writes the shrunk
   counterexample (schedule, history, checker verdict) under --out, for
   CI to upload as a build artifact. *)

open Cmdliner
module S = Wfq_sim.Scheduler
module E = Wfq_sim.Explore
module Sh = Wfq_sim.Shrink
module Ck = Wfq_sim.Check
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker
module SA = Wfq_sim.Sim_atomic
module Ms = Wfq_core.Ms_queue.Make (SA)
module Kp = Wfq_core.Kp_queue.Make (SA)
module Kp_hp = Wfq_core.Kp_queue_hp.Make (SA)

module Fps = Wfq_core.Kp_queue_fps.Make (SA)
module Ring = Wfq_core.Ring_queue.Make (SA)
module Poly = Wfq_core.Polylog_queue.Make (SA)

type script = Ck.script

type 'q sim_queue = {
  make : num_threads:int -> 'q;
  enq : 'q -> tid:int -> int -> unit;
  deq : 'q -> tid:int -> int option;
  contents : 'q -> int list;
  try_enq : ('q -> tid:int -> int -> bool) option;
      (* bounded queues only: the [`Try_enq] script op *)
  capacity : int option;
      (* bounded queues only: switches lincheck to the bounded spec *)
  enq_batch : ('q -> tid:int -> int list -> unit) option;
  try_enq_batch : ('q -> tid:int -> int list -> int) option;
  deq_batch : ('q -> tid:int -> n:int -> int list) option;
      (* backends with native batch operations run the batch litmus
         library ([`Enq_batch] and friends) on top of these *)
  extra_check : ('q -> (unit, string) result) option;
      (* structural invariant check run per explored schedule at
         quiescence (e.g. the polylog tree's monotonicity audit) *)
}

type packed = Q : 'q sim_queue -> packed

let rec queue_of_name = function
  | "ms" ->
      Q
        {
          make = (fun ~num_threads -> Ms.create ~num_threads ());
          enq = (fun q ~tid v -> Ms.enqueue q ~tid v);
          deq = (fun q ~tid -> Ms.dequeue q ~tid);
          contents = Ms.to_list;
          try_enq = None;
          capacity = None;
          enq_batch = None;
          try_enq_batch = None;
          deq_batch = None;
          extra_check = None;
        }
  | "kp-base" ->
      Q
        {
          make =
            (fun ~num_threads ->
              Kp.create_with ~help:Wfq_core.Kp_queue.Help_all
                ~phase:Wfq_core.Kp_queue.Phase_scan ~num_threads ());
          enq = (fun q ~tid v -> Kp.enqueue q ~tid v);
          deq = (fun q ~tid -> Kp.dequeue q ~tid);
          contents = Kp.to_list;
          try_enq = None;
          capacity = None;
          enq_batch = Some (fun q ~tid vs -> Kp.enqueue_batch q ~tid vs);
          try_enq_batch = None;
          deq_batch = Some (fun q ~tid ~n -> Kp.dequeue_batch q ~tid ~n);
          extra_check = None;
        }
  | "kp-opt12" ->
      Q
        {
          make =
            (fun ~num_threads ->
              Kp.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Kp.enqueue q ~tid v);
          deq = (fun q ~tid -> Kp.dequeue q ~tid);
          contents = Kp.to_list;
          try_enq = None;
          capacity = None;
          enq_batch = Some (fun q ~tid vs -> Kp.enqueue_batch q ~tid vs);
          try_enq_batch = None;
          deq_batch = Some (fun q ~tid ~n -> Kp.dequeue_batch q ~tid ~n);
          extra_check = None;
        }
  | "kp-fps" ->
      (* max_failures 1 so DPOR explores one fast round plus the
         slow-path descriptor in every operation, including the
         batch dequeue's single-CAS prefix grab *)
      Q
        {
          make =
            (fun ~num_threads ->
              Fps.create_with ~max_failures:1
                ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Fps.enqueue q ~tid v);
          deq = (fun q ~tid -> Fps.dequeue q ~tid);
          contents = Fps.to_list;
          try_enq = None;
          capacity = None;
          enq_batch = Some (fun q ~tid vs -> Fps.enqueue_batch q ~tid vs);
          try_enq_batch = None;
          deq_batch = Some (fun q ~tid ~n -> Fps.dequeue_batch q ~tid ~n);
          extra_check = None;
        }
  | "kp-hp" ->
      Q
        {
          make =
            (fun ~num_threads ->
              Kp_hp.create ~scan_threshold:1 ~pool_capacity:64 ~num_threads
                ());
          enq = (fun q ~tid v -> Kp_hp.enqueue q ~tid v);
          deq = (fun q ~tid -> Kp_hp.dequeue q ~tid);
          contents = Kp_hp.to_list;
          try_enq = None;
          capacity = None;
          enq_batch = None;
          try_enq_batch = None;
          deq_batch = None;
          extra_check = None;
        }
  | "ring" ->
      (* capacity 2 so the standard scenarios (<= 2 values in flight)
         never overflow; max_failures 1 so DPOR explores one fast round
         plus the helping slow path in every operation *)
      ring_packed ~capacity:2 ~max_failures:1
  | "polylog" ->
      (* the tournament-tree queue: every explored schedule also runs
         the quiescent structural audit (block-log monotonicity, size
         recurrence) on top of lincheck *)
      Q
        {
          make = (fun ~num_threads -> Poly.create ~num_threads ());
          enq = (fun q ~tid v -> Poly.enqueue q ~tid v);
          deq = (fun q ~tid -> Poly.dequeue q ~tid);
          contents = Poly.to_list;
          try_enq = None;
          capacity = None;
          enq_batch = Some (fun q ~tid vs -> Poly.enqueue_batch q ~tid vs);
          try_enq_batch = None;
          deq_batch = Some (fun q ~tid ~n -> Poly.dequeue_batch q ~tid ~n);
          extra_check = Some Poly.check_quiescent_invariants;
        }
  | other -> failwith ("unknown queue: " ^ other)

and ring_packed ~capacity ~max_failures =
  Q
    {
      make =
        (fun ~num_threads ->
          Ring.create_with ~capacity ~max_failures ~num_threads ());
      enq = (fun q ~tid v -> Ring.enqueue q ~tid v);
      deq = (fun q ~tid -> Ring.dequeue q ~tid);
      contents = Ring.to_list;
      try_enq = Some (fun q ~tid v -> Ring.try_enqueue q ~tid v);
      capacity = Some capacity;
      enq_batch = Some (fun q ~tid vs -> Ring.enqueue_batch q ~tid vs);
      try_enq_batch = Some (fun q ~tid vs -> Ring.try_enqueue_batch q ~tid vs);
      deq_batch = Some (fun q ~tid ~n -> Ring.dequeue_batch q ~tid ~n);
      extra_check = None;
    }

let scenarios : (string * script list) list =
  [
    ("enq-race", [ [ `Enq 1 ]; [ `Enq 2 ] ]);
    ("enq-vs-deq", [ [ `Enq 1 ]; [ `Deq ] ]);
    ("pairs", [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]);
    ("prod-cons", [ [ `Enq 1; `Enq 2 ]; [ `Deq; `Deq ] ]);
    ("three-way", [ [ `Enq 1 ]; [ `Enq 2 ]; [ `Deq; `Deq; `Deq ] ]);
  ]

(* The ring's own litmus library: each row picks the capacity and
   fast-path budget that makes its protocol corner reachable in a
   handful of operations. [max_failures = 0] sends every operation
   through the helping slow path (stage-1 claim / stage-2 install /
   publish), which is where the claim-rollback and hand-off races
   live. *)
let ring_scenarios :
    (string * int * int * int list * script list) list =
  [
    (* name, capacity, max_failures, init, scripts *)
    ("enq-race", 2, 1, [], [ [ `Enq 1 ]; [ `Enq 2 ] ]);
    ("pairs", 2, 1, [], [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]);
    (* two slow enqueues race stage-1 claims on the same position:
       exercises claim rollback on every losing path *)
    ("claim-rollback", 2, 0, [], [ [ `Enq 1 ]; [ `Enq 2 ] ]);
    (* full capacity-1 ring: enqueue-on-full vs dequeue must linearize
       exactly where the bounded spec (lincheck ~capacity) says it may *)
    ("full-race", 1, 0, [ 9 ], [ [ `Try_enq 1 ]; [ `Deq ] ]);
    (* dequeue-on-empty race against a slow enqueue *)
    ("empty-race", 1, 0, [], [ [ `Enq 1 ]; [ `Deq ] ]);
    (* a pre-filled element and two racing slow dequeues: the helping
       hand-off (finish a peer's claim found in a slot) plus the
       empty answer for the loser *)
    ("help-handoff", 2, 0, [ 1 ], [ [ `Deq ]; [ `Deq ] ]);
    (* capacity-1 ring driven past 2*capacity positions: every slot
       transition wraps laps; rejections allowed (Try_enq) *)
    ( "wraparound",
      1,
      1,
      [],
      [ [ `Try_enq 1; `Try_enq 2; `Try_enq 3 ]; [ `Deq; `Deq; `Deq ] ] );
  ]

(* The polylog tournament tree's litmus library: each row targets one
   of the protocol's hand-off points. The tree for two simulated
   threads is one root over two leaves, so a two-thread script already
   exercises the full propagate path (leaf announce -> parent
   double-refresh merge -> root block install). Step bounds are sharp
   DPOR-exhaustive maxima; the three-op rows stay within the default
   schedule cap because each polylog operation, though ~50 accesses
   long, races on only a handful of them. *)
let polylog_scenarios :
    (string * int list * script list * int option * int option) list =
  [
    (* name, init, scripts, step bound, schedule floor *)
    (* two leaf announces race the parent merge: whichever refresh CAS
       loses must still find its block propagated (the double-refresh
       guarantee the seeded No_double_refresh fault breaks) *)
    ("leaf-merge", [], [ [ `Enq 1 ]; [ `Enq 2 ] ], Some 54, None);
    (* an enqueue's root install racing a dequeue that must either see
       the fresh root block or linearize its Empty before it *)
    ("root-handoff", [], [ [ `Enq 1 ]; [ `Deq ] ], Some 96, None);
    (* two dequeues resolve adjacent root indices down the tree
       (lift/find_value): they must land on distinct elements in FIFO
       order, never both on the head *)
    ("deq-index", [ 1; 2 ], [ [ `Deq ]; [ `Deq ] ], Some 100, None);
  ]

(* The polylog batch litmuses: a batch enqueue is one leaf block
   carrying the whole batch (one announce, one propagate), so the
   corners are a multi-element block crossing the merge while single
   dequeues chase its elements, and a block-granular dequeue racing a
   fresh append. *)
let polylog_batch_scenarios :
    (string * int list * script list * int option * int option) list =
  [
    ( "b-block-vs-deq",
      [],
      [ [ `Enq_batch [ 1; 2 ] ]; [ `Deq; `Deq ] ],
      Some 170,
      None );
    ( "b-deq-vs-enq",
      [ 1 ],
      [ [ `Deq_batch 2 ]; [ `Enq 2 ] ],
      Some 115,
      None );
  ]

(* Batch litmuses for the KP-family queues (run under DPOR with the
   step-bound certifier): one descriptor publication covers the whole
   batch, so the races worth covering are helpers completing a batch's
   remaining suffix and two batches interleaving while each keeps its
   own elements in intra-batch FIFO order (which the checker's
   per-thread program-order constraint pins). The first [int option]
   is the certified per-fiber step bound for the scenario — sharp: the
   DPOR-exhaustive maximum — and the second a floor on the schedule
   cap when the scenario needs more than the default to exhaust. *)
let batch_scenarios : (string * script list * int option * int option) list =
  [
    (* a batch enqueue racing single dequeues: after the batch's link
       CAS lands, either side may be the one completing the suffix *)
    ( "b-enq-vs-deq",
      [ [ `Enq_batch [ 1; 2 ] ]; [ `Deq; `Deq ] ],
      Some 79,
      None );
    (* two racing batch enqueues: batches may interleave at the batch
       granularity but never within one *)
    ( "b-enq-race",
      [ [ `Enq_batch [ 1; 2 ] ]; [ `Enq_batch [ 3; 4 ] ] ],
      Some 42,
      None );
    (* an over-asking batch dequeue draining a batch enqueue: the
       unserved suffix must answer Empty at one observed-empty point *)
    ("b-deq", [ [ `Enq_batch [ 1; 2 ] ]; [ `Deq_batch 3 ] ], Some 82, None);
  ]

(* The fast-path/slow-path queue's batch litmuses: the batch enqueue
   publishes a pre-linked chain with one link CAS and the fast batch
   dequeue claims the sentinel once, walks the immutable next chain
   (capped at the observed tail) and jumps [head] over the whole
   prefix with one CAS — so the corners worth covering are the jump's
   failure leg (a helper swung head one node; only the claimed first
   element may be delivered), the tail cap (head must never overtake
   tail), and helpers finishing a chain's tail jump. The step bounds
   are fps-specific sharp maxima (measured with [max_failures = 1],
   where one lost round sends an operation through the slow-path
   descriptor): the KP bounds in [batch_scenarios] do not apply. *)
let fps_batch_scenarios :
    (string * int list * script list * int option * int option) list =
  [
    (* name, init, scripts, step bound, schedule floor *)
    (* prefix grab racing a per-item dequeue on a pre-filled queue:
       whoever loses the sentinel claim helps; the grab's jump CAS
       either lands (both elements linearize at the jump) or fails
       because the helper swung head, delivering exactly one *)
    ( "b-grab-vs-deq",
      [ 1; 2; 3 ],
      [ [ `Deq_batch 2 ]; [ `Deq ] ],
      Some 62,
      None );
    (* the grab capped by a lagging tail while an enqueue appends: the
       walk must stop at the observed last node so the head jump never
       overtakes tail (the MS invariant enqueuers rely on) *)
    ( "b-grab-vs-enq",
      [ 1 ],
      [ [ `Deq_batch 2 ]; [ `Enq 2 ] ],
      Some 48,
      None );
    (* a pre-linked batch chain racing single dequeues: one link CAS
       publishes the chain; either side may finish the tail jump *)
    ( "b-chain-vs-deq",
      [],
      [ [ `Enq_batch [ 1; 2 ] ]; [ `Deq; `Deq ] ],
      Some 80,
      None );
  ]

(* The ring's batch litmuses: rows pick the capacity and fast-path
   budget that make the protocol corner reachable, exactly like
   [ring_scenarios]. [max_failures = 0] routes the whole batch through
   one slow descriptor (the claimed-run hand-off paths). *)
let ring_batch_scenarios :
    (string * int * int * int list * script list * int option * int option)
    list =
  [
    (* name, capacity, max_failures, init, scripts, step bound,
       schedule floor *)
    (* a slow batch claims a run of slots one descriptor drives (on a
       capacity-1 ring the run spans laps of the same physical slot);
       the racing dequeuer finds the claim and must complete the
       batch's remaining suffix before taking — acceptance of the
       second element depends on whether the take frees the slot in
       time, so the partial-batch terminal record is covered too *)
    ( "b-claim-suffix",
      1,
      0,
      [],
      [ [ `Try_enq_batch [ 1; 2 ] ]; [ `Deq ] ],
      Some 49,
      Some 1_700_000 );
    (* batch crossing the wraparound of a capacity-1 ring: every
       element lands on the same physical slot, one lap apart, and the
       batch dequeue chases it across laps; rejections allowed *)
    ( "b-wraparound",
      1,
      1,
      [],
      [ [ `Try_enq_batch [ 1; 2; 3 ] ]; [ `Deq_batch 3 ] ],
      Some 14,
      None );
    (* partial acceptance: one free slot, a two-element batch, and a
       racing dequeue that may or may not free the second slot in time
       — the rejected suffix must linearize at a full observation *)
    ( "b-partial-full",
      2,
      0,
      [ 9 ],
      [ [ `Try_enq_batch [ 1; 2 ] ]; [ `Deq ] ],
      Some 60,
      Some 2_100_000 );
    (* a slow batch dequeue draining a pre-filled capacity-1 ring
       against a racing bounded enqueue *)
    ( "b-deq-race",
      1,
      0,
      [ 5 ],
      [ [ `Deq_batch 2 ]; [ `Try_enq 1 ] ],
      Some 50,
      Some 2_200_000 );
  ]

let scenario_with_history (Q ops) scripts =
  let num_threads = List.length scripts in
  let q = ops.make ~num_threads in
  let hist = H.create () in
  let fiber tid script () =
    List.iter
      (function
        | `Enq v ->
            H.call hist ~thread:tid (H.Enq v);
            ops.enq q ~tid v;
            H.return hist ~thread:tid H.Done
        | `Try_enq v -> (
            let try_enq =
              match ops.try_enq with
              | Some f -> f
              | None -> failwith "`Try_enq script op on an unbounded queue"
            in
            H.call hist ~thread:tid (H.Enq v);
            match try_enq q ~tid v with
            | true -> H.return hist ~thread:tid H.Done
            | false -> H.return hist ~thread:tid H.Rejected)
        | `Deq -> (
            H.call hist ~thread:tid H.Deq;
            match ops.deq q ~tid with
            | Some v -> H.return hist ~thread:tid (H.Got v)
            | None -> H.return hist ~thread:tid H.Empty)
        (* Batch ops mirror Check's internal expansion: per-element
           sub-ops invoked together before the batch and answered
           together after, so counterexample replays of batch litmuses
           rebuild the same history shape. *)
        | `Enq_batch vs ->
            if vs <> [] then begin
              let f =
                match ops.enq_batch with
                | Some f -> f
                | None ->
                    failwith "`Enq_batch script op on a batchless queue"
              in
              H.call_batch hist ~thread:tid (List.map (fun v -> H.Enq v) vs);
              f q ~tid vs;
              H.return_batch hist ~thread:tid (List.map (fun _ -> H.Done) vs)
            end
        | `Try_enq_batch vs ->
            if vs <> [] then begin
              let f =
                match ops.try_enq_batch with
                | Some f -> f
                | None ->
                    failwith "`Try_enq_batch script op on a batchless queue"
              in
              H.call_batch hist ~thread:tid (List.map (fun v -> H.Enq v) vs);
              let accepted = f q ~tid vs in
              H.return_batch hist ~thread:tid
                (List.mapi
                   (fun i _ -> if i < accepted then H.Done else H.Rejected)
                   vs)
            end
        | `Deq_batch want ->
            if want > 0 then begin
              let f =
                match ops.deq_batch with
                | Some f -> f
                | None ->
                    failwith "`Deq_batch script op on a batchless queue"
              in
              H.call_batch hist ~thread:tid (List.init want (fun _ -> H.Deq));
              let got = f q ~tid ~n:want in
              let rec responses got i =
                if i = want then []
                else
                  match got with
                  | v :: tl -> H.Got v :: responses tl (i + 1)
                  | [] -> H.Empty :: responses [] (i + 1)
              in
              H.return_batch hist ~thread:tid (responses got 0)
            end)
      script
  in
  (Array.of_list (List.mapi fiber scripts), hist)

let make_scenario (Q ops as q) scripts () =
  let fibers, hist = scenario_with_history q scripts in
  let check (_ : S.result) =
    if C.is_linearizable ?capacity:ops.capacity (H.completed hist) then Ok ()
    else
      Error
        (Format.asprintf "not linearizable:@.%a" C.pp_history
           (H.completed hist))
  in
  (fibers, check)

let queue_arg =
  let doc =
    "Queue to check: ms, kp-base, kp-opt12, kp-fps, kp-hp, ring, polylog."
  in
  Arg.(value & opt string "kp-base" & info [ "queue" ] ~docv:"NAME" ~doc)

let budget_arg =
  let doc = "Preemption budget for systematic exploration." in
  Arg.(value & opt int 2 & info [ "budget" ] ~doc)

let count_arg =
  let doc = "Number of random schedules for fuzzing." in
  Arg.(value & opt int 2000 & info [ "count" ] ~doc)

let report name (r : E.report) =
  match r.failure with
  | None ->
      Printf.printf "  %-12s %6d schedules  %s\n" name r.schedules
        (if r.exhausted then "exhausted: all explored schedules linearizable"
         else "cap reached, no violation found")
  | Some (prefix, msg) ->
      Printf.printf "  %-12s FAILED after %d schedules\n    replay: [%s]\n    %s\n"
        name r.schedules
        (String.concat ";" (List.map string_of_int prefix))
        msg;
      exit 1

let run_explore queue budget =
  let q = queue_of_name queue in
  Printf.printf
    "systematic exploration of %s (every schedule with <= %d preemptions)\n"
    queue budget;
  List.iter
    (fun (name, scripts) ->
      let b = if List.length scripts >= 3 then min budget 1 else budget in
      report name
        (E.preemption_bounded ~budget:b ~max_schedules:200_000
           ~make:(make_scenario q scripts) ()))
    scenarios

let run_fuzz queue count use_pct =
  let q = queue_of_name queue in
  Printf.printf "%s of %s (%d seeds per scenario)\n"
    (if use_pct then "PCT fuzzing" else "random-schedule fuzzing")
    queue count;
  List.iter
    (fun (name, scripts) ->
      let r =
        if use_pct then
          E.pct ~count ~change_points:3 ~make:(make_scenario q scripts) ()
        else E.fuzz ~count ~make:(make_scenario q scripts) ()
      in
      report name r)
    scenarios

(* DPOR model checking (wfq_check dpor): run the Explore × Lincheck
   driver over the scenario library — one explored schedule per
   Mazurkiewicz trace, every schedule checked for linearizability and
   element conservation — and on failure write the shrunk counterexample
   (schedule, replayed history, checker verdict) to a file that CI
   uploads as a build artifact. *)

let check_run (Q ops) ~max_schedules ?init ?step_bound ~scripts () =
  let queue =
    {
      Ck.create = (fun ~num_threads -> ops.make ~num_threads);
      enqueue = ops.enq;
      dequeue = ops.deq;
      contents = ops.contents;
    }
  in
  Ck.run ~mode:Ck.Dpor ~max_schedules ?init ?step_bound
    ?try_enqueue:ops.try_enq ?enqueue_batch:ops.enq_batch
    ?try_enqueue_batch:ops.try_enq_batch ?dequeue_batch:ops.deq_batch
    ?capacity:ops.capacity ?extra_check:ops.extra_check ~queue ~scripts ()

let write_counterexample ~out_dir ~queue_name ~scenario_name ?pp_extra
    (f : Ck.failure) =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let path =
    Filename.concat out_dir (queue_name ^ "-" ^ scenario_name ^ ".trace")
  in
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  Format.fprintf fmt "queue: %s@.scenario: %s@.@.%a@." queue_name
    scenario_name Ck.pp_failure f;
  (match pp_extra with Some pp -> pp fmt | None -> ());
  Format.pp_print_flush fmt ();
  close_out oc;
  path

(* Replay the minimal schedule on a fresh scenario and show the history
   the linearizability checker judged, plus its verdict. Valid because
   [Scheduler.run ~forced] replay is deterministic and the CLI scenario
   performs the same shared accesses as Check's internal one. *)
let pp_replayed_history (Q ops as q) scripts forced fmt =
  match
    let fibers, hist = scenario_with_history q scripts in
    ignore (S.run ~strategy:S.First_enabled ~forced fibers);
    H.completed hist
  with
  | h ->
      Format.fprintf fmt
        "@.history under the minimal schedule:@.%a@.checker verdict: %a@."
        C.pp_history h C.pp_verdict
        (C.check ?capacity:ops.capacity h)
  | exception e ->
      Format.fprintf fmt "@.(history replay failed: %s)@."
        (Printexc.to_string e)

let shrunk_length (f : Ck.failure) =
  match f.Ck.shrunk with
  | Some s -> List.length s.Sh.forced
  | None -> List.length f.Ck.forced

let run_dpor_clean queue max_schedules out_dir batch_only =
  (* Every queue runs the shared scenario library; the ring runs its
     own litmuses instead, each at the capacity/fast-path budget that
     makes its protocol corner reachable. Batch-capable queues append
     the batch litmuses, each certified against a per-fiber step bound
     (the wait-freedom certificate: no schedule may make any fiber
     exceed it); [--batch-only] runs just those. A batch row's
     schedule floor raises the cap to where the row is known to
     exhaust, so the default cap still certifies full coverage. *)
  let rows =
    if queue = "ring" then
      (if batch_only then []
       else
         List.map
           (fun (name, capacity, max_failures, init, scripts) ->
             ( name,
               ring_packed ~capacity ~max_failures,
               init,
               scripts,
               None,
               None ))
           ring_scenarios)
      @ List.map
          (fun (name, capacity, max_failures, init, scripts, bound, floor) ->
            ( name,
              ring_packed ~capacity ~max_failures,
              init,
              scripts,
              bound,
              floor ))
          ring_batch_scenarios
    else if queue = "polylog" then
      (* the tournament tree runs its own litmus library: the shared
         pairs/three-way rows have four+ ~50-step operations, which
         puts full DPOR past any practical trace cap (the conformance
         battery covers them under a preemption budget instead) *)
      let q = queue_of_name queue in
      (if batch_only then []
       else
         List.map
           (fun (name, init, scripts, bound, floor) ->
             (name, q, init, scripts, bound, floor))
           polylog_scenarios)
      @ List.map
          (fun (name, init, scripts, bound, floor) ->
            (name, q, init, scripts, bound, floor))
          polylog_batch_scenarios
    else
      let (Q ops as q) = queue_of_name queue in
      (if batch_only then []
       else
         List.map
           (fun (name, scripts) -> (name, q, [], scripts, None, None))
           scenarios)
      @
      if queue = "kp-fps" then
        (* fps runs its own batch litmuses: the shared rows' certified
           bounds are KP-sharp and the fps protocol corners (prefix
           grab, chain link) need their own scripts *)
        List.map
          (fun (name, init, scripts, bound, floor) ->
            (name, q, init, scripts, bound, floor))
          fps_batch_scenarios
      else if ops.enq_batch <> None then
        List.map
          (fun (name, scripts, bound, floor) ->
            (name, q, [], scripts, bound, floor))
          batch_scenarios
      else []
  in
  Printf.printf
    "DPOR model checking of %s (one schedule per Mazurkiewicz trace)\n"
    queue;
  let failed = ref false in
  List.iter
    (fun (name, q, init, scripts, step_bound, floor) ->
      let max_schedules =
        match floor with Some f -> max max_schedules f | None -> max_schedules
      in
      let r = check_run q ~max_schedules ~init ?step_bound ~scripts () in
      match r.Ck.failure with
      | None ->
          Printf.printf
            "  %-14s %7d traces  %s  (max steps per op fiber: %d%s)\n" name
            r.Ck.schedules
            (if r.Ck.exhausted then "exhausted: every trace linearizable"
             else "cap reached, no violation")
            r.Ck.max_fiber_steps
            (match step_bound with
            | Some b -> Printf.sprintf ", certified bound %d" b
            | None -> "")
      | Some f ->
          failed := true;
          let forced =
            match f.Ck.shrunk with Some s -> s.Sh.forced | None -> f.Ck.forced
          in
          let path =
            (* the CLI-side history replay does not pre-fill [init]
               elements, so it is only faithful for init-less rows *)
            if init = [] then
              write_counterexample ~out_dir ~queue_name:queue
                ~scenario_name:name
                ~pp_extra:(pp_replayed_history q scripts forced)
                f
            else
              write_counterexample ~out_dir ~queue_name:queue
                ~scenario_name:name f
          in
          Printf.printf
            "  %-14s FAILED after %d traces: %s\n\
            \    shrunk to %d decisions; counterexample written to %s\n"
            name r.Ck.schedules f.Ck.message (shrunk_length f) path)
    rows;
  if !failed then exit 1

(* Demonstration mode: reinstate one of the seeded fast-path/slow-path
   handshake bugs and demand that DPOR finds and shrinks it. Exercises
   the whole find -> shrink -> artifact pipeline, so a CI run can prove
   the pipeline works end to end. *)
let fps_faulted_ops fault ~max_failures : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        Fps.create_with ~max_failures ~fault
          ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
          ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
    enqueue = (fun q ~tid v -> Fps.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Fps.dequeue q ~tid);
    contents = Fps.to_list;
  }

(* The ring's seeded bug: a slow enqueuer whose install landed skips
   publishing success and rolls its claim back instead, leaving the
   value in the ring while reporting the operation rejected —
   conservation catches the orphaned element. *)
let ring_faulted_ops : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        Ring.create_with ~capacity:1 ~max_failures:0
          ~fault:Wfq_core.Ring_queue.Rollback_skipped ~num_threads ());
    enqueue = (fun q ~tid v -> Ring.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Ring.dequeue q ~tid);
    contents = Ring.to_list;
  }

let report_fault_result ~queue_name ~scenario_name out_dir (r : Ck.report) =
  match r.Ck.failure with
  | Some f ->
      let path =
        write_counterexample ~out_dir ~queue_name ~scenario_name f
      in
      Printf.printf
        "  found after %d schedules: %s\n\
        \  shrunk to %d decisions; counterexample written to %s\n"
        r.Ck.schedules f.Ck.message (shrunk_length f) path
  | None ->
      Printf.printf
        "  NOT FOUND after %d schedules — the seeded bug escaped the checker\n"
        r.Ck.schedules;
      exit 1

(* The polylog queue's seeded bug: a leaf announce skips the second
   refresh of the double-refresh pair, so a block whose first refresh
   CAS lost can stay unpropagated — the appender then spins on its own
   propagation forever (a livelock the step limit catches) or the tree
   serves elements out of announce order. *)
let polylog_faulted_ops : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        Poly.create_with ~fault:Wfq_core.Polylog_queue.No_double_refresh
          ~num_threads ());
    enqueue = (fun q ~tid v -> Poly.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Poly.dequeue q ~tid);
    contents = Poly.to_list;
  }

let run_dpor_fault fname max_schedules out_dir =
  match fname with
  | "no-double-refresh" ->
      Printf.printf
        "DPOR vs seeded bug 'no-double-refresh' in the polylog queue (a \
         counterexample MUST be found)\n";
      let r =
        Ck.run ~mode:Ck.Dpor ~max_schedules ~queue:polylog_faulted_ops
          ~scripts:[ [ `Enq 1 ]; [ `Enq 2; `Deq ] ]
          ()
      in
      report_fault_result ~queue_name:"polylog"
        ~scenario_name:"no-double-refresh" out_dir r
  | "rollback-skipped" ->
      Printf.printf
        "DPOR vs seeded bug 'rollback-skipped' in the ring (a counterexample \
         MUST be found)\n";
      let r =
        Ck.run ~mode:Ck.Dpor ~max_schedules
          ~try_enqueue:(fun q ~tid v -> Ring.try_enqueue q ~tid v)
          ~capacity:1 ~queue:ring_faulted_ops
          ~scripts:[ [ `Try_enq 1 ]; [ `Deq ] ]
          ()
      in
      report_fault_result ~queue_name:"ring" ~scenario_name:"rollback-skipped"
        out_dir r
  | "batch-partial" ->
      (* Seeded batch bug: a fast batch enqueue publishes only the first
         node of its pre-linked chain (the chain is severed before the
         link CAS), silently dropping the rest of the batch.
         Conservation catches the lost elements even with no
         interference; DPOR must find and shrink it. *)
      Printf.printf
        "DPOR vs seeded bug 'batch-partial' in %s (a counterexample MUST \
         be found)\n"
        Fps.name;
      let r =
        Ck.run ~mode:Ck.Dpor ~max_schedules
          ~enqueue_batch:(fun q ~tid vs -> Fps.enqueue_batch q ~tid vs)
          ~dequeue_batch:(fun q ~tid ~n -> Fps.dequeue_batch q ~tid ~n)
          ~queue:
            (fps_faulted_ops Wfq_core.Kp_queue_fps.Batch_partial_publish
               ~max_failures:1)
          ~scripts:[ [ `Enq_batch [ 1; 2 ] ]; [ `Deq ] ]
          ()
      in
      report_fault_result ~queue_name:"kp-fps" ~scenario_name:"batch-partial"
        out_dir r
  | "no-claim" | "stale-helper" ->
      let fault, scenario_name, scripts, init, max_failures, step_limit =
        match fname with
        | "no-claim" ->
            ( Wfq_core.Kp_queue_fps.Fast_deq_no_claim,
              "no-claim",
              [ [ `Deq; `Deq ]; [ `Deq ] ],
              [ 1; 2 ],
              1,
              None )
        | _ ->
            ( Wfq_core.Kp_queue_fps.Stale_helper_caller_phase,
              "stale-helper",
              [ [ `Deq; `Enq 7 ]; [ `Deq ] ],
              [ 1 ],
              0,
              Some 2_000 )
      in
      Printf.printf
        "DPOR vs seeded bug '%s' in %s (a counterexample MUST be found)\n"
        fname Fps.name;
      let r =
        Ck.run ~mode:Ck.Dpor ~max_schedules ?step_limit ~init
          ~queue:(fps_faulted_ops fault ~max_failures)
          ~scripts ()
      in
      report_fault_result ~queue_name:"kp-fps" ~scenario_name out_dir r
  | other -> failwith ("unknown fault: " ^ other)

let run_dpor queue max_schedules out_dir fault batch_only =
  match fault with
  | Some fname -> run_dpor_fault fname max_schedules out_dir
  | None -> run_dpor_clean queue max_schedules out_dir batch_only

(* Stall demonstration: thread 0 freezes mid-enqueue forever; under the
   wait-free queue its operation still completes. *)
let run_stall queue =
  match queue_of_name queue with
  | Q ops ->
      let q = ops.make ~num_threads:2 in
      let fibers =
        [|
          (fun () -> ops.enq q ~tid:0 111);
          (fun () -> ops.enq q ~tid:1 222);
        |]
      in
      (* Stall thread 0 a third of the way into its operation. *)
      let probe =
        S.run [| (fun () -> ops.enq (ops.make ~num_threads:2) ~tid:0 1) |]
      in
      let stall_at = max 1 (probe.S.steps.(0) / 3) in
      let res = S.run ~stalls:[ (0, stall_at) ] fibers in
      Printf.printf
        "thread 0 stalled after %d steps (outcome: %s)\n" stall_at
        (match res.S.outcome with
        | S.All_finished -> "all finished"
        | S.Only_stalled_left -> "only stalled thread left"
        | S.Step_limit_hit -> "STEP LIMIT (no progress!)"
        | S.Aborted -> "aborted (unexpected)");
      let drained = ref [] in
      let rec drain () =
        match S.ignore_yields (fun () -> ops.deq q ~tid:1) with
        | Some v ->
            drained := v :: !drained;
            drain ()
        | None -> ()
      in
      drain ();
      Printf.printf "queue contents after run: [%s]\n"
        (String.concat ";" (List.rev_map string_of_int !drained));
      Printf.printf "stalled thread's enqueue %s\n"
        (if List.mem 111 !drained then
           "WAS COMPLETED by the helping peer (wait-free helping)"
         else "was lost (no helping: lock-free only)")

(* Step-bound comparison (paper §5.3): worst-case step count of one
   operation by thread 0 while thread 1 performs k operations, maximized
   over adversarial random schedules. Wait-freedom predicts a flat row
   for the KP queue and a growing one for Michael-Scott. *)
let run_steps seeds =
  let kp_fibers k =
    let q =
      Kp.create_with ~help:Wfq_core.Kp_queue.Help_all
        ~phase:Wfq_core.Kp_queue.Phase_scan ~num_threads:2 ()
    in
    [|
      (fun () -> Kp.enqueue q ~tid:0 0);
      (fun () ->
        for i = 1 to k do
          Kp.enqueue q ~tid:1 i
        done);
    |]
  in
  let ms_fibers k =
    let q = Ms.create ~num_threads:2 () in
    [|
      (fun () -> Ms.enqueue q ~tid:0 0);
      (fun () ->
        for i = 1 to k do
          Ms.enqueue q ~tid:1 i
        done);
    |]
  in
  let worst make k =
    let acc = ref 0 in
    for seed = 0 to seeds - 1 do
      let res = S.run ~strategy:(S.Random_seeded seed) (make k) in
      acc := max !acc res.S.steps.(0)
    done;
    !acc
  in
  let ks = [ 1; 2; 5; 10; 20; 50 ] in
  Printf.printf
    "worst-case steps of ONE enqueue by thread 0 vs peer op count\n\
     (max over %d adversarial schedules)\n\n" seeds;
  Printf.printf "%-22s" "peer ops k:";
  List.iter (fun k -> Printf.printf "%8d" k) ks;
  print_newline ();
  Printf.printf "%-22s" "KP wait-free";
  List.iter (fun k -> Printf.printf "%8d" (worst kp_fibers k)) ks;
  print_newline ();
  Printf.printf "%-22s" "MS lock-free";
  List.iter (fun k -> Printf.printf "%8d" (worst ms_fibers k)) ks;
  print_newline ();
  print_endline
    "\nExpected: the KP row stays flat (bounded regardless of\n\
     interference); the MS row grows (each peer operation can defeat\n\
     thread 0's CAS once under an adversarial schedule)."

let seeds_arg =
  let doc = "Adversarial random schedules per data point." in
  Arg.(value & opt int 300 & info [ "seeds" ] ~doc)

let dpor_queue_arg =
  let doc =
    "Queue to check: ms, kp-base, kp-opt12, kp-fps, kp-hp, ring, \
     polylog. kp-base's Help_all slow path has million-trace \
     scenarios; expect the cap. ring runs its own litmus library \
     (claim rollback, full/empty races, wraparound, batch claimed-run \
     hand-off) against the bounded-queue specification. polylog runs \
     its tournament-tree litmuses (leaf announce/merge race, root \
     hand-off, dequeue-index race) with the quiescent structural audit \
     on every schedule. Batch-capable queues append the batch \
     litmuses, each certified against a per-fiber step bound; kp-fps \
     runs its own batch rows (prefix grab, chain link)."
  in
  Arg.(value & opt string "kp-opt12" & info [ "queue" ] ~docv:"NAME" ~doc)

let max_schedules_arg =
  let doc = "Cap on explored schedules per scenario." in
  Arg.(value & opt int 200_000 & info [ "max-schedules" ] ~doc)

let out_arg =
  let doc = "Directory for counterexample trace files (CI artifacts)." in
  Arg.(
    value
    & opt string "_counterexamples"
    & info [ "out" ] ~docv:"DIR" ~doc)

let fault_arg =
  let doc =
    "Check a queue with the named seeded bug reinstated (no-claim, \
     stale-helper or batch-partial in the fast-path/slow-path queue, \
     rollback-skipped in the ring, no-double-refresh in the polylog \
     queue); the run succeeds only if a counterexample is found, \
     shrunk, and written to --out."
  in
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"BUG" ~doc)

let batch_only_arg =
  let doc =
    "Run only the batch litmus library (step-bound certified); used by \
     the CI batch smoke job."
  in
  Arg.(value & flag & info [ "batch-only" ] ~doc)

let dpor_cmd =
  Cmd.v
    (Cmd.info "dpor"
       ~doc:
         "DPOR model checking: one schedule per Mazurkiewicz trace, every \
          schedule checked for linearizability and conservation, shrunk \
          counterexamples written as artifacts.")
    Term.(const run_dpor $ dpor_queue_arg $ max_schedules_arg $ out_arg
          $ fault_arg $ batch_only_arg)

let explore_cmd =
  Cmd.v
    (Cmd.info "explore" ~doc:"Systematic preemption-bounded exploration.")
    Term.(const run_explore $ queue_arg $ budget_arg)

let pct_arg =
  let doc = "Use PCT (priority + random change points) instead of uniform \
             random scheduling." in
  Arg.(value & flag & info [ "pct" ] ~doc)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Random-schedule (or --pct) fuzzing.")
    Term.(const run_fuzz $ queue_arg $ count_arg $ pct_arg)

let stall_cmd =
  Cmd.v
    (Cmd.info "stall" ~doc:"Stall-injection helping demonstration.")
    Term.(const run_stall $ queue_arg)

let steps_cmd =
  Cmd.v
    (Cmd.info "steps"
       ~doc:"Wait-free vs lock-free worst-case step-bound table.")
    Term.(const run_steps $ seeds_arg)

let () =
  let info =
    Cmd.info "wfq_check" ~version:"1.0"
      ~doc:"Model checking for the wait-free queue reproduction."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ dpor_cmd; explore_cmd; fuzz_cmd; stall_cmd; steps_cmd ]))
