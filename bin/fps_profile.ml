(* Single-thread decomposition of the FPS fast path's overhead over raw
   Michael-Scott (the EXPERIMENTS.md "where the LF gap comes from"
   numbers): each step adds one ingredient of the fast-path protocol to
   an MS pair loop, so the deltas attribute the cost.

     MS (baseline)                plain Ms_queue pairs
     MS + fat nodes               KP-shaped nodes: + enq_tid field and the
                                  per-node [deq_tid] atomic the slow-path
                                  claim protocol requires
     MS + fat nodes + claim CAS   + the sentinel claim CAS every dequeue
                                  pays (the fast/slow compatibility cost)
     FPS (full fast path)         the real Kp_queue_fps, adding the
                                  [slow_pending] helping check and the
                                  remaining functor-boundary calls

   Run several times and read medians: single-core noise is ±15 ns. *)

module A = Wfq_primitives.Real_atomic
module Ms = Wfq_core.Ms_queue.Make (A)
module Fps = Wfq_core.Kp_queue_fps.Make (A)

let iters = 1_000_000

(* Words/pair via [Gc.minor_words] deltas: single-domain, so the
   counter is exact for the loop. The allocation column attributes the
   heap-churn side of the decomposition the same way the ns column
   attributes time (and, unlike the times, it is deterministic). *)
let time name f =
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  Printf.printf "%-28s %8.1f ns/pair %8.1f words/pair\n%!" name
    ((t1 -. t0) *. 1e9 /. float_of_int iters)
    ((w1 -. w0) /. float_of_int iters)

(* MS with KP-shaped nodes; [claim] adds the sentinel claim CAS. This is
   a costing rig, not a usable queue (the claim is never consumed by a
   slow path — there isn't one here). *)
module Ms_fat = struct
  type 'a node = {
    value : 'a option;
    next : 'a node option A.t;
    enq_tid : int;
    deq_tid : int A.t;
  }

  type 'a t = { head : 'a node A.t; tail : 'a node A.t }

  let create () =
    let s =
      { value = None; next = A.make None; enq_tid = -1; deq_tid = A.make (-1) }
    in
    ignore s.enq_tid;
    { head = A.make s; tail = A.make s }

  let enqueue t value =
    let node =
      { value = Some value; next = A.make None; enq_tid = -1;
        deq_tid = A.make (-1) }
    in
    let rec loop () =
      let last = A.get t.tail in
      let next = A.get last.next in
      if last == A.get t.tail then
        match next with
        | None ->
            if A.compare_and_set last.next None (Some node) then
              ignore (A.compare_and_set t.tail last node)
            else loop ()
        | Some n ->
            ignore (A.compare_and_set t.tail last n);
            loop ()
      else loop ()
    in
    loop ()

  let dequeue ~claim t =
    let rec loop () =
      let first = A.get t.head in
      let last = A.get t.tail in
      let next = A.get first.next in
      if first == A.get t.head then
        if first == last then match next with None -> None | Some _ -> loop ()
        else
          match next with
          | None -> loop ()
          | Some n ->
              if claim then
                if A.compare_and_set first.deq_tid (-1) 7 then begin
                  ignore (A.compare_and_set t.head first n);
                  n.value
                end
                else loop ()
              else
                let v = n.value in
                if A.compare_and_set t.head first n then v else loop ()
      else loop ()
    in
    loop ()
end

let () =
  time "MS (baseline)" (fun () ->
      let q = Ms.create ~num_threads:1 () in
      for i = 1 to iters do
        Ms.enqueue q ~tid:0 i;
        ignore (Ms.dequeue q ~tid:0)
      done);
  time "MS + fat nodes" (fun () ->
      let q = Ms_fat.create () in
      for i = 1 to iters do
        Ms_fat.enqueue q i;
        ignore (Ms_fat.dequeue ~claim:false q)
      done);
  time "MS + fat nodes + claim CAS" (fun () ->
      let q = Ms_fat.create () in
      for i = 1 to iters do
        Ms_fat.enqueue q i;
        ignore (Ms_fat.dequeue ~claim:true q)
      done);
  time "FPS (full fast path)" (fun () ->
      let q = Fps.create ~num_threads:1 () in
      for i = 1 to iters do
        Fps.enqueue q ~tid:0 i;
        ignore (Fps.dequeue q ~tid:0)
      done);
  (* One more ingredient: the segment pool. Words/pair should collapse
     to near zero (nodes are recycled, not minted); the ns column prices
     the pool bookkeeping the recycling costs in exchange. *)
  time "FPS pooled" (fun () ->
      let q =
        Fps.create_with ~pool:true
          ~max_failures:Wfq_core.Kp_queue_fps.default_max_failures
          ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
          ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads:1 ()
      in
      for i = 1 to iters do
        Fps.enqueue q ~tid:0 i;
        ignore (Fps.dequeue q ~tid:0)
      done)
