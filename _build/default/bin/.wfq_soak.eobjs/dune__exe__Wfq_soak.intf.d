bin/wfq_soak.mli:
