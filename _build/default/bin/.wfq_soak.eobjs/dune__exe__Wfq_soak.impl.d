bin/wfq_soak.ml: Arg Array Atomic Cmd Cmdliner Domain List Printf Term Unix Wfq_harness Wfq_primitives
