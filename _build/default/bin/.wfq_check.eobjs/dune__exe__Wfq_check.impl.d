bin/wfq_check.ml: Arg Array Cmd Cmdliner Format List Printf String Term Wfq_core Wfq_lincheck Wfq_sim
