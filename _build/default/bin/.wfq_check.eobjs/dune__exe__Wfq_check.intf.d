bin/wfq_check.mli:
