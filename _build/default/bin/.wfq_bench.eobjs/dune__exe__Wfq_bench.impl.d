bin/wfq_bench.ml: Arg Cmd Cmdliner List Option String Term Wfq_harness
