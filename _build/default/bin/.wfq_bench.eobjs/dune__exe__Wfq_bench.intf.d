bin/wfq_bench.mli:
