(* Soak tester: run a randomized mixed workload on a chosen queue across
   several domains for a wall-clock duration, validating conservation
   invariants continuously. Intended for long unattended runs:

     wfq_soak --queue "opt WF (1+2)" --threads 8 --seconds 30
     wfq_soak --list
*)

open Cmdliner
module I = Wfq_harness.Impls
module Rng = Wfq_primitives.Rng

type totals = {
  mutable enqs : int;
  mutable deq_hits : int;
  mutable deq_empties : int;
  mutable checksum : int; (* sum of enqueued minus sum of dequeued *)
}

let run_soak queue_name threads seconds seed list_queues =
  if list_queues then begin
    List.iter (fun impl -> print_endline (I.name impl)) I.all;
    exit 0
  end;
  let (module Q) = I.by_name queue_name in
  if threads <= 0 then invalid_arg "--threads must be positive";
  Printf.printf "soaking %s: %d domains, %.1fs, seed %d\n%!" Q.name threads
    seconds seed;
  let q = Q.create ~num_threads:(threads + 1) in
  let stop = Atomic.make false in
  let totals = Array.init threads (fun _ ->
      { enqs = 0; deq_hits = 0; deq_empties = 0; checksum = 0 })
  in
  let worker tid () =
    let rng = Rng.split_for ~seed ~tid in
    let t = totals.(tid) in
    while not (Atomic.get stop) do
      (* Bursts keep the queue length wandering instead of hovering. *)
      let burst = 1 + Rng.below rng 32 in
      if Rng.bool rng then
        for _ = 1 to burst do
          let v = 1 + Rng.below rng 1_000_000 in
          Q.enqueue q ~tid v;
          t.enqs <- t.enqs + 1;
          t.checksum <- t.checksum + v
        done
      else
        for _ = 1 to burst do
          match Q.dequeue q ~tid with
          | Some v ->
              t.deq_hits <- t.deq_hits + 1;
              t.checksum <- t.checksum - v
          | None -> t.deq_empties <- t.deq_empties + 1
        done
    done
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  Unix.sleepf seconds;
  Atomic.set stop true;
  List.iter Domain.join domains;
  let dt = Unix.gettimeofday () -. t0 in
  (* Drain and validate conservation: every enqueued value (as a sum)
     must be accounted for by dequeues plus leftovers. *)
  let leftover_count = ref 0 and leftover_sum = ref 0 in
  let rec drain () =
    match Q.dequeue q ~tid:threads with
    | Some v ->
        incr leftover_count;
        leftover_sum := !leftover_sum + v;
        drain ()
    | None -> ()
  in
  drain ();
  let enqs = Array.fold_left (fun a t -> a + t.enqs) 0 totals in
  let hits = Array.fold_left (fun a t -> a + t.deq_hits) 0 totals in
  let empties = Array.fold_left (fun a t -> a + t.deq_empties) 0 totals in
  let checksum = Array.fold_left (fun a t -> a + t.checksum) 0 totals in
  Printf.printf
    "ops: %d enq, %d deq, %d empty-deq in %.2fs (%.0f ops/s)\n" enqs hits
    empties dt
    (float_of_int (enqs + hits + empties) /. dt);
  let count_ok = enqs - hits = !leftover_count in
  let sum_ok = checksum = !leftover_sum in
  Printf.printf "conservation: count %s, checksum %s (%d left in queue)\n"
    (if count_ok then "OK" else "VIOLATED")
    (if sum_ok then "OK" else "VIOLATED")
    !leftover_count;
  if not (count_ok && sum_ok) then exit 1

let queue_arg =
  let doc = "Queue to soak (see --list)." in
  Arg.(value & opt string "opt WF (1+2)" & info [ "queue" ] ~docv:"NAME" ~doc)

let threads_arg =
  let doc = "Worker domains." in
  Arg.(value & opt int 4 & info [ "threads" ] ~doc)

let seconds_arg =
  let doc = "Wall-clock duration in seconds." in
  Arg.(value & opt float 10.0 & info [ "seconds" ] ~doc)

let seed_arg =
  let doc = "Workload seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let list_arg =
  let doc = "List available queue names and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let () =
  let info =
    Cmd.info "wfq_soak" ~version:"1.0"
      ~doc:"Long-running randomized soak test with conservation checking."
  in
  let term =
    Term.(
      const run_soak $ queue_arg $ threads_arg $ seconds_arg $ seed_arg
      $ list_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
