(* Tests for the hazard-pointer machinery and the node pool. *)

module Hp = Wfq_hazard.Hazard.Make (Wfq_primitives.Real_atomic)
module Pool = Wfq_hazard.Pool

type node = { mutable tag : int }

let test_protect_blocks_free () =
  let freed = ref [] in
  let hp =
    Hp.create ~scan_threshold:1 ~num_threads:2 ~slots_per_thread:2
      ~free:(fun ~tid:_ n -> freed := n :: !freed)
      ()
  in
  let n = { tag = 1 } in
  Hp.protect hp ~tid:1 ~slot:0 n;
  Hp.retire hp ~tid:0 n;
  (* threshold 1 forces a scan inside retire; n is protected by tid 1 *)
  Alcotest.(check int) "protected node not freed" 0 (List.length !freed);
  Hp.clear hp ~tid:1 ~slot:0;
  Hp.retire hp ~tid:0 { tag = 2 };
  (* the next scan frees both *)
  Alcotest.(check int) "freed after clear" 2 (List.length !freed)

let test_unprotected_freed_immediately () =
  let freed = ref 0 in
  let hp =
    Hp.create ~scan_threshold:1 ~num_threads:1 ~slots_per_thread:1
      ~free:(fun ~tid:_ _ -> incr freed)
      ()
  in
  for i = 1 to 5 do
    Hp.retire hp ~tid:0 { tag = i }
  done;
  Alcotest.(check int) "all freed at threshold 1" 5 !freed

let test_threshold_defers_scan () =
  let freed = ref 0 in
  let hp =
    Hp.create ~scan_threshold:10 ~num_threads:1 ~slots_per_thread:1
      ~free:(fun ~tid:_ _ -> incr freed)
      ()
  in
  for i = 1 to 9 do
    Hp.retire hp ~tid:0 { tag = i }
  done;
  Alcotest.(check int) "no scan below threshold" 0 !freed;
  Hp.retire hp ~tid:0 { tag = 10 };
  Alcotest.(check int) "scan at threshold" 10 !freed

let test_extra_hazard_roots () =
  let freed = ref 0 in
  let rooted = ref None in
  let hp =
    Hp.create ~scan_threshold:1 ~num_threads:1 ~slots_per_thread:1
      ~extra_hazards:(fun () ->
        match !rooted with Some n -> [ n ] | None -> [])
      ~free:(fun ~tid:_ _ -> incr freed)
      ()
  in
  let n = { tag = 1 } in
  rooted := Some n;
  Hp.retire hp ~tid:0 n;
  Alcotest.(check int) "root-referenced node kept" 0 !freed;
  rooted := None;
  Hp.retire hp ~tid:0 { tag = 2 };
  Alcotest.(check int) "freed once unrooted" 2 !freed

let test_protect_read_validates () =
  let hp =
    Hp.create ~num_threads:1 ~slots_per_thread:1
      ~free:(fun ~tid:_ _ -> ())
      ()
  in
  let source = Atomic.make (Some { tag = 1 }) in
  let v = Hp.protect_read hp ~tid:0 ~slot:0 (fun () -> Atomic.get source) in
  (match v with
  | Some n -> Alcotest.(check int) "protected the current node" 1 n.tag
  | None -> Alcotest.fail "expected Some");
  Atomic.set source None;
  let v2 = Hp.protect_read hp ~tid:0 ~slot:0 (fun () -> Atomic.get source) in
  Alcotest.(check bool) "None source yields None" true (v2 = None)

let test_stats_and_flush () =
  let hp =
    Hp.create ~scan_threshold:100 ~num_threads:2 ~slots_per_thread:1
      ~free:(fun ~tid:_ _ -> ())
      ()
  in
  for i = 1 to 7 do
    Hp.retire hp ~tid:0 { tag = i }
  done;
  let s = Hp.stats hp in
  Alcotest.(check int) "retired counted" 7 s.Hp.retired;
  Alcotest.(check int) "nothing freed yet" 0 s.Hp.freed;
  Alcotest.(check int) "pending" 7 s.Hp.still_pending;
  Hp.flush hp;
  let s2 = Hp.stats hp in
  Alcotest.(check int) "flush frees all" 7 s2.Hp.freed;
  Alcotest.(check int) "no pending" 0 s2.Hp.still_pending

let test_create_validation () =
  Alcotest.check_raises "num_threads"
    (Invalid_argument "Hazard.create: num_threads") (fun () ->
      ignore
        (Hp.create ~num_threads:0 ~slots_per_thread:1
           ~free:(fun ~tid:_ (_ : node) -> ())
           ()))

(* ----------------------------- Pool ------------------------------ *)

let test_pool_reuse () =
  let p = Pool.create ~capacity:8 ~num_threads:1 () in
  let fresh () = { tag = 0 } in
  let reset n = n.tag <- -1 in
  let a = Pool.alloc p ~tid:0 ~fresh ~reset in
  Alcotest.(check int) "first alloc fresh" 1 (Pool.allocated_fresh p);
  a.tag <- 42;
  Pool.release p ~tid:0 a;
  Alcotest.(check int) "pooled" 1 (Pool.pooled p);
  let b = Pool.alloc p ~tid:0 ~fresh ~reset in
  Alcotest.(check bool) "same object recycled" true (a == b);
  Alcotest.(check int) "reset ran" (-1) b.tag;
  Alcotest.(check int) "reuse counted" 1 (Pool.reused p)

let test_pool_capacity_bound () =
  let p = Pool.create ~capacity:2 ~num_threads:1 () in
  Pool.release p ~tid:0 { tag = 1 };
  Pool.release p ~tid:0 { tag = 2 };
  Pool.release p ~tid:0 { tag = 3 };
  (* third drop ignored *)
  Alcotest.(check int) "bounded" 2 (Pool.pooled p)

let test_pool_per_thread_isolation () =
  let p = Pool.create ~capacity:8 ~num_threads:2 () in
  Pool.release p ~tid:0 { tag = 1 };
  let fresh () = { tag = 99 } in
  let b = Pool.alloc p ~tid:1 ~fresh ~reset:(fun _ -> ()) in
  Alcotest.(check int) "tid 1 does not see tid 0's pool" 99 b.tag;
  let a = Pool.alloc p ~tid:0 ~fresh ~reset:(fun _ -> ()) in
  Alcotest.(check int) "tid 0 reuses its own" 1 a.tag

(* -------------------- cross-domain integration ------------------- *)

let test_hazard_cross_domain_stress () =
  (* A shared cell of nodes: writers publish new nodes and retire the old
     ones; readers protect-read and then dereference, verifying the node
     was not recycled under them (its tag must still be valid). *)
  let pool_hits = Atomic.make 0 in
  let corruption = Atomic.make 0 in
  let num_threads = 4 in
  let hp =
    Hp.create ~scan_threshold:4 ~num_threads ~slots_per_thread:1
      ~free:(fun ~tid:_ n ->
        n.tag <- -1;
        (* poison: any reader still holding it would see -1 *)
        Atomic.incr pool_hits)
      ()
  in
  let cell = Atomic.make (Some { tag = 0 }) in
  let writer tid () =
    for i = 1 to 3_000 do
      let fresh = { tag = (tid * 100_000) + i } in
      match Atomic.exchange cell (Some fresh) with
      | Some old -> Hp.retire hp ~tid old
      | None -> ()
    done
  in
  let reader tid () =
    for _ = 1 to 3_000 do
      (match Hp.protect_read hp ~tid ~slot:0 (fun () -> Atomic.get cell) with
      | Some n -> if n.tag < 0 then Atomic.incr corruption
      | None -> ());
      Hp.clear hp ~tid ~slot:0
    done
  in
  let domains =
    [
      Domain.spawn (writer 0); Domain.spawn (writer 1);
      Domain.spawn (reader 2); Domain.spawn (reader 3);
    ]
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no protected node was poisoned" 0
    (Atomic.get corruption);
  Alcotest.(check bool) "reclamation actually happened" true
    (Atomic.get pool_hits > 0)

let () =
  Alcotest.run "hazard"
    [
      ( "hazard-pointers",
        [
          Alcotest.test_case "protect blocks free" `Quick
            test_protect_blocks_free;
          Alcotest.test_case "unprotected freed" `Quick
            test_unprotected_freed_immediately;
          Alcotest.test_case "threshold defers scan" `Quick
            test_threshold_defers_scan;
          Alcotest.test_case "extra hazard roots" `Quick
            test_extra_hazard_roots;
          Alcotest.test_case "protect_read validates" `Quick
            test_protect_read_validates;
          Alcotest.test_case "stats and flush" `Quick test_stats_and_flush;
          Alcotest.test_case "create validation" `Quick
            test_create_validation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse with reset" `Quick test_pool_reuse;
          Alcotest.test_case "capacity bound" `Quick test_pool_capacity_bound;
          Alcotest.test_case "per-thread isolation" `Quick
            test_pool_per_thread_isolation;
        ] );
      ( "integration",
        [
          Alcotest.test_case "cross-domain protect/retire stress" `Quick
            test_hazard_cross_domain_stress;
        ] );
    ]
