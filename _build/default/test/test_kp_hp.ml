(* Tests specific to the hazard-pointer KP queue: reclamation really
   happens, recycled nodes are really reused, and none of it breaks the
   queue semantics — including under domain concurrency with a pool small
   enough to force constant recycling. *)

module A = Wfq_primitives.Real_atomic
module Kp_hp = Wfq_core.Kp_queue_hp.Make (A)
module Hp = Kp_hp.Hp

let test_reclamation_happens () =
  let q = Kp_hp.create ~scan_threshold:8 ~num_threads:1 () in
  for i = 1 to 1000 do
    Kp_hp.enqueue q ~tid:0 i;
    ignore (Kp_hp.dequeue q ~tid:0)
  done;
  let stats = Kp_hp.reclamation_stats q in
  Alcotest.(check bool)
    (Printf.sprintf "retired (%d) close to op count" stats.Hp.retired)
    true
    (stats.Hp.retired >= 990);
  Alcotest.(check bool)
    (Printf.sprintf "most retirees freed (%d)" stats.Hp.freed)
    true
    (stats.Hp.freed >= stats.Hp.retired - 16)

let test_nodes_are_reused () =
  let q = Kp_hp.create ~scan_threshold:4 ~num_threads:1 () in
  for i = 1 to 500 do
    Kp_hp.enqueue q ~tid:0 i;
    ignore (Kp_hp.dequeue q ~tid:0)
  done;
  let fresh, reused, _pooled = Kp_hp.pool_stats q in
  Alcotest.(check bool)
    (Printf.sprintf "alloc mostly from pool (fresh %d, reused %d)" fresh
       reused)
    true
    (reused > fresh);
  (* Steady state allocates almost nothing fresh. *)
  Alcotest.(check bool) "bounded fresh allocations" true (fresh < 64)

let test_flush_reclaims_tail () =
  let q = Kp_hp.create ~scan_threshold:1_000_000 ~num_threads:1 () in
  for i = 1 to 100 do
    Kp_hp.enqueue q ~tid:0 i;
    ignore (Kp_hp.dequeue q ~tid:0)
  done;
  let before = Kp_hp.reclamation_stats q in
  Alcotest.(check int) "scan never triggered" 0 before.Hp.freed;
  Kp_hp.flush_reclamation q;
  let after = Kp_hp.reclamation_stats q in
  Alcotest.(check bool) "flush freed the backlog" true
    (after.Hp.freed >= 99)

let test_values_survive_recycling () =
  (* FIFO delivery with aggressive recycling: any stale-node bug shows as
     a wrong or duplicated value. *)
  let q = Kp_hp.create ~scan_threshold:2 ~pool_capacity:8 ~num_threads:1 () in
  let window = 16 in
  for i = 1 to window do
    Kp_hp.enqueue q ~tid:0 i
  done;
  for i = 1 to 2_000 do
    Kp_hp.enqueue q ~tid:0 (window + i);
    match Kp_hp.dequeue q ~tid:0 with
    | Some v -> Alcotest.(check int) "strict FIFO" i v
    | None -> Alcotest.fail "unexpected empty"
  done

let test_empty_dequeue_with_reclamation () =
  let q = Kp_hp.create ~scan_threshold:2 ~num_threads:2 () in
  Alcotest.(check (option int)) "empty" None (Kp_hp.dequeue q ~tid:0);
  Kp_hp.enqueue q ~tid:1 7;
  Alcotest.(check (option int)) "single" (Some 7) (Kp_hp.dequeue q ~tid:0);
  Alcotest.(check (option int)) "empty again" None (Kp_hp.dequeue q ~tid:1);
  Kp_hp.enqueue q ~tid:0 8;
  Alcotest.(check (option int)) "usable after empties" (Some 8)
    (Kp_hp.dequeue q ~tid:1)

(* Domain stress with tiny pool + tiny threshold: cross-thread recycling
   under real concurrency. Every domain both enqueues and dequeues (the
   pairs pattern), so the threads that retire nodes also allocate —
   exercising genuine pool reuse. (With disjoint producer/consumer roles
   the per-thread pools would fill on the consumer side only, a
   documented property of thread-local pooling.) Conservation proves no
   node was recycled while still visible to another thread. *)
let test_domains_with_forced_recycling () =
  let threads = 4 and per = 5_000 in
  let q = Kp_hp.create ~scan_threshold:4 ~pool_capacity:16 ~num_threads:threads ()
  in
  let total = threads * per in
  let logs = Array.make threads [] in
  let encode p s = (p * 1_000_000) + s in
  let worker tid () =
    let acc = ref [] in
    for s = 1 to per do
      Kp_hp.enqueue q ~tid (encode tid s);
      match Kp_hp.dequeue q ~tid with
      | Some v -> acc := v :: !acc
      | None -> Alcotest.fail "impossible empty in pairs pattern"
    done;
    logs.(tid) <- !acc
  in
  let ds = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  let seen = Hashtbl.create total in
  Array.iter
    (List.iter (fun v ->
         if Hashtbl.mem seen v then
           Alcotest.fail (Printf.sprintf "duplicate value %d" v)
         else Hashtbl.add seen v ()))
    logs;
  Alcotest.(check int) "conservation under recycling" total
    (Hashtbl.length seen);
  let _, reused, _ = Kp_hp.pool_stats q in
  Alcotest.(check bool)
    (Printf.sprintf "recycling occurred (%d reuses)" reused)
    true (reused > 0)

let test_no_unbounded_growth () =
  (* With reclamation the live node count must stay near the queue size,
     not near the op count. *)
  let q = Kp_hp.create ~scan_threshold:16 ~num_threads:1 () in
  for i = 1 to 20_000 do
    Kp_hp.enqueue q ~tid:0 i;
    ignore (Kp_hp.dequeue q ~tid:0)
  done;
  Kp_hp.flush_reclamation q;
  let stats = Kp_hp.reclamation_stats q in
  let outstanding = stats.Hp.retired - stats.Hp.freed in
  Alcotest.(check bool)
    (Printf.sprintf "outstanding retirees bounded (%d)" outstanding)
    true (outstanding <= 64)

let () =
  Alcotest.run "kp-hp"
    [
      ( "reclamation",
        [
          Alcotest.test_case "nodes retired and freed" `Quick
            test_reclamation_happens;
          Alcotest.test_case "pool reuse dominates" `Quick
            test_nodes_are_reused;
          Alcotest.test_case "flush reclaims backlog" `Quick
            test_flush_reclaims_tail;
          Alcotest.test_case "no unbounded growth" `Quick
            test_no_unbounded_growth;
        ] );
      ( "semantics under recycling",
        [
          Alcotest.test_case "strict FIFO with tiny pool" `Quick
            test_values_survive_recycling;
          Alcotest.test_case "empty-queue cases" `Quick
            test_empty_dequeue_with_reclamation;
          Alcotest.test_case "domain stress, forced recycling" `Quick
            test_domains_with_forced_recycling;
        ] );
    ]
