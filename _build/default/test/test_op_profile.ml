(* Shared-memory operation profiles — the cost model of §3.3, pinned.

   Each queue is instantiated with the counting ATOMIC wrapper; we
   measure exactly how many atomic reads/writes/CASes one uncontended
   operation performs and assert the structural facts the paper's
   optimization discussion rests on:

   - MS enqueue performs exactly 2 successful CASes (append + tail fix),
     MS dequeue exactly 1 (head swing);
   - KP operations pay extra CASes for the three-step scheme;
   - the base KP operation's read count grows linearly with num_threads
     (the maxPhase scan and the Help_all traversal), while the fully
     optimized variant's is independent of it — precisely why the paper's
     optimizations exist;
   - uncontended operations never fail a CAS. *)

module C = Wfq_primitives.Counted_atomic
module CA = Wfq_primitives.Counted_atomic.Make (Wfq_primitives.Real_atomic)
module Ms = Wfq_core.Ms_queue.Make (CA)
module Kp = Wfq_core.Kp_queue.Make (CA)
module Lms = Wfq_core.Lms_queue.Make (CA)

let profile f =
  CA.reset ();
  f ();
  CA.snapshot ()

(* --------------------------- MS ---------------------------------- *)

let test_ms_profile () =
  let q = Ms.create ~num_threads:1 () in
  let enq = profile (fun () -> Ms.enqueue q ~tid:0 1) in
  Alcotest.(check int) "enqueue: 2 CAS (append + tail)" 2 enq.C.cas_success;
  Alcotest.(check int) "enqueue: no failures" 0 enq.C.cas_failure;
  Ms.enqueue q ~tid:0 2;
  let deq = profile (fun () -> ignore (Ms.dequeue q ~tid:0)) in
  Alcotest.(check int) "dequeue: 1 CAS (head)" 1 deq.C.cas_success;
  Alcotest.(check int) "dequeue: no failures" 0 deq.C.cas_failure;
  let empty_deq =
    profile (fun () ->
        ignore (Ms.dequeue q ~tid:0);
        ignore (Ms.dequeue q ~tid:0))
  in
  (* second dequeue observed empty: head CAS once, then none *)
  Alcotest.(check int) "empty dequeue adds no CAS" 1 empty_deq.C.cas_success

(* --------------------------- LMS --------------------------------- *)

let test_lms_profile () =
  let q = Lms.create ~num_threads:1 () in
  let enq = profile (fun () -> Lms.enqueue q ~tid:0 1) in
  (* The optimistic queue's selling point: a single CAS per enqueue. *)
  Alcotest.(check int) "enqueue: exactly 1 CAS" 1 enq.C.cas_success;
  Alcotest.(check int) "enqueue: no failures" 0 enq.C.cas_failure

(* --------------------------- KP ---------------------------------- *)

let kp_make ~help ~phase ~num_threads =
  Kp.create_with ~help ~phase ~num_threads ()

let test_kp_base_profile () =
  let q =
    kp_make ~help:Wfq_core.Kp_queue.Help_all
      ~phase:Wfq_core.Kp_queue.Phase_scan ~num_threads:1
  in
  let enq = profile (fun () -> Kp.enqueue q ~tid:0 1) in
  (* Three-step scheme: append CAS + pending-flip CAS + tail CAS. *)
  Alcotest.(check int) "enqueue: 3 CAS (scheme steps)" 3 enq.C.cas_success;
  Alcotest.(check int) "enqueue: no failures uncontended" 0
    enq.C.cas_failure;
  Kp.enqueue q ~tid:0 2;
  let deq = profile (fun () -> ignore (Kp.dequeue q ~tid:0)) in
  (* Stage 1 (descriptor -> sentinel) + stage 2 (deq_tid) + pending flip
     + head swing. *)
  Alcotest.(check int) "dequeue: 4 CAS (scheme + stage 1)" 4
    deq.C.cas_success;
  Alcotest.(check int) "dequeue: no failures uncontended" 0
    deq.C.cas_failure

let test_kp_scan_scales_with_threads () =
  let reads_for num_threads =
    let q =
      kp_make ~help:Wfq_core.Kp_queue.Help_all
        ~phase:Wfq_core.Kp_queue.Phase_scan ~num_threads
    in
    (profile (fun () -> Kp.enqueue q ~tid:0 1)).C.reads
  in
  let r1 = reads_for 1 and r8 = reads_for 8 and r16 = reads_for 16 in
  (* maxPhase + Help_all each scan all slots: at least 2 extra reads per
     extra slot. *)
  Alcotest.(check bool)
    (Printf.sprintf "base reads grow with n (1:%d 8:%d 16:%d)" r1 r8 r16)
    true
    (r8 >= r1 + (2 * 7) && r16 >= r8 + (2 * 8))

let test_kp_opt12_independent_of_threads () =
  let reads_for num_threads =
    let q =
      kp_make ~help:Wfq_core.Kp_queue.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads
    in
    (profile (fun () -> Kp.enqueue q ~tid:0 1)).C.reads
  in
  let r1 = reads_for 1 and r16 = reads_for 16 in
  (* The optimized operation touches at most one extra candidate slot
     regardless of n — the whole point of §3.3. *)
  Alcotest.(check bool)
    (Printf.sprintf "opt reads independent of n (1:%d 16:%d)" r1 r16)
    true
    (r16 <= r1 + 2)

let test_phase_counter_cas () =
  let q =
    kp_make ~help:Wfq_core.Kp_queue.Help_all
      ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads:1
  in
  let enq = profile (fun () -> Kp.enqueue q ~tid:0 1) in
  (* Optimization 2 adds exactly one (possibly failing, here winning)
     CAS on the phase counter. *)
  Alcotest.(check int) "enqueue: 3 scheme CAS + 1 phase CAS" 4
    enq.C.cas_success

let test_validate_before_cas_saves_nothing_uncontended () =
  (* Uncontended, the pending flag is still on when help_finish runs, so
     enhancement 3 changes nothing — its value is contention-only. *)
  let profile_with tuning =
    let q =
      Kp.create_with ~tuning ~help:Wfq_core.Kp_queue.Help_all
        ~phase:Wfq_core.Kp_queue.Phase_scan ~num_threads:1 ()
    in
    profile (fun () -> Kp.enqueue q ~tid:0 1)
  in
  let base = profile_with Wfq_core.Kp_queue.default_tuning in
  let tuned =
    profile_with
      { Wfq_core.Kp_queue.default_tuning with validate_before_cas = true }
  in
  Alcotest.(check int) "same CAS count uncontended" base.C.cas_success
    tuned.C.cas_success

let test_counters_reset_and_total () =
  CA.reset ();
  Alcotest.(check int) "reset zeroes" 0 (C.total (CA.snapshot ()));
  let c = CA.make 1 in
  ignore (CA.get c);
  CA.set c 2;
  ignore (CA.compare_and_set c 2 3);
  ignore (CA.compare_and_set c 2 4);
  ignore (CA.exchange c 5);
  ignore (CA.fetch_and_add c 1);
  let s = CA.snapshot () in
  Alcotest.(check int) "reads" 1 s.C.reads;
  Alcotest.(check int) "writes" 1 s.C.writes;
  Alcotest.(check int) "cas ok" 1 s.C.cas_success;
  Alcotest.(check int) "cas fail" 1 s.C.cas_failure;
  Alcotest.(check int) "exchange" 1 s.C.exchanges;
  Alcotest.(check int) "faa" 1 s.C.fetch_adds;
  Alcotest.(check int) "total" 6 (C.total s)

let () =
  Alcotest.run "op-profile"
    [
      ( "wrapper",
        [ Alcotest.test_case "counters count" `Quick
            test_counters_reset_and_total ] );
      ( "profiles",
        [
          Alcotest.test_case "MS cost model" `Quick test_ms_profile;
          Alcotest.test_case "LMS single-CAS enqueue" `Quick
            test_lms_profile;
          Alcotest.test_case "KP three-step scheme" `Quick
            test_kp_base_profile;
          Alcotest.test_case "base KP scans scale with n" `Quick
            test_kp_scan_scales_with_threads;
          Alcotest.test_case "opt KP independent of n" `Quick
            test_kp_opt12_independent_of_threads;
          Alcotest.test_case "phase counter adds one CAS" `Quick
            test_phase_counter_cas;
          Alcotest.test_case "validation is contention-only" `Quick
            test_validate_before_cas_saves_nothing_uncontended;
        ] );
    ]
