(* Sequential (single-thread) semantics of every queue implementation:
   each must behave exactly like Stdlib.Queue on any operation sequence.
   Differential testing via qcheck plus targeted unit cases. *)

module A = Wfq_primitives.Real_atomic
module Ms = Wfq_core.Ms_queue.Make (A)
module Kp = Wfq_core.Kp_queue.Make (A)
module Kp_hp = Wfq_core.Kp_queue_hp.Make (A)
module Spsc = Wfq_core.Spsc_queue.Make (A)
module Lms = Wfq_core.Lms_queue.Make (A)

(* A uniform view of each queue for the differential tests. *)
type 'q ops = {
  qname : string;
  make : unit -> 'q;
  enq : 'q -> int -> unit;
  deq : 'q -> int option;
  to_list : 'q -> int list;
  len : 'q -> int;
  empty : 'q -> bool;
}

type packed = Ops : 'q ops -> packed

let ms_ops =
  Ops
    {
      qname = "ms";
      make = (fun () -> Ms.create ~num_threads:1 ());
      enq = (fun q v -> Ms.enqueue q ~tid:0 v);
      deq = (fun q -> Ms.dequeue q ~tid:0);
      to_list = Ms.to_list;
      len = Ms.length;
      empty = Ms.is_empty;
    }

let kp_ops_with name help phase =
  Ops
    {
      qname = name;
      make = (fun () -> Kp.create_with ~help ~phase ~num_threads:1 ());
      enq = (fun q v -> Kp.enqueue q ~tid:0 v);
      deq = (fun q -> Kp.dequeue q ~tid:0);
      to_list = Kp.to_list;
      len = Kp.length;
      empty = Kp.is_empty;
    }

let kp_base =
  kp_ops_with "kp-base" Wfq_core.Kp_queue.Help_all Wfq_core.Kp_queue.Phase_scan

let kp_opt1 =
  kp_ops_with "kp-opt1" Wfq_core.Kp_queue.Help_one_cyclic
    Wfq_core.Kp_queue.Phase_scan

let kp_opt2 =
  kp_ops_with "kp-opt2" Wfq_core.Kp_queue.Help_all
    Wfq_core.Kp_queue.Phase_counter

let kp_opt12 =
  kp_ops_with "kp-opt12" Wfq_core.Kp_queue.Help_one_cyclic
    Wfq_core.Kp_queue.Phase_counter

let kp_hp_ops =
  Ops
    {
      qname = "kp-hp";
      make = (fun () -> Kp_hp.create ~num_threads:1 ());
      enq = (fun q v -> Kp_hp.enqueue q ~tid:0 v);
      deq = (fun q -> Kp_hp.dequeue q ~tid:0);
      to_list = Kp_hp.to_list;
      len = Kp_hp.length;
      empty = Kp_hp.is_empty;
    }

let two_lock_ops =
  Ops
    {
      qname = "two-lock";
      make = (fun () -> Wfq_core.Two_lock_queue.create ~num_threads:1 ());
      enq = (fun q v -> Wfq_core.Two_lock_queue.enqueue q ~tid:0 v);
      deq = (fun q -> Wfq_core.Two_lock_queue.dequeue q ~tid:0);
      to_list = Wfq_core.Two_lock_queue.to_list;
      len = Wfq_core.Two_lock_queue.length;
      empty = Wfq_core.Two_lock_queue.is_empty;
    }

let mutex_ops =
  Ops
    {
      qname = "mutex";
      make = (fun () -> Wfq_core.Mutex_queue.create ~num_threads:1 ());
      enq = (fun q v -> Wfq_core.Mutex_queue.enqueue q ~tid:0 v);
      deq = (fun q -> Wfq_core.Mutex_queue.dequeue q ~tid:0);
      to_list = Wfq_core.Mutex_queue.to_list;
      len = Wfq_core.Mutex_queue.length;
      empty = Wfq_core.Mutex_queue.is_empty;
    }

let lms_ops =
  Ops
    {
      qname = "lms";
      make = (fun () -> Lms.create ~num_threads:1 ());
      enq = (fun q v -> Lms.enqueue q ~tid:0 v);
      deq = (fun q -> Lms.dequeue q ~tid:0);
      to_list = Lms.to_list;
      len = Lms.length;
      empty = Lms.is_empty;
    }

let spsc_ops =
  Ops
    {
      qname = "spsc";
      make = (fun () -> Spsc.create ~capacity:4096 ~num_threads:2 ());
      enq = (fun q v -> Spsc.enqueue q ~tid:0 v);
      deq = (fun q -> Spsc.dequeue q ~tid:1);
      to_list = Spsc.to_list;
      len = Spsc.length;
      empty = Spsc.is_empty;
    }

let all_queues =
  [
    ms_ops; kp_base; kp_opt1; kp_opt2; kp_opt12; kp_hp_ops; two_lock_ops;
    mutex_ops; spsc_ops; lms_ops;
  ]

(* Static interface conformance: these bindings compile only if the
   implementations satisfy the shared signatures. *)
module _ : Wfq_core.Queue_intf.CHECKABLE_QUEUE = Ms
module _ : Wfq_core.Queue_intf.CHECKABLE_QUEUE = Kp
module _ : Wfq_core.Queue_intf.CHECKABLE_QUEUE = Lms
module _ : Wfq_core.Queue_intf.QUEUE = Wfq_core.Two_lock_queue
module _ : Wfq_core.Queue_intf.QUEUE = Wfq_core.Mutex_queue

(* ------------------------------------------------------------------ *)
(* Unit tests *)
(* ------------------------------------------------------------------ *)

let test_fifo (Ops o) () =
  let q = o.make () in
  Alcotest.(check bool) "fresh queue empty" true (o.empty q);
  Alcotest.(check (option int)) "deq on empty" None (o.deq q);
  List.iter (o.enq q) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length 5" 5 (o.len q);
  Alcotest.(check (list int)) "contents" [ 1; 2; 3; 4; 5 ] (o.to_list q);
  Alcotest.(check (option int)) "deq 1" (Some 1) (o.deq q);
  Alcotest.(check (option int)) "deq 2" (Some 2) (o.deq q);
  o.enq q 6;
  Alcotest.(check (list int)) "after mixed ops" [ 3; 4; 5; 6 ] (o.to_list q);
  Alcotest.(check (option int)) "deq 3" (Some 3) (o.deq q);
  Alcotest.(check (option int)) "deq 4" (Some 4) (o.deq q);
  Alcotest.(check (option int)) "deq 5" (Some 5) (o.deq q);
  Alcotest.(check (option int)) "deq 6" (Some 6) (o.deq q);
  Alcotest.(check (option int)) "empty again" None (o.deq q);
  Alcotest.(check bool) "is_empty after drain" true (o.empty q)

let test_empty_run (Ops o) () =
  let q = o.make () in
  (* Repeated empty dequeues must stay stable (the paper's unsuccessful
     dequeue leaves the queue unchanged). *)
  for _ = 1 to 10 do
    Alcotest.(check (option int)) "still empty" None (o.deq q)
  done;
  o.enq q 42;
  Alcotest.(check (option int)) "enq after empties" (Some 42) (o.deq q)

let test_drain_refill (Ops o) () =
  let q = o.make () in
  for round = 1 to 5 do
    for i = 1 to 100 do
      o.enq q ((round * 1000) + i)
    done;
    for i = 1 to 100 do
      Alcotest.(check (option int))
        "fifo across rounds"
        (Some ((round * 1000) + i))
        (o.deq q)
    done;
    Alcotest.(check (option int)) "drained" None (o.deq q)
  done

(* ------------------------------------------------------------------ *)
(* qcheck differential property: any op sequence ≡ Stdlib.Queue *)
(* ------------------------------------------------------------------ *)

type op = Enq of int | Deq

let op_gen =
  QCheck2.Gen.(
    oneof [ map (fun v -> Enq v) (int_bound 1000); return Deq ])

let ops_gen = QCheck2.Gen.(list_size (int_bound 200) op_gen)

let print_ops ops =
  String.concat ";"
    (List.map (function Enq v -> Printf.sprintf "E%d" v | Deq -> "D") ops)

let differential_prop (Ops o) ops =
  let q = o.make () in
  let model = Queue.create () in
  List.for_all
    (function
      | Enq v ->
          o.enq q v;
          Queue.push v model;
          true
      | Deq -> o.deq q = Queue.take_opt model)
    ops
  && o.to_list q = List.of_seq (Queue.to_seq model)
  && o.len q = Queue.length model

let differential_tests =
  List.map
    (fun (Ops o as packed) ->
      QCheck_alcotest.to_alcotest
        (QCheck2.Test.make
           ~name:(Printf.sprintf "%s ≡ Stdlib.Queue" o.qname)
           ~count:300 ~print:print_ops ops_gen
           (differential_prop packed)))
    all_queues

(* ------------------------------------------------------------------ *)
(* KP-specific white-box checks *)
(* ------------------------------------------------------------------ *)

let test_kp_invariants () =
  let q =
    Kp.create_with ~help:Wfq_core.Kp_queue.Help_all
      ~phase:Wfq_core.Kp_queue.Phase_scan ~num_threads:4 ()
  in
  for i = 1 to 50 do
    Kp.enqueue q ~tid:(i mod 4) i
  done;
  for _ = 1 to 20 do
    ignore (Kp.dequeue q ~tid:0)
  done;
  (match Kp.check_quiescent_invariants q with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "30 left" 30 (Kp.length q)

let test_kp_phases_monotonic () =
  let q = Kp.create ~num_threads:2 () in
  let last = ref (-1) in
  for i = 1 to 20 do
    Kp.enqueue q ~tid:(i mod 2) i;
    let ph = Kp.phase_of q ~tid:(i mod 2) in
    Alcotest.(check bool) "phase grows" true (ph > !last);
    last := ph;
    Alcotest.(check bool) "not pending after return" false
      (Kp.pending_of q ~tid:(i mod 2))
  done

let test_ms_invariants () =
  let q = Ms.create ~num_threads:1 () in
  for i = 1 to 10 do
    Ms.enqueue q ~tid:0 i
  done;
  ignore (Ms.dequeue q ~tid:0);
  match Ms.check_quiescent_invariants q with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_spsc_capacity () =
  let q = Spsc.create ~capacity:4 ~num_threads:2 () in
  for i = 1 to 4 do
    Alcotest.(check bool) "fits" true (Spsc.try_enqueue q i)
  done;
  Alcotest.(check bool) "full" false (Spsc.try_enqueue q 5);
  Alcotest.(check (option int)) "pop front" (Some 1) (Spsc.dequeue q ~tid:1);
  Alcotest.(check bool) "space again" true (Spsc.try_enqueue q 5);
  Alcotest.(check (list int)) "ring order" [ 2; 3; 4; 5 ] (Spsc.to_list q)

(* SPSC bounded-capacity property: against a bounded model, try_enqueue
   must accept exactly while the model has room. *)
let spsc_bounded_model =
  QCheck2.Test.make ~name:"spsc ≡ bounded model" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 8) (list_size (int_bound 100) (int_bound 1)))
    (fun (capacity, cmds) ->
      let q = Spsc.create ~capacity ~num_threads:2 () in
      let model = Queue.create () in
      List.for_all
        (fun cmd ->
          if cmd = 0 then begin
            let accepted = Spsc.try_enqueue q (Queue.length model) in
            let model_room = Queue.length model < capacity in
            if accepted <> model_room then false
            else begin
              if accepted then Queue.push (Queue.length model) model;
              true
            end
          end
          else Spsc.dequeue q ~tid:1 = Queue.take_opt model)
        cmds)

let test_generic_payload () =
  (* The queues are polymorphic; exercise a non-int payload. *)
  let q = Kp.create ~num_threads:1 () in
  Kp.enqueue q ~tid:0 "alpha";
  Kp.enqueue q ~tid:0 "beta";
  Alcotest.(check (option string)) "string deq" (Some "alpha")
    (Kp.dequeue q ~tid:0);
  Alcotest.(check (option string)) "string deq 2" (Some "beta")
    (Kp.dequeue q ~tid:0)

let per_queue_cases =
  List.concat_map
    (fun (Ops o as packed) ->
      [
        Alcotest.test_case (o.qname ^ " fifo basics") `Quick
          (test_fifo packed);
        Alcotest.test_case (o.qname ^ " empty dequeues") `Quick
          (test_empty_run packed);
        Alcotest.test_case (o.qname ^ " drain/refill cycles") `Quick
          (test_drain_refill packed);
      ])
    all_queues

let () =
  Alcotest.run "queues-sequential"
    [
      ("basics", per_queue_cases);
      ("differential", differential_tests);
      ( "white-box",
        [
          Alcotest.test_case "kp quiescent invariants" `Quick
            test_kp_invariants;
          Alcotest.test_case "kp phases monotonic" `Quick
            test_kp_phases_monotonic;
          Alcotest.test_case "ms quiescent invariants" `Quick
            test_ms_invariants;
          Alcotest.test_case "spsc capacity bound" `Quick test_spsc_capacity;
          QCheck_alcotest.to_alcotest spsc_bounded_model;
          Alcotest.test_case "generic payload" `Quick test_generic_payload;
        ] );
    ]
