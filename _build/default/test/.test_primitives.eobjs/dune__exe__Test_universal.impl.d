test/test_universal.ml: Alcotest Array Atomic Domain Format List Printexc Printf Queue Wfq_lincheck Wfq_primitives Wfq_sim Wfq_universal
