test/test_queues_conc.ml: Alcotest Array Atomic Domain Hashtbl List Printf Wfq_core Wfq_primitives
