test/test_op_profile.mli:
