test/test_harness.ml: Alcotest Array Atomic Domain Float List Printf String Unix Wfq_core Wfq_harness
