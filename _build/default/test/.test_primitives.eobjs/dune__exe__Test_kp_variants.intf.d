test/test_kp_variants.mli:
