test/test_registry.ml: Alcotest Array Atomic Domain Hashtbl List QCheck2 QCheck_alcotest Wfq_core Wfq_primitives Wfq_registry
