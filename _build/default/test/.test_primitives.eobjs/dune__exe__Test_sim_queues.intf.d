test/test_sim_queues.mli:
