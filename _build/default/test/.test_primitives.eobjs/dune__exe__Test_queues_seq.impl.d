test/test_queues_seq.ml: Alcotest List Printf QCheck2 QCheck_alcotest Queue String Wfq_core Wfq_primitives
