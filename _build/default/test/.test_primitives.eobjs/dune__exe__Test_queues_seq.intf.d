test/test_queues_seq.mli:
