test/test_op_profile.ml: Alcotest Printf Wfq_core Wfq_primitives
