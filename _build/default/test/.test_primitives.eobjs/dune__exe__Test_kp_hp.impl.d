test/test_kp_hp.ml: Alcotest Array Domain Hashtbl List Printf Wfq_core Wfq_primitives
