test/test_queues_conc.mli:
