test/test_hazard.ml: Alcotest Atomic Domain List Wfq_hazard Wfq_primitives
