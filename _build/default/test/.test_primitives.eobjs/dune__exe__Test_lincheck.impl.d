test/test_lincheck.ml: Alcotest Array Domain Format List QCheck2 QCheck_alcotest Queue Wfq_core Wfq_lincheck
