test/test_fc_queue.mli:
