test/test_kp_hp.mli:
