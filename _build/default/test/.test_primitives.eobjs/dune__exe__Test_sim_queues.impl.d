test/test_sim_queues.ml: Alcotest Array Format List Printexc Printf QCheck2 QCheck_alcotest String Wfq_core Wfq_lincheck Wfq_sim
