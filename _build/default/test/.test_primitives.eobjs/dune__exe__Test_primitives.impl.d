test/test_primitives.ml: Alcotest Domain List Printf QCheck2 QCheck_alcotest Wfq_primitives
