test/test_fc_queue.ml: Alcotest Array Atomic Domain Hashtbl List Printexc Printf Queue Wfq_core Wfq_lincheck Wfq_primitives Wfq_sim
