test/test_kp_variants.ml: Alcotest Array Atomic Domain Gc List Printf Queue String Sys Wfq_core Wfq_lincheck Wfq_primitives Wfq_sim
