test/test_sim.ml: Alcotest Array List Printexc Printf String Wfq_sim
