(* Tests of the deterministic simulator itself: scheduling strategies,
   replay, stall injection, and the two explorers — demonstrated on small
   programs with known-good and known-racy behaviour. *)

module S = Wfq_sim.Scheduler
module SA = Wfq_sim.Sim_atomic
module E = Wfq_sim.Explore

let run = S.run

let test_single_fiber () =
  let r = SA.make 0 in
  let result = run [| (fun () -> SA.set r 41; SA.set r (SA.peek r + 1)) |] in
  Alcotest.(check bool) "finished" true (result.S.outcome = S.All_finished);
  Alcotest.(check int) "value" 42 (SA.peek r);
  Alcotest.(check bool) "steps counted" true (result.S.steps.(0) >= 2)

let test_interleaving_round_robin () =
  (* Two fibers each append their id thrice; round-robin must alternate. *)
  let log = ref [] in
  let fiber id () =
    for _ = 1 to 3 do
      S.yield ();
      log := id :: !log
    done
  in
  let result = run ~strategy:S.Round_robin [| fiber 0; fiber 1 |] in
  Alcotest.(check bool) "finished" true (result.S.outcome = S.All_finished);
  Alcotest.(check (list int)) "alternation" [ 0; 1; 0; 1; 0; 1 ]
    (List.rev !log)

let test_first_enabled_runs_in_order () =
  let log = ref [] in
  let fiber id () =
    S.yield ();
    log := id :: !log
  in
  let result = run ~strategy:S.First_enabled [| fiber 0; fiber 1; fiber 2 |] in
  Alcotest.(check bool) "finished" true (result.S.outcome = S.All_finished);
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2 ] (List.rev !log)

let trace_choices (r : S.result) = List.map (fun (_, i, _) -> i) r.S.trace

let test_random_deterministic () =
  let program () =
    let r = SA.make 0 in
    [| (fun () -> SA.set r 1); (fun () -> SA.set r 2);
       (fun () -> SA.set r 3) |]
  in
  let r1 = run ~strategy:(S.Random_seeded 7) (program ()) in
  let r2 = run ~strategy:(S.Random_seeded 7) (program ()) in
  let r3 = run ~strategy:(S.Random_seeded 8) (program ()) in
  Alcotest.(check (list int)) "same seed same trace" (trace_choices r1)
    (trace_choices r2);
  Alcotest.(check bool) "different seed may differ (traces recorded)" true
    (List.length (trace_choices r3) > 0)

let test_replay () =
  let program () =
    let r = SA.make 0 in
    ( r,
      [| (fun () -> SA.set r (SA.get r + 1));
         (fun () -> SA.set r (SA.get r + 10)) |] )
  in
  let r1, fibers1 = program () in
  let res1 = run ~strategy:(S.Random_seeded 3) fibers1 in
  let final1 = SA.peek r1 in
  let r2, fibers2 = program () in
  let res2 = run ~forced:(trace_choices res1) fibers2 in
  Alcotest.(check (list int)) "replayed trace equal" (trace_choices res1)
    (trace_choices res2);
  Alcotest.(check int) "replayed outcome equal" final1 (SA.peek r2)

let test_stall_and_resume () =
  let r = SA.make 0 in
  let fibers () =
    [| (fun () -> SA.set r (SA.get r + 1));
       (fun () -> SA.set r (SA.get r + 1)) |]
  in
  (* Fiber 0 stalls after its first step and never wakes. *)
  let res = run ~stalls:[ (0, 1) ] (fibers ()) in
  Alcotest.(check bool) "stalled outcome" true
    (res.S.outcome = S.Only_stalled_left);
  (* Same but the stalled fiber wakes once everyone else is done. *)
  let r2 = SA.make 0 in
  let fibers2 =
    [| (fun () -> SA.set r2 (SA.get r2 + 1));
       (fun () -> SA.set r2 (SA.get r2 + 1)) |]
  in
  let res2 = run ~stalls:[ (0, 1) ] ~resume_stalled:true fibers2 in
  Alcotest.(check bool) "resumed to completion" true
    (res2.S.outcome = S.All_finished)

let test_step_limit () =
  let r = SA.make 0 in
  let spin () =
    while SA.get r = 0 do
      ()
    done
  in
  let res = run ~step_limit:500 [| spin |] in
  Alcotest.(check bool) "limit hit" true (res.S.outcome = S.Step_limit_hit)

let test_fiber_exception_captured () =
  let res = run [| (fun () -> S.yield (); failwith "boom") |] in
  match res.S.error with
  | Some (Failure msg) -> Alcotest.(check string) "message" "boom" msg
  | Some e -> Alcotest.fail ("unexpected exn " ^ Printexc.to_string e)
  | None -> Alcotest.fail "exception not captured"

(* ---------------------------------------------------------------- *)
(* Explorers on the canonical racy/correct counter pair              *)
(* ---------------------------------------------------------------- *)

(* Lost-update race: read-modify-write without CAS. *)
let racy_counter () =
  let r = SA.make 0 in
  let worker () = SA.set r (SA.get r + 1) in
  ( [| worker; worker |],
    fun (_ : S.result) ->
      if SA.peek r = 2 then Ok ()
      else Error (Printf.sprintf "lost update: %d" (SA.peek r)) )

(* CAS retry loop: no schedule can lose an update. *)
let cas_counter () =
  let r = SA.make 0 in
  let rec incr () =
    let v = SA.get r in
    if not (SA.compare_and_set r v (v + 1)) then incr ()
  in
  ( [| incr; incr |],
    fun (_ : S.result) ->
      if SA.peek r = 2 then Ok ()
      else Error (Printf.sprintf "lost update: %d" (SA.peek r)) )

let test_exhaustive_finds_race () =
  let report = E.exhaustive ~make:racy_counter () in
  match report.E.failure with
  | Some (_, msg) ->
      Alcotest.(check bool) "diagnosed lost update" true
        (String.length msg > 0)
  | None -> Alcotest.fail "exhaustive exploration missed the data race"

let test_exhaustive_verifies_cas () =
  let report = E.exhaustive ~make:cas_counter () in
  Alcotest.(check bool) "no failure" true (report.E.failure = None);
  Alcotest.(check bool) "exhausted" true report.E.exhausted;
  Alcotest.(check bool) "explored several schedules" true
    (report.E.schedules > 1)

let test_preemption_bounded_finds_race () =
  let report = E.preemption_bounded ~budget:1 ~make:racy_counter () in
  Alcotest.(check bool) "found with one preemption" true
    (report.E.failure <> None)

let test_preemption_budget_zero_misses_race () =
  (* With zero preemptions fibers run to completion sequentially, so the
     racy counter is correct under every explored schedule — showing that
     the budget really is what exposes interleavings. *)
  let report = E.preemption_bounded ~budget:0 ~make:racy_counter () in
  Alcotest.(check bool) "no failure at budget 0" true
    (report.E.failure = None);
  Alcotest.(check bool) "exhausted" true report.E.exhausted

let test_preemption_schedule_counts_grow () =
  let count budget =
    (E.preemption_bounded ~budget ~make:cas_counter ()).E.schedules
  in
  let c0 = count 0 and c1 = count 1 and c2 = count 2 in
  (* Budget 0 still explores both completion orders: the choice of which
     fiber starts (and which runs after one finishes) is free — only
     switching away from a runnable fiber costs a preemption. *)
  Alcotest.(check int) "budget 0 = the two run-to-completion orders" 2 c0;
  Alcotest.(check bool) "budget 1 adds schedules" true (c1 > c0);
  Alcotest.(check bool) "budget 2 adds more" true (c2 > c1)

let test_replay_of_explorer_failure () =
  let report = E.exhaustive ~make:racy_counter () in
  match report.E.failure with
  | None -> Alcotest.fail "expected failure"
  | Some (prefix, _) ->
      (* Replaying the failing prefix must reproduce the bad outcome. *)
      let fibers, check = racy_counter () in
      let res = run ~forced:prefix fibers in
      Alcotest.(check bool) "run completes" true
        (res.S.outcome = S.All_finished);
      Alcotest.(check bool) "failure reproduced" true (check res <> Ok ())

(* Completeness: for two independent straight-line fibers of a and b
   scheduler steps, the distinct interleavings number exactly
   C(a+b, a) — the explorer must enumerate them all, no more, no less. *)
let test_exhaustive_counts_are_binomial () =
  let binom n k =
    let rec go acc i =
      if i > k then acc else go (acc * (n - k + i) / i) (i + 1)
    in
    go 1 1
  in
  List.iter
    (fun (k1, k2) ->
      let make () =
        let r = SA.make 0 in
        let fiber k () =
          for _ = 1 to k do
            SA.set r 1
          done
        in
        ([| fiber k1; fiber k2 |], fun (_ : S.result) -> Ok ())
      in
      (* A fiber performing k atomic ops costs k+1 scheduler steps: one
         per op plus the final resume that runs it to completion. *)
      let expected = binom (k1 + k2 + 2) (k1 + 1) in
      let report = E.exhaustive ~make () in
      Alcotest.(check bool) "exhausted" true report.E.exhausted;
      Alcotest.(check int)
        (Printf.sprintf "C(%d,%d) schedules for %d+%d ops" (k1 + k2 + 2)
           (k1 + 1) k1 k2)
        expected report.E.schedules)
    [ (1, 1); (2, 1); (2, 2); (3, 2); (3, 3) ]

let test_fuzz_smoke () =
  let report = E.fuzz ~count:50 ~make:cas_counter () in
  Alcotest.(check bool) "no failure" true (report.E.failure = None);
  let report2 = E.fuzz ~count:200 ~make:racy_counter () in
  Alcotest.(check bool) "fuzz finds the race" true
    (report2.E.failure <> None)

let test_pct_deterministic_and_priority () =
  (* Same seed: identical trace. Fresh start: the highest-priority fiber
     runs to completion first under zero change points. *)
  let program () =
    let r = SA.make 0 in
    [| (fun () -> SA.set r 1); (fun () -> SA.set r 2);
       (fun () -> SA.set r 3) |]
  in
  let strat seed =
    S.Pct { seed; change_points = 0; expected_length = 10 }
  in
  let r1 = run ~strategy:(strat 5) (program ()) in
  let r2 = run ~strategy:(strat 5) (program ()) in
  Alcotest.(check (list int)) "pct deterministic per seed"
    (trace_choices r1) (trace_choices r2);
  (* With no change points each fiber runs to completion before the next
     starts: the chosen index at consecutive decisions stays on the same
     fiber until it finishes. Observable as: the set sequence ends with
     the LOWEST-priority fiber's write. *)
  Alcotest.(check bool) "all finished" true
    (r1.S.outcome = S.All_finished)

let test_pct_finds_race () =
  let report = E.pct ~count:200 ~change_points:1 ~make:racy_counter () in
  Alcotest.(check bool) "pct finds the lost update" true
    (report.E.failure <> None)

let test_pct_passes_cas () =
  let report = E.pct ~count:100 ~change_points:2 ~make:cas_counter () in
  Alcotest.(check bool) "no failure on correct code" true
    (report.E.failure = None)

let test_ignore_yields () =
  let r = SA.make 5 in
  let v = S.ignore_yields (fun () -> SA.get r + SA.get r) in
  Alcotest.(check int) "observers usable outside runs" 10 v

let () =
  Alcotest.run "simulator"
    [
      ( "scheduler",
        [
          Alcotest.test_case "single fiber" `Quick test_single_fiber;
          Alcotest.test_case "round-robin interleaves" `Quick
            test_interleaving_round_robin;
          Alcotest.test_case "first-enabled order" `Quick
            test_first_enabled_runs_in_order;
          Alcotest.test_case "random is deterministic per seed" `Quick
            test_random_deterministic;
          Alcotest.test_case "trace replay" `Quick test_replay;
          Alcotest.test_case "stall injection and resume" `Quick
            test_stall_and_resume;
          Alcotest.test_case "step limit detects spinning" `Quick
            test_step_limit;
          Alcotest.test_case "fiber exception captured" `Quick
            test_fiber_exception_captured;
          Alcotest.test_case "ignore_yields helper" `Quick test_ignore_yields;
        ] );
      ( "explore",
        [
          Alcotest.test_case "exhaustive finds lost update" `Quick
            test_exhaustive_finds_race;
          Alcotest.test_case "exhaustive verifies CAS counter" `Quick
            test_exhaustive_verifies_cas;
          Alcotest.test_case "preemption-bounded finds race" `Quick
            test_preemption_bounded_finds_race;
          Alcotest.test_case "budget 0 means sequential" `Quick
            test_preemption_budget_zero_misses_race;
          Alcotest.test_case "schedule count grows with budget" `Quick
            test_preemption_schedule_counts_grow;
          Alcotest.test_case "failing prefix replays" `Quick
            test_replay_of_explorer_failure;
          Alcotest.test_case "exhaustive counts are binomial" `Quick
            test_exhaustive_counts_are_binomial;
          Alcotest.test_case "fuzz smoke" `Quick test_fuzz_smoke;
          Alcotest.test_case "pct deterministic + completes" `Quick
            test_pct_deterministic_and_priority;
          Alcotest.test_case "pct finds race at depth 2" `Quick
            test_pct_finds_race;
          Alcotest.test_case "pct passes correct code" `Quick
            test_pct_passes_cas;
        ] );
    ]
