(* Tests for the flat-combining queue: sequential semantics, fairness of
   combining (everyone's requests get served), domain stress, and
   simulator runs under fair strategies with linearizability checking. *)

module A = Wfq_primitives.Real_atomic
module SA = Wfq_sim.Sim_atomic
module S = Wfq_sim.Scheduler
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker
module Fc = Wfq_core.Fc_queue.Make (A)
module FcSim = Wfq_core.Fc_queue.Make (SA)

let test_basics () =
  let q = Fc.create ~num_threads:2 () in
  Alcotest.(check bool) "empty" true (Fc.is_empty q);
  Alcotest.(check (option int)) "deq empty" None (Fc.dequeue q ~tid:0);
  List.iter (Fc.enqueue q ~tid:0) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] (Fc.to_list q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Fc.dequeue q ~tid:1);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Fc.dequeue q ~tid:0);
  Alcotest.(check int) "length" 1 (Fc.length q)

let test_sequential_differential () =
  let q = Fc.create ~num_threads:3 () in
  let model = Queue.create () in
  let rng = Wfq_primitives.Rng.create ~seed:17 in
  for i = 1 to 2_000 do
    let tid = Wfq_primitives.Rng.below rng 3 in
    if Wfq_primitives.Rng.bool rng then begin
      Fc.enqueue q ~tid i;
      Queue.push i model
    end
    else if Fc.dequeue q ~tid <> Queue.take_opt model then
      Alcotest.fail "diverged from model"
  done;
  Alcotest.(check (list int)) "final"
    (List.of_seq (Queue.to_seq model))
    (Fc.to_list q)

let test_combiner_serves_peers () =
  (* Under the simulator with round-robin: publish requests from three
     fibers; whichever becomes combiner must serve all, and the history
     must be linearizable. *)
  let q = FcSim.create ~num_threads:3 () in
  let hist = H.create () in
  let fiber tid () =
    H.call hist ~thread:tid (H.Enq tid);
    FcSim.enqueue q ~tid tid;
    H.return hist ~thread:tid H.Done;
    H.call hist ~thread:tid H.Deq;
    (match FcSim.dequeue q ~tid with
    | Some v -> H.return hist ~thread:tid (H.Got v)
    | None -> H.return hist ~thread:tid H.Empty)
  in
  let res =
    S.run ~strategy:S.Round_robin [| fiber 0; fiber 1; fiber 2 |]
  in
  Alcotest.(check bool) "finished" true (res.S.outcome = S.All_finished);
  Alcotest.(check bool) "linearizable" true
    (C.is_linearizable (H.completed hist));
  Alcotest.(check bool) "drained" true
    (S.ignore_yields (fun () -> FcSim.is_empty q))

let test_sim_random_fuzz () =
  (* Seeded-random schedules are fair with probability 1; every run's
     history must linearize. *)
  for seed = 0 to 199 do
    let q = FcSim.create ~num_threads:2 () in
    let hist = H.create () in
    let script tid ops () =
      List.iter
        (function
          | `Enq v ->
              H.call hist ~thread:tid (H.Enq v);
              FcSim.enqueue q ~tid v;
              H.return hist ~thread:tid H.Done
          | `Deq -> (
              H.call hist ~thread:tid H.Deq;
              match FcSim.dequeue q ~tid with
              | Some v -> H.return hist ~thread:tid (H.Got v)
              | None -> H.return hist ~thread:tid H.Empty))
        ops
    in
    let res =
      S.run
        ~strategy:(S.Random_seeded seed)
        [|
          script 0 [ `Enq 1; `Deq; `Enq 2 ];
          script 1 [ `Deq; `Enq 3; `Deq ];
        |]
    in
    (match res.S.error with
    | Some e -> Alcotest.fail (Printexc.to_string e)
    | None -> ());
    if not (C.is_linearizable (H.completed hist)) then
      Alcotest.fail (Printf.sprintf "seed %d: not linearizable" seed)
  done

let test_domain_stress () =
  let threads = 4 and per = 4_000 in
  let q = Fc.create ~num_threads:threads () in
  let empties = Atomic.make 0 in
  let ds =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Fc.enqueue q ~tid ((tid * per) + i);
              match Fc.dequeue q ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no empties in pairs" 0 (Atomic.get empties);
  Alcotest.(check int) "drained" 0 (Fc.length q)

let test_producer_consumer_conservation () =
  let q = Fc.create ~num_threads:4 () in
  let total = 2 * 5_000 in
  let consumed = Atomic.make 0 in
  let seen = Array.make 2 [] in
  let producer p () =
    for s = 1 to 5_000 do
      Fc.enqueue q ~tid:p ((p * 1_000_000) + s)
    done
  in
  let consumer c () =
    let tid = 2 + c in
    let acc = ref [] in
    while Atomic.get consumed < total do
      match Fc.dequeue q ~tid with
      | Some v ->
          acc := v :: !acc;
          Atomic.incr consumed
      | None -> Domain.cpu_relax ()
    done;
    seen.(c) <- !acc
  in
  let ds =
    [ Domain.spawn (producer 0); Domain.spawn (producer 1);
      Domain.spawn (consumer 0); Domain.spawn (consumer 1) ]
  in
  List.iter Domain.join ds;
  let tbl = Hashtbl.create total in
  Array.iter
    (List.iter (fun v ->
         if Hashtbl.mem tbl v then Alcotest.fail "duplicate delivery"
         else Hashtbl.add tbl v ()))
    seen;
  Alcotest.(check int) "conservation" total (Hashtbl.length tbl)

let test_create_validation () =
  Alcotest.check_raises "num_threads"
    (Invalid_argument "Fc_queue.create: num_threads") (fun () ->
      ignore (Fc.create ~num_threads:0 ()))

let () =
  Alcotest.run "fc-queue"
    [
      ( "sequential",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "≡ model" `Quick test_sequential_differential;
          Alcotest.test_case "create validation" `Quick
            test_create_validation;
        ] );
      ( "simulator (fair strategies)",
        [
          Alcotest.test_case "combiner serves peers" `Quick
            test_combiner_serves_peers;
          Alcotest.test_case "random fuzz x200 linearizable" `Quick
            test_sim_random_fuzz;
        ] );
      ( "domains",
        [
          Alcotest.test_case "pairs stress" `Quick test_domain_stress;
          Alcotest.test_case "2p/2c conservation" `Quick
            test_producer_consumer_conservation;
        ] );
    ]
