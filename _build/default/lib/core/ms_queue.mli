(** Michael & Scott's lock-free queue (PODC 1996) — the baseline the
    paper compares against ("LF" in its figures).

    Linearizable MPMC FIFO; lock-free but not wait-free: an individual
    thread's CAS can lose arbitrarily often while the system as a whole
    makes progress (demonstrated by a simulator test). [tid] is accepted
    for interface uniformity and ignored. *)

module Make (_ : Wfq_primitives.Atomic_intf.ATOMIC) :
  Queue_intf.CHECKABLE_QUEUE
