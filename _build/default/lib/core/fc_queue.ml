(** Flat-combining queue (Hendler, Incze, Shavit & Tzafrir, SPAA 2010) —
    a contemporary of the paper representing the opposite design
    philosophy: instead of making every thread able to finish every
    operation (helping), {e one} thread at a time (the combiner) grabs a
    lock and applies everybody's published operations to a plain
    sequential queue in a single cache-friendly sweep.

    Threads publish requests in per-thread slots; whoever acquires the
    test-and-set combiner lock services all pending slots. Waiting
    threads spin on their own slot and opportunistically try to become
    the combiner themselves when the lock looks free.

    Progress: blocking — a preempted combiner stalls every pending
    operation (contrast class for the wait-free queue, like
    [Two_lock_queue], but with much better cache behaviour under
    contention on real multicores). Built over the [ATOMIC] functor so
    it can run under the simulator with {e fair} strategies
    (round-robin/random); systematic non-preemptive exploration would
    spin on the lock by design. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type 'a request =
    | Idle
    | Do_enq of 'a
    | Do_deq
    | Done_enq
    | Done_deq of 'a option

  type 'a t = {
    lock : bool A.t; (* test-and-set combiner lock *)
    slots : 'a request A.t array; (* per-thread publication records *)
    queue : 'a Queue.t; (* sequential queue; combiner-only access *)
    num_threads : int;
  }

  let name = "flat-combining"

  let create ~num_threads () =
    if num_threads <= 0 then invalid_arg "Fc_queue.create: num_threads";
    {
      lock = A.make false;
      slots = Array.init num_threads (fun _ -> A.make Idle);
      queue = Queue.create ();
      num_threads;
    }

  let try_lock t = A.compare_and_set t.lock false true
  let unlock t = A.set t.lock false

  (* Serve every published request. Only the lock holder runs this, so
     the sequential queue needs no further protection. *)
  let combine t =
    for i = 0 to t.num_threads - 1 do
      match A.get t.slots.(i) with
      | Do_enq v ->
          Queue.push v t.queue;
          A.set t.slots.(i) Done_enq
      | Do_deq -> A.set t.slots.(i) (Done_deq (Queue.take_opt t.queue))
      | Idle | Done_enq | Done_deq _ -> ()
    done

  (* Publish [req] in the caller's slot, then spin until it is served —
     becoming the combiner whenever the lock is free. *)
  let operate t ~tid req =
    A.set t.slots.(tid) req;
    let rec wait () =
      match A.get t.slots.(tid) with
      | Done_enq ->
          A.set t.slots.(tid) Idle;
          None
      | Done_deq r ->
          A.set t.slots.(tid) Idle;
          r
      | Idle -> assert false
      | Do_enq _ | Do_deq ->
          if try_lock t then begin
            combine t;
            unlock t
          end;
          wait ()
    in
    wait ()

  let enqueue t ~tid v = ignore (operate t ~tid (Do_enq v))
  let dequeue t ~tid = operate t ~tid Do_deq

  (* Quiescent observers: grab the combiner lock so a concurrent sweep
     cannot race the traversal (exact at quiescence, best-effort
     otherwise, like the other queues). *)
  let with_combiner_lock t f =
    let rec acquire () = if not (try_lock t) then acquire () in
    acquire ();
    Fun.protect ~finally:(fun () -> unlock t) f

  let to_list t =
    with_combiner_lock t (fun () -> List.of_seq (Queue.to_seq t.queue))

  let length t = with_combiner_lock t (fun () -> Queue.length t.queue)
  let is_empty t = with_combiner_lock t (fun () -> Queue.is_empty t.queue)
end
