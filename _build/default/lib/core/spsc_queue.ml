(** Lamport's single-producer / single-consumer wait-free ring buffer.

    The paper's related work (ref [16]) cites this as the first wait-free
    queue — with concurrency limited to one enqueuer and one dequeuer, and
    capacity fixed at construction. We include it to reproduce that design
    point: it is wait-free *because* the producer owns [tail] and the
    consumer owns [head], so neither ever retries.

    Safety on OCaml 5: indices are [Atomic.t]; the cell array is written
    before the index publish ([Atomic.set] is a release store, [Atomic.get]
    an acquire load), so the consumer always observes the cell contents
    written by the producer. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type 'a t = {
    cells : 'a option array;
    capacity : int;
    head : int A.t; (* next slot to read; advanced only by the consumer *)
    tail : int A.t; (* next slot to write; advanced only by the producer *)
  }

  let name = "lamport-spsc"

  let create ?(capacity = 1024) ~num_threads:_ () =
    if capacity <= 0 then invalid_arg "Spsc_queue.create: capacity";
    (* One slot is sacrificed to distinguish full from empty. *)
    {
      cells = Array.make (capacity + 1) None;
      capacity = capacity + 1;
      head = A.make 0;
      tail = A.make 0;
    }

  let try_enqueue t value =
    let tail = A.get t.tail in
    let next = (tail + 1) mod t.capacity in
    if next = A.get t.head then false (* full *)
    else begin
      t.cells.(tail) <- Some value;
      A.set t.tail next;
      true
    end

  let dequeue t ~tid:_ =
    let head = A.get t.head in
    if head = A.get t.tail then None (* empty *)
    else begin
      let v = t.cells.(head) in
      t.cells.(head) <- None;
      A.set t.head ((head + 1) mod t.capacity);
      v
    end

  let enqueue t ~tid value =
    ignore tid;
    if not (try_enqueue t value) then failwith "Spsc_queue.enqueue: full"

  let length t =
    let h = A.get t.head and tl = A.get t.tail in
    (tl - h + t.capacity) mod t.capacity

  let is_empty t = length t = 0

  let to_list t =
    let h = A.get t.head and n = length t in
    List.init n (fun i ->
        match t.cells.((h + i) mod t.capacity) with
        | Some v -> v
        | None -> assert false)
end
