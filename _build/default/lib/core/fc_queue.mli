(** Flat-combining queue (Hendler et al., SPAA 2010): per-thread request
    publication plus a test-and-set combiner lock whose holder applies
    all pending operations to a sequential queue in one sweep. The
    combining counterpoint to the paper's helping: high throughput under
    contention, but blocking — a preempted combiner stalls everyone.

    Under the simulator use fair strategies (round-robin / seeded
    random); non-preemptive exploration spins on the combiner lock by
    design. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string
  val create : num_threads:int -> unit -> 'a t
  val enqueue : 'a t -> tid:int -> 'a -> unit
  val dequeue : 'a t -> tid:int -> 'a option

  (** Quiescent observers (they briefly hold the combiner lock). *)

  val to_list : 'a t -> 'a list
  val length : 'a t -> int
  val is_empty : 'a t -> bool
end
