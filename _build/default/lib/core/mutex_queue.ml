(** Coarse-grained baseline: [Stdlib.Queue] under a single mutex.

    The simplest correct concurrent queue; useful as a sanity baseline in
    benchmarks and as the reference implementation in differential tests. *)

type 'a t = { q : 'a Queue.t; lock : Mutex.t }

let name = "mutex"
let create ~num_threads:_ () = { q = Queue.create (); lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let enqueue t ~tid:_ value = with_lock t (fun () -> Queue.push value t.q)
let dequeue t ~tid:_ = with_lock t (fun () -> Queue.take_opt t.q)
let is_empty t = with_lock t (fun () -> Queue.is_empty t.q)
let length t = with_lock t (fun () -> Queue.length t.q)
let to_list t = with_lock t (fun () -> List.of_seq (Queue.to_seq t.q))
