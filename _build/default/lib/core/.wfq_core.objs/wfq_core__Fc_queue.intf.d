lib/core/fc_queue.mli: Wfq_primitives
