lib/core/spsc_queue.mli: Wfq_primitives
