lib/core/fc_queue.ml: Array Fun List Queue Wfq_primitives
