lib/core/lms_queue.mli: Queue_intf Wfq_primitives
