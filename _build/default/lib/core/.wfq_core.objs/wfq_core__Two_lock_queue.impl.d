lib/core/two_lock_queue.ml: Fun List Mutex
