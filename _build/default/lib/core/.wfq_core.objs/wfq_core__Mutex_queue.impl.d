lib/core/mutex_queue.ml: Fun List Mutex Queue
