lib/core/two_lock_queue.mli: Queue_intf
