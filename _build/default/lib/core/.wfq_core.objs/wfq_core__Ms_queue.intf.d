lib/core/ms_queue.mli: Queue_intf Wfq_primitives
