lib/core/mutex_queue.mli: Queue_intf
