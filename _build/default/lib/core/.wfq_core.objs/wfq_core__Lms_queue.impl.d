lib/core/lms_queue.ml: List Queue_intf Wfq_primitives
