lib/core/kp_queue.ml: Array List Printf Wfq_primitives
