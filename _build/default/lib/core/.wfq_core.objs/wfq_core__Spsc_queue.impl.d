lib/core/spsc_queue.ml: Array List Wfq_primitives
