lib/core/kp_queue_hp.mli: Wfq_hazard Wfq_primitives
