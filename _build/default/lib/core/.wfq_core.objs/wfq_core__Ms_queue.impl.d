lib/core/ms_queue.ml: List Queue_intf Wfq_primitives
