lib/core/kp_queue_hp.ml: Array List Wfq_hazard Wfq_primitives
