lib/core/kp_queue.mli: Wfq_primitives
