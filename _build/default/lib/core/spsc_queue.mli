(** Lamport's single-producer / single-consumer wait-free ring buffer —
    the paper's related-work design point (ref [16]): wait-free, but
    with concurrency limited to one enqueuer and one dequeuer and
    capacity fixed at construction.

    Exactly one thread may enqueue and exactly one (other) thread may
    dequeue; the [tid] arguments are ignored. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string

  val create : ?capacity:int -> num_threads:int -> unit -> 'a t
  (** [capacity] (default 1024) bounds the number of buffered elements.
      Raises [Invalid_argument] for a non-positive capacity. *)

  val try_enqueue : 'a t -> 'a -> bool
  (** Producer only. [false] when the ring is full. Wait-free: a bounded
      straight-line sequence of steps. *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Producer only; raises [Failure] when full (prefer
      {!try_enqueue}). *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Consumer only. [None] when empty. Wait-free. *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val to_list : 'a t -> 'a list
end
