(** Michael & Scott's two-lock blocking queue (PODC 1996).

    Extra baseline: a head lock serializes dequeuers and a tail lock
    serializes enqueuers, so one enqueue and one dequeue can proceed in
    parallel. Blocking — a descheduled lock holder stalls every peer — so
    it contrasts with the non-blocking algorithms in the stall-injection
    tests and latency benchmarks.

    Not a functor: locks have no meaning under the deterministic
    simulator's ATOMIC interface, so this queue only exists on real
    domains. *)

type 'a node = { value : 'a option; mutable next : 'a node option }

type 'a t = {
  mutable head : 'a node;
  mutable tail : 'a node;
  head_lock : Mutex.t;
  tail_lock : Mutex.t;
}

let name = "two-lock"

let create ~num_threads:_ () =
  let sentinel = { value = None; next = None } in
  {
    head = sentinel;
    tail = sentinel;
    head_lock = Mutex.create ();
    tail_lock = Mutex.create ();
  }

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enqueue t ~tid:_ value =
  let node = { value = Some value; next = None } in
  with_lock t.tail_lock (fun () ->
      t.tail.next <- Some node;
      t.tail <- node)

let dequeue t ~tid:_ =
  with_lock t.head_lock (fun () ->
      match t.head.next with
      | None -> None
      | Some n ->
          (* The old sentinel is dropped; [n] becomes the new sentinel but
             its value is returned now, matching Michael & Scott. *)
          t.head <- n;
          n.value)

let to_list t =
  with_lock t.head_lock (fun () ->
      let rec collect acc node =
        match node.next with
        | None -> List.rev acc
        | Some n ->
            let v = match n.value with Some v -> v | None -> assert false in
            collect (v :: acc) n
      in
      collect [] t.head)

let length t = List.length (to_list t)
let is_empty t = with_lock t.head_lock (fun () -> t.head.next = None)
