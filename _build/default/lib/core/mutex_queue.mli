(** Coarse-grained baseline: [Stdlib.Queue] under a single mutex. The
    simplest correct concurrent queue; reference implementation for
    differential tests and a sanity baseline in benchmarks. *)

include Queue_intf.QUEUE
