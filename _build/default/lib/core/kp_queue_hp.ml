(** Kogan-Petrank queue with hazard-pointer memory reclamation (§3.4).

    The base algorithm ({!Kp_queue}) leans on the GC: nodes are never
    reused, so [next] pointers are set exactly once and reference CAS is
    ABA-free. This variant reclaims dequeued nodes through
    [Wfq_hazard.Hazard] and recycles them via [Wfq_hazard.Pool], which is
    what a C/C++ deployment of the paper's algorithm must do. Recycling
    mutates node fields, so every protocol mistake shows up as real
    corruption in the stress tests — the same failure mode as
    use-after-free.

    Paper §3.4 prescribes two modifications and leaves the rest "out of
    scope"; we implement the full integration:

    - the operation descriptor gains a [result] field holding the dequeued
      value, so the owner never dereferences the retired sentinel after
      its operation completes (the paper's explicit modification);
    - the old sentinel is retired by the unique winner of the [head] CAS
      (step 3 of the dequeue scheme, exactly once per Lemma 2);
    - every traversal pointer is published in a hazard slot and
      re-validated against its source before dereference, following
      Michael's MS-queue example;
    - descriptor [node] references are registered as extra hazard roots,
      scanned {e after} the per-thread slots (see the ordering comment in
      [Hazard.scan]): a node can therefore never be recycled while any
      descriptor still references it, which restores the set-once /
      no-ABA invariants the GC version gets for free;
    - before installing a descriptor's node into the list (L74) the
      helper publishes it in a slot and re-validates the descriptor is
      unchanged, closing the transfer race.

    Helping policy: the §3.3 optimized configuration (atomic phase
    counter; cyclic single-thread helping), since this variant exists for
    realistic deployments. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  module Hp = Wfq_hazard.Hazard.Make (A)

  type 'a node = {
    mutable value : 'a option;
    next : 'a node option A.t;
    mutable enq_tid : int;
    deq_tid : int A.t;
  }

  type 'a op_desc = {
    phase : int;
    pending : bool;
    enqueue : bool;
    node : 'a node option;
    result : 'a option; (* §3.4: dequeued value, set when pending flips *)
  }

  type 'a t = {
    head : 'a node A.t;
    tail : 'a node A.t;
    state : 'a op_desc A.t array;
    phase_counter : int A.t;
    help_cursor : int array;
    hp : 'a node Hp.t;
    pool : 'a node Wfq_hazard.Pool.t;
    num_threads : int;
  }

  let name = "kp-wait-free-hp"

  let make_node () =
    { value = None; next = A.make None; enq_tid = -1; deq_tid = A.make (-1) }

  let create ?(pool_capacity = 4096) ?scan_threshold ~num_threads () =
    if num_threads <= 0 then invalid_arg "Kp_queue_hp.create: num_threads";
    let idle =
      { phase = -1; pending = false; enqueue = true; node = None;
        result = None }
    in
    let state = Array.init num_threads (fun _ -> A.make idle) in
    let descriptor_roots () =
      Array.fold_left
        (fun acc slot ->
          match (A.get slot).node with None -> acc | Some n -> n :: acc)
        [] state
    in
    let pool = Wfq_hazard.Pool.create ~capacity:pool_capacity ~num_threads ()
    in
    (* [Hazard.scan] runs in the retiring thread and passes its tid, so
       freed nodes land in that thread's private pool — no sync needed. *)
    let free ~tid node = Wfq_hazard.Pool.release pool ~tid node in
    let hp =
      Hp.create ?scan_threshold ~extra_hazards:descriptor_roots
        ~num_threads ~slots_per_thread:2 ~free ()
    in
    let sentinel = make_node () in
    {
      head = A.make sentinel;
      tail = A.make sentinel;
      state;
      phase_counter = A.make (-1);
      help_cursor = Array.make num_threads 0;
      hp;
      pool;
      num_threads;
    }

  let retire_node t ~tid node = Hp.retire t.hp ~tid node

  let next_phase t =
    let cur = A.get t.phase_counter in
    ignore (A.compare_and_set t.phase_counter cur (cur + 1));
    cur + 1

  let is_still_pending t tid phase =
    let desc = A.get t.state.(tid) in
    desc.pending && desc.phase <= phase

  (* -------------------------------------------------------------- *)
  (* Hazard-protected reads                                         *)
  (* -------------------------------------------------------------- *)

  (* Publish [tail] in the caller's slot 0 and validate; [None] on a
     changed tail (caller loops). The tail node is never retired — [head]
     never passes [tail] — so validation success implies liveness. *)
  let protect_tail t ~self =
    let last = A.get t.tail in
    Hp.protect t.hp ~tid:self ~slot:0 last;
    if A.get t.tail == last then Some last else None

  let protect_head t ~self =
    let first = A.get t.head in
    Hp.protect t.hp ~tid:self ~slot:0 first;
    if A.get t.head == first then Some first else None

  (* -------------------------------------------------------------- *)
  (* Enqueue                                                        *)
  (* -------------------------------------------------------------- *)

  let help_finish_enq t ~self =
    match protect_tail t ~self with
    | None -> () (* tail advanced: someone finished the operation *)
    | Some last -> (
        match A.get last.next with
        | None -> ()
        | Some next as next_o ->
            Hp.protect t.hp ~tid:self ~slot:1 next;
            (* [tail] unchanged ⇒ head ≤ tail < next ⇒ [next] live. *)
            if A.get t.tail == last then begin
              let tid = next.enq_tid in
              assert (tid >= 0 && tid < t.num_threads);
              let cur_desc = A.get t.state.(tid) in
              if (A.get t.state.(tid)).node == next_o then begin
                let new_desc =
                  { phase = cur_desc.phase; pending = false;
                    enqueue = true; node = next_o; result = None }
                in
                ignore (A.compare_and_set t.state.(tid) cur_desc new_desc);
                ignore (A.compare_and_set t.tail last next)
              end
            end)

  let rec help_enq t ~self tid phase =
    if is_still_pending t tid phase then begin
      match protect_tail t ~self with
      | None -> help_enq t ~self tid phase
      | Some last -> (
          match A.get last.next with
          | None ->
              if is_still_pending t tid phase then begin
                let cur_desc = A.get t.state.(tid) in
                match cur_desc.node with
                | None ->
                    (* The operation we came to help completed and the
                       slot was overwritten; re-check and exit. *)
                    help_enq t ~self tid phase
                | Some node ->
                    (* Transfer protection: publish the node, then verify
                       the descriptor is unchanged so the node cannot have
                       been recycled between the read and the install. *)
                    Hp.protect t.hp ~tid:self ~slot:1 node;
                    if A.get t.state.(tid) == cur_desc then begin
                      if A.compare_and_set last.next None cur_desc.node
                      then help_finish_enq t ~self
                      else help_enq t ~self tid phase
                    end
                    else help_enq t ~self tid phase
              end
              else help_enq t ~self tid phase
          | Some _ ->
              help_finish_enq t ~self;
              help_enq t ~self tid phase)
    end

  (* -------------------------------------------------------------- *)
  (* Dequeue                                                        *)
  (* -------------------------------------------------------------- *)

  let help_finish_deq t ~self =
    match protect_head t ~self with
    | None -> ()
    | Some first -> (
        match A.get first.next with
        | None -> ()
        | Some next ->
            Hp.protect t.hp ~tid:self ~slot:1 next;
            (* [head] unchanged ⇒ [first] live ⇒ [next] (its successor,
               strictly after head) not yet retired. *)
            if A.get t.head == first then begin
              let tid = A.get first.deq_tid in
              if tid <> -1 then begin
                let cur_desc = A.get t.state.(tid) in
                (* Paper L147: re-validate [head == first] strictly AFTER
                   reading the descriptor. The order is load-bearing: a
                   thread only starts its next operation after [head] has
                   moved past its locked sentinel (the L102 guarantee),
                   so "head still equals first" proves [cur_desc] belongs
                   to the operation that locked [first] — without it, a
                   stale helper could complete the owner's NEXT dequeue
                   with THIS dequeue's value, duplicating the element
                   (caught by the domain stress tests). *)
                if A.get t.head == first then begin
                  let new_desc =
                    { phase = cur_desc.phase; pending = false;
                      enqueue = false; node = cur_desc.node;
                      result = next.value }
                  in
                  ignore (A.compare_and_set t.state.(tid) cur_desc new_desc);
                  if A.compare_and_set t.head first next then
                    (* Unique winner (Lemma 2, step 3) retires the old
                       sentinel — the paper's RetireNode call site. *)
                    retire_node t ~tid:self first
                end
              end
            end)

  let rec help_deq t ~self tid phase =
    if is_still_pending t tid phase then begin
      match protect_head t ~self with
      | None -> help_deq t ~self tid phase
      | Some first ->
          let last = A.get t.tail in
          let next = A.get first.next in
          if A.get t.head == first then begin
            if first == last then begin
              match next with
              | None ->
                  let cur_desc = A.get t.state.(tid) in
                  if A.get t.tail == last && is_still_pending t tid phase
                  then begin
                    let new_desc =
                      { phase = cur_desc.phase; pending = false;
                        enqueue = false; node = None; result = None }
                    in
                    ignore
                      (A.compare_and_set t.state.(tid) cur_desc new_desc)
                  end;
                  help_deq t ~self tid phase
              | Some _ ->
                  help_finish_enq t ~self;
                  help_deq t ~self tid phase
            end
            else begin
              let cur_desc = A.get t.state.(tid) in
              let node = cur_desc.node in
              if is_still_pending t tid phase then begin
                let points_to_first =
                  match node with Some n -> n == first | None -> false
                in
                if A.get t.head == first && not points_to_first then begin
                  let new_desc =
                    { phase = cur_desc.phase; pending = true;
                      enqueue = false; node = Some first; result = None }
                  in
                  if not (A.compare_and_set t.state.(tid) cur_desc new_desc)
                  then help_deq t ~self tid phase
                  else begin
                    ignore (A.compare_and_set first.deq_tid (-1) tid);
                    help_finish_deq t ~self;
                    help_deq t ~self tid phase
                  end
                end
                else begin
                  ignore (A.compare_and_set first.deq_tid (-1) tid);
                  help_finish_deq t ~self;
                  help_deq t ~self tid phase
                end
              end
            end
          end
          else help_deq t ~self tid phase
    end

  (* -------------------------------------------------------------- *)
  (* Helping (optimized §3.3 policy)                                *)
  (* -------------------------------------------------------------- *)

  let help_slot t ~self i phase =
    let desc = A.get t.state.(i) in
    if desc.pending && desc.phase <= phase then
      if desc.enqueue then help_enq t ~self i phase
      else help_deq t ~self i phase

  let run_help t ~tid ~phase =
    let c = t.help_cursor.(tid) in
    t.help_cursor.(tid) <- (c + 1) mod t.num_threads;
    if c <> tid then help_slot t ~self:tid c phase;
    help_slot t ~self:tid tid phase

  (* -------------------------------------------------------------- *)
  (* Public operations                                              *)
  (* -------------------------------------------------------------- *)

  let enqueue t ~tid value =
    let phase = next_phase t in
    let node =
      Wfq_hazard.Pool.alloc t.pool ~tid
        ~fresh:make_node
        ~reset:(fun n ->
          n.value <- None;
          A.set n.next None;
          n.enq_tid <- -1;
          A.set n.deq_tid (-1))
    in
    node.value <- Some value;
    node.enq_tid <- tid;
    A.set t.state.(tid)
      { phase; pending = true; enqueue = true; node = Some node;
        result = None };
    run_help t ~tid ~phase;
    help_finish_enq t ~self:tid;
    Hp.clear_all t.hp ~tid

  let dequeue t ~tid =
    let phase = next_phase t in
    A.set t.state.(tid)
      { phase; pending = true; enqueue = false; node = None; result = None };
    run_help t ~tid ~phase;
    help_finish_deq t ~self:tid;
    Hp.clear_all t.hp ~tid;
    (A.get t.state.(tid)).result

  (* -------------------------------------------------------------- *)
  (* Observers (quiescent use)                                      *)
  (* -------------------------------------------------------------- *)

  let to_list t =
    let rec collect acc node =
      match A.get node.next with
      | None -> List.rev acc
      | Some n ->
          let v = match n.value with Some v -> v | None -> assert false in
          collect (v :: acc) n
    in
    collect [] (A.get t.head)

  let length t = List.length (to_list t)
  let is_empty t = A.get (A.get t.head).next = None

  (** Force all deferred reclamation; quiescent use (tests). *)
  let flush_reclamation t = Hp.flush t.hp

  let reclamation_stats t = Hp.stats t.hp

  let pool_stats t =
    ( Wfq_hazard.Pool.allocated_fresh t.pool,
      Wfq_hazard.Pool.reused t.pool,
      Wfq_hazard.Pool.pooled t.pool )
end
