(** Michael & Scott's lock-free queue (PODC 1996) — the paper's baseline.

    Port of the Java version in Herlihy & Shavit, "The Art of Multiprocessor
    Programming", which is exactly the implementation the paper benchmarks
    against ("LF" in Figures 7-9). The queue is a singly-linked list with a
    sentinel; [tail] is lazy — it may lag at most one node behind the true
    last node (the "dangling" node), and every operation that observes the
    lag first helps advance [tail].

    Progress: lock-free, not wait-free — an enqueuer whose CAS on
    [last.next] keeps losing can be starved forever (demonstrated by a
    simulator test in [test/test_sim_queues.ml]). *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) :
  Queue_intf.CHECKABLE_QUEUE = struct
  type 'a node = { value : 'a option; next : 'a node option A.t }

  type 'a t = { head : 'a node A.t; tail : 'a node A.t }

  let name = "ms-lock-free"

  let create ~num_threads:_ () =
    let sentinel = { value = None; next = A.make None } in
    { head = A.make sentinel; tail = A.make sentinel }

  let enqueue t ~tid:_ value =
    let node = { value = Some value; next = A.make None } in
    let rec loop () =
      let last = A.get t.tail in
      let next = A.get last.next in
      if last == A.get t.tail then
        match next with
        | None ->
            if A.compare_and_set last.next None (Some node) then
              (* Lazily fix tail; failure means someone helped us. *)
              ignore (A.compare_and_set t.tail last node)
            else loop ()
        | Some n ->
            (* Tail is lagging: help the in-progress enqueue, then retry. *)
            ignore (A.compare_and_set t.tail last n);
            loop ()
      else loop ()
    in
    loop ()

  let dequeue t ~tid:_ =
    let rec loop () =
      let first = A.get t.head in
      let last = A.get t.tail in
      let next = A.get first.next in
      if first == A.get t.head then
        if first == last then
          match next with
          | None -> None
          | Some n ->
              ignore (A.compare_and_set t.tail last n);
              loop ()
        else
          match next with
          | None ->
              (* head trails tail yet has no successor: transient view,
                 retry. *)
              loop ()
          | Some n ->
              let v = n.value in
              if A.compare_and_set t.head first n then v else loop ()
      else loop ()
    in
    loop ()

  let to_list t =
    let rec collect acc node =
      match A.get node.next with
      | None -> List.rev acc
      | Some n ->
          let v = match n.value with Some v -> v | None -> assert false in
          collect (v :: acc) n
    in
    collect [] (A.get t.head)

  let length t =
    let rec count acc node =
      match A.get node.next with None -> acc | Some n -> count (acc + 1) n
    in
    count 0 (A.get t.head)

  let is_empty t = A.get (A.get t.head).next = None

  let check_quiescent_invariants t =
    let head = A.get t.head in
    let tail = A.get t.tail in
    let rec reaches node =
      if node == tail then true
      else match A.get node.next with None -> false | Some n -> reaches n
    in
    if not (reaches head) then Error "tail not reachable from head"
    else if A.get tail.next <> None then Error "dangling node after tail"
    else Ok ()
end
