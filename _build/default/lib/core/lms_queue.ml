(** Ladan-Mozes & Shavit's optimistic lock-free queue (DISC 2004) — the
    other leading baseline the paper's related work cites ([14]: "several
    recent works propose various optimizations over [Michael-Scott]").

    The queue is a doubly-linked list. [next] pointers run from the tail
    (newest) toward the head (oldest) and are written while the node is
    still private, so an enqueue needs a {e single} CAS (on [tail]) —
    versus two in Michael-Scott. The opposite-direction [prev] pointers,
    which dequeue follows, are written {e optimistically} after the CAS;
    when a dequeuer finds a missing [prev] (the enqueuer was preempted
    between its CAS and the store) it rebuilds the chain by walking
    [next] from the tail ([fix_list]).

    A dummy node sits at the head side; [head == tail] with a dummy head
    means empty. Progress: lock-free. ABA safety comes from GC, as in
    the original (which relies on tagged pointers or GC). *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) :
  Queue_intf.CHECKABLE_QUEUE = struct
  type 'a node = {
    value : 'a option; (* None marks a dummy *)
    next : 'a node option A.t; (* toward the head / older nodes *)
    prev : 'a node option A.t; (* toward the tail / newer nodes; lazy *)
  }

  type 'a t = { head : 'a node A.t; tail : 'a node A.t }

  let name = "lms-optimistic"

  let make_node value next =
    { value; next = A.make next; prev = A.make None }

  let create ~num_threads:_ () =
    let dummy = make_node None None in
    { head = A.make dummy; tail = A.make dummy }

  let enqueue t ~tid:_ value =
    let node = make_node (Some value) None in
    let rec loop () =
      let tail = A.get t.tail in
      (* Written while [node] is private: the single-CAS optimism. *)
      A.set node.next (Some tail);
      if A.compare_and_set t.tail tail node then
        (* The optimistic prev store; a preemption right here is what
           [fix_list] repairs. *)
        A.set tail.prev (Some node)
      else loop ()
    in
    loop ()

  (* Rebuild prev pointers by walking next-wards from the tail, stopping
     if the head moves (someone dequeued meanwhile). *)
  let fix_list t tail head =
    let rec go cur =
      if head == A.get t.head && not (cur == head) then
        match A.get cur.next with
        | Some older ->
            A.set older.prev (Some cur);
            go older
        | None -> ()
    in
    go tail

  let dequeue t ~tid:_ =
    let rec loop () =
      let head = A.get t.head in
      let tail = A.get t.tail in
      let prev = A.get head.prev in
      if head == A.get t.head then
        match head.value with
        | Some v ->
            if not (head == tail) then (
              match prev with
              | None ->
                  fix_list t tail head;
                  loop ()
              | Some newer ->
                  if A.compare_and_set t.head head newer then Some v
                  else loop ())
            else begin
              (* Single real node: park a fresh dummy behind it so the
                 head can advance past the value. *)
              let dummy = make_node None (Some tail) in
              if A.compare_and_set t.tail tail dummy then
                A.set head.prev (Some dummy);
              loop ()
            end
        | None ->
            (* Head is a dummy. *)
            if head == tail then None
            else (
              match prev with
              | None ->
                  fix_list t tail head;
                  loop ()
              | Some newer ->
                  (* Skip the dummy and retry. *)
                  ignore (A.compare_and_set t.head head newer);
                  loop ())
      else loop ()
    in
    loop ()

  (* Quiescent traversal along the next chain from tail to head. *)
  let to_list t =
    let rec collect acc node =
      let acc =
        match node.value with Some v -> v :: acc | None -> acc
      in
      if node == A.get t.head then acc
      else
        match A.get node.next with
        | Some older -> collect acc older
        | None -> acc
    in
    (* Walking newest→oldest while prepending yields oldest-first, which
       is exactly front-to-back. *)
    collect [] (A.get t.tail)

  let length t = List.length (to_list t)
  let is_empty t = to_list t = []

  let check_quiescent_invariants t =
    let head = A.get t.head in
    let tail = A.get t.tail in
    let rec reaches node =
      if node == head then true
      else
        match A.get node.next with
        | Some older -> reaches older
        | None -> false
    in
    if not (reaches tail) then Error "head not reachable from tail"
    else Ok ()
end
