(** Michael & Scott's two-lock blocking queue (PODC 1996): one lock
    serializes enqueuers, another serializes dequeuers, so one operation
    of each kind proceeds in parallel. Blocking — a descheduled lock
    holder stalls all peers of its kind — which is the contrast class
    for the non-blocking algorithms in this repository. *)

include Queue_intf.QUEUE
