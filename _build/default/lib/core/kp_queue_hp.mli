(** Kogan-Petrank queue with hazard-pointer memory reclamation and node
    pooling — the paper's §3.4, fully integrated.

    Functionally identical to [Kp_queue] (wait-free linearizable MPMC
    FIFO), but dequeued nodes are retired through hazard pointers and
    recycled via per-thread pools instead of being left to the GC: the
    deployment story for non-GC runtimes, exercised here under OCaml so
    the protocol is testable (a recycled node's fields are mutated, so
    any protocol race corrupts data observably).

    Differences from the GC variant, per §3.4: the operation descriptor
    carries the dequeued {e value}, so callers never touch retired
    nodes; descriptor node references count as hazard roots; every
    traversal pointer is slot-protected and re-validated. Helping policy
    is the optimized §3.3 configuration (atomic phase counter, cyclic
    single-thread helping). *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  module Hp : module type of Wfq_hazard.Hazard.Make (A)

  type 'a t

  val name : string

  val create :
    ?pool_capacity:int ->
    ?scan_threshold:int ->
    num_threads:int ->
    unit ->
    'a t
  (** [pool_capacity] bounds each thread's recycling pool (default
      4096); [scan_threshold] overrides the hazard-pointer scan trigger
      (tests use 1-8 to force recycling pressure). *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  val dequeue : 'a t -> tid:int -> 'a option

  (** {2 Quiescent observers} *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val to_list : 'a t -> 'a list

  (** {2 Reclamation introspection} *)

  val flush_reclamation : 'a t -> unit
  (** Force all deferred scans; quiescent use. *)

  val reclamation_stats : 'a t -> Hp.stats

  val pool_stats : 'a t -> int * int * int
  (** (fresh allocations, pool reuses, currently pooled). *)
end
