(** Ladan-Mozes & Shavit's optimistic lock-free queue (DISC 2004) — an
    additional baseline from the paper's related work ([14]): a
    doubly-linked list where enqueue needs a single CAS and dequeue
    follows lazily-maintained [prev] pointers, rebuilding them
    ([fix_list]) when an enqueuer was preempted before its optimistic
    store. Lock-free; [tid] is ignored. *)

module Make (_ : Wfq_primitives.Atomic_intf.ATOMIC) :
  Queue_intf.CHECKABLE_QUEUE
