(** SplitMix64 pseudo-random number generator.

    Deterministic per seed and unshared — each benchmark thread owns a
    private generator, so random workloads (the paper's "50% enqueues")
    need no synchronization and replay exactly. *)

type t

val create : seed:int -> t
(** A fresh generator; equal seeds give equal streams. *)

val split_for : seed:int -> tid:int -> t
(** Derive an independent per-thread stream from a run seed. *)

val next_int64 : t -> int64
(** Next 64 bits of the stream. *)

val next_int : t -> int
(** Next non-negative native int. *)

val below : t -> int -> int
(** [below t n] is uniform-ish in [0, n). Raises [Invalid_argument] when
    [n <= 0]. *)

val bool : t -> bool
(** A fair coin — the paper's per-iteration enqueue/dequeue choice. *)

val float : t -> float
(** Uniform in [0, 1). *)
