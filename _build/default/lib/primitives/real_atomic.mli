(** Production implementation of {!Atomic_intf.ATOMIC}: a zero-cost
    wrapper over [Stdlib.Atomic]. Queues instantiated with this module
    run on real domains; the simulator instantiation
    ([Wfq_sim.Sim_atomic]) runs the same functor bodies under a
    controlled scheduler. *)

include Atomic_intf.ATOMIC with type 'a t = 'a Atomic.t
