lib/primitives/rng.mli:
