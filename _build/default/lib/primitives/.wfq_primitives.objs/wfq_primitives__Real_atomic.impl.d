lib/primitives/real_atomic.ml: Atomic
