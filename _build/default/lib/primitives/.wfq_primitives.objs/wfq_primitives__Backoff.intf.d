lib/primitives/backoff.mli:
