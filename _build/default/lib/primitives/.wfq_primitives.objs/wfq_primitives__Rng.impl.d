lib/primitives/rng.ml: Int64
