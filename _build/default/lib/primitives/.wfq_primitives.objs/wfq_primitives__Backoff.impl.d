lib/primitives/backoff.ml:
