lib/primitives/atomic_intf.ml:
