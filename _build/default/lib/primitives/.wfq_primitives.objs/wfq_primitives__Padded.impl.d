lib/primitives/padded.ml: Atomic
