lib/primitives/stats.ml: Array List
