lib/primitives/padded.mli:
