lib/primitives/counted_atomic.ml: Atomic_intf Format
