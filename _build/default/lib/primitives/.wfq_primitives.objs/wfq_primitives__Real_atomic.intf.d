lib/primitives/real_atomic.mli: Atomic Atomic_intf
