lib/primitives/counted_atomic.mli: Atomic_intf Format
