lib/primitives/stats.mli:
