(** SplitMix64 pseudo-random number generator.

    Each benchmark thread owns a private generator, so random workloads
    (the paper's "50% enqueues" benchmark) need no synchronization and are
    reproducible from a seed. The constants are Steele et al.'s SplitMix64;
    arithmetic is on OCaml's 63-bit native [int], which is sufficient for
    workload generation (we only consume the high-quality low bits). *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let split_for ~seed ~tid = create ~seed:(seed + (tid * 0x9E3779B9) + 1)

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int t = Int64.to_int (next_int64 t) land max_int

let below t n =
  if n <= 0 then invalid_arg "Rng.below: bound must be positive";
  next_int t mod n

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits mapped into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0
