(** Small descriptive-statistics helpers for the benchmark harness.

    The paper reports averages over ten runs and notes that standard
    deviations were negligible; we report both. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

let minimum xs =
  match xs with
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left min x rest

let maximum xs =
  match xs with
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left max x rest

(* Nearest-rank percentile on a sorted copy. *)
let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
      if p < 0.0 || p > 100.0 then
        invalid_arg "Stats.percentile: p out of range";
      let sorted = List.sort compare xs in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let idx = max 0 (min (n - 1) (rank - 1)) in
      arr.(idx)

let median xs = percentile xs 50.0
