(** Truncated exponential backoff for CAS retry loops.

    Purely a throughput knob for lock-free retry loops — never needed for
    correctness, and the wait-free queue does not need it for progress. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** [create ()] makes a backoff starting at [min_spins] (default 16)
    and doubling up to [max_spins] (default 4096) busy-work iterations.
    Raises [Invalid_argument] if [min_spins <= 0] or
    [max_spins < min_spins]. *)

val once : t -> unit
(** Spin for the current duration, then double it (up to the cap). Call
    after a failed CAS. *)

val reset : t -> unit
(** Return to [min_spins]. Call after a successful operation. *)

val current_spins : t -> int
(** Current spin count (for tests and diagnostics). *)
