(** Abstraction over atomic shared-memory cells.

    Every concurrent algorithm in this repository is written as a functor
    over {!module-type:ATOMIC} so that the exact same algorithm text runs on

    - {!Real_atomic}, a thin wrapper around [Stdlib.Atomic], for production
      use and benchmarks; and
    - [Wfq_sim.Sim_atomic], a deterministic single-threaded implementation
      that yields to a scheduler before every shared-memory access, for
      model checking, linearizability checking and stall-injection tests.

    The semantics mirror [Stdlib.Atomic] (and Java's [AtomicReference],
    which the paper's pseudocode uses): [compare_and_set] compares with
    physical equality, so CAS on freshly-allocated descriptor records
    succeeds only against the exact value previously read. *)

module type ATOMIC = sig
  type 'a t
  (** A shared memory cell holding a value of type ['a]. *)

  val make : 'a -> 'a t
  (** [make v] allocates a new cell initialized to [v]. *)

  val get : 'a t -> 'a
  (** Atomic read. *)

  val set : 'a t -> 'a -> unit
  (** Atomic write. *)

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** [compare_and_set cell expected desired] atomically installs
      [desired] iff the current value is physically equal to [expected].
      Returns [true] on success. *)

  val exchange : 'a t -> 'a -> 'a
  (** [exchange cell v] atomically swaps the contents with [v] and
      returns the previous value. *)

  val fetch_and_add : int t -> int -> int
  (** [fetch_and_add cell d] atomically adds [d] to an integer cell and
      returns the previous value. *)
end
