(** Instrumented [ATOMIC] wrapper counting shared-memory operations —
    the executable cost model behind the paper's §3.3 discussion. Exact
    in single-domain use; each functor application owns independent
    counters. *)

type counters = {
  reads : int;
  writes : int;
  cas_success : int;
  cas_failure : int;
  exchanges : int;
  fetch_adds : int;
}

val zero : counters
val total : counters -> int
val pp : Format.formatter -> counters -> unit

module Make (Base : Atomic_intf.ATOMIC) : sig
  include Atomic_intf.ATOMIC

  val reset : unit -> unit
  val snapshot : unit -> counters
end
