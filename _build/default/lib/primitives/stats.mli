(** Descriptive statistics for benchmark results. The paper reports
    ten-run averages and notes negligible standard deviations; these
    helpers compute both, plus the percentiles used by the latency
    example. All functions raise [Invalid_argument] on an empty list. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation; [0.] for fewer than two samples. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float list -> float -> float
(** Nearest-rank percentile; the percentile argument must be within
    [0, 100]. *)

val median : float list -> float
