(** The production implementation of {!Atomic_intf.ATOMIC}: a zero-cost
    wrapper over [Stdlib.Atomic]. *)

type 'a t = 'a Atomic.t

let make = Atomic.make
let get = Atomic.get
let set = Atomic.set
let compare_and_set = Atomic.compare_and_set
let exchange = Atomic.exchange
let fetch_and_add = Atomic.fetch_and_add
