(** One-shot spin barrier used to release all benchmark domains at once,
    so completion-time measurements start from a common instant. *)

type t = { arrived : int Atomic.t; total : int; go : bool Atomic.t }

let create total =
  if total <= 0 then invalid_arg "Barrier.create: total";
  { arrived = Atomic.make 0; total; go = Atomic.make false }

let wait t =
  let n = 1 + Atomic.fetch_and_add t.arrived 1 in
  if n = t.total then Atomic.set t.go true
  else
    while not (Atomic.get t.go) do
      Domain.cpu_relax ()
    done
