(** Plain-text rendering of benchmark results: one table per paper
    figure, x values down the rows and one column per series, mirroring
    the data behind the paper's line plots. *)

type series = { label : string; points : (float * float) list }

let find_y s x =
  List.assoc_opt x s.points

let print_table ~title ~x_label ~y_label series =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "(y = %s)\n" y_label;
  let xs =
    List.concat_map (fun s -> List.map fst s.points) series
    |> List.sort_uniq compare
  in
  let col_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 10 series
    + 2
  in
  Printf.printf "%-12s" x_label;
  List.iter (fun s -> Printf.printf "%*s" col_width s.label) series;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%-12g" x;
      List.iter
        (fun s ->
          match find_y s x with
          | Some y -> Printf.printf "%*.4f" col_width y
          | None -> Printf.printf "%*s" col_width "-")
        series;
      print_newline ())
    xs;
  flush stdout

let print_csv ~title series =
  Printf.printf "\n# csv: %s\n" title;
  Printf.printf "x,%s\n" (String.concat "," (List.map (fun s -> s.label) series));
  let xs =
    List.concat_map (fun s -> List.map fst s.points) series
    |> List.sort_uniq compare
  in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun s ->
            match find_y s x with
            | Some y -> Printf.sprintf "%.6f" y
            | None -> "")
          series
      in
      Printf.printf "%g,%s\n" x (String.concat "," cells))
    xs;
  flush stdout
