(** Live-space measurement for Figure 10: the OCaml equivalent of the
    paper's [-verbose:gc] sampling is [Gc.full_major] followed by
    [Gc.stat ()].live_words. *)

val live_words : unit -> int
(** Live heap words after a full major collection. *)

val footprint : Impls.impl -> size:int -> int
(** Heap words attributable to a queue holding [size] elements (live
    words after building it minus live words before). *)

val footprint_active : Impls.impl -> size:int -> iters:int -> samples:int -> int
(** Like {!footprint} but averaged over samples taken while an
    enqueue-dequeue workload runs over the filled queue — closer to the
    paper's mid-benchmark sampling. *)
