(** One-shot spin barrier: releases all benchmark domains at a common
    instant so completion-time measurements share a start line. *)

type t

val create : int -> t
(** [create n] makes a barrier for [n] participants. Raises
    [Invalid_argument] for [n <= 0]. *)

val wait : t -> unit
(** Block (spinning) until all [n] participants have arrived. Each
    participant may wait at most once. *)
