(** Dependency-free ASCII line charts, so the benchmark output can show
    the *shape* of each paper figure directly in the terminal. *)

val render : ?width:int -> ?height:int -> Report.series list -> string
(** Plot all series on one grid (y from 0 to the data maximum, x spanning
    the data range), one glyph per series, with a legend. *)

val print : ?width:int -> ?height:int -> title:string -> Report.series list -> unit
