(** Per-operation-pair latency distributions across domains — the
    measurement behind the real-time motivation of the paper's §1
    (deadline-bound systems care about tails, not means). *)

type summary = {
  p50 : float;  (** microseconds *)
  p99 : float;
  p999 : float;
  max : float;
  samples : int;
}

val measure : ?threads:int -> ?iters:int -> Impls.impl -> summary
(** Run the enqueue-dequeue pairs workload on [threads] domains,
    recording the wall-clock latency of every pair. Raises
    [Invalid_argument] on non-positive parameters. *)
