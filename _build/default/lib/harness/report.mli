(** Plain-text rendering of benchmark series: one table per paper
    figure (x values down the rows, one column per series), plus CSV for
    machine consumption. *)

type series = { label : string; points : (float * float) list }

val print_table :
  title:string -> x_label:string -> y_label:string -> series list -> unit

val print_csv : title:string -> series list -> unit
