(* ASCII line charts for benchmark series. *)

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 64) ?(height = 16) (series : Report.series list) =
  let points = List.concat_map (fun (s : Report.series) -> s.points) series in
  if points = [] then "(no data)\n"
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let x_min = List.fold_left min (List.hd xs) xs in
    let x_max = List.fold_left max (List.hd xs) xs in
    let y_min = 0.0 in
    let y_max = List.fold_left max (List.hd ys) ys in
    let y_max = if y_max <= y_min then y_min +. 1.0 else y_max in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
    in
    let row y =
      (height - 1)
      - int_of_float ((y -. y_min) /. (y_max -. y_min)
                      *. float_of_int (height - 1))
    in
    List.iteri
      (fun i (s : Report.series) ->
        let g = glyphs.(i mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let c = max 0 (min (width - 1) (col x)) in
            let r = max 0 (min (height - 1) (row y)) in
            grid.(r).(c) <- g)
          s.points)
      series;
    let buf = Buffer.create (width * height) in
    Array.iteri
      (fun r line ->
        let label =
          if r = 0 then Printf.sprintf "%10.4g |" y_max
          else if r = height - 1 then Printf.sprintf "%10.4g |" y_min
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-10.4g%*s%10.4g\n" "" x_min (width - 20) ""
         x_max);
    List.iteri
      (fun i (s : Report.series) ->
        Buffer.add_string buf
          (Printf.sprintf "%12s = %s\n"
             (String.make 1 glyphs.(i mod Array.length glyphs))
             s.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ~title series =
  Printf.printf "\n-- %s --\n%s" title (render ?width ?height series);
  flush stdout
