lib/harness/space.ml: Gc Impls Sys
