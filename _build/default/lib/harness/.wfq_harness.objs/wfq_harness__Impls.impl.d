lib/harness/impls.ml: List Printf String Wfq_core Wfq_primitives Wfq_universal
