lib/harness/report.mli:
