lib/harness/barrier.mli:
