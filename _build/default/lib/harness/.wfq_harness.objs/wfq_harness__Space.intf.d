lib/harness/space.mli: Impls
