lib/harness/workload.ml: Array Barrier Domain Gc Impls List Printf Unix Wfq_primitives
