lib/harness/impls.mli:
