lib/harness/chart.ml: Array Buffer List Printf Report String
