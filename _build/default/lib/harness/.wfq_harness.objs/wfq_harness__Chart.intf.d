lib/harness/chart.mli: Report
