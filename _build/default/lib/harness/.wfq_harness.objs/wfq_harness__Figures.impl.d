lib/harness/figures.ml: Impls List Report Space Wfq_primitives Workload
