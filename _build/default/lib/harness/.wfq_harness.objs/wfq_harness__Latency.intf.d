lib/harness/latency.mli: Impls
