lib/harness/workload.mli: Impls
