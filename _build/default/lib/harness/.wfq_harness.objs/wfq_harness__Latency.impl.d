lib/harness/latency.ml: Array Barrier Domain Gc Impls List Unix Wfq_primitives
