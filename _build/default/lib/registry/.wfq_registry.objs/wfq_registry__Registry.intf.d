lib/registry/registry.mli:
