lib/registry/registry.ml: Array Atomic Fun
