lib/lincheck/checker.ml: Array Format Hashtbl History List
