lib/lincheck/checker.mli: Format History
