lib/lincheck/history.mli: Format
