lib/lincheck/history.ml: Format Fun List Mutex
