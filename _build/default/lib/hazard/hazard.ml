(** Hazard pointers (Michael, IEEE TPDS 2004) — safe memory reclamation
    for non-blocking data structures without relying on the GC.

    Paper §3.4 prescribes exactly this technique for running the wait-free
    queue in non-GC environments. OCaml has a GC, so "reclamation" here
    means returning nodes to a {!Pool} for reuse; the safety obligation is
    identical — a node must not be recycled (and its fields mutated) while
    any thread may still dereference it — and a protocol bug manifests as
    real data corruption in the stress tests, just as use-after-free
    would.

    Protocol: each thread owns [slots_per_thread] single-writer
    multi-reader hazard slots. Before dereferencing a shared node a thread
    publishes it in a slot and re-validates its source; a node is retired
    to a thread-local list, and once the list reaches the scan threshold
    the thread collects every published hazard and frees (recycles) only
    the retired nodes not currently protected. All claims are on physical
    identity. The technique is wait-free: [scan] is two bounded loops. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type 'a slot = 'a option A.t

  type 'a per_thread = {
    slots : 'a slot array;
    mutable retired : 'a list;
    mutable retired_count : int;
    mutable freed_total : int;
    mutable retired_total : int;
  }

  type 'a t = {
    threads : 'a per_thread array;
    scan_threshold : int;
    free : tid:int -> 'a -> unit;
        (* Called by the scanning thread with its own [tid], so a
           recycler can route freed objects to thread-local storage
           without synchronization. *)
    extra_hazards : unit -> 'a list;
        (* Additional hazard roots scanned AFTER the slots; the KP queue
           registers its descriptor [node] references here (see the scan
           ordering note below). *)
  }

  let default_threshold ~num_threads ~slots_per_thread =
    (* Michael's recommendation: R >= H (total hazard slots) + Omega(H)
       amortizes each scan over many retirements. *)
    (2 * num_threads * slots_per_thread) + 8

  let create ?(scan_threshold = 0) ?(extra_hazards = fun () -> [])
      ~num_threads ~slots_per_thread ~free () =
    if num_threads <= 0 then invalid_arg "Hazard.create: num_threads";
    if slots_per_thread <= 0 then
      invalid_arg "Hazard.create: slots_per_thread";
    let threshold =
      if scan_threshold > 0 then scan_threshold
      else default_threshold ~num_threads ~slots_per_thread
    in
    {
      threads =
        Array.init num_threads (fun _ ->
            {
              slots = Array.init slots_per_thread (fun _ -> A.make None);
              retired = [];
              retired_count = 0;
              freed_total = 0;
              retired_total = 0;
            });
      scan_threshold = threshold;
      free;
      extra_hazards;
    }

  let protect t ~tid ~slot node = A.set t.threads.(tid).slots.(slot) (Some node)
  let clear t ~tid ~slot = A.set t.threads.(tid).slots.(slot) None

  let clear_all t ~tid =
    Array.iter (fun s -> A.set s None) t.threads.(tid).slots

  (** [protect_read t ~tid ~slot read] reads a pointer with [read],
      publishes it, and re-reads to validate the publication happened
      before the pointer could have been retired. Loops on change; in the
      queue algorithms the loop is bounded by the surrounding validation
      structure. Returns the protected value ([read] may yield [None] for
      an empty link, which needs no protection). *)
  let rec protect_read t ~tid ~slot read =
    match read () with
    | None ->
        clear t ~tid ~slot;
        None
    | Some node as v ->
        protect t ~tid ~slot node;
        let again = read () in
        if
          match again with Some node' -> node' == node | None -> false
        then v
        else protect_read t ~tid ~slot read

  (* A node is hazardous if any thread currently publishes it. Physical
     membership test; H is small (num_threads * slots_per_thread). *)
  let collect_hazards t =
    Array.fold_left
      (fun acc per ->
        Array.fold_left
          (fun acc slot ->
            match A.get slot with None -> acc | Some n -> n :: acc)
          acc per.slots)
      [] t.threads

  (* Scan ordering matters for hazards transferred into shared structures
     (e.g. a node installed into an operation descriptor): the installer
     keeps the node in a slot until after the install completes, so a
     scanner that misses the slot (already overwritten) is guaranteed the
     install finished — reading the extra roots AFTER the slots then
     observes the node there. Reading roots first would leave a window
     where both sources miss a live transfer. *)
  let scan t ~tid =
    let per = t.threads.(tid) in
    let slot_hazards = collect_hazards t in
    let root_hazards = t.extra_hazards () in
    let hazards = slot_hazards @ root_hazards in
    let still_hazardous, freeable =
      List.partition (fun n -> List.memq n hazards) per.retired
    in
    List.iter (t.free ~tid) freeable;
    per.freed_total <- per.freed_total + List.length freeable;
    per.retired <- still_hazardous;
    per.retired_count <- List.length still_hazardous

  let retire t ~tid node =
    let per = t.threads.(tid) in
    per.retired <- node :: per.retired;
    per.retired_count <- per.retired_count + 1;
    per.retired_total <- per.retired_total + 1;
    if per.retired_count >= t.scan_threshold then scan t ~tid

  (** Force a final scan on every thread's retire list; quiescent use. *)
  let flush t = Array.iteri (fun tid _ -> scan t ~tid) t.threads

  type stats = { retired : int; freed : int; still_pending : int }

  let stats t =
    Array.fold_left
      (fun acc per ->
        {
          retired = acc.retired + per.retired_total;
          freed = acc.freed + per.freed_total;
          still_pending = acc.still_pending + per.retired_count;
        })
      { retired = 0; freed = 0; still_pending = 0 }
      t.threads
end
