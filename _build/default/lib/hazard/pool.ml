(** Per-thread object pools.

    Freed nodes (as determined by {!Hazard.Make.scan}) go back to the
    freeing thread's private pool and are handed out again on allocation.
    Pools are strictly thread-local — no synchronization — so a node may
    be recycled by a different thread than the one that allocated it,
    which is exactly the cross-thread reuse pattern that exposes hazard
    protocol bugs. [capacity] bounds each pool so tests can force high
    reuse pressure with a tiny capacity.

    All counters are per-thread (single writer) and only aggregated at
    quiescence, so the pool contains no shared mutable state at all. *)

type 'a t = {
  stacks : 'a list array; (* per tid; single-writer *)
  counts : int array;
  fresh_counts : int array;
  reuse_counts : int array;
  capacity : int;
}

let create ?(capacity = 4096) ~num_threads () =
  if capacity <= 0 then invalid_arg "Pool.create: capacity";
  if num_threads <= 0 then invalid_arg "Pool.create: num_threads";
  {
    stacks = Array.make num_threads [];
    counts = Array.make num_threads 0;
    fresh_counts = Array.make num_threads 0;
    reuse_counts = Array.make num_threads 0;
    capacity;
  }

(** [alloc t ~tid ~fresh ~reset] returns a recycled object (after calling
    [reset] on it) when the thread-local pool is non-empty, otherwise a
    fresh one from [fresh ()]. *)
let alloc t ~tid ~fresh ~reset =
  match t.stacks.(tid) with
  | [] ->
      t.fresh_counts.(tid) <- t.fresh_counts.(tid) + 1;
      fresh ()
  | node :: rest ->
      t.stacks.(tid) <- rest;
      t.counts.(tid) <- t.counts.(tid) - 1;
      t.reuse_counts.(tid) <- t.reuse_counts.(tid) + 1;
      reset node;
      node

(** Return an object to [tid]'s pool; dropped if the pool is full. *)
let release t ~tid node =
  if t.counts.(tid) < t.capacity then begin
    t.stacks.(tid) <- node :: t.stacks.(tid);
    t.counts.(tid) <- t.counts.(tid) + 1
  end

let sum = Array.fold_left ( + ) 0
let reused t = sum t.reuse_counts
let allocated_fresh t = sum t.fresh_counts
let pooled t = sum t.counts
