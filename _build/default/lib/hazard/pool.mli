(** Per-thread object pools for node recycling.

    Strictly thread-local (no synchronization): a pool slot is only
    touched by its owning thread — except [flush]-style quiescent
    aggregation. Bounded by [capacity] so tests can force high reuse
    pressure with tiny pools. *)

type 'a t

val create : ?capacity:int -> num_threads:int -> unit -> 'a t

val alloc : 'a t -> tid:int -> fresh:(unit -> 'a) -> reset:('a -> unit) -> 'a
(** A recycled object from [tid]'s pool (after [reset]), or [fresh ()]
    when the pool is empty. *)

val release : 'a t -> tid:int -> 'a -> unit
(** Return an object to [tid]'s pool; silently dropped when full (the GC
    reclaims it). *)

val reused : 'a t -> int
(** Total allocations served from pools (quiescent aggregation). *)

val allocated_fresh : 'a t -> int
(** Total allocations that fell through to [fresh]. *)

val pooled : 'a t -> int
(** Objects currently pooled across all threads. *)
