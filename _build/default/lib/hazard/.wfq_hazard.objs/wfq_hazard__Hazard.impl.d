lib/hazard/hazard.ml: Array List Wfq_primitives
