lib/hazard/pool.mli:
