lib/hazard/hazard.mli: Wfq_primitives
