lib/hazard/pool.ml: Array
