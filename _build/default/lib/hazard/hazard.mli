(** Hazard pointers (Michael, 2004) — safe memory reclamation for
    non-blocking structures, as prescribed by the paper's §3.4 for
    non-GC environments.

    Each thread owns a few single-writer multi-reader hazard slots;
    before dereferencing a shared node it publishes the node in a slot
    and re-validates the source. Retired nodes accumulate in a
    thread-local list and are freed by a bounded {e scan} once the list
    reaches a threshold — only nodes absent from every slot (and every
    extra hazard root) are freed. Wait-free: both scan loops are
    bounded. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val create :
    ?scan_threshold:int ->
    ?extra_hazards:(unit -> 'a list) ->
    num_threads:int ->
    slots_per_thread:int ->
    free:(tid:int -> 'a -> unit) ->
    unit ->
    'a t
  (** [create ~num_threads ~slots_per_thread ~free ()] builds a hazard
      domain. [free] is called by the scanning thread (with its own
      [tid]) for each reclaimable node. [extra_hazards] lists additional
      hazard roots, scanned {e after} the slots — the Kogan-Petrank queue
      registers its descriptor node references here so that a node
      reachable from any descriptor is never recycled (the scan ordering
      covers in-flight transfers from a slot into a root). The default
      [scan_threshold] is Michael's [2·H + Θ(1)]. *)

  val protect : 'a t -> tid:int -> slot:int -> 'a -> unit
  (** Publish a node in the caller's slot. The caller must re-validate
      its source pointer after publishing and before dereferencing. *)

  val clear : 'a t -> tid:int -> slot:int -> unit
  val clear_all : 'a t -> tid:int -> unit

  val protect_read :
    'a t -> tid:int -> slot:int -> (unit -> 'a option) -> 'a option
  (** [protect_read t ~tid ~slot read] loops read → publish → re-read
      until stable; the returned node (if any) is published and was
      reachable at publication time. *)

  val retire : 'a t -> tid:int -> 'a -> unit
  (** Hand a node removed from the structure to deferred reclamation;
      may trigger a scan. Each node must be retired at most once. *)

  val scan : 'a t -> tid:int -> unit
  (** Force a reclamation pass over the caller's retire list. *)

  val flush : 'a t -> unit
  (** Scan every thread's retire list. Quiescent use only (tests,
      shutdown). *)

  type stats = { retired : int; freed : int; still_pending : int }

  val stats : 'a t -> stats
  (** Aggregate counters; exact only at quiescence. *)
end
