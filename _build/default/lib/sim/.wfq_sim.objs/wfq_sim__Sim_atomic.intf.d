lib/sim/sim_atomic.mli: Wfq_primitives
