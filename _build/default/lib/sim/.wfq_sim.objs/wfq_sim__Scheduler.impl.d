lib/sim/scheduler.ml: Array Effect Fun Hashtbl List Wfq_primitives
