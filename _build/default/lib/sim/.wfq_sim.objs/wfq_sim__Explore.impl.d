lib/sim/explore.ml: Array Fun List Printexc Printf Scheduler
