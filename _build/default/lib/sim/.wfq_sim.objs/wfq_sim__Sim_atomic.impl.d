lib/sim/sim_atomic.ml: Scheduler
