lib/sim/scheduler.mli: Effect
