lib/sim/explore.mli: Scheduler
