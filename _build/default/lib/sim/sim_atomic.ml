(** Simulator implementation of {!Wfq_primitives.Atomic_intf.ATOMIC}.

    Cells are plain references — the simulator is single-domain — but
    every access first performs {!Scheduler.Yield}, making each shared
    read/write/CAS an individual scheduling point. Instantiating a queue
    functor with this module therefore exposes every interleaving of its
    shared-memory accesses to the scheduler, which is exactly the
    granularity of the paper's atomic-step model (§5.1).

    [compare_and_set] uses physical equality, like [Stdlib.Atomic] (and
    like Java reference CAS); for immediates such as [int], physical and
    structural equality coincide. *)

type 'a t = { mutable contents : 'a }

let make v = { contents = v }

let get r =
  Scheduler.yield ();
  r.contents

(* Non-yielding read for assertions outside a scheduled run. *)
let peek r = r.contents

let set r v =
  Scheduler.yield ();
  r.contents <- v

let compare_and_set r expected desired =
  Scheduler.yield ();
  if r.contents == expected then begin
    r.contents <- desired;
    true
  end
  else false

let exchange r v =
  Scheduler.yield ();
  let old = r.contents in
  r.contents <- v;
  old

let fetch_and_add r d =
  Scheduler.yield ();
  let old = r.contents in
  r.contents <- old + d;
  old
