(** Simulator implementation of [Wfq_primitives.Atomic_intf.ATOMIC]:
    plain cells whose every access first performs {!Scheduler.Yield},
    making each shared read/write/CAS an individual scheduling point —
    the paper's atomic-step execution model (§5.1), made executable. *)

include Wfq_primitives.Atomic_intf.ATOMIC

val peek : 'a t -> 'a
(** Non-yielding read for assertions outside a scheduled run. *)
