(** Herlihy's wait-free universal construction — the generic
    sequential-to-wait-free transformation the paper's related work (§2)
    contrasts with purpose-built queues. Operations are agreed into a
    single totally-ordered log via per-node CAS consensus; an
    announce-array turn rule makes the construction wait-free. Built
    here so the paper's practicality argument (total serialization, no
    disjoint-access parallelism) can be measured, not assumed. *)

module type SEQ_OBJECT = sig
  type t
  type invocation
  type response

  val initial : t

  val apply : t -> invocation -> t * response
  (** Pure sequential semantics; must not mutate. *)
end

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) (Obj : SEQ_OBJECT) : sig
  type t

  val create :
    num_threads:int -> dummy_invocation:Obj.invocation -> unit -> t
  (** [dummy_invocation] seeds the log sentinel and must be a no-op on
      [Obj.initial] (its response is never observed). *)

  val apply : t -> tid:int -> Obj.invocation -> Obj.response
  (** Wait-free linearizable application: completes within O(n) log
      extensions regardless of other threads. *)

  val current_state : t -> Obj.t
  (** Quiescent snapshot of the abstract state (tests). *)

  val debug_chain : t -> string
  (** Render the log chain and announce slots (diagnostics; quiescent or
      [Scheduler.ignore_yields] use). *)
end

(** The sequential FIFO queue object (int payloads). *)
module Queue_object : sig
  type t = { front : int list; back : int list }
  type invocation = Enq of int | Deq
  type response = Done | Got of int | Empty

  val initial : t
  val apply : t -> invocation -> t * response
  val to_list : t -> int list
end

(** The universal construction instantiated with {!Queue_object}: a
    wait-free MPMC queue obtained generically, with the repository's
    common interface. Expect it to be far slower than Kogan-Petrank's
    purpose-built queue — that gap is the paper's §2 argument. *)
module Queue (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type t

  val name : string
  val create : num_threads:int -> unit -> t
  val enqueue : t -> tid:int -> int -> unit
  val dequeue : t -> tid:int -> int option
  val to_list : t -> int list
  val length : t -> int
  val is_empty : t -> bool
end
