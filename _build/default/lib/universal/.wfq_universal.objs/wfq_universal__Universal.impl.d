lib/universal/universal.ml: Array Buffer List Printf Wfq_primitives
