lib/universal/universal.mli: Wfq_primitives
