(** Herlihy's wait-free universal construction (ACM TOPLAS 1993; the
    lock-free/wait-free transformation of any sequential object), as
    presented in Herlihy & Shavit's AMP book.

    The paper's related work (§2) discusses this construction at length:
    it {e can} produce a wait-free queue, but (1) it serializes all
    operations through agreement on a single log — no disjoint-access
    parallelism, enqueuers and dequeuers always contend — and (2) each
    node carries a snapshot of (or a path to) the object state. We build
    it to measure that argument rather than take it on faith: the
    extended benchmark runs this queue next to Kogan-Petrank's.

    Mechanics: operations are agreed into a single totally-ordered log.
    Each thread announces its intended operation in [announce]; threads
    then repeatedly take the latest known log node ([head]s), and decide
    the successor through a CAS-based consensus object. Wait-freedom
    comes from the turn rule: before pushing its own operation, a thread
    helps the announced operation of the thread whose "turn" it is
    (thread [(seq + 1) mod n]), so an announced operation is adopted
    after at most [n] log extensions.

    The object state is stored functionally in each node (the book's
    variant replays the whole log; storing persistent states is the
    standard practical tweak — for our queue the state is a two-list
    functional queue with O(1) amortized operations and full structural
    sharing, which is as favourable to the construction as possible). *)

(** The sequential object being lifted. *)
module type SEQ_OBJECT = sig
  type t
  type invocation
  type response

  val initial : t
  val apply : t -> invocation -> t * response
end

module Make
    (A : Wfq_primitives.Atomic_intf.ATOMIC)
    (Obj : SEQ_OBJECT) =
struct
  type node = {
    invocation : Obj.invocation;
    owner : int; (* announcing thread *)
    decide_next : node option A.t; (* CAS-based consensus on successor *)
    seq : int A.t; (* 0 until the node is threaded into the log *)
    state : (Obj.t * Obj.response) option A.t;
        (* object state and this operation's response, set when threaded *)
  }

  type t = {
    announce : node A.t array;
    head : node A.t array; (* per-thread view of the latest log node *)
    num_threads : int;
    sentinel : node;
  }

  let make_node ~owner invocation =
    {
      invocation;
      owner;
      decide_next = A.make None;
      seq = A.make 0;
      state = A.make None;
    }

  let create ~num_threads ~dummy_invocation () =
    if num_threads <= 0 then invalid_arg "Universal.create: num_threads";
    (* The sentinel's "response" is never observed; its cells are
       initialized directly ([A.make]) rather than stored afterwards, so
       creation performs no shared-memory operations — required for
       construction outside a simulator run. *)
    let _, r0 = Obj.apply Obj.initial dummy_invocation in
    let sentinel =
      {
        invocation = dummy_invocation;
        owner = -1;
        decide_next = A.make None;
        seq = A.make 1;
        state = A.make (Some (Obj.initial, r0));
      }
    in
    {
      announce = Array.init num_threads (fun _ -> A.make sentinel);
      head = Array.init num_threads (fun _ -> A.make sentinel);
      num_threads;
      sentinel;
    }

  (* Latest log node among all per-thread views (max by seq). *)
  let max_head t =
    let best = ref (A.get t.head.(0)) in
    for i = 1 to t.num_threads - 1 do
      let n = A.get t.head.(i) in
      if A.get n.seq > A.get !best.seq then best := n
    done;
    !best

  let decide (cell : node option A.t) (preferred : node) =
    if A.compare_and_set cell None (Some preferred) then preferred
    else match A.get cell with Some n -> n | None -> assert false

  let apply t ~tid invocation =
    let mine = make_node ~owner:tid invocation in
    A.set t.announce.(tid) mine;
    (* Catch up to the latest log position ONCE; from here the thread's
       view advances strictly node-by-node through its own decide calls.
       This is load-bearing for safety, not just an optimization: because
       the walk stamps the [seq] of every node it passes — including
       [mine] if a helper threaded it — the loop guard is guaranteed to
       observe [mine.seq <> 0] before this thread could ever re-propose
       its already-threaded node at a later position (which would create
       a cycle in the log). Re-reading [max_head] inside the loop breaks
       exactly that argument: the view could jump over [mine] via another
       thread's head without stamping it. *)
    A.set t.head.(tid) (max_head t);
    while A.get mine.seq = 0 do
      let before = A.get t.head.(tid) in
      let before_seq = A.get before.seq in
      (* Turn rule (the book's "(before.seq + 1) % n"): prefer the
         announced operation of the thread whose turn the next log slot
         is, if it is still unthreaded; this bounds any operation's wait
         by n log extensions. *)
      let help = A.get t.announce.((before_seq + 1) mod t.num_threads) in
      let preferred = if A.get help.seq = 0 then help else mine in
      let after = decide before.decide_next preferred in
      (* Thread [after]: compute its state from [before]'s. Benign
         multiple execution: every helper writes identical values. *)
      (match A.get before.state with
      | Some (st, _) ->
          let st', resp = Obj.apply st after.invocation in
          A.set after.state (Some (st', resp));
          A.set after.seq (before_seq + 1)
      | None ->
          (* before is threaded (seq > 0), so its state is set. *)
          assert false);
      A.set t.head.(tid) after
    done;
    (* Start the next operation from our own node's position (book:
       "head[i] = announce[i]"). *)
    A.set t.head.(tid) mine;
    match A.get mine.state with
    | Some (_, resp) -> resp
    | None -> assert false

  (* Diagnostic chain walk from the sentinel (quiescent/debug use):
     (seq, owner) per node, with cycle detection. *)
  let debug_chain t =
    let buf = Buffer.create 128 in
    let seen = ref [] in
    let rec walk node =
      Buffer.add_string buf
        (Printf.sprintf "(seq=%d owner=%d) " (A.get node.seq) node.owner);
      if List.memq node !seen then Buffer.add_string buf "CYCLE!"
      else begin
        seen := node :: !seen;
        match A.get node.decide_next with
        | Some next -> walk next
        | None -> Buffer.add_string buf "end"
      end
    in
    walk t.sentinel;
    Array.iteri
      (fun i a ->
        let n = A.get a in
        Buffer.add_string buf
          (Printf.sprintf " announce[%d]=(seq=%d owner=%d)" i (A.get n.seq)
             n.owner))
      t.announce;
    Buffer.contents buf

  (* Quiescent read of the abstract state (tests). *)
  let current_state t =
    match A.get (max_head t).state with
    | Some (st, _) -> st
    | None -> assert false
end

(** Functional FIFO queue as a {!SEQ_OBJECT} over int payloads, plus the
    lifted concurrent queue with the repository's common interface. *)
module Queue_object = struct
  type t = { front : int list; back : int list }
  type invocation = Enq of int | Deq
  type response = Done | Got of int | Empty

  let initial = { front = []; back = [] }

  let apply st = function
    | Enq v -> ({ st with back = v :: st.back }, Done)
    | Deq -> (
        match st.front with
        | v :: front -> ({ st with front }, Got v)
        | [] -> (
            match List.rev st.back with
            | [] -> (st, Empty)
            | v :: front -> ({ front; back = [] }, Got v)))

  let to_list st = st.front @ List.rev st.back
end

module Queue (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  module U = Make (A) (Queue_object)

  type t = U.t

  let name = "wf-universal"

  let create ~num_threads () =
    U.create ~num_threads ~dummy_invocation:Queue_object.Deq ()

  let enqueue t ~tid v =
    match U.apply t ~tid (Queue_object.Enq v) with
    | Queue_object.Done -> ()
    | Queue_object.Got _ | Queue_object.Empty -> assert false

  let dequeue t ~tid =
    match U.apply t ~tid Queue_object.Deq with
    | Queue_object.Got v -> Some v
    | Queue_object.Empty -> None
    | Queue_object.Done -> assert false

  let to_list t = Queue_object.to_list (U.current_state t)
  let length t = List.length (to_list t)
  let is_empty t = to_list t = []
end
