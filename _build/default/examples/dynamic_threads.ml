(* Dynamic thread management (§3.3): the queue needs thread IDs in a
   fixed range, but real applications create and destroy threads freely.
   The registry hands out IDs from a small namespace (long-lived
   renaming), letting a churning population of short-lived workers share
   one wait-free queue.

     dune exec examples/dynamic_threads.exe
*)

module Kp = Wfq_core.Kp_queue.Make (Wfq_primitives.Real_atomic)
module Registry = Wfq_registry.Registry

let id_slots = 4 (* queue-visible thread IDs *)
let worker_waves = 6 (* generations of short-lived workers *)
let workers_per_wave = 4
let jobs_per_worker = 2_000

let () =
  let registry = Registry.create ~capacity:id_slots in
  let queue = Kp.create ~num_threads:id_slots () in
  let produced = Atomic.make 0 and consumed = Atomic.make 0 in

  (* Each worker domain acquires a virtual ID for its lifetime, does some
     queue work, and releases the ID for the next generation. *)
  let worker wave w () =
    Registry.with_tid registry (fun tid ->
        for job = 1 to jobs_per_worker do
          Kp.enqueue queue ~tid ((wave * 1_000_000) + (w * 10_000) + job);
          Atomic.incr produced;
          match Kp.dequeue queue ~tid with
          | Some _ -> Atomic.incr consumed
          | None -> failwith "impossible: pairs pattern"
        done)
  in

  for wave = 1 to worker_waves do
    let ds =
      List.init workers_per_wave (fun w -> Domain.spawn (worker wave w))
    in
    List.iter Domain.join ds;
    Printf.printf "wave %d done: %d IDs in use after join (expected 0)\n"
      wave
      (Registry.held registry)
  done;

  Printf.printf
    "\n%d workers across %d waves shared %d IDs: produced=%d consumed=%d\n"
    (worker_waves * workers_per_wave)
    worker_waves id_slots (Atomic.get produced) (Atomic.get consumed);
  Printf.printf "total ID acquisitions: %d; queue empty: %b\n"
    (Registry.total_acquisitions registry)
    (Kp.is_empty queue)
