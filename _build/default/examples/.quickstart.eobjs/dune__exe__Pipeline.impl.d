examples/pipeline.ml: Domain Hashtbl List Printf Unix Wfq_core Wfq_primitives
