examples/quickstart.mli:
