examples/quickstart.ml: Atomic Domain List Printf String Wfq_core Wfq_primitives
