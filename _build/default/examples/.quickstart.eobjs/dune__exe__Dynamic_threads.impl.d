examples/dynamic_threads.ml: Atomic Domain List Printf Wfq_core Wfq_primitives Wfq_registry
