examples/task_scheduler.ml: Atomic Domain List Printf Unix Wfq_core Wfq_primitives
