examples/realtime_latency.ml: Domain List Printf Wfq_harness
