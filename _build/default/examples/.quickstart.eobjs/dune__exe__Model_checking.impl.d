examples/model_checking.ml: List Printf String Wfq_primitives Wfq_sim
