examples/pipeline.mli:
