(* Model-checking your own concurrent code with the simulator — the
   full workflow on a deliberately broken structure:

   1. write the algorithm as a functor over ATOMIC;
   2. explore small scenarios with preemption-bounded search;
   3. replay the failing schedule the explorer hands back;
   4. fix, re-explore, and watch the search exhaust cleanly.

     dune exec examples/model_checking.exe
*)

module SA = Wfq_sim.Sim_atomic
module S = Wfq_sim.Scheduler
module E = Wfq_sim.Explore

(* A "concurrent counter-backed queue" with a classic bug: the size
   counter is read-modify-written non-atomically, so two concurrent
   enqueues can lose an increment. *)
module Racy_size (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type t = { size : int A.t }

  let create () = { size = A.make 0 }

  let enqueue t =
    (* BUG: read then write; a peer's update in between is lost. *)
    let n = A.get t.size in
    A.set t.size (n + 1)

  let size t = A.get t.size
end

module Fixed_size (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type t = { size : int A.t }

  let create () = { size = A.make 0 }
  let enqueue t = ignore (A.fetch_and_add t.size 1)
  let size t = A.get t.size
end

let check_of expected actual (_ : S.result) =
  if actual () = expected then Ok ()
  else Error (Printf.sprintf "size %d, expected %d" (actual ()) expected)

let () =
  print_endline "== model-checking workflow demo ==\n";

  (* Step 1-2: explore the buggy version. *)
  let module Racy = Racy_size (SA) in
  let make_racy () =
    let t = Racy.create () in
    let worker () = Racy.enqueue t in
    ( [| worker; worker; worker |],
      check_of 3 (fun () -> S.ignore_yields (fun () -> Racy.size t)) )
  in
  let report = E.preemption_bounded ~budget:1 ~make:make_racy () in
  (match report.E.failure with
  | Some (prefix, msg) ->
      Printf.printf
        "buggy counter: FAILED after %d schedules\n  %s\n  replay prefix: [%s]\n"
        report.E.schedules msg
        (String.concat ";" (List.map string_of_int prefix));
      (* Step 3: replay the exact failing interleaving. *)
      let fibers, check = make_racy () in
      let res = S.run ~forced:prefix fibers in
      (match check res with
      | Error again -> Printf.printf "  replayed deterministically: %s\n" again
      | Ok () -> print_endline "  replay did not reproduce?!")
  | None ->
      print_endline
        "buggy counter survived exploration (should not happen)");

  (* Step 4: the fixed version exhausts the same search clean. *)
  let module Fixed = Fixed_size (SA) in
  let make_fixed () =
    let t = Fixed.create () in
    let worker () = Fixed.enqueue t in
    ( [| worker; worker; worker |],
      check_of 3 (fun () -> S.ignore_yields (fun () -> Fixed.size t)) )
  in
  let report = E.preemption_bounded ~budget:2 ~make:make_fixed () in
  (match report.E.failure with
  | None ->
      Printf.printf
        "\nfixed counter: %d schedules explored, all correct (exhausted: %b)\n"
        report.E.schedules report.E.exhausted
  | Some (_, msg) -> Printf.printf "\nfixed counter FAILED: %s\n" msg);

  (* Bonus: PCT finds the same bug probabilistically. *)
  let report = E.pct ~count:500 ~change_points:1 ~make:make_racy () in
  match report.E.failure with
  | Some (_, msg) ->
      Printf.printf "\nPCT also finds it: %s\n" msg
  | None -> print_endline "\nPCT missed it in 500 runs (unlucky seeds)"
