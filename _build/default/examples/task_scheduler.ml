(* A dynamic fork-join task scheduler built on the wait-free queue: the
   queue is the shared ready-pool, workers dequeue tasks and tasks may
   spawn subtasks (enqueue back). The wait-free guarantee means a worker
   descheduled mid-enqueue cannot delay the others' task acquisition
   beyond a bounded amount of helping work.

   Workload: recursive range-sum — sum [lo, hi) by splitting ranges until
   they are small, summing leaves into an accumulator. Termination via a
   count of outstanding tasks.

     dune exec examples/task_scheduler.exe
*)

module Kp = Wfq_core.Kp_queue.Make (Wfq_primitives.Real_atomic)

type task = { lo : int; hi : int }

let leaf_size = 1_000
let total_range = 10_000_000
let workers = 4

let () =
  let pool = Kp.create ~num_threads:workers () in
  let outstanding = Atomic.make 0 in
  let sum = Atomic.make 0 in

  let submit ~tid task =
    Atomic.incr outstanding;
    Kp.enqueue pool ~tid task
  in

  let run_task ~tid { lo; hi } =
    if hi - lo <= leaf_size then begin
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + i
      done;
      ignore (Atomic.fetch_and_add sum !s)
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      submit ~tid { lo; hi = mid };
      submit ~tid { lo = mid; hi }
    end
  in

  let worker tid () =
    let rec loop () =
      match Kp.dequeue pool ~tid with
      | Some task ->
          run_task ~tid task;
          ignore (Atomic.fetch_and_add outstanding (-1));
          loop ()
      | None -> if Atomic.get outstanding > 0 then (Domain.cpu_relax (); loop ())
    in
    loop ()
  in

  let t0 = Unix.gettimeofday () in
  (* Seed the pool from worker 0's identity before spawning. *)
  submit ~tid:0 { lo = 0; hi = total_range };
  let ds = List.init workers (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  let dt = Unix.gettimeofday () -. t0 in

  let expected = total_range * (total_range - 1) / 2 in
  Printf.printf "range-sum over [0, %d) with %d workers: %d (expected %d)\n"
    total_range workers (Atomic.get sum) expected;
  Printf.printf "%.3fs, ~%d leaf tasks through the shared wait-free pool\n"
    dt (total_range / leaf_size);
  assert (Atomic.get sum = expected);
  assert (Kp.is_empty pool)
