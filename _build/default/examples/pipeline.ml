(* A three-stage processing pipeline connected by wait-free queues — the
   kind of workload the paper's introduction motivates: stages must keep
   making progress even when a peer stage is descheduled.

   Stage 1 parses "requests" (here: random integers), stage 2 transforms
   them (hash), stage 3 aggregates. Each stage runs in its own domain;
   adjacent stages communicate through a Kogan-Petrank queue, so no stage
   can ever block another — only fail to find input.

     dune exec examples/pipeline.exe
*)

module Kp = Wfq_core.Kp_queue.Make (Wfq_primitives.Real_atomic)
module Rng = Wfq_primitives.Rng

type item = { id : int; payload : int }

(* End-of-stream is an ordinary item with a reserved id, so the queue
   stays monomorphic. *)
let eos = { id = -1; payload = 0 }

let total_items = 50_000

(* Each inter-stage queue is used by exactly two threads: the upstream
   stage (tid 0) and the downstream stage (tid 1). *)
let make_edge () = Kp.create ~num_threads:2 ()

let rec pump deq ~on_item ~on_eos =
  match deq () with
  | Some it when it.id = eos.id -> on_eos ()
  | Some it ->
      on_item it;
      pump deq ~on_item ~on_eos
  | None ->
      Domain.cpu_relax ();
      pump deq ~on_item ~on_eos

let () =
  let q12 = make_edge () and q23 = make_edge () in

  let source () =
    let rng = Rng.create ~seed:2024 in
    for id = 1 to total_items do
      Kp.enqueue q12 ~tid:0 { id; payload = Rng.below rng 1_000_000 }
    done;
    Kp.enqueue q12 ~tid:0 eos
  in

  let transform () =
    pump
      (fun () -> Kp.dequeue q12 ~tid:1)
      ~on_item:(fun it ->
        (* A deliberately CPU-bearing "hash". *)
        let h = ref it.payload in
        for _ = 1 to 8 do
          h := (!h * 1103515245) + 12345
        done;
        Kp.enqueue q23 ~tid:0 { it with payload = !h land 0xFFFF })
      ~on_eos:(fun () -> Kp.enqueue q23 ~tid:0 eos)
  in

  let count = ref 0
  and sum = ref 0
  and seen_ids = Hashtbl.create total_items in
  let sink () =
    pump
      (fun () -> Kp.dequeue q23 ~tid:1)
      ~on_item:(fun it ->
        if Hashtbl.mem seen_ids it.id then
          failwith "pipeline delivered an item twice";
        Hashtbl.add seen_ids it.id ();
        incr count;
        sum := !sum + it.payload)
      ~on_eos:(fun () -> ())
  in

  let t0 = Unix.gettimeofday () in
  let domains =
    [ Domain.spawn source; Domain.spawn transform; Domain.spawn sink ]
  in
  List.iter Domain.join domains;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "pipeline processed %d items exactly once in %.3fs (%.0f items/s)\n"
    !count dt
    (float_of_int !count /. dt);
  Printf.printf "aggregate checksum: %d\n" !sum;
  assert (!count = total_items)
