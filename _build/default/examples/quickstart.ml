(* Quickstart: create a wait-free queue, share it between domains, and
   observe FIFO delivery.

     dune exec examples/quickstart.exe
*)

module Kp = Wfq_core.Kp_queue.Make (Wfq_primitives.Real_atomic)

let () =
  (* A queue for up to 4 threads; thread IDs are small integers that each
     participating thread must own exclusively (see examples/
     dynamic_threads.ml for dynamic ID management). *)
  let queue = Kp.create ~num_threads:4 () in

  (* Single-threaded use. *)
  Kp.enqueue queue ~tid:0 "hello";
  Kp.enqueue queue ~tid:0 "wait-free";
  Kp.enqueue queue ~tid:0 "world";
  assert (Kp.dequeue queue ~tid:0 = Some "hello");
  Printf.printf "front after one dequeue: %s\n"
    (String.concat ", " (Kp.to_list queue));

  (* Concurrent use: two producers, one consumer, all wait-free — every
     operation completes in a bounded number of steps regardless of what
     the other domains are doing. *)
  let n = 10_000 in
  let producer tid () =
    for i = 1 to n do
      Kp.enqueue queue ~tid (Printf.sprintf "p%d-%d" tid i)
    done
  in
  let consumed = Atomic.make 0 in
  let consumer () =
    (* Everything already in the queue plus 2n new items. *)
    let target = 2 + (2 * n) in
    while Atomic.get consumed < target do
      match Kp.dequeue queue ~tid:3 with
      | Some _ -> Atomic.incr consumed
      | None -> Domain.cpu_relax ()
    done
  in
  let domains =
    [ Domain.spawn (producer 1); Domain.spawn (producer 2);
      Domain.spawn consumer ]
  in
  List.iter Domain.join domains;
  Printf.printf "consumed %d items; queue empty: %b\n"
    (Atomic.get consumed) (Kp.is_empty queue)
