(* Benchmark executable regenerating every figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks (one group per
   figure) measuring per-operation cost and allocation.

   Usage:
     dune exec bench/main.exe               # quick scale (default)
     dune exec bench/main.exe -- --paper    # the paper's parameters
     dune exec bench/main.exe -- --skip-micro   # completion-time only
     dune exec bench/main.exe -- --csv      # also emit CSV blocks

   The completion-time tables are the data behind the paper's plots; see
   EXPERIMENTS.md for paper-vs-measured commentary. *)

open Bechamel
module F = Wfq_harness.Figures
module I = Wfq_harness.Impls
module W = Wfq_harness.Workload

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Per-operation enqueue-dequeue pair on a persistent queue (size stays
   bounded), one closure per algorithm. *)
let pair_op (module Q : I.BENCH_QUEUE) =
  let q = Q.create ~num_threads:1 in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Q.enqueue q ~tid:0 !i;
      ignore (Q.dequeue q ~tid:0))

(* Strictly alternating enq/deq over a prefilled queue: the single-thread
   stand-in for the 50% enqueues mix with a stable queue size. *)
let alternating_op (module Q : I.BENCH_QUEUE) =
  let q = Q.create ~num_threads:1 in
  for i = 1 to 1000 do
    Q.enqueue q ~tid:0 i
  done;
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      if !i land 1 = 0 then Q.enqueue q ~tid:0 !i
      else ignore (Q.dequeue q ~tid:0))

(* Enqueue-only: its minor-allocation profile is the per-node footprint
   that Figure 10 is about. *)
let enq_op (module Q : I.BENCH_QUEUE) =
  let q = Q.create ~num_threads:1 in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Q.enqueue q ~tid:0 !i)

let micro_groups =
  [
    ("fig7-pairs", [ I.lf; I.wf_base; I.wf_opt12 ], pair_op);
    ("fig8-50pc-enq", [ I.lf; I.wf_base; I.wf_opt12 ], alternating_op);
    ("fig9-optimizations", [ I.wf_base; I.wf_opt1; I.wf_opt2; I.wf_opt12 ],
     pair_op);
    ("fig10-enqueue-alloc", [ I.lf; I.wf_base; I.wf_opt12; I.wf_hp ], enq_op);
  ]

let run_micro () =
  print_endline "== Bechamel micro-benchmarks (single-thread per-op cost) ==";
  (* Bechamel's monotonic_clock instance reads the same CLOCK_MONOTONIC
     source as Wfq_harness.Clock, so per-op estimates here and the
     harness's latency samples (Latency, Open_loop) are directly
     comparable — no wall-clock/monotonic mismatch between stages. *)
  let clock = Toolkit.Instance.monotonic_clock in
  let alloc = Toolkit.Instance.minor_allocated in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  List.iter
    (fun (group, impls, op) ->
      let tests =
        List.map (fun impl -> Test.make ~name:(I.name impl) (op impl)) impls
      in
      let grouped = Test.make_grouped ~name:group tests in
      let raw = Benchmark.all cfg [ clock; alloc ] grouped in
      let times = Analyze.all ols clock raw in
      let allocs = Analyze.all ols alloc raw in
      Printf.printf "\n[%s]\n" group;
      let rows =
        Hashtbl.fold (fun name t acc -> (name, t) :: acc) times []
        |> List.sort compare
      in
      List.iter
        (fun (name, t) ->
          let ns =
            match Analyze.OLS.estimates t with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let words =
            match Hashtbl.find_opt allocs name with
            | Some a -> (
                match Analyze.OLS.estimates a with
                | Some (e :: _) -> e
                | _ -> nan)
            | None -> nan
          in
          Printf.printf "  %-28s %10.1f ns/op %10.1f minor-words/op\n" name
            ns words)
        rows)
    micro_groups;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Shared-memory operation profiles (cost model, §3.3)                 *)
(* ------------------------------------------------------------------ *)

module C = Wfq_primitives.Counted_atomic
module CA = Wfq_primitives.Counted_atomic.Make (Wfq_primitives.Real_atomic)
module Cms = Wfq_core.Ms_queue.Make (CA)
module Ckp = Wfq_core.Kp_queue.Make (CA)
module Clms = Wfq_core.Lms_queue.Make (CA)

(* Atomic reads/writes/CAS per uncontended operation, at two thread-count
   settings — the table that explains Figure 9: the base algorithm's
   per-operation work scales with num_threads, the optimized one's does
   not. *)
let run_profiles () =
  print_endline
    "\n== Shared-memory operation profile (uncontended; reads/writes/CAS \
     per op) ==";
  let profile f =
    CA.reset ();
    f ();
    CA.snapshot ()
  in
  let row name enq deq =
    Printf.printf "  %-22s enq: %-42s\n  %22s deq: %-42s\n" name
      (Format.asprintf "%a" C.pp enq)
      ""
      (Format.asprintf "%a" C.pp deq)
  in
  let kp_case name help phase num_threads =
    let q = Ckp.create_with ~help ~phase ~num_threads () in
    let enq = profile (fun () -> Ckp.enqueue q ~tid:0 1) in
    Ckp.enqueue q ~tid:0 2;
    let deq = profile (fun () -> ignore (Ckp.dequeue q ~tid:0)) in
    row (Printf.sprintf "%s (n=%d)" name num_threads) enq deq
  in
  let q = Cms.create ~num_threads:1 () in
  let enq = profile (fun () -> Cms.enqueue q ~tid:0 1) in
  Cms.enqueue q ~tid:0 2;
  let deq = profile (fun () -> ignore (Cms.dequeue q ~tid:0)) in
  row "LF (Michael-Scott)" enq deq;
  let ql = Clms.create ~num_threads:1 () in
  let enq = profile (fun () -> Clms.enqueue ql ~tid:0 1) in
  Clms.enqueue ql ~tid:0 2;
  let deq = profile (fun () -> ignore (Clms.dequeue ql ~tid:0)) in
  row "LF optimistic (LMS)" enq deq;
  List.iter
    (fun n ->
      kp_case "base WF" Wfq_core.Kp_queue.Help_all
        Wfq_core.Kp_queue.Phase_scan n)
    [ 1; 8; 16 ];
  List.iter
    (fun n ->
      kp_case "opt WF (1+2)" Wfq_core.Kp_queue.Help_one_cyclic
        Wfq_core.Kp_queue.Phase_counter n)
    [ 1; 16 ];
  flush stdout

(* ------------------------------------------------------------------ *)
(* Completion-time figures (the paper's actual plots)                  *)
(* ------------------------------------------------------------------ *)

let run_figures ~scale ~csv () =
  let s : F.scale = scale in
  Printf.printf
    "\n\
     == Completion-time figures ==\n\
     threads: %s; %d iterations/thread; %d runs per point\n"
    (String.concat "," (List.map string_of_int s.threads))
    s.iters s.runs;

  let fig7 = F.fig7 ~scale:s () in
  F.print_fig ~title:"Figure 7: enqueue-dequeue pairs, completion time"
    ~y_label:"seconds" fig7;
  Wfq_harness.Chart.print ~title:"Figure 7 (shape)" fig7;
  if csv then Wfq_harness.Report.print_csv ~title:"fig7" fig7;

  let fig8 = F.fig8 ~scale:s () in
  F.print_fig ~title:"Figure 8: 50% enqueues, completion time"
    ~y_label:"seconds" fig8;
  Wfq_harness.Chart.print ~title:"Figure 8 (shape)" fig8;
  if csv then Wfq_harness.Report.print_csv ~title:"fig8" fig8;

  let fig9 = F.fig9 ~scale:s () in
  F.print_fig ~title:"Figure 9: impact of the optimizations"
    ~y_label:"seconds" fig9;
  Wfq_harness.Chart.print ~title:"Figure 9 (shape)" fig9;
  if csv then Wfq_harness.Report.print_csv ~title:"fig9" fig9;

  let fig10 = F.fig10 ~scale:s () in
  F.print_fig10 fig10;
  Wfq_harness.Chart.print ~title:"Figure 10 (shape; x = queue size)" fig10;
  if csv then Wfq_harness.Report.print_csv ~title:"fig10" fig10;

  let ext =
    F.extended_pairs ~scale:{ s with runs = max 1 (s.runs / 2) } ()
  in
  F.print_fig
    ~title:"Extension: all implementations, enqueue-dequeue pairs"
    ~y_label:"seconds" ext;
  if csv then Wfq_harness.Report.print_csv ~title:"extended" ext;

  let abl = F.ablation ~scale:{ s with runs = max 1 (s.runs / 2) } () in
  F.print_fig
    ~title:
      "Ablation: helping-chunk size and tuning enhancements (pairs)"
    ~y_label:"seconds" abl;
  if csv then Wfq_harness.Report.print_csv ~title:"ablation" abl

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let scale = if has "--paper" then F.paper else F.quick in
  Printf.printf
    "wait-free queue benchmarks (Kogan-Petrank PPoPP'11 reproduction)\n\
     host: %d recommended domain(s)\n"
    (Domain.recommended_domain_count ());
  (* Total wall time on the shared monotonic clock — immune to NTP
     steps mid-run, unlike the Unix.gettimeofday this used to read. *)
  let t0 = Wfq_harness.Clock.now_s () in
  if not (has "--skip-micro") then run_micro ();
  run_profiles ();
  if not (has "--skip-figures") then run_figures ~scale ~csv:(has "--csv") ();
  Printf.printf "\ntotal bench time: %.1f s (monotonic)\n"
    (Wfq_harness.Clock.now_s () -. t0)
