(* A fan-out/fan-in stage pipeline over the sharded front-end
   (lib/shard): several producer domains feed one Wfq_shard queue in
   batches, several worker domains drain it in batches, and a strict
   (single-shard) queue carries the ordered results to a sink.

   The example shows the two halves of the sharding contract in one
   program:
   - the wide middle edge tolerates relaxed global order (workers don't
     care which producer's item they grab first), so it uses 4 shards
     and batch operations — contention is shard-local and ticket
     acquisition is amortized;
   - the result edge needs strict FIFO (the sink checks workers'
     per-worker sequence numbers), so it uses [create_strict] — same
     API, strict semantics.

     dune exec examples/shard_pipeline.exe
*)

module Sh = Wfq_shard.Shard.Make (Wfq_primitives.Real_atomic)
module Rng = Wfq_primitives.Rng

let producers = 2
let workers = 2
let per_producer = 20_000
let batch = 16
let total = producers * per_producer

(* Middle edge: producers are tids 0..producers-1, workers follow. *)
let work_q : int Sh.t =
  Sh.create ~policy:Wfq_shard.Shard.Round_robin ~shards:4
    ~num_threads:(producers + workers) ()

(* Result edge: each worker owns a tid; the sink is the last tid. *)
let result_q : (int * int * int) Sh.t =
  Sh.create_strict ~num_threads:(workers + 1) ()

let done_producing = Atomic.make 0

let producer p () =
  let rng = Rng.create ~seed:(9000 + p) in
  let rec feed sent acc n =
    if sent = per_producer then (
      if acc <> [] then Sh.enqueue_batch work_q ~tid:p (List.rev acc))
    else
      let item = (p * per_producer) + Rng.below rng 1_000_000 in
      if n + 1 = batch then (
        Sh.enqueue_batch work_q ~tid:p (List.rev (item :: acc));
        feed (sent + 1) [] 0)
      else feed (sent + 1) (item :: acc) (n + 1)
  in
  feed 0 [] 0;
  Atomic.incr done_producing

let worker w () =
  let tid = producers + w in
  let seq = ref 0 in
  let process v =
    (* A deliberately CPU-bearing "hash". *)
    let h = ref v in
    for _ = 1 to 8 do
      h := (!h * 1103515245) + 12345
    done;
    incr seq;
    Sh.enqueue result_q ~tid:w (w, !seq, !h land 0xFFFF)
  in
  (* Termination: an empty sweep observed AFTER all producers finished
     is conclusive — no enqueue is concurrent anymore, so a remaining
     element would have been found. The flag must be read before the
     confirming sweep. *)
  let rec drain () =
    let all_produced = Atomic.get done_producing = producers in
    match Sh.dequeue_batch work_q ~tid ~n:batch with
    | [] ->
        if not all_produced then (
          Domain.cpu_relax ();
          drain ())
    | vs ->
        List.iter process vs;
        drain ()
  in
  drain ()

let () =
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init workers (fun w -> Domain.spawn (worker w))
  in
  List.iter Domain.join domains;
  (* Sink: sequential drain of the strict edge. Per-worker sequence
     numbers must arrive in order — the strict edge guarantees it. *)
  let last = Array.make workers 0 in
  let count = ref 0 and checksum = ref 0 in
  let rec sink () =
    match Sh.dequeue result_q ~tid:workers with
    | None -> ()
    | Some (w, seq, h) ->
        if seq <> last.(w) + 1 then
          failwith
            (Printf.sprintf "worker %d results out of order: %d after %d" w
               seq last.(w));
        last.(w) <- seq;
        incr count;
        checksum := !checksum + h;
        sink ()
  in
  sink ();
  let dt = Unix.gettimeofday () -. t0 in
  assert (!count = total);
  assert (Sh.is_empty work_q);
  let st = Sh.stats work_q in
  Printf.printf
    "shard pipeline processed %d items exactly once in %.3fs (%.0f items/s)\n"
    !count dt
    (float_of_int !count /. dt);
  Printf.printf "aggregate checksum: %d\n" !checksum;
  Array.iteri
    (fun s c ->
      Printf.printf "  shard %d: %d in / %d out (%d stolen)\n" s
        c.Wfq_shard.Shard.enqueues c.Wfq_shard.Shard.dequeues
        c.Wfq_shard.Shard.steals)
    st
