(* Tail-latency comparison — why wait-freedom matters for deadline-bound
   systems (the paper's §1 motivation: real-time applications, SLAs,
   heterogeneous execution environments).

   Several worker domains run enqueue-dequeue pairs while we record the
   latency of every operation pair. A blocking queue lets one preempted
   lock holder stall everyone (tail explodes); the non-blocking queues
   bound the damage, and the wait-free queue additionally bounds each
   individual thread's work.

   On this container (1 core) preemption is constant, which is exactly
   the adversarial environment for blocking designs.

     dune exec examples/realtime_latency.exe
*)

module I = Wfq_harness.Impls
module L = Wfq_harness.Latency

let threads = 4
let iters = 20_000

let () =
  Printf.printf
    "per-operation latency, %d domains x %d pairs (microseconds; \
     enqueue / dequeue timed separately)\n\n"
    threads iters;
  Printf.printf "%-16s %-4s %10s %10s %10s %12s\n" "queue" "op" "p50" "p99"
    "p99.9" "max";
  List.iter
    (fun impl ->
      let s = L.measure ~threads ~iters impl in
      let row op (d : L.dist) =
        Printf.printf "%-16s %-4s %10.2f %10.2f %10.2f %12.2f\n"
          (I.name impl) op d.L.p50 d.L.p99 d.L.p999 d.L.max
      in
      row "enq" s.L.enqueue;
      row "deq" s.L.dequeue)
    [ I.lf; I.wf_base; I.wf_opt12; I.two_lock; I.mutex ];
  print_newline ();
  if Domain.recommended_domain_count () <= 1 then
    print_endline
      "Note: on a single-core host every queue's max latency is dominated\n\
       by the measuring thread itself being preempted mid-operation, so\n\
       the blocking/non-blocking distinction is not visible here. The\n\
       rigorous demonstration of bounded per-thread work lives in the\n\
       deterministic-simulator tests (test/test_sim_queues.ml) and in\n\
       `wfq_check stall`."
  else
    print_endline
      "Expected shape: similar medians, but the blocking queues' tails\n\
       (max) stretch to whole scheduling quanta when a lock holder is\n\
       preempted, while the non-blocking queues stay within the cost of\n\
       helping."
