(* A miniature service on the effect-based fiber scheduler (Wfq_sched):
   requests fan out into subfibers that hop through the wait-free
   run-queues (spawn, yield, await), and the scheduler's metrics
   registry reports what happened — fibers, steals, run-queue depths,
   per-fiber latency.

   Unlike examples/task_scheduler.ml, which hand-rolls a ready-pool
   loop over one shared queue, this uses the real scheduler: per-domain
   run-queues, steal-on-empty sweeps, and direct-style fiber code via
   effect handlers.

     dune exec examples/sched_service.exe
*)

module Sched = Wfq_sched.Sched
module A = Wfq_primitives.Real_atomic
module S = Sched.Make (A) (Sched.Rq_fps_pooled (A))

let domains = 4
let requests = 100
let fanout = 8

(* Pretend CPU work: hash a range of ints. *)
let hash_range seed n =
  let h = ref seed in
  for i = 1 to n do
    h := (!h + (i * 0x9E3779B1)) lxor (!h lsr 7)
  done;
  !h land 0xFFFF

let () =
  let reg = Wfq_obsv.Metrics.create () in
  let obsv = Sched.metrics reg ~prefix:"svc" ~slots:domains in
  let clock () = Int64.to_int (Monotonic_clock.now ()) in
  let t = S.create ~obsv ~clock ~num_workers:domains () in
  S.register_metrics t reg ~prefix:"svc";

  (* One request: parse, fan out shard lookups, merge, respond. *)
  let handle_request id =
    let _parsed = hash_range id 200 in
    let lookups =
      List.init fanout (fun shard ->
          S.spawn (fun () ->
              S.yield ();
              (* a queue hop, as a real lookup would do *)
              hash_range (id + shard) 300))
    in
    let merged = List.fold_left (fun acc p -> acc + S.await p) 0 lookups in
    hash_range merged 200
  in

  let answers =
    S.run t (fun () ->
        let reqs = List.init requests (fun id -> S.spawn (fun () -> handle_request id)) in
        List.map S.await reqs)
  in

  Printf.printf "served %d requests on %d domains (checksum %d)\n\n"
    (List.length answers) domains
    (List.fold_left ( + ) 0 answers land 0xFFFF);
  Printf.printf "fibers: %d spawned, %d completed; steals: %d won of %d sweeps\n\n"
    (S.fibers_spawned t) (S.fibers_completed t) (S.steals_won t)
    (S.steal_attempts t);
  print_endline "=== scheduler metrics ===";
  Wfq_obsv.Metrics.dump reg stdout
