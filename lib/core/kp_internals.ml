(** The node / linked-list representation shared by the Kogan-Petrank
    queue family ([Kp_queue], [Kp_queue_fps]).

    Paper Figure 1, lines 1-12: a singly-linked list of nodes behind a
    sentinel. [value] is [None] only for the initial sentinel; [enq_tid]
    is written once at node creation while [deq_tid] is contended, hence
    atomic (L5).

    [enq_tid] doubles as the fast-path marker in the fast-path/slow-path
    variant: a node appended by a fast-path (plain Michael-Scott)
    enqueue carries [enq_tid = no_tid], telling helpers there is no
    descriptor to finish — only [tail] to advance. Slow-path (and all
    base-KP) nodes carry the enqueuer's real tid.

    The traversal observers are quiescent-use-only, exactly as in the
    individual queues' interfaces. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type 'a node = {
    value : 'a option;
    next : 'a node option A.t;
    enq_tid : int;
    deq_tid : int A.t;
  }

  (** [enq_tid] of the sentinel and of fast-path nodes; also the
      unclaimed state of every [deq_tid]. *)
  let no_tid = -1

  let make_sentinel () =
    { value = None; next = A.make None; enq_tid = no_tid;
      deq_tid = A.make no_tid }

  let make_node ~enq_tid value =
    { value = Some value; next = A.make None; enq_tid;
      deq_tid = A.make no_tid }

  (* ------------------------------------------------------------------ *)
  (* Quiescent list observers, shared verbatim by every variant.        *)
  (* ------------------------------------------------------------------ *)

  let to_list head =
    let rec collect acc node =
      match A.get node.next with
      | None -> List.rev acc
      | Some n ->
          let v = match n.value with Some v -> v | None -> assert false in
          collect (v :: acc) n
    in
    collect [] (A.get head)

  let length head =
    let rec count acc node =
      match A.get node.next with None -> acc | Some n -> count (acc + 1) n
    in
    count 0 (A.get head)

  let is_empty head = A.get (A.get head).next = None

  (** The structural half of [check_quiescent_invariants]: [tail]
      reachable from [head] and no node dangling past [tail]. Variants
      layer their descriptor-state checks on top. *)
  let check_list_invariants ~head ~tail =
    let head = A.get head in
    let tail = A.get tail in
    let rec reaches node =
      if node == tail then true
      else match A.get node.next with None -> false | Some n -> reaches n
    in
    if not (reaches head) then Error "tail not reachable from head"
    else if A.get tail.next <> None then Error "dangling node after tail"
    else Ok ()
end
