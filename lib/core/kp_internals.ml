(** The node / linked-list representation shared by the Kogan-Petrank
    queue family ([Kp_queue], [Kp_queue_fps]).

    Paper Figure 1, lines 1-12: a singly-linked list of nodes behind a
    sentinel. [value] is [None] only for the initial sentinel; [enq_tid]
    is written once at node creation while [deq_tid] is contended, hence
    atomic (L5).

    [enq_tid] doubles as the fast-path marker in the fast-path/slow-path
    variant: a node appended by a fast-path (plain Michael-Scott)
    enqueue carries [enq_tid = no_tid], telling helpers there is no
    descriptor to finish — only [tail] to advance. Slow-path (and all
    base-KP) nodes carry the enqueuer's real tid.

    To support node recycling ([Segment_pool]) the once-written fields
    ([value], [enq_tid]) are mutable — still written only by the
    allocating enqueuer before the node is published — and [deq_tid]
    holds an {e epoch-tagged} word ([Counted_atomic.Epoch]): payload =
    the claiming tid (or [no_tid]), epoch = the node's incarnation.
    Epoch 0 packs to the raw value, so unpooled queues (which never
    recycle and stay at epoch 0) see exactly the historical
    representation. [recycle] bumps the incarnation, which is what
    makes a stalled helper's claim CAS on a recycled node fail instead
    of ABA-claiming the new incarnation.

    The traversal observers are quiescent-use-only, exactly as in the
    individual queues' interfaces. *)

module Epoch = Wfq_primitives.Counted_atomic.Epoch

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type 'a node = {
    mutable value : 'a option;
    next : 'a node option A.t;
    mutable enq_tid : int;
    deq_tid : int A.t;
    (* Intrusive [Segment_pool] storage: the free-list/quarantine link
       (self-referential when unlinked) and the retire-epoch stamp.
       Owned by the pool while the node is retired; dead storage while
       the node is live. *)
    mutable pool_next : 'a node;
    mutable pool_stamp : int;
  }

  (** [enq_tid] of the sentinel and of fast-path nodes; also the
      unclaimed payload of every [deq_tid]. *)
  let no_tid = -1

  (* [pool_next] needs a self-reference at creation (the type has no
     null); hoisting the [A.make] calls leaves a statically-constructive
     [let rec]. *)
  let make_sentinel () =
    let next = A.make None in
    let deq_tid = A.make no_tid in
    let rec n =
      { value = None; next; enq_tid = no_tid; deq_tid; pool_next = n;
        pool_stamp = 0 }
    in
    n

  let make_node ~enq_tid value =
    let next = A.make None in
    let deq_tid = A.make no_tid in
    let rec n =
      { value = Some value; next; enq_tid; deq_tid; pool_next = n;
        pool_stamp = 0 }
    in
    n

  let pool_ops =
    {
      Wfq_primitives.Segment_pool.get_next = (fun n -> n.pool_next);
      set_next = (fun n m -> n.pool_next <- m);
      get_stamp = (fun n -> n.pool_stamp);
      set_stamp = (fun n s -> n.pool_stamp <- s);
    }

  (* ------------------------------------------------------------------ *)
  (* Epoch-tagged claim protocol                                        *)
  (* ------------------------------------------------------------------ *)

  (** The claiming tid of [node] (or [no_tid]), stripped of its epoch. *)
  let claimed_tid node = Epoch.value (A.get node.deq_tid)

  (** One claim attempt. [observed] is [node]'s claim word as read {e
      when the caller obtained its reference to [node]} (i.e. when it
      read [head]); the CAS expects that exact word, so it validates
      payload ("still unclaimed") and epoch ("still the incarnation I
      saw") atomically. A helper that stalled across a recycle holds an
      old incarnation's word: its CAS fails instead of ABA-claiming the
      new incarnation. When [observed] is already claimed the CAS is
      skipped entirely — same single-CAS budget as the historical
      [compare_and_set deq_tid (-1) tid], keeping the §3.3 RMW cost
      model intact. *)
  let try_claim node ~observed ~tid =
    Epoch.value observed = no_tid
    && A.compare_and_set node.deq_tid observed (Epoch.with_value observed tid)

  (** Reset a node for its next life: clear the payload fields and bump
      [deq_tid] to the next incarnation's unclaimed word. Called from
      the pool's [reset] with the node quiescent (quarantine has proven
      no thread still holds a reference). *)
  let recycle node =
    node.value <- None;
    node.enq_tid <- no_tid;
    A.set node.next None;
    A.set node.deq_tid (Epoch.next_incarnation (A.get node.deq_tid))

  (** Recycle {e without} bumping the incarnation — the seeded fault for
      the DPOR calibration scenario ([Untagged_pool_claim]): with the
      tag gone, a stalled helper's claim CAS can ABA a recycled node. *)
  let recycle_untagged node =
    node.value <- None;
    node.enq_tid <- no_tid;
    A.set node.next None;
    A.set node.deq_tid no_tid

  (* ------------------------------------------------------------------ *)
  (* Quiescent list observers, shared verbatim by every variant.        *)
  (* ------------------------------------------------------------------ *)

  let to_list head =
    let rec collect acc node =
      match A.get node.next with
      | None -> List.rev acc
      | Some n ->
          let v = match n.value with Some v -> v | None -> assert false in
          collect (v :: acc) n
    in
    collect [] (A.get head)

  let length head =
    let rec count acc node =
      match A.get node.next with None -> acc | Some n -> count (acc + 1) n
    in
    count 0 (A.get head)

  let is_empty head = A.get (A.get head).next = None

  (** The structural half of [check_quiescent_invariants]: [tail]
      reachable from [head] and no node dangling past [tail]. Variants
      layer their descriptor-state checks on top. *)
  let check_list_invariants ~head ~tail =
    let head = A.get head in
    let tail = A.get tail in
    let rec reaches node =
      if node == tail then true
      else match A.get node.next with None -> false | Some n -> reaches n
    in
    if not (reaches head) then Error "tail not reachable from head"
    else if A.get tail.next <> None then Error "dangling node after tail"
    else Ok ()
end
