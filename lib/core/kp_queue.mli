(** The Kogan-Petrank wait-free MPMC queue (PPoPP 2011) — this
    repository's core contribution.

    A linearizable FIFO queue supporting any number of concurrent
    enqueuers and dequeuers, in which {e every} operation completes in a
    bounded number of steps regardless of the scheduling of other
    threads (bounded wait-freedom). Built over Michael & Scott's
    lock-free queue plus a phase-based helping scheme: each thread
    publishes an operation descriptor stamped with a monotonically
    growing phase, and threads help all pending operations with phase ≤
    their own before returning.

    Construction-time policies select the paper's §3.3 optimizations;
    {!tuning} enables the further enhancements the paper sketches.

    Thread identity: every participating thread must own a distinct
    [tid] in [0, num_threads) for the duration of its operations (use
    [Wfq_registry] for dynamic thread populations). All operations are
    safe to call concurrently from any number of domains. *)

type help_policy =
  | Help_all  (** base algorithm: help every pending operation with a
                  smaller-or-equal phase (paper L36-47) *)
  | Help_one_cyclic
      (** optimization 1: help at most one other pending operation per
          call, choosing candidates cyclically *)
  | Help_chunk of int
      (** generalization of optimization 1 (§3.3): traverse a cyclic
          chunk of [k] candidates per operation. [Help_chunk 1] ≈
          {!Help_one_cyclic}; larger chunks approach {!Help_all}.
          Wait-freedom is preserved for any [k >= 1]. *)

type phase_policy =
  | Phase_scan  (** base algorithm: scan the state array ([maxPhase]) *)
  | Phase_counter
      (** optimization 2: shared counter bumped by a result-ignored CAS
          (paper footnote 3); duplicate phases are harmless *)

(** The further §3.3 enhancements, off by default. *)
type tuning = {
  gc_friendly : bool;
      (** reset the thread's descriptor to a node-free dummy before
          returning, so a dequeued node (and its value) cannot be kept
          live by a stale descriptor *)
  validate_before_cas : bool;
      (** skip the descriptor-completion CAS (and its allocation) when
          the pending flag is observed already off *)
}

val default_tuning : tuning

type metrics
(** Instrumentation handle ({!Wfq_obsv}): help-event and
    descriptor-CAS-failure counters, a phase-lag histogram, and the
    lost-Phase_counter-bump counter. Writes are per-tid single-writer
    plain cells only — an instrumented queue performs no extra
    shared-cell (atomic) traffic, so its DPOR traces are identical to an
    uninstrumented one's. *)

val metrics : Wfq_obsv.Metrics.t -> prefix:string -> slots:int -> metrics
(** Create the handle and register its metrics under
    [prefix ^ ".help_events"/".phase_lag"/".desc_cas_failures"/
    ".phase_cas_lost"]. [slots] must be the queue's [num_threads]. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string

  val create : num_threads:int -> unit -> 'a t
  (** The paper's base configuration: [Help_all] + [Phase_scan], no
      tuning. [num_threads] may be a non-strict upper bound on the
      number of participating threads. *)

  val create_with :
    ?tuning:tuning ->
    ?pool:bool ->
    ?pool_segment:int ->
    ?pool_quarantine:bool ->
    ?obsv:metrics ->
    help:help_policy ->
    phase:phase_policy ->
    num_threads:int ->
    unit ->
    'a t
  (** Full control over the §3.3 policy space. Raises [Invalid_argument]
      for [num_threads <= 0], a non-positive chunk size, or a
      non-positive [pool_segment].

      [pool] (default [false]) recycles list nodes {e and} operation
      descriptors through per-domain {!Wfq_primitives.Segment_pool}s —
      the §3.3 gc-friendly reset generalized to full reuse — cutting
      steady-state allocation to the payload boxes. Claim-CAS safety
      comes from the epoch tag in each node's [deq_tid]; pointer-CAS
      safety from the pool's quarantine. [pool_quarantine:false]
      disables the quarantine (and with it descriptor recycling, which
      is only sound under quarantine), leaving the epoch tag as the sole
      defense — meant exclusively for model-checking the tag in
      isolation, never for production use. [pool_segment] sets the
      carve-batch size (default
      {!Wfq_primitives.Segment_pool.Make.default_segment_size}).

      [obsv] (default: none) attaches an instrumentation handle built
      with {!metrics}; omitting it compiles every instrumentation site
      down to a no-op match arm. *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Wait-free linearizable FIFO insert, linearized at the successful
      CAS appending the node (paper Definition 1). *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Wait-free linearizable FIFO remove. [None] iff the queue was empty
      at the linearization point (the paper throws [EmptyException]). *)

  (** {2 Batch operations}

      One phase pick and one descriptor publication cover the whole
      batch (docs/BATCHING.md): a batch enqueue pre-links its nodes
      into a chain and appends it with the single linearizing list CAS
      (3 CASes per batch instead of per element, with [tail] fixed in
      one jump); a batch dequeue drives one [want = n] descriptor whose
      per-element claims accumulate values in the descriptor itself, so
      helpers can complete the remaining suffix of a stalled batch.
      Wait-free like the single operations, with the per-operation step
      bound scaled by the batch size. *)

  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  (** Enqueue all elements, list head first. The whole batch linearizes
      at one list CAS: its elements are contiguous in FIFO order, with
      no other operation interleaved among them. [enqueue_batch t []]
      is a no-op. *)

  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list
  (** Dequeue up to [n] elements, in FIFO order. Each element
      linearizes at its own claim CAS (the batch as a whole is {e not}
      atomic — other dequeuers may interleave between elements); a
      result shorter than [n] means the queue was observed empty at the
      final element's linearization point. Raises [Invalid_argument]
      for negative [n]. *)

  (** {2 Quiescent observers}

      Exact only when no operation is in flight; under concurrency they
      are best-effort snapshots (tests and diagnostics). *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val to_list : 'a t -> 'a list

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** Verify the internal invariants that must hold at quiescence:
      [tail] reachable from [head], no dangling node, no pending
      descriptor. *)

  (** {2 White-box probes (tests)} *)

  val phase_of : 'a t -> tid:int -> int
  (** Phase of the thread's latest operation. *)

  val pending_of : 'a t -> tid:int -> bool
  (** Whether the thread's descriptor is still pending. *)

  val holds_node_reference : 'a t -> tid:int -> bool
  (** Whether the thread's descriptor still references a list node;
      always false between operations under [gc_friendly] tuning. *)

  val pool_stats :
    'a t -> ((int * int * int) * (int * int * int) option) option
  (** Pool telemetry at quiescence, [None] for unpooled queues:
      [(reused, fresh, parked)] for the node pool, then the same for the
      descriptor pool when descriptor recycling is active ([None] under
      [pool_quarantine:false]). [parked] counts objects currently
      sitting in free lists or quarantine. *)

  val register_pool_metrics :
    'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Attach the node (and, when active, descriptor) pools' live
      counters and gauges under [prefix ^ ".nodes.*"] / [".descs.*"];
      no-op for unpooled queues. *)

  val register_metrics :
    'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** The uniform {!Queue_intf.RUN_QUEUE} registration: a
      [prefix ^ ".depth"] gauge (polls [length] at snapshot time only)
      plus {!register_pool_metrics}. The [?obsv] handle registers its
      own metrics at construction; together they cover every diagnostic
      the queue produces. *)
end
