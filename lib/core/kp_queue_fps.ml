(** Fast-path/slow-path variant of the Kogan-Petrank queue: lock-free
    speed when uncontended, the paper's wait-free helping as a fallback.

    The PPoPP 2011 algorithm pays the helping tax on {e every} operation:
    publish a descriptor, pick a phase, help peers — even with no
    contention at all. This module applies the fast-path/slow-path
    methodology (Kogan & Petrank, PPoPP 2012; used industrially by wCQ,
    arXiv:2201.02179): run a plain Michael-Scott lock-free operation for
    at most [max_failures] failed attempts, and only on persistent
    interference fall back to the phase-based slow path of {!Kp_queue}.

    Wait-freedom is preserved by two obligations:

    + the fast path is {e bounded}: after [max_failures] failed rounds
      the operation switches to the slow path, whose helping scheme
      completes it in a bounded number of steps (paper §3.2);
    + fast-path operations {e help}: before each operation a thread reads
      the [slow_pending] counter (one atomic load — the only fast-path
      overhead) and, when it is non-zero, runs one cyclic helping round
      to completion. A pending slow-path operation is therefore helped
      after at most [num_threads] operations of any other thread, whether
      that thread is on the fast or the slow path, so fast-path traffic
      cannot starve the slow path.

    Compatibility between the paths (both share {!Kp_internals} nodes):

    - {b enqueue}: both paths append by CAS on [last.next]. Fast-path
      nodes carry [enq_tid = -1], telling [help_finish_enq] there is no
      descriptor to complete — only [tail] to advance. Slow-path nodes
      carry the real tid, exactly as in {!Kp_queue}.
    - {b dequeue}: both paths linearize on the same CAS of the sentinel's
      [deq_tid] field. A fast-path dequeue claims with
      [num_threads + tid] (disjoint from slow-path tids), so
      [help_finish_deq] knows whether there is a descriptor to complete
      before swinging [head]. A fast-path dequeue that swung [head]
      directly (pure Michael-Scott) would race a slow-path dequeue that
      already locked the sentinel and consume the same element twice —
      hence the shared claim protocol, at the cost of one extra CAS per
      dequeue relative to raw MS.

    Cost of an uncontended operation (see test/test_op_profile.ml):
    enqueue = 2 CAS (append + tail), dequeue = 2 CAS (claim + head), vs
    3 and 4 CAS plus descriptor traffic for base {!Kp_queue}. *)

type help_policy = Kp_queue.help_policy =
  | Help_all
  | Help_one_cyclic
  | Help_chunk of int

type phase_policy = Kp_queue.phase_policy = Phase_scan | Phase_counter

type tuning = Kp_queue.tuning = {
  gc_friendly : bool;
  validate_before_cas : bool;
}

let default_tuning = Kp_queue.default_tuning

let default_max_failures = 64

(* Instrumentation handle (Wfq_obsv), same discipline as
   {!Kp_queue.metrics}: per-tid single-writer plain cells, zero extra
   shared-cell traffic, [None] compiles to the uninstrumented arm. The
   always-on fast/slow counters live in ['a t] directly (they predate
   the obsv layer and every probe reads them); this record carries the
   finer-grained path diagnostics. *)
type metrics = {
  m_fast_rounds : Wfq_obsv.Counter.t;
      (* fast-path CAS rounds consumed by *contended* attempts, per
         tid: ops that needed more than one round, plus rounds burned
         before a slow fallback. First-try successes are one round each
         and already counted by [fast_hits], so the uncontended path
         records nothing — total rounds = fast_hits + fast_rounds. *)
  m_claim_handoff : Wfq_obsv.Counter.t;
      (* fast dequeues that lost the sentinel claim and handed off by
         finishing the winner's operation (help_finish_deq) instead *)
  m_batch_size : Wfq_obsv.Histogram.t;
      (* elements per batch operation, recorded once per batch at entry *)
  m_batch_cas : Wfq_obsv.Counter.t;
      (* CASes issued by the owner of a fast-path batch operation
         (link/tail/claim/head, successful or not). Divided by the
         [batch_size] mass this yields the amortized CAS-per-element
         figure (docs/BATCHING.md); slow-path batches surface through
         [slow_entries] as usual. *)
}

let metrics registry ~prefix ~slots =
  let open Wfq_obsv in
  {
    m_fast_rounds =
      Metrics.counter registry ~name:(prefix ^ ".fast_rounds") ~slots;
    m_claim_handoff =
      Metrics.counter registry ~name:(prefix ^ ".claim_handoffs") ~slots;
    m_batch_size =
      Metrics.histogram registry ~name:(prefix ^ ".batch_size") ~slots;
    m_batch_cas =
      Metrics.counter registry ~name:(prefix ^ ".batch_cas") ~slots;
  }

(* Test-only seeded bugs (model-checker calibration): each reinstates a
   known-fatal deviation from the protocol so the test suite can prove
   the checker finds it. Never set in production code. *)
type fault =
  | Stale_helper_caller_phase
      (* help_slot passes the caller's bound down instead of the
         descriptor's own phase — the PR 2 livelock, un-fixed *)
  | Fast_deq_no_claim
      (* fast-path dequeue swings head MS-style without claiming the
         sentinel's deq_tid — races slow dequeues into duplication *)
  | Untagged_pool_claim
      (* pooled-node recycling without the epoch tag: reset restores the
         plain -1 claim word instead of bumping the incarnation, so a
         stalled dequeuer's claim CAS can ABA a recycled node (claim it
         on the strength of a reference captured in its previous life).
         Only meaningful with ~pool:true. *)
  | Batch_partial_publish
      (* fast-path batch enqueue severs the chain after its first node
         before the link CAS, silently dropping the suffix while
         reporting the whole batch enqueued — a conservation violation
         the batch DPOR litmuses must find and shrink. Only fires on
         fast-path batches of >= 2 elements. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  module N = Kp_internals.Make (A)
  open N

  module P = Wfq_primitives.Padded.Make (A)
  module Pool = Wfq_primitives.Segment_pool.Make (A)

  (* Mutable for the same reason as Kp_queue's: pooled records are
     written by their allocator strictly before atomic publication and
     never after, and quarantine keeps displaced records frozen while
     any stale reader is still in an operation. *)
  type 'a op_desc = {
    mutable phase : int;
    mutable pending : bool;
    mutable enqueue : bool;
    mutable node : 'a N.node option;
    (* Batch extension, as in Kp_queue: a batch enqueue's descriptor
       names the pre-linked chain's last node so the tail fix jumps the
       whole batch; a batch dequeue publishes [want] > 0 and
       accumulates claimed values in [taken] ([got_n] caches the
       count), staying pending until the batch is full or the queue
       empties. Single operations keep the defaults. *)
    mutable last_node : 'a N.node option;
    mutable want : int;
    mutable got_n : int;
    mutable taken : 'a list;
    (* Intrusive Segment_pool link + retire stamp (see
       Segment_pool.ops); dead storage while the descriptor is
       published. *)
    mutable pool_next : 'a op_desc;
    mutable pool_stamp : int;
  }

  let fresh_desc () =
    let rec d =
      { phase = -1; pending = false; enqueue = true; node = None;
        last_node = None; want = 0; got_n = 0; taken = [];
        pool_next = d; pool_stamp = 0 }
    in
    d

  let desc_ops =
    {
      Wfq_primitives.Segment_pool.get_next = (fun d -> d.pool_next);
      set_next = (fun d e -> d.pool_next <- e);
      get_stamp = (fun d -> d.pool_stamp);
      set_stamp = (fun d s -> d.pool_stamp <- s);
    }

  type 'a pools = {
    nodes : 'a N.node Pool.t;
    descs : 'a op_desc Pool.t option; (* None without quarantine *)
  }

  type 'a t = {
    head : 'a N.node A.t;
    tail : 'a N.node A.t;
    (* Slow-path descriptor slots; padded like Kp_queue's. *)
    state : 'a op_desc P.t array;
    (* Number of threads currently executing a slow-path operation.
       Fast-path operations read it once per operation and help only
       when it is non-zero, keeping the uncontended hot path free of
       helping traffic. *)
    slow_pending : int A.t;
    phase_counter : int A.t;
    help_policy : help_policy;
    phase_policy : phase_policy;
    tuning : tuning;
    max_failures : int;
    fault : fault option; (* test-only seeded bug, None in production *)
    help_cursor : int array;
    num_threads : int;
    pools : 'a pools option;
    idle_desc : 'a op_desc;
    (* Single-writer per-tid statistics (exact at quiescence); always on
       — the probes below and debug_dump read them — and padded, unlike
       the plain int arrays they replace, which false-shared adjacent
       tids' cells. *)
    fast_hits : Wfq_obsv.Counter.t;
    slow_entries : Wfq_obsv.Counter.t;
    obsv : metrics option;
  }

  let name = "kp-fps"

  let create_with ?(tuning = default_tuning)
      ?(max_failures = default_max_failures) ?fault ?(pool = false)
      ?pool_segment ?(pool_quarantine = true) ?obsv ~help ~phase
      ~num_threads () =
    if num_threads <= 0 then invalid_arg "Kp_queue_fps.create: num_threads";
    if max_failures < 0 then
      invalid_arg "Kp_queue_fps.create: max_failures must be >= 0";
    (match help with
    | Help_chunk k when k <= 0 ->
        invalid_arg "Kp_queue_fps.create: chunk size must be positive"
    | Help_all | Help_one_cyclic | Help_chunk _ -> ());
    (match pool_segment with
    | Some k when k <= 0 ->
        invalid_arg "Kp_queue_fps.create: pool_segment must be positive"
    | _ -> ());
    let sentinel = make_sentinel () in
    let idle = fresh_desc () in
    let pools =
      if not pool then None
      else begin
        let clock = Pool.Clock.create ~num_threads in
        let node_reset =
          (* N.recycle, or the tag-dropping variant under the seeded
             Untagged_pool_claim fault. *)
          if fault = Some Untagged_pool_claim then N.recycle_untagged
          else N.recycle
        in
        let nodes =
          Pool.create ?segment_size:pool_segment
            ~quarantine:pool_quarantine ~clock ~num_threads ~ops:N.pool_ops
            ~fresh:make_sentinel ~reset:node_reset ()
        in
        let descs =
          if pool_quarantine then
            Some
              (Pool.create ?segment_size:pool_segment ~quarantine:true
                 ~clock ~num_threads ~ops:desc_ops ~fresh:fresh_desc
                 ~reset:(fun _ -> ()) ())
          else None
        in
        Some { nodes; descs }
      end
    in
    {
      head = A.make sentinel;
      tail = A.make sentinel;
      state = Array.init num_threads (fun _ -> P.make idle);
      slow_pending = A.make 0;
      phase_counter = A.make (-1);
      help_policy = help;
      phase_policy = phase;
      tuning;
      max_failures;
      fault;
      help_cursor = Array.make num_threads 0;
      num_threads;
      pools;
      idle_desc = idle;
      fast_hits = Wfq_obsv.Counter.create ~slots:num_threads ();
      slow_entries = Wfq_obsv.Counter.create ~slots:num_threads ();
      obsv;
    }

  (* The default slow path uses the paper's fastest configuration (both
     §3.3 optimizations); it is entered rarely, so the difference mostly
     matters under heavy contention, where opt (1+2) wins anyway. *)
  let create ~num_threads () =
    create_with ~help:Help_one_cyclic ~phase:Phase_counter ~num_threads ()

  let max_phase t =
    Array.fold_left
      (fun acc slot -> max acc (P.get slot).phase)
      (-1) t.state

  let next_phase t =
    match t.phase_policy with
    | Phase_scan -> max_phase t + 1
    | Phase_counter ->
        let cur = A.get t.phase_counter in
        ignore (A.compare_and_set t.phase_counter cur (cur + 1));
        cur + 1

  let is_still_pending t tid phase =
    let desc = P.get t.state.(tid) in
    desc.pending && desc.phase <= phase

  (* Optional-instrumentation writes, factored so the operation bodies
     stay readable. All single-writer tid-local stores. *)
  let note_fast_rounds t ~tid n =
    match t.obsv with
    | Some m -> Wfq_obsv.Counter.add m.m_fast_rounds ~slot:tid n
    | None -> ()

  let note_claim_handoff t ~tid =
    match t.obsv with
    | Some m -> Wfq_obsv.Counter.incr m.m_claim_handoff ~slot:tid
    | None -> ()

  let note_batch_size t ~tid k =
    match t.obsv with
    | Some m -> Wfq_obsv.Histogram.record m.m_batch_size ~slot:tid k
    | None -> ()

  let note_batch_cas t ~tid n =
    match t.obsv with
    | Some m -> if n > 0 then Wfq_obsv.Counter.add m.m_batch_cas ~slot:tid n
    | None -> ()

  (* ------------------------------------------------------------------ *)
  (* Pool plumbing — identical scheme to Kp_queue's: [self] is the       *)
  (* executing thread, all alloc/release traffic goes through its own    *)
  (* single-owner pool slot.                                             *)
  (* ------------------------------------------------------------------ *)

  let op_enter t ~tid =
    match t.pools with Some p -> Pool.enter p.nodes ~tid | None -> ()

  let op_exit t ~tid =
    match t.pools with Some p -> Pool.exit p.nodes ~tid | None -> ()

  let alloc_node t ~self ~enq_tid value =
    match t.pools with
    | Some p ->
        let n = Pool.alloc p.nodes ~tid:self in
        n.N.value <- Some value;
        n.N.enq_tid <- enq_tid;
        n
    | None -> make_node ~enq_tid value

  (* Unique head-swing winner only (both paths). *)
  let release_node t ~self n =
    match t.pools with
    | Some p -> Pool.release p.nodes ~tid:self n
    | None -> ()

  (* Full-arity allocator for the batch protocol; [mk_desc] is the
     single-operation shorthand. *)
  let mk_desc_b t ~self ~phase ~pending ~enqueue ~last ~want ~got ~taken
      ~node =
    match t.pools with
    | Some { descs = Some dp; _ } ->
        let d = Pool.alloc dp ~tid:self in
        d.phase <- phase;
        d.pending <- pending;
        d.enqueue <- enqueue;
        d.node <- node;
        d.last_node <- last;
        d.want <- want;
        d.got_n <- got;
        d.taken <- taken;
        d
    | _ ->
        let rec d =
          { phase; pending; enqueue; node; last_node = last; want;
            got_n = got; taken; pool_next = d; pool_stamp = 0 }
        in
        d

  let mk_desc t ~self ~phase ~pending ~enqueue ~node =
    mk_desc_b t ~self ~phase ~pending ~enqueue ~last:None ~want:0 ~got:0
      ~taken:[] ~node

  let drop_desc t ~self d =
    match t.pools with
    | Some { descs = Some dp; _ } -> Pool.release dp ~tid:self d
    | _ -> ()

  let retire_desc t ~self d =
    if d != t.idle_desc then
      match t.pools with
      | Some { descs = Some dp; _ } -> Pool.release dp ~tid:self d
      | _ -> ()

  let publish t ~tid d =
    match t.pools with
    | Some { descs = Some _; _ } ->
        retire_desc t ~self:tid (P.exchange t.state.(tid) d)
    | _ -> P.set t.state.(tid) d

  (* ------------------------------------------------------------------ *)
  (* Finishing helpers, shared by both paths                            *)
  (* ------------------------------------------------------------------ *)

  (* Kp_queue.help_finish_enq, extended with the fast-path case: a node
     with [enq_tid = -1] was appended by a bounded Michael-Scott attempt
     and has no descriptor — the only thing left to do is advance [tail]
     (the appender itself may have been preempted before its tail CAS). *)
  let help_finish_enq t ~self =
    let last = A.get t.tail in
    let next_o = A.get last.next in
    match next_o with
    | None -> ()
    | Some next ->
        let tid = next.enq_tid in
        if tid < 0 then ignore (A.compare_and_set t.tail last next)
        else begin
          assert (tid < t.num_threads);
          let cur_desc = P.get t.state.(tid) in
          (* Batch jump target from the {e fresh} descriptor read (the
             one validated against [next_o]) — a stale [cur_desc] only
             loses its completion CAS, but a stale [last_node] would
             teleport [tail]. See Kp_queue.help_finish_enq. *)
          let slot_desc = P.get t.state.(tid) in
          if last == A.get t.tail && slot_desc.node == next_o then begin
            let target =
              match slot_desc.last_node with Some l -> l | None -> next
            in
            if (not t.tuning.validate_before_cas) || cur_desc.pending
            then begin
              let new_desc =
                mk_desc_b t ~self ~phase:cur_desc.phase ~pending:false
                  ~enqueue:true ~last:cur_desc.last_node ~want:0 ~got:0
                  ~taken:[] ~node:next_o
              in
              if P.compare_and_set t.state.(tid) cur_desc new_desc then
                retire_desc t ~self cur_desc
              else drop_desc t ~self new_desc
            end;
            ignore (A.compare_and_set t.tail last target)
          end
        end

  (* Kp_queue.help_finish_deq, extended with the fast-path case: a
     sentinel claimed with [deq_tid >= num_threads] belongs to a
     fast-path dequeue — no descriptor to complete, only [head] to
     swing. *)
  let help_finish_deq t ~self =
    let first = A.get t.head in
    let next = A.get first.next in
    let tid = N.claimed_tid first in
    if tid >= t.num_threads then begin
      (* Fast-path claim. *)
      match next with
      | Some next_node when first == A.get t.head ->
          if A.compare_and_set t.head first next_node then
            release_node t ~self first
      | Some _ | None -> ()
    end
    else if tid <> -1 then begin
      let cur_desc = P.get t.state.(tid) in
      match next with
      | Some next_node when first == A.get t.head ->
          (if cur_desc.want > 0 then begin
             (* Batch-dequeue element transition, exactly as in
                Kp_queue.help_finish_deq: append the value by replacing
                the record, guarded on it still recording [first] so a
                stale helper's CAS fails (exactly-once). *)
             let points_to_first =
               match cur_desc.node with
               | Some n -> n == first
               | None -> false
             in
             if cur_desc.pending && points_to_first then begin
               let v =
                 match next_node.value with
                 | Some v -> v
                 | None -> assert false
               in
               let got = cur_desc.got_n + 1 in
               let new_desc =
                 mk_desc_b t ~self ~phase:cur_desc.phase
                   ~pending:(got < cur_desc.want) ~enqueue:false
                   ~last:None ~want:cur_desc.want ~got
                   ~taken:(v :: cur_desc.taken) ~node:None
               in
               if P.compare_and_set t.state.(tid) cur_desc new_desc then
                 retire_desc t ~self cur_desc
               else drop_desc t ~self new_desc
             end
           end
           else if (not t.tuning.validate_before_cas) || cur_desc.pending
           then begin
             let new_desc =
               mk_desc t ~self ~phase:cur_desc.phase ~pending:false
                 ~enqueue:false ~node:cur_desc.node
             in
             if P.compare_and_set t.state.(tid) cur_desc new_desc then
               retire_desc t ~self cur_desc
             else drop_desc t ~self new_desc
           end);
          if A.compare_and_set t.head first next_node then
            release_node t ~self first
      | Some _ | None -> ()
    end

  (* ------------------------------------------------------------------ *)
  (* Slow path: Kp_queue's phase-based helping, verbatim modulo the      *)
  (* extended finishing helpers above                                    *)
  (* ------------------------------------------------------------------ *)

  let rec help_enq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let last = A.get t.tail in
      let next = A.get last.next in
      if last == A.get t.tail then
        match next with
        | None ->
            if is_still_pending t tid phase then begin
              let node = (P.get t.state.(tid)).node in
              if A.compare_and_set last.next None node then
                help_finish_enq t ~self
              else help_enq t ~self tid phase
            end
            else help_enq t ~self tid phase
        | Some _ ->
            help_finish_enq t ~self;
            help_enq t ~self tid phase
      else help_enq t ~self tid phase
    end

  let rec help_deq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let first = A.get t.head in
      (* Claim word captured together with the head reference — the
         epoch half is what makes the later claim CAS recycle-safe (see
         Kp_internals.try_claim). *)
      let claim0 = A.get first.deq_tid in
      let last = A.get t.tail in
      let next = A.get first.next in
      if first == A.get t.head then
        if first == last then begin
          match next with
          | None ->
              let cur_desc = P.get t.state.(tid) in
              if last == A.get t.tail && is_still_pending t tid phase
              then begin
                let new_desc =
                  mk_desc t ~self ~phase:cur_desc.phase ~pending:false
                    ~enqueue:false ~node:None
                in
                if P.compare_and_set t.state.(tid) cur_desc new_desc then
                  retire_desc t ~self cur_desc
                else drop_desc t ~self new_desc
              end;
              help_deq t ~self tid phase
          | Some _ ->
              help_finish_enq t ~self;
              help_deq t ~self tid phase
        end
        else begin
          let cur_desc = P.get t.state.(tid) in
          let node = cur_desc.node in
          if is_still_pending t tid phase then begin
            let points_to_first =
              match node with Some n -> n == first | None -> false
            in
            if first == A.get t.head && not points_to_first then begin
              let new_desc =
                mk_desc t ~self ~phase:cur_desc.phase ~pending:true
                  ~enqueue:false ~node:(Some first)
              in
              if not (P.compare_and_set t.state.(tid) cur_desc new_desc)
              then begin
                drop_desc t ~self new_desc;
                help_deq t ~self tid phase
              end
              else begin
                retire_desc t ~self cur_desc;
                ignore (N.try_claim first ~observed:claim0 ~tid);
                help_finish_deq t ~self;
                help_deq t ~self tid phase
              end
            end
            else begin
              ignore (N.try_claim first ~observed:claim0 ~tid);
              help_finish_deq t ~self;
              help_deq t ~self tid phase
            end
          end
        end
      else help_deq t ~self tid phase
    end

  (* Batch dequeue driver (see Kp_queue.help_batch_deq): the help_deq
     claim loop iterated until the descriptor has [want] values or the
     queue empties; the per-element finish transition lives in
     [help_finish_deq]. Batch-specific guard: a sentinel already
     claimed by [tid] is a claim of this batch whose head swing has not
     landed — finish it before seeking, or its successor's value would
     be recorded twice. Fast-path claims ([num_threads + tid]) never
     collide with this check: slow batch claims use the plain tid. *)
  let rec help_batch_deq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let first = A.get t.head in
      let claim0 = A.get first.deq_tid in
      let last = A.get t.tail in
      let next = A.get first.next in
      if first == A.get t.head then
        if N.claimed_tid first = tid then begin
          help_finish_deq t ~self;
          help_batch_deq t ~self tid phase
        end
        else if first == last then begin
          match next with
          | None ->
              (* Empty: complete the batch with its partial result. *)
              let cur_desc = P.get t.state.(tid) in
              if last == A.get t.tail && is_still_pending t tid phase
              then begin
                let new_desc =
                  mk_desc_b t ~self ~phase:cur_desc.phase ~pending:false
                    ~enqueue:false ~last:None ~want:cur_desc.want
                    ~got:cur_desc.got_n ~taken:cur_desc.taken ~node:None
                in
                if P.compare_and_set t.state.(tid) cur_desc new_desc then
                  retire_desc t ~self cur_desc
                else drop_desc t ~self new_desc
              end;
              help_batch_deq t ~self tid phase
          | Some _ ->
              help_finish_enq t ~self;
              help_batch_deq t ~self tid phase
        end
        else begin
          let cur_desc = P.get t.state.(tid) in
          let node = cur_desc.node in
          if is_still_pending t tid phase then begin
            let points_to_first =
              match node with Some n -> n == first | None -> false
            in
            if first == A.get t.head && not points_to_first then begin
              let new_desc =
                mk_desc_b t ~self ~phase:cur_desc.phase ~pending:true
                  ~enqueue:false ~last:None ~want:cur_desc.want
                  ~got:cur_desc.got_n ~taken:cur_desc.taken
                  ~node:(Some first)
              in
              if not (P.compare_and_set t.state.(tid) cur_desc new_desc)
              then begin
                drop_desc t ~self new_desc;
                help_batch_deq t ~self tid phase
              end
              else begin
                retire_desc t ~self cur_desc;
                ignore (N.try_claim first ~observed:claim0 ~tid);
                help_finish_deq t ~self;
                help_batch_deq t ~self tid phase
              end
            end
            else begin
              ignore (N.try_claim first ~observed:claim0 ~tid);
              help_finish_deq t ~self;
              help_batch_deq t ~self tid phase
            end
          end
        end
      else help_batch_deq t ~self tid phase
    end

  (* The phase passed DOWN is the descriptor's own ([desc.phase]), as in
     the paper's help() (Fig. 2) — not the caller's bound. This is load-
     bearing here: a tid's phases strictly increase, so a helper that
     read the descriptor before the operation completed fails its
     [is_still_pending] re-check as soon as the tid publishes its next
     operation. Helping at the caller's (larger) bound would let a stale
     helper latch onto that next operation — possibly of the other kind,
     e.g. rewriting a pending enqueue descriptor through the dequeue
     helper, or re-appending a consumed node. The fast path's
     [maybe_help] helps at bound [max_int], which is only safe because
     of this. *)
  let help_slot t ~self i phase =
    let desc = P.get t.state.(i) in
    if desc.pending && desc.phase <= phase then begin
      let bound =
        match t.fault with
        | Some Stale_helper_caller_phase -> phase (* seeded bug *)
        | _ -> desc.phase
      in
      if desc.enqueue then help_enq t ~self i bound
      else if desc.want > 0 then help_batch_deq t ~self i bound
      else help_deq t ~self i bound
    end

  let run_help t ~tid ~phase =
    match t.help_policy with
    | Help_all ->
        for i = 0 to Array.length t.state - 1 do
          help_slot t ~self:tid i phase
        done
    | Help_one_cyclic ->
        let c = t.help_cursor.(tid) in
        t.help_cursor.(tid) <- (c + 1) mod t.num_threads;
        if c <> tid then help_slot t ~self:tid c phase;
        help_slot t ~self:tid tid phase
    | Help_chunk k ->
        let c = t.help_cursor.(tid) in
        t.help_cursor.(tid) <- (c + k) mod t.num_threads;
        for j = 0 to min k t.num_threads - 1 do
          let i = (c + j) mod t.num_threads in
          if i <> tid then help_slot t ~self:tid i phase
        done;
        help_slot t ~self:tid tid phase

  (* The fast path's helping duty: one atomic load per operation; only
     when some thread is on the slow path, run one cyclic helping round
     (to completion — help_enq/help_deq return only once the helped
     operation is no longer pending). The cursor advances every call, so
     a given pending operation is reached after at most [num_threads]
     operations of this thread: slow-path progress is bounded even if
     every other thread stays on the fast path forever. *)
  let maybe_help t ~tid =
    if A.get t.slow_pending > 0 then begin
      let c = t.help_cursor.(tid) in
      t.help_cursor.(tid) <- (c + 1) mod t.num_threads;
      help_slot t ~self:tid c max_int
    end

  (* ------------------------------------------------------------------ *)
  (* Slow-path operations (entered after max_failures fast rounds)      *)
  (* ------------------------------------------------------------------ *)

  (* [node] was already allocated by the fast path and never published
     (every fast append CAS on it failed), so the slow path adopts it —
     rewriting [enq_tid] from the fast-path marker to the real tid is
     safe pre-publication — instead of allocating a second node. *)
  let slow_enqueue t ~tid node =
    Wfq_obsv.Counter.incr t.slow_entries ~slot:tid;
    (* Raise the flag before publishing so that any fast-path operation
       starting after our descriptor is visible also sees the flag. *)
    ignore (A.fetch_and_add t.slow_pending 1);
    let phase = next_phase t in
    node.N.enq_tid <- tid;
    publish t ~tid
      (mk_desc t ~self:tid ~phase ~pending:true ~enqueue:true
         ~node:(Some node));
    run_help t ~tid ~phase;
    help_finish_enq t ~self:tid;
    ignore (A.fetch_and_add t.slow_pending (-1));
    if t.tuning.gc_friendly then
      publish t ~tid
        (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:true ~node:None)

  let slow_dequeue t ~tid =
    Wfq_obsv.Counter.incr t.slow_entries ~slot:tid;
    ignore (A.fetch_and_add t.slow_pending 1);
    let phase = next_phase t in
    publish t ~tid
      (mk_desc t ~self:tid ~phase ~pending:true ~enqueue:false ~node:None);
    run_help t ~tid ~phase;
    help_finish_deq t ~self:tid;
    ignore (A.fetch_and_add t.slow_pending (-1));
    let result =
      match (P.get t.state.(tid)).node with
      | None -> None
      | Some node -> (
          (* [node] may already be pool-released by the head winner;
             quarantine keeps it intact until our op_exit. *)
          match A.get node.next with
          | Some next ->
              assert (next.value <> None);
              next.value
          | None -> assert false)
    in
    if t.tuning.gc_friendly then
      publish t ~tid
        (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:false ~node:None);
    result

  (* Slow-path batch enqueue: the fast path pre-linked the chain and
     failed to publish any of it, so the descriptor adopts it whole.
     Only the chain's first node gets the real tid — it is the only one
     that ever becomes [tail.next] before the jump (help_finish_enq
     moves [tail] straight to [last]); interior nodes keep the -1
     marker harmlessly. *)
  let slow_enqueue_batch t ~tid chain_first chain_last =
    Wfq_obsv.Counter.incr t.slow_entries ~slot:tid;
    ignore (A.fetch_and_add t.slow_pending 1);
    let phase = next_phase t in
    chain_first.N.enq_tid <- tid;
    publish t ~tid
      (mk_desc_b t ~self:tid ~phase ~pending:true ~enqueue:true
         ~last:(Some chain_last) ~want:0 ~got:0 ~taken:[]
         ~node:(Some chain_first));
    run_help t ~tid ~phase;
    help_finish_enq t ~self:tid;
    ignore (A.fetch_and_add t.slow_pending (-1));
    if t.tuning.gc_friendly then
      publish t ~tid
        (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:true ~node:None)

  (* Slow-path batch dequeue for the remaining suffix of a batch whose
     fast rounds ran out: one descriptor with [want] drives
     [help_batch_deq] (owner and helpers alike). Returns the collected
     values in FIFO order, shorter than [want] iff the queue emptied. *)
  let slow_dequeue_batch t ~tid ~want =
    Wfq_obsv.Counter.incr t.slow_entries ~slot:tid;
    ignore (A.fetch_and_add t.slow_pending 1);
    let phase = next_phase t in
    publish t ~tid
      (mk_desc_b t ~self:tid ~phase ~pending:true ~enqueue:false
         ~last:None ~want ~got:0 ~taken:[] ~node:None);
    run_help t ~tid ~phase;
    help_finish_deq t ~self:tid;
    ignore (A.fetch_and_add t.slow_pending (-1));
    let taken = List.rev (P.get t.state.(tid)).taken in
    if t.tuning.gc_friendly then
      publish t ~tid
        (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:false ~node:None);
    taken

  (* ------------------------------------------------------------------ *)
  (* Public operations: bounded Michael-Scott rounds, then fall back    *)
  (* ------------------------------------------------------------------ *)

  (* The fast-path retry loops live at functor level with every datum
     passed as an argument. Written as nested [let rec attempt] closures
     they allocate a closure environment per operation — measured at ~9
     words/pair on the pairs workload, which dominated the pooled fast
     path's residual allocation (see EXPERIMENTS.md, fps words/op
     decomposition). Functor-level recursion allocates nothing. *)
  let rec fast_enqueue t ~tid node failures =
    if failures >= t.max_failures then begin
      note_fast_rounds t ~tid failures;
      slow_enqueue t ~tid node
    end
    else
      let last = A.get t.tail in
      let next = A.get last.next in
      if last == A.get t.tail then
        match next with
        | None ->
            if A.compare_and_set last.next None (Some node) then begin
              (* Linearized; fix tail lazily, MS-style (failure means
                 someone helped us). *)
              ignore (A.compare_and_set t.tail last node);
              if failures > 0 then note_fast_rounds t ~tid (failures + 1);
              Wfq_obsv.Counter.incr t.fast_hits ~slot:tid
            end
            else fast_enqueue t ~tid node (failures + 1)
        | Some _ ->
            (* Tail lagging behind a fast or slow append: finish it
               (either kind) and retry. *)
            help_finish_enq t ~self:tid;
            fast_enqueue t ~tid node (failures + 1)
      else fast_enqueue t ~tid node (failures + 1)

  let enqueue t ~tid value =
    op_enter t ~tid;
    maybe_help t ~tid;
    (* Fast-path nodes are marked [enq_tid = -1]: were a fast node to
       carry a real tid, a slow-path helper would wait forever for a
       descriptor that was never published (see help_finish_enq). *)
    let node = alloc_node t ~self:tid ~enq_tid:(-1) value in
    fast_enqueue t ~tid node 0;
    op_exit t ~tid

  let rec fast_dequeue t ~tid failures =
    if failures >= t.max_failures then begin
      note_fast_rounds t ~tid failures;
      slow_dequeue t ~tid
    end
    else
        let first = A.get t.head in
        (* Claim word captured with the head reference (epoch ABA
           defense; see Kp_internals.try_claim). *)
        let claim0 = A.get first.deq_tid in
        let last = A.get t.tail in
        let next = A.get first.next in
        if first == A.get t.head then
          if first == last then
            match next with
            | None ->
                (* Observed empty — linearizable and free of descriptor
                   traffic on both paths. *)
                if failures > 0 then note_fast_rounds t ~tid (failures + 1);
                Wfq_obsv.Counter.incr t.fast_hits ~slot:tid;
                None
            | Some _ ->
                help_finish_enq t ~self:tid;
                fast_dequeue t ~tid (failures + 1)
          else
            match next with
            | None -> fast_dequeue t ~tid (failures + 1) (* transient view *)
            | Some n ->
                if t.fault = Some Fast_deq_no_claim then
                  (* Seeded bug: pure MS dequeue, no deq_tid claim — can
                     deliver an element a slow dequeue already owns. *)
                  if A.compare_and_set t.head first n then begin
                    Wfq_obsv.Counter.incr t.fast_hits ~slot:tid;
                    n.value
                  end
                  else fast_dequeue t ~tid (failures + 1)
                else if
                  (* Claim the sentinel with the fast-path marker; the
                     successful CAS is the linearization point — shared
                     with slow-path dequeues, which claim with their
                     tid. *)
                  N.try_claim first ~observed:claim0
                    ~tid:(t.num_threads + tid)
                then begin
                  let v = n.value in
                  if A.compare_and_set t.head first n then
                    release_node t ~self:tid first;
                  if failures > 0 then note_fast_rounds t ~tid (failures + 1);
                  Wfq_obsv.Counter.incr t.fast_hits ~slot:tid;
                  v
                end
                else begin
                  (* Someone else's dequeue is mid-flight on this
                     sentinel; finish it and retry. *)
                  note_claim_handoff t ~tid;
                  help_finish_deq t ~self:tid;
                  fast_dequeue t ~tid (failures + 1)
                end
        else fast_dequeue t ~tid (failures + 1)

  let dequeue t ~tid =
    op_enter t ~tid;
    maybe_help t ~tid;
    let result = fast_dequeue t ~tid 0 in
    op_exit t ~tid;
    result

  (* ------------------------------------------------------------------ *)
  (* Batch operations                                                   *)
  (* ------------------------------------------------------------------ *)

  (* Bounded tail catch-up after a failed batch jump: helpers advanced
     [tail] into the chain one fast-node step at a time, so walk it the
     rest of the way (at most [k] steps — stops early once [tail.next]
     is [None] or someone else finishes the job). Pure helping; every
     CAS target is validated like MS tail fixing. *)
  let rec catch_up_tail t k =
    if k > 0 then begin
      let l = A.get t.tail in
      match A.get l.next with
      | None -> ()
      | Some nx ->
          ignore (A.compare_and_set t.tail l nx);
          catch_up_tail t (k - 1)
    end

  (* Fast-path batch enqueue: pre-link the chain (plain stores on nodes
     nobody can reach), then a single MS append CAS linearizes all k
     elements and one tail CAS (jump to the chain's last node) fixes
     the hint — 2 CASes per uncontended batch vs 2k for per-item
     enqueues. On budget exhaustion the slow path adopts the whole
     chain under one descriptor. *)
  let enqueue_batch t ~tid values =
    match values with
    | [] -> ()
    | [ v ] -> enqueue t ~tid v
    | v0 :: rest ->
        op_enter t ~tid;
        let k = List.length values in
        note_batch_size t ~tid k;
        maybe_help t ~tid;
        let chain_first = alloc_node t ~self:tid ~enq_tid:(-1) v0 in
        let chain_last =
          List.fold_left
            (fun prev v ->
              let n = alloc_node t ~self:tid ~enq_tid:(-1) v in
              A.set prev.N.next (Some n);
              n)
            chain_first rest
        in
        (* Seeded Batch_partial_publish: sever the chain after its
           first node — the link CAS below then publishes one element
           while the caller believes all [k] went in. *)
        if t.fault = Some Batch_partial_publish then
          A.set chain_first.N.next None;
        let rec attempt failures cas =
          if failures >= t.max_failures then begin
            note_fast_rounds t ~tid failures;
            note_batch_cas t ~tid cas;
            slow_enqueue_batch t ~tid chain_first chain_last
          end
          else
            let last = A.get t.tail in
            let next = A.get last.next in
            if last == A.get t.tail then
              match next with
              | None ->
                  if A.compare_and_set last.next None (Some chain_first)
                  then begin
                    (* Linearized (all k elements at once). Jump [tail]
                       over the chain; on failure helpers advanced it
                       one node at a time — walk it the rest of the
                       way so the next operation never inherits a
                       multi-node lag. *)
                    if not (A.compare_and_set t.tail last chain_last) then
                      catch_up_tail t k;
                    if failures > 0 then note_fast_rounds t ~tid (failures + 1);
                    note_batch_cas t ~tid (cas + 2);
                    Wfq_obsv.Counter.incr t.fast_hits ~slot:tid
                  end
                  else attempt (failures + 1) (cas + 1)
              | Some _ ->
                  help_finish_enq t ~self:tid;
                  attempt (failures + 1) cas
            else attempt (failures + 1) cas
        in
        attempt 0 0;
        op_exit t ~tid

  (* Fast-path batch dequeue: claim the sentinel once, then jump [head]
     over a whole prefix with a single CAS (docs/BATCHING.md). The
     prefix grab is safe because every delivery — fast or slow,
     per-item or batch — requires claiming the node currently at
     [t.head]: while our claim holds and [head] still points at the
     claimed sentinel, nobody can deliver anything, and next pointers
     of live in-queue nodes are immutable (set once, None -> Some), so
     the walked chain is exactly what the jump publishes. A successful
     jump linearizes every collected element at the jump CAS (the
     skipped nodes are never observable as sentinels); a failed jump
     means a helper already swung [head] one node on our behalf, so
     only the claimed first element is delivered — the per-item path's
     behaviour. Uncontended cost: 2 CASes per prefix vs 2 per element.
     When the shared [max_failures] budget runs out, a single slow-path
     descriptor collects the remaining suffix. *)
  let dequeue_batch t ~tid ~n =
    if n < 0 then invalid_arg "Kp_queue_fps.dequeue_batch: n";
    if n = 0 then []
    else begin
      op_enter t ~tid;
      note_batch_size t ~tid n;
      maybe_help t ~tid;
      let rec go acc got failures cas =
        if got = n then begin
          note_batch_cas t ~tid cas;
          if failures > 0 then note_fast_rounds t ~tid failures;
          List.rev acc
        end
        else if failures >= t.max_failures then begin
          note_fast_rounds t ~tid failures;
          note_batch_cas t ~tid cas;
          List.rev_append acc (slow_dequeue_batch t ~tid ~want:(n - got))
        end
        else
          let first = A.get t.head in
          let claim0 = A.get first.deq_tid in
          let last = A.get t.tail in
          let next = A.get first.next in
          if first == A.get t.head then
            if first == last then
              match next with
              | None ->
                  (* Observed empty: the batch completes short. *)
                  note_batch_cas t ~tid cas;
                  if failures > 0 then note_fast_rounds t ~tid failures;
                  Wfq_obsv.Counter.incr t.fast_hits ~slot:tid;
                  List.rev acc
              | Some _ ->
                  help_finish_enq t ~self:tid;
                  go acc got (failures + 1) cas
            else
              match next with
              | None -> go acc got (failures + 1) cas (* transient view *)
              | Some nx ->
                  if
                    N.try_claim first ~observed:claim0
                      ~tid:(t.num_threads + tid)
                  then begin
                    let v1 =
                      match nx.N.value with
                      | Some v -> v
                      | None -> assert false
                    in

                    (* Walk up to the remaining want along the stable
                       chain, newest first — capped at the observed
                       [last]: jumping [head] past [tail] would strand
                       [tail] on a grabbed (possibly released) node and
                       break the MS head-behind-tail invariant, which
                       enqueuers rely on. [last] was read while the
                       sentinel was [first] (the claim's success proves
                       the view), so it is on the chain at or after
                       [nx]; a lagging cap only shortens the grab. *)
                    let rec walk node vs m =
                      if m = n - got || node == last then (node, vs, m)
                      else
                        match A.get node.N.next with
                        | None -> (node, vs, m)
                        | Some nx2 ->
                            let v =
                              match nx2.N.value with
                              | Some v -> v
                              | None -> assert false
                            in
                            walk nx2 (v :: vs) (m + 1)
                    in
                    let last_node, extra_rev, m = walk nx [] 1 in
                    Wfq_obsv.Counter.incr t.fast_hits ~slot:tid;
                    if A.compare_and_set t.head first last_node then begin
                      (* The skipped nodes [first .. pred last_node] are
                         unreachable from [head] and claimed/covered by
                         us alone — read each [next] before releasing
                         its node. *)
                      let rec release_prefix node =
                        if node != last_node then begin
                          let nxt = A.get node.N.next in
                          release_node t ~self:tid node;
                          match nxt with
                          | Some nxt -> release_prefix nxt
                          | None -> ()
                        end
                      in
                      release_prefix first;
                      go (extra_rev @ (v1 :: acc)) (got + m) failures (cas + 2)
                    end
                    else
                      (* A helper swung [head] one node for us: only the
                         claimed first element was taken. *)
                      go (v1 :: acc) (got + 1) failures (cas + 2)
                  end
                  else begin
                    note_claim_handoff t ~tid;
                    help_finish_deq t ~self:tid;
                    go acc got (failures + 1) (cas + 1)
                  end
          else go acc got (failures + 1) cas
      in
      let result = go [] 0 0 0 in
      op_exit t ~tid;
      result
    end

  (* ------------------------------------------------------------------ *)
  (* Observers (quiescent use)                                          *)
  (* ------------------------------------------------------------------ *)

  let to_list t = N.to_list t.head
  let length t = N.length t.head
  let is_empty t = N.is_empty t.head

  let check_quiescent_invariants t =
    match N.check_list_invariants ~head:t.head ~tail:t.tail with
    | Error _ as e -> e
    | Ok () ->
        let pending_slots =
          Array.to_list t.state
          |> List.filteri (fun _ slot -> (P.get slot).pending)
        in
        if pending_slots <> [] then
          Error
            (Printf.sprintf "%d state slots still pending at quiescence"
               (List.length pending_slots))
        else if A.get t.slow_pending <> 0 then
          Error
            (Printf.sprintf "slow_pending = %d at quiescence"
               (A.get t.slow_pending))
        else Ok ()

  (* ------------------------------------------------------------------ *)
  (* White-box probes (tests)                                           *)
  (* ------------------------------------------------------------------ *)

  let max_failures t = t.max_failures
  let fast_path_hits_of t ~tid = Wfq_obsv.Counter.slot_value t.fast_hits ~slot:tid
  let slow_path_entries_of t ~tid =
    Wfq_obsv.Counter.slot_value t.slow_entries ~slot:tid
  let fast_path_hits t = Wfq_obsv.Counter.total t.fast_hits
  let slow_path_entries t = Wfq_obsv.Counter.total t.slow_entries
  let pending_of t ~tid = (P.get t.state.(tid)).pending
  let phase_of t ~tid = (P.get t.state.(tid)).phase

  let pool_stats t =
    match t.pools with
    | None -> None
    | Some p ->
        let line pool =
          ( Pool.reused pool,
            Pool.allocated_fresh pool,
            Pool.pooled pool + Pool.quarantined pool )
        in
        Some
          ( line p.nodes,
            match p.descs with Some dp -> Some (line dp) | None -> None )

  let debug_dump t =
    let head = A.get t.head and tail = A.get t.tail in
    let node_id (n : 'a node) = Hashtbl.hash n in
    Printf.printf "head=%d (deq_tid=%d) tail=%d tail.next=%s\n"
      (node_id head) (N.claimed_tid head) (node_id tail)
      (match A.get tail.next with
      | None -> "None"
      | Some n ->
          Printf.sprintf "Some %d (enq_tid=%d, deq_tid=%d)" (node_id n)
            n.enq_tid (N.claimed_tid n));
    Printf.printf "head==tail: %b; slow_pending=%d\n" (head == tail)
      (A.get t.slow_pending);
    Array.iteri
      (fun tid slot ->
        let d = P.get slot in
        Printf.printf
          "tid %d: pending=%b enq=%b phase=%d node=%s fast=%d slow=%d\n" tid
          d.pending d.enqueue d.phase
          (match d.node with
          | None -> "None"
          | Some n -> Printf.sprintf "Some %d" (node_id n))
          (Wfq_obsv.Counter.slot_value t.fast_hits ~slot:tid)
          (Wfq_obsv.Counter.slot_value t.slow_entries ~slot:tid))
      t.state;
    let rec walk i n =
      if i < 8 then begin
        Printf.printf "  list[%d]: node %d enq_tid=%d deq_tid=%d%s%s\n" i
          (node_id n) n.enq_tid (N.claimed_tid n)
          (if n == head then " <-head" else "")
          (if n == tail then " <-tail" else "");
        match A.get n.next with None -> () | Some nx -> walk (i + 1) nx
      end
    in
    walk 0 head

  (* Attach the always-on path counters (and, when pooled, the pools'
     counters and gauges) to a metrics registry. The optional [?obsv]
     handle registers itself at construction; this covers the rest. *)
  let register_metrics t registry ~prefix =
    let open Wfq_obsv in
    Metrics.gauge registry ~name:(prefix ^ ".depth") (fun () -> length t);
    Metrics.register registry (prefix ^ ".fast_hits")
      (Metrics.Counter t.fast_hits);
    Metrics.register registry (prefix ^ ".slow_entries")
      (Metrics.Counter t.slow_entries);
    match t.pools with
    | None -> ()
    | Some p ->
        Pool.register_metrics p.nodes registry ~prefix:(prefix ^ ".nodes");
        (match p.descs with
        | Some dp ->
            Pool.register_metrics dp registry ~prefix:(prefix ^ ".descs")
        | None -> ())
end
