(** Bounded-memory wait-free MPMC ring ([ROADMAP] item 1, wCQ recipe).

    A fixed-capacity array of slots replaces the linked list of the KP
    family: no node allocation, no pointer chase on dequeue — the hot
    path touches one cache-resident slot plus a position hint. The
    design is the FAD-claimed-slot ring of SNIPPETS.md
    (bartoszmodelski/ebsl [mpmc_queue.ml]) hardened into a wait-free,
    {e precise} bounded queue:

    - {b Per-slot sequence words.} Each slot carries its absolute
      position in a single atomic cell, so a CAS on the slot both
      installs/removes a value and validates the lap — the ebsl ring's
      separate sequence word and value cell are fused, which is what
      makes helping safe (a stale helper's CAS cannot land on a
      recycled lap: the expected cell value embeds the position, and
      cell records are freshly allocated per transition, so the
      physical-equality CAS never ABAs).
    - {b Bounded CAS retry with rollback.} The fast path is a bounded
      number of slot-CAS rounds ([max_failures], as in
      {!Kp_queue_fps}). The ebsl dequeue rollback (CAS head back after
      an over-eager fetch-and-add) becomes the {e claim rollback} of
      the slow path: a helper that finds its claimed position consumed
      by another operation rolls the descriptor's claim back to
      "unclaimed" — after validating that its own install did {e not}
      land (skipping that validation is the seeded
      {!fault}[ Rollback_skipped]).
    - {b Phase-helping slow path.} After [max_failures] failed rounds
      an operation publishes a KP descriptor (phase from a shared
      fetch-and-add counter, {!Kp_queue_fps}'s doorway) and is driven
      to completion by helpers: claim a position in the descriptor
      (stage 1), install/take via slot CAS (stage 2, the linearization
      point), publish the outcome, then advance the hint. Fast-path
      operations carry {!Kp_queue_fps}'s helping duty (one
      [slow_pending] load per op; one cyclic help round when raised).

    Why not a literal fetch-and-add ticket per operation: a FAD ticket
    irrevocably assigns a slot to the claimant, so a stalled claimant
    blocks the slot, and "enqueue on full / dequeue on empty must
    still return" then forces wCQ's threshold/finalization machinery.
    Validated slot CAS keeps tickets revocable — head/tail are only
    {e hints} (they lag the true counts by at most one) and the slot
    CAS is the single linearization point — so the KP helping
    discipline applies unchanged. FAD survives where it is
    unconditional: the phase doorway and the [slow_pending] flag.
    docs/RING.md walks through the protocol, the claim/rollback state
    machine, and the wait-freedom argument.

    Capacity semantics: [try_enqueue] returns [false] on a full ring
    (linearized at a validated read of a still-occupied slot one lap
    behind); [dequeue] returns [None] on empty (validated read of a
    still-free slot at the head position). [enqueue] raises
    {!Ring_full} — use [try_enqueue] when the producer can shed. *)

exception Ring_full

type fault =
  | Rollback_skipped
      (** Seeded bug for the model checker: the slow-path enqueue
          helper rolls a claimed position back without validating that
          its own install did not land, so helpers re-claim a fresh
          position and install the value again — duplicate elements
          that DPOR's conservation check catches and shrinks. *)

(* Instrumentation (Wfq_obsv): per-tid single-writer cells and two
   plain-field position hints only, so an instrumented ring performs no
   extra shared-cell traffic — atomic-step traces are identical with
   and without it (the Wfq_obsv ground rule, docs/OBSERVABILITY.md). *)
type metrics = {
  m_slow : Wfq_obsv.Counter.t;  (* slow-path entries, per owner tid *)
  m_help : Wfq_obsv.Counter.t;  (* peer-help dispatches, per helper tid *)
  m_fast_retry : Wfq_obsv.Counter.t;
      (* fast-path rounds lost to contention (slot CAS failed or the
         hint was stale) *)
  m_full : Wfq_obsv.Counter.t;  (* enqueues rejected: ring full *)
  m_occupancy : Wfq_obsv.Histogram.t;
      (* approximate ring depth sampled by each successful enqueue from
         the plain position hints — racy by design (see above), exact
         at quiescence *)
  m_batch_size : Wfq_obsv.Histogram.t;  (* elements per batch operation *)
  m_batch_cas : Wfq_obsv.Counter.t;
      (* slot/hint CASes issued by fast-path batch owners, so
         batch_cas / sum(batch_size) is the amortized CAS-per-element
         figure (docs/BATCHING.md) *)
}

let metrics registry ~prefix ~slots =
  let open Wfq_obsv in
  {
    m_slow = Metrics.counter registry ~name:(prefix ^ ".slow_entries") ~slots;
    m_help = Metrics.counter registry ~name:(prefix ^ ".help_events") ~slots;
    m_fast_retry =
      Metrics.counter registry ~name:(prefix ^ ".fast_retries") ~slots;
    m_full = Metrics.counter registry ~name:(prefix ^ ".full_rejections") ~slots;
    m_occupancy =
      Metrics.histogram registry ~name:(prefix ^ ".occupancy") ~slots;
    m_batch_size =
      Metrics.histogram registry ~name:(prefix ^ ".batch_size") ~slots;
    m_batch_cas = Metrics.counter registry ~name:(prefix ^ ".batch_cas") ~slots;
  }

let default_capacity = 1024
let default_max_failures = 64

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  (* Slots and per-thread descriptor cells are cache-line padded: both
     are CASed under contention and adjacent heap words would
     false-share lines between threads (lib/primitives/padded.mli). *)
  module P = Wfq_primitives.Padded.Make (A)

  (* One atomic cell per slot. The [int] is a packed (position, tid)
     word — see [pack] — giving every constructor lap validation and
     the installer/claimant identity in a single CAS-able value. Slot
     [j] walks positions j, j+capacity, j+2*capacity, ... through

       Free p  --enq-->  Full (p, etid)  --deq-->  Free (p + capacity)
                                \--slow deq--> Taken (p, dtid) --/

     Transitions move strictly forward in position order, so a read of
     the cell that happens after a read of a hint naming position [p]
     can only observe states of position [>= p] in this slot (the
     hint's publisher observed — or performed — the transition out of
     lap [p - capacity] on this very cell before publishing the
     hint). *)
  type 'a cell =
    | Free of int  (* awaiting the enqueue of position p *)
    | Full of int * 'a  (* value of position p; installer tid, -1 = fast *)
    | Taken of int * 'a
        (* slow-path dequeue claim: position p consumed in deq tid's
           name; the value rides along so any helper can publish it to
           the claimant's descriptor before freeing the slot *)

  type 'a kind =
    | Kenq of 'a
    | Kdeq
    | Kenq_batch of 'a array
        (* slow-path suffix of a batch enqueue: one descriptor covers
           the whole run; helpers claim and install position-contiguous
           slots one element at a time, progress recorded in [bdone] *)
    | Kdeq_batch of int
        (* slow-path suffix of a batch dequeue asking for [want]
           elements; values accumulate (reversed) in [bgot] *)

  (* Published KP-style operation descriptor. All transitions are CASes
     expecting the exact previously-read record, so outcome publication
     (which replaces the record) makes every stale claim/rollback/
     publish CAS fail benignly, and the full/empty answers serialize
     against concurrent claims through the owner's [state] cell — the
     {!Kp_queue} stage-1 discipline. *)
  type 'a desc = {
    phase : int;
    pending : bool;
    kind : 'a kind;
    target : int;  (* claimed position, -1 = unclaimed *)
    result : 'a option;  (* Kdeq outcome: Some v, or None = empty *)
    accepted : bool;  (* Kenq outcome: false = ring full *)
    bdone : int;
        (* batch progress: elements installed (Kenq_batch) or consumed
           (Kdeq_batch) so far; each element's progress CAS replaces the
           record, so stale claim/rollback CASes fail benignly exactly
           as for single operations *)
    bgot : 'a list;  (* Kdeq_batch values, newest first *)
  }

  type 'a t = {
    capacity : int;
    num_threads : int;
    max_failures : int;
    slots : 'a cell P.t array;
    head : int P.t;  (* next position to dequeue; lags truth by <= 1 *)
    tail : int P.t;  (* next position to enqueue; lags truth by <= 1 *)
    state : 'a desc P.t array;  (* per-thread descriptors *)
    slow_pending : int A.t;  (* raised while any descriptor is pending *)
    phase_counter : int A.t;  (* FAD doorway (KP footnote 3) *)
    help_cursor : int array;  (* per-tid cyclic helping cursor, plain *)
    fault : fault option;
    obsv : metrics option;
    (* Plain racy position hints feeding the occupancy histogram: no
       atomic traffic, exact at quiescence. *)
    mutable head_cache : int;
    mutable tail_cache : int;
  }

  let name = "ring"

  (* (position, tid) packing for the cell word: tid -1 marks a
     fast-path transition (no descriptor to publish). *)
  let pack t pos tid = (pos * (t.num_threads + 1)) + tid + 1
  let pos_of t w = w / (t.num_threads + 1)
  let tid_of t w = (w mod (t.num_threads + 1)) - 1

  let create_with ?(capacity = default_capacity)
      ?(max_failures = default_max_failures) ?fault ?obsv ~num_threads () =
    if num_threads <= 0 then invalid_arg "Ring_queue.create: num_threads";
    if capacity <= 0 then invalid_arg "Ring_queue.create: capacity";
    if max_failures < 0 then invalid_arg "Ring_queue.create: max_failures";
    let idle =
      {
        phase = -1;
        pending = false;
        kind = Kdeq;
        target = -1;
        result = None;
        accepted = false;
        bdone = 0;
        bgot = [];
      }
    in
    {
      capacity;
      num_threads;
      max_failures;
      slots = Array.init capacity (fun j -> P.make (Free j));
      head = P.make 0;
      tail = P.make 0;
      state = Array.init num_threads (fun _ -> P.make idle);
      slow_pending = A.make 0;
      phase_counter = A.make 0;
      help_cursor = Array.make num_threads 0;
      fault;
      obsv;
      head_cache = 0;
      tail_cache = 0;
    }

  let create ~num_threads () = create_with ~num_threads ()
  let capacity t = t.capacity
  let slot t p = t.slots.(p mod t.capacity)
  let next_phase t = A.fetch_and_add t.phase_counter 1

  (* Hint advances are CAS p -> p+1, only ever justified by slot
     evidence that position p's transition already happened, so a hint
     is never ahead of the truth; and because installs/claims validate
     the position against the slot, not the hint, a lagging hint is
     only a progress problem, never a correctness one. *)
  let advance_tail t p = ignore (P.compare_and_set t.tail p (p + 1))
  let advance_head t p = ignore (P.compare_and_set t.head p (p + 1))

  let sample_occupancy t ~tid =
    match t.obsv with
    | None -> ()
    | Some m ->
        let d = t.tail_cache - t.head_cache in
        Wfq_obsv.Histogram.record m.m_occupancy ~slot:tid
          (min (max d 0) t.capacity)

  let count_retry t ~tid =
    match t.obsv with
    | Some m -> Wfq_obsv.Counter.incr m.m_fast_retry ~slot:tid
    | None -> ()

  let count_full t ~tid =
    match t.obsv with
    | Some m -> Wfq_obsv.Counter.incr m.m_full ~slot:tid
    | None -> ()

  let note_batch_size t ~tid k =
    match t.obsv with
    | Some m -> Wfq_obsv.Histogram.record m.m_batch_size ~slot:tid k
    | None -> ()

  let note_batch_cas t ~tid n =
    match t.obsv with
    | Some m -> if n > 0 then Wfq_obsv.Counter.add m.m_batch_cas ~slot:tid n
    | None -> ()

  (* ------------------------------------------------------------------ *)
  (* Finishing in-flight slow operations found in a slot                *)
  (* ------------------------------------------------------------------ *)

  (* [Full (p, etid)] with [etid >= 0] observed anywhere: publish the
     slow enqueuer's outcome {e before} advancing the tail hint (or
     consuming the value). The install evidence stays visible in the
     slot until the dequeue of [p], and every dequeue of [p] runs this
     publication first, so a stale helper of that enqueue can never
     find its claim apparently-dead, roll it back and install a second
     copy — the {!Kp_queue} help_finish_enq ordering. The publication
     CAS's guard re-reads the descriptor: it can only hit the pending
     record that still claims exactly [p] (absolute positions are
     never re-claimed, so a later operation by the same tid can never
     be confused with this one). *)
  let finish_slow_enq t p etid =
    (if etid >= 0 then
       let cur = P.get t.state.(etid) in
       match cur.kind with
       | Kenq _ when cur.pending && cur.target = p ->
           ignore
             (P.compare_and_set t.state.(etid) cur
                { cur with pending = false; accepted = true })
       | Kenq_batch vs when cur.pending && cur.target = p ->
           (* element [bdone] landed at p: record progress and release
              the claim in one record replacement, so the batch's next
              element seeks a fresh position. The batch is complete when
              the last element's install is published. *)
           let done_ = cur.bdone + 1 in
           ignore
             (P.compare_and_set t.state.(etid) cur
                {
                  cur with
                  target = -1;
                  bdone = done_;
                  pending = done_ < Array.length vs;
                  accepted = done_ = Array.length vs;
                })
       | Kenq _ | Kenq_batch _ | Kdeq | Kdeq_batch _ -> ());
    advance_tail t p

  (* [Taken (p, dtid)] observed anywhere: publish the claimant's value,
     then free the slot for the next lap, then advance the head hint —
     publication strictly first, so the slot evidence of the claim
     outlives every descriptor that still awaits the value. *)
  let finish_slow_deq t c s =
    match s with
    | Taken (w, v) ->
        let p = pos_of t w and dtid = tid_of t w in
        (if dtid >= 0 then
           let cur = P.get t.state.(dtid) in
           match cur.kind with
           | Kdeq when cur.pending && cur.target = p ->
               ignore
                 (P.compare_and_set t.state.(dtid) cur
                    { cur with pending = false; result = Some v })
           | Kdeq_batch want when cur.pending && cur.target = p ->
               (* publish element [bdone]'s value into the batch before
                  the slot evidence is freed — same ordering as the
                  single dequeue, per element *)
               let got = cur.bdone + 1 in
               ignore
                 (P.compare_and_set t.state.(dtid) cur
                    {
                      cur with
                      target = -1;
                      bdone = got;
                      bgot = v :: cur.bgot;
                      pending = got < want;
                    })
           | Kdeq | Kdeq_batch _ | Kenq _ | Kenq_batch _ -> ());
        if P.compare_and_set c s (Free (p + t.capacity)) then
          t.head_cache <- p + 1;
        advance_head t p
    | Free _ | Full _ -> ()

  (* ------------------------------------------------------------------ *)
  (* Slow path: phase helping                                           *)
  (* ------------------------------------------------------------------ *)

  let is_still_pending t tid phase =
    let desc = P.get t.state.(tid) in
    desc.pending && desc.phase <= phase

  (* Drive tid's pending enqueue to completion. Two modes, switched by
     the descriptor's claim field.

     Unclaimed ([target = -1]): read the tail hint [t0], then the slot
     of position [t0]. [Free t0] -> claim it in the descriptor (stage
     1). [Full (t0 - capacity)] -> the ring holds exactly [capacity]
     elements at the instant of the slot read (the slot one lap behind
     is still occupied while the hint proves [t0 - 1] was enqueued):
     publish the rejection. Both CASes expect the exact unclaimed
     record read above, so they cannot race a concurrent stage-1 claim
     by another helper of this same operation. Any slot state of
     position [>= t0] is evidence that [t0]'s enqueue already
     happened: advance the stuck hint and retry.

     Claimed ([target = q]): try to install at [q] (stage 2 — the CAS
     expects the exact [Free q] record, so across all helpers of this
     operation at most one install can ever land: the slot leaves
     [Free q] forever the moment any install lands, killing every
     other helper's pending CAS). If the slot shows our own install,
     publish success and advance the tail. If the position went to
     {e another} operation, the claim is dead — roll it back to
     unclaimed and retry. The rollback is safe exactly because a
     landed install of ours would still be visible: install evidence
     is only removed after [finish_slow_enq] has published us done,
     and a published descriptor fails the rollback CAS. (Skipping the
     own-install check before rolling back is the seeded
     [Rollback_skipped] fault.) *)
  let rec help_enq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let cur = P.get t.state.(tid) in
      if cur.pending && cur.phase <= phase then
        match cur.kind with
        | Kdeq | Kdeq_batch _ | Kenq_batch _ -> ()
        | Kenq v ->
            (if cur.target >= 0 then begin
               let q = cur.target in
               let c = slot t q in
               let s = P.get c in
               match s with
               | Free p when p = q ->
                   ignore (P.compare_and_set c s (Full (pack t q tid, v)))
               | Full (w, _)
                 when pos_of t w = q && tid_of t w = tid
                      && t.fault <> Some Rollback_skipped ->
                   (* our install landed: publish, then advance *)
                   if
                     P.compare_and_set t.state.(tid) cur
                       { cur with pending = false; accepted = true }
                   then t.tail_cache <- q + 1;
                   advance_tail t q
               | Taken (w, _) when pos_of t w = q ->
                   (* a dequeuer is consuming position q; if the install
                      was ours it published us done before claiming, so
                      the loop exits on the next pending check *)
                   finish_slow_deq t c s
               | _ ->
                   (* position q went to another operation (or, under
                      the seeded fault, shows any install at q
                      including our own): dead claim, roll it back *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = -1 })
             end
             else begin
               let t0 = P.get t.tail in
               let c = slot t t0 in
               let s = P.get c in
               match s with
               | Free p when p = t0 ->
                   (* stage 1: claim position t0 for this operation *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = t0 })
               | Full (w, _) when pos_of t w = t0 ->
                   finish_slow_enq t t0 (tid_of t w)
               | Full (w, _) when pos_of t w = t0 - t.capacity ->
                   (* ring full at the instant of the slot read *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with pending = false; accepted = false })
               | Taken (w, _) when pos_of t w = t0 - t.capacity ->
                   finish_slow_deq t c s
               | Taken (w, _) when pos_of t w = t0 -> finish_slow_deq t c s
               | _ ->
                   (* any remaining state has position > t0: the hint
                      is stuck behind a completed transition *)
                   advance_tail t t0
             end);
            help_enq t ~self tid phase
    end

  (* Drive tid's pending dequeue to completion; mirror image of
     [help_enq]. Stage 2's "install" is the [Full -> Taken] claim: the
     value rides in the [Taken] cell so any helper can publish it to
     the claimant's descriptor ([finish_slow_deq]) before the slot is
     freed for the next lap. [Free h] at the head hint is the sound
     empty answer (position h's enqueue has not linearized at the
     instant of the slot read, while the hint proves all earlier
     positions were dequeued); it publishes against the unclaimed
     record for the same stage-1 serialization reason as the full
     answer. *)
  and help_deq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let cur = P.get t.state.(tid) in
      if cur.pending && cur.phase <= phase then
        match cur.kind with
        | Kenq _ | Kenq_batch _ | Kdeq_batch _ -> ()
        | Kdeq ->
            (if cur.target >= 0 then begin
               let q = cur.target in
               let c = slot t q in
               let s = P.get c in
               match s with
               | Full (w, v) when pos_of t w = q ->
                   (* a slow install must be published done before its
                      evidence leaves the slot *)
                   let etid = tid_of t w in
                   if etid >= 0 then finish_slow_enq t q etid;
                   ignore (P.compare_and_set c s (Taken (pack t q tid, v)))
               | Taken (w, _) when pos_of t w = q ->
                   (* ours: publishes our result, frees, advances;
                      another's: helps it, and our dead claim rolls
                      back on the next iteration *)
                   finish_slow_deq t c s
               | _ ->
                   (* position q consumed by another dequeuer — a landed
                      claim of ours would still be visible as [Taken]
                      until we were published done: roll the claim back *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = -1 })
             end
             else begin
               let h = P.get t.head in
               let c = slot t h in
               let s = P.get c in
               match s with
               | Free p when p = h ->
                   (* empty at the instant of the slot read *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with pending = false; result = None })
               | Full (w, _) when pos_of t w = h ->
                   (* stage 1: claim position h *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = h })
               | Taken (w, _) when pos_of t w = h -> finish_slow_deq t c s
               | _ ->
                   (* any remaining state has position > h: position h
                      was already dequeued, the hint is stuck *)
                   advance_head t h
             end);
            help_deq t ~self tid phase
    end

  (* Drive tid's pending batch enqueue: the per-element cycle of
     [help_enq] (seek -> claim -> install -> publish) iterated under one
     descriptor, element index [cur.bdone], each element's progress
     recorded by the record-replacing CAS in [finish_slow_enq]. A full
     ring mid-batch publishes a terminal {e partial} record — [bdone]
     elements accepted, the suffix rejected — the only way a batch ends
     short. The batch is {e not} atomic: other enqueuers may land
     between two of its elements, but each element linearizes at its
     own install CAS, so the batch's elements appear in FIFO order
     relative to each other. Rollback safety is per element and
     identical to [help_enq]: our landed install at [q] stays visible as
     [Full (q, tid)] until [finish_slow_enq] has replaced this exact
     record, which makes the stale rollback CAS fail. *)
  and help_enq_batch t ~self tid phase =
    if is_still_pending t tid phase then begin
      let cur = P.get t.state.(tid) in
      if cur.pending && cur.phase <= phase then
        match cur.kind with
        | Kdeq | Kdeq_batch _ | Kenq _ -> ()
        | Kenq_batch vs ->
            (if cur.target >= 0 then begin
               let q = cur.target in
               let c = slot t q in
               let s = P.get c in
               match s with
               | Free p when p = q ->
                   let v = vs.(cur.bdone) in
                   ignore (P.compare_and_set c s (Full (pack t q tid, v)))
               | Full (w, _) when pos_of t w = q && tid_of t w = tid ->
                   (* our element landed: publish its progress (the
                      batch arm of finish_slow_enq), then advance *)
                   finish_slow_enq t q tid
               | Taken (w, _) when pos_of t w = q ->
                   (* if the install was ours, the dequeuer published
                      our progress before claiming *)
                   finish_slow_deq t c s
               | _ ->
                   (* position q went to another operation: dead claim *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = -1 })
             end
             else begin
               let t0 = P.get t.tail in
               let c = slot t t0 in
               let s = P.get c in
               match s with
               | Free p when p = t0 ->
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = t0 })
               | Full (w, _) when pos_of t w = t0 ->
                   finish_slow_enq t t0 (tid_of t w)
               | Full (w, _) when pos_of t w = t0 - t.capacity ->
                   (* ring full mid-batch: terminal partial outcome,
                      [bdone] elements in, suffix rejected *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with pending = false; accepted = false })
               | Taken (w, _) when pos_of t w = t0 - t.capacity ->
                   finish_slow_deq t c s
               | Taken (w, _) when pos_of t w = t0 -> finish_slow_deq t c s
               | _ -> advance_tail t t0
             end);
            help_enq_batch t ~self tid phase
    end

  (* Drive tid's pending batch dequeue: [help_deq]'s per-element cycle
     iterated under one [want = n] descriptor; each claimed element's
     value is published into [bgot] by the batch arm of
     [finish_slow_deq] before its slot is freed, so helpers can complete
     the remaining suffix of a stalled batch without losing values.
     [Free h] at the head publishes a terminal partial record — the
     queue was observed empty at that element's linearization point. *)
  and help_deq_batch t ~self tid phase =
    if is_still_pending t tid phase then begin
      let cur = P.get t.state.(tid) in
      if cur.pending && cur.phase <= phase then
        match cur.kind with
        | Kenq _ | Kenq_batch _ | Kdeq -> ()
        | Kdeq_batch _ ->
            (if cur.target >= 0 then begin
               let q = cur.target in
               let c = slot t q in
               let s = P.get c in
               match s with
               | Full (w, v) when pos_of t w = q ->
                   let etid = tid_of t w in
                   if etid >= 0 then finish_slow_enq t q etid;
                   ignore (P.compare_and_set c s (Taken (pack t q tid, v)))
               | Taken (w, _) when pos_of t w = q -> finish_slow_deq t c s
               | _ ->
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = -1 })
             end
             else begin
               let h = P.get t.head in
               let c = slot t h in
               let s = P.get c in
               match s with
               | Free p when p = h ->
                   (* empty mid-batch: terminal partial outcome *)
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with pending = false })
               | Full (w, _) when pos_of t w = h ->
                   ignore
                     (P.compare_and_set t.state.(tid) cur
                        { cur with target = h })
               | Taken (w, _) when pos_of t w = h -> finish_slow_deq t c s
               | _ -> advance_head t h
             end);
            help_deq_batch t ~self tid phase
    end

  (* Help a peer at the {e descriptor's own} phase, never the caller's
     bound: a stale helper re-running with its (higher) phase would
     otherwise keep a completed-and-republished operation alive — the
     {!Kp_queue_fps} stale-helper livelock, pinned there by DPOR. *)
  let help_slot t ~self i phase =
    let desc = P.get t.state.(i) in
    if desc.pending && desc.phase <= phase then begin
      (match t.obsv with
      | Some m when i <> self -> Wfq_obsv.Counter.incr m.m_help ~slot:self
      | _ -> ());
      match desc.kind with
      | Kenq _ -> help_enq t ~self i desc.phase
      | Kdeq -> help_deq t ~self i desc.phase
      | Kenq_batch _ -> help_enq_batch t ~self i desc.phase
      | Kdeq_batch _ -> help_deq_batch t ~self i desc.phase
    end

  let run_help t ~tid ~phase =
    let c = t.help_cursor.(tid) in
    t.help_cursor.(tid) <- (c + 1) mod t.num_threads;
    if c <> tid then help_slot t ~self:tid c phase;
    help_slot t ~self:tid tid phase

  (* The fast path's helping duty (one [slow_pending] load per
     operation; a cyclic helping round only when raised) — the
     {!Kp_queue_fps} discipline, same wait-freedom bound: a pending
     slow operation is reached after at most [num_threads] operations
     by any other thread. *)
  let maybe_help t ~tid =
    if A.get t.slow_pending > 0 then begin
      let c = t.help_cursor.(tid) in
      t.help_cursor.(tid) <- (c + 1) mod t.num_threads;
      help_slot t ~self:tid c max_int
    end

  let slow_op t ~tid kind =
    (match t.obsv with
    | Some m -> Wfq_obsv.Counter.incr m.m_slow ~slot:tid
    | None -> ());
    (* raise the flag before publishing, so any operation that sees the
       descriptor also sees the flag *)
    ignore (A.fetch_and_add t.slow_pending 1);
    let phase = next_phase t in
    P.set t.state.(tid)
      {
        phase;
        pending = true;
        kind;
        target = -1;
        result = None;
        accepted = false;
        bdone = 0;
        bgot = [];
      };
    run_help t ~tid ~phase;
    ignore (A.fetch_and_add t.slow_pending (-1));
    P.get t.state.(tid)

  let slow_enqueue t ~tid v =
    let d = slow_op t ~tid (Kenq v) in
    if d.accepted then sample_occupancy t ~tid else count_full t ~tid;
    d.accepted

  let slow_dequeue t ~tid = (slow_op t ~tid Kdeq).result

  (* ------------------------------------------------------------------ *)
  (* Fast path: bounded validated slot-CAS rounds                       *)
  (* ------------------------------------------------------------------ *)

  let rec fast_enqueue t ~tid v failures =
    if failures >= t.max_failures then slow_enqueue t ~tid v
    else begin
      let t0 = P.get t.tail in
      let c = slot t t0 in
      let s = P.get c in
      match s with
      | Free p when p = t0 ->
          if P.compare_and_set c s (Full (pack t t0 (-1), v)) then begin
            advance_tail t t0;
            t.tail_cache <- t0 + 1;
            sample_occupancy t ~tid;
            true
          end
          else begin
            count_retry t ~tid;
            fast_enqueue t ~tid v (failures + 1)
          end
      | Full (w, _) when pos_of t w = t0 ->
          finish_slow_enq t t0 (tid_of t w);
          count_retry t ~tid;
          fast_enqueue t ~tid v (failures + 1)
      | Full (w, _) when pos_of t w = t0 - t.capacity ->
          (* full at the instant of the slot read (see help_enq):
             sound immediately, no slow path needed *)
          count_full t ~tid;
          false
      | Taken (w, _) when pos_of t w = t0 - t.capacity ->
          finish_slow_deq t c s;
          count_retry t ~tid;
          fast_enqueue t ~tid v (failures + 1)
      | Taken (w, _) when pos_of t w = t0 ->
          finish_slow_deq t c s;
          count_retry t ~tid;
          fast_enqueue t ~tid v (failures + 1)
      | _ ->
          (* position > t0: hint stuck behind a completed transition *)
          advance_tail t t0;
          count_retry t ~tid;
          fast_enqueue t ~tid v (failures + 1)
    end

  let rec fast_dequeue t ~tid failures =
    if failures >= t.max_failures then slow_dequeue t ~tid
    else begin
      let h = P.get t.head in
      let c = slot t h in
      let s = P.get c in
      match s with
      | Free p when p = h ->
          (* empty at the instant of the slot read (see help_deq):
             sound immediately, no slow path needed *)
          None
      | Full (w, v) when pos_of t w = h ->
          let etid = tid_of t w in
          if etid >= 0 then finish_slow_enq t h etid;
          (* claim and free are one CAS on the fast path: the dequeuer
             itself holds the value, no helper needs to learn it *)
          if P.compare_and_set c s (Free (h + t.capacity)) then begin
            t.head_cache <- h + 1;
            advance_head t h;
            Some v
          end
          else begin
            count_retry t ~tid;
            fast_dequeue t ~tid (failures + 1)
          end
      | Taken (w, _) when pos_of t w = h ->
          finish_slow_deq t c s;
          count_retry t ~tid;
          fast_dequeue t ~tid (failures + 1)
      | _ ->
          (* position > h: hint stuck behind a completed transition *)
          advance_head t h;
          count_retry t ~tid;
          fast_dequeue t ~tid (failures + 1)
    end

  (* ------------------------------------------------------------------ *)
  (* Public operations                                                  *)
  (* ------------------------------------------------------------------ *)

  let check_tid t tid =
    if tid < 0 || tid >= t.num_threads then
      invalid_arg "Ring_queue: tid out of range"

  let try_enqueue t ~tid v =
    check_tid t tid;
    maybe_help t ~tid;
    fast_enqueue t ~tid v 0

  let enqueue t ~tid v = if not (try_enqueue t ~tid v) then raise Ring_full

  let dequeue t ~tid =
    check_tid t tid;
    maybe_help t ~tid;
    fast_dequeue t ~tid 0

  (* ------------------------------------------------------------------ *)
  (* Batch operations (docs/BATCHING.md)                                *)
  (* ------------------------------------------------------------------ *)

  (* Fast path: per-element validated slot-CAS rounds under one shared
     [max_failures] budget and a single helping check for the whole
     batch. Exhausting the budget publishes {e one} descriptor covering
     the remaining suffix — the contiguous-run claim deferred from the
     segment work of PR 7 — driven by [help_enq_batch]/[help_deq_batch].
     A full (resp. empty) answer at some element's validated slot read
     ends the batch short there, exactly as the single operations
     linearize their rejections. *)

  let try_enqueue_batch t ~tid vs =
    check_tid t tid;
    match vs with
    | [] -> 0
    | vs ->
        let arr = Array.of_list vs in
        let len = Array.length arr in
        note_batch_size t ~tid len;
        maybe_help t ~tid;
        let rec go i failures cas =
          if i >= len then begin
            note_batch_cas t ~tid cas;
            sample_occupancy t ~tid;
            i
          end
          else if failures >= t.max_failures then begin
            note_batch_cas t ~tid cas;
            let d = slow_op t ~tid (Kenq_batch (Array.sub arr i (len - i))) in
            let accepted = i + d.bdone in
            if accepted < len then count_full t ~tid
            else sample_occupancy t ~tid;
            accepted
          end
          else begin
            let t0 = P.get t.tail in
            let c = slot t t0 in
            let s = P.get c in
            match s with
            | Free p when p = t0 ->
                if P.compare_and_set c s (Full (pack t t0 (-1), arr.(i)))
                then begin
                  advance_tail t t0;
                  t.tail_cache <- t0 + 1;
                  go (i + 1) failures (cas + 2)
                end
                else begin
                  count_retry t ~tid;
                  go i (failures + 1) (cas + 1)
                end
            | Full (w, _) when pos_of t w = t0 ->
                finish_slow_enq t t0 (tid_of t w);
                count_retry t ~tid;
                go i (failures + 1) cas
            | Full (w, _) when pos_of t w = t0 - t.capacity ->
                (* full at this element's validated slot read: the
                   batch ends short, [i] elements in *)
                note_batch_cas t ~tid cas;
                count_full t ~tid;
                i
            | Taken (w, _) when pos_of t w = t0 - t.capacity ->
                finish_slow_deq t c s;
                count_retry t ~tid;
                go i (failures + 1) cas
            | Taken (w, _) when pos_of t w = t0 ->
                finish_slow_deq t c s;
                count_retry t ~tid;
                go i (failures + 1) cas
            | _ ->
                advance_tail t t0;
                count_retry t ~tid;
                go i (failures + 1) cas
          end
        in
        go 0 0 0

  let enqueue_batch t ~tid vs =
    let n = List.length vs in
    if try_enqueue_batch t ~tid vs <> n then raise Ring_full

  let dequeue_batch t ~tid ~n =
    check_tid t tid;
    if n < 0 then invalid_arg "Ring_queue.dequeue_batch: n";
    if n = 0 then []
    else begin
      note_batch_size t ~tid n;
      maybe_help t ~tid;
      let rec go acc got failures cas =
        if got >= n then begin
          note_batch_cas t ~tid cas;
          List.rev acc
        end
        else if failures >= t.max_failures then begin
          note_batch_cas t ~tid cas;
          let d = slow_op t ~tid (Kdeq_batch (n - got)) in
          List.rev_append acc (List.rev d.bgot)
        end
        else begin
          let h = P.get t.head in
          let c = slot t h in
          let s = P.get c in
          match s with
          | Free p when p = h ->
              (* empty at this element's validated slot read: short *)
              note_batch_cas t ~tid cas;
              List.rev acc
          | Full (w, v) when pos_of t w = h ->
              let etid = tid_of t w in
              if etid >= 0 then finish_slow_enq t h etid;
              if P.compare_and_set c s (Free (h + t.capacity)) then begin
                t.head_cache <- h + 1;
                advance_head t h;
                go (v :: acc) (got + 1) failures (cas + 2)
              end
              else begin
                count_retry t ~tid;
                go acc got (failures + 1) (cas + 1)
              end
          | Taken (w, _) when pos_of t w = h ->
              finish_slow_deq t c s;
              count_retry t ~tid;
              go acc got (failures + 1) cas
          | _ ->
              advance_head t h;
              count_retry t ~tid;
              go acc got (failures + 1) cas
        end
      in
      go [] 0 0 0
    end

  (* ------------------------------------------------------------------ *)
  (* Quiescent observers (QUEUE contract: callers guarantee no
     concurrent operations)                                             *)
  (* ------------------------------------------------------------------ *)

  let length t = max 0 (P.get t.tail - P.get t.head)
  let is_empty t = length t = 0

  let to_list t =
    let h = P.get t.head and tl = P.get t.tail in
    let rec go p acc =
      if p >= tl then List.rev acc
      else
        match P.get (slot t p) with
        | Full (w, v) when pos_of t w = p -> go (p + 1) (v :: acc)
        | _ -> go (p + 1) acc
    in
    go h []

  let check_quiescent_invariants t =
    let h = P.get t.head and tl = P.get t.tail in
    let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
    if h > tl then err "head %d ahead of tail %d" h tl
    else if tl - h > t.capacity then
      err "length %d exceeds capacity %d" (tl - h) t.capacity
    else if A.get t.slow_pending <> 0 then
      err "slow_pending = %d at quiescence" (A.get t.slow_pending)
    else begin
      let pending = ref 0 in
      Array.iter (fun s -> if (P.get s).pending then incr pending) t.state;
      if !pending <> 0 then
        err "%d descriptors still pending at quiescence" !pending
      else begin
        let bad = ref None in
        for j = 0 to t.capacity - 1 do
          if !bad = None then begin
            (* the unique position of slot j that lies in [h, h+cap) *)
            let p =
              h + ((((j - h) mod t.capacity) + t.capacity) mod t.capacity)
            in
            let expected = if p < tl then "Full" else "Free" in
            match P.get t.slots.(j) with
            | Full (w, _) when p < tl && pos_of t w = p -> ()
            | Free p' when p >= tl && p' = p -> ()
            | Full (w, _) ->
                bad :=
                  Some
                    (Printf.sprintf
                       "slot %d: Full at position %d, expected %s at %d" j
                       (pos_of t w) expected p)
            | Free p' ->
                bad :=
                  Some
                    (Printf.sprintf
                       "slot %d: Free at position %d, expected %s at %d" j p'
                       expected p)
            | Taken (w, _) ->
                bad :=
                  Some
                    (Printf.sprintf
                       "slot %d: Taken at position %d at quiescence" j
                       (pos_of t w))
          end
        done;
        match !bad with None -> Ok () | Some msg -> Error msg
      end
    end

  (* ------------------------------------------------------------------ *)
  (* Observability                                                      *)
  (* ------------------------------------------------------------------ *)

  let register_metrics t registry ~prefix =
    Wfq_obsv.Metrics.gauge registry ~name:(prefix ^ ".depth") (fun () ->
        length t);
    Wfq_obsv.Metrics.gauge registry ~name:(prefix ^ ".capacity") (fun () ->
        t.capacity)

  (* ------------------------------------------------------------------ *)
  (* White-box probes (tests only)                                      *)
  (* ------------------------------------------------------------------ *)

  module Probe = struct
    let head t = P.get t.head
    let tail t = P.get t.tail

    let slot_state t j =
      match P.get t.slots.(j) with
      | Free p -> `Free p
      | Full (w, _) -> `Full (pos_of t w, tid_of t w)
      | Taken (w, _) -> `Taken (pos_of t w, tid_of t w)

    let desc_pending t tid = (P.get t.state.(tid)).pending
    let desc_target t tid = (P.get t.state.(tid)).target
  end
end
