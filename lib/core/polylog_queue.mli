(** Wait-free MPMC queue with polylogarithmic step complexity
    (ROADMAP item 5): the Naderibeni-Ruppert tournament-tree queue
    (PAPERS.md, "A Wait-free Queue with Polylogarithmic Step
    Complexity", arXiv:2305.07229).

    Where the KP family pays O(p) steps per operation in the worst
    case — the helping protocol scans the per-thread state array — this
    structure replaces per-thread helping with CAS-aggregated operation
    batches propagating up a tournament tree of height O(log p): an
    operation announces itself as a block at its thread's leaf, drives
    it to the root with at most two refresh CASes per level (the
    double-refresh lemma — if both fail, a concurrent refresh merged
    the block for us), and resolves its answer by prefix-sum arithmetic
    over the root log, O(log) binary searches per level. Every
    operation completes in O(log p · log n) of its own steps regardless
    of contention — the step-bound crossover against KP as p grows is
    certified by [Wfq_sim.Check.certify] and tabulated by
    [wfq_bench polylog].

    Blocks are natively batched: [enqueue_batch]/[dequeue_batch]
    publish one block (one tree traversal) for the whole batch.

    Unbounded semantics ([try_enqueue] always accepts). Memory caveat:
    the per-node block logs are append-only and never reclaimed — a
    queue instance grows by O(log p) blocks per operation for its whole
    lifetime (the paper's presentation; bounded-log variants exist but
    are out of scope).

    Thread identity: as for {!Kp_queue}, every participating thread
    owns a distinct [tid] in [0, num_threads) — the leaf index. *)

type metrics
(** Instrumentation handle ({!Wfq_obsv}): leaf blocks published and
    refresh CAS races lost (per-tid single-writer counters — no shared
    traffic, invisible to the model checker). *)

val metrics : Wfq_obsv.Metrics.t -> prefix:string -> slots:int -> metrics
(** Create the handle and register its counters under
    [prefix ^ ".leaf_blocks"/".refresh_fails"]. [slots] must be the
    queue's [num_threads]. *)

(** Test-only seeded bug (never pass in production code): the checker's
    ability to find it is itself under test. *)
type fault =
  | No_double_refresh
      (** Propagation performs a single refresh per level, breaking the
          double-refresh lemma: a lost race can leave an announced
          block unmerged, so the op that published it spins waiting for
          its root position — caught by the model checker as a
          livelock/step-bound violation. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string

  val create : num_threads:int -> unit -> 'a t

  val create_with :
    ?fault:fault -> ?obsv:metrics -> num_threads:int -> unit -> 'a t
  (** Raises [Invalid_argument] for [num_threads <= 0]. The tree is
      sized to [max 2 num_threads] rounded up to a power of two. *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  val try_enqueue : 'a t -> tid:int -> 'a -> bool
  (** Unbounded: always [true]. *)

  val dequeue : 'a t -> tid:int -> 'a option

  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  (** One leaf block — one tree traversal — for the whole batch; the
      batch is atomic (a single root-log position covers it). *)

  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list
  (** One leaf block for all [n] dequeues; a short result means the
      queue ran out of elements at the batch's root-log position.
      Raises [Invalid_argument] for negative [n]. *)

  (** {2 Quiescent observers} — callers guarantee no concurrent
      operations. *)

  val length : 'a t -> int
  (** O(1): the last root block's size field. *)

  val is_empty : 'a t -> bool
  val to_list : 'a t -> 'a list

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** Structural audit at quiescence: cumulative sums and merge ends
      monotone in every log, the root size recurrence, no filled slot
      beyond a head, and no announced operation missing from the root
      (conservation between the leaf logs and the root log). *)

  val register_metrics : 'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Uniform backend contract: [prefix ^ ".depth"] (O(1) — see
      {!length}) and [prefix ^ ".root_blocks"] gauges. Hot-path
      counters come from passing [?obsv] at creation. *)

  (** White-box probes for tests. *)
  module Probe : sig
    val leaves : 'a t -> int
    val root_blocks : 'a t -> int
    val leaf_blocks : 'a t -> tid:int -> int
    val root_size : 'a t -> int
    val node_head : 'a t -> int -> int
  end
end
