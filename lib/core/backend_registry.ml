(** The backend registry (ROADMAP item 5, docs/BACKENDS.md): the single
    list every generic driver iterates. [Backends] registers the
    in-tree configurations at module initialization; adding a backend
    to the whole test/bench/observability battery is one {!register}
    call there.

    Registration is construction-time only (no locking: OCaml module
    initialization is sequential), and the registry is append-only —
    [all] returns entries in registration order so benchmark and test
    output stays stable. *)

type t = (module Queue_intf.BACKEND)

let registered : t list ref = ref []

let id (module B : Queue_intf.BACKEND) = B.id

let register (module B : Queue_intf.BACKEND) =
  if List.exists (fun b -> id b = B.id) !registered then
    invalid_arg (Printf.sprintf "Backend_registry.register: duplicate %S" B.id);
  registered := (module B : Queue_intf.BACKEND) :: !registered

let all () = List.rev !registered
let ids () = List.map id (all ())

let find key =
  match List.find_opt (fun b -> id b = key) !registered with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Backend_registry.find: unknown backend %S (known: %s)"
           key
           (String.concat ", " (ids ())))
