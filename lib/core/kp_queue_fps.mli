(** Fast-path/slow-path Kogan-Petrank queue: a linearizable wait-free
    MPMC FIFO whose uncontended operations run as plain (lock-free)
    Michael-Scott CAS rounds, falling back to the paper's phase-based
    helping slow path only after [max_failures] failed attempts — the
    fast-path/slow-path methodology of Kogan & Petrank (PPoPP 2012), as
    deployed by wCQ (arXiv:2201.02179).

    Wait-freedom is preserved: the fast path is bounded by
    [max_failures], and every operation (fast or slow) checks a shared
    [slow_pending] counter — one atomic load, the only fast-path
    overhead — and helps a pending slow-path operation when one exists,
    so a thread on the slow path is helped after at most [num_threads]
    operations of any peer. See docs/FASTPATH.md for the full handshake
    and the progress argument.

    Thread identity: as for {!Kp_queue}, every participating thread owns
    a distinct [tid] in [0, num_threads). *)

(** Policies and tuning are shared with (and equal to) {!Kp_queue}'s:
    they configure the slow path only. *)
type help_policy = Kp_queue.help_policy =
  | Help_all
  | Help_one_cyclic
  | Help_chunk of int

type phase_policy = Kp_queue.phase_policy = Phase_scan | Phase_counter

type tuning = Kp_queue.tuning = {
  gc_friendly : bool;
  validate_before_cas : bool;
}

val default_tuning : tuning

val default_max_failures : int
(** Fast-path attempt budget used by {!Make.create} (64 — past a handful
    of failed CAS rounds the helping scheme is cheaper than continued
    spinning, and a small budget keeps the worst-case latency tight). *)

type metrics
(** Instrumentation handle ({!Wfq_obsv}) for the path diagnostics the
    always-on hit/entry counters don't capture: fast-path CAS rounds
    consumed per operation and fast-dequeue claim handoffs. Writes are
    per-tid single-writer plain cells — no extra shared-cell traffic. *)

val metrics : Wfq_obsv.Metrics.t -> prefix:string -> slots:int -> metrics
(** Create the handle and register its metrics under
    [prefix ^ ".fast_rounds"/".claim_handoffs"/".batch_size"/
    ".batch_cas"]. [batch_size] is a histogram of elements per batch
    operation; [batch_cas] counts the CASes issued by fast-path batch
    owners, so [batch_cas / sum(batch_size)] is the amortized
    CAS-per-element figure (docs/BATCHING.md). [slots] must be the
    queue's [num_threads]. *)

(** Test-only seeded bugs: each reinstates a known-fatal deviation from
    the fast/slow compatibility handshake (docs/FASTPATH.md), so the
    model checker's ability to find and shrink them is itself testable.
    Never pass in production code. *)
type fault =
  | Stale_helper_caller_phase
      (** helpers help at the caller's phase bound instead of the
          descriptor's own — the livelock documented in
          docs/FASTPATH.md, un-fixed *)
  | Fast_deq_no_claim
      (** fast-path dequeues swing [head] without claiming the
          sentinel's [deq_tid] — races a slow dequeue that already
          claimed the same sentinel into delivering one element twice *)
  | Untagged_pool_claim
      (** node recycling without the epoch tag: the pool reset restores
          the plain [-1] claim word instead of bumping the node's
          incarnation, so a dequeuer that stalled across the node's
          recycle can claim its next incarnation with a stale reference
          (the recycle-ABA the tag exists to prevent). Only meaningful
          together with [~pool:true]. *)
  | Batch_partial_publish
      (** fast-path batch enqueue severs the pre-linked chain after its
          first node before the link CAS: one element is published, the
          suffix silently dropped, the caller told everything went in —
          the conservation violation the batch DPOR litmuses find and
          shrink. Only fires on fast-path batches of two or more
          elements. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string

  val create : num_threads:int -> unit -> 'a t
  (** Default configuration: [default_max_failures] fast rounds, slow
      path running the paper's fastest variant ([Help_one_cyclic] +
      [Phase_counter]), no tuning. *)

  val create_with :
    ?tuning:tuning ->
    ?max_failures:int ->
    ?fault:fault ->
    ?pool:bool ->
    ?pool_segment:int ->
    ?pool_quarantine:bool ->
    ?obsv:metrics ->
    help:help_policy ->
    phase:phase_policy ->
    num_threads:int ->
    unit ->
    'a t
  (** [max_failures] is the number of failed fast-path rounds tolerated
      before falling back (default {!default_max_failures}); [0] skips
      the fast path entirely, degenerating to {!Kp_queue} behaviour.
      [fault] (default [None]) injects a {!fault} — tests only.

      [pool] (default [false]) recycles nodes and descriptors through
      per-domain {!Wfq_primitives.Segment_pool}s exactly as in
      {!Kp_queue.Make.create_with}: epoch tags defend the claim CAS,
      quarantine defends the pointer CASes. [pool_quarantine:false]
      (sim/model-checking only) leaves the tag as the sole defense and
      disables descriptor recycling; [pool_segment] sets the carve-batch
      size. Raises [Invalid_argument] for [num_threads <= 0], negative
      [max_failures], a non-positive chunk size, or a non-positive
      [pool_segment].

      [obsv] (default: none) attaches an instrumentation handle built
      with {!metrics}; omitting it compiles every instrumentation site
      down to a no-op match arm. *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Wait-free linearizable FIFO insert; linearizes at the successful
      CAS appending the node, on either path. *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Wait-free linearizable FIFO remove; linearizes at the successful
      CAS claiming the sentinel's [deq_tid] (shared by both paths), or
      at an observed-empty check. *)

  (** {2 Batch operations}

      Amortize the protocol over k elements (docs/BATCHING.md). A batch
      enqueue pre-links its nodes into a chain and publishes it with
      the {e single} linearizing append CAS — 2 CASes per uncontended
      batch instead of 2 per element — falling back to one slow-path
      descriptor that adopts the whole chain. A batch dequeue's fast
      path grabs a whole prefix: it claims the sentinel once, walks the
      immutable next chain (capped at the observed tail) collecting up
      to [n] values, and jumps [head] over the prefix with one CAS — 2
      CASes per uncontended grab instead of 2 per element. If a helper
      swings [head] first, exactly the claimed first element is
      delivered; the remaining want retries under the shared fast-round
      budget, then collects under one [want] slow-path descriptor that
      helpers can complete. Wait-free like the single operations. *)

  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  (** Enqueue all elements, list head first; the batch linearizes at
      one list CAS (elements contiguous in FIFO order, nothing
      interleaved among them). [enqueue_batch t []] is a no-op. *)

  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list
  (** Dequeue up to [n] elements in FIFO order. A successful fast-path
      grab linearizes its whole prefix at the head-jump CAS; elements
      taken on the retry and slow paths linearize at their own claim
      CASes. The batch is {e not} an atomic multi-dequeue — other
      dequeuers may interleave between those points — and a result
      shorter than [n] means the queue was observed empty at the final
      element's linearization point. Raises [Invalid_argument] for
      negative [n]. *)

  (** {2 Quiescent observers} (exact only at quiescence) *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val to_list : 'a t -> 'a list

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** List invariants plus: no pending descriptor, [slow_pending = 0]. *)

  (** {2 White-box probes (tests)} *)

  val max_failures : 'a t -> int

  val fast_path_hits : 'a t -> int
  (** Operations completed on the fast path (including observed-empty
      dequeues), all threads. Exact at quiescence. *)

  val fast_path_hits_of : 'a t -> tid:int -> int

  val slow_path_entries : 'a t -> int
  (** Operations that exhausted [max_failures] and fell back to the
      slow path, all threads. Exact at quiescence. *)

  val slow_path_entries_of : 'a t -> tid:int -> int

  val pending_of : 'a t -> tid:int -> bool
  (** Whether [tid]'s slow-path descriptor is currently pending. *)

  val phase_of : 'a t -> tid:int -> int
  (** Phase of [tid]'s latest slow-path operation ([-1] if none). *)

  val pool_stats :
    'a t -> ((int * int * int) * (int * int * int) option) option
  (** Pool telemetry at quiescence, [None] for unpooled queues:
      [(reused, fresh, parked)] for the node pool, then the same for the
      descriptor pool when descriptor recycling is active ([None] under
      [pool_quarantine:false]). *)

  val debug_dump : 'a t -> unit
  (** Print head/tail/descriptor state to stdout (quiescent debugging). *)

  val register_metrics :
    'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** The uniform {!Queue_intf.RUN_QUEUE} registration: a
      [prefix ^ ".depth"] gauge (polls [length] at snapshot time only),
      the always-on path counters ([prefix ^ ".fast_hits"] /
      [".slow_entries"]) and, when pooled, the node/descriptor pools'
      counters and gauges ([".nodes.*"] / [".descs.*"]). *)
end
