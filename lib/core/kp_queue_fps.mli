(** Fast-path/slow-path Kogan-Petrank queue: a linearizable wait-free
    MPMC FIFO whose uncontended operations run as plain (lock-free)
    Michael-Scott CAS rounds, falling back to the paper's phase-based
    helping slow path only after [max_failures] failed attempts — the
    fast-path/slow-path methodology of Kogan & Petrank (PPoPP 2012), as
    deployed by wCQ (arXiv:2201.02179).

    Wait-freedom is preserved: the fast path is bounded by
    [max_failures], and every operation (fast or slow) checks a shared
    [slow_pending] counter — one atomic load, the only fast-path
    overhead — and helps a pending slow-path operation when one exists,
    so a thread on the slow path is helped after at most [num_threads]
    operations of any peer. See docs/FASTPATH.md for the full handshake
    and the progress argument.

    Thread identity: as for {!Kp_queue}, every participating thread owns
    a distinct [tid] in [0, num_threads). *)

(** Policies and tuning are shared with (and equal to) {!Kp_queue}'s:
    they configure the slow path only. *)
type help_policy = Kp_queue.help_policy =
  | Help_all
  | Help_one_cyclic
  | Help_chunk of int

type phase_policy = Kp_queue.phase_policy = Phase_scan | Phase_counter

type tuning = Kp_queue.tuning = {
  gc_friendly : bool;
  validate_before_cas : bool;
}

val default_tuning : tuning

val default_max_failures : int
(** Fast-path attempt budget used by {!Make.create} (64 — past a handful
    of failed CAS rounds the helping scheme is cheaper than continued
    spinning, and a small budget keeps the worst-case latency tight). *)

type metrics
(** Instrumentation handle ({!Wfq_obsv}) for the path diagnostics the
    always-on hit/entry counters don't capture: fast-path CAS rounds
    consumed per operation and fast-dequeue claim handoffs. Writes are
    per-tid single-writer plain cells — no extra shared-cell traffic. *)

val metrics : Wfq_obsv.Metrics.t -> prefix:string -> slots:int -> metrics
(** Create the handle and register its metrics under
    [prefix ^ ".fast_rounds"/".claim_handoffs"]. [slots] must be the
    queue's [num_threads]. *)

(** Test-only seeded bugs: each reinstates a known-fatal deviation from
    the fast/slow compatibility handshake (docs/FASTPATH.md), so the
    model checker's ability to find and shrink them is itself testable.
    Never pass in production code. *)
type fault =
  | Stale_helper_caller_phase
      (** helpers help at the caller's phase bound instead of the
          descriptor's own — the livelock documented in
          docs/FASTPATH.md, un-fixed *)
  | Fast_deq_no_claim
      (** fast-path dequeues swing [head] without claiming the
          sentinel's [deq_tid] — races a slow dequeue that already
          claimed the same sentinel into delivering one element twice *)
  | Untagged_pool_claim
      (** node recycling without the epoch tag: the pool reset restores
          the plain [-1] claim word instead of bumping the node's
          incarnation, so a dequeuer that stalled across the node's
          recycle can claim its next incarnation with a stale reference
          (the recycle-ABA the tag exists to prevent). Only meaningful
          together with [~pool:true]. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string

  val create : num_threads:int -> unit -> 'a t
  (** Default configuration: [default_max_failures] fast rounds, slow
      path running the paper's fastest variant ([Help_one_cyclic] +
      [Phase_counter]), no tuning. *)

  val create_with :
    ?tuning:tuning ->
    ?max_failures:int ->
    ?fault:fault ->
    ?pool:bool ->
    ?pool_segment:int ->
    ?pool_quarantine:bool ->
    ?obsv:metrics ->
    help:help_policy ->
    phase:phase_policy ->
    num_threads:int ->
    unit ->
    'a t
  (** [max_failures] is the number of failed fast-path rounds tolerated
      before falling back (default {!default_max_failures}); [0] skips
      the fast path entirely, degenerating to {!Kp_queue} behaviour.
      [fault] (default [None]) injects a {!fault} — tests only.

      [pool] (default [false]) recycles nodes and descriptors through
      per-domain {!Wfq_primitives.Segment_pool}s exactly as in
      {!Kp_queue.Make.create_with}: epoch tags defend the claim CAS,
      quarantine defends the pointer CASes. [pool_quarantine:false]
      (sim/model-checking only) leaves the tag as the sole defense and
      disables descriptor recycling; [pool_segment] sets the carve-batch
      size. Raises [Invalid_argument] for [num_threads <= 0], negative
      [max_failures], a non-positive chunk size, or a non-positive
      [pool_segment].

      [obsv] (default: none) attaches an instrumentation handle built
      with {!metrics}; omitting it compiles every instrumentation site
      down to a no-op match arm. *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Wait-free linearizable FIFO insert; linearizes at the successful
      CAS appending the node, on either path. *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Wait-free linearizable FIFO remove; linearizes at the successful
      CAS claiming the sentinel's [deq_tid] (shared by both paths), or
      at an observed-empty check. *)

  (** {2 Quiescent observers} (exact only at quiescence) *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val to_list : 'a t -> 'a list

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** List invariants plus: no pending descriptor, [slow_pending = 0]. *)

  (** {2 White-box probes (tests)} *)

  val max_failures : 'a t -> int

  val fast_path_hits : 'a t -> int
  (** Operations completed on the fast path (including observed-empty
      dequeues), all threads. Exact at quiescence. *)

  val fast_path_hits_of : 'a t -> tid:int -> int

  val slow_path_entries : 'a t -> int
  (** Operations that exhausted [max_failures] and fell back to the
      slow path, all threads. Exact at quiescence. *)

  val slow_path_entries_of : 'a t -> tid:int -> int

  val pending_of : 'a t -> tid:int -> bool
  (** Whether [tid]'s slow-path descriptor is currently pending. *)

  val phase_of : 'a t -> tid:int -> int
  (** Phase of [tid]'s latest slow-path operation ([-1] if none). *)

  val pool_stats :
    'a t -> ((int * int * int) * (int * int * int) option) option
  (** Pool telemetry at quiescence, [None] for unpooled queues:
      [(reused, fresh, parked)] for the node pool, then the same for the
      descriptor pool when descriptor recycling is active ([None] under
      [pool_quarantine:false]). *)

  val debug_dump : 'a t -> unit
  (** Print head/tail/descriptor state to stdout (quiescent debugging). *)

  val register_metrics :
    'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** The uniform {!Queue_intf.RUN_QUEUE} registration: a
      [prefix ^ ".depth"] gauge (polls [length] at snapshot time only),
      the always-on path counters ([prefix ^ ".fast_hits"] /
      [".slow_entries"]) and, when pooled, the node/descriptor pools'
      counters and gauges ([".nodes.*"] / [".descs.*"]). *)
end
