(* Naderibeni-Ruppert wait-free queue with polylogarithmic step
   complexity (arXiv:2305.07229). See the interface for the contract
   and docs/BACKENDS.md for how it plugs into the registry; the
   protocol summary:

   A tournament tree with one leaf per thread. An operation (or a whole
   batch of operations — blocks are natively batched here) is written
   as a *block* at the caller's leaf, then propagated toward the root:
   each internal node keeps an append-only log of blocks, and a block
   of an internal node summarizes a contiguous run of new child blocks
   (cumulative operation counts plus the inclusive index of the last
   merged block of each child). Appending to an internal node is the
   classic double-refresh: read the log head, build a block from the
   children's current ends, CAS it into the head slot, CAS the head
   forward; if two consecutive refreshes of a node fail, the winner of
   the second one read the children *after* our child-level block was
   complete, so our operations were merged by someone else (the lemma
   relies on every failure path helping the head forward first — both
   failure branches below do).

   The root log is the linearization: root blocks in log order; inside
   a block all enqueues precede all dequeues, left subtree before
   right. Every cell of every log is written at most once (CAS from
   [None]), so the propagation needs no locks and no unbounded retries:
   an operation does O(1) CASes per tree level.

   A dequeue resolves its return value arithmetically after its block
   reaches the root: walk the tree upward to find the root block B
   containing it and its rank r among B's dequeues (per-level binary
   search over the parent log, O(log) each); the root block's prefix
   sums decide whether the queue was empty for rank r, otherwise the
   dequeue removes the globally i-th enqueue (i = removed-before-B + r)
   and a downward binary-search descent fetches that enqueue's payload
   from the leaf block that published it.

   Memory: logs are append-only and never reclaimed (the paper's
   presentation; bounding them is possible but out of scope — see
   docs/BACKENDS.md). Segments double in size behind a small directory,
   so an empty queue allocates a few dozen cells per node and a long
   run amortizes to ~1 directory hop per log access. *)

type fault = No_double_refresh

type metrics = {
  m_leaf_blocks : Wfq_obsv.Counter.t;
  m_refresh_fails : Wfq_obsv.Counter.t;
}

let metrics registry ~prefix ~slots =
  let c () = Wfq_obsv.Counter.create ~slots () in
  let m = { m_leaf_blocks = c (); m_refresh_fails = c () } in
  Wfq_obsv.Metrics.register registry (prefix ^ ".leaf_blocks")
    (Wfq_obsv.Metrics.Counter m.m_leaf_blocks);
  Wfq_obsv.Metrics.register registry (prefix ^ ".refresh_fails")
    (Wfq_obsv.Metrics.Counter m.m_refresh_fails);
  m

(* Doubling segments: segment [s] holds [seg_base * 2^s] cells and
   covers log indices [seg_base*(2^s - 1), seg_base*(2^(s+1) - 1)). *)
let seg_base = 32
let dir_size = 26 (* seg_base * (2^26 - 1) ~ 2.1e9 blocks per node *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  type 'a block = {
    sum_enq : int;  (** cumulative enqueues through this block *)
    sum_deq : int;  (** cumulative dequeues through this block *)
    end_left : int;  (** internal: last merged left-child block (incl.) *)
    end_right : int;
    size : int;  (** root only: queue length after this block; -1 else *)
    sum_removed : int;  (** root only: cumulative successful dequeues *)
    values : 'a array;  (** leaf only: the enqueue batch's payloads *)
  }

  type 'a node = {
    head : int A.t;  (** next append index; slots below are complete *)
    segs : 'a block option A.t array option A.t array;
  }

  type 'a t = {
    nodes : 'a node array;
        (** 1-based heap layout: children of [i] are [2i], [2i+1];
            [nodes.(0)] is an unused dummy. *)
    leaf0 : int;  (** first leaf index = leaf count (a power of two) *)
    num_threads : int;
    fault : fault option;
    obsv : metrics option;
  }

  let name = "wf-polylog"

  let sentinel =
    {
      sum_enq = 0;
      sum_deq = 0;
      end_left = 0;
      end_right = 0;
      size = 0;
      sum_removed = 0;
      values = [||];
    }

  (* --- segmented append-only logs -------------------------------- *)

  let seg_index i =
    let k = ref ((i / seg_base) + 1) and s = ref 0 in
    while !k > 1 do
      k := !k lsr 1;
      incr s
    done;
    !s

  let seg_start s = seg_base * ((1 lsl s) - 1)
  let seg_size s = seg_base lsl s

  let get_block n i =
    let s = seg_index i in
    match A.get n.segs.(s) with
    | None -> None
    | Some seg -> A.get seg.(i - seg_start s)

  let block_exn n i =
    match get_block n i with
    | Some b -> b
    | None ->
        invalid_arg (Printf.sprintf "Polylog_queue: missing block %d" i)

  let cell_for n i =
    let s = seg_index i in
    if s >= dir_size then
      failwith "Polylog_queue: per-node block log capacity exceeded";
    (match A.get n.segs.(s) with
    | Some _ -> ()
    | None ->
        let seg = Array.init (seg_size s) (fun _ -> A.make None) in
        ignore (A.compare_and_set n.segs.(s) None (Some seg) : bool));
    match A.get n.segs.(s) with
    | Some seg -> seg.(i - seg_start s)
    | None -> assert false

  (* --- construction ----------------------------------------------- *)

  let create_with ?fault ?obsv ~num_threads () =
    if num_threads <= 0 then invalid_arg "Polylog_queue.create: num_threads";
    (* Force >= 2 leaves so the root is always an internal node and the
       propagation/linearization story is uniform even at p = 1. *)
    let leaves = ref 2 in
    while !leaves < num_threads do
      leaves := !leaves * 2
    done;
    let leaves = !leaves in
    let make_node () =
      (* Construction must stay yield-free (it may run outside a
         simulator fiber), so the sentinel and segment 0 are installed
         with [A.make] rather than [A.set]. *)
      let segs = Array.init dir_size (fun _ -> A.make None) in
      let seg0 =
        Array.init seg_base (fun c ->
            A.make (if c = 0 then Some sentinel else None))
      in
      segs.(0) <- A.make (Some seg0);
      { head = A.make 1; segs }
    in
    {
      nodes = Array.init (2 * leaves) (fun _ -> make_node ());
      leaf0 = leaves;
      num_threads;
      fault;
      obsv;
    }

  let create ~num_threads () = create_with ~num_threads ()
  let leaf_of t ~tid = t.leaf0 + tid

  (* --- propagation ------------------------------------------------ *)

  (* Index of the last {e complete} block of [nodes.(i)]: the slot at
     [head] may already be filled but not yet counted — help the head
     forward and count it (the paper's Advance). *)
  let last_done t i =
    let n = t.nodes.(i) in
    let h = A.get n.head in
    match get_block n h with
    | Some _ ->
        ignore (A.compare_and_set n.head h (h + 1) : bool);
        h
    | None -> h - 1

  (* Build the block to append to internal node [i] at index [h]:
     everything the children completed beyond what [h - 1] merged.
     [None] when there is nothing new. *)
  let create_block t i h =
    let n = t.nodes.(i) in
    let prev = block_exn n (h - 1) in
    let li = 2 * i and ri = (2 * i) + 1 in
    let ln = t.nodes.(li) and rn = t.nodes.(ri) in
    let el = max (last_done t li) prev.end_left
    and er = max (last_done t ri) prev.end_right in
    let lb = block_exn ln el and plb = block_exn ln prev.end_left in
    let rb = block_exn rn er and prb = block_exn rn prev.end_right in
    let ne = lb.sum_enq - plb.sum_enq + (rb.sum_enq - prb.sum_enq) in
    let nd = lb.sum_deq - plb.sum_deq + (rb.sum_deq - prb.sum_deq) in
    if ne = 0 && nd = 0 then None
    else
      let sum_enq = prev.sum_enq + ne and sum_deq = prev.sum_deq + nd in
      if i = 1 then
        (* Root: all of the block's enqueues linearize before its
           dequeues, so [avail] elements are dequeuable; the rest of
           the block's dequeues return empty. *)
        let avail = prev.size + ne in
        let rem = min nd avail in
        Some
          {
            sum_enq;
            sum_deq;
            end_left = el;
            end_right = er;
            size = avail - rem;
            sum_removed = prev.sum_removed + rem;
            values = [||];
          }
      else
        Some
          {
            sum_enq;
            sum_deq;
            end_left = el;
            end_right = er;
            size = -1;
            sum_removed = 0;
            values = [||];
          }

  (* One refresh attempt. Every path that does not install a block
     helps the head past the contended slot first — the double-refresh
     lemma needs the second attempt to observe a head the first
     attempt's winner advanced. *)
  let refresh t ~tid i =
    let n = t.nodes.(i) in
    let h = A.get n.head in
    match get_block n h with
    | Some _ ->
        ignore (A.compare_and_set n.head h (h + 1) : bool);
        false
    | None -> (
        match create_block t i h with
        | None -> true
        | Some b ->
            let ok = A.compare_and_set (cell_for n h) None (Some b) in
            ignore (A.compare_and_set n.head h (h + 1) : bool);
            if not ok then
              Option.iter
                (fun m -> Wfq_obsv.Counter.incr m.m_refresh_fails ~slot:tid)
                t.obsv;
            ok)

  let rec propagate t ~tid i =
    if not (refresh t ~tid i) then
      (match t.fault with
      | Some No_double_refresh -> ()
      | None -> ignore (refresh t ~tid i : bool));
    if i > 1 then propagate t ~tid (i / 2)

  (* Publish a leaf block (single writer: the leaf's owner) and drive
     it to the root. Returns the block's leaf log index. *)
  let append t ~tid ~values ~ndeq =
    let li = leaf_of t ~tid in
    let n = t.nodes.(li) in
    let h = A.get n.head in
    let prev = block_exn n (h - 1) in
    let b =
      {
        sum_enq = prev.sum_enq + Array.length values;
        sum_deq = prev.sum_deq + ndeq;
        end_left = 0;
        end_right = 0;
        size = -1;
        sum_removed = 0;
        values;
      }
    in
    A.set (cell_for n h) (Some b);
    A.set n.head (h + 1);
    Option.iter
      (fun m -> Wfq_obsv.Counter.incr m.m_leaf_blocks ~slot:tid)
      t.obsv;
    propagate t ~tid (li / 2);
    h

  (* --- index arithmetic ------------------------------------------- *)

  (* First index in [lo, hi] whose block satisfies [pred] (monotone in
     the index); the range is complete and known to contain one. *)
  let bsearch n ~lo ~hi pred =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if pred (block_exn n mid) then hi := mid else lo := mid + 1
    done;
    !lo

  (* The parent block that merged child block [j] ([left] side of
     parent [p]). After the child-level propagation finished, such a
     block exists or is about to: re-reading [last_done] until it
     covers [j] is bounded by the double-refresh lemma (and diverges
     exactly when the [No_double_refresh] fault breaks the lemma — the
     model checker reports that as a livelock). *)
  let rec find_merged t p ~left j =
    let n = t.nodes.(p) in
    let hi = last_done t p in
    let covered b = (if left then b.end_left else b.end_right) >= j in
    if hi >= 1 && covered (block_exn n hi) then
      bsearch n ~lo:1 ~hi covered
    else find_merged t p ~left j

  (* Root position of the [r]-th dequeue of block [j] of node [i]:
     returns the root block index and the dequeue's rank among that
     block's dequeues. Block order inside a merge: left child's blocks
     before right child's. *)
  let rec lift t i j r =
    if i = 1 then (j, r)
    else
      let p = i / 2 in
      let left = i land 1 = 0 in
      let k = find_merged t p ~left j in
      let pn = t.nodes.(p) in
      let bk = block_exn pn k and pk = block_exn pn (k - 1) in
      let sum_deq_of idx l = (block_exn t.nodes.(idx) l).sum_deq in
      let before =
        if left then sum_deq_of i (j - 1) - sum_deq_of i pk.end_left
        else
          let sib = 2 * p in
          sum_deq_of sib bk.end_left
          - sum_deq_of sib pk.end_left
          + (sum_deq_of i (j - 1) - sum_deq_of i pk.end_right)
      in
      lift t p k (before + r)

  (* Payload of the globally [i]-th enqueue (1-based, root order):
     binary-search the root log, then descend — at each internal block
     decide which child contributed the target and re-express it as
     that child's cumulative enqueue rank. *)
  let find_value t i =
    let rec down idx c ti =
      let n = t.nodes.(idx) in
      let b = block_exn n c and pb = block_exn n (c - 1) in
      if idx >= t.leaf0 then b.values.(ti - pb.sum_enq - 1)
      else
        let li = 2 * idx and ri = (2 * idx) + 1 in
        let sum_enq_of j l = (block_exn t.nodes.(j) l).sum_enq in
        let lcnt = sum_enq_of li b.end_left - sum_enq_of li pb.end_left in
        let local = ti - pb.sum_enq in
        if local <= lcnt then
          let ti' = sum_enq_of li pb.end_left + local in
          let c' =
            bsearch t.nodes.(li) ~lo:(pb.end_left + 1) ~hi:b.end_left
              (fun blk -> blk.sum_enq >= ti')
          in
          down li c' ti'
        else
          let ti' = sum_enq_of ri pb.end_right + (local - lcnt) in
          let c' =
            bsearch t.nodes.(ri) ~lo:(pb.end_right + 1) ~hi:b.end_right
              (fun blk -> blk.sum_enq >= ti')
          in
          down ri c' ti'
    in
    let root = t.nodes.(1) in
    let hi = last_done t 1 in
    let c = bsearch root ~lo:1 ~hi (fun b -> b.sum_enq >= i) in
    down 1 c i

  (* --- operations ------------------------------------------------- *)

  let enqueue_batch t ~tid vs =
    match vs with
    | [] -> ()
    | vs -> ignore (append t ~tid ~values:(Array.of_list vs) ~ndeq:0 : int)

  let enqueue t ~tid v = ignore (append t ~tid ~values:[| v |] ~ndeq:0 : int)

  let try_enqueue t ~tid v =
    enqueue t ~tid v;
    true

  let dequeue_batch t ~tid ~n =
    if n < 0 then invalid_arg "Polylog_queue.dequeue_batch: n";
    if n = 0 then []
    else begin
      let j = append t ~tid ~values:[||] ~ndeq:n in
      let bi, r1 = lift t (leaf_of t ~tid) j 1 in
      let root = t.nodes.(1) in
      let b = block_exn root bi and pb = block_exn root (bi - 1) in
      (* Elements dequeuable by this root block: what survived the
         previous block plus this block's own enqueues (which all
         linearize first). Ranks past that observed an empty queue. *)
      let avail = pb.size + (b.sum_enq - pb.sum_enq) in
      let rec collect k acc =
        if k = n || r1 + k > avail then List.rev acc
        else
          collect (k + 1) (find_value t (pb.sum_removed + r1 + k) :: acc)
      in
      collect 0 []
    end

  let dequeue t ~tid =
    match dequeue_batch t ~tid ~n:1 with
    | [] -> None
    | [ v ] -> Some v
    | _ -> assert false

  (* --- quiescent observers ---------------------------------------- *)

  let last_root t = block_exn t.nodes.(1) (last_done t 1)
  let length t = (last_root t).size
  let is_empty t = length t = 0

  let to_list t =
    let b = last_root t in
    List.init (b.sum_enq - b.sum_removed) (fun k ->
        find_value t (b.sum_removed + k + 1))

  let check_quiescent_invariants t =
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let rec check_node i =
      if i >= Array.length t.nodes then Ok ()
      else
        let n = t.nodes.(i) in
        let hi = last_done t i in
        if get_block n (A.get n.head) <> None then
          err "node %d: filled slot beyond head after quiescence" i
        else
          let rec walk j =
            if j > hi then check_node (i + 1)
            else
              let b = block_exn n j and pb = block_exn n (j - 1) in
              if b.sum_enq < pb.sum_enq || b.sum_deq < pb.sum_deq then
                err "node %d block %d: cumulative sums decreased" i j
              else if
                i < t.leaf0
                && (b.end_left < pb.end_left || b.end_right < pb.end_right)
              then err "node %d block %d: merge ends decreased" i j
              else if
                i = 1
                &&
                let ne = b.sum_enq - pb.sum_enq
                and nd = b.sum_deq - pb.sum_deq in
                let avail = pb.size + ne in
                let rem = min nd avail in
                b.size <> avail - rem
                || b.sum_removed <> pb.sum_removed + rem
              then err "root block %d: size recurrence violated" j
              else walk (j + 1)
          in
          walk 1
    in
    match check_node 1 with
    | Error _ as e -> e
    | Ok () ->
        (* At quiescence every leaf block has reached the root. *)
        let leaf_tot f =
          let tot = ref 0 in
          for l = t.leaf0 to (2 * t.leaf0) - 1 do
            tot := !tot + f (block_exn t.nodes.(l) (last_done t l))
          done;
          !tot
        in
        let r = last_root t in
        if r.sum_enq <> leaf_tot (fun b -> b.sum_enq) then
          err "root lost enqueues (%d merged, %d announced)" r.sum_enq
            (leaf_tot (fun b -> b.sum_enq))
        else if r.sum_deq <> leaf_tot (fun b -> b.sum_deq) then
          err "root lost dequeues (%d merged, %d announced)" r.sum_deq
            (leaf_tot (fun b -> b.sum_deq))
        else if r.size <> r.sum_enq - r.sum_removed then
          err "root size %d <> %d enqueued - %d removed" r.size r.sum_enq
            r.sum_removed
        else Ok ()

  let register_metrics t registry ~prefix =
    Wfq_obsv.Metrics.gauge registry ~name:(prefix ^ ".depth") (fun () ->
        length t);
    Wfq_obsv.Metrics.gauge registry ~name:(prefix ^ ".root_blocks")
      (fun () -> last_done t 1)

  (* --- white-box probes ------------------------------------------- *)

  module Probe = struct
    let leaves t = t.leaf0
    let root_blocks t = last_done t 1
    let leaf_blocks t ~tid = last_done t (leaf_of t ~tid)
    let root_size t = (last_root t).size
    let node_head t i = A.get t.nodes.(i).head
  end
end
