(** Michael & Scott's lock-free queue (PODC 1996) — the paper's baseline.

    Port of the Java version in Herlihy & Shavit, "The Art of Multiprocessor
    Programming", which is exactly the implementation the paper benchmarks
    against ("LF" in Figures 7-9). The queue is a singly-linked list with a
    sentinel; [tail] is lazy — it may lag at most one node behind the true
    last node (the "dangling" node), and every operation that observes the
    lag first helps advance [tail].

    [create_pooled] recycles nodes through a per-domain
    {!Wfq_primitives.Segment_pool} with quarantine {e always} on: MS has
    no claim word to carry an epoch tag, so quarantine (no reuse until
    every operation concurrent with the retirement has finished) is the
    only thing standing between a recycled node and the classic MS
    head-CAS ABA. The node's [value] is mutable for the same
    write-before-publication discipline as {!Kp_internals}.

    Progress: lock-free, not wait-free — an enqueuer whose CAS on
    [last.next] keeps losing can be starved forever (demonstrated by a
    simulator test in [test/test_sim_queues.ml]). *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  module Pool = Wfq_primitives.Segment_pool.Make (A)

  type 'a node = {
    mutable value : 'a option;
    next : 'a node option A.t;
    (* Intrusive Segment_pool link + retire stamp; dead storage while
       the node is live (see Segment_pool.ops). *)
    mutable pool_next : 'a node;
    mutable pool_stamp : int;
  }

  type 'a t = {
    head : 'a node A.t;
    tail : 'a node A.t;
    pool : 'a node Pool.t option;
  }

  let name = "ms-lock-free"

  let fresh_node' value =
    let next = A.make None in
    let rec n = { value; next; pool_next = n; pool_stamp = 0 } in
    n

  let fresh_node () = fresh_node' None

  let reset_node n =
    n.value <- None;
    A.set n.next None

  let pool_ops =
    {
      Wfq_primitives.Segment_pool.get_next = (fun n -> n.pool_next);
      set_next = (fun n m -> n.pool_next <- m);
      get_stamp = (fun n -> n.pool_stamp);
      set_stamp = (fun n s -> n.pool_stamp <- s);
    }

  let create ~num_threads:_ () =
    let sentinel = fresh_node () in
    { head = A.make sentinel; tail = A.make sentinel; pool = None }

  let create_pooled ?segment_size ~num_threads () =
    let sentinel = fresh_node () in
    let clock = Pool.Clock.create ~num_threads in
    let pool =
      Pool.create ?segment_size ~quarantine:true ~clock ~num_threads
        ~ops:pool_ops ~fresh:fresh_node ~reset:reset_node ()
    in
    { head = A.make sentinel; tail = A.make sentinel; pool = Some pool }

  let op_enter t ~tid =
    match t.pool with Some p -> Pool.enter p ~tid | None -> ()

  let op_exit t ~tid =
    match t.pool with Some p -> Pool.exit p ~tid | None -> ()

  let alloc_node t ~tid value =
    match t.pool with
    | Some p ->
        let n = Pool.alloc p ~tid in
        n.value <- Some value;
        n
    | None -> fresh_node' (Some value)

  (* Retry loops at functor level with explicit arguments: a nested
     [let rec loop] capturing [t]/[node] allocates its closure
     environment on every operation (~9 words/pair on the pairs
     workload — see EXPERIMENTS.md, fps words/op decomposition). *)
  let rec enq_loop t node =
    let last = A.get t.tail in
    let next = A.get last.next in
    if last == A.get t.tail then
      match next with
      | None ->
          if A.compare_and_set last.next None (Some node) then
            (* Lazily fix tail; failure means someone helped us. *)
            ignore (A.compare_and_set t.tail last node)
          else enq_loop t node
      | Some n ->
          (* Tail is lagging: help the in-progress enqueue, then retry. *)
          ignore (A.compare_and_set t.tail last n);
          enq_loop t node
    else enq_loop t node

  let enqueue t ~tid value =
    op_enter t ~tid;
    enq_loop t (alloc_node t ~tid value);
    op_exit t ~tid

  let rec deq_loop t ~tid =
    let first = A.get t.head in
    let last = A.get t.tail in
    let next = A.get first.next in
    if first == A.get t.head then
      if first == last then
        match next with
        | None -> None
        | Some n ->
            ignore (A.compare_and_set t.tail last n);
            deq_loop t ~tid
      else
        match next with
        | None ->
            (* head trails tail yet has no successor: transient view,
               retry. *)
            deq_loop t ~tid
        | Some n ->
            let v = n.value in
            if A.compare_and_set t.head first n then begin
              (* Unique head winner retires the old sentinel; the
                 quarantine keeps it intact for every operation that
                 started before this point. *)
              (match t.pool with
              | Some p -> Pool.release p ~tid first
              | None -> ());
              v
            end
            else deq_loop t ~tid
    else deq_loop t ~tid

  let dequeue t ~tid =
    op_enter t ~tid;
    let result = deq_loop t ~tid in
    op_exit t ~tid;
    result

  let to_list t =
    let rec collect acc node =
      match A.get node.next with
      | None -> List.rev acc
      | Some n ->
          let v = match n.value with Some v -> v | None -> assert false in
          collect (v :: acc) n
    in
    collect [] (A.get t.head)

  let length t =
    let rec count acc node =
      match A.get node.next with None -> acc | Some n -> count (acc + 1) n
    in
    count 0 (A.get t.head)

  let is_empty t = A.get (A.get t.head).next = None

  let check_quiescent_invariants t =
    let head = A.get t.head in
    let tail = A.get t.tail in
    let rec reaches node =
      if node == tail then true
      else match A.get node.next with None -> false | Some n -> reaches n
    in
    if not (reaches head) then Error "tail not reachable from head"
    else if A.get tail.next <> None then Error "dangling node after tail"
    else Ok ()

  let pool_stats t =
    match t.pool with
    | None -> None
    | Some p ->
        Some
          ( Pool.reused p,
            Pool.allocated_fresh p,
            Pool.pooled p + Pool.quarantined p )
end
