(** The in-tree backend configurations, registered once each
    (docs/BACKENDS.md). This module is the single place a new backend
    touches outside its own implementation: wrap the configured
    algorithm as a {!Queue_intf.BACKEND} and add one
    [Backend_registry.register] line — [Wfq_shard], the scheduler
    adapters, the conformance battery and [wfq_bench] all iterate the
    registry.

    Consumers must go through this module's re-exports ([all], [find],
    [ids]) rather than [Backend_registry] directly: touching [Backends]
    is what forces the registrations to run. *)

module type ATOMIC = Wfq_primitives.Atomic_intf.ATOMIC

(* --- instances ----------------------------------------------------- *)

(* The closure-record view of one live queue (see
   {!Queue_intf.instance}): how heterogeneous clients hold any backend
   without a per-backend variant. *)

let instantiate_with (type v) (module At : ATOMIC)
    (module B : Queue_intf.BACKEND) ?obsv ?pool ~num_threads () :
    v Queue_intf.instance =
  let module Q = B.Make (At) in
  let q : v Q.t = Q.create ?obsv ?pool ~num_threads () in
  {
    Queue_intf.i_name = Q.name;
    enq = (fun ~tid v -> Q.enqueue q ~tid v);
    try_enq = (fun ~tid v -> Q.try_enqueue q ~tid v);
    deq = (fun ~tid -> Q.dequeue q ~tid);
    enq_batch = (fun ~tid vs -> Q.enqueue_batch q ~tid vs);
    deq_batch = (fun ~tid ~n -> Q.dequeue_batch q ~tid ~n);
    size = (fun () -> Q.length q);
    empty = (fun () -> Q.is_empty q);
    dump = (fun () -> Q.to_list q);
    check = (fun () -> Q.check_quiescent_invariants q);
    metrics = (fun registry ~prefix -> Q.register_metrics q registry ~prefix);
  }

let instantiate b = instantiate_with (module Wfq_primitives.Real_atomic) b

(* --- the KP family ------------------------------------------------- *)

(* Both KP entries run the paper's fastest slow-path configuration,
   opt (1+2): cyclic single-thread helping, atomic phase counter. *)

module Kp_backend (C : sig
  val id : string
  val label : string
  val pool_default : bool
end) : Queue_intf.BACKEND = struct
  let id = C.id
  let label = C.label
  let family = "kp"
  let capacity = None
  let sim_safe = true

  module Make (A : ATOMIC) = struct
    module Q = Kp_queue.Make (A)
    include Q

    let create ?obsv ?pool ~num_threads () =
      let handle =
        Option.map
          (fun (r, p) -> Kp_queue.metrics r ~prefix:p ~slots:num_threads)
          obsv
      in
      let q =
        Q.create_with ?obsv:handle
          ~pool:(Option.value pool ~default:C.pool_default)
          ~help:Kp_queue.Help_one_cyclic ~phase:Kp_queue.Phase_counter
          ~num_threads ()
      in
      Option.iter (fun (r, p) -> Q.register_metrics q r ~prefix:p) obsv;
      q

    let try_enqueue t ~tid v =
      Q.enqueue t ~tid v;
      true
  end
end

module Kp_opt12 = Kp_backend (struct
  let id = "kp-opt12"
  let label = "opt WF (1+2)"
  let pool_default = false
end)

module Kp_opt12_pooled = Kp_backend (struct
  let id = "kp-opt12-pooled"
  let label = "opt WF (1+2) pooled"
  let pool_default = true
end)

(* --- the fast-path/slow-path family -------------------------------- *)

module Fps_backend (C : sig
  val id : string
  val label : string
  val pool_default : bool
end) : Queue_intf.BACKEND = struct
  let id = C.id
  let label = C.label
  let family = "fps"
  let capacity = None
  let sim_safe = true

  module Make (A : ATOMIC) = struct
    module Q = Kp_queue_fps.Make (A)
    include Q

    let create ?obsv ?pool ~num_threads () =
      let handle =
        Option.map
          (fun (r, p) -> Kp_queue_fps.metrics r ~prefix:p ~slots:num_threads)
          obsv
      in
      let q =
        Q.create_with ?obsv:handle
          ~pool:(Option.value pool ~default:C.pool_default)
          ~max_failures:Kp_queue_fps.default_max_failures
          ~help:Kp_queue_fps.Help_one_cyclic
          ~phase:Kp_queue_fps.Phase_counter ~num_threads ()
      in
      Option.iter (fun (r, p) -> Q.register_metrics q r ~prefix:p) obsv;
      q

    let try_enqueue t ~tid v =
      Q.enqueue t ~tid v;
      true
  end
end

module Fps_default = Fps_backend (struct
  let id = "fps"
  let label = "WF fps"
  let pool_default = false
end)

module Fps_pooled = Fps_backend (struct
  let id = "fps-pooled"
  let label = "WF fps pooled"
  let pool_default = true
end)

(* --- the bounded ring ---------------------------------------------- *)

module Ring_default : Queue_intf.BACKEND = struct
  let id = "ring"
  let label = "WF ring"
  let family = "ring"
  let capacity = Some Ring_queue.default_capacity
  let sim_safe = true

  module Make (A : ATOMIC) = struct
    module Q = Ring_queue.Make (A)
    include Q

    (* Flat pre-allocated slots: [?pool] is meaningless and ignored. *)
    let create ?obsv ?pool:_ ~num_threads () =
      let handle =
        Option.map
          (fun (r, p) -> Ring_queue.metrics r ~prefix:p ~slots:num_threads)
          obsv
      in
      let q = Q.create_with ?obsv:handle ~num_threads () in
      Option.iter (fun (r, p) -> Q.register_metrics q r ~prefix:p) obsv;
      q
  end
end

(* --- the polylog tournament tree ----------------------------------- *)

module Polylog : Queue_intf.BACKEND = struct
  let id = "polylog"
  let label = "WF polylog"
  let family = "polylog"
  let capacity = None
  let sim_safe = true

  module Make (A : ATOMIC) = struct
    module Q = Polylog_queue.Make (A)
    include Q

    (* Append-only block logs: no nodes to recycle, [?pool] ignored. *)
    let create ?obsv ?pool:_ ~num_threads () =
      let handle =
        Option.map
          (fun (r, p) -> Polylog_queue.metrics r ~prefix:p ~slots:num_threads)
          obsv
      in
      let q = Q.create_with ?obsv:handle ~num_threads () in
      Option.iter (fun (r, p) -> Q.register_metrics q r ~prefix:p) obsv;
      q
  end
end

(* --- registration (one line per backend) --------------------------- *)

let () = Backend_registry.register (module Kp_opt12)
let () = Backend_registry.register (module Kp_opt12_pooled)
let () = Backend_registry.register (module Fps_default)
let () = Backend_registry.register (module Fps_pooled)
let () = Backend_registry.register (module Ring_default)
let () = Backend_registry.register (module Polylog)

(* Re-exports: the registry view every consumer should use. *)
let all = Backend_registry.all
let find = Backend_registry.find
let ids = Backend_registry.ids
