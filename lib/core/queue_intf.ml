(** Common signature implemented by every queue in this library.

    All operations take the caller's thread ID [tid], a small integer in
    [0, num_threads). The wait-free algorithms index their per-thread
    [state] slots by [tid]; baselines that do not need thread identity
    simply ignore it. Dynamic threads can obtain a [tid] from
    [Wfq_registry]. *)

module type QUEUE = sig
  type 'a t

  val name : string
  (** Short algorithm name used in benchmark output. *)

  val create : num_threads:int -> unit -> 'a t
  (** [create ~num_threads ()] makes an empty queue usable by threads with
      IDs [0 .. num_threads - 1]. [num_threads] may be a non-strict upper
      bound, as in the paper. *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Linearizable FIFO insert. *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Linearizable FIFO remove; [None] iff the queue was observed empty at
      the linearization point (the paper throws [EmptyException]). *)

  val is_empty : 'a t -> bool
  (** Snapshot emptiness test. Only meaningful at quiescence (it is exact
      then); under concurrency it is a best-effort hint. *)

  val length : 'a t -> int
  (** Number of elements, by traversal. Quiescent use only. *)

  val to_list : 'a t -> 'a list
  (** Front-to-back contents. Quiescent use only. *)
end

(** Queues that expose internal-structure invariant checks for tests. *)
module type CHECKABLE_QUEUE = sig
  include QUEUE

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** Verify the internal linked-list invariants that must hold once all
      operations have returned (e.g. [tail] points at the last node, no
      dangling node, [head] reaches [tail]). *)
end

(** Queues usable as scheduler run-queues ([Wfq_sched]): the core
    operations plus the uniform observability hookup. Every backend the
    scheduler can select (KP, fast-path/slow-path, the sharded
    front-end) satisfies this signature, so the scheduler — and any
    other client — gets the full metrics battery from any of them with
    one call. *)
module type RUN_QUEUE = sig
  include QUEUE

  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  (** Insert all elements, list head first, through the backend's native
      batch path (one descriptor/claim cycle amortized over the batch,
      docs/BATCHING.md). The batch's elements preserve FIFO order
      relative to each other; whether the whole batch is atomic (KP
      family: one linearizing CAS) or per-element (ring, shard spread)
      is the backend's documented choice. [enqueue_batch t ~tid []] is a
      no-op. Bounded backends raise their full-queue exception; the
      already-accepted prefix remains enqueued. *)

  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list
  (** Remove up to [n] elements in FIFO order; a short result means the
      queue was observed empty at the final element's linearization
      point. Each element linearizes individually (a batch dequeue is
      never an atomic multi-dequeue). Raises [Invalid_argument] for
      negative [n]. *)

  val register_metrics : 'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Attach the queue's always-on diagnostics to [registry] under
      [prefix ^ ".<metric>"]. Uniform contract: at minimum a
      [prefix ^ ".depth"] gauge (polled at snapshot time only — may
      traverse), plus whatever counters the backend owns (path
      counters, pool stats, per-shard matrices). Registration is
      construction-path only; it must never add hot-path work. *)
end
