(** Common signature implemented by every queue in this library.

    All operations take the caller's thread ID [tid], a small integer in
    [0, num_threads). The wait-free algorithms index their per-thread
    [state] slots by [tid]; baselines that do not need thread identity
    simply ignore it. Dynamic threads can obtain a [tid] from
    [Wfq_registry]. *)

module type QUEUE = sig
  type 'a t

  val name : string
  (** Short algorithm name used in benchmark output. *)

  val create : num_threads:int -> unit -> 'a t
  (** [create ~num_threads ()] makes an empty queue usable by threads with
      IDs [0 .. num_threads - 1]. [num_threads] may be a non-strict upper
      bound, as in the paper. *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Linearizable FIFO insert. *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Linearizable FIFO remove; [None] iff the queue was observed empty at
      the linearization point (the paper throws [EmptyException]). *)

  val is_empty : 'a t -> bool
  (** Snapshot emptiness test. Only meaningful at quiescence (it is exact
      then); under concurrency it is a best-effort hint. *)

  val length : 'a t -> int
  (** Number of elements, by traversal. Quiescent use only. *)

  val to_list : 'a t -> 'a list
  (** Front-to-back contents. Quiescent use only. *)
end

(** Queues that expose internal-structure invariant checks for tests. *)
module type CHECKABLE_QUEUE = sig
  include QUEUE

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** Verify the internal linked-list invariants that must hold once all
      operations have returned (e.g. [tail] points at the last node, no
      dangling node, [head] reaches [tail]). *)
end

(** Queues usable as scheduler run-queues ([Wfq_sched]): the core
    operations plus the uniform observability hookup. Every backend the
    scheduler can select (KP, fast-path/slow-path, the sharded
    front-end) satisfies this signature, so the scheduler — and any
    other client — gets the full metrics battery from any of them with
    one call. *)
module type RUN_QUEUE = sig
  include QUEUE

  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  (** Insert all elements, list head first, through the backend's native
      batch path (one descriptor/claim cycle amortized over the batch,
      docs/BATCHING.md). The batch's elements preserve FIFO order
      relative to each other; whether the whole batch is atomic (KP
      family: one linearizing CAS) or per-element (ring, shard spread)
      is the backend's documented choice. [enqueue_batch t ~tid []] is a
      no-op. Bounded backends raise their full-queue exception; the
      already-accepted prefix remains enqueued. *)

  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list
  (** Remove up to [n] elements in FIFO order; a short result means the
      queue was observed empty at the final element's linearization
      point. Each element linearizes individually (a batch dequeue is
      never an atomic multi-dequeue). Raises [Invalid_argument] for
      negative [n]. *)

  val register_metrics : 'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Attach the queue's always-on diagnostics to [registry] under
      [prefix ^ ".<metric>"]. Uniform contract: at minimum a
      [prefix ^ ".depth"] gauge (polled at snapshot time only — may
      traverse), plus whatever counters the backend owns (path
      counters, pool stats, per-shard matrices). Registration is
      construction-path only; it must never add hot-path work. *)
end

(** The uniform backend signature (ROADMAP item 5, docs/BACKENDS.md):
    one configured queue algorithm with the complete plumbing every
    client in the tree consumes — core ops, native batches, the bounded
    insert, quiescent observers, the structural audit, and the metrics
    hookup. A module satisfying [QUEUE_BACKEND] (wrapped in a {!BACKEND}
    and registered once in {!Backend_registry} via [Backends]) is picked
    up by [Wfq_shard], the scheduler's run-queue adapters, the lincheck
    and DPOR conformance batteries, and [wfq_bench] with zero
    per-backend edits anywhere outside [lib/core].

    Configuration (helping policy, capacity, fast-path budget, …) is
    baked into the module: a registry entry is one {e configured}
    algorithm, so clients never thread backend-specific arguments. *)
module type QUEUE_BACKEND = sig
  type 'a t

  val name : string

  val create :
    ?obsv:Wfq_obsv.Metrics.t * string ->
    ?pool:bool ->
    num_threads:int ->
    unit ->
    'a t
  (** [?obsv:(registry, prefix)] attaches the backend's hot-path
      instrumentation (and the {!RUN_QUEUE} [.depth] gauge contract) at
      construction; [?pool] requests node/descriptor recycling where the
      backend supports it and is ignored where it is meaningless (the
      ring and other flat-array structures allocate nothing per op). *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Unconditional insert; bounded backends raise their full-queue
      exception. *)

  val try_enqueue : 'a t -> tid:int -> 'a -> bool
  (** Bounded-aware insert: [false] iff the queue was full at the
      linearization point. Unbounded backends always return [true]. *)

  val dequeue : 'a t -> tid:int -> 'a option
  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list

  (** Quiescent observers, as in {!QUEUE}. *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val to_list : 'a t -> 'a list

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** Structural audit at quiescence; the conformance battery and the
      DPOR litmuses run it after every schedule. *)

  val register_metrics : 'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** {!RUN_QUEUE} metrics contract: at minimum [prefix ^ ".depth"]. *)
end

(** A registrable backend: {!QUEUE_BACKEND} behind the [ATOMIC] functor
    (so the same text runs on [Real_atomic] domains and on
    [Wfq_sim.Sim_atomic] under the model checker) plus the metadata the
    generic drivers need to treat it correctly. *)
module type BACKEND = sig
  val id : string
  (** Registry key, kebab-case ("kp-opt12", "fps-pooled", "polylog"). *)

  val label : string
  (** Display name used in benchmark legends ("opt WF (1+2)"). *)

  val family : string
  (** Algorithm family ("kp", "fps", "ring", "polylog"). *)

  val capacity : int option
  (** [Some c] for bounded backends: the conformance battery switches to
      the bounded-queue lincheck spec and uses [try_enqueue]. *)

  val sim_safe : bool
  (** Whether the backend may run under [Sim_atomic] (every shared
      mutable cell goes through the functor argument); [false] opts out
      of the DPOR/lincheck battery, keeping the real-domain suites. *)

  module Make (_ : Wfq_primitives.Atomic_intf.ATOMIC) : QUEUE_BACKEND
end

(** One live queue as a record of closures — the runtime-polymorphic
    view of a {!BACKEND} that lets heterogeneous clients ([Wfq_shard]'s
    shard array, the registry-driven test and bench drivers) hold any
    backend without a per-backend variant. Built by
    [Backends.instantiate]. *)
type 'a instance = {
  i_name : string;
  enq : tid:int -> 'a -> unit;
  try_enq : tid:int -> 'a -> bool;
  deq : tid:int -> 'a option;
  enq_batch : tid:int -> 'a list -> unit;
  deq_batch : tid:int -> n:int -> 'a list;
  size : unit -> int;
  empty : unit -> bool;
  dump : unit -> 'a list;
  check : unit -> (unit, string) result;
  metrics : Wfq_obsv.Metrics.t -> prefix:string -> unit;
}
