(** Michael & Scott's lock-free queue (PODC 1996) — the baseline the
    paper compares against ("LF" in its figures).

    Linearizable MPMC FIFO; lock-free but not wait-free: an individual
    thread's CAS can lose arbitrarily often while the system as a whole
    makes progress (demonstrated by a simulator test). [tid] is ignored
    by [create]d queues and used as the pool-slot index by
    [create_pooled] ones (where it must be a distinct value in
    [0, num_threads), as for the KP family). *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  include Queue_intf.CHECKABLE_QUEUE

  val create_pooled : ?segment_size:int -> num_threads:int -> unit -> 'a t
  (** Like [create], but nodes are recycled through a per-domain
      {!Wfq_primitives.Segment_pool} with epoch-quarantine always
      enabled — MS has no claim word to epoch-tag, so quarantine is the
      sole ABA defense for its head CAS. *)

  val pool_stats : 'a t -> (int * int * int) option
  (** [(reused, fresh, parked)] at quiescence; [None] for unpooled
      queues. *)
end
