(** Bounded-memory wait-free MPMC ring (ROADMAP item 1, the wCQ
    recipe: arXiv:2201.02179 and "Memory-Optimal Non-Blocking Queues").

    A fixed-capacity slot array replaces the KP family's linked list:
    zero steady-state allocation (no node per element — elements live
    in pre-allocated padded slots) and array locality on the hot path.
    Each slot is one atomic cell carrying its absolute position, so a
    single physical-equality CAS installs or removes a value {e and}
    validates the lap; [head]/[tail] are position hints (lagging their
    true values by at most one) advanced by CAS after the slot
    transition they summarize. The fast path is a bounded number of
    validated slot-CAS rounds ([max_failures]); after that the
    operation publishes a KP descriptor and is driven to completion by
    the phase-helping protocol of {!Kp_queue}/{!Kp_queue_fps} (claim a
    position in the descriptor, install/take by slot CAS, publish the
    outcome before advancing the hint). Every operation — including
    enqueue-on-full and dequeue-on-empty, which linearize at validated
    slot reads — completes in a bounded number of its own steps.

    Bounded semantics: [try_enqueue] returns [false] on a full ring,
    [enqueue] raises {!Ring_full}, [dequeue] returns [None] on empty.

    Thread identity: as for {!Kp_queue}, every participating thread
    owns a distinct [tid] in [0, num_threads).

    docs/RING.md has the protocol walkthrough, the claim/rollback
    state machine and the wait-freedom argument. *)

exception Ring_full
(** Raised by [enqueue] when the ring holds [capacity] elements. *)

val default_capacity : int
(** Slot count used by {!Make.create} (1024). *)

val default_max_failures : int
(** Fast-path attempt budget used by {!Make.create} (64, as in
    {!Kp_queue_fps}). *)

type metrics
(** Instrumentation handle ({!Wfq_obsv}): slow-path entries, peer-help
    dispatches, fast-path retries, full rejections (per-tid
    single-writer counters) and an occupancy histogram sampled from
    plain position hints — no extra shared-cell traffic, invisible to
    the model checker. *)

val metrics : Wfq_obsv.Metrics.t -> prefix:string -> slots:int -> metrics
(** Create the handle and register its metrics under
    [prefix ^ ".slow_entries"/".help_events"/".fast_retries"/
    ".full_rejections"/".occupancy"/".batch_size"/".batch_cas"].
    [batch_size] is a histogram of elements per batch operation;
    [batch_cas] counts the slot/hint CASes issued by fast-path batch
    owners, so [batch_cas / sum(batch_size)] is the amortized
    CAS-per-element figure (docs/BATCHING.md). [slots] must be the
    ring's [num_threads]. *)

(** Test-only seeded bug (never pass in production code): the checker's
    ability to find and shrink it is itself under test. *)
type fault =
  | Rollback_skipped
      (** The slow-path enqueue helper rolls a claimed position back
          without first validating that its own install did not land,
          so other helpers re-claim and install the value again —
          duplicate elements, caught by DPOR's conservation check. *)

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string

  val create : num_threads:int -> unit -> 'a t
  (** Default configuration: {!default_capacity} slots,
      {!default_max_failures} fast rounds. *)

  val create_with :
    ?capacity:int ->
    ?max_failures:int ->
    ?fault:fault ->
    ?obsv:metrics ->
    num_threads:int ->
    unit ->
    'a t
  (** [capacity] is the fixed slot count (allocation happens only
      here). [max_failures] bounds the fast path; [0] goes straight to
      the helping slow path (the all-slow configuration the DPOR
      litmuses check). Raises [Invalid_argument] for
      [num_threads <= 0], [capacity <= 0] or negative [max_failures]. *)

  val capacity : 'a t -> int

  val try_enqueue : 'a t -> tid:int -> 'a -> bool
  (** Wait-free linearizable bounded insert: [false] means the ring
      held [capacity] elements at the linearization point (a validated
      read of the still-occupied slot one lap behind the tail). *)

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** [try_enqueue], raising {!Ring_full} on a full ring. *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Wait-free linearizable remove; [None] means empty at the
      linearization point (a validated read of the still-free slot at
      the head position). *)

  (** {2 Batch operations}

      Per-element validated slot rounds under one shared fast-path
      budget and a single helping check; exhausting the budget
      publishes {e one} slow-path descriptor covering the whole
      remaining run, driven element-by-element by helpers (the
      contiguous-run claim — the segment hand-off deferred from PR 7,
      docs/BATCHING.md). Each element linearizes at its own slot CAS
      (the batch is {e not} atomic), so batches compose with single
      operations and with each other. Wait-free with the per-operation
      step bound scaled by the batch size. *)

  val try_enqueue_batch : 'a t -> tid:int -> 'a list -> int
  (** Enqueue elements in list order, stopping at the first element
      that finds the ring full (a validated read, as for
      {!try_enqueue}); returns how many were accepted. The accepted
      prefix stays enqueued. [try_enqueue_batch t ~tid []] is [0]. *)

  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  (** [try_enqueue_batch], raising {!Ring_full} when any element is
      rejected — the accepted prefix {e remains enqueued}; use
      {!try_enqueue_batch} when the producer can shed. *)

  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list
  (** Dequeue up to [n] elements in FIFO order; a result shorter than
      [n] means the ring was observed empty at the final element's
      linearization point. Raises [Invalid_argument] for negative
      [n]. *)

  (** {2 Quiescent observers} — callers guarantee no concurrent
      operations; these do not linearize with running ones. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val to_list : 'a t -> 'a list

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** Structural audit at quiescence: hints ordered and within
      capacity, no pending descriptors, no [slow_pending] residue, and
      every slot in the exact [Free]/[Full] state its position
      interval dictates (no [Taken] residue). *)

  val register_metrics :
    'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Uniform backend contract (PR 6): registers [prefix ^ ".depth"]
      and [prefix ^ ".capacity"] gauges. Hot-path counters come from
      passing [?obsv] at creation. *)

  (** White-box probes for tests. *)
  module Probe : sig
    val head : 'a t -> int
    val tail : 'a t -> int

    val slot_state :
      'a t -> int -> [ `Free of int | `Full of int * int | `Taken of int * int ]
    (** Slot [j]'s cell as [(position, tid)]; tid [-1] = fast path. *)

    val desc_pending : 'a t -> int -> bool
    val desc_target : 'a t -> int -> int
  end
end
