(** The Kogan-Petrank wait-free MPMC queue (PPoPP 2011) — the paper's
    contribution.

    Faithful port of the Java pseudocode in the paper's Figures 1, 2, 4
    and 6; comments of the form "L74" refer to the paper's line numbers.

    The queue extends Michael & Scott's lock-free queue with a phase-based
    helping scheme. Every thread owns a slot in the [state] array holding
    its current {e operation descriptor} (phase, pending flag, operation
    type, node). An operation (paper §3.1):

    + picks a phase strictly larger than every phase chosen before it
      (Lamport-bakery-style doorway),
    + publishes its descriptor, and
    + helps every pending operation whose phase is ≤ its own, its own
      included, before returning.

    Each operation type is split into three atomic steps so helpers apply
    it exactly once: (1) mutate the list — the linearization point, (2)
    flip [pending] to false in the owner's descriptor, (3) fix [tail]
    (enqueue) or [head] (dequeue). Step (1) is a CAS on [last.next]
    (enqueue, L74) or on the first node's [deq_tid] field (dequeue, L135).

    Both §3.3 optimizations are provided as construction-time policies:
    {!help_policy} [Help_one_cyclic] (help at most one other thread per
    operation, scanning [state] cyclically — preserves wait-freedom
    because a thread can bypass a given peer at most [num_threads]
    consecutive times) and {!phase_policy} [Phase_counter] (derive the
    phase from a shared counter bumped with a result-ignored CAS — the
    paper's footnote 3 — instead of scanning [state]).

    The node / linked-list representation lives in {!Kp_internals} and is
    shared with the fast-path/slow-path variant {!Kp_queue_fps}. The
    [state] slots are cache-line padded ([Wfq_primitives.Padded]): they
    are per-thread and CASed under contention, so packing them into
    adjacent heap words would false-share lines between helpers.

    Progress: wait-free with the [Phase_scan]/[Help_all] and
    [Phase_counter]/[Help_one_cyclic] combinations alike; population-
    oblivious in no case (the bound depends on [num_threads], §3.3). *)

type help_policy =
  | Help_all  (** base algorithm: scan the whole [state] array (L36-47) *)
  | Help_one_cyclic
      (** optimization 1: help at most one other pending operation per call,
          choosing candidates cyclically *)
  | Help_chunk of int
      (** §3.3 generalization of optimization 1: traverse a cyclic chunk of
          [k] candidates per operation ("indexes 0 through k-1 mod n ...
          in the second invocation k mod n through 2k-1 mod n, and so
          on"). [Help_chunk 1] behaves like {!Help_one_cyclic};
          [Help_chunk (n-1)] approaches {!Help_all}. Wait-freedom is
          preserved: a thread bypasses a given peer at most [ceil (n/k)]
          consecutive times. *)

type phase_policy =
  | Phase_scan  (** base algorithm: [maxPhase()] scan (L48-57) *)
  | Phase_counter
      (** optimization 2: atomic counter bumped by a CAS whose result is
          deliberately ignored (footnote 3) *)

(** The further enhancements sketched in §3.3, off by default (the paper
    evaluates the base and optimized variants without them). *)
type tuning = {
  gc_friendly : bool;
      (** enhancement 2: before returning from an operation, overwrite
          the thread's descriptor with a dummy holding no node reference,
          so a long-dequeued node cannot be kept live by a stale
          descriptor (the paper's "considered by the garbage collector as
          a live object" leak) *)
  validate_before_cas : bool;
      (** enhancement 3: read the pending flag before the descriptor
          CASes of L93/L149 and skip the allocation + CAS when the flag
          is already off *)
}

let default_tuning = { gc_friendly = false; validate_before_cas = false }

(* Instrumentation handle (Wfq_obsv): per-tid single-writer cells only,
   so an instrumented queue performs no extra shared-cell traffic — the
   protocol's atomic-step traces are identical with and without it
   (test/test_obsv.ml pins this under DPOR). [None] compiles the hot
   paths down to the uninstrumented match arm. *)
type metrics = {
  m_help : Wfq_obsv.Counter.t;
      (* peer-help dispatches, per helper tid (paper L36-47 scans that
         found a pending peer; self-dispatches are not counted) *)
  m_phase_lag : Wfq_obsv.Histogram.t;
      (* helper's phase minus the helped peer descriptor's phase at
         dispatch time: how far behind the operations we rescue are *)
  m_desc_cas_fail : Wfq_obsv.Counter.t;
      (* descriptor-completion/publication CASes lost to a racing
         helper (every [drop_desc] site) *)
  m_phase_cas_lost : Wfq_obsv.Counter.t;
      (* Phase_counter bumps whose CAS failed (footnote 3): the bump is
         lost, the phase is shared with the winner — harmless for
         correctness, but previously invisible *)
  m_batch_size : Wfq_obsv.Histogram.t;
      (* elements per batch operation (enqueue_batch chain length /
         dequeue_batch want), recorded once per batch at entry — the
         denominator of the amortized-CAS story (docs/BATCHING.md) *)
}

let metrics registry ~prefix ~slots =
  let open Wfq_obsv in
  {
    m_help = Metrics.counter registry ~name:(prefix ^ ".help_events") ~slots;
    m_phase_lag =
      Metrics.histogram registry ~name:(prefix ^ ".phase_lag") ~slots;
    m_desc_cas_fail =
      Metrics.counter registry ~name:(prefix ^ ".desc_cas_failures") ~slots;
    m_phase_cas_lost =
      Metrics.counter registry ~name:(prefix ^ ".phase_cas_lost") ~slots;
    m_batch_size =
      Metrics.histogram registry ~name:(prefix ^ ".batch_size") ~slots;
  }

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  module N = Kp_internals.Make (A)
  open N

  (* Per-thread descriptor slots are cache-line padded: two helpers
     CASing logically-independent slots must not invalidate each other's
     line (see lib/primitives/padded.mli). *)
  module P = Wfq_primitives.Padded.Make (A)

  module Pool = Wfq_primitives.Segment_pool.Make (A)

  (* Paper Figure 1, lines 13-24. State slots advance by physical-
     equality CAS exactly like Java reference CAS. The fields are
     mutable only to support descriptor recycling (the §3.3 gc-friendly
     reset generalized): a pooled record's fields are written by its
     allocator {e before} it is published through the slot's atomic
     CAS/exchange, and never after — so every reader that can reach the
     record observes frozen values, exactly as with immutable records.
     Stale readers that still hold a displaced record are covered by the
     pool's quarantine: the record cannot be recycled (hence re-written)
     until they finish their operation. *)
  type 'a op_desc = {
    mutable phase : int;
    mutable pending : bool;
    mutable enqueue : bool;
    mutable node : 'a N.node option;
    (* Batch extension. A batch enqueue publishes one descriptor for a
       pre-linked chain of nodes: [node] is the chain's first node (the
       single L74 CAS linearizes the whole chain) and [last_node] its
       last, so [help_finish_enq] fixes [tail] with one jump over the
       batch. A batch dequeue publishes [want] > 0; each element claim
       appends its value to [taken] (length cached in [got_n]) by
       replacing the whole record, and the operation stays pending
       until [got_n = want] or the queue empties. Single operations
       keep [last_node = None] and [want = 0] and behave exactly as
       before. *)
    mutable last_node : 'a N.node option;
    mutable want : int;
    mutable got_n : int;
    mutable taken : 'a list;
    (* Intrusive Segment_pool link + retire stamp (see
       Segment_pool.ops); dead storage while the descriptor is
       published. *)
    mutable pool_next : 'a op_desc;
    mutable pool_stamp : int;
  }

  let fresh_desc () =
    let rec d =
      { phase = -1; pending = false; enqueue = true; node = None;
        last_node = None; want = 0; got_n = 0; taken = [];
        pool_next = d; pool_stamp = 0 }
    in
    d

  let desc_ops =
    {
      Wfq_primitives.Segment_pool.get_next = (fun d -> d.pool_next);
      set_next = (fun d e -> d.pool_next <- e);
      get_stamp = (fun d -> d.pool_stamp);
      set_stamp = (fun d s -> d.pool_stamp <- s);
    }

  (* Allocation recycling (the PR's tentpole): one pool of list nodes
     and one of descriptors, sharing a single epoch clock — one
     enter/exit announcement per queue operation covers both. [descs]
     is [None] when quarantine is disabled: descriptor reuse is only
     sound under quarantine (a stale helper still dereferences the
     displaced record's fields), whereas node reuse with the epoch tag
     alone is exactly what the model-checking scenario isolates. *)
  type 'a pools = {
    nodes : 'a N.node Pool.t;
    descs : 'a op_desc Pool.t option;
  }

  type 'a t = {
    head : 'a N.node A.t; (* L25 *)
    tail : 'a N.node A.t; (* L25 *)
    state : 'a op_desc P.t array; (* L26 *)
    phase_counter : int A.t; (* optimization 2 (§3.3) *)
    help_policy : help_policy;
    phase_policy : phase_policy;
    tuning : tuning;
    help_cursor : int array;
        (* per-tid cyclic cursor for the cyclic helping policies;
           single-writer *)
    num_threads : int;
    pools : 'a pools option;
    obsv : metrics option;
    idle_desc : 'a op_desc;
        (* the shared construction-time descriptor; never pool-released *)
  }

  let name = "kp-wait-free"

  let create_with ?(tuning = default_tuning) ?(pool = false)
      ?pool_segment ?(pool_quarantine = true) ?obsv ~help ~phase
      ~num_threads () =
    if num_threads <= 0 then invalid_arg "Kp_queue.create: num_threads";
    (match help with
    | Help_chunk k when k <= 0 ->
        invalid_arg "Kp_queue.create: chunk size must be positive"
    | Help_all | Help_one_cyclic | Help_chunk _ -> ());
    (match pool_segment with
    | Some k when k <= 0 ->
        invalid_arg "Kp_queue.create: pool_segment must be positive"
    | _ -> ());
    let sentinel = make_sentinel () in
    let idle = fresh_desc () in
    let pools =
      if not pool then None
      else begin
        let clock = Pool.Clock.create ~num_threads in
        let nodes =
          Pool.create ?segment_size:pool_segment
            ~quarantine:pool_quarantine ~clock ~num_threads ~ops:N.pool_ops
            ~fresh:make_sentinel ~reset:N.recycle ()
        in
        let descs =
          if pool_quarantine then
            Some
              (Pool.create ?segment_size:pool_segment ~quarantine:true
                 ~clock ~num_threads ~ops:desc_ops ~fresh:fresh_desc
                 ~reset:(fun _ -> ()) ())
          else None
        in
        Some { nodes; descs }
      end
    in
    {
      head = A.make sentinel;
      tail = A.make sentinel;
      state = Array.init num_threads (fun _ -> P.make idle);
      phase_counter = A.make (-1);
      help_policy = help;
      phase_policy = phase;
      tuning;
      help_cursor = Array.make num_threads 0;
      num_threads;
      pools;
      obsv;
      idle_desc = idle;
    }

  let create ~num_threads () =
    create_with ~help:Help_all ~phase:Phase_scan ~num_threads ()

  (* ------------------------------------------------------------------ *)
  (* Pool plumbing. [self] is always the {e executing} thread's tid —    *)
  (* a helper allocates and releases through its own pool slot, never    *)
  (* the helped thread's (the slots are single-owner).                   *)
  (* ------------------------------------------------------------------ *)

  let op_enter t ~tid =
    match t.pools with Some p -> Pool.enter p.nodes ~tid | None -> ()

  let op_exit t ~tid =
    match t.pools with Some p -> Pool.exit p.nodes ~tid | None -> ()

  let alloc_node t ~self ~enq_tid value =
    match t.pools with
    | Some p ->
        let n = Pool.alloc p.nodes ~tid:self in
        n.N.value <- Some value;
        n.N.enq_tid <- enq_tid;
        n
    | None -> make_node ~enq_tid value

  (* Called by the unique winner of the head-swing CAS: at that point
     the old sentinel is unreachable from the queue, and the pool's
     quarantine keeps it intact until every in-flight operation (which
     may still hold a reference from an earlier head read) finishes. *)
  let release_node t ~self n =
    match t.pools with
    | Some p -> Pool.release p.nodes ~tid:self n
    | None -> ()

  (* Full-arity allocator: the batch protocol threads [last]/[want]/
     [got]/[taken] through every record transition. [mk_desc] below is
     the single-operation shorthand. *)
  let mk_desc_b t ~self ~phase ~pending ~enqueue ~last ~want ~got ~taken
      ~node =
    match t.pools with
    | Some { descs = Some dp; _ } ->
        let d = Pool.alloc dp ~tid:self in
        d.phase <- phase;
        d.pending <- pending;
        d.enqueue <- enqueue;
        d.node <- node;
        d.last_node <- last;
        d.want <- want;
        d.got_n <- got;
        d.taken <- taken;
        d
    | _ ->
        let rec d =
          { phase; pending; enqueue; node; last_node = last; want;
            got_n = got; taken; pool_next = d; pool_stamp = 0 }
        in
        d

  let mk_desc t ~self ~phase ~pending ~enqueue ~node =
    mk_desc_b t ~self ~phase ~pending ~enqueue ~last:None ~want:0 ~got:0
      ~taken:[] ~node

  (* A descriptor that lost its publication CAS was never visible to
     anyone: back to the pool immediately. Every call site is a lost
     descriptor CAS, so this is also the counting point. *)
  let drop_desc t ~self d =
    (match t.obsv with
    | Some m -> Wfq_obsv.Counter.incr m.m_desc_cas_fail ~slot:self
    | None -> ());
    match t.pools with
    | Some { descs = Some dp; _ } -> Pool.release dp ~tid:self d
    | _ -> ()

  (* The record displaced by a successful publication. Physical-equality
     CAS (and the owner's atomic exchange) guarantee a unique displacer
     per record, so each is retired exactly once. *)
  let retire_desc t ~self d =
    if d != t.idle_desc then
      match t.pools with
      | Some { descs = Some dp; _ } -> Pool.release dp ~tid:self d
      | _ -> ()

  (* Owner-side publication. Unpooled: the historical plain store.
     Pooled: an atomic exchange, so the displaced record is recovered
     without racing a helper's completion CAS on the same slot (a plain
     read-then-store pair could retire a record a concurrent helper
     just displaced, double-releasing it). *)
  let publish t ~tid d =
    match t.pools with
    | Some { descs = Some _; _ } ->
        retire_desc t ~self:tid (P.exchange t.state.(tid) d)
    | _ -> P.set t.state.(tid) d

  (* L48-57 *)
  let max_phase t =
    Array.fold_left
      (fun acc slot -> max acc (P.get slot).phase)
      (-1) t.state

  let next_phase t ~tid =
    match t.phase_policy with
    | Phase_scan -> max_phase t + 1
    | Phase_counter ->
        (* Footnote 3: a failed CAS just means another thread picked the
           same phase, which is harmless for correctness — the phase
           need not be unique, only non-decreasing — so the bump is
           dropped rather than retried. The drop used to be silent;
           [m_phase_cas_lost] now counts it (the satellite bugfix:
           duplicated phases mean extra helping traffic, worth seeing). *)
        let cur = A.get t.phase_counter in
        if not (A.compare_and_set t.phase_counter cur (cur + 1)) then begin
          match t.obsv with
          | Some m -> Wfq_obsv.Counter.incr m.m_phase_cas_lost ~slot:tid
          | None -> ()
        end;
        cur + 1

  (* L58-60 *)
  let is_still_pending t tid phase =
    let desc = P.get t.state.(tid) in
    desc.pending && desc.phase <= phase

  (* ------------------------------------------------------------------ *)
  (* Enqueue (paper Figure 4)                                           *)
  (* ------------------------------------------------------------------ *)

  (* L85-97: finish the in-progress enqueue, if any. Steps (2) and (3) of
     the scheme: flip the owner's pending flag, then advance [tail]. The
     descriptor CAS (L93) can succeed more than once per node — benign,
     because the replacement descriptor is identical each time.

     Batch extension: when the appended node heads a pre-linked chain,
     the (validated-fresh) descriptor carries the chain's last node and
     the tail fix jumps over the whole batch in one CAS. The jump is
     safe for the head/tail ordering invariant: claims only happen
     after reading [tail] strictly ahead of [head], so no dequeuer can
     enter the chain before the jump lands, and the CAS-from-[last]
     guarantees the jump only moves [tail] forward. *)
  let help_finish_enq t ~self =
    let last = A.get t.tail in
    let next_o = A.get last.next in
    match next_o with
    | None -> ()
    | Some next ->
        let tid = next.enq_tid in
        (* L89: only real enqueued nodes ever follow [tail]. *)
        assert (tid >= 0 && tid < t.num_threads);
        let cur_desc = P.get t.state.(tid) in
        (* L91: verify the slot still refers to the node just appended;
           guards against racing [help_finish_enq] calls. The jump
           target comes from the {e fresh} descriptor read (the one the
           guard validated against [next_o]), never from [cur_desc]: a
           stale [cur_desc] from an older operation merely loses its
           completion CAS, but a stale [last_node] would teleport
           [tail]. *)
        if last == A.get t.tail then begin
          let slot_desc = P.get t.state.(tid) in
          if slot_desc.node == next_o then begin
            let target =
              match slot_desc.last_node with Some l -> l | None -> next
            in
            (* Enhancement 3 (§3.3): if helpers already flipped the
               flag, skip the descriptor allocation and CAS — it would
               fail or be a no-op — and go straight to fixing the
               tail. *)
            if (not t.tuning.validate_before_cas) || cur_desc.pending
            then begin
              let new_desc =
                mk_desc_b t ~self ~phase:cur_desc.phase ~pending:false
                  ~enqueue:true ~last:cur_desc.last_node ~want:0 ~got:0
                  ~taken:[] ~node:next_o
              in
              if P.compare_and_set t.state.(tid) cur_desc new_desc then
                retire_desc t ~self cur_desc
              else drop_desc t ~self new_desc
            end;
            ignore (A.compare_and_set t.tail last target)
          end
        end

  (* L67-84: drive thread [tid]'s pending enqueue to completion. The outer
     [is_still_pending] check (L68) is what bounds the loop: it fails as
     soon as any helper completes the operation. *)
  let rec help_enq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let last = A.get t.tail in
      let next = A.get last.next in
      if last == A.get t.tail then
        match next with
        | None ->
            (* L72: tail is accurate, an enqueue can be applied. The inner
               re-check (L73) preserves linearizability: without it a
               stale helper could append a node for an operation that
               already completed. *)
            if is_still_pending t tid phase then begin
              let node = (P.get t.state.(tid)).node in
              if A.compare_and_set last.next None node then begin
                (* L74 succeeded: the operation is linearized. *)
                help_finish_enq t ~self
              end
              else help_enq t ~self tid phase
            end
            else help_enq t ~self tid phase
        | Some _ ->
            (* L79-81: some enqueue is mid-flight; finish it, then retry. *)
            help_finish_enq t ~self;
            help_enq t ~self tid phase
      else help_enq t ~self tid phase
    end

  (* ------------------------------------------------------------------ *)
  (* Dequeue (paper Figure 6)                                           *)
  (* ------------------------------------------------------------------ *)

  (* L141-153: finish the dequeue of whichever thread locked the sentinel
     (wrote its tid into [head]'s [deq_tid], L135).

     Batch extension ([want] > 0): the claim is one element of a batch.
     Its value is [first.next]'s — appended to [taken] by replacing the
     whole record, which also decides whether the batch stays pending.
     The transition is guarded on the descriptor still recording
     [first]: every transition installs a fresh record, so a stale
     helper's CAS fails and each element is counted exactly once. The
     head swing (step 3) stays unconditional either way. *)
  let help_finish_deq t ~self =
    let first = A.get t.head in
    let next = A.get first.next in
    let tid = N.claimed_tid first in (* L144, epoch tag stripped *)
    if tid <> -1 then begin
      let cur_desc = P.get t.state.(tid) in
      match next with
      | Some next_node when first == A.get t.head ->
          (if cur_desc.want > 0 then begin
             let points_to_first =
               match cur_desc.node with
               | Some n -> n == first
               | None -> false
             in
             if cur_desc.pending && points_to_first then begin
               let v =
                 match next_node.value with
                 | Some v -> v
                 | None -> assert false
               in
               let got = cur_desc.got_n + 1 in
               let new_desc =
                 mk_desc_b t ~self ~phase:cur_desc.phase
                   ~pending:(got < cur_desc.want) ~enqueue:false
                   ~last:None ~want:cur_desc.want ~got
                   ~taken:(v :: cur_desc.taken) ~node:None
               in
               if P.compare_and_set t.state.(tid) cur_desc new_desc then
                 retire_desc t ~self cur_desc
               else drop_desc t ~self new_desc
             end
           end
           else if (not t.tuning.validate_before_cas) || cur_desc.pending
           then begin
             let new_desc =
               mk_desc t ~self ~phase:cur_desc.phase ~pending:false
                 ~enqueue:false ~node:cur_desc.node
             in
             if P.compare_and_set t.state.(tid) cur_desc new_desc then
               retire_desc t ~self cur_desc
             else drop_desc t ~self new_desc
           end);
          (* L150: step (3) — physically remove the old sentinel. The
             unique winner retires it into the pool (quarantined until
             in-flight operations that may still hold a reference to it
             finish). *)
          if A.compare_and_set t.head first next_node then
            release_node t ~self first
      | Some _ | None -> ()
    end

  (* L109-140. Stage (1) — pointing the owner's descriptor at the current
     sentinel — exists to make the empty case race-free: a helper that
     sees an empty queue (L116-121) CASes the owner's descriptor from one
     that does NOT point at the sentinel, so it cannot race with a helper
     that saw a non-empty queue and already performed stage (1). *)
  let rec help_deq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let first = A.get t.head in
      (* Capture the sentinel's claim word {e at the same moment} as the
         head reference: the later claim CAS expects this exact word, so
         a node recycled in between (its incarnation epoch bumped)
         cannot be ABA-claimed. Unpooled queues stay at epoch 0, where
         the word is literally the historical [-1]/tid value. *)
      let claim0 = A.get first.deq_tid in
      let last = A.get t.tail in
      let next = A.get first.next in
      if first == A.get t.head then
        if first == last then begin
          (* L115: queue might be empty *)
          match next with
          | None ->
              (* L116-121: certainly empty — record the empty outcome in
                 the owner's descriptor (it cannot raise here: this code
                 may run in a helper's context, §3.1). *)
              let cur_desc = P.get t.state.(tid) in
              if last == A.get t.tail && is_still_pending t tid phase
              then begin
                let new_desc =
                  mk_desc t ~self ~phase:cur_desc.phase ~pending:false
                    ~enqueue:false ~node:None
                in
                if P.compare_and_set t.state.(tid) cur_desc new_desc then
                  retire_desc t ~self cur_desc
                else drop_desc t ~self new_desc
              end;
              help_deq t ~self tid phase
          | Some _ ->
              (* L122-123: an enqueue is in progress; help it first. *)
              help_finish_enq t ~self;
              help_deq t ~self tid phase
        end
        else begin
          (* L125-137: queue is not empty *)
          let cur_desc = P.get t.state.(tid) in
          let node = cur_desc.node in
          (* L128: break — required for linearizability. *)
          if is_still_pending t tid phase then begin
            let points_to_first =
              match node with Some n -> n == first | None -> false
            in
            if first == A.get t.head && not points_to_first then begin
              (* L129-133: stage (1) — record the current sentinel. *)
              let new_desc =
                mk_desc t ~self ~phase:cur_desc.phase ~pending:true
                  ~enqueue:false ~node:(Some first)
              in
              if not (P.compare_and_set t.state.(tid) cur_desc new_desc)
              then begin
                drop_desc t ~self new_desc;
                help_deq t ~self tid phase (* L132: continue *)
              end
              else begin
                retire_desc t ~self cur_desc;
                (* L135: stage (2) — lock the sentinel; the successful CAS
                   is the linearization point of the dequeue. *)
                ignore (N.try_claim first ~observed:claim0 ~tid);
                help_finish_deq t ~self;
                help_deq t ~self tid phase
              end
            end
            else begin
              ignore (N.try_claim first ~observed:claim0 ~tid);
              help_finish_deq t ~self;
              help_deq t ~self tid phase
            end
          end
        end
      else help_deq t ~self tid phase
    end

  (* Batch dequeue driver: the same claim loop as [help_deq], iterated
     until the descriptor has collected [want] values (its [pending]
     flag is flipped by the [help_finish_deq] batch transition on the
     final element) or the queue empties (terminal record keeps the
     partial [taken]). Any helper can pick up the remaining suffix of a
     claimed batch mid-flight: every per-element step is the standard
     record-CAS / claim-CAS discipline, so helpers and owner interleave
     freely with exactly-once accounting.

     One batch-specific guard: if the current sentinel is already
     claimed by [tid], its head swing has not landed yet (the previous
     element's step 3). Finish it before seeking — recording a
     sentinel this batch already claimed would append its successor's
     value twice. *)
  let rec help_batch_deq t ~self tid phase =
    if is_still_pending t tid phase then begin
      let first = A.get t.head in
      let claim0 = A.get first.deq_tid in
      let last = A.get t.tail in
      let next = A.get first.next in
      if first == A.get t.head then
        if N.claimed_tid first = tid then begin
          help_finish_deq t ~self;
          help_batch_deq t ~self tid phase
        end
        else if first == last then begin
          match next with
          | None ->
              (* Empty: the batch completes with whatever it has. *)
              let cur_desc = P.get t.state.(tid) in
              if last == A.get t.tail && is_still_pending t tid phase
              then begin
                let new_desc =
                  mk_desc_b t ~self ~phase:cur_desc.phase ~pending:false
                    ~enqueue:false ~last:None ~want:cur_desc.want
                    ~got:cur_desc.got_n ~taken:cur_desc.taken ~node:None
                in
                if P.compare_and_set t.state.(tid) cur_desc new_desc then
                  retire_desc t ~self cur_desc
                else drop_desc t ~self new_desc
              end;
              help_batch_deq t ~self tid phase
          | Some _ ->
              help_finish_enq t ~self;
              help_batch_deq t ~self tid phase
        end
        else begin
          let cur_desc = P.get t.state.(tid) in
          let node = cur_desc.node in
          if is_still_pending t tid phase then begin
            let points_to_first =
              match node with Some n -> n == first | None -> false
            in
            if first == A.get t.head && not points_to_first then begin
              (* Stage (1) for the next element: record the current
                 sentinel, carrying the batch progress across. *)
              let new_desc =
                mk_desc_b t ~self ~phase:cur_desc.phase ~pending:true
                  ~enqueue:false ~last:None ~want:cur_desc.want
                  ~got:cur_desc.got_n ~taken:cur_desc.taken
                  ~node:(Some first)
              in
              if not (P.compare_and_set t.state.(tid) cur_desc new_desc)
              then begin
                drop_desc t ~self new_desc;
                help_batch_deq t ~self tid phase
              end
              else begin
                retire_desc t ~self cur_desc;
                ignore (N.try_claim first ~observed:claim0 ~tid);
                help_finish_deq t ~self;
                help_batch_deq t ~self tid phase
              end
            end
            else begin
              ignore (N.try_claim first ~observed:claim0 ~tid);
              help_finish_deq t ~self;
              help_batch_deq t ~self tid phase
            end
          end
        end
      else help_batch_deq t ~self tid phase
    end

  (* ------------------------------------------------------------------ *)
  (* Helping policies                                                   *)
  (* ------------------------------------------------------------------ *)

  let help_slot t ~self i phase =
    let desc = P.get t.state.(i) in
    if desc.pending && desc.phase <= phase then begin
      (* Peer helps only: dispatching your own freshly-published op is
         the common uncontended path (lag 0 by construction), so
         counting it would bury the signal and put a histogram record
         on every operation. A help event is rescuing someone else. *)
      (if i <> self then
         match t.obsv with
         | Some m ->
             Wfq_obsv.Counter.incr m.m_help ~slot:self;
             (* How stale is the operation we are about to rescue?
                Large lags mean threads are falling behind their
                helpers (scheduling pressure). *)
             Wfq_obsv.Histogram.record m.m_phase_lag ~slot:self
               (phase - desc.phase)
         | None -> ());
      if desc.enqueue then help_enq t ~self i phase
      else if desc.want > 0 then help_batch_deq t ~self i phase
      else help_deq t ~self i phase
    end

  (* L36-47, or the §3.3 cyclic variant. Either way the caller's own
     operation is completed before returning. *)
  let run_help t ~tid ~phase =
    match t.help_policy with
    | Help_all ->
        for i = 0 to Array.length t.state - 1 do
          help_slot t ~self:tid i phase
        done
    | Help_one_cyclic ->
        let c = t.help_cursor.(tid) in
        t.help_cursor.(tid) <- (c + 1) mod t.num_threads;
        if c <> tid then help_slot t ~self:tid c phase;
        help_slot t ~self:tid tid phase
    | Help_chunk k ->
        let c = t.help_cursor.(tid) in
        t.help_cursor.(tid) <- (c + k) mod t.num_threads;
        for j = 0 to min k t.num_threads - 1 do
          let i = (c + j) mod t.num_threads in
          if i <> tid then help_slot t ~self:tid i phase
        done;
        help_slot t ~self:tid tid phase

  (* ------------------------------------------------------------------ *)
  (* Public operations                                                  *)
  (* ------------------------------------------------------------------ *)

  (* L61-66 *)
  let enqueue t ~tid value =
    op_enter t ~tid;
    let phase = next_phase t ~tid in
    let node = alloc_node t ~self:tid ~enq_tid:tid value in
    publish t ~tid
      (mk_desc t ~self:tid ~phase ~pending:true ~enqueue:true
         ~node:(Some node));
    run_help t ~tid ~phase;
    (* L65: required for wait-freedom — without it a completed-but-
       unfinalized enqueue would block all future enqueues until the
       suspended helper resumes (§3.2). *)
    help_finish_enq t ~self:tid;
    if t.tuning.gc_friendly then
      (* Enhancement 2 (§3.3): drop the node reference so the descriptor
         cannot keep the node alive once it is dequeued. Safe: the
         operation is finalized (tail advanced past our node), so any
         stale helper's guards fail before it uses this slot. *)
      publish t ~tid
        (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:true ~node:None);
    op_exit t ~tid

  (* L98-108 *)
  let dequeue t ~tid =
    op_enter t ~tid;
    let phase = next_phase t ~tid in
    publish t ~tid
      (mk_desc t ~self:tid ~phase ~pending:true ~enqueue:false ~node:None);
    run_help t ~tid ~phase;
    (* L102: symmetric to the enqueue case — ensure [head] no longer
       refers to a node whose [deq_tid] is ours before returning. *)
    help_finish_deq t ~self:tid;
    let result =
      match (P.get t.state.(tid)).node with
      | None -> None (* L104-105: linearized on an empty queue *)
      | Some node -> (
          (* L107: the descriptor points at the sentinel that preceded
             our element at the linearization point. [node] may already
             be pool-released by the head winner, but quarantine keeps
             its fields intact until we exit below. *)
          match A.get node.next with
          | Some next ->
              assert (next.value <> None);
              next.value
          | None -> assert false)
    in
    if t.tuning.gc_friendly then
      publish t ~tid
        (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:false ~node:None);
    op_exit t ~tid;
    result

  (* ------------------------------------------------------------------ *)
  (* Batch operations                                                   *)
  (* ------------------------------------------------------------------ *)

  let record_batch t ~tid k =
    match t.obsv with
    | Some m -> Wfq_obsv.Histogram.record m.m_batch_size ~slot:tid k
    | None -> ()

  (* One phase pick, one descriptor publication and one L74 list CAS
     cover the whole batch: the chain is pre-linked before publication
     (plain writes on nodes nobody else can reach), the descriptor
     names both ends, and helpers run the unmodified [help_enq] — the
     CAS that appends the chain's first node linearizes all k elements
     in order, and [help_finish_enq] jumps [tail] over the chain. Cost:
     3 CASes + 1 phase pick per batch, vs per element. *)
  let enqueue_batch t ~tid values =
    match values with
    | [] -> ()
    | [ v ] -> enqueue t ~tid v
    | v0 :: rest ->
        op_enter t ~tid;
        record_batch t ~tid (List.length values);
        let phase = next_phase t ~tid in
        let first = alloc_node t ~self:tid ~enq_tid:tid v0 in
        let last =
          List.fold_left
            (fun prev v ->
              let n = alloc_node t ~self:tid ~enq_tid:tid v in
              A.set prev.N.next (Some n);
              n)
            first rest
        in
        publish t ~tid
          (mk_desc_b t ~self:tid ~phase ~pending:true ~enqueue:true
             ~last:(Some last) ~want:0 ~got:0 ~taken:[]
             ~node:(Some first));
        run_help t ~tid ~phase;
        (* As in [enqueue] (L65): finalize before returning — here this
           also guarantees the batch tail jump has landed, so the next
           operation never observes [tail] behind the chain. *)
        help_finish_enq t ~self:tid;
        if t.tuning.gc_friendly then
          publish t ~tid
            (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:true
               ~node:None);
        op_exit t ~tid

  (* One phase pick and one descriptor publication cover up to [n]
     dequeues: the published [want = n] descriptor is driven by
     [help_batch_deq] (owner and helpers alike), accumulating values in
     the descriptor itself so a helper can complete the remaining
     suffix after the owner stalls at any point. Returns the collected
     prefix in FIFO order; shorter than [n] iff the queue was observed
     empty at the final element's linearization point. *)
  let dequeue_batch t ~tid ~n =
    if n < 0 then invalid_arg "Kp_queue.dequeue_batch: n";
    if n = 0 then []
    else begin
      op_enter t ~tid;
      record_batch t ~tid n;
      let phase = next_phase t ~tid in
      publish t ~tid
        (mk_desc_b t ~self:tid ~phase ~pending:true ~enqueue:false
           ~last:None ~want:n ~got:0 ~taken:[] ~node:None);
      run_help t ~tid ~phase;
      (* Symmetric to [dequeue]: make sure our final claim's head swing
         has landed before returning. *)
      help_finish_deq t ~self:tid;
      let taken = List.rev (P.get t.state.(tid)).taken in
      if t.tuning.gc_friendly then
        publish t ~tid
          (mk_desc t ~self:tid ~phase ~pending:false ~enqueue:false
             ~node:None);
      op_exit t ~tid;
      taken
    end

  (* ------------------------------------------------------------------ *)
  (* Observers (quiescent use)                                          *)
  (* ------------------------------------------------------------------ *)

  let to_list t = N.to_list t.head
  let length t = N.length t.head
  let is_empty t = N.is_empty t.head

  let check_quiescent_invariants t =
    match N.check_list_invariants ~head:t.head ~tail:t.tail with
    | Error _ as e -> e
    | Ok () ->
        let pending_slots =
          Array.to_list t.state
          |> List.filteri (fun _ slot -> (P.get slot).pending)
        in
        if pending_slots <> [] then
          Error
            (Printf.sprintf "%d state slots still pending at quiescence"
               (List.length pending_slots))
        else Ok ()

  (* Exposed for white-box tests: the number of helping rounds a slot has
     recorded, i.e. the phase of thread [tid]'s latest operation. *)
  let phase_of t ~tid = (P.get t.state.(tid)).phase
  let pending_of t ~tid = (P.get t.state.(tid)).pending

  (* True while the thread's descriptor still references a list node;
     with [gc_friendly] tuning it is false between operations. *)
  let holds_node_reference t ~tid = (P.get t.state.(tid)).node <> None

  (* Pool telemetry (quiescent use): (reused, fresh, parked) for the
     node pool, and the same for the descriptor pool when recycling
     descriptors; [None] for unpooled queues. *)
  let pool_stats t =
    match t.pools with
    | None -> None
    | Some p ->
        let line pool =
          ( Pool.reused pool,
            Pool.allocated_fresh pool,
            Pool.pooled pool + Pool.quarantined pool )
        in
        Some
          ( line p.nodes,
            match p.descs with Some dp -> Some (line dp) | None -> None )

  (* Attach the node (and descriptor) pools' live counters to a metrics
     registry; no-op for unpooled queues. Composes with the [?obsv]
     handle: together they cover every diagnostic the queue produces. *)
  let register_pool_metrics t registry ~prefix =
    match t.pools with
    | None -> ()
    | Some p ->
        Pool.register_metrics p.nodes registry ~prefix:(prefix ^ ".nodes");
        (match p.descs with
        | Some dp ->
            Pool.register_metrics dp registry ~prefix:(prefix ^ ".descs")
        | None -> ())

  (* The uniform RUN_QUEUE registration (Queue_intf.RUN_QUEUE): the
     depth gauge every backend exposes, plus whatever always-on
     diagnostics this queue owns — here the pool counters when pooled.
     The gauge polls [length] (a traversal), which only runs at
     snapshot time, never on the hot path. *)
  let register_metrics t registry ~prefix =
    Wfq_obsv.Metrics.gauge registry ~name:(prefix ^ ".depth") (fun () ->
        length t);
    register_pool_metrics t registry ~prefix
end
