(** Dynamic partial-order reduction (Flanagan & Godefroid) with sleep
    sets: exhaustive-equivalent exploration that executes one schedule
    per Mazurkiewicz trace instead of one per interleaving, driven
    through {!Scheduler}'s [Guided] strategy and the access metadata
    {!Sim_atomic} attaches to every yield.

    Soundness requires fibers to be schedule-deterministic: behaviour
    may depend only on values read from shared cells (true of anything
    built over {!Sim_atomic}). Nondeterminism is detected and reported
    as [Invalid_argument]. *)

type report = {
  schedules : int;
      (** complete executions — with [exhausted = true], exactly the
          number of Mazurkiewicz traces of the program *)
  redundant : int;  (** executions aborted early by sleep-set pruning *)
  exhausted : bool;  (** false when [max_executions] stopped the search *)
  failure : (int list * string) option;
      (** first failing schedule (as a [Scheduler.run ~forced] replay
          covering every decision of the run) and its message *)
}

val explore :
  ?max_executions:int ->
  ?step_limit:int ->
  make:
    (unit ->
    (unit -> unit) array * (Scheduler.result -> (unit, string) result)) ->
  unit ->
  report
(** Explore every Mazurkiewicz trace of the program. [make] is called
    once per execution and must return fresh state: the fiber vector and
    a post-run check (exactly as for {!Explore}). A run that hits
    [step_limit] (default 100,000) is reported as a failure — under
    systematic exploration that is a starvation/livelock witness.
    [max_executions] (default 1,000,000) bounds complete + pruned
    executions together. *)
