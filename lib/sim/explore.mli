(** Systematic exploration of thread interleavings (stateless model
    checking in the style of CHESS): re-execute the program once per
    schedule, enumerating schedules by depth-first backtracking over the
    recorded scheduling decisions. *)

type report = {
  schedules : int;  (** number of complete schedules executed *)
  exhausted : bool;  (** false when [max_schedules] stopped the search *)
  failure : (int list * string) option;
      (** first failing schedule (as a [Scheduler.run ~forced] replay
          prefix) and its message *)
}

type mode = Exhaustive | Preemption_bounded of int

val exhaustive :
  ?max_schedules:int ->
  ?step_limit:int ->
  make:
    (unit ->
    (unit -> unit) array
    * (Scheduler.result -> (unit, string) result)) ->
  unit ->
  report
(** Every interleaving. Exponential in the total number of shared
    accesses — for tiny programs only (e.g. two fibers racing on a
    counter). [make] is called once per schedule and must return fresh
    state: the fiber vector and a post-run check. *)

val dpor :
  ?max_schedules:int ->
  ?step_limit:int ->
  make:
    (unit ->
    (unit -> unit) array
    * (Scheduler.result -> (unit, string) result)) ->
  unit ->
  report
(** Dynamic partial-order reduction (see {!Dpor}): exhaustive-equivalent
    coverage executing one schedule per Mazurkiewicz trace — reaches
    scenarios of 40+ shared accesses that {!exhaustive} cannot.
    [max_schedules] bounds total executions including sleep-set-pruned
    ones; a [step_limit] hit is reported as a failure (systematic
    livelock/starvation witness). *)

val preemption_bounded :
  budget:int ->
  ?max_schedules:int ->
  ?step_limit:int ->
  make:
    (unit ->
    (unit -> unit) array
    * (Scheduler.result -> (unit, string) result)) ->
  unit ->
  report
(** Every schedule with at most [budget] preemptions (switches away from
    a fiber that could have continued; switching at completion points is
    free). Polynomial for fixed budget, and in practice almost all
    interleaving bugs manifest within 2-3 preemptions (Musuvathi &
    Qadeer) — this is what makes model-checking the long Kogan-Petrank
    operations tractable. *)

val pct :
  ?seed0:int ->
  ?count:int ->
  ?change_points:int ->
  ?expected_length:int ->
  ?step_limit:int ->
  make:
    (unit ->
    (unit -> unit) array
    * (Scheduler.result -> (unit, string) result)) ->
  unit ->
  report
(** PCT fuzzing ({!Scheduler.Pct}): [count] priority-based runs with
    [change_points] priority-drop points each, targeting bugs of
    preemption depth [change_points + 1] with a provable per-run hit
    probability. [expected_length] defaults to a calibration run's step
    count. *)

val fuzz :
  ?seed0:int ->
  ?count:int ->
  ?step_limit:int ->
  make:
    (unit ->
    (unit -> unit) array
    * (Scheduler.result -> (unit, string) result)) ->
  unit ->
  report
(** [count] seeded-random schedules, each checked like the systematic
    modes. For configurations too large to enumerate. *)
