(** Counterexample shrinking: delta-debug a failing scheduler decision
    trace (as reported by {!Explore} or {!Dpor}) down to a minimal
    forced replay, relying on {!Scheduler.run}[ ~forced] replay
    determinism. *)

type step = {
  s_index : int;  (** decision number within the run *)
  s_fiber : int;  (** fiber id resumed at this decision *)
  s_access : Scheduler.access option;
      (** the shared access the slice performed *)
}

type t = {
  forced : int list;  (** the minimal failing replay prefix *)
  message : string;  (** failure message of the shrunk schedule *)
  attempts : int;  (** candidate replays evaluated while shrinking *)
  original_length : int;  (** length of the trace before shrinking *)
  steps : step list;
      (** every decision of the shrunk run, for pretty-printing; the
          first [List.length forced] are the forced ones *)
}

val shrink :
  ?max_attempts:int ->
  ?step_limit:int ->
  make:
    (unit ->
    (unit -> unit) array * (Scheduler.result -> (unit, string) result)) ->
  forced:int list ->
  unit ->
  t
(** Shrink the failing schedule [forced] against fresh executions from
    [make] (same contract as {!Explore}): drop trailing default choices,
    remove slices ddmin-style, then zero out remaining entries.
    Candidates are capped at [max_attempts] (default 5000) replays;
    shrinking degrades gracefully when the cap bites. Any failure
    message is accepted as "still failing" — the shrunk schedule's
    message may differ from the original's (e.g. a livelock shrinking
    into a cleaner invariant violation).

    @raise Invalid_argument if [forced] does not fail to begin with. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print the minimal schedule: one line per forced decision
    (fiber id and its shared access), the count of deterministic steps
    that follow, and the failure message. *)
