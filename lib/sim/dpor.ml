(** Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005)
    with sleep sets (Godefroid's thesis), over the stateless re-execution
    machinery of {!Scheduler}.

    Two schedules are equivalent (same Mazurkiewicz trace) when they
    order every pair of {e dependent} accesses — same location, at least
    one write — identically; independent accesses commute without
    changing any fiber's view of memory. Exhaustive enumeration executes
    every schedule, [C(a+b, a)]-many for two fibers of a and b steps;
    DPOR executes one per trace. The algorithm:

    - run a schedule to completion under a {!Scheduler.Guided} strategy,
      recording each decision's enabled fibers and their pending
      accesses in a DFS stack;
    - compute happens-before over the executed accesses with vector
      clocks; for every pair of {e racing} accesses (dependent,
      different fibers, not already ordered through intermediaries),
      insert a backtrack point at the earlier access's decision node, so
      the reversal of that race gets explored;
    - backtrack depth-first through unexplored candidates, replaying the
      decision prefix and continuing fresh below it;
    - sleep sets prune schedules that merely commute independent
      accesses of already-explored branches: a fully-explored sibling
      choice goes to sleep and stays asleep until a dependent access
      executes; picking a sleeping fiber can only reproduce an explored
      trace, so such runs abort early (counted as [redundant]).

    Completeness relies on the program being {e schedule-deterministic}:
    a fiber's behaviour may depend only on what it reads from shared
    cells. This holds for anything built over {!Sim_atomic}. *)

module S = Scheduler
module IntSet = Set.Make (Int)

type report = {
  schedules : int;
      (** complete executions — with [exhausted = true], exactly the
          number of Mazurkiewicz traces of the program *)
  redundant : int;  (** executions aborted early by sleep-set pruning *)
  exhausted : bool;  (** false when [max_executions] stopped the search *)
  failure : (int list * string) option;
      (** first failing schedule (as a [Scheduler.run ~forced] replay
          covering every decision of the run) and its message *)
}

(* One node of the DFS stack: a scheduling decision of the current
   execution prefix, with the exploration state DPOR accumulates for
   it. *)
type node = {
  mutable n_enabled : (int * S.access option) array;
      (* enabled fibers at this decision (ascending id) with the access
         each would perform next; refreshed on every replay because
         location ids are allocated per execution *)
  mutable chosen : int; (* fiber id currently being explored *)
  mutable chosen_index : int; (* index of [chosen] in [n_enabled] *)
  mutable backtrack : IntSet.t; (* fiber ids scheduled for exploration *)
  mutable done_ : IntSet.t; (* fiber ids fully explored *)
  sleep : IntSet.t; (* sleep set on entry to this node *)
}

(* Growable stack of nodes; [len] is the depth of the current prefix. *)
type stack = { mutable arr : node array; mutable len : int }

let push st nd =
  let cap = Array.length st.arr in
  if st.len = cap then begin
    let arr = Array.make (max 16 (2 * cap)) nd in
    Array.blit st.arr 0 arr 0 st.len;
    st.arr <- arr
  end;
  st.arr.(st.len) <- nd;
  st.len <- st.len + 1

let pending_access node fid =
  let n = Array.length node.n_enabled in
  let rec go i =
    if i >= n then None
    else
      let id, a = node.n_enabled.(i) in
      if id = fid then a else go (i + 1)
  in
  go 0

let index_of node fid =
  let n = Array.length node.n_enabled in
  let rec go i =
    if i >= n then invalid_arg "Dpor: fiber not enabled"
    else if fst node.n_enabled.(i) = fid then i
    else go (i + 1)
  in
  go 0

(* Dependence: same location and at least one of the two writes. An
   access-free slice (None) is independent of everything. *)
let conflicts a b =
  match (a, b) with
  | Some a, Some b ->
      a.S.loc = b.S.loc && not (a.S.kind = S.Read && b.S.kind = S.Read)
  | _ -> false

let same_enabled (xs : (int * S.access option) array) ys =
  Array.length xs = Array.length ys
  && Array.for_all2 (fun (i, _) (j, _) -> i = j) xs ys

let classify (result : S.result) check =
  match (result.S.error, result.S.outcome) with
  | Some e, _ -> Some ("exception: " ^ Printexc.to_string e)
  | None, S.Step_limit_hit -> Some "step limit hit (starvation or livelock)"
  | None, S.Only_stalled_left ->
      Some "stalled fibers left (unexpected in exploration)"
  | None, S.Aborted -> None (* sleep-set pruned: redundant, not a failure *)
  | None, S.All_finished -> (
      match check result with Ok () -> None | Error msg -> Some msg)

(* Post-run happens-before analysis over the completed execution held in
   [st]: vector clocks per fiber, last-write + reads-since-last-write per
   location, backtrack insertion at every reversible race (all racing
   pairs, a sound superset of Flanagan-Godefroid's "last racing event";
   sleep sets absorb the duplicates). *)
let analyze st nfibers =
  let len = st.len in
  let fiber_clock = Array.init nfibers (fun _ -> Array.make nfibers (-1)) in
  let event_clock = Array.make len [||] in
  let last_write : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let reads_since : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  for d = 0 to len - 1 do
    let nd = st.arr.(d) in
    let p = nd.chosen in
    match pending_access nd p with
    | None -> () (* access-free slice: program order only *)
    | Some a ->
        let pre = fiber_clock.(p) in
        let lw = Hashtbl.find_opt last_write a.S.loc in
        let rs =
          match Hashtbl.find_opt reads_since a.S.loc with
          | Some l -> l
          | None -> []
        in
        let candidates =
          (* events this one depends on directly: the last write always;
             for a (semi-)write, also every read since that write *)
          (match lw with Some i -> [ i ] | None -> [])
          @ (if a.S.kind = S.Read then [] else rs)
        in
        List.iter
          (fun i ->
            let ni = st.arr.(i) in
            let q = ni.chosen in
            if q <> p && pre.(q) < i then begin
              (* a race: i and d are adjacent in the dependence order and
                 unordered by happens-before — schedule its reversal *)
              if Array.exists (fun (id, _) -> id = p) ni.n_enabled then
                ni.backtrack <- IntSet.add p ni.backtrack
              else
                Array.iter
                  (fun (id, _) -> ni.backtrack <- IntSet.add id ni.backtrack)
                  ni.n_enabled
            end)
          candidates;
        let cv = Array.copy pre in
        let join i =
          let c = event_clock.(i) in
          for f = 0 to nfibers - 1 do
            if c.(f) > cv.(f) then cv.(f) <- c.(f)
          done
        in
        (match lw with Some i -> join i | None -> ());
        if a.S.kind <> S.Read then List.iter join rs;
        cv.(p) <- d;
        fiber_clock.(p) <- cv;
        event_clock.(d) <- cv;
        if a.S.kind = S.Read then
          Hashtbl.replace reads_since a.S.loc (d :: rs)
        else begin
          Hashtbl.replace last_write a.S.loc d;
          Hashtbl.replace reads_since a.S.loc []
        end
  done

let explore ?(max_executions = 1_000_000) ?(step_limit = 100_000)
    ~(make :
       unit ->
       (unit -> unit) array * (S.result -> (unit, string) result)) () =
  let st = { arr = [||]; len = 0 } in
  let completed = ref 0 and redundant = ref 0 in

  (* One execution: replay the stack prefix (each node's current
     [chosen]), then extend with fresh nodes, defaulting to the first
     enabled fiber not in the sleep set. *)
  let run_one () =
    let fibers, check = make () in
    let depth = ref 0 in
    let sleep = ref IntSet.empty in
    let guide (ctx : S.guided_ctx) =
      let d = !depth in
      incr depth;
      let enabled = Array.of_list ctx.S.g_enabled in
      let node =
        if d < st.len then begin
          let nd = st.arr.(d) in
          if not (same_enabled nd.n_enabled enabled) then
            invalid_arg
              "Dpor: enabled sets differ on replay (program is not \
               schedule-deterministic)";
          (* Location ids are per-execution (cells are reallocated by
             every [make]), so refresh the stored accesses: the replayed
             prefix is behaviourally identical, only the numbering
             changes. *)
          nd.n_enabled <- enabled;
          nd
        end
        else begin
          let rec pick i =
            if i >= Array.length enabled then None
            else
              let id, _ = enabled.(i) in
              if IntSet.mem id !sleep then pick (i + 1) else Some (i, id)
          in
          match pick 0 with
          | None ->
              (* every enabled fiber is asleep: any continuation repeats
                 an explored trace *)
              raise S.Abort_run
          | Some (i, id) ->
              let nd =
                {
                  n_enabled = enabled;
                  chosen = id;
                  chosen_index = i;
                  backtrack = IntSet.singleton id;
                  done_ = IntSet.empty;
                  sleep = !sleep;
                }
              in
              push st nd;
              nd
        end
      in
      (* Sleep-set transition: explored siblings (and inherited
         sleepers) stay asleep below this choice unless the executed
         access conflicts with their pending one. *)
      let a = pending_access node node.chosen in
      sleep :=
        IntSet.filter
          (fun q ->
            q <> node.chosen && not (conflicts (pending_access node q) a))
          (IntSet.union node.sleep node.done_);
      node.chosen_index
    in
    let result = S.run ~strategy:(S.Guided guide) ~step_limit fibers in
    (result, check)
  in

  (* DFS backtracking: the deepest node's explored choice moves to
     [done_]; switch it to the next backtrack candidate not yet explored
     and not asleep on entry, or pop and repeat. *)
  let rec next_branch () =
    if st.len = 0 then false
    else begin
      let nd = st.arr.(st.len - 1) in
      nd.done_ <- IntSet.add nd.chosen nd.done_;
      let avail =
        IntSet.diff (IntSet.diff nd.backtrack nd.done_) nd.sleep
      in
      match IntSet.min_elt_opt avail with
      | None ->
          st.len <- st.len - 1;
          next_branch ()
      | Some c ->
          nd.chosen <- c;
          nd.chosen_index <- index_of nd c;
          true
    end
  in

  let report exhausted failure =
    {
      schedules = !completed;
      redundant = !redundant;
      exhausted;
      failure;
    }
  in
  let rec drive first =
    if (not first) && not (next_branch ()) then report true None
    else if !completed + !redundant >= max_executions then report false None
    else begin
      let result, check = run_one () in
      match result.S.outcome with
      | S.Aborted ->
          incr redundant;
          drive false
      | _ -> (
          incr completed;
          match classify result check with
          | Some msg ->
              report false
                (Some (List.map (fun (_, i, _) -> i) result.S.trace, msg))
          | None ->
              let nfibers = Array.length result.S.steps in
              analyze st nfibers;
              drive false)
    end
  in
  drive true
