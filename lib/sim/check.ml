(** The Explore × Lincheck driver: model-check a queue implementation
    end to end.

    Given a queue's operations and per-fiber scripts, this module builds
    the simulator scenario ({!Scheduler} fibers that record a
    {!Wfq_lincheck.History}), explores its schedules ({!Dpor} by
    default), and on {e every} explored schedule checks

    - {e element conservation}: multiset of enqueued values = dequeued
      values + final queue contents;
    - {e linearizability}: the recorded history passes the Wing & Gong
      checker against the sequential FIFO specification;
    - optionally {e wait-freedom}: with [step_bound], no fiber may take
      more than that many scheduler steps in any schedule — the
      schedule-independent per-operation bound of the paper's Theorem,
      certified over the whole explored schedule space.

    Failures are shrunk to a minimal forced replay automatically
    ({!Shrink}). *)

module S = Scheduler
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker

type script =
  [ `Enq of int
  | `Try_enq of int
  | `Deq
  | `Enq_batch of int list
  | `Try_enq_batch of int list
  | `Deq_batch of int ]
  list

type 'q ops = {
  create : num_threads:int -> 'q;
  enqueue : 'q -> tid:int -> int -> unit;
  dequeue : 'q -> tid:int -> int option;
  contents : 'q -> int list;
}

type mode =
  | Dpor  (** one schedule per Mazurkiewicz trace; exhaustive coverage *)
  | Exhaustive  (** every interleaving — tiny scenarios only *)
  | Preemption_bounded of int
  | Pct of { count : int; change_points : int }
  | Fuzz of { seed0 : int; count : int }

type failure = {
  message : string;
  forced : int list;  (** the failing schedule, replayable as-is *)
  shrunk : Shrink.t option;
}

type report = {
  schedules : int;
  exhausted : bool;
  max_fiber_steps : int;
      (** the largest per-fiber step count seen across all explored
          schedules — the empirical wait-freedom bound for the scenario *)
  failure : failure option;
}

(* History size of one script: batch ops expand to one sub-op per
   element, and that expanded count is what the linearizability
   checker's 62-op bitmask limit bounds. *)
let script_ops s =
  List.fold_left
    (fun n -> function
      | `Enq _ | `Try_enq _ | `Deq -> n + 1
      | `Enq_batch vs | `Try_enq_batch vs -> n + List.length vs
      | `Deq_batch k -> n + k)
    0 s

let ops_in scripts init =
  List.length init + List.fold_left (fun n s -> n + script_ops s) 0 scripts

(* Build the fiber vector + post-run check for one execution. Shared
   with every exploration mode and with the shrinker, so all replay the
   same scenario. *)
let make_scenario ~queue:ops ~scripts ~init ?try_enqueue ?enqueue_batch
    ?try_enqueue_batch ?dequeue_batch ?capacity ?step_bound ?extra_check
    ~max_fiber_steps () =
  let num_threads = List.length scripts in
  let q = ops.create ~num_threads in
  let hist = H.create () in
  (* Pre-filled elements enter the history as enqueues by a synthetic
     thread that completed before any fiber started, so both the FIFO
     spec and conservation account for them. *)
  S.ignore_yields (fun () ->
      List.iter
        (fun v ->
          H.call hist ~thread:num_threads (H.Enq v);
          ops.enqueue q ~tid:0 v;
          H.return hist ~thread:num_threads H.Done)
        init);
  let fiber tid script () =
    List.iter
      (function
        | `Enq v ->
            H.call hist ~thread:tid (H.Enq v);
            ops.enqueue q ~tid v;
            H.return hist ~thread:tid H.Done
        | `Try_enq v -> (
            let try_enq =
              match try_enqueue with
              | Some f -> f
              | None ->
                  invalid_arg
                    "Check: `Try_enq script op without ~try_enqueue"
            in
            H.call hist ~thread:tid (H.Enq v);
            match try_enq q ~tid v with
            | true -> H.return hist ~thread:tid H.Done
            | false -> H.return hist ~thread:tid H.Rejected)
        | `Deq -> (
            H.call hist ~thread:tid H.Deq;
            match ops.dequeue q ~tid with
            | Some v -> H.return hist ~thread:tid (H.Got v)
            | None -> H.return hist ~thread:tid H.Empty)
        (* Batch ops expand to per-element sub-ops: all invocations are
           recorded before the batch runs and all responses after, so
           each element's linearization point lies in its interval, and
           the checker's program-order constraint pins intra-batch
           FIFO. *)
        | `Enq_batch vs ->
            if vs <> [] then begin
              let f =
                match enqueue_batch with
                | Some f -> f
                | None ->
                    invalid_arg
                      "Check: `Enq_batch script op without ~enqueue_batch"
              in
              H.call_batch hist ~thread:tid
                (List.map (fun v -> H.Enq v) vs);
              f q ~tid vs;
              H.return_batch hist ~thread:tid
                (List.map (fun _ -> H.Done) vs)
            end
        | `Try_enq_batch vs ->
            if vs <> [] then begin
              let f =
                match try_enqueue_batch with
                | Some f -> f
                | None ->
                    invalid_arg
                      "Check: `Try_enq_batch script op without \
                       ~try_enqueue_batch"
              in
              H.call_batch hist ~thread:tid
                (List.map (fun v -> H.Enq v) vs);
              let accepted = f q ~tid vs in
              (* The bounded batch stops at its first full observation:
                 the accepted prefix answers [Done], every remaining
                 element [Rejected] — all rejections can share that one
                 full linearization point. *)
              H.return_batch hist ~thread:tid
                (List.mapi
                   (fun i _ -> if i < accepted then H.Done else H.Rejected)
                   vs)
            end
        | `Deq_batch want ->
            if want > 0 then begin
              let f =
                match dequeue_batch with
                | Some f -> f
                | None ->
                    invalid_arg
                      "Check: `Deq_batch script op without ~dequeue_batch"
              in
              H.call_batch hist ~thread:tid
                (List.init want (fun _ -> H.Deq));
              let got = f q ~tid ~n:want in
              (* A short batch observed empty once and stopped; the
                 unserved sub-ops answer [Empty] at that same point. *)
              let rec responses got i =
                if i = want then []
                else
                  match got with
                  | v :: tl -> H.Got v :: responses tl (i + 1)
                  | [] -> H.Empty :: responses [] (i + 1)
              in
              H.return_batch hist ~thread:tid (responses got 0)
            end)
      script
  in
  let check (result : S.result) =
    Array.iter
      (fun s -> if s > !max_fiber_steps then max_fiber_steps := s)
      result.S.steps;
    let step_ok =
      match step_bound with
      | None -> Ok ()
      | Some bound ->
          let worst = Array.fold_left max 0 result.S.steps in
          if worst <= bound then Ok ()
          else
            Error
              (Printf.sprintf
                 "wait-freedom violation: a fiber took %d steps (bound %d)"
                 worst bound)
    in
    match step_ok with
    | Error _ as e -> e
    | Ok () -> (
        let completed = H.completed hist in
        (* Only enqueues that reported success count as having put an
           element in: a [Rejected] bounded enqueue must leave no trace
           (if it does, conservation flags the duplicate). *)
        let enqueued =
          List.filter_map
            (fun (c : H.completed) ->
              match (c.H.op, c.H.response) with
              | H.Enq v, H.Done -> Some v
              | H.Enq _, _ | H.Deq, _ -> None)
            completed
        in
        let dequeued =
          List.filter_map
            (fun (c : H.completed) ->
              match c.H.response with
              | H.Got v -> Some v
              | H.Done | H.Empty | H.Rejected -> None)
            completed
        in
        let left = S.ignore_yields (fun () -> ops.contents q) in
        let sort = List.sort compare in
        if sort enqueued <> sort (dequeued @ left) then
          Error
            (Printf.sprintf "conservation violated: %d enq, %d deq, %d left"
               (List.length enqueued) (List.length dequeued)
               (List.length left))
        else if not (C.is_linearizable ?capacity completed) then
          Error (Format.asprintf "not linearizable:@.%a" C.pp_history completed)
        else
          match extra_check with
          | None -> Ok ()
          | Some f -> S.ignore_yields (fun () -> f q))
  in
  (Array.of_list (List.mapi fiber scripts), check)

let run ?(mode = Dpor) ?max_schedules ?step_limit ?step_bound
    ?(shrink = true) ?(init = []) ?try_enqueue ?enqueue_batch
    ?try_enqueue_batch ?dequeue_batch ?capacity ?extra_check ~queue ~scripts
    () =
  if scripts = [] then invalid_arg "Check.run: no scripts";
  if ops_in scripts init > 62 then
    invalid_arg
      "Check.run: more than 62 operations (the linearizability checker's \
       bitmask limit)";
  let max_fiber_steps = ref 0 in
  let make () =
    make_scenario ~queue ~scripts ~init ?try_enqueue ?enqueue_batch
      ?try_enqueue_batch ?dequeue_batch ?capacity ?step_bound ?extra_check
      ~max_fiber_steps ()
  in
  let schedules, exhausted, raw_failure =
    match mode with
    | Dpor ->
        let r = Dpor.explore ?max_executions:max_schedules ?step_limit ~make () in
        (r.Dpor.schedules, r.Dpor.exhausted, r.Dpor.failure)
    | Exhaustive ->
        let r = Explore.exhaustive ?max_schedules ?step_limit ~make () in
        (r.Explore.schedules, r.Explore.exhausted, r.Explore.failure)
    | Preemption_bounded budget ->
        let r =
          Explore.preemption_bounded ~budget ?max_schedules ?step_limit ~make
            ()
        in
        (r.Explore.schedules, r.Explore.exhausted, r.Explore.failure)
    | Pct { count; change_points } ->
        let r = Explore.pct ~count ~change_points ?step_limit ~make () in
        (r.Explore.schedules, r.Explore.exhausted, r.Explore.failure)
    | Fuzz { seed0; count } ->
        let r = Explore.fuzz ~seed0 ~count ?step_limit ~make () in
        (r.Explore.schedules, r.Explore.exhausted, r.Explore.failure)
  in
  let failure =
    Option.map
      (fun (forced, message) ->
        let shrunk =
          if shrink then
            match Shrink.shrink ?step_limit ~make ~forced () with
            | s -> Some s
            | exception Invalid_argument _ ->
                (* e.g. a PCT failure whose trace does not replay under
                   the default continuation strategy: keep it unshrunk *)
                None
          else None
        in
        { message; forced; shrunk })
      raw_failure
  in
  { schedules; exhausted; max_fiber_steps = !max_fiber_steps; failure }

(* --- wait-freedom certification ----------------------------------- *)

type certificate = { observed_bound : int; schedules : int }

let certify ?mode ?max_schedules ?step_limit ?init ?try_enqueue
    ?enqueue_batch ?try_enqueue_batch ?dequeue_batch ?capacity ?extra_check
    ~bound ~queue ~scripts () =
  let r =
    run ?mode ?max_schedules ?step_limit ~step_bound:bound ?init
      ?try_enqueue ?enqueue_batch ?try_enqueue_batch ?dequeue_batch
      ?capacity ?extra_check ~queue ~scripts ()
  in
  match r.failure with
  | Some f ->
      Error
        (Format.asprintf "certification failed:@ %a"
           (fun ppf f ->
             match f.shrunk with
             | Some s -> Shrink.pp ppf s
             | None -> Format.pp_print_string ppf f.message)
           f)
  | None ->
      if not r.exhausted then
        Error
          (Printf.sprintf
             "certification incomplete: schedule space not exhausted \
              after %d schedules (raise max_schedules)"
             r.schedules)
      else Ok { observed_bound = r.max_fiber_steps; schedules = r.schedules }

let pp_failure ppf f =
  match f.shrunk with
  | Some s -> Shrink.pp ppf s
  | None ->
      Format.fprintf ppf "@[<v>failing schedule (%d decisions, unshrunk):@,%s@]"
        (List.length f.forced) f.message
