(** The Explore × Lincheck driver: model-check a queue implementation
    end to end — build the scenario, explore its schedules ({!Dpor} by
    default), and on every explored schedule check element conservation,
    linearizability ({!Wfq_lincheck}), and optionally a per-fiber step
    bound (wait-freedom certification). Failures arrive pre-shrunk. *)

type script =
  [ `Enq of int
  | `Try_enq of int
  | `Deq
  | `Enq_batch of int list
  | `Try_enq_batch of int list
  | `Deq_batch of int ]
  list
(** [`Try_enq] is the bounded-queue insert: it records [Done] when the
    queue accepted the element and [Rejected] when it reported full,
    and requires [~try_enqueue] (and normally [~capacity]) to be passed
    to {!run}/{!make_scenario}.

    The batch ops require the corresponding [~enqueue_batch] /
    [~try_enqueue_batch] / [~dequeue_batch] implementation. Each
    expands into one history sub-op per element — invoked together
    before the batch runs, answered together after — so each element
    linearizes inside its interval and the checker's per-thread
    program-order constraint certifies intra-batch FIFO.
    [`Try_enq_batch] records [Done] for the accepted prefix and
    [Rejected] for the remainder (bounded queues stop at their first
    full observation); a short [`Deq_batch] answers [Empty] for its
    unserved suffix. The expanded element count is what the checker's
    62-op limit bounds. *)

type 'q ops = {
  create : num_threads:int -> 'q;
  enqueue : 'q -> tid:int -> int -> unit;
  dequeue : 'q -> tid:int -> int option;
  contents : 'q -> int list;  (** quiescent snapshot, oldest first *)
}

type mode =
  | Dpor  (** one schedule per Mazurkiewicz trace; exhaustive coverage *)
  | Exhaustive  (** every interleaving — tiny scenarios only *)
  | Preemption_bounded of int
  | Pct of { count : int; change_points : int }
  | Fuzz of { seed0 : int; count : int }

type failure = {
  message : string;
  forced : int list;  (** the failing schedule, replayable as-is *)
  shrunk : Shrink.t option;
}

type report = {
  schedules : int;
  exhausted : bool;
  max_fiber_steps : int;
      (** the largest per-fiber step count seen across all explored
          schedules — the empirical wait-freedom bound for the scenario *)
  failure : failure option;
}

val make_scenario :
  queue:'q ops ->
  scripts:script list ->
  init:int list ->
  ?try_enqueue:('q -> tid:int -> int -> bool) ->
  ?enqueue_batch:('q -> tid:int -> int list -> unit) ->
  ?try_enqueue_batch:('q -> tid:int -> int list -> int) ->
  ?dequeue_batch:('q -> tid:int -> n:int -> int list) ->
  ?capacity:int ->
  ?step_bound:int ->
  ?extra_check:('q -> (unit, string) result) ->
  max_fiber_steps:int ref ->
  unit ->
  (unit -> unit) array * (Scheduler.result -> (unit, string) result)
(** The underlying scenario builder ([make] in {!Explore}/{!Dpor}
    terms), exposed for tests that drive an explorer directly. One fiber
    per script (fiber id = tid); [init] values are pre-enqueued outside
    the scheduled run and recorded as history of a synthetic thread. *)

val run :
  ?mode:mode ->
  ?max_schedules:int ->
  ?step_limit:int ->
  ?step_bound:int ->
  ?shrink:bool ->
  ?init:int list ->
  ?try_enqueue:('q -> tid:int -> int -> bool) ->
  ?enqueue_batch:('q -> tid:int -> int list -> unit) ->
  ?try_enqueue_batch:('q -> tid:int -> int list -> int) ->
  ?dequeue_batch:('q -> tid:int -> n:int -> int list) ->
  ?capacity:int ->
  ?extra_check:('q -> (unit, string) result) ->
  queue:'q ops ->
  scripts:script list ->
  unit ->
  report
(** Explore and check the scenario. [step_bound] turns on the
    wait-freedom certifier: any schedule in which some fiber exceeds the
    bound is a failure. [extra_check] runs per schedule after the
    built-in checks, outside the scheduler (yields ignored). [shrink]
    (default true) delta-debugs any failing schedule. Total operation
    count (scripts + init) is capped at 62 by the linearizability
    checker.

    [try_enqueue] implements the [`Try_enq] script op (required when a
    script uses it); [capacity] switches the linearizability check to
    the bounded-queue specification with that capacity (conservation
    always ignores rejected enqueues).

    Under [Dpor], [max_schedules] bounds total executions (complete +
    pruned); a [step_limit] hit is reported as a livelock/starvation
    failure. *)

val pp_failure : Format.formatter -> failure -> unit
(** The shrunk schedule when available, otherwise the raw message. *)

type certificate = {
  observed_bound : int;
      (** the scenario's empirical per-fiber step bound: the largest
          per-fiber step count over every explored schedule *)
  schedules : int;
}

val certify :
  ?mode:mode ->
  ?max_schedules:int ->
  ?step_limit:int ->
  ?init:int list ->
  ?try_enqueue:('q -> tid:int -> int -> bool) ->
  ?enqueue_batch:('q -> tid:int -> int list -> unit) ->
  ?try_enqueue_batch:('q -> tid:int -> int list -> int) ->
  ?dequeue_batch:('q -> tid:int -> n:int -> int list) ->
  ?capacity:int ->
  ?extra_check:('q -> (unit, string) result) ->
  bound:int ->
  queue:'q ops ->
  scripts:script list ->
  unit ->
  (certificate, string) result
(** The per-fiber step-bound wait-freedom certifier, as a first-class
    entry point (extracted from the [test_kp_variants] bound-64
    machinery so backends and benches can certify too — the crossover
    table of [wfq_bench polylog] is built from these certificates).

    Runs {!run} with [step_bound:bound] and demands a {e complete}
    verdict: [Ok] means the exploration exhausted its schedule space
    (under [mode]'s coverage — DPOR exhausts Mazurkiewicz traces;
    [Preemption_bounded] certifies only up to its preemption budget)
    with no linearizability/conservation failure and no fiber
    exceeding [bound] steps; the certificate carries the largest count
    actually observed. [Error] reports the shrunk counterexample, or
    incompleteness if the exploration was cut off by [max_schedules]. *)
