(** Counterexample shrinking: delta-debug a failing scheduler decision
    trace down to a minimal forced replay.

    A failure reported by {!Explore} or {!Dpor} arrives as the full list
    of enabled-list indices of the failing run — often hundreds of
    entries, almost all of which are the default choice. Shrinking
    exploits two facts: replay is deterministic ({!Scheduler.run}
    [~forced] reproduces the run bit-for-bit), and after the forced
    prefix runs out the scheduler continues with a deterministic
    strategy (First_enabled, i.e. choice 0). So any trailing zeros are
    free to drop, any segment whose removal still fails is gone for
    good, and any nonzero entry that can be zeroed moves the schedule
    closer to the default — leaving only the handful of forced switches
    that actually constitute the bug.

    The candidate evaluations tolerate [Invalid_argument] (an edited
    prefix can force an out-of-range index) by treating the candidate as
    non-failing. *)

module S = Scheduler

type step = {
  s_index : int;  (** decision number within the run *)
  s_fiber : int;  (** fiber id resumed at this decision *)
  s_access : S.access option;  (** the shared access the slice performed *)
}

type t = {
  forced : int list;  (** the minimal failing replay prefix *)
  message : string;  (** failure message of the shrunk schedule *)
  attempts : int;  (** candidate replays evaluated while shrinking *)
  original_length : int;  (** length of the trace before shrinking *)
  steps : step list;
      (** every decision of the shrunk run, for pretty-printing; the
          first [List.length forced] are the forced ones *)
}

let classify (result : S.result) check =
  match (result.S.error, result.S.outcome) with
  | Some e, _ -> Some ("exception: " ^ Printexc.to_string e)
  | None, S.Step_limit_hit -> Some "step limit hit (starvation or livelock)"
  | None, S.Only_stalled_left ->
      Some "stalled fibers left (unexpected in exploration)"
  | None, S.Aborted -> Some "run aborted (unexpected outside exploration)"
  | None, S.All_finished -> (
      match check result with Ok () -> None | Error msg -> Some msg)

let drop_trailing_zeros l =
  List.rev (List.rev l |> List.to_seq |> Seq.drop_while (( = ) 0)
            |> List.of_seq)

(* Remove the half-open slice [i, i+k) from [l]. *)
let remove_slice l i k =
  List.filteri (fun j _ -> j < i || j >= i + k) l

let shrink ?(max_attempts = 5_000) ?(step_limit = 100_000) ~make ~forced () =
  let attempts = ref 0 in
  let run candidate =
    let fibers, check = make () in
    match S.run ~step_limit ~forced:candidate fibers with
    | exception Invalid_argument _ -> None
    | result -> classify result check
  in
  let fails candidate =
    if !attempts >= max_attempts then None
    else begin
      incr attempts;
      run candidate
    end
  in
  (match run forced with
  | None -> invalid_arg "Shrink.shrink: the given schedule does not fail"
  | Some _ -> ());
  let best = ref (drop_trailing_zeros forced) in
  let try_candidate c =
    match fails c with
    | Some _ ->
        best := drop_trailing_zeros c;
        true
    | None -> false
  in
  (* ddmin-style segment removal: halving chunk sizes, rescanning at
     each size until no chunk of that size can be removed. *)
  let rec chunk_pass k =
    if k >= 1 then begin
      let changed = ref true in
      while !changed do
        changed := false;
        let i = ref 0 in
        while !i + k <= List.length !best do
          if try_candidate (remove_slice !best !i k) then changed := true
          else i := !i + k
        done
      done;
      if k > 1 then chunk_pass (k / 2)
    end
  in
  chunk_pass (max 1 (List.length !best / 2));
  (* zeroing pass, last entry first: each success turns one forced
     switch back into the default choice. *)
  let rec zero_pass i =
    if i >= 0 then begin
      let cur = !best in
      if i < List.length cur && List.nth cur i <> 0 then
        ignore
          (try_candidate (List.mapi (fun j v -> if j = i then 0 else v) cur));
      zero_pass (i - 1)
    end
  in
  zero_pass (List.length !best - 1);
  chunk_pass 1;
  (* Final instrumented replay of the minimal schedule. *)
  let fibers, check = make () in
  let result = S.run ~step_limit ~forced:!best fibers in
  let message =
    match classify result check with
    | Some msg -> msg
    | None ->
        (* cannot happen: [best] only ever holds failing schedules *)
        assert false
  in
  {
    forced = !best;
    message;
    attempts = !attempts;
    original_length = List.length forced;
    steps =
      List.mapi
        (fun i (d : S.decision) ->
          { s_index = i; s_fiber = d.S.d_chosen; s_access = d.S.d_access })
        result.S.decisions;
  }

let pp ppf t =
  let forced_len = List.length t.forced in
  Format.fprintf ppf
    "@[<v>schedule shrunk to %d forced decision%s (from %d; %d replays):@,"
    forced_len
    (if forced_len = 1 then "" else "s")
    t.original_length t.attempts;
  List.iteri
    (fun i s ->
      if i < forced_len then
        Format.fprintf ppf "  [%3d] fiber %d  %a@," s.s_index s.s_fiber
          (Format.pp_print_option
             ~none:(fun ppf () -> Format.pp_print_string ppf "-")
             S.pp_access)
          s.s_access)
    t.steps;
  let rest = List.length t.steps - forced_len in
  if rest > 0 then
    Format.fprintf ppf "  ... %d further deterministic steps to the failure@,"
      rest;
  Format.fprintf ppf "  failure: %s@]" t.message
