(** Systematic exploration of thread interleavings.

    Stateless model checking in the style of CHESS: the program under
    test is re-executed from scratch once per schedule, identified by the
    sequence of scheduler decisions recorded by {!Scheduler}; depth-first
    backtracking enumerates alternatives by bumping the deepest decision
    with an unexplored sibling and replaying the prefix via
    [Scheduler.run ~forced].

    Two modes:

    - {!exhaustive}: every interleaving. Exact but exponential in the
      total number of shared accesses — only for tiny programs (e.g. two
      fibers racing on a counter, or single short queue operations).
    - {!preemption_bounded}: every schedule with at most [budget]
      preemptions (context switches at points where the running fiber
      could have continued). Polynomial for fixed budget, and in practice
      almost all interleaving bugs manifest within 2-3 preemptions
      (Musuvathi & Qadeer, CHESS). This is what makes model-checking the
      Kogan-Petrank operations tractable: a single operation performs
      dozens of shared accesses, far beyond exhaustive reach.

    Plus {!fuzz}: seeded-random schedules for large configurations. *)

type report = {
  schedules : int;  (** number of complete schedules executed *)
  exhausted : bool;  (** false when [max_schedules] stopped the search *)
  failure : (int list * string) option;
      (** first failing schedule (as a [forced] replay prefix) and its
          message *)
}

type mode = Exhaustive | Preemption_bounded of int

(* Canonical enumeration order of the alternatives at one decision:
   default choice first. The default must match the strategy used for
   the unforced continuation, so that a recorded trace entry can be
   located inside this order. *)
let order ~mode ~n ~cur =
  let default =
    match mode with
    | Exhaustive -> 0
    | Preemption_bounded _ -> if cur >= 0 then cur else 0
  in
  default :: List.filter (fun j -> j <> default) (List.init n Fun.id)

let cost ~mode ~cur j =
  match mode with
  | Exhaustive -> 0
  | Preemption_bounded _ -> if cur < 0 || j = cur then 0 else 1

let strategy_of = function
  | Exhaustive -> Scheduler.First_enabled
  | Preemption_bounded _ -> Scheduler.Nonpreemptive

(* Deepest decision with an affordable unexplored sibling; returns the
   new forced prefix. [trace] is (n, idx, cur) in execution order. *)
let next_prefix ~mode ~budget trace =
  let entries = Array.of_list trace in
  let costs =
    Array.map (fun (_, idx, cur) -> cost ~mode ~cur idx) entries
  in
  let spent_before = Array.make (Array.length entries + 1) 0 in
  Array.iteri
    (fun i c -> spent_before.(i + 1) <- spent_before.(i) + c)
    costs;
  let rec scan p =
    if p < 0 then None
    else begin
      let n, idx, cur = entries.(p) in
      let ord = order ~mode ~n ~cur in
      let rec after = function
        | [] -> []
        | j :: rest -> if j = idx then rest else after rest
      in
      let viable =
        List.filter
          (fun j -> spent_before.(p) + cost ~mode ~cur j <= budget)
          (after ord)
      in
      match viable with
      | j :: _ ->
          let prefix =
            List.init p (fun i ->
                let _, chosen, _ = entries.(i) in
                chosen)
          in
          Some (prefix @ [ j ])
      | [] -> scan (p - 1)
    end
  in
  scan (Array.length entries - 1)

let classify (result : Scheduler.result) check =
  match (result.error, result.outcome) with
  | Some e, _ -> Some ("exception: " ^ Printexc.to_string e)
  | None, Scheduler.Step_limit_hit ->
      Some "step limit hit (starvation or livelock)"
  | None, Scheduler.Only_stalled_left ->
      Some "stalled fibers left (unexpected in exploration)"
  | None, Scheduler.Aborted ->
      Some "run aborted (unexpected outside guided exploration)"
  | None, Scheduler.All_finished -> (
      match check result with Ok () -> None | Error msg -> Some msg)

let explore ~mode ?(max_schedules = 200_000) ?(step_limit = 100_000)
    ~(make :
     unit ->
     (unit -> unit) array * (Scheduler.result -> (unit, string) result)) () =
  let budget =
    match mode with Exhaustive -> max_int | Preemption_bounded b -> b
  in
  let strategy = strategy_of mode in
  let rec go forced count =
    if count >= max_schedules then
      { schedules = count; exhausted = false; failure = None }
    else begin
      let fibers, check = make () in
      let result = Scheduler.run ~strategy ~step_limit ~forced fibers in
      match classify result check with
      | Some msg ->
          {
            schedules = count + 1;
            exhausted = false;
            failure =
              Some (List.map (fun (_, i, _) -> i) result.trace, msg);
          }
      | None -> (
          match next_prefix ~mode ~budget result.trace with
          | None ->
              { schedules = count + 1; exhausted = true; failure = None }
          | Some forced' -> go forced' (count + 1))
    end
  in
  go [] 0

let exhaustive ?max_schedules ?step_limit ~make () =
  explore ~mode:Exhaustive ?max_schedules ?step_limit ~make ()

(** Dynamic partial-order reduction (see {!Dpor}): exhaustive-equivalent
    coverage at one schedule per Mazurkiewicz trace, reported in this
    module's format for drop-in use where {!exhaustive} is too slow. *)
let dpor ?max_schedules ?step_limit ~make () =
  let r = Dpor.explore ?max_executions:max_schedules ?step_limit ~make () in
  {
    schedules = r.Dpor.schedules;
    exhausted = r.Dpor.exhausted;
    failure = r.Dpor.failure;
  }

let preemption_bounded ~budget ?max_schedules ?step_limit ~make () =
  explore ~mode:(Preemption_bounded budget) ?max_schedules ?step_limit ~make
    ()

(** PCT fuzzing: [count] runs under {!Scheduler.Pct} with varying seeds.
    [change_points] selects the targeted bug depth minus one;
    [expected_length] should over-approximate the run's step count (it
    is re-estimated from the first run when omitted). *)
let pct ?(seed0 = 0) ?(count = 1000) ?(change_points = 2)
    ?expected_length ?(step_limit = 1_000_000) ~make () =
  let expected_length =
    match expected_length with
    | Some k -> k
    | None ->
        (* Calibration run under the deterministic strategy. *)
        let fibers, _ = make () in
        let r = Scheduler.run ~step_limit fibers in
        max 1 r.Scheduler.total_steps
  in
  let rec go i =
    if i >= count then { schedules = count; exhausted = true; failure = None }
    else begin
      let fibers, check = make () in
      let result =
        Scheduler.run
          ~strategy:
            (Scheduler.Pct
               { seed = seed0 + i; change_points; expected_length })
          ~step_limit fibers
      in
      match classify result check with
      | Some msg ->
          {
            schedules = i + 1;
            exhausted = false;
            failure =
              Some
                ( List.map (fun (_, j, _) -> j) result.trace,
                  Printf.sprintf "%s (pct seed %d)" msg (seed0 + i) );
          }
      | None -> go (i + 1)
    end
  in
  go 0

(** Randomized schedule fuzzing: [count] runs with seeds
    [seed0 .. seed0+count-1], each checked like {!explore}. Complements
    systematic exploration for configurations too large to enumerate. *)
let fuzz ?(seed0 = 0) ?(count = 1000) ?(step_limit = 1_000_000) ~make () =
  let rec go i =
    if i >= count then
      { schedules = count; exhausted = true; failure = None }
    else begin
      let fibers, check = make () in
      let result =
        Scheduler.run
          ~strategy:(Scheduler.Random_seeded (seed0 + i))
          ~step_limit fibers
      in
      match classify result check with
      | Some msg ->
          {
            schedules = i + 1;
            exhausted = false;
            failure =
              Some
                ( List.map (fun (_, j, _) -> j) result.trace,
                  Printf.sprintf "%s (seed %d)" msg (seed0 + i) );
          }
      | None -> go (i + 1)
    end
  in
  go 0
