(** Simulator implementation of {!Wfq_primitives.Atomic_intf.ATOMIC}.

    Cells are plain references — the simulator is single-domain — but
    every access first performs {!Scheduler.Yield_access}, making each
    shared read/write/CAS an individual scheduling point. Instantiating
    a queue functor with this module therefore exposes every
    interleaving of its shared-memory accesses to the scheduler, which
    is exactly the granularity of the paper's atomic-step model (§5.1).

    Each cell carries a unique location id (allocation order within the
    process), and each access is tagged Read/Write/Rmw — the metadata
    {!Dpor}'s happens-before analysis keys on. Ids are only comparable
    within one execution: re-running [make] allocates fresh ids.

    [compare_and_set] uses physical equality, like [Stdlib.Atomic] (and
    like Java reference CAS); for immediates such as [int], physical and
    structural equality coincide. A failed CAS is conservatively still
    an Rmw access (sound for DPOR, merely less reduction). *)

type 'a t = { mutable contents : 'a; loc : int }

let loc_counter = ref 0

let make v =
  incr loc_counter;
  { contents = v; loc = !loc_counter }

let get r =
  Scheduler.yield_access { Scheduler.loc = r.loc; kind = Scheduler.Read };
  r.contents

(* Non-yielding read for assertions outside a scheduled run. *)
let peek r = r.contents

(* Location id, for tests that assert on conflict detection. *)
let loc_id r = r.loc

let set r v =
  Scheduler.yield_access { Scheduler.loc = r.loc; kind = Scheduler.Write };
  r.contents <- v

let compare_and_set r expected desired =
  Scheduler.yield_access { Scheduler.loc = r.loc; kind = Scheduler.Rmw };
  if r.contents == expected then begin
    r.contents <- desired;
    true
  end
  else false

let exchange r v =
  Scheduler.yield_access { Scheduler.loc = r.loc; kind = Scheduler.Rmw };
  let old = r.contents in
  r.contents <- v;
  old

let fetch_and_add r d =
  Scheduler.yield_access { Scheduler.loc = r.loc; kind = Scheduler.Rmw };
  let old = r.contents in
  r.contents <- old + d;
  old
