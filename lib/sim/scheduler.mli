(** Deterministic concurrency simulator.

    Runs N {e fibers} (effect-handler coroutines) in one domain,
    context-switching at every shared-memory access performed through
    {!Sim_atomic}. Because the queue algorithms are functors over
    [ATOMIC], the exact code benchmarked on real domains is the code
    explored here — under scheduling strategies, replayable traces and
    stall injection that a real machine cannot provide on demand.

    A run is single-domain and not reentrant. *)

type access_kind = Read | Write | Rmw
(** [Rmw] covers CAS / exchange / fetch-and-add: conflicts with both
    reads and writes. A failed CAS is conservatively still [Rmw]. *)

type access = { loc : int; kind : access_kind }
(** One shared-memory access: [loc] identifies the cell ({!Sim_atomic}
    numbers cells in allocation order, so ids are only comparable within
    a single execution). *)

val pp_access : Format.formatter -> access -> unit
(** Prints e.g. [R#12], [W#3], [U#7] (U = read-modify-write). *)

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Yield_access : access -> unit Effect.t

val yield : unit -> unit
(** Hand control back to the scheduler. Performed by {!Sim_atomic} before
    every shared access; test fibers may also call it directly to insert
    extra schedule points. *)

val yield_access : access -> unit
(** Like {!yield}, additionally telling the scheduler which shared
    access the fiber performs immediately after being resumed — the
    metadata {!Dpor} computes happens-before from. *)

exception Abort_run
(** A [Guided] callback may raise this to end the run early with outcome
    {!Aborted}; paused fibers are still unwound cleanly. *)

type guided_ctx = {
  g_step : int;  (** scheduling decisions taken so far (0-based index) *)
  g_enabled : (int * access option) list;
      (** enabled fibers in ascending id order: (fiber id, the shared
          access its next slice performs, or [None] for an access-free
          slice — fiber startup or final return) *)
  g_cur : int;
      (** index of the previously-running fiber within [g_enabled], or
          -1 if it is not enabled *)
}

type strategy =
  | First_enabled  (** always pick the lowest-id enabled fiber *)
  | Round_robin  (** rotate over enabled fibers *)
  | Random_seeded of int  (** uniform choice from a SplitMix64 stream *)
  | Nonpreemptive
      (** keep running the current fiber while it stays enabled; switch
          only when it finishes or stalls — the zero-preemption baseline
          of CHESS-style exploration (see {!Explore}) *)
  | Pct of { seed : int; change_points : int; expected_length : int }
      (** probabilistic concurrency testing (Burckhardt et al.): random
          distinct priorities, highest-priority enabled fiber runs; at
          [change_points] random step indices the running fiber's
          priority drops below everyone's. Hits any bug of preemption
          depth [change_points + 1] with probability at least
          1/(n * expected_length^change_points). *)
  | Guided of (guided_ctx -> int)
      (** the callback picks the enabled-list index to run at every
          decision, seeing each enabled fiber's pending shared access —
          the hook {!Dpor} drives exploration through. It may raise
          {!Abort_run} to end the run with {!Aborted}. *)

type outcome =
  | All_finished
  | Step_limit_hit
      (** the run exceeded its step budget: starvation/deadlock signal *)
  | Only_stalled_left
      (** every non-stalled fiber finished while stalled ones remain *)
  | Aborted  (** a [Guided] callback raised {!Abort_run} *)

type decision = {
  d_enabled : (int * access option) list;
      (** the enabled fibers at this decision, ascending id order, each
          with the shared access its next slice performs (if any) *)
  d_chosen : int;  (** fiber id that was resumed *)
  d_index : int;  (** index of the chosen fiber within [d_enabled] *)
  d_access : access option;  (** the access the chosen slice performed *)
}

type result = {
  outcome : outcome;
  steps : int array;  (** per-fiber step counts *)
  total_steps : int;
  trace : (int * int * int) list;
      (** per scheduling decision, in execution order: (number of enabled
          fibers, index of the chosen one within the enabled list, index
          of the previously-running fiber within the enabled list, or -1
          if it is not enabled). Replaying the chosen indices through
          [forced] reproduces the run. *)
  decisions : decision list;
      (** the same decisions with fiber ids and access metadata — what
          {!Dpor} analyses and {!Shrink} pretty-prints *)
  error : exn option;  (** first exception raised inside a fiber *)
}

exception Fiber_aborted
(** Raised inside fibers abandoned at the end of a run (stalled or over
    the step limit) to unwind their stacks. *)

val run :
  ?strategy:strategy ->
  ?step_limit:int ->
  ?stalls:(int * int) list ->
  ?resume_stalled:bool ->
  ?forced:int list ->
  (unit -> unit) array ->
  result
(** [run fibers] executes all fibers to completion (or until only
    stalled fibers remain, or [step_limit] — default 1,000,000 — is
    hit).

    [stalls] freezes fiber [id] once it has taken [n] steps, modelling a
    thread preempted for arbitrarily long; with [resume_stalled:true]
    the frozen fibers wake up once every other fiber has finished.
    [forced] replays a prefix of scheduling choices (enabled-list
    indices) before the strategy takes over. *)

val ignore_yields : (unit -> 'a) -> 'a
(** Run [f] with {!Yield} handled as a no-op, so simulator-instantiated
    observers (e.g. [to_list]) can be called outside a scheduled run. *)
