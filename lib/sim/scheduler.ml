(** Deterministic concurrency simulator.

    The host for this reproduction has a single core, so genuinely
    parallel interleavings are scarce; worse, real schedulers rarely
    produce the adversarial interleavings that concurrency proofs are
    about. This scheduler runs N {e fibers} (effect-handler coroutines)
    in one OCaml domain and context-switches them at every shared-memory
    access: {!Sim_atomic} performs the {!Yield} effect before each
    operation, handing control back here. Because the algorithms are
    functors over [ATOMIC], the exact code benchmarked on real domains is
    the code explored here.

    Supported controls:
    - {e strategies}: first-enabled (deterministic), round-robin, seeded
      random, each optionally preceded by a forced replay prefix (used by
      {!Explore} for exhaustive enumeration);
    - {e stall injection}: a fiber can be frozen after a given number of
      steps, modelling a thread preempted for arbitrarily long — the
      scenario wait-freedom is about;
    - {e step limits}: a bounded run that does not finish indicates
      starvation or deadlock, which is itself an observable outcome for
      tests (e.g. a blocked two-lock queue).

    Single-domain use only; a run is not reentrant. *)

type access_kind = Read | Write | Rmw

type access = { loc : int; kind : access_kind }
(* [loc] is the cell identity ({!Sim_atomic} allocates them from a
   counter); ids are only meaningful within one execution. *)

let pp_access_kind ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"
  | Rmw -> Format.pp_print_string ppf "U"

let pp_access ppf a = Format.fprintf ppf "%a#%d" pp_access_kind a.kind a.loc

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Yield_access : access -> unit Effect.t

(* Performed by Sim_atomic before every shared access; also usable
   directly by test fibers to add schedule points. *)
let yield () = Effect.perform Yield
let yield_access a = Effect.perform (Yield_access a)

exception Abort_run
(* Raised by a [Guided] callback to cut the current execution short
   (e.g. DPOR sleep-set pruning); the run finishes with {!Aborted}
   after cleanly unwinding every paused fiber. *)

type guided_ctx = {
  g_step : int;  (** scheduling decisions taken so far (0-based index) *)
  g_enabled : (int * access option) list;
      (** enabled fibers in ascending id order: (fiber id, the shared
          access it will perform when resumed next, or [None] when its
          next slice performs none — first slice or final return) *)
  g_cur : int;
      (** index of the previously-running fiber within [g_enabled], or
          -1 if it is not enabled *)
}

type strategy =
  | First_enabled  (** always pick the lowest-id enabled fiber *)
  | Round_robin  (** rotate over enabled fibers *)
  | Random_seeded of int  (** uniform choice from a SplitMix64 stream *)
  | Nonpreemptive
      (** keep running the current fiber while it stays enabled; switch
          (to the lowest-id enabled fiber) only when it finishes or
          stalls — the zero-preemption baseline of CHESS-style
          preemption-bounded exploration *)
  | Pct of { seed : int; change_points : int; expected_length : int }
      (** probabilistic concurrency testing (Burckhardt et al., ASPLOS
          2010): fibers get random distinct priorities and the
          highest-priority enabled fiber always runs; at [change_points]
          step indices drawn uniformly from [1, expected_length] the
          running fiber's priority drops below everyone's. Hits any bug
          of preemption depth d = change_points+1 with probability at
          least 1/(n * k^(d-1)). *)
  | Guided of (guided_ctx -> int)
      (** the callback picks the enabled-list index to run at every
          decision, seeing each enabled fiber's pending shared access —
          the hook {!Dpor} drives exploration through. It may raise
          {!Abort_run} to end the run with {!Aborted}. *)

type resume_state =
  | Fresh of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | Finished

type fiber = {
  id : int;
  mutable resume : resume_state;
  mutable steps : int;
  mutable stalled : bool;
  mutable next_access : access option;
      (* the shared access this paused fiber will perform when resumed,
         as reported by the Yield_access it paused on *)
}

type outcome =
  | All_finished
  | Step_limit_hit
      (** the run exceeded its step budget: starvation/deadlock signal *)
  | Only_stalled_left
      (** every non-stalled fiber finished while stalled ones remain *)
  | Aborted
      (** a [Guided] callback raised {!Abort_run} (sleep-set pruning) *)

type decision = {
  d_enabled : (int * access option) list;
      (** the enabled fibers at this decision, ascending id order, each
          with the shared access its next slice performs (if any) *)
  d_chosen : int;  (** fiber id that was resumed *)
  d_index : int;  (** index of the chosen fiber within [d_enabled] *)
  d_access : access option;  (** the access the chosen slice performed *)
}

type result = {
  outcome : outcome;
  steps : int array;  (** per-fiber step counts *)
  total_steps : int;
  trace : (int * int * int) list;
      (** per scheduling decision, in execution order: (number of enabled
          fibers, index of the chosen one within the enabled list, index
          of the previously-running fiber within the enabled list, or -1
          if it is not enabled). Replaying the chosen indices through
          [forced] reproduces the run; the third component lets
          {!Explore} count preemptions. *)
  decisions : decision list;
      (** the same decisions with fiber ids and access metadata — what
          {!Dpor} analyses and {!Shrink} pretty-prints *)
  error : exn option;  (** first exception raised inside a fiber *)
}

exception Fiber_aborted
(* Used to unwind fibers abandoned at the end of a run (stalled or over
   the step limit), so their continuations are discontinued cleanly. *)

type t = {
  fibers : fiber array;
  strategy : strategy;
  step_limit : int;
  stall_after : int array; (* -1 = never stall *)
  resume_stalled : bool;
  mutable forced : int list; (* replay prefix: enabled-list indices *)
  mutable trace_rev : (int * int * int) list;
  mutable decisions_rev : decision list;
  mutable last_run : int; (* fiber id of the last resumed fiber, or -1 *)
  mutable total_steps : int;
  mutable rr_cursor : int;
  rng : Wfq_primitives.Rng.t;
  pct_priorities : int array; (* higher runs first; empty unless Pct *)
  pct_changes : (int, unit) Hashtbl.t; (* step indices triggering drops *)
  mutable pct_next_low : int;
  mutable error : exn option;
}

let start_fiber t fiber thunk =
  Effect.Deep.match_with thunk ()
    {
      retc = (fun () -> fiber.resume <- Finished);
      exnc =
        (fun e ->
          fiber.resume <- Finished;
          match e with
          | Fiber_aborted -> ()
          | e -> if t.error = None then t.error <- Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  fiber.next_access <- None;
                  fiber.resume <- Paused k)
          | Yield_access acc ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  fiber.next_access <- Some acc;
                  fiber.resume <- Paused k)
          | _ -> None);
    }

let resume_fiber t (fiber : fiber) =
  fiber.steps <- fiber.steps + 1;
  t.total_steps <- t.total_steps + 1;
  (* If the slice runs to completion without yielding again, no stale
     pending access must survive. *)
  fiber.next_access <- None;
  match fiber.resume with
  | Fresh thunk -> start_fiber t fiber thunk
  | Paused k ->
      fiber.resume <- Paused k;
      Effect.Deep.continue k ()
  | Finished -> assert false

let is_finished (f : fiber) = match f.resume with Finished -> true | _ -> false

let enabled_fibers t =
  Array.to_list t.fibers
  |> List.filter (fun f -> (not (is_finished f)) && not f.stalled)

let apply_stalls t =
  Array.iter
    (fun (f : fiber) ->
      let threshold = t.stall_after.(f.id) in
      if threshold >= 0 && f.steps >= threshold then f.stalled <- true)
    t.fibers

let index_of_fiber enabled id =
  let rec go i = function
    | [] -> -1
    | (f : fiber) :: rest -> if f.id = id then i else go (i + 1) rest
  in
  go 0 enabled

let choose t enabled =
  let n = List.length enabled in
  let cur = index_of_fiber enabled t.last_run in
  let enabled_acc =
    List.map (fun (f : fiber) -> (f.id, f.next_access)) enabled
  in
  let idx =
    match t.forced with
    | i :: rest ->
        t.forced <- rest;
        if i >= n then
          invalid_arg "Scheduler: forced choice out of range (bad replay?)";
        i
    | [] -> (
        match t.strategy with
        | First_enabled -> 0
        | Nonpreemptive -> if cur >= 0 then cur else 0
        | Round_robin ->
            let i = t.rr_cursor mod n in
            t.rr_cursor <- t.rr_cursor + 1;
            i
        | Random_seeded _ -> Wfq_primitives.Rng.below t.rng n
        | Pct _ ->
            (* Priority drop at a change point applies to the fiber that
               just ran, before picking the next one. *)
            if Hashtbl.mem t.pct_changes t.total_steps && t.last_run >= 0
            then begin
              t.pct_priorities.(t.last_run) <- t.pct_next_low;
              t.pct_next_low <- t.pct_next_low - 1
            end;
            let best = ref 0 and best_prio = ref min_int in
            List.iteri
              (fun i (f : fiber) ->
                if t.pct_priorities.(f.id) > !best_prio then begin
                  best := i;
                  best_prio := t.pct_priorities.(f.id)
                end)
              enabled;
            !best
        | Guided g ->
            let i =
              g { g_step = t.total_steps; g_enabled = enabled_acc; g_cur = cur }
            in
            if i < 0 || i >= n then
              invalid_arg "Scheduler: guided choice out of range";
            i)
  in
  t.trace_rev <- (n, idx, cur) :: t.trace_rev;
  let f = List.nth enabled idx in
  t.decisions_rev <-
    {
      d_enabled = enabled_acc;
      d_chosen = f.id;
      d_index = idx;
      d_access = f.next_access;
    }
    :: t.decisions_rev;
  t.last_run <- f.id;
  f

let cleanup t =
  (* Discontinue abandoned fibers so their stacks unwind. *)
  Array.iter
    (fun (f : fiber) ->
      match f.resume with
      | Paused k ->
          f.stalled <- false;
          (try Effect.Deep.discontinue k Fiber_aborted with Fiber_aborted -> ())
      | Fresh _ | Finished -> ())
    t.fibers

let finish t outcome =
  cleanup t;
  {
    outcome;
    steps = Array.map (fun (f : fiber) -> f.steps) t.fibers;
    total_steps = t.total_steps;
    trace = List.rev t.trace_rev;
    decisions = List.rev t.decisions_rev;
    error = t.error;
  }

let rec loop t =
  if t.total_steps >= t.step_limit then finish t Step_limit_hit
  else begin
    apply_stalls t;
    match enabled_fibers t with
    | [] ->
        let unfinished = Array.exists (fun f -> not (is_finished f)) t.fibers
        in
        if not unfinished then finish t All_finished
        else if
          t.resume_stalled
          && Array.exists (fun f -> f.stalled && not (is_finished f)) t.fibers
        then begin
          (* Model the stalled threads eventually waking up (after the
             arbitrarily long preemption): clear stalls and continue. *)
          Array.iter
            (fun f ->
              f.stalled <- false;
              (* make the stall one-shot *)
              t.stall_after.(f.id) <- -1)
            t.fibers;
          loop t
        end
        else finish t Only_stalled_left
    | enabled -> (
        match choose t enabled with
        | exception Abort_run -> finish t Aborted
        | fiber ->
            resume_fiber t fiber;
            loop t)
  end

(** Run [f] with {!Yield} handled as a no-op: lets test code call
    simulator-instantiated observers (which perform yields) outside a
    scheduled run, e.g. to inspect a queue after all fibers finished. *)
let ignore_yields f =
  Effect.Deep.match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  Effect.Deep.continue k ())
          | Yield_access _ ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  Effect.Deep.continue k ())
          | _ -> None);
    }

let run ?(strategy = First_enabled) ?(step_limit = 1_000_000)
    ?(stalls = []) ?(resume_stalled = false) ?(forced = []) thunks =
  let n = Array.length thunks in
  if n = 0 then invalid_arg "Scheduler.run: no fibers";
  let stall_after = Array.make n (-1) in
  List.iter
    (fun (id, after) ->
      if id < 0 || id >= n then invalid_arg "Scheduler.run: bad stall id";
      stall_after.(id) <- after)
    stalls;
  let seed =
    match strategy with
    | Random_seeded s -> s
    | Pct { seed; _ } -> seed
    | First_enabled | Round_robin | Nonpreemptive | Guided _ -> 0
  in
  let t =
    {
      fibers =
        Array.init n (fun id ->
            {
              id;
              resume = Fresh thunks.(id);
              steps = 0;
              stalled = false;
              next_access = None;
            });
      strategy;
      step_limit;
      stall_after;
      resume_stalled;
      forced;
      trace_rev = [];
      decisions_rev = [];
      last_run = -1;
      total_steps = 0;
      rr_cursor = 0;
      rng = Wfq_primitives.Rng.create ~seed;
      pct_priorities = Array.make n 0;
      pct_changes = Hashtbl.create 8;
      pct_next_low = -1;
      error = None;
    }
  in
  (match strategy with
  | Pct { change_points; expected_length; _ } ->
      (* Random distinct initial priorities: a Fisher-Yates shuffle of
         1..n driven by the seeded stream. *)
      let perm = Array.init n (fun i -> i + 1) in
      for i = n - 1 downto 1 do
        let j = Wfq_primitives.Rng.below t.rng (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      Array.blit perm 0 t.pct_priorities 0 n;
      for _ = 1 to change_points do
        Hashtbl.replace t.pct_changes
          (1 + Wfq_primitives.Rng.below t.rng (max 1 expected_length))
          ()
      done
  | First_enabled | Round_robin | Random_seeded _ | Nonpreemptive | Guided _ ->
      ());
  loop t
