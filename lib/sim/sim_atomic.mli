(** Simulator implementation of [Wfq_primitives.Atomic_intf.ATOMIC]:
    plain cells whose every access first performs
    {!Scheduler.Yield_access}, making each shared read/write/CAS an
    individual scheduling point — the paper's atomic-step execution
    model (§5.1), made executable. Accesses carry a per-cell location id
    and a Read/Write/Rmw kind, feeding {!Dpor}'s happens-before
    analysis. *)

include Wfq_primitives.Atomic_intf.ATOMIC

val peek : 'a t -> 'a
(** Non-yielding read for assertions outside a scheduled run. *)

val loc_id : 'a t -> int
(** The cell's location id as reported in {!Scheduler.access}. Ids are
    assigned in allocation order and only comparable within one
    execution. *)
