(** Descriptive statistics for benchmark results. The paper reports
    ten-run averages and notes negligible standard deviations; these
    helpers compute both, plus the percentiles used by the latency
    harness. All functions raise [Invalid_argument] on empty input. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation; [0.] for fewer than two samples. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float list -> float -> float
(** Nearest-rank percentile; the percentile argument must be within
    [0, 100]. Raises [Invalid_argument] if any sample is NaN (a NaN
    defeats sorting and silently shifts every rank, so it is treated as
    an upstream bug, not data). *)

val percentile_in_place : float array -> float -> float
(** Nearest-rank percentile over [arr], which is sorted in place with
    [Float.compare] (no copy, no boxing — the latency paths hold
    millions of samples). The caller cedes the element order. Raises
    [Invalid_argument] on an empty array, NaN samples, or a percentile
    outside [0, 100]. *)

val percentiles_in_place : float array -> float list -> float list
(** Several quantiles from one in-place sort (e.g.
    [[50.; 99.; 99.9]] for an SLO report). Same contract as
    {!percentile_in_place}. *)

val median : float list -> float
