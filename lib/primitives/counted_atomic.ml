(** Instrumented [ATOMIC] wrapper that counts shared-memory operations.

    Instantiating a queue functor with [Counted_atomic.Make (Real_atomic)]
    yields the same queue plus a per-module operation profile: how many
    atomic reads, writes, successful and failed CASes an operation
    performs. This is the executable form of the cost model behind the
    paper's §3.3 discussion (the [maxPhase] scan, helping overhead, and
    the "costly CAS" the validation enhancement avoids).

    Counters are plain module-level ints: exact in single-domain use
    (the simulator or single-threaded profiling); for multi-domain runs
    they are indicative only. Each functor application owns independent
    counters. *)

type counters = {
  reads : int;
  writes : int;
  cas_success : int;
  cas_failure : int;
  exchanges : int;
  fetch_adds : int;
}

let zero =
  { reads = 0; writes = 0; cas_success = 0; cas_failure = 0; exchanges = 0;
    fetch_adds = 0 }

let total c =
  c.reads + c.writes + c.cas_success + c.cas_failure + c.exchanges
  + c.fetch_adds

let pp fmt c =
  Format.fprintf fmt
    "reads=%d writes=%d cas_ok=%d cas_fail=%d xchg=%d faa=%d (total %d)"
    c.reads c.writes c.cas_success c.cas_failure c.exchanges c.fetch_adds
    (total c)

(* ------------------------------------------------------------------ *)
(* Epoch tags: version-stamped integers for ABA-safe recycling         *)
(* ------------------------------------------------------------------ *)

module Epoch = struct
  (* A small signed payload (>= -1) and an incarnation counter packed
     into one immediate int, so a CAS on an [int A.t] cell compares both
     at once. Used by the node pools ([Segment_pool]): a recycled node's
     claim word carries the next incarnation's epoch, so a stalled
     helper's CAS — expecting the previous incarnation's packed word —
     fails instead of ABA-claiming the fresh incarnation.

     Layout: [epoch lsl bits + value]. Epoch 0 packs to the raw value,
     so untagged code and tagged code agree on the initial state
     (pack ~epoch:0 (-1) = -1, the queues' unclaimed marker). *)

  let bits = 20
  let max_value = (1 lsl (bits - 1)) - 1

  let pack ~epoch value =
    if value < -1 || value > max_value then
      invalid_arg "Counted_atomic.Epoch.pack: value out of range";
    (epoch lsl bits) + value

  (* [p + 1 = epoch lsl bits + (value + 1)] with [value + 1] in
     [0, 2^bits): the shift separates the fields exactly. *)
  let epoch p = (p + 1) asr bits
  let value p = ((p + 1) land ((1 lsl bits) - 1)) - 1

  let with_value p v = pack ~epoch:(epoch p) v

  (** The unclaimed word of the next incarnation: bump the epoch, reset
      the payload to -1. Applied when a pooled node is recycled. *)
  let next_incarnation p = pack ~epoch:(epoch p + 1) (-1)
end

module Make (Base : Atomic_intf.ATOMIC) = struct
  type 'a t = 'a Base.t

  let reads = ref 0
  let writes = ref 0
  let cas_success = ref 0
  let cas_failure = ref 0
  let exchanges = ref 0
  let fetch_adds = ref 0

  let reset () =
    reads := 0;
    writes := 0;
    cas_success := 0;
    cas_failure := 0;
    exchanges := 0;
    fetch_adds := 0

  let snapshot () =
    {
      reads = !reads;
      writes = !writes;
      cas_success = !cas_success;
      cas_failure = !cas_failure;
      exchanges = !exchanges;
      fetch_adds = !fetch_adds;
    }

  let make = Base.make

  let get c =
    incr reads;
    Base.get c

  let set c v =
    incr writes;
    Base.set c v

  let compare_and_set c expected desired =
    let ok = Base.compare_and_set c expected desired in
    if ok then incr cas_success else incr cas_failure;
    ok

  let exchange c v =
    incr exchanges;
    Base.exchange c v

  let fetch_and_add c d =
    incr fetch_adds;
    Base.fetch_and_add c d
end
