(** Instrumented [ATOMIC] wrapper counting shared-memory operations —
    the executable cost model behind the paper's §3.3 discussion. Exact
    in single-domain use; each functor application owns independent
    counters. *)

type counters = {
  reads : int;
  writes : int;
  cas_success : int;
  cas_failure : int;
  exchanges : int;
  fetch_adds : int;
}

val zero : counters
val total : counters -> int
val pp : Format.formatter -> counters -> unit

(** Epoch tags: a small signed payload (>= -1) and an incarnation
    counter packed into one immediate int, so a CAS on an [int A.t] cell
    validates both atomically. This is the ABA defense for recycled
    queue nodes ([Segment_pool]): resetting a node bumps the epoch in
    its claim word, so a stalled helper's claim CAS — whose expected
    word carries the {e old} epoch — fails instead of claiming the new
    incarnation. Epoch 0 packs to the raw value, so the initial state of
    tagged and untagged cells coincides. *)
module Epoch : sig
  val bits : int
  (** Payload width; payloads must lie in [-1, 2^(bits-1) - 1]. *)

  val max_value : int

  val pack : epoch:int -> int -> int
  (** [pack ~epoch v] = [epoch lsl bits + v]. Raises [Invalid_argument]
      on an out-of-range payload. *)

  val epoch : int -> int
  (** Incarnation counter of a packed word. *)

  val value : int -> int
  (** Payload of a packed word. [value (pack ~epoch v) = v]. *)

  val with_value : int -> int -> int
  (** [with_value p v]: [p]'s epoch, payload [v]. *)

  val next_incarnation : int -> int
  (** Bump the epoch and reset the payload to -1 (unclaimed). *)
end

module Make (Base : Atomic_intf.ATOMIC) : sig
  include Atomic_intf.ATOMIC

  val reset : unit -> unit
  val snapshot : unit -> counters
end
