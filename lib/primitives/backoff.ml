(** Truncated exponential backoff for CAS retry loops.

    Used by the lock-free baselines to reduce contention on CAS failure.
    Backoff never affects correctness, only throughput; the wait-free queue
    does not need it for progress but may use it as a performance tuning
    knob (cf. paper §3.3 on validation checks and tuning). *)

type t = {
  min_spins : int;
  max_spins : int;
  mutable spins : int;
}

let default_min = 1 lsl 4
let default_max = 1 lsl 12

let create ?(min_spins = default_min) ?(max_spins = default_max) () =
  if min_spins <= 0 then invalid_arg "Backoff.create: min_spins must be > 0";
  if max_spins < min_spins then
    invalid_arg "Backoff.create: max_spins must be >= min_spins";
  { min_spins; max_spins; spins = min_spins }

let once t =
  (* [Domain.cpu_relax] compiles to the architecture's spin-wait hint
     (PAUSE on x86, YIELD on arm64): it frees pipeline resources for the
     sibling hyperthread and cuts the memory-order-violation penalty
     when the awaited line arrives, which a plain arithmetic spin loop
     does neither of. *)
  for _ = 1 to t.spins do
    Domain.cpu_relax ()
  done;
  (* Clamped doubling: [max_spins] is a true ceiling even when it is not
     on the doubling ladder (previously 3 -> 6 -> 12 could overshoot a
     cap of 10). *)
  if t.spins < t.max_spins then t.spins <- min (t.spins * 2) t.max_spins

let reset t = t.spins <- t.min_spins
let current_spins t = t.spins
