(** Truncated exponential backoff for CAS retry loops.

    Purely a throughput knob for lock-free retry loops — never needed for
    correctness, and the wait-free queue does not need it for progress. *)

type t

val default_min : int
(** 16 — the [create] default for [min_spins]. *)

val default_max : int
(** 4096 — the [create] default for [max_spins]. *)

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** [create ()] makes a backoff starting at [min_spins] (default
    {!default_min}) and doubling up to [max_spins] (default
    {!default_max}) spin-wait-hint iterations. Raises
    [Invalid_argument] if [min_spins <= 0] or [max_spins < min_spins]. *)

val once : t -> unit
(** Spin for the current duration — each iteration is a
    [Domain.cpu_relax] architecture spin-wait hint — then double it,
    clamped to the cap. Call after a failed CAS. *)

val reset : t -> unit
(** Return to [min_spins]. Call after a successful operation. *)

val current_spins : t -> int
(** Current spin count (for tests and diagnostics). *)
