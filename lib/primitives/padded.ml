(** Cache-line padded atomic cells.

    Per-thread slots that live in adjacent heap words (e.g. the entries of
    the paper's [state] array) can suffer false sharing: two threads CASing
    logically-independent slots invalidate each other's cache line. A
    [Padded.t] embeds the atomic in a record padded to at least one cache
    line (64 bytes = 8 words on x86-64), so distinct slots never share a
    line regardless of allocation order. *)

type 'a t = {
  cell : 'a Atomic.t;
  (* Seven immutable filler words push the next heap object past the
     cache line that holds [cell]'s pointer and header. *)
  _p0 : int;
  _p1 : int;
  _p2 : int;
  _p3 : int;
  _p4 : int;
  _p5 : int;
  _p6 : int;
}

let make v =
  { cell = Atomic.make v; _p0 = 0; _p1 = 0; _p2 = 0; _p3 = 0; _p4 = 0;
    _p5 = 0; _p6 = 0 }

let get t = Atomic.get t.cell
let set t v = Atomic.set t.cell v
let compare_and_set t expected desired =
  Atomic.compare_and_set t.cell expected desired
let fetch_and_add t d = Atomic.fetch_and_add t.cell d

(* Padded cells over an arbitrary [ATOMIC] implementation, so that the
   queue functors (which are abstract over the atomic plane: real,
   counted, simulated) can pad their per-thread descriptor slots without
   committing to [Stdlib.Atomic]. Under the simulator the padding words
   are inert — every access still goes through [A] and therefore still
   yields to the scheduler. *)
module Make (A : Atomic_intf.ATOMIC) = struct
  type 'a t = {
    cell : 'a A.t;
    _p0 : int;
    _p1 : int;
    _p2 : int;
    _p3 : int;
    _p4 : int;
    _p5 : int;
    _p6 : int;
  }

  let make v =
    { cell = A.make v; _p0 = 0; _p1 = 0; _p2 = 0; _p3 = 0; _p4 = 0;
      _p5 = 0; _p6 = 0 }

  let get t = A.get t.cell
  let set t v = A.set t.cell v
  let compare_and_set t expected desired =
    A.compare_and_set t.cell expected desired
  let exchange t v = A.exchange t.cell v
  let fetch_and_add t d = A.fetch_and_add t.cell d
end
