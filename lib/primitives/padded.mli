(** Cache-line padded atomic cells.

    Per-thread slots allocated back-to-back (like the entries of the
    paper's [state] array) can false-share a cache line; a [Padded.t]
    embeds its atomic in a record padded past 64 bytes so two distinct
    cells never share a line. *)

type 'a t

val make : 'a -> 'a t
val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val compare_and_set : 'a t -> 'a -> 'a -> bool
val fetch_and_add : int t -> int -> int

(** Padded cells over an arbitrary {!Atomic_intf.ATOMIC} implementation,
    satisfying [ATOMIC] itself — the form the queue functors use to pad
    their per-thread descriptor arrays on whatever atomic plane (real,
    counted, simulated) they were instantiated with. *)
module Make (A : Atomic_intf.ATOMIC) : Atomic_intf.ATOMIC
