(** Per-domain segment pools: recycled allocation for queue hot paths.

    The KP queue family allocates one node per enqueue and one
    descriptor per operation; at millions of operations per second that
    allocation rate is the dominant residual cost over the lock-free
    baseline (EXPERIMENTS.md, "fast-path/slow-path"). This module
    removes it Jiffy-style (Adas & Friedman, 2020): objects are carved
    from {e segments} — chunked batches of [segment_size] objects — and
    recycled through per-domain free lists, so a steady-state operation
    allocates nothing beyond its payload boxes.

    Safety is split between two mechanisms, matching the two ways a
    recycled object can be misused:

    - {b Epoch tags} ([Counted_atomic.Epoch]) defend the {e claim CAS}:
      a pooled node's claim word is reset to the next incarnation's
      epoch on recycle, so a stalled helper's CAS (expecting the old
      incarnation's packed word) fails instead of ABA-claiming the new
      one. The tag lives in the object and is maintained by the client's
      [reset]; the DPOR scenario in test/test_pool.ml proves it
      load-bearing.
    - {b Epoch-based quarantine} ([Clock]) defends the {e pointer
      CASes} (head/tail/next), whose expected values are node references
      and cannot carry a tag: a released object parks in a per-domain
      quarantine until every thread has left the operation it was in
      when the object was retired (two global-epoch advances), so no
      stalled helper can still hold a reference when the object is
      reused. A stalled thread blocks reuse — never safety — and
      [alloc] then falls through to fresh segments, preserving
      wait-freedom.

    All shared cells go through the [ATOMIC] functor argument, so the
    pool runs unchanged under [Wfq_sim.Sim_atomic] and is DPOR-checkable
    alongside the queues it feeds. Free lists and quarantines are
    strictly tid-local (single-owner plain state, like
    [Wfq_hazard.Pool]); only the clock is shared.

    Both containers are {e intrusive}: objects are chained through a
    client-provided link field and stamped through a client-provided
    int field ({!ops}), so the steady-state pool paths — release into
    quarantine, promote, reuse — allocate {e nothing}. This is the
    point of the module: a cons cell per release would hand back a
    third of the words the recycled object saves. *)

(* Client accessors for the intrusive fields. [get_next]/[set_next]
   chain the object through the tid-local free stack and quarantine
   FIFO; [get_stamp]/[set_stamp] hold the retire-time epoch while the
   object sits in quarantine. Both fields are owned by the pool between
   [release] and the next [alloc] of the object, and are dead storage
   (arbitrary values) while the object is live with the client. *)
type 'a ops = {
  get_next : 'a -> 'a;
  set_next : 'a -> 'a -> unit;
  get_stamp : 'a -> int;
  set_stamp : 'a -> int -> unit;
}

module Make (A : Atomic_intf.ATOMIC) = struct
  module P = Padded.Make (A)

  (* ------------------------------------------------------------------ *)
  (* Clock: global epoch + per-domain announcements (EBR-style)         *)
  (* ------------------------------------------------------------------ *)

  module Clock = struct
    let idle = max_int

    type t = {
      global : int A.t;
      (* Announced epoch per tid ([idle] when outside any operation).
         Padded: each slot is written by exactly one domain per
         operation and read by all during advancement scans. *)
      local : int P.t array;
      num_threads : int;
    }

    let create ~num_threads =
      if num_threads <= 0 then
        invalid_arg "Segment_pool.Clock.create: num_threads";
      {
        global = A.make 0;
        local = Array.init num_threads (fun _ -> P.make idle);
        num_threads;
      }

    (* Announce the current global epoch for the duration of one queue
       operation. One atomic load + one store to an uncontended padded
       slot — the whole per-operation cost of quarantine safety. *)
    let enter t ~tid = P.set t.local.(tid) (A.get t.global)
    let exit t ~tid = P.set t.local.(tid) idle

    let current t = A.get t.global

    (* Advance the global epoch iff no thread is still announced in an
       earlier one. O(num_threads); called on the alloc slow path only.
       The CAS may fail under a racing advance — that advance serves us
       equally well, so the result is ignored. *)
    let try_advance t =
      let e = A.get t.global in
      let rec all_caught_up i =
        i >= t.num_threads
        || (P.get t.local.(i) >= e && all_caught_up (i + 1))
      in
      if all_caught_up 0 then ignore (A.compare_and_set t.global e (e + 1))
  end

  (* ------------------------------------------------------------------ *)
  (* Per-tid storage: free stack + quarantine ring, both tid-local      *)
  (* ------------------------------------------------------------------ *)

  (* Plain mutable single-owner state; padding fields keep adjacent
     tids' hot words off each other's cache lines. Both containers are
     intrusive chains through the client's link field, with the pool's
     [dummy] object as the null marker (['a] has no null of its own):
     [free] is a LIFO stack, the quarantine a FIFO queue (head = pop
     end, oldest first) whose entries carry their retire-time epoch in
     the client's stamp field. No allocation on any path but [carve]. *)
  type 'a slot = {
    mutable free : 'a;
    mutable free_len : int;
    mutable q_head : 'a;
    mutable q_tail : 'a;
    mutable quarantine_len : int;
    _p0 : int;
    _p1 : int;
  }

  type 'a t = {
    clock : Clock.t;
    slots : 'a slot array;
    segment_size : int;
    quarantine : bool;
    num_threads : int;
    ops : 'a ops;
    fresh_obj : unit -> 'a;
    reset : 'a -> unit;
    (* Hit/miss accounting through the stack-wide observability layer
       (Wfq_obsv): per-tid single-writer cells, exactly the discipline
       the old plain slot fields followed, now with a uniform
       snapshot/registry surface. Plain cells — invisible to the
       simulated-atomic plane, so pooled queues model-check with
       unchanged traces. *)
    c_reused : Wfq_obsv.Counter.t;
    c_fresh : Wfq_obsv.Counter.t;
    c_segments : Wfq_obsv.Counter.t;
    (* Never handed out; only an end-of-chain marker compared with
       [==]. *)
    dummy : 'a;
  }

  let default_segment_size = 64

  let create ?(segment_size = default_segment_size) ?(quarantine = true)
      ~clock ~num_threads ~ops ~fresh ~reset () =
    if segment_size <= 0 then
      invalid_arg "Segment_pool.create: segment_size must be positive";
    if num_threads <= 0 then invalid_arg "Segment_pool.create: num_threads";
    if num_threads > clock.Clock.num_threads then
      invalid_arg "Segment_pool.create: more threads than the clock serves";
    let dummy = fresh () in
    {
      clock;
      slots =
        Array.init num_threads (fun _ ->
            {
              free = dummy;
              free_len = 0;
              q_head = dummy;
              q_tail = dummy;
              quarantine_len = 0;
              _p0 = 0;
              _p1 = 0;
            });
      segment_size;
      quarantine;
      num_threads;
      ops;
      fresh_obj = fresh;
      reset;
      c_reused = Wfq_obsv.Counter.create ~slots:num_threads ();
      c_fresh = Wfq_obsv.Counter.create ~slots:num_threads ();
      c_segments = Wfq_obsv.Counter.create ~slots:num_threads ();
      dummy;
    }

  let enter t ~tid = if t.quarantine then Clock.enter t.clock ~tid
  let exit t ~tid = if t.quarantine then Clock.exit t.clock ~tid

  (* Stamp value marking a never-used object. Carve writes it; both
     release paths overwrite it (epochs are >= 0), so at alloc time the
     stamp distinguishes first-life objects from recycled ones exactly
     even though the client may scribble on the stamp while the object
     is live. *)
  let fresh_mark = min_int

  let push_free t s obj =
    t.ops.set_next obj s.free;
    s.free <- obj;
    s.free_len <- s.free_len + 1

  (* Move every matured quarantine entry (retired >= 2 epochs ago: all
     threads have since left the epoch the object was retired in, so no
     stalled reference survives) onto the free list. Oldest entries
     mature first, so we stop at the first unripe one. *)
  let promote t ~tid =
    let s = t.slots.(tid) in
    let horizon = Clock.current t.clock - 2 in
    let rec go () =
      let obj = s.q_head in
      if obj != t.dummy && t.ops.get_stamp obj <= horizon then begin
        s.q_head <- t.ops.get_next obj;
        if s.q_head == t.dummy then s.q_tail <- t.dummy;
        s.quarantine_len <- s.quarantine_len - 1;
        push_free t s obj;
        go ()
      end
    in
    go ()

  (* Carve a fresh segment: one batch of [segment_size] objects pushed
     onto the free list. Batching keeps the fresh path off the
     per-operation fast path — after warm-up, [alloc] touches only the
     tid-local free list. *)
  let carve t ~tid =
    let s = t.slots.(tid) in
    for _ = 1 to t.segment_size do
      let obj = t.fresh_obj () in
      t.ops.set_stamp obj fresh_mark;
      push_free t s obj
    done;
    Wfq_obsv.Counter.incr t.c_segments ~slot:tid

  let alloc t ~tid =
    let s = t.slots.(tid) in
    if s.free == t.dummy then begin
      if t.quarantine then begin
        Clock.try_advance t.clock;
        promote t ~tid
      end;
      if s.free == t.dummy then carve t ~tid
    end;
    let obj = s.free in
    s.free <- t.ops.get_next obj;
    s.free_len <- s.free_len - 1;
    if t.ops.get_stamp obj = fresh_mark then
      Wfq_obsv.Counter.incr t.c_fresh ~slot:tid
    else Wfq_obsv.Counter.incr t.c_reused ~slot:tid;
    t.reset obj;
    obj

  (* Retire an object. With quarantine, park it stamped with the current
     global epoch; without (tests of the tag in isolation), it is
     immediately reusable. *)
  let release t ~tid obj =
    let s = t.slots.(tid) in
    if t.quarantine then begin
      t.ops.set_stamp obj (Clock.current t.clock);
      t.ops.set_next obj t.dummy;
      if s.q_head == t.dummy then s.q_head <- obj
      else t.ops.set_next s.q_tail obj;
      s.q_tail <- obj;
      s.quarantine_len <- s.quarantine_len + 1
    end
    else begin
      t.ops.set_stamp obj 0;
      push_free t s obj
    end

  (* ------------------------------------------------------------------ *)
  (* Stats (quiescent aggregation, like Wfq_hazard.Pool's)              *)
  (* ------------------------------------------------------------------ *)

  let sum t f = Array.fold_left (fun acc s -> acc + f s) 0 t.slots
  let reused t = Wfq_obsv.Counter.total t.c_reused
  let allocated_fresh t = Wfq_obsv.Counter.total t.c_fresh
  let segments t = Wfq_obsv.Counter.total t.c_segments
  let pooled t = sum t (fun s -> s.free_len)
  let quarantined t = sum t (fun s -> s.quarantine_len)

  (* Attach this pool's counters (and depth gauges) to a metrics
     registry under [prefix ^ ".reused"], [".fresh"], [".segments"],
     [".pooled"], [".quarantined"]. The counters are live — registration
     shares them, it does not copy. *)
  let register_metrics t metrics ~prefix =
    let open Wfq_obsv in
    Metrics.register metrics (prefix ^ ".reused") (Metrics.Counter t.c_reused);
    Metrics.register metrics (prefix ^ ".fresh") (Metrics.Counter t.c_fresh);
    Metrics.register metrics (prefix ^ ".segments")
      (Metrics.Counter t.c_segments);
    Metrics.gauge metrics ~name:(prefix ^ ".pooled") (fun () -> pooled t);
    Metrics.gauge metrics ~name:(prefix ^ ".quarantined") (fun () ->
        quarantined t)
end
