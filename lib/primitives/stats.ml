(** Small descriptive-statistics helpers for the benchmark harness.

    The paper reports averages over ten runs and notes that standard
    deviations were negligible; we report both. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

let minimum xs =
  match xs with
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left min x rest

let maximum xs =
  match xs with
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left max x rest

(* Nearest-rank index for percentile [p] over [n] sorted samples.
   [p /. 100.0 *. n] can land a hair above the exact rational rank
   (99.9/100*1000 = 999.0000000000001), and a raw [ceil] would then
   overshoot by a whole rank; shave one ulp-scale relative epsilon
   before ceiling so exact ranks stay exact. *)
let rank_index n p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let x = p /. 100.0 *. float_of_int n in
  let rank = int_of_float (ceil (x *. (1.0 -. 1e-12))) in
  max 0 (min (n - 1) (rank - 1))

(* NaN compares false against everything, so a single NaN silently
   corrupts a sort-based percentile (it parks wherever the sort leaves
   it and shifts every rank). Latency pipelines can only produce NaN
   through an upstream bug — divide-by-zero rates, uninitialized
   samples — so surface it instead of reporting a poisoned quantile. *)
let reject_nan ~what arr =
  for i = 0 to Array.length arr - 1 do
    if Float.is_nan arr.(i) then
      invalid_arg (Printf.sprintf "%s: NaN sample at index %d" what i)
  done

let sort_in_place ~what arr =
  if Array.length arr = 0 then invalid_arg (Printf.sprintf "%s: empty" what);
  reject_nan ~what arr;
  Array.sort Float.compare arr

let percentile_in_place arr p =
  sort_in_place ~what:"Stats.percentile_in_place" arr;
  arr.(rank_index (Array.length arr) p)

let percentiles_in_place arr ps =
  sort_in_place ~what:"Stats.percentiles_in_place" arr;
  List.map (fun p -> arr.(rank_index (Array.length arr) p)) ps

(* Nearest-rank percentile: one unboxed array copy, sorted in place
   with the total float order (never polymorphic [compare], which boxes
   every element comparison on float arrays). *)
let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ -> percentile_in_place (Array.of_list xs) p

let median xs = percentile xs 50.0
