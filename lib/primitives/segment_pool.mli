(** Per-domain segment pools with epoch-tagged, quarantined recycling.

    Removes the one-node-plus-one-descriptor-per-operation allocation
    rate of the KP queue family: objects are carved from Jiffy-style
    segments (batches of [segment_size]) and recycled through strictly
    tid-local free lists. Two mechanisms make reuse safe under helping:

    - the {e claim CAS} on a recycled node is protected by an epoch tag
      in the claim word itself ([Counted_atomic.Epoch]) — maintained by
      the client's [reset] callback;
    - the {e pointer CASes} (head/tail/next), whose expected values
      cannot carry a tag, are protected by epoch-based quarantine: a
      released object is only reusable once every thread has left the
      operation that was in flight when it was retired (two [Clock]
      epochs). A stalled thread delays reuse, never safety; [alloc]
      falls back to fresh segments, preserving wait-freedom.

    Both containers are {e intrusive} — objects chain through a
    client-provided link field and carry their retire epoch in a
    client-provided int field ({!ops}) — so release, promotion and
    reuse allocate nothing. A non-intrusive cons cell per release would
    hand back a third of the words the recycled object saves, which is
    measurable: the whole module exists to lower words/op.

    Functorized over [ATOMIC] so the pool runs under
    [Wfq_sim.Sim_atomic] and is DPOR-checkable with its client queues. *)

type 'a ops = {
  get_next : 'a -> 'a;
  set_next : 'a -> 'a -> unit;
  get_stamp : 'a -> int;
  set_stamp : 'a -> int -> unit;
}
(** Accessors for the intrusive link and stamp fields. The pool owns
    both fields from [release] until the object's next [alloc]; while
    the object is live with the client they are dead storage and may
    hold anything. *)

module Make (A : Atomic_intf.ATOMIC) : sig
  (** Global epoch + per-thread announcements (EBR-style). One clock is
      shared by all pools of a queue instance, so one enter/exit pair
      per queue operation covers node and descriptor pools alike. *)
  module Clock : sig
    type t

    val create : num_threads:int -> t

    val enter : t -> tid:int -> unit
    (** Announce the current global epoch; call on operation entry. *)

    val exit : t -> tid:int -> unit
    (** Withdraw the announcement; call on operation exit. *)

    val current : t -> int

    val try_advance : t -> unit
    (** Bump the global epoch if every announced thread has caught up
        to it. Called internally on the alloc slow path; exposed for
        tests. *)
  end

  type 'a t

  val default_segment_size : int

  val create :
    ?segment_size:int ->
    ?quarantine:bool ->
    clock:Clock.t ->
    num_threads:int ->
    ops:'a ops ->
    fresh:(unit -> 'a) ->
    reset:('a -> unit) ->
    unit ->
    'a t
  (** [fresh] mints a blank object (one extra is consumed at creation as
      the pool's internal end-of-chain marker); [reset] re-blanks a
      recycled one before it is handed out, and must bump the object's
      epoch tag if it has one. [quarantine:false] makes released
      objects immediately reusable — only safe when the epoch tag alone
      closes every race (used by the DPOR scenario that proves the tag
      load-bearing); production queues keep the default [true]. *)

  val enter : 'a t -> tid:int -> unit
  (** [Clock.enter] iff this pool quarantines (no-op otherwise). *)

  val exit : 'a t -> tid:int -> unit

  val alloc : 'a t -> tid:int -> 'a
  (** Pop a recycled object (after [reset]) or carve a fresh segment.
      Tid-local: at most one concurrent call per [tid]. *)

  val release : 'a t -> tid:int -> 'a -> unit
  (** Retire an object into [tid]'s quarantine (or straight onto the
      free list when [quarantine:false]). The caller must hold the only
      live reference paths' retirement right — for queue nodes, be the
      unique winner of the head-swing CAS. *)

  (** {2 Statistics} (read quiescently; exact — the pool distinguishes
      first-life objects from recycled ones by a carve-time stamp) *)

  val reused : 'a t -> int
  val allocated_fresh : 'a t -> int
  val segments : 'a t -> int
  val pooled : 'a t -> int
  val quarantined : 'a t -> int

  val register_metrics :
    'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Attach the pool's live counters and depth gauges to [metrics]
      under [prefix ^ ".reused"/".fresh"/".segments"/".pooled"/
      ".quarantined"]. Raises [Invalid_argument] if any of those names
      is already registered. *)
end
