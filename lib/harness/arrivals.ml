(** Deterministic open-loop arrival schedules.

    A closed-loop benchmark fires its next operation the instant the
    previous one returns, so a stalled queue throttles its own load and
    queueing delay never reaches the recorded numbers (coordinated
    omission). An open-loop schedule fixes every operation's {e
    intended} send time up front from a seeded process; the engine
    ({!Open_loop}) then timestamps latency from the intended time, so a
    stall shows up as the queueing delay it actually caused.

    Two processes, both reproducible from [seed] alone:

    - {!Poisson}: i.i.d. exponential interarrival gaps at the offered
      rate — the memoryless baseline of every queueing model.
    - {!Burst}: a two-state on/off Markov modulated Poisson process.
      ON periods arrive at [rate / duty] (so the long-run mean rate is
      still the offered rate); each arrival ends the ON period with
      probability [1 / burst_len] (geometric bursts with mean
      [burst_len]); OFF gaps are exponential with mean chosen to give
      the configured duty cycle. Bursts are where tails live: the same
      mean load with duty 0.1 hits the queue with 10x spikes. *)

module Rng = Wfq_primitives.Rng

type pattern =
  | Poisson
  | Burst of { duty : float; burst_len : int }

let pattern_name = function
  | Poisson -> "poisson"
  | Burst { duty; burst_len } ->
      Printf.sprintf "burst(duty=%g,len=%d)" duty burst_len

(* Exponential variate with the given mean, in ns (>= 1).
   [Rng.float] is in [0, 1), so [1 - u] is in (0, 1] and [log] is
   finite. *)
let exp_gap rng ~mean_ns =
  let u = Rng.float rng in
  let g = -.mean_ns *. log (1.0 -. u) in
  max 1 (int_of_float g)

let validate ~rate ~n =
  if not (Float.is_finite rate) || rate <= 0.0 then
    invalid_arg "Arrivals.generate: rate must be positive";
  if n <= 0 then invalid_arg "Arrivals.generate: n must be positive"

(* Absolute intended send times (ns from schedule start), sorted
   ascending, [n] events at long-run mean [rate] events/s. *)
let generate pattern ~seed ~rate ~n =
  validate ~rate ~n;
  let rng = Rng.create ~seed in
  let mean_ns = 1e9 /. rate in
  let out = Array.make n 0 in
  (match pattern with
  | Poisson ->
      let t = ref 0 in
      for i = 0 to n - 1 do
        t := !t + exp_gap rng ~mean_ns;
        out.(i) <- !t
      done
  | Burst { duty; burst_len } ->
      if not (Float.is_finite duty) || duty <= 0.0 || duty > 1.0 then
        invalid_arg "Arrivals.generate: duty must be in (0, 1]";
      if burst_len <= 0 then
        invalid_arg "Arrivals.generate: burst_len must be positive";
      (* ON gaps at rate/duty; mean OFF time balances the duty cycle:
         one OFF period follows [burst_len] ON arrivals on average, so
         off_mean = burst_len * on_mean * (1 - duty) / duty. *)
      let on_mean_ns = mean_ns *. duty in
      let off_mean_ns =
        float_of_int burst_len *. on_mean_ns *. (1.0 -. duty) /. duty
      in
      let t = ref 0 in
      for i = 0 to n - 1 do
        t := !t + exp_gap rng ~mean_ns:on_mean_ns;
        out.(i) <- !t;
        (* End of a geometric burst: insert an exponential OFF gap
           (skipped entirely at duty = 1, where off_mean is 0). *)
        if off_mean_ns > 0.0 && Rng.below rng burst_len = 0 then
          t := !t + exp_gap rng ~mean_ns:off_mean_ns
      done);
  out

(* ------------------------------------------------------------------ *)
(* Assignment: which producer sends each event                         *)
(* ------------------------------------------------------------------ *)

(* Zipf-like producer weights: producer [i] gets weight (i+1)^-skew.
   skew = 0 is uniform; skew ~ 1 sends roughly half the stream through
   producer 0 at 4 workers — the "hot shard" scenario for affinity
   routing. *)
let weights ~workers ~skew =
  if workers <= 0 then invalid_arg "Arrivals.split: workers must be positive";
  if not (Float.is_finite skew) || skew < 0.0 then
    invalid_arg "Arrivals.split: skew must be non-negative";
  let w =
    Array.init workers (fun i -> (float_of_int (i + 1)) ** -.skew)
  in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let split schedule ~workers ~skew ~seed =
  let w = weights ~workers ~skew in
  let rng = Rng.create ~seed in
  let buckets = Array.make workers [] in
  Array.iter
    (fun t ->
      let u = Rng.float rng in
      let rec pick i acc =
        let acc = acc +. w.(i) in
        if u < acc || i = workers - 1 then i else pick (i + 1) acc
      in
      let i = pick 0 0.0 in
      buckets.(i) <- t :: buckets.(i))
    schedule;
  (* Each producer's sub-schedule keeps the global (sorted) order. *)
  Array.map (fun l -> Array.of_list (List.rev l)) buckets
