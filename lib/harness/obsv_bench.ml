(** Observability benchmarking: instrumented multi-domain runs that
    populate a {!Wfq_obsv.Metrics} registry (the [wfq_bench stats]
    backend), and the disabled-vs-enabled overhead guard that keeps the
    instrumentation honest about its "low-overhead" claim.

    Latency histograms and timing runs use the shared monotonic clock
    ({!Clock}, bechamel's raw [@noalloc] ns source) so per-op sampling
    does not allocate and durations survive wall-clock steps; runs are
    timed around a barrier release, like {!Workload}.

    Overhead methodology (docs/OBSERVABILITY.md): for each guarded
    queue, the {e same} benchmark loop runs over a plain queue and over
    a queue constructed with [?obsv] — the only difference is the
    queue-internal instrumentation — run back-to-back in [runs] pairs
    with alternating in-pair order, guarding the median of per-pair
    ratios (noise slower than a pair cancels inside it). Latency
    sampling is {e not} part
    of the enabled configuration: clock reads are a per-call opt-in of
    the stats collector, not of instrumented queues. *)

module RA = Wfq_primitives.Real_atomic
module Kp = Wfq_core.Kp_queue.Make (RA)
module Fq = Wfq_core.Kp_queue_fps.Make (RA)
module Sh = Wfq_shard.Shard.Make (RA)
module Obsv = Wfq_obsv

let now_ns = Clock.now_ns

(* ------------------------------------------------------------------ *)
(* Instrumented collection runs                                       *)
(* ------------------------------------------------------------------ *)

type run_line = {
  queue : string;
  threads : int;
  iters : int;
  seconds : float;
  ops : int;
}

(* Barrier-released pairs loop; each op's latency lands in the caller's
   histograms. [relaxed] retries [None] dequeues (sharded front-end:
   a non-atomic sweep may observe empty while elements are in flight). *)
let timed_pairs ~relaxed ~threads ~iters ~enq ~deq ~h_enq ~h_deq =
  Gc.full_major ();
  let barrier = Barrier.create (threads + 1) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            Barrier.wait barrier;
            for i = 1 to iters do
              let t0 = now_ns () in
              enq ~tid ((tid * iters) + i);
              Obsv.Histogram.record h_enq ~slot:tid (now_ns () - t0);
              let rec take () =
                let t0 = now_ns () in
                let r = deq ~tid in
                Obsv.Histogram.record h_deq ~slot:tid (now_ns () - t0);
                match r with
                | Some _ -> ()
                | None ->
                    if relaxed then take ()
                    else failwith "obsv_bench: impossible empty dequeue"
              in
              take ()
            done))
  in
  Barrier.wait barrier;
  let t0 = Clock.now_s () in
  Array.iter Domain.join domains;
  Clock.now_s () -. t0

let collect ~threads ~iters () =
  if threads <= 0 || iters <= 0 then invalid_arg "Obsv_bench.collect";
  let reg = Obsv.Metrics.create () in
  let slots = threads + 1 in
  let lines = ref [] in
  let run name ~relaxed ~enq ~deq =
    let h_enq = Obsv.Metrics.histogram reg ~name:(name ^ ".enqueue_ns") ~slots
    and h_deq =
      Obsv.Metrics.histogram reg ~name:(name ^ ".dequeue_ns") ~slots
    in
    let seconds =
      timed_pairs ~relaxed ~threads ~iters ~enq ~deq ~h_enq ~h_deq
    in
    lines :=
      { queue = name; threads; iters; seconds; ops = 2 * threads * iters }
      :: !lines
  in
  (* opt WF (1+2): the phase-lag / help-event / lost-phase-bump story. *)
  let kp =
    Kp.create_with
      ~obsv:(Wfq_core.Kp_queue.metrics reg ~prefix:"kp_opt12" ~slots)
      ~help:Wfq_core.Kp_queue.Help_one_cyclic
      ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads:slots ()
  in
  run "kp_opt12" ~relaxed:false ~enq:(Kp.enqueue kp) ~deq:(Kp.dequeue kp);
  (* WF fps pooled: fast-path rounds, claim handoffs, pool hit rate. *)
  let fps =
    Fq.create_with ~pool:true
      ~obsv:(Wfq_core.Kp_queue_fps.metrics reg ~prefix:"fps_pooled" ~slots)
      ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
      ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads:slots ()
  in
  Fq.register_metrics fps reg ~prefix:"fps_pooled";
  run "fps_pooled" ~relaxed:false ~enq:(Fq.enqueue fps)
    ~deq:(Fq.dequeue fps);
  (* WF fps with a zero fast budget: every operation takes the slow
     path, so the slow-path-rate metrics are guaranteed non-trivial. *)
  let fslow =
    Fq.create_with ~max_failures:0
      ~obsv:(Wfq_core.Kp_queue_fps.metrics reg ~prefix:"fps_slow" ~slots)
      ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
      ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads:slots ()
  in
  Fq.register_metrics fslow reg ~prefix:"fps_slow";
  run "fps_slow" ~relaxed:false ~enq:(Fq.enqueue fslow)
    ~deq:(Fq.dequeue fslow);
  (* Sharded front-end, round-robin tickets: per-shard depth and steal
     sweeps (tickets decouple enqueue and dequeue shards, so steals
     happen constantly). *)
  let sh =
    Sh.create ~policy:Wfq_shard.Shard.Round_robin ~shards:4
      ~num_threads:slots ()
  in
  Sh.register_metrics sh reg ~prefix:"shard_rr4";
  run "shard_rr4" ~relaxed:true ~enq:(Sh.enqueue sh) ~deq:(Sh.dequeue sh);
  (* The balanced pairs loop can leave the enqueue and dequeue ticket
     streams aligned (every dequeue starts at the shard just enqueued
     to), reporting zero steals — misleading for a front-end whose whole
     point is steal-on-empty. Force the behaviour deterministically: one
     dequeue on the empty queue records an empty sweep and advances the
     dequeue ticket alone, so every following pair starts its dequeue
     one shard behind its enqueue and must steal. *)
  assert (Sh.dequeue sh ~tid:0 = None);
  for i = 1 to 64 do
    Sh.enqueue sh ~tid:0 i;
    assert (Sh.dequeue sh ~tid:0 <> None)
  done;
  (* Registry churn: the exact-total acquisition counter. *)
  let rg = Wfq_registry.Registry.create ~capacity:slots in
  Wfq_registry.Registry.register_metrics rg reg ~prefix:"registry";
  let rounds = max 1 (iters / 10) in
  let barrier = Barrier.create (threads + 1) in
  let domains =
    Array.init threads (fun _ ->
        Domain.spawn (fun () ->
            Barrier.wait barrier;
            for _ = 1 to rounds do
              Wfq_registry.Registry.with_tid rg (fun (_ : int) -> ())
            done))
  in
  Barrier.wait barrier;
  Array.iter Domain.join domains;
  (reg, List.rev !lines)

(* ------------------------------------------------------------------ *)
(* Overhead guard                                                     *)
(* ------------------------------------------------------------------ *)

type overhead = {
  oh_queue : string;
  disabled_ns_per_op : float;
  enabled_ns_per_op : float;
  ratio : float;
}

let overhead_budget = 1.02

(* Minimum over chunks: external noise (timer interrupts, co-tenants,
   GC pauses) is strictly additive, so the per-side minimum estimates
   intrinsic per-op cost. *)
let best l = List.fold_left min infinity l

(* Even-count median averages the middle pair: the guard runs an equal
   number of disabled-first and enabled-first rounds, and picking the
   upper-middle element alone would bias the statistic toward whichever
   in-pair order is systematically slower second. *)
let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  let n = Array.length a in
  if n land 1 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let measure_overhead ~iters ~runs () =
  if iters <= 0 || runs <= 0 then
    invalid_arg "Obsv_bench.measure_overhead";
  (* The instrumentation is thread-local by construction — single-writer
     padded cells, no shared-cache traffic — so its per-op cost is a
     sequential quantity. Measure it on one domain, in-process: no
     Domain.spawn per sample, no scheduler, just two persistently
     warmed queues (one plain, one instrumented, both aging at the same
     rate) timed over back-to-back chunk pairs with alternating in-pair
     order. The guarded statistic is the median of per-pair ratios:
     noise slower than a pair cancels inside it, spikes faster than a
     pair are outvoted. Per-side aggregates (mean, median, even min of
     separate multi-domain runs) do not converge on a shared 1-core
     host; this does. *)
  let slots = 2 and tid = 0 in
  (* The throwaway registry receives the enabled side's metrics;
     nothing reads it — the cost under test is the write path. *)
  let chunk ~enq ~deq () =
    let t0 = now_ns () in
    for i = 1 to iters do
      enq ~tid i;
      ignore (deq ~tid : int option)
    done;
    float_of_int (now_ns () - t0)
  in
  let kp obsv =
    let obsv =
      if obsv then
        Some
          (Wfq_core.Kp_queue.metrics (Obsv.Metrics.create ()) ~prefix:"kp"
             ~slots)
      else None
    in
    let q =
      Kp.create_with ?obsv ~help:Wfq_core.Kp_queue.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads:slots ()
    in
    chunk ~enq:(Kp.enqueue q) ~deq:(Kp.dequeue q)
  in
  let fps obsv =
    let obsv =
      if obsv then
        Some
          (Wfq_core.Kp_queue_fps.metrics
             (Obsv.Metrics.create ())
             ~prefix:"fps" ~slots)
      else None
    in
    let q =
      Fq.create_with ?obsv ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads:slots ()
    in
    chunk ~enq:(Fq.enqueue q) ~deq:(Fq.dequeue q)
  in
  let guard name mk =
    let disabled = mk false and enabled = mk true in
    (* Warm both queues (and the code paths) before recording. *)
    ignore (disabled () : float);
    ignore (enabled () : float);
    Gc.full_major ();
    let doff = ref [] and don_ = ref [] and ratios = ref [] in
    for r = 1 to runs do
      let d, e =
        if r land 1 = 1 then begin
          let d = disabled () in
          (d, enabled ())
        end
        else begin
          let e = enabled () in
          (disabled (), e)
        end
      in
      doff := d :: !doff;
      don_ := e :: !don_;
      ratios := (e /. d) :: !ratios
    done;
    let ops = float_of_int (2 * iters) in
    { oh_queue = name;
      disabled_ns_per_op = best !doff /. ops;
      enabled_ns_per_op = best !don_ /. ops;
      ratio = median !ratios }
  in
  [ guard "kp_opt12" kp; guard "fps" fps ]
