(** The paper's two benchmarks (§4), generalized.

    - {!pairs}: "enqueue-dequeue pairs" — the queue starts empty and each
      thread iteratively performs an enqueue followed by a dequeue.
    - {!p_enq}: "50% enqueues" — the queue starts with [prefill]
      elements and each thread flips a private fair coin per iteration.

    Every run validates element conservation: the numbers of successful
    operations must balance with the final queue length, and in [pairs]
    no dequeue may observe an empty queue (each thread's dequeue is
    preceded by its own enqueue, so the queue is provably non-empty at
    every dequeue linearization point). A violation raises, failing the
    benchmark loudly — performance numbers from a broken queue are
    worthless. *)

type counters = {
  mutable enqs : int;
  mutable deq_hits : int;
  mutable deq_empties : int;
}

type gc_stats = {
  minor_words : float;
      (** words allocated through the minor heaps of all workers *)
  promoted_words : float;  (** of those, words that survived to the major heap *)
  minor_collections : int;  (** global stop-the-world minor collections *)
  major_collections : int;  (** major cycles completed *)
}

type run_result = {
  seconds : float;
  total_ops : int;
  per_thread : counters array;
  gc : gc_stats;
}

(* Completion times read the shared monotonic clock (Clock, same
   CLOCK_MONOTONIC source as bench/main.ml's bechamel instance): an NTP
   step inside a run would silently stretch or shrink a wall-clock
   measurement. *)
let now = Clock.now_s

let spawn_and_time ~threads worker =
  (* Settle the GC first: garbage left by earlier benchmarks would
     otherwise be collected during this measurement, inflating it by an
     amount that depends on run order rather than on the queue. *)
  Gc.full_major ();
  (* The main domain is barrier participant [threads]: it records t0 the
     instant all workers are released and t1 when the last one joins. *)
  let barrier = Barrier.create (threads + 1) in
  (* Allocation counters are per-domain in OCaml 5, so each worker
     samples its own deltas around the loop and the deltas are summed.
     [minor_words] must come from [Gc.minor_words] (which reads the
     live allocation pointer) — the [Gc.quick_stat] field is only
     flushed at the domain's minor collections, so a worker whose whole
     run fits in one young generation would report 0. [promoted_words]
     has no such gap: promotion happens only during a minor collection,
     exactly when the stat is flushed. Collection counts are global
     events (a minor collection stops the world across domains) and are
     therefore deltaed once, from the main domain, around the whole
     run. *)
  let minor_w = Array.make threads 0.0 in
  let promoted_w = Array.make threads 0.0 in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            Barrier.wait barrier;
            let w0 = Gc.minor_words () in
            let s0 = Gc.quick_stat () in
            worker tid;
            let s1 = Gc.quick_stat () in
            minor_w.(tid) <- Gc.minor_words () -. w0;
            promoted_w.(tid) <- s1.Gc.promoted_words -. s0.Gc.promoted_words))
  in
  Barrier.wait barrier;
  let g0 = Gc.quick_stat () in
  let t0 = now () in
  Array.iter Domain.join domains;
  let t1 = now () in
  let g1 = Gc.quick_stat () in
  let sum a = Array.fold_left ( +. ) 0.0 a in
  ( t1 -. t0,
    {
      minor_words = sum minor_w;
      promoted_words = sum promoted_w;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    } )

let fresh_counters threads =
  Array.init threads (fun _ -> { enqs = 0; deq_hits = 0; deq_empties = 0 })

let sum_by counters f = Array.fold_left (fun acc c -> acc + f c) 0 counters

(** Count elements left by draining with [dequeue] (observers like
    [to_list] are not part of {!Impls.BENCH_QUEUE}). *)
let drain (type a) (module Q : Impls.BENCH_QUEUE with type t = a) (q : a) =
  let rec go n =
    match Q.dequeue q ~tid:0 with Some _ -> go (n + 1) | None -> n
  in
  go 0

let pairs ?(check = true) (module Q : Impls.BENCH_QUEUE) ~threads ~iters () =
  if threads <= 0 || iters <= 0 then invalid_arg "Workload.pairs";
  let q = Q.create ~num_threads:(threads + 1) in
  let counters = fresh_counters threads in
  let worker tid =
    let c = counters.(tid) in
    for i = 1 to iters do
      Q.enqueue q ~tid ((tid * iters) + i);
      c.enqs <- c.enqs + 1;
      match Q.dequeue q ~tid with
      | Some _ -> c.deq_hits <- c.deq_hits + 1
      | None -> c.deq_empties <- c.deq_empties + 1
    done
  in
  let seconds, gc = spawn_and_time ~threads worker in
  if check then begin
    let empties = sum_by counters (fun c -> c.deq_empties) in
    if empties > 0 then
      failwith
        (Printf.sprintf "%s: %d impossible empty dequeues in pairs workload"
           Q.name empties);
    let leftover = drain (module Q) q in
    if leftover <> 0 then
      failwith
        (Printf.sprintf "%s: %d elements left after balanced pairs workload"
           Q.name leftover)
  end;
  { seconds; total_ops = 2 * threads * iters; per_thread = counters; gc }

(* Pairs for relaxed queues (the sharded front-end): each iteration
   still enqueues then dequeues, but a [None] is retried rather than
   declared impossible — a non-atomic shard sweep may miss elements in
   flight even though the global queue is never empty. Misses are
   tallied in [deq_empties]; conservation still holds exactly. *)
let pairs_relaxed ?(check = true) ?(max_retries = 10_000_000)
    (module Q : Impls.BENCH_QUEUE) ~threads ~iters () =
  if threads <= 0 || iters <= 0 then invalid_arg "Workload.pairs_relaxed";
  let q = Q.create ~num_threads:(threads + 1) in
  let counters = fresh_counters threads in
  let worker tid =
    let c = counters.(tid) in
    for i = 1 to iters do
      Q.enqueue q ~tid ((tid * iters) + i);
      c.enqs <- c.enqs + 1;
      let rec take retries =
        match Q.dequeue q ~tid with
        | Some _ -> c.deq_hits <- c.deq_hits + 1
        | None ->
            c.deq_empties <- c.deq_empties + 1;
            if retries >= max_retries then
              failwith
                (Printf.sprintf
                   "%s: dequeue still empty after %d sweeps in \
                    relaxed-pairs workload"
                   Q.name retries)
            else take (retries + 1)
      in
      take 0
    done
  in
  let seconds, gc = spawn_and_time ~threads worker in
  if check then begin
    let enqs = sum_by counters (fun c -> c.enqs) in
    let hits = sum_by counters (fun c -> c.deq_hits) in
    if enqs <> hits then
      failwith
        (Printf.sprintf "%s: relaxed pairs imbalance (%d enq, %d deq)"
           Q.name enqs hits);
    let leftover = drain (module Q) q in
    if leftover <> 0 then
      failwith
        (Printf.sprintf
           "%s: %d elements left after balanced relaxed-pairs workload"
           Q.name leftover)
  end;
  { seconds; total_ops = 2 * threads * iters; per_thread = counters; gc }

(* Batch pairs: each round batch-enqueues [batch] fresh values, then
   batch-dequeues [batch]. [iters] counts elements per thread, so a run
   moves the same element volume as {!pairs} at the same [iters] — the
   per-item-vs-batch comparison divides identical work. A short batch
   dequeue is retried on the remainder (tallied in [deq_empties]): the
   strict backends never return short here — every thread holds [batch]
   outstanding elements at its dequeue, so the queue is provably
   non-empty — but the sharded front-end's non-atomic sweep may miss
   elements in flight, exactly as in {!pairs_relaxed}. *)
let pairs_batch ?(check = true) ?(max_retries = 10_000_000)
    (module Q : Impls.BATCH_BENCH_QUEUE) ~threads ~iters ~batch () =
  if threads <= 0 || iters <= 0 || batch <= 0 || iters < batch then
    invalid_arg "Workload.pairs_batch";
  let rounds = iters / batch in
  let q = Q.create ~num_threads:(threads + 1) in
  let counters = fresh_counters threads in
  let worker tid =
    let c = counters.(tid) in
    for round = 0 to rounds - 1 do
      let base = (tid * iters) + (round * batch) in
      Q.enqueue_batch q ~tid (List.init batch (fun i -> base + i));
      c.enqs <- c.enqs + batch;
      let rec take want retries =
        if want > 0 then begin
          let got = List.length (Q.dequeue_batch q ~tid ~n:want) in
          c.deq_hits <- c.deq_hits + got;
          if got < want then begin
            c.deq_empties <- c.deq_empties + 1;
            if retries >= max_retries then
              failwith
                (Printf.sprintf
                   "%s: batch dequeue still short after %d sweeps" Q.name
                   retries)
            else take (want - got) (retries + 1)
          end
        end
      in
      take batch 0
    done
  in
  let seconds, gc = spawn_and_time ~threads worker in
  if check then begin
    let enqs = sum_by counters (fun c -> c.enqs) in
    let hits = sum_by counters (fun c -> c.deq_hits) in
    if enqs <> hits then
      failwith
        (Printf.sprintf "%s: batch pairs imbalance (%d enq, %d deq)" Q.name
           enqs hits);
    let leftover =
      let rec go n =
        match Q.dequeue q ~tid:0 with Some _ -> go (n + 1) | None -> n
      in
      go 0
    in
    if leftover <> 0 then
      failwith
        (Printf.sprintf "%s: %d elements left after balanced batch pairs"
           Q.name leftover)
  end;
  {
    seconds;
    total_ops = 2 * threads * rounds * batch;
    per_thread = counters;
    gc;
  }

let p_enq ?(check = true) ?(prefill = 1000) ?(seed = 42)
    (module Q : Impls.BENCH_QUEUE) ~threads ~iters () =
  if threads <= 0 || iters <= 0 then invalid_arg "Workload.p_enq";
  let q = Q.create ~num_threads:(threads + 1) in
  for i = 1 to prefill do
    Q.enqueue q ~tid:0 i
  done;
  let counters = fresh_counters threads in
  let worker tid =
    let rng = Wfq_primitives.Rng.split_for ~seed ~tid in
    let c = counters.(tid) in
    for i = 1 to iters do
      if Wfq_primitives.Rng.bool rng then begin
        Q.enqueue q ~tid ((tid * iters) + i);
        c.enqs <- c.enqs + 1
      end
      else
        match Q.dequeue q ~tid with
        | Some _ -> c.deq_hits <- c.deq_hits + 1
        | None -> c.deq_empties <- c.deq_empties + 1
    done
  in
  let seconds, gc = spawn_and_time ~threads worker in
  if check then begin
    let enqs = sum_by counters (fun c -> c.enqs) in
    let hits = sum_by counters (fun c -> c.deq_hits) in
    let leftover = drain (module Q) q in
    if prefill + enqs - hits <> leftover then
      failwith
        (Printf.sprintf
           "%s: conservation violated (prefill %d + enq %d - deq %d <> left %d)"
           Q.name prefill enqs hits leftover)
  end;
  { seconds; total_ops = threads * iters; per_thread = counters; gc }

(** Repeat a measurement [runs] times (paper: ten) and return the list of
    completion times in seconds. *)
let repeat ~runs f = List.init runs (fun _ -> (f ()).seconds)
