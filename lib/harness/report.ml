(** Plain-text rendering of benchmark results: one table per paper
    figure, x values down the rows and one column per series, mirroring
    the data behind the paper's line plots. *)

type series = { label : string; points : (float * float) list }

let find_y s x =
  List.assoc_opt x s.points

let print_table ~title ~x_label ~y_label series =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "(y = %s)\n" y_label;
  let xs =
    List.concat_map (fun s -> List.map fst s.points) series
    |> List.sort_uniq compare
  in
  let col_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 10 series
    + 2
  in
  Printf.printf "%-12s" x_label;
  List.iter (fun s -> Printf.printf "%*s" col_width s.label) series;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%-12g" x;
      List.iter
        (fun s ->
          match find_y s x with
          | Some y -> Printf.printf "%*.4f" col_width y
          | None -> Printf.printf "%*s" col_width "-")
        series;
      print_newline ())
    xs;
  flush stdout

(* Minimal JSON emission (no dependency): labels are the only strings
   and contain no control characters, but escape defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string ~title ?(meta = []) series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"title\": \"%s\",\n" (json_escape title));
  Buffer.add_string buf "  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
    meta;
  Buffer.add_string buf "},\n";
  Buffer.add_string buf "  \"series\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    {\"label\": \"%s\", \"points\": ["
           (json_escape s.label));
      List.iteri
        (fun j (x, y) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "[%g, %.6f]" x y))
        s.points;
      Buffer.add_string buf "]}")
    series;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_json ~path ~title ?meta series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_string ~title ?meta series))

let print_csv ~title series =
  Printf.printf "\n# csv: %s\n" title;
  Printf.printf "x,%s\n" (String.concat "," (List.map (fun s -> s.label) series));
  let xs =
    List.concat_map (fun s -> List.map fst s.points) series
    |> List.sort_uniq compare
  in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun s ->
            match find_y s x with
            | Some y -> Printf.sprintf "%.6f" y
            | None -> "")
          series
      in
      Printf.printf "%g,%s\n" x (String.concat "," cells))
    xs;
  flush stdout
