(** The harness's single monotonic nanosecond clock — bechamel's raw
    [@noalloc] [Monotonic_clock.now] (CLOCK_MONOTONIC), the same source
    as [Bechamel.Toolkit.Instance.monotonic_clock] in [bench/main.ml].

    All harness timing goes through this module: monotonic by contract,
    nanosecond granularity, so timestamp deltas are non-negative even
    across NTP steps that move the wall clock backwards (a
    [Unix.gettimeofday] delta has neither guarantee). *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds. Only deltas are meaningful;
    the epoch is unspecified (typically boot time). *)

val now_s : unit -> float
(** [now_ns] scaled to seconds, for duration arithmetic in float. *)

val wait_until : int -> unit
(** [wait_until ns] returns once [now_ns () >= ns]: sleeps most of the
    wait, then spins the final stretch so the release edge is sharp.
    Used by the open-loop engine to hit intended send times without
    monopolizing a core. *)
