(** Open-loop load engine with coordinated-omission-safe latency
    recording: producers follow a seeded {!Arrivals} schedule and every
    latency is measured from the event's {e intended} send time on the
    monotonic clock ({!Clock}), so a stalled or saturated queue shows
    the queueing delay it actually caused instead of throttling the
    load that would have revealed it. Methodology in docs/LATENCY.md;
    the sweep driver is [wfq_bench latency-openloop]. *)

type dist = {
  p50 : float;
  p99 : float;
  p999 : float;
  max : float;
  samples : int;
}
(** Nearest-rank percentiles over the exact samples, nanoseconds. *)

type stall = { victim : int; after : int; duration_ns : int }
(** Injected consumer outage: consumer [victim] goes dark for
    [duration_ns] after its [after]-th dequeue — the sim's
    stall-injection idea applied at the harness level. *)

type config = {
  producers : int;
  consumers : int;
  rate : float;  (** offered load, events/s across all producers *)
  events : int;
  pattern : Arrivals.pattern;
  skew : float;
      (** skewed shard-affinity knob: Zipf-ish producer weights,
          {!Arrivals.split}; [0.] is uniform *)
  seed : int;
  stall : stall option;
}

val default_config : config
(** 1 producer, 1 consumer, Poisson 10k events at 10k events/s, no
    skew, no stall. *)

type result = {
  enq : dist;  (** enqueue completion - intended send time *)
  sojourn : dist;
      (** dequeue completion - intended send time: the end-to-end
          latency an SLO is stated over *)
  duration_s : float;  (** first intended send to last dequeue *)
  offered_rate : float;
  achieved_rate : float;
  enq_hist : Wfq_obsv.Histogram.t;
      (** the same samples pow2-bucketed, one slot per producer — the
          recording the metrics registry snapshots *)
  sojourn_hist : Wfq_obsv.Histogram.t;  (** one slot per consumer *)
}

val impl_of_backend : (module Wfq_core.Queue_intf.BACKEND) -> Impls.impl
(** Any registered backend as an open-loop target. Enqueue applies
    backpressure on bounded backends ([try_enq] retry loop): a full
    queue delays the producer past the intended send time, and the
    delay lands in the enqueue-latency samples. *)

val run : ?metrics:Wfq_obsv.Metrics.t * string -> config -> Impls.impl -> result
(** Run one open-loop point on real domains ([producers + consumers]
    spawned, plus the calling domain which validates the drain).
    Conservation is checked (every event dequeued exactly once, queue
    empty after); a violation raises [Failure].
    [?metrics:(registry, prefix)] registers the two histograms as
    [prefix ^ ".enq_latency_ns"] / [prefix ^ ".sojourn_ns"]. Raises
    [Invalid_argument] on non-positive counts/rate or an out-of-range
    stall victim. *)

type sim_result = {
  open_loop : dist;  (** completion - intended send time *)
  closed_loop : dist;
      (** completion - service start: what a timestamp-around-the-call
          harness records for the same execution *)
}

val simulate :
  ?service_ns:int ->
  ?stall:stall ->
  pattern:Arrivals.pattern ->
  seed:int ->
  rate:float ->
  events:int ->
  Impls.impl ->
  sim_result
(** Deterministic single-server virtual-time run (Lindley recurrence:
    service starts at max(intended, previous completion), takes
    [service_ns], plus the injected [stall] after its [after]-th
    completion; [stall.victim] is ignored — there is one server). The
    queue impl is really driven (every event enqueued before its
    service, dequeued at it) and FIFO delivery is checked. The two
    distributions come from the same execution, so their gap under a
    stall is exactly the coordinated omission a closed-loop harness
    commits — the regression test's pin. *)

val knee : ?mult:float -> (float * float) list -> float option
(** [knee ~mult curve] with [curve = (offered_load, p99) list]: the
    first offered load (ascending) whose p99 exceeds [mult] (default
    4.) times the lowest load's p99 — the saturation knee. [None] if
    the tail never crosses; raises [Invalid_argument] on an empty
    curve. *)
