(** Live-space measurement for Figure 10: the OCaml equivalent of the
    paper's [-verbose:gc] sampling is [Gc.full_major] followed by
    [Gc.stat ()].live_words. *)

val live_words : unit -> int
(** Live heap words after a full major collection. *)

val footprint : Impls.impl -> size:int -> int
(** Heap words attributable to a queue holding [size] elements (live
    words after building it minus live words before). *)

val footprint_active : Impls.impl -> size:int -> iters:int -> samples:int -> int
(** Like {!footprint} but averaged over samples taken while an
    enqueue-dequeue workload runs over the filled queue — closer to the
    paper's mid-benchmark sampling. *)

type alloc_profile = {
  words_per_op : float;  (** minor-heap words allocated per operation *)
  promoted_per_op : float;  (** of those, words promoted to the major heap *)
  minor_collections : int;
  major_collections : int;
  total_ops : int;
}
(** Allocation {e rate} (heap churn per operation), complementing the
    live-space {e footprint} above. *)

val profile_of_result : Workload.run_result -> alloc_profile
(** Derive the profile from any workload's result. *)

val alloc_profile : Impls.impl -> threads:int -> iters:int -> alloc_profile
(** {!profile_of_result} over one run of the enqueue-dequeue-pairs
    workload (conservation-checked, as always). *)
