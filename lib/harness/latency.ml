(* Per-operation latency measurement across domains. *)

type summary = {
  p50 : float;
  p99 : float;
  p999 : float;
  max : float;
  samples : int;
  minor_collections : int;
}

let measure ?(threads = 4) ?(iters = 10_000) (module Q : Impls.BENCH_QUEUE) =
  if threads <= 0 || iters <= 0 then invalid_arg "Latency.measure";
  Gc.full_major ();
  let q = Q.create ~num_threads:threads in
  let barrier = Barrier.create (threads + 1) in
  let latencies = Array.make (threads * iters) 0.0 in
  let worker tid () =
    Barrier.wait barrier;
    for i = 0 to iters - 1 do
      let t0 = Unix.gettimeofday () in
      Q.enqueue q ~tid i;
      ignore (Q.dequeue q ~tid);
      let t1 = Unix.gettimeofday () in
      latencies.((tid * iters) + i) <- (t1 -. t0) *. 1e6
    done
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  Barrier.wait barrier;
  (* Minor collections are stop-the-world events: every one inside the
     measured window is a latency spike shared by all domains, so the
     count contextualizes the tail percentiles (a p999 dominated by GC
     pauses is an allocation-rate problem, not a queue-algorithm one). *)
  let g0 = (Gc.quick_stat ()).Gc.minor_collections in
  List.iter Domain.join domains;
  let g1 = (Gc.quick_stat ()).Gc.minor_collections in
  let xs = Array.to_list latencies in
  {
    p50 = Wfq_primitives.Stats.median xs;
    p99 = Wfq_primitives.Stats.percentile xs 99.0;
    p999 = Wfq_primitives.Stats.percentile xs 99.9;
    max = Wfq_primitives.Stats.maximum xs;
    samples = threads * iters;
    minor_collections = g1 - g0;
  }
