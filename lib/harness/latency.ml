(* Per-operation latency measurement across domains.

   All timestamps come from Clock.now_ns (CLOCK_MONOTONIC): the
   previous Unix.gettimeofday version could hand a timed window a
   backwards NTP step — a negative "latency" — and resolved only
   microseconds. Enqueue and dequeue are timed separately: the two
   operations have different helping structure (an enqueue never waits
   for elements; a dequeue's fast path races the emptiness check), so
   one fused "pair" number hid which side owned the tail. Closed-loop
   caveat: each thread fires as fast as the previous op returns, so
   these numbers measure service time under self-throttled load — for
   queueing delay at an offered load use Open_loop (docs/LATENCY.md). *)

type dist = { p50 : float; p99 : float; p999 : float; max : float }

type summary = {
  enqueue : dist;
  dequeue : dist;
  samples : int;
  minor_collections : int;
}

let dist_of samples_ns n =
  let f = Array.init n (fun i -> float_of_int samples_ns.(i) /. 1e3) in
  match Wfq_primitives.Stats.percentiles_in_place f [ 50.0; 99.0; 99.9; 100.0 ]
  with
  | [ p50; p99; p999; max ] -> { p50; p99; p999; max }
  | _ -> assert false

let measure ?(threads = 4) ?(iters = 10_000) (module Q : Impls.BENCH_QUEUE) =
  if threads <= 0 || iters <= 0 then invalid_arg "Latency.measure";
  Gc.full_major ();
  let q = Q.create ~num_threads:threads in
  let barrier = Barrier.create (threads + 1) in
  let n = threads * iters in
  let enq_ns = Array.make n 0 in
  let deq_ns = Array.make n 0 in
  let worker tid () =
    Barrier.wait barrier;
    for i = 0 to iters - 1 do
      let t0 = Clock.now_ns () in
      Q.enqueue q ~tid i;
      let t1 = Clock.now_ns () in
      ignore (Q.dequeue q ~tid);
      let t2 = Clock.now_ns () in
      (* CLOCK_MONOTONIC is non-decreasing by contract; a negative
         delta means the clock source regressed to something steppable
         and every sample is suspect — fail the measurement loudly. *)
      if t1 < t0 || t2 < t1 then
        failwith "Latency.measure: non-monotonic clock sample";
      enq_ns.((tid * iters) + i) <- t1 - t0;
      deq_ns.((tid * iters) + i) <- t2 - t1
    done
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  Barrier.wait barrier;
  (* Minor collections are stop-the-world events: every one inside the
     measured window is a latency spike shared by all domains, so the
     count contextualizes the tail percentiles (a p999 dominated by GC
     pauses is an allocation-rate problem, not a queue-algorithm one). *)
  let g0 = (Gc.quick_stat ()).Gc.minor_collections in
  List.iter Domain.join domains;
  let g1 = (Gc.quick_stat ()).Gc.minor_collections in
  {
    enqueue = dist_of enq_ns n;
    dequeue = dist_of deq_ns n;
    samples = n;
    minor_collections = g1 - g0;
  }
