(** Instrumented benchmark runs for the observability layer: populate a
    {!Wfq_obsv.Metrics} registry from real multi-domain workloads
    ([wfq_bench stats]), and guard the instrumentation's overhead
    against a fixed budget. *)

type run_line = {
  queue : string;
  threads : int;
  iters : int;
  seconds : float;
  ops : int;
}

val collect :
  threads:int -> iters:int -> unit -> Wfq_obsv.Metrics.t * run_line list
(** Run instrumented pairs workloads — opt WF (1+2) with the [?obsv]
    handle, WF fps pooled, WF fps with a zero fast budget (so the
    slow-path metrics are non-trivial), the 4-shard round-robin
    front-end, and a registry churn loop — each feeding per-op
    enqueue/dequeue latency histograms ([<queue>.enqueue_ns] /
    [.dequeue_ns], bechamel monotonic-clock ns). Returns the populated
    registry and one timing line per queue. *)

type overhead = {
  oh_queue : string;
  disabled_ns_per_op : float;  (** best (minimum) over runs *)
  enabled_ns_per_op : float;  (** best (minimum) over runs *)
  ratio : float;
      (** median of per-pair enabled/disabled ratios; must stay <=
          budget. Not [enabled_ns_per_op /. disabled_ns_per_op]: the
          paired statistic is robust to noise the per-side minima are
          not. *)
}

val overhead_budget : float
(** 1.02: instrumentation may cost at most 2% throughput on the pairs
    workload (the CI bench-smoke gate). *)

val measure_overhead : iters:int -> runs:int -> unit -> overhead list
(** Disabled-vs-enabled chunks for opt WF (1+2) and WF fps: the
    identical [iters]-pair loop over a plain queue and over one built
    with [?obsv] (writing into an unread registry), both persistently
    warmed, timed single-domain in-process over [runs] back-to-back
    chunk pairs with alternating in-pair order; the guarded ratio is
    the median of per-pair ratios. The instrumentation is thread-local
    (single-writer cells, no shared traffic), so its cost is a
    sequential quantity — measuring it without domain spawns or the
    scheduler is what makes a 2% budget checkable on a noisy host.
    Latency sampling (clock reads) is not part of the enabled side —
    it is a per-call opt-in of {!collect}, not of instrumented
    queues. *)
