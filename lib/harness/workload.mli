(** The paper's two benchmarks (§4) as multi-domain workloads with
    built-in correctness validation — a run that violates element
    conservation (or observes an impossible empty dequeue) raises
    [Failure] rather than reporting a meaningless time. *)

type counters = {
  mutable enqs : int;
  mutable deq_hits : int;
  mutable deq_empties : int;
}

type gc_stats = {
  minor_words : float;
      (** words allocated through the minor heap, summed over the worker
          domains' own [Gc.quick_stat] deltas (allocation counters are
          per-domain in OCaml 5) *)
  promoted_words : float;
      (** of those, words that survived into the major heap *)
  minor_collections : int;
      (** stop-the-world minor collections during the measured window
          (global events, deltaed once from the coordinating domain) *)
  major_collections : int;  (** major cycles completed in the window *)
}

type run_result = {
  seconds : float;  (** wall-clock completion time of all threads *)
  total_ops : int;
  per_thread : counters array;
  gc : gc_stats;  (** GC activity inside the measured window *)
}

val pairs :
  ?check:bool ->
  Impls.impl ->
  threads:int ->
  iters:int ->
  unit ->
  run_result
(** "enqueue-dequeue pairs": empty queue; each thread runs [iters] ×
    (enqueue; dequeue). Validation: no dequeue may observe empty (each
    thread's dequeue is preceded by its own enqueue) and the queue must
    end empty. *)

val pairs_relaxed :
  ?check:bool ->
  ?max_retries:int ->
  Impls.impl ->
  threads:int ->
  iters:int ->
  unit ->
  run_result
(** {!pairs} for relaxed-FIFO queues (the sharded front-end): a [None]
    dequeue is retried (counted in [deq_empties]) instead of failing the
    run, because a non-atomic shard sweep may observe empty while
    elements are in flight. Validation: every enqueue is eventually
    dequeued and the queue ends empty. On a strict queue this is
    operation-for-operation identical to {!pairs}. *)

val pairs_batch :
  ?check:bool ->
  ?max_retries:int ->
  Impls.batch_impl ->
  threads:int ->
  iters:int ->
  batch:int ->
  unit ->
  run_result
(** Batch pairs (docs/BATCHING.md): each round batch-enqueues [batch]
    fresh values then batch-dequeues [batch]; [iters] counts elements
    per thread ([iters / batch] rounds), so the run moves the same
    element volume as {!pairs} at equal [iters]. A short batch dequeue
    is retried on the remainder (each shortfall counted once in
    [deq_empties]) — strict backends never return short here, the
    sharded front-end's non-atomic sweep may. Validation: enqueued =
    dequeued and the queue ends empty. *)

val p_enq :
  ?check:bool ->
  ?prefill:int ->
  ?seed:int ->
  Impls.impl ->
  threads:int ->
  iters:int ->
  unit ->
  run_result
(** "50% enqueues": queue prefilled with [prefill] (default 1000)
    elements; each thread flips a private fair coin per iteration.
    Validation: prefill + enqueues - successful dequeues = leftovers. *)

val repeat : runs:int -> (unit -> run_result) -> float list
(** Completion times of [runs] repetitions (the paper averages ten). *)
