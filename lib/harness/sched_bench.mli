(** End-to-end service benchmark for the fiber scheduler (Wfq_sched):
    request fan-out with mixed CPU work and queue hops, swept over
    run-queue backends and domain counts. The [wfq_bench sched]
    subcommand's engine; emits the BENCH_sched.json series. *)

type scale = {
  domains : int list;  (** worker counts swept, e.g. [[1; 2; 4]] *)
  requests : int;  (** request fibers per run *)
  fanout : int;  (** subfibers spawned (and awaited) per request *)
  work : int;  (** CPU-burn loop iterations per stage *)
  runs : int;  (** repetitions; every reported field is their median *)
}

val default : scale
(** [{domains = [1; 2; 4]; requests = 200; fanout = 8; work = 400;
    runs = 3}] *)

type line = {
  backend : string;
  domains : int;
  requests : int;
  fanout : int;
  fibers : int;  (** fibers spawned per run: 1 + requests * (1 + fanout) *)
  seconds : float;
  throughput : float;  (** requests per second *)
  fiber_p50_ns : float;  (** spawn-to-completion, scheduler histogram *)
  fiber_p99_ns : float;
  steal_attempts : int;
  steals_won : int;
}

val backends : (string * (module Wfq_sched.Sched.S)) list
(** The swept backends: [kp_opt12], [fps_pooled], [shard_rr2], [ring]
    — each the scheduler functor over that run-queue on real
    atomics. *)

val service :
  ?backends:(string * (module Wfq_sched.Sched.S)) list ->
  scale:scale ->
  unit ->
  line list
(** Run the scenario for every (backend, domain-count) pair. Each run
    verifies the fan-out answer and fiber conservation before
    reporting, so a wrong result fails loudly rather than producing a
    fast number. *)

val series : line list -> Report.series list
(** Benchmark series keyed ["<field>:<backend>"] with domain count on
    the x axis: [throughput] (requests/s), [fiber_p50_ns],
    [fiber_p99_ns], [steals] (tasks stolen), [steal_attempts] (idle
    sweeps entered — the idle-backoff study's series). *)
