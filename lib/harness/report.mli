(** Plain-text rendering of benchmark series: one table per paper
    figure (x values down the rows, one column per series), plus CSV for
    machine consumption. *)

type series = { label : string; points : (float * float) list }

val print_table :
  title:string -> x_label:string -> y_label:string -> series list -> unit

val print_csv : title:string -> series list -> unit

val json_string :
  title:string -> ?meta:(string * string) list -> series list -> string
(** Machine-readable rendering:
    [{"title", "meta": {...}, "series": [{"label", "points": [[x, y]]}]}].
    [meta] carries run parameters (iters, runs, …) as string pairs. *)

val write_json :
  path:string ->
  title:string ->
  ?meta:(string * string) list ->
  series list ->
  unit
(** {!json_string} written to [path] (overwriting). *)
