(** First-class-module registry of the benchmarked queue algorithms,
    specialized to [int] payloads as in the paper ("we assume the queue
    stores integer values").

    Series names match the paper's figure legends. *)

module A = Wfq_primitives.Real_atomic
module Ms = Wfq_core.Ms_queue.Make (A)
module Lms = Wfq_core.Lms_queue.Make (A)
module Uq = Wfq_universal.Universal.Queue (A)
module Fc = Wfq_core.Fc_queue.Make (A)
module Kp = Wfq_core.Kp_queue.Make (A)
module Kp_hp = Wfq_core.Kp_queue_hp.Make (A)
module Fps = Wfq_core.Kp_queue_fps.Make (A)
module Sh = Wfq_shard.Shard.Make (A)
module Rg = Wfq_core.Ring_queue.Make (A)

module type BENCH_QUEUE = sig
  type t

  val name : string
  val create : num_threads:int -> t
  val enqueue : t -> tid:int -> int -> unit
  val dequeue : t -> tid:int -> int option
end

type impl = (module BENCH_QUEUE)

let lf : impl =
  (module struct
    type t = int Ms.t

    let name = "LF"
    let create ~num_threads = Ms.create ~num_threads ()
    let enqueue = Ms.enqueue
    let dequeue = Ms.dequeue
  end)

(* Pooled (segment-pool node recycling) counterpart of each family's
   headline member: same algorithm, allocation routed through
   Segment_pool so steady-state operations reuse retired nodes (and,
   for the KP family, retired operation descriptors) instead of minting
   fresh ones. These exist for the allocation-rate decomposition
   ([alloc_series]); they are also regular registry members so every
   correctness-checking workload exercises the recycling paths. *)
let lf_pooled : impl =
  (module struct
    type t = int Ms.t

    let name = "LF pooled"
    let create ~num_threads = Ms.create_pooled ~num_threads ()
    let enqueue = Ms.enqueue
    let dequeue = Ms.dequeue
  end)

let lms : impl =
  (module struct
    type t = int Lms.t

    let name = "LF optimistic"
    let create ~num_threads = Lms.create ~num_threads ()
    let enqueue = Lms.enqueue
    let dequeue = Lms.dequeue
  end)

let kp_variant variant_name help phase : impl =
  (module struct
    type t = int Kp.t

    let name = variant_name
    let create ~num_threads = Kp.create_with ~help ~phase ~num_threads ()
    let enqueue = Kp.enqueue
    let dequeue = Kp.dequeue
  end)

let wf_base = kp_variant "base WF" Wfq_core.Kp_queue.Help_all
    Wfq_core.Kp_queue.Phase_scan

let wf_opt1 = kp_variant "opt WF (1)" Wfq_core.Kp_queue.Help_one_cyclic
    Wfq_core.Kp_queue.Phase_scan

let wf_opt2 = kp_variant "opt WF (2)" Wfq_core.Kp_queue.Help_all
    Wfq_core.Kp_queue.Phase_counter

let wf_opt12 = kp_variant "opt WF (1+2)" Wfq_core.Kp_queue.Help_one_cyclic
    Wfq_core.Kp_queue.Phase_counter

let wf_pooled : impl =
  (module struct
    type t = int Kp.t

    let name = "opt WF (1+2) pooled"

    let create ~num_threads =
      Kp.create_with ~pool:true ~help:Wfq_core.Kp_queue.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ()

    let enqueue = Kp.enqueue
    let dequeue = Kp.dequeue
  end)

(* §3.3 extension variants (not in the paper's evaluation): chunked
   cyclic helping and the further tuning enhancements. *)
let kp_variant_full variant_name ~help ~phase ~tuning : impl =
  (module struct
    type t = int Kp.t

    let name = variant_name
    let create ~num_threads = Kp.create_with ~tuning ~help ~phase ~num_threads ()
    let enqueue = Kp.enqueue
    let dequeue = Kp.dequeue
  end)

let wf_chunk k =
  kp_variant_full
    (Printf.sprintf "WF chunk-%d" k)
    ~help:(Wfq_core.Kp_queue.Help_chunk k)
    ~phase:Wfq_core.Kp_queue.Phase_counter
    ~tuning:Wfq_core.Kp_queue.default_tuning

let wf_tuned =
  kp_variant_full "WF tuned"
    ~help:Wfq_core.Kp_queue.Help_one_cyclic
    ~phase:Wfq_core.Kp_queue.Phase_counter
    ~tuning:{ Wfq_core.Kp_queue.gc_friendly = true; validate_before_cas = true }

(* Sharded front-end (lib/shard) over opt-(1+2) KP shards. The pairs
   workload must use its relaxed variant: a sweep can miss a concurrent
   enqueue, so "impossible empty" does not hold for [shards > 1]. *)
let shard_impl variant_name ~policy k : impl =
  (module struct
    type t = int Sh.t

    let name = variant_name

    let create ~num_threads =
      Sh.create ~policy ~shards:k ~num_threads ()

    let enqueue = Sh.enqueue
    let dequeue = Sh.dequeue
  end)

(* The headline entries use the tid-affine policy: on the pairs
   workload a thread's dequeue starts at the shard its enqueue just
   fed, which minimizes cross-shard traffic; it measures consistently
   ahead of both the round-robin ticket policy and the unsharded queue
   at 8 domains. The ticketed general-purpose policy is kept as a
   labelled variant. *)
let wf_shard k =
  shard_impl
    (Printf.sprintf "WF shard-%d" k)
    ~policy:Wfq_shard.Shard.Tid_affine k

let wf_shard_rr k =
  shard_impl
    (Printf.sprintf "WF shard-%d (rr)" k)
    ~policy:Wfq_shard.Shard.Round_robin k

(* Series for the shard-scaling bench: the best unsharded variant
   against the front-end at growing shard counts (shard-1 measures the
   strict mode's overhead, which should be nil). *)
let shard_series =
  [ wf_opt12; wf_shard 1; wf_shard 2; wf_shard 4; wf_shard 8;
    wf_shard_rr 8 ]

(* Fast-path/slow-path KP queue (PPoPP 2012 methodology): lock-free
   Michael-Scott rounds until [max_failures] failures, then the KP
   helping slow path. The slow path runs the paper's fastest variant
   (opt 1+2), matching [Fps.create]'s default. *)
let fps_variant ?(pool = false) variant_name ~max_failures : impl =
  (module struct
    type t = int Fps.t

    let name = variant_name

    let create ~num_threads =
      Fps.create_with ~pool ~max_failures
        ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ()

    let enqueue = Fps.enqueue
    let dequeue = Fps.dequeue
  end)

let wf_fps =
  fps_variant "WF fps"
    ~max_failures:Wfq_core.Kp_queue_fps.default_max_failures

let wf_fps_pooled =
  fps_variant ~pool:true "WF fps pooled"
    ~max_failures:Wfq_core.Kp_queue_fps.default_max_failures

let wf_fps_mf k = fps_variant (Printf.sprintf "WF fps mf=%d" k) ~max_failures:k

(* The issue's sweep: how quickly does throughput degrade as the
   fast-path budget shrinks toward pure-slow-path behaviour? *)
let wf_fps_series = [ wf_fps_mf 1; wf_fps_mf 8; wf_fps_mf 64; wf_fps_mf 1024 ]

(* Series for the fps bench: baselines the acceptance criteria compare
   against (raw LF, base WF, best unsharded WF) plus the headline fps
   queue (unpooled and pooled) and the max_failures sweep. *)
let fps_bench_series =
  [ lf; wf_base; wf_opt12; wf_fps; wf_fps_pooled ] @ wf_fps_series

(* Series for the allocation-rate bench (wfq_bench alloc): each family's
   headline member next to its pooled counterpart, so the words/op delta
   isolates what segment-pool recycling saves. *)
let alloc_series = [ lf; lf_pooled; wf_opt12; wf_pooled; wf_fps; wf_fps_pooled ]

(* Bounded-memory ring (Ring_queue): elements live in pre-allocated
   slots, so steady state allocates nothing per operation. 8192 slots
   comfortably exceeds every benchmark workload's peak depth (pairs
   peaks at [threads] elements); [enqueue] on a full ring raises. *)
let wf_ring_cap ~capacity ~max_failures : impl =
  (module struct
    type t = int Rg.t

    let name =
      if
        capacity = 8192
        && max_failures = Wfq_core.Ring_queue.default_max_failures
      then "WF ring"
      else Printf.sprintf "WF ring c=%d mf=%d" capacity max_failures

    let create ~num_threads =
      Rg.create_with ~capacity ~max_failures ~num_threads ()

    let enqueue = Rg.enqueue
    let dequeue = Rg.dequeue
  end)

let wf_ring =
  wf_ring_cap ~capacity:8192
    ~max_failures:Wfq_core.Ring_queue.default_max_failures

(* Series for the ring bench (wfq_bench ring): the ring against the
   linked-queue allocation floor (the pooled members of each family) and
   the raw throughput baselines. The CI guard compares the ring's
   words/op against "opt WF (1+2) pooled" (the BENCH_alloc floor) and
   its pairs throughput against "WF fps pooled" at 1 domain. *)
let ring_series = [ wf_opt12; wf_pooled; wf_fps_pooled; wf_ring ]

(* The registry route: any {!Wfq_core.Queue_intf.BACKEND} as a bench
   impl through its uniform instance — no per-backend plumbing. The
   display name defaults to the backend's registered label (kept
   distinct from the hand-tuned rows above, which pin non-default
   configurations the registry does not carry). *)
let of_backend ?label (module B : Wfq_core.Queue_intf.BACKEND) : impl =
  (module struct
    type t = int Wfq_core.Queue_intf.instance

    let name = Option.value label ~default:B.label

    let create ~num_threads =
      Wfq_core.Backends.instantiate (module B) ~num_threads ()

    let enqueue q ~tid v = q.Wfq_core.Queue_intf.enq ~tid v
    let dequeue q ~tid = q.Wfq_core.Queue_intf.deq ~tid
  end)

let registry_impls () = List.map (fun b -> of_backend b) (Wfq_core.Backends.all ())

(* The polylog tournament tree (Naderibeni & Ruppert): O(log^2 p) steps
   per operation against the KP family's O(p) helping scans. *)
let wf_polylog = of_backend (Wfq_core.Backends.find "polylog")

(* Series for the crossover bench (wfq_bench polylog): the paper's
   fastest O(p) queue, the lowest-allocation O(p) variant, and the
   O(log^2 p) tree whose step bound grows slower with p. *)
let polylog_series = [ wf_opt12; wf_fps_pooled; wf_polylog ]

let wf_hp : impl =
  (module struct
    type t = int Kp_hp.t

    let name = "WF hazard-ptr"
    let create ~num_threads = Kp_hp.create ~num_threads ()
    let enqueue = Kp_hp.enqueue
    let dequeue = Kp_hp.dequeue
  end)

let wf_universal : impl =
  (module struct
    type t = Uq.t

    let name = "WF universal"
    let create ~num_threads = Uq.create ~num_threads ()
    let enqueue = Uq.enqueue
    let dequeue = Uq.dequeue
  end)

let flat_combining : impl =
  (module struct
    type t = int Fc.t

    let name = "flat-combining"
    let create ~num_threads = Fc.create ~num_threads ()
    let enqueue = Fc.enqueue
    let dequeue = Fc.dequeue
  end)

let two_lock : impl =
  (module struct
    type t = int Wfq_core.Two_lock_queue.t

    let name = "two-lock"
    let create ~num_threads = Wfq_core.Two_lock_queue.create ~num_threads ()
    let enqueue = Wfq_core.Two_lock_queue.enqueue
    let dequeue = Wfq_core.Two_lock_queue.dequeue
  end)

let mutex : impl =
  (module struct
    type t = int Wfq_core.Mutex_queue.t

    let name = "mutex"
    let create ~num_threads = Wfq_core.Mutex_queue.create ~num_threads ()
    let enqueue = Wfq_core.Mutex_queue.enqueue
    let dequeue = Wfq_core.Mutex_queue.dequeue
  end)

let all =
  [ lf; lf_pooled; lms; wf_base; wf_opt1; wf_opt2; wf_opt12; wf_pooled;
    wf_fps; wf_fps_pooled; wf_ring; wf_polylog; wf_hp; wf_universal;
    flat_combining; two_lock; mutex ]

(* Variants for the ablation bench: helping-chunk size sweep plus the
   tuning enhancements. *)
let ablation = [ wf_opt12; wf_chunk 2; wf_chunk 4; wf_tuned ]

(* Batch-native registry (docs/BATCHING.md): the backends exposing
   first-class [enqueue_batch]/[dequeue_batch], plus a per-item adapter
   over the headline fps queue. The adapter loops the single-element
   operations, so in the batch workload the only variable between
   "WF fps per-item" and "WF fps batch" is batch nativeness — the
   amortization headline's baseline. Both fps rows run the pooled
   configuration (the family's headline, as in [ring_series]): with
   segment-recycled nodes the allocator no longer dominates either
   side, so the ratio isolates what batching actually amortizes — the
   per-element CAS protocol. *)
module type BATCH_BENCH_QUEUE = sig
  include BENCH_QUEUE

  val enqueue_batch : t -> tid:int -> int list -> unit
  val dequeue_batch : t -> tid:int -> n:int -> int list
end

type batch_impl = (module BATCH_BENCH_QUEUE)

let fps_per_item : batch_impl =
  (module struct
    type t = int Fps.t

    let name = "WF fps per-item"

    let create ~num_threads =
      Fps.create_with ~pool:true
        ~max_failures:Wfq_core.Kp_queue_fps.default_max_failures
        ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ()

    let enqueue = Fps.enqueue
    let dequeue = Fps.dequeue
    let enqueue_batch q ~tid vs = List.iter (fun v -> Fps.enqueue q ~tid v) vs

    let dequeue_batch q ~tid ~n =
      let rec go k acc =
        if k = 0 then List.rev acc
        else
          match Fps.dequeue q ~tid with
          | Some v -> go (k - 1) (v :: acc)
          | None -> List.rev acc
      in
      go n []
  end)

let fps_batch : batch_impl =
  (module struct
    type t = int Fps.t

    let name = "WF fps batch"

    let create ~num_threads =
      Fps.create_with ~pool:true
        ~max_failures:Wfq_core.Kp_queue_fps.default_max_failures
        ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ()

    let enqueue = Fps.enqueue
    let dequeue = Fps.dequeue
    let enqueue_batch = Fps.enqueue_batch
    let dequeue_batch = Fps.dequeue_batch
  end)

let kp_batch : batch_impl =
  (module struct
    type t = int Kp.t

    let name = "opt WF (1+2) batch"

    let create ~num_threads =
      Kp.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ()

    let enqueue = Kp.enqueue
    let dequeue = Kp.dequeue
    let enqueue_batch = Kp.enqueue_batch
    let dequeue_batch = Kp.dequeue_batch
  end)

let ring_batch : batch_impl =
  (module struct
    type t = int Rg.t

    let name = "WF ring batch"

    let create ~num_threads =
      Rg.create_with ~capacity:8192
        ~max_failures:Wfq_core.Ring_queue.default_max_failures ~num_threads ()

    let enqueue = Rg.enqueue
    let dequeue = Rg.dequeue
    let enqueue_batch = Rg.enqueue_batch
    let dequeue_batch = Rg.dequeue_batch
  end)

let shard_batch : batch_impl =
  (module struct
    type t = int Sh.t

    let name = "WF shard-4 (rr) batch"

    let create ~num_threads =
      Sh.create ~policy:Wfq_shard.Shard.Round_robin ~shards:4 ~num_threads ()

    let enqueue = Sh.enqueue
    let dequeue = Sh.dequeue
    let enqueue_batch = Sh.enqueue_batch
    let dequeue_batch = Sh.dequeue_batch
  end)

let batch_series =
  [ fps_per_item; fps_batch; kp_batch; ring_batch; shard_batch ]

let batch_name (module Q : BATCH_BENCH_QUEUE) = Q.name

let name (module Q : BENCH_QUEUE) = Q.name

let by_name n =
  match List.find_opt (fun i -> name i = n) all with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Impls.by_name: unknown %S (known: %s)" n
           (String.concat ", " (List.map name all)))
