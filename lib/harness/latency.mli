(** Per-operation-pair latency distributions across domains — the
    measurement behind the real-time motivation of the paper's §1
    (deadline-bound systems care about tails, not means). *)

type summary = {
  p50 : float;  (** microseconds *)
  p99 : float;
  p999 : float;
  max : float;
  samples : int;
  minor_collections : int;
      (** stop-the-world minor collections inside the measured window —
          each is a shared latency spike, so a GC-dominated tail is
          distinguishable from a helping-dominated one *)
}

val measure : ?threads:int -> ?iters:int -> Impls.impl -> summary
(** Run the enqueue-dequeue pairs workload on [threads] domains,
    recording the wall-clock latency of every pair. Raises
    [Invalid_argument] on non-positive parameters. *)
