(** Per-operation latency distributions across domains — the
    measurement behind the real-time motivation of the paper's §1
    (deadline-bound systems care about tails, not means).

    Enqueue and dequeue are timed as {e separate} samples on the shared
    monotonic nanosecond clock ({!Clock}); the two operations have
    different helping structure, so one fused round-trip number would
    hide which side owns the tail.

    This is a {e closed-loop} measurement: each thread issues its next
    operation the instant the previous one returns, so the recorded
    numbers are service times under self-throttled load and cannot show
    queueing delay (coordinated omission). For p50/p99/p999 at an
    offered load, use {!Open_loop} (docs/LATENCY.md). *)

type dist = { p50 : float; p99 : float; p999 : float; max : float }
(** Microseconds, nearest-rank over the exact per-operation samples. *)

type summary = {
  enqueue : dist;
  dequeue : dist;
  samples : int;  (** per side: [threads * iters] enqueues, same dequeues *)
  minor_collections : int;
      (** stop-the-world minor collections inside the measured window —
          each is a shared latency spike, so a GC-dominated tail is
          distinguishable from a helping-dominated one *)
}

val measure : ?threads:int -> ?iters:int -> Impls.impl -> summary
(** Run the enqueue-dequeue pairs workload on [threads] domains,
    recording each enqueue's and each dequeue's monotonic-clock latency
    as separate samples. Raises [Invalid_argument] on non-positive
    parameters and [Failure] if the clock source ever regresses (it
    cannot on CLOCK_MONOTONIC — the guard pins the contract). *)
