(** Live-space measurement (paper Figure 10).

    The paper samples the GC's live-object statistics while the
    enqueue-dequeue benchmark runs over queues of growing initial size,
    and reports the wait-free/lock-free footprint ratio. Our equivalent
    of Java's [-verbose:gc] sampling is [Gc.full_major] followed by
    [Gc.stat ()].live_words, which counts exactly the live heap. *)

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

(** Heap words attributable to a queue of [size] elements: live words
    after building it minus live words before. The queue is kept alive
    across the second measurement via [Sys.opaque_identity]. *)
let footprint (module Q : Impls.BENCH_QUEUE) ~size =
  let before = live_words () in
  let q = Q.create ~num_threads:8 in
  for i = 1 to size do
    Q.enqueue q ~tid:0 i
  done;
  let after = live_words () in
  ignore (Sys.opaque_identity q);
  after - before

(** Footprint sampled during activity, closer to the paper's methodology:
    fill to [size], then run one thread of enqueue-dequeue pairs and
    sample live words mid-run. Single-domain sampling (the sampler is the
    worker), which keeps the measurement deterministic. *)
let footprint_active (module Q : Impls.BENCH_QUEUE) ~size ~iters ~samples =
  let before = live_words () in
  let q = Q.create ~num_threads:8 in
  for i = 1 to size do
    Q.enqueue q ~tid:0 i
  done;
  let acc = ref 0 in
  let sample_every = max 1 (iters / samples) in
  let taken = ref 0 in
  for i = 1 to iters do
    Q.enqueue q ~tid:0 (size + i);
    ignore (Q.dequeue q ~tid:0);
    if i mod sample_every = 0 && !taken < samples then begin
      acc := !acc + (live_words () - before);
      incr taken
    end
  done;
  ignore (Sys.opaque_identity q);
  if !taken = 0 then live_words () - before else !acc / !taken

(** Allocation-rate profile of one implementation on the pairs workload:
    live-space (fig. 10) measures how much heap a queue {e holds};
    this measures how fast it {e churns} — the words each operation
    allocates, and the collection work that churn induces. Derived from
    the per-worker [Gc.quick_stat] deltas {!Workload} records inside
    the measured window. *)
type alloc_profile = {
  words_per_op : float;  (** minor-heap words allocated per operation *)
  promoted_per_op : float;  (** of those, words promoted to the major heap *)
  minor_collections : int;
  major_collections : int;
  total_ops : int;
}

let profile_of_result (r : Workload.run_result) =
  let ops = float_of_int r.Workload.total_ops in
  {
    words_per_op = r.Workload.gc.Workload.minor_words /. ops;
    promoted_per_op = r.Workload.gc.Workload.promoted_words /. ops;
    minor_collections = r.Workload.gc.Workload.minor_collections;
    major_collections = r.Workload.gc.Workload.major_collections;
    total_ops = r.Workload.total_ops;
  }

let alloc_profile impl ~threads ~iters =
  profile_of_result (Workload.pairs impl ~threads ~iters ())
