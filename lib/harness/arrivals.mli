(** Deterministic open-loop arrival schedules (seeded Poisson and
    on/off-burst processes) with skewed producer assignment — the load
    half of the coordinated-omission-safe latency harness
    ({!Open_loop} is the measurement half, docs/LATENCY.md the
    methodology). *)

type pattern =
  | Poisson
      (** I.i.d. exponential interarrival gaps at the offered rate. *)
  | Burst of { duty : float; burst_len : int }
      (** On/off Markov modulated Poisson: ON periods at [rate / duty]
          (long-run mean stays at the offered rate), geometric bursts
          with mean [burst_len] arrivals, exponential OFF gaps sized so
          the ON fraction is [duty]. [duty] in (0, 1]; [duty = 1]
          degenerates to {!Poisson}. *)

val pattern_name : pattern -> string

val generate : pattern -> seed:int -> rate:float -> n:int -> int array
(** [generate p ~seed ~rate ~n] is the absolute intended send times, in
    nanoseconds from schedule start, of [n] events at long-run mean
    [rate] events/s — sorted ascending, gaps >= 1 ns, byte-for-byte
    reproducible from [seed]. Raises [Invalid_argument] on
    non-positive [rate]/[n] or malformed burst parameters. *)

val weights : workers:int -> skew:float -> float array
(** Zipf-like producer weights: producer [i] has probability
    proportional to [(i+1)^-skew]; [skew = 0.] is uniform. Normalized
    to sum to 1. Exposed for tests. *)

val split :
  int array -> workers:int -> skew:float -> seed:int -> int array array
(** Assign each event of a schedule to one of [workers] producers by
    seeded weighted choice ({!weights}); the result's row [i] is
    producer [i]'s sub-schedule in global order. With [skew > 0.] the
    low-numbered producers carry disproportionate load — the skewed
    shard-affinity scenario. *)
