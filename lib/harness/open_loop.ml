(** Open-loop load engine with coordinated-omission-safe latency
    recording (docs/LATENCY.md).

    Producers follow a pre-generated {!Arrivals} schedule: each event
    has an {e intended} send time fixed before the run, and every
    recorded latency is measured from that intended time on the shared
    monotonic clock ({!Clock}):

    - enqueue latency = enqueue completion - intended send time. A
      producer that falls behind (scheduling, a full bounded queue
      exerting backpressure) accrues the delay into its samples instead
      of silently stretching the schedule.
    - sojourn latency = dequeue completion - intended send time: the
      end-to-end number an operator's SLO is about. The element
      {e carries} its intended time as the payload, so the consumer
      needs no side channel.

    A closed-loop loop (each thread fires as fast as its previous op
    returns) cannot see queueing delay: when a consumer stalls, the
    closed loop simply issues fewer operations and each one still
    measures a short service time — the classic coordinated-omission
    trap. Here the schedule does not yield: arrivals keep their
    intended times, the backlog drains late, and every late element's
    sojourn includes the stall it actually suffered. {!simulate} pins
    exactly this contrast deterministically; stall injection in {!run}
    reproduces it on real domains. *)

module Hist = Wfq_obsv.Histogram
module Stats = Wfq_primitives.Stats

type dist = {
  p50 : float;
  p99 : float;
  p999 : float;
  max : float;
  samples : int;
}
(** Nanoseconds, nearest-rank over the exact samples. *)

let dist_of_ns ns_list =
  (* [ns_list] are int-ns arrays per worker slot; concatenate once. *)
  let total = List.fold_left (fun a (_, n) -> a + n) 0 ns_list in
  if total = 0 then { p50 = 0.; p99 = 0.; p999 = 0.; max = 0.; samples = 0 }
  else begin
    let all = Array.make total 0.0 in
    let k = ref 0 in
    List.iter
      (fun (arr, n) ->
        for i = 0 to n - 1 do
          all.(!k) <- float_of_int arr.(i);
          incr k
        done)
      ns_list;
    match Stats.percentiles_in_place all [ 50.0; 99.0; 99.9; 100.0 ] with
    | [ p50; p99; p999; max ] -> { p50; p99; p999; max; samples = total }
    | _ -> assert false
  end

type stall = { victim : int; after : int; duration_ns : int }

type config = {
  producers : int;
  consumers : int;
  rate : float;  (** offered load, events/s across all producers *)
  events : int;
  pattern : Arrivals.pattern;
  skew : float;  (** producer-assignment skew, {!Arrivals.split} *)
  seed : int;
  stall : stall option;
}

let default_config =
  {
    producers = 1;
    consumers = 1;
    rate = 10_000.0;
    events = 10_000;
    pattern = Arrivals.Poisson;
    skew = 0.0;
    seed = 42;
    stall = None;
  }

type result = {
  enq : dist;
  sojourn : dist;
  duration_s : float;  (** first intended send to last dequeue *)
  offered_rate : float;
  achieved_rate : float;  (** events / duration *)
  enq_hist : Hist.t;  (** the same samples, pow2-bucketed per producer *)
  sojourn_hist : Hist.t;  (** per consumer *)
}

(* Any registered backend as an open-loop target. [enq] blocks with
   backpressure on bounded backends ([try_enq] retry): a full ring
   delays the producer past the intended send time and the delay lands
   in the enqueue-latency samples — which is the honest open-loop
   reading of "the queue was full". *)
let impl_of_backend (module B : Wfq_core.Queue_intf.BACKEND) : Impls.impl =
  (module struct
    type t = int Wfq_core.Queue_intf.instance

    let name = B.label

    let create ~num_threads =
      Wfq_core.Backends.instantiate (module B) ~num_threads ()

    let enqueue q ~tid v =
      while not (q.Wfq_core.Queue_intf.try_enq ~tid v) do
        Domain.cpu_relax ()
      done

    let dequeue q ~tid = q.Wfq_core.Queue_intf.deq ~tid
  end)

let validate cfg =
  if cfg.producers <= 0 || cfg.consumers <= 0 then
    invalid_arg "Open_loop.run: producers/consumers must be positive";
  if cfg.events <= 0 then invalid_arg "Open_loop.run: events must be positive";
  (match cfg.stall with
  | Some s ->
      if s.victim < 0 || s.victim >= cfg.consumers then
        invalid_arg "Open_loop.run: stall victim out of range";
      if s.duration_ns < 0 || s.after < 0 then
        invalid_arg "Open_loop.run: stall parameters must be non-negative"
  | None -> ())

let run ?metrics cfg (module Q : Impls.BENCH_QUEUE) =
  validate cfg;
  if not (Float.is_finite cfg.rate) || cfg.rate <= 0.0 then
    invalid_arg "Open_loop.run: rate must be positive";
  let schedule =
    Arrivals.generate cfg.pattern ~seed:cfg.seed ~rate:cfg.rate ~n:cfg.events
  in
  let subs =
    Arrivals.split schedule ~workers:cfg.producers ~skew:cfg.skew
      ~seed:(cfg.seed + 1)
  in
  let threads = cfg.producers + cfg.consumers in
  let q = Q.create ~num_threads:(threads + 1) in
  let enq_hist = Hist.create ~slots:cfg.producers () in
  let sojourn_hist = Hist.create ~slots:cfg.consumers () in
  (* Exact samples, preallocated so the hot loops allocate nothing. *)
  let enq_lat = Array.map (fun s -> Array.make (max 1 (Array.length s)) 0) subs in
  let soj_lat = Array.init cfg.consumers (fun _ -> Array.make cfg.events 0) in
  let soj_count = Array.make cfg.consumers 0 in
  let consumed = Atomic.make 0 in
  let last_deq_ns = Atomic.make 0 in
  Gc.full_major ();
  let barrier = Barrier.create (threads + 1) in
  (* t0 is chosen after the barrier releases, with a small runway so no
     intended time is already in the past when producers start. *)
  let t0 = ref 0 in
  let producer p () =
    Barrier.wait barrier;
    let tid = p in
    let sched = subs.(p) in
    let lat = enq_lat.(p) in
    let t0 = !t0 in
    for i = 0 to Array.length sched - 1 do
      let intended = t0 + sched.(i) in
      Clock.wait_until intended;
      Q.enqueue q ~tid sched.(i);
      let d = Clock.now_ns () - intended in
      lat.(i) <- d;
      Hist.record enq_hist ~slot:p d
    done
  in
  let consumer c () =
    Barrier.wait barrier;
    let tid = cfg.producers + c in
    let lat = soj_lat.(c) in
    let t0 = !t0 in
    let local = ref 0 in
    let stall = cfg.stall in
    while Atomic.get consumed < cfg.events do
      match Q.dequeue q ~tid with
      | Some intended_rel ->
          let now = Clock.now_ns () in
          let d = now - (t0 + intended_rel) in
          lat.(!local) <- d;
          Hist.record sojourn_hist ~slot:c d;
          incr local;
          Atomic.incr consumed;
          (* racy max is fine: any of the final dequeues bounds it *)
          if now > Atomic.get last_deq_ns then Atomic.set last_deq_ns now;
          (match stall with
          | Some s when s.victim = c && !local = s.after ->
              (* The injected outage: this consumer goes dark for
                 [duration_ns] while the schedule keeps arriving. *)
              Clock.wait_until (now + s.duration_ns)
          | _ -> ())
      | None -> Domain.cpu_relax ()
    done;
    soj_count.(c) <- !local
  in
  let domains =
    List.init threads (fun i ->
        if i < cfg.producers then Domain.spawn (producer i)
        else Domain.spawn (consumer (i - cfg.producers)))
  in
  (* 2 ms runway between the release and the first possible intended
     time, enough for every domain to clear the barrier. *)
  t0 := Clock.now_ns () + 2_000_000;
  Barrier.wait barrier;
  List.iter Domain.join domains;
  let consumed_total = Array.fold_left ( + ) 0 soj_count in
  if consumed_total <> cfg.events then
    failwith
      (Printf.sprintf "Open_loop.run: %s consumed %d of %d events" Q.name
         consumed_total cfg.events);
  (match Q.dequeue q ~tid:threads with
  | Some _ -> failwith (Printf.sprintf "Open_loop.run: %s not drained" Q.name)
  | None -> ());
  (match metrics with
  | Some (registry, prefix) ->
      Wfq_obsv.Metrics.register registry
        (prefix ^ ".enq_latency_ns")
        (Wfq_obsv.Metrics.Histogram enq_hist);
      Wfq_obsv.Metrics.register registry (prefix ^ ".sojourn_ns")
        (Wfq_obsv.Metrics.Histogram sojourn_hist)
  | None -> ());
  let duration_ns = Atomic.get last_deq_ns - (!t0 + schedule.(0)) in
  let duration_s = float_of_int (max 1 duration_ns) *. 1e-9 in
  {
    enq =
      dist_of_ns
        (Array.to_list
           (Array.mapi (fun p a -> (a, Array.length subs.(p))) enq_lat));
    sojourn =
      dist_of_ns
        (Array.to_list (Array.mapi (fun c a -> (a, soj_count.(c))) soj_lat));
    duration_s;
    offered_rate = cfg.rate;
    achieved_rate = float_of_int cfg.events /. duration_s;
    enq_hist;
    sojourn_hist;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic virtual-time simulation                               *)
(* ------------------------------------------------------------------ *)

type sim_result = {
  open_loop : dist;  (** completion - intended send time *)
  closed_loop : dist;
      (** completion - service start: what a timestamp-around-the-call
          measurement (the old closed-loop [Latency.measure]) reports
          for the same execution *)
}

(* Single-server queue in virtual time (Lindley recurrence): service of
   event [i] starts at max(intended_i, previous completion), takes
   [service_ns], and the server additionally goes dark for
   [s.duration_ns] after its [s.after]-th completion. The real queue
   impl is driven underneath — every event is enqueued before its
   service and dequeued at it, in intended order — so the simulation
   also checks FIFO delivery of the impl it models.

   The two distributions come from the same execution: [open_loop]
   timestamps from the intended send time (what this PR's engine
   records), [closed_loop] from the service start (what a
   timestamp-around-the-call harness records). Under a stall the
   backlog's open-loop samples grow by the whole remaining outage while
   closed-loop sees one long sample and [n-1] short ones — the
   coordinated-omission gap, pinned in test_openloop.ml. *)
let simulate ?(service_ns = 1_000) ?stall ~pattern ~seed ~rate ~events
    (module Q : Impls.BENCH_QUEUE) =
  if service_ns <= 0 then
    invalid_arg "Open_loop.simulate: service_ns must be positive";
  let schedule = Arrivals.generate pattern ~seed ~rate ~n:events in
  let q = Q.create ~num_threads:1 in
  let open_lat = Array.make events 0 in
  let closed_lat = Array.make events 0 in
  let enq_idx = ref 0 in
  let free_at = ref 0 in
  for i = 0 to events - 1 do
    let start = max schedule.(i) !free_at in
    (* Everything that has arrived by the service start is already in
       the queue — in particular event [i] itself. *)
    while !enq_idx < events && schedule.(!enq_idx) <= start do
      Q.enqueue q ~tid:0 !enq_idx;
      incr enq_idx
    done;
    (match Q.dequeue q ~tid:0 with
    | Some j when j = i -> ()
    | Some j ->
        failwith
          (Printf.sprintf "Open_loop.simulate: %s broke FIFO (%d before %d)"
             Q.name j i)
    | None ->
        failwith
          (Printf.sprintf "Open_loop.simulate: %s empty at event %d" Q.name i));
    let completion = start + service_ns in
    let completion =
      match stall with
      | Some s when i = s.after -> completion + s.duration_ns
      | _ -> completion
    in
    open_lat.(i) <- completion - schedule.(i);
    closed_lat.(i) <- completion - start;
    free_at := completion
  done;
  {
    open_loop = dist_of_ns [ (open_lat, events) ];
    closed_loop = dist_of_ns [ (closed_lat, events) ];
  }

(* ------------------------------------------------------------------ *)
(* Saturation knee                                                     *)
(* ------------------------------------------------------------------ *)

(* First offered load whose p99 exceeds [mult] x the lowest offered
   load's p99 (the low-load baseline). [None] if the curve never
   crosses — the backend kept its tail through the whole sweep. *)
let knee ?(mult = 4.0) points =
  match List.sort (fun (a, _) (b, _) -> Float.compare a b) points with
  | [] -> invalid_arg "Open_loop.knee: empty curve"
  | (_, baseline) :: _ as sorted ->
      let threshold = mult *. baseline in
      List.find_map
        (fun (load, p99) -> if p99 > threshold then Some load else None)
        sorted
