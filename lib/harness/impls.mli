(** Registry of benchmarked queue algorithms as first-class modules,
    specialized to [int] payloads (the paper's setting). Series names
    match the paper's figure legends. *)

module type BENCH_QUEUE = sig
  type t

  val name : string
  val create : num_threads:int -> t
  val enqueue : t -> tid:int -> int -> unit
  val dequeue : t -> tid:int -> int option
end

type impl = (module BENCH_QUEUE)

val lf : impl
(** Michael-Scott lock-free queue — the paper's baseline ("LF"). *)

val lf_pooled : impl
(** Michael-Scott with segment-pool node recycling ("LF pooled"):
    retired nodes are reused through per-domain
    {!Wfq_primitives.Segment_pool} free lists (epoch quarantine always
    on — the MS head CAS has no claim word to tag). *)

val lms : impl
(** Ladan-Mozes & Shavit optimistic lock-free queue (related work
    [14]). *)

val wf_base : impl
(** Base Kogan-Petrank wait-free queue ("base WF"). *)

val wf_opt1 : impl
(** Optimization 1 only: cyclic single-thread helping ("opt WF (1)"). *)

val wf_opt2 : impl
(** Optimization 2 only: atomic phase counter ("opt WF (2)"). *)

val wf_opt12 : impl
(** Both optimizations ("opt WF (1+2)"). *)

val wf_pooled : impl
(** opt WF (1+2) with node and descriptor recycling through
    {!Wfq_primitives.Segment_pool} ("opt WF (1+2) pooled"):
    [Kp_queue.create_with ~pool:true]. *)

val wf_chunk : int -> impl
(** §3.3 extension: cyclic chunk helping of the given size. *)

val wf_tuned : impl
(** §3.3 extension: opt (1+2) plus gc-friendly descriptor reset and
    pre-CAS validation. *)

val wf_shard : int -> impl
(** Sharded front-end ([lib/shard]) with the given shard count,
    tid-affine policy (shard = tid mod N, steal on empty), over
    opt-(1+2) KP shards. Relaxed FIFO: benchmark it with
    {!Workload.pairs_relaxed}, not {!Workload.pairs} (a non-atomic
    sweep may observe empty under concurrency). *)

val wf_shard_rr : int -> impl
(** Same front-end with the round-robin fetch-and-add ticket policy. *)

val shard_series : impl list
(** Series for the shard-scaling bench: opt WF (1+2) vs the sharded
    front-end at 1/2/4/8 shards plus the 8-shard round-robin variant. *)

val wf_fps : impl
(** Fast-path/slow-path KP queue ("WF fps"): lock-free Michael-Scott
    rounds until {!Wfq_core.Kp_queue_fps.default_max_failures} failures,
    then the KP helping slow path (opt 1+2). Wait-free, linearizable,
    strict FIFO — safe with {!Workload.pairs}. *)

val wf_fps_pooled : impl
(** {!wf_fps} with node and descriptor recycling ("WF fps pooled"):
    [Kp_queue_fps.create_with ~pool:true]. *)

val wf_fps_mf : int -> impl
(** Same with an explicit [max_failures] budget ("WF fps mf=K"). *)

val wf_fps_series : impl list
(** The fast-path budget sweep: max_failures ∈ 1, 8, 64, 1024. *)

val fps_bench_series : impl list
(** Series for the fps bench: LF, base WF, opt WF (1+2), WF fps, WF fps
    pooled, plus {!wf_fps_series}. *)

val alloc_series : impl list
(** Series for the allocation-rate bench ([wfq_bench alloc]): LF,
    opt WF (1+2) and WF fps, each next to its pooled counterpart, so
    the words/op delta isolates segment-pool recycling. *)

val wf_ring : impl
(** Bounded-memory wait-free ring ({!Wfq_core.Ring_queue}, "WF ring"):
    8192 pre-allocated slots, default fast-path budget. Zero
    steady-state allocation; [enqueue] raises on a full ring (no
    benchmark workload approaches the bound). Strict FIFO — safe with
    {!Workload.pairs}. *)

val wf_ring_cap : capacity:int -> max_failures:int -> impl
(** {!wf_ring} with explicit capacity and fast-path budget
    ("WF ring c=C mf=K"). *)

val ring_series : impl list
(** Series for the ring bench ([wfq_bench ring]): opt WF (1+2), its
    pooled counterpart (the words/op floor the ring must beat), WF fps
    pooled (the throughput baseline) and the ring. *)

val of_backend : ?label:string -> (module Wfq_core.Queue_intf.BACKEND) -> impl
(** Any registered backend ({!Wfq_core.Backends}) as a bench impl
    through its uniform instance; display name defaults to the
    backend's registered label. *)

val registry_impls : unit -> impl list
(** One {!of_backend} impl per registered backend, registry order. *)

val wf_polylog : impl
(** Polylog-step tournament-tree queue ({!Wfq_core.Polylog_queue},
    "WF polylog"): O(log{^ 2} p) steps per operation vs the KP
    family's O(p) helping scans. Unbounded, strict FIFO — safe with
    {!Workload.pairs}. Append-only block logs (no reclamation), so
    sized runs only. *)

val polylog_series : impl list
(** Series for the crossover bench ([wfq_bench polylog]): opt WF (1+2),
    WF fps pooled, WF polylog. *)

val wf_hp : impl
(** Wait-free queue with hazard-pointer reclamation (§3.4). *)

val wf_universal : impl
(** Wait-free queue via Herlihy's universal construction — the generic
    alternative the paper's §2 argues is impractical; benchmarked to
    measure that argument. *)

val flat_combining : impl
(** Flat-combining queue (Hendler et al., SPAA 2010): blocking,
    combiner-based — the combining counterpoint to helping. *)

val two_lock : impl
(** Michael-Scott two-lock blocking queue (extra baseline). *)

val mutex : impl
(** Coarse single-mutex queue (extra baseline). *)

val all : impl list
(** The paper's series plus the extra baselines, the HP variant and the
    bounded ring. *)

val ablation : impl list
(** Variants for the helping-chunk / tuning ablation bench. *)

module type BATCH_BENCH_QUEUE = sig
  include BENCH_QUEUE

  val enqueue_batch : t -> tid:int -> int list -> unit
  val dequeue_batch : t -> tid:int -> n:int -> int list
end
(** A benchmarked queue with first-class batch operations
    (docs/BATCHING.md). *)

type batch_impl = (module BATCH_BENCH_QUEUE)

val fps_per_item : batch_impl
(** "WF fps per-item": the headline fps queue with batches looped one
    element at a time — the amortization baseline every batch-native
    series is compared against (and the CI guard's denominator). *)

val fps_batch : batch_impl
(** "WF fps batch": same queue, native batch operations — one fast-path
    CAS (or one slow-path descriptor) per whole batch. *)

val kp_batch : batch_impl
(** "opt WF (1+2) batch": the base wait-free queue's native batches. *)

val ring_batch : batch_impl
(** "WF ring batch": the bounded ring's native batches (8192 slots). *)

val shard_batch : batch_impl
(** "WF shard-4 (rr) batch": the sharded front-end, round-robin spread
    routing. Relaxed FIFO — a batch dequeue may return short under
    concurrency, so the batch workload retries the remainder. *)

val batch_series : batch_impl list
(** Series for the batch bench ([wfq_bench figures --batch k]):
    {!fps_per_item} vs the four batch-native backends. *)

val batch_name : batch_impl -> string
val name : impl -> string

val by_name : string -> impl
(** Look up a member of {!all} by its display name; raises
    [Invalid_argument] with the known names otherwise. *)
