(** Regeneration of every figure in the paper's evaluation section (§4).

    Each function returns {!Report.series} data — the numbers behind the
    corresponding line plot — and is shared between [bench/main.exe]
    (one-shot regeneration of everything) and [bin/wfq_bench.exe]
    (parameterized CLI).

    Scaling: the paper runs 1,000,000 iterations per thread over 1..16
    threads on 8-core machines, ten repetitions per point. The default
    {!quick} scale keeps the same shape at container-friendly cost;
    {!paper} restores the paper's parameters. *)

type scale = {
  threads : int list;  (** x axis of figs. 7-9 *)
  iters : int;  (** iterations per thread *)
  runs : int;  (** repetitions averaged per data point *)
  sizes : int list;  (** x axis of fig. 10 (initial queue size) *)
}

let quick =
  {
    threads = [ 1; 2; 4; 8; 16 ];
    iters = 10_000;
    runs = 3;
    sizes = [ 1; 10; 100; 1_000; 10_000; 100_000 ];
  }

let paper =
  {
    threads = List.init 16 (fun i -> i + 1);
    iters = 1_000_000;
    runs = 10;
    sizes = [ 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000 ];
  }

(** Time and GC activity extracted from the same runs: every run already
    carries its [Workload.gc_stats], so the GC columns of a figure cost
    nothing extra — projecting twice from one collection, never
    re-running. *)
type with_gc = {
  time : Report.series list;  (** seconds (the figure itself) *)
  minor_gcs : Report.series list;
      (** stop-the-world minor collections per run — the GC column *)
}

let series_from_labels ~scale labels per_threads ~aggregate ~project =
  Array.to_list
    (Array.mapi
       (fun i label ->
         {
           Report.label;
           points =
             List.map2
               (fun threads (samples : Workload.run_result list array) ->
                 (float_of_int threads, aggregate (List.map project samples.(i))))
               scale.threads per_threads;
         })
       labels)

let series_from ~scale impls per_threads ~aggregate ~project =
  series_from_labels ~scale (Array.map Impls.name impls) per_threads ~aggregate
    ~project

let seconds (r : Workload.run_result) = r.Workload.seconds

let minor_gcs_of (r : Workload.run_result) =
  float_of_int r.Workload.gc.Workload.minor_collections

let completion_series_gc ~scale ~workload impls =
  let impls = Array.of_list impls in
  let per_threads =
    List.map
      (fun threads ->
        Array.map
          (fun impl ->
            List.init scale.runs (fun _ ->
                workload impl ~threads ~iters:scale.iters ()))
          impls)
      scale.threads
  in
  let mk project =
    series_from ~scale impls per_threads ~aggregate:Wfq_primitives.Stats.mean
      ~project
  in
  { time = mk seconds; minor_gcs = mk minor_gcs_of }

(** Figure 7: enqueue-dequeue pairs — completion time vs thread count for
    the lock-free baseline, the base wait-free queue and the fully
    optimized wait-free queue. *)
let fig7_gc ?(scale = quick) () =
  completion_series_gc ~scale
    ~workload:(fun impl ~threads ~iters () ->
      Workload.pairs impl ~threads ~iters ())
    [ Impls.lf; Impls.wf_base; Impls.wf_opt12 ]

let fig7 ?scale () = (fig7_gc ?scale ()).time

(** Figure 8: 50% enqueues — same series over the randomized workload
    with a 1000-element prefill. *)
let fig8_gc ?(scale = quick) () =
  completion_series_gc ~scale
    ~workload:(fun impl ~threads ~iters () ->
      Workload.p_enq impl ~threads ~iters ())
    [ Impls.lf; Impls.wf_base; Impls.wf_opt12 ]

let fig8 ?scale () = (fig8_gc ?scale ()).time

(** Figure 9: the impact of each §3.3 optimization in isolation, on the
    enqueue-dequeue benchmark. *)
let fig9_gc ?(scale = quick) () =
  completion_series_gc ~scale
    ~workload:(fun impl ~threads ~iters () ->
      Workload.pairs impl ~threads ~iters ())
    [ Impls.wf_base; Impls.wf_opt12; Impls.wf_opt1; Impls.wf_opt2 ]

let fig9 ?scale () = (fig9_gc ?scale ()).time

(** Figure 10: live-space overhead of the wait-free queues relative to
    the lock-free one, as a function of the initial queue size. *)
let fig10 ?(scale = quick) () =
  let ratio impl size =
    let wf = Space.footprint impl ~size in
    let lf = Space.footprint Impls.lf ~size in
    float_of_int wf /. float_of_int lf
  in
  [
    {
      Report.label = "base WF / LF";
      points =
        List.map
          (fun s -> (float_of_int s, ratio Impls.wf_base s))
          scale.sizes;
    };
    {
      Report.label = "opt WF (1+2) / LF";
      points =
        List.map
          (fun s -> (float_of_int s, ratio Impls.wf_opt12 s))
          scale.sizes;
    };
  ]

(** Extension (not in the paper): the full baseline field on the pairs
    benchmark, including the blocking queues, the HP-reclaiming wait-free
    queue, and both partial optimizations. *)
let extended_pairs ?(scale = quick) () =
  (completion_series_gc ~scale
     ~workload:(fun impl ~threads ~iters () ->
       Workload.pairs impl ~threads ~iters ())
     Impls.all)
    .time

(* Like {!completion_series_gc}, but the repetitions of all series are
   interleaved in rotating order instead of completing one series before
   starting the next. Sequential completion biases later series: heap
   and allocator state accumulated by earlier measurements (major-heap
   growth, domain bookkeeping) inflates later ones by more than the
   differences under study. Rotation makes every series occupy every
   position in the round equally often. Points are per-series medians
   rather than means: on small single-core hosts the dominant noise is
   multiplicative interference spikes (scheduler, co-tenants), which a
   mean smears over whichever series they happened to hit. *)
let interleaved_collect ~scale ~workload impls =
  let k = Array.length impls in
  List.map
    (fun threads ->
      let samples = Array.make k [] in
      for run = 0 to scale.runs - 1 do
        for j = 0 to k - 1 do
          let i = (run + j) mod k in
          let s = workload impls.(i) ~threads ~iters:scale.iters () in
          samples.(i) <- s :: samples.(i)
        done
      done;
      samples)
    scale.threads

let interleaved_series_gc ~scale ~workload impls =
  let impls = Array.of_list impls in
  let per_threads = interleaved_collect ~scale ~workload impls in
  let mk project =
    series_from ~scale impls per_threads
      ~aggregate:Wfq_primitives.Stats.median ~project
  in
  { time = mk seconds; minor_gcs = mk minor_gcs_of }

(** Extension (lib/shard): shard-count scaling of the sharded front-end
    against the best unsharded variant, on the enqueue-dequeue-pairs
    workload. Uses the relaxed pairs variant — identical per-operation
    work, but a [None] from a non-atomic shard sweep is retried rather
    than treated as impossible — and interleaved repetitions so that
    run-order heap effects do not bias the comparison. *)
let shard_scaling ?(scale = quick) () =
  (interleaved_series_gc ~scale
     ~workload:(fun impl ~threads ~iters () ->
       Workload.pairs_relaxed impl ~threads ~iters ())
     Impls.shard_series)
    .time

(** Extension (Kp_queue_fps): the fast-path/slow-path queue against the
    acceptance baselines (raw LF, base WF, best unsharded WF) plus the
    max_failures sweep, on the strict enqueue-dequeue-pairs workload —
    the fps queue is strict FIFO, so the "impossible empty" invariant
    holds and doubles as a correctness check on every measurement.
    Interleaved repetitions, as for {!shard_scaling}. *)
let fps_scaling_gc ?(scale = quick) () =
  interleaved_series_gc ~scale
    ~workload:(fun impl ~threads ~iters () ->
      Workload.pairs impl ~threads ~iters ())
    Impls.fps_bench_series

let fps_scaling ?scale () = (fps_scaling_gc ?scale ()).time

(** Extension (Polylog_queue, [wfq_bench polylog]): the helping-cost
    crossover — the KP family's headliners (O(p)-step helping scans)
    vs the polylog tournament-tree queue (O(log² p) steps per op) on
    the strict enqueue-dequeue-pairs workload. Interleaved repetitions,
    as for {!shard_scaling}. The asymptotic half of the crossover story
    (the certified step-bound-vs-p table) comes from
    [Wfq_sim.Check.certify] in the bench driver — the harness itself
    never loads the simulator. *)
let polylog_crossover_gc ?(scale = quick) () =
  interleaved_series_gc ~scale
    ~workload:(fun impl ~threads ~iters () ->
      Workload.pairs impl ~threads ~iters ())
    Impls.polylog_series

(** Allocation-rate decomposition (the [wfq_bench alloc] dataset): each
    family's headline member next to its pooled counterpart on the
    enqueue-dequeue-pairs workload, interleaved repetitions, per-series
    medians. Allocation counts are near-deterministic per run (unlike
    times), so the medians are tight; repetitions mostly guard against
    helping-path variance. *)
type alloc_report = {
  words_per_op : Report.series list;
  promoted_per_op : Report.series list;
  minor_collections : Report.series list;
  major_collections : Report.series list;
}

let alloc_decomposition ?(scale = quick) () =
  let impls = Array.of_list Impls.alloc_series in
  let per_threads =
    interleaved_collect ~scale
      ~workload:(fun impl ~threads ~iters () ->
        Workload.pairs impl ~threads ~iters ())
      impls
  in
  let mk project =
    series_from ~scale impls per_threads
      ~aggregate:Wfq_primitives.Stats.median
      ~project:(fun r -> project (Space.profile_of_result r))
  in
  {
    words_per_op = mk (fun p -> p.Space.words_per_op);
    promoted_per_op = mk (fun p -> p.Space.promoted_per_op);
    minor_collections = mk (fun p -> float_of_int p.Space.minor_collections);
    major_collections = mk (fun p -> float_of_int p.Space.major_collections);
  }

(** Ring decomposition (the [wfq_bench ring] dataset): the bounded ring
    against the linked families' pooled floor on the strict pairs
    workload — completion time, words/op and minor collections
    projected from one interleaved collection. The words/op series is
    the CI guard's data source (the ring must allocate strictly less
    than "opt WF (1+2) pooled" at every thread count: its steady state
    allocates nothing, so any regression is a protocol change). *)
type ring_report = {
  ring_time : Report.series list;
  ring_words_per_op : Report.series list;
  ring_minor_gcs : Report.series list;
}

let ring_decomposition ?(scale = quick) () =
  let impls = Array.of_list Impls.ring_series in
  let per_threads =
    interleaved_collect ~scale
      ~workload:(fun impl ~threads ~iters () ->
        Workload.pairs impl ~threads ~iters ())
      impls
  in
  let mk project =
    series_from ~scale impls per_threads
      ~aggregate:Wfq_primitives.Stats.median ~project
  in
  {
    ring_time = mk seconds;
    ring_words_per_op =
      mk (fun r -> (Space.profile_of_result r).Space.words_per_op);
    ring_minor_gcs = mk minor_gcs_of;
  }

(** Batch decomposition (the [wfq_bench figures --batch k] dataset): the
    per-item fps baseline against the batch-native backends on the batch
    pairs workload — same element volume per run, so the time ratio is
    the amortization factor directly. The "WF fps per-item" vs "WF fps
    batch" pair is the CI guard's data source (native batches at k = 64
    must complete in at most half the per-item time — one descriptor
    publication covering the whole batch is the tentpole's headline).
    Interleaved repetitions, per-series medians, as for the other
    decompositions. *)
type batch_report = {
  batch_time : Report.series list;
  batch_minor_gcs : Report.series list;
}

let batch_decomposition ?(scale = quick) ~batch () =
  let impls = Array.of_list Impls.batch_series in
  let per_threads =
    interleaved_collect ~scale
      ~workload:(fun impl ~threads ~iters () ->
        Workload.pairs_batch impl ~threads ~iters ~batch ())
      impls
  in
  let mk project =
    series_from_labels ~scale
      (Array.map Impls.batch_name impls)
      per_threads ~aggregate:Wfq_primitives.Stats.median ~project
  in
  { batch_time = mk seconds; batch_minor_gcs = mk minor_gcs_of }

(** One combined dataset of every paper figure, each series label
    prefixed with its figure ("fig7:LF", ...). Points keep their native
    x axis — threads for figs. 7-9, initial queue size for fig. 10 — so
    consumers must split by prefix before plotting. *)
let all_figures ?(scale = quick) () =
  let prefix p =
    List.map (fun s -> { s with Report.label = p ^ ":" ^ s.Report.label })
  in
  prefix "fig7" (fig7 ~scale ())
  @ prefix "fig8" (fig8 ~scale ())
  @ prefix "fig9" (fig9 ~scale ())
  @ prefix "fig10" (fig10 ~scale ())

(** Ablation of the §3.3 design knobs the paper describes but does not
    evaluate: helping-chunk size (1 = the paper's optimization 1) and the
    tuning enhancements (descriptor reset + pre-CAS validation). *)
let ablation ?(scale = quick) () =
  (completion_series_gc ~scale
     ~workload:(fun impl ~threads ~iters () ->
       Workload.pairs impl ~threads ~iters ())
     Impls.ablation)
    .time

let print_fig ~title ~y_label series =
  Report.print_table ~title ~x_label:"threads" ~y_label series

let print_fig10 series =
  Report.print_table ~title:"Figure 10: live space overhead (WF / LF)"
    ~x_label:"queue size" ~y_label:"live-words ratio" series
