(** End-to-end service scenario on the fiber scheduler (Wfq_sched): a
    request fan-out with mixed CPU work and queue hops, the shape the
    scheduler exists to serve.

    Each request fiber parses (CPU burn), spawns [fanout] subfibers —
    each of which yields once (a forced run-queue round-trip) and burns
    CPU — awaits them all, then burns CPU again to respond. Every hop
    (spawn, yield, wakeup) crosses the wait-free run-queues, so request
    throughput and per-fiber latency measure the backend under its
    intended load rather than a bare enqueue/dequeue cycle.

    Per-fiber latency comes from the scheduler's own [?obsv] histogram
    (spawn-to-completion, bechamel's raw ns clock); stealing and
    conservation counters come from the always-on scheduler stats. Each
    (backend, domain-count) point runs [runs] times and reports the
    per-field median. *)

module Sched = Wfq_sched.Sched
module RA = Wfq_primitives.Real_atomic
module M = Wfq_obsv.Metrics
module Kp_sched = Sched.Make (RA) (Sched.Rq_kp (RA))
module Fps_sched = Sched.Make (RA) (Sched.Rq_fps_pooled (RA))
module Shard_sched = Sched.Make (RA) (Sched.Rq_shard (RA))
module Ring_sched = Sched.Make (RA) (Sched.Rq_ring (RA))

let now_ns = Clock.now_ns

type scale = {
  domains : int list;
  requests : int;
  fanout : int;
  work : int;  (** CPU-burn loop iterations per stage *)
  runs : int;
}

let default = { domains = [ 1; 2; 4 ]; requests = 200; fanout = 8; work = 400; runs = 3 }

type line = {
  backend : string;
  domains : int;
  requests : int;
  fanout : int;
  fibers : int;
  seconds : float;
  throughput : float;  (** requests per second *)
  fiber_p50_ns : float;
  fiber_p99_ns : float;
  steal_attempts : int;
  steals_won : int;
}

(* Integer mixing keeps the burn loop allocation-free; opaque_identity
   pins it against constant folding. *)
let cpu_work n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc + (i * 0x9E3779B1)) lxor (!acc lsr 7)
  done;
  ignore (Sys.opaque_identity !acc)

let backends : (string * (module Sched.S)) list =
  [
    ("kp_opt12", (module Kp_sched));
    ("fps_pooled", (module Fps_sched));
    ("shard_rr2", (module Shard_sched));
    ("ring", (module Ring_sched));
  ]

let service_once (module Sch : Sched.S) ~backend ~domains ~requests ~fanout
    ~work =
  let reg = M.create () in
  let obsv = Sched.metrics reg ~prefix:"sched" ~slots:domains in
  let t = Sch.create ~obsv ~clock:now_ns ~num_workers:domains () in
  Sch.register_metrics t reg ~prefix:"sched";
  Gc.full_major ();
  let t0 = Clock.now_s () in
  let total =
    Sch.run t (fun () ->
        let handle () =
          cpu_work work;
          let subs =
            List.init fanout (fun j ->
                Sch.spawn (fun () ->
                    Sch.yield ();
                    cpu_work work;
                    j))
          in
          let s = List.fold_left (fun a p -> a + Sch.await p) 0 subs in
          cpu_work work;
          s
        in
        let reqs = List.init requests (fun _ -> Sch.spawn handle) in
        List.fold_left (fun a p -> a + Sch.await p) 0 reqs)
  in
  let seconds = Clock.now_s () -. t0 in
  let expected = requests * (fanout * (fanout - 1) / 2) in
  if total <> expected then
    failwith
      (Printf.sprintf "Sched_bench(%s): answer %d, expected %d" backend
         total expected);
  let fibers = Sch.fibers_spawned t in
  if fibers <> Sch.fibers_completed t || Sch.pending_fibers t <> 0 then
    failwith (Printf.sprintf "Sched_bench(%s): fibers not conserved" backend);
  let p50, p99 =
    match M.histogram_summary reg "sched.fiber_latency_ns" with
    | Some s -> (s.Wfq_obsv.Histogram.p50, s.Wfq_obsv.Histogram.p99)
    | None -> failwith "Sched_bench: latency histogram missing"
  in
  {
    backend;
    domains;
    requests;
    fanout;
    fibers;
    seconds;
    throughput = float_of_int requests /. seconds;
    fiber_p50_ns = p50;
    fiber_p99_ns = p99;
    steal_attempts = Sch.steal_attempts t;
    steals_won = Sch.steals_won t;
  }

let fmedian l =
  let a = Array.of_list l in
  Array.sort compare a;
  let n = Array.length a in
  if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let imedian l = int_of_float (fmedian (List.map float_of_int l))

let median_line lines =
  match lines with
  | [] -> invalid_arg "Sched_bench.median_line"
  | first :: _ ->
      let f sel = fmedian (List.map sel lines)
      and i sel = imedian (List.map sel lines) in
      {
        first with
        seconds = f (fun l -> l.seconds);
        throughput = f (fun l -> l.throughput);
        fiber_p50_ns = f (fun l -> l.fiber_p50_ns);
        fiber_p99_ns = f (fun l -> l.fiber_p99_ns);
        steal_attempts = i (fun l -> l.steal_attempts);
        steals_won = i (fun l -> l.steals_won);
      }

let service ?(backends = backends) ~(scale : scale) () =
  if scale.requests <= 0 || scale.fanout <= 0 || scale.runs <= 0 then
    invalid_arg "Sched_bench.service";
  List.concat_map
    (fun (backend, sch) ->
      List.map
        (fun domains ->
          if domains <= 0 then invalid_arg "Sched_bench.service: domains";
          median_line
            (List.init scale.runs (fun _ ->
                 service_once sch ~backend ~domains ~requests:scale.requests
                   ~fanout:scale.fanout ~work:scale.work)))
        scale.domains)
    backends

let series lines =
  let by_backend =
    List.fold_left
      (fun acc l ->
        if List.mem l.backend acc then acc else acc @ [ l.backend ])
      [] lines
  in
  let series_of prefix sel =
    List.map
      (fun b ->
        {
          Report.label = prefix ^ ":" ^ b;
          points =
            List.filter_map
              (fun l ->
                if l.backend = b then
                  Some (float_of_int l.domains, sel l)
                else None)
              lines;
        })
      by_backend
  in
  series_of "throughput" (fun l -> l.throughput)
  @ series_of "fiber_p50_ns" (fun l -> l.fiber_p50_ns)
  @ series_of "fiber_p99_ns" (fun l -> l.fiber_p99_ns)
  @ series_of "steals" (fun l -> float_of_int l.steals_won)
  @ series_of "steal_attempts" (fun l -> float_of_int l.steal_attempts)
