(** The harness's single monotonic nanosecond clock.

    Every timed path in the harness (workload completion times,
    per-operation latency sampling, the open-loop arrival engine) reads
    this module, which wraps bechamel's raw [@noalloc]
    [Monotonic_clock.now] — the same CLOCK_MONOTONIC source behind
    [Bechamel.Toolkit.Instance.monotonic_clock] in [bench/main.ml], so
    micro-benchmarks and harness measurements are never compared across
    clock domains.

    Why not [Unix.gettimeofday]: wall clocks are steppable (NTP slews
    and jumps move CLOCK_REALTIME backwards), have microsecond
    granularity, and a backwards step inside a timed window produces a
    negative "latency". CLOCK_MONOTONIC is non-decreasing by contract,
    so [now_ns] deltas are always >= 0. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let now_s () = float_of_int (now_ns ()) *. 1e-9

(* Wait until the monotonic clock reads at least [until_ns].

   Hybrid wait: nanosleep down to [spin_budget_ns] before the deadline,
   then spin on the clock. Pure spinning would be more precise on a
   dedicated core, but on shared (and single-core) hosts a spinning
   waiter steals the quantum from the very consumer it is generating
   load for; sleeping releases the core and the short final spin
   absorbs the wakeup jitter. *)
let spin_budget_ns = 150_000

let wait_until ns =
  let remaining = ns - now_ns () in
  if remaining > spin_budget_ns then
    Unix.sleepf (float_of_int (remaining - spin_budget_ns) *. 1e-9);
  while now_ns () < ns do
    Domain.cpu_relax ()
  done
