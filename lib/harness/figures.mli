(** Regeneration of every figure in the paper's evaluation section (§4),
    shared between [bench/main.exe] and [bin/wfq_bench.exe]. See
    EXPERIMENTS.md for paper-vs-measured commentary. *)

type scale = {
  threads : int list;  (** x axis of figs. 7-9 *)
  iters : int;  (** iterations per thread *)
  runs : int;  (** repetitions averaged per data point *)
  sizes : int list;  (** x axis of fig. 10 (initial queue size) *)
}

val quick : scale
(** Container-friendly default preserving the paper's shapes. *)

val paper : scale
(** The paper's parameters: 1..16 threads, 1M iterations, 10 runs,
    queue sizes 10^0..10^7. *)

type with_gc = {
  time : Report.series list;  (** seconds — the figure itself *)
  minor_gcs : Report.series list;
      (** stop-the-world minor collections per run, projected from the
          same measurements (no re-running) *)
}
(** A figure together with its GC column. *)

val fig7 : ?scale:scale -> unit -> Report.series list
(** Enqueue-dequeue pairs: completion time vs threads for LF, base WF,
    opt WF (1+2). *)

val fig7_gc : ?scale:scale -> unit -> with_gc
(** {!fig7} with the minor-collection counts of the same runs. *)

val fig8 : ?scale:scale -> unit -> Report.series list
(** 50% enqueues: same series over the randomized workload. *)

val fig8_gc : ?scale:scale -> unit -> with_gc

val fig9 : ?scale:scale -> unit -> Report.series list
(** Optimization ablation: base WF vs opt (1), opt (2), opt (1+2). *)

val fig9_gc : ?scale:scale -> unit -> with_gc

val fig10 : ?scale:scale -> unit -> Report.series list
(** Live-space ratio (wait-free / lock-free) vs initial queue size. *)

val extended_pairs : ?scale:scale -> unit -> Report.series list
(** Extension: every implementation in {!Impls.all} on the pairs
    benchmark. *)

val shard_scaling : ?scale:scale -> unit -> Report.series list
(** Extension (lib/shard): opt WF (1+2) vs the sharded front-end at
    1/2/4/8 shards on the relaxed enqueue-dequeue-pairs workload. *)

val fps_scaling : ?scale:scale -> unit -> Report.series list
(** Extension (Kp_queue_fps): LF, base WF, opt WF (1+2), WF fps
    (unpooled and pooled) and the max_failures sweep on the strict
    enqueue-dequeue-pairs workload. *)

val fps_scaling_gc : ?scale:scale -> unit -> with_gc
(** {!fps_scaling} with the minor-collection counts of the same runs. *)

type alloc_report = {
  words_per_op : Report.series list;
      (** minor-heap words allocated per operation *)
  promoted_per_op : Report.series list;
      (** words promoted to the major heap per operation *)
  minor_collections : Report.series list;
  major_collections : Report.series list;
}
(** The allocation-rate decomposition — four projections of one
    interleaved measurement over {!Impls.alloc_series}. *)

val alloc_decomposition : ?scale:scale -> unit -> alloc_report
(** Extension ([wfq_bench alloc]): allocation rate and induced GC work
    of each family's headline member vs its segment-pooled counterpart,
    on the enqueue-dequeue-pairs workload (medians over interleaved
    repetitions). *)

type ring_report = {
  ring_time : Report.series list;  (** seconds, pairs workload *)
  ring_words_per_op : Report.series list;
      (** minor-heap words per operation — the CI guard's series *)
  ring_minor_gcs : Report.series list;
}
(** The ring decomposition — three projections of one interleaved
    measurement over {!Impls.ring_series}. *)

val ring_decomposition : ?scale:scale -> unit -> ring_report
(** Extension ([wfq_bench ring]): the bounded ring vs opt WF (1+2),
    its pooled counterpart and WF fps pooled on the strict pairs
    workload (medians over interleaved repetitions). *)

type batch_report = {
  batch_time : Report.series list;  (** seconds, batch pairs workload *)
  batch_minor_gcs : Report.series list;
}
(** The batch decomposition — two projections of one interleaved
    measurement over {!Impls.batch_series}. *)

val batch_decomposition : ?scale:scale -> batch:int -> unit -> batch_report
(** Extension ([wfq_bench figures --batch k], docs/BATCHING.md): the
    per-item fps baseline vs the batch-native backends on the batch
    pairs workload at batch size [batch]. Equal element volume per run,
    so time ratios are amortization factors; "WF fps per-item" over
    "WF fps batch" is the CI guard's ratio (>= 2 at [batch] = 64). *)

val polylog_crossover_gc : ?scale:scale -> unit -> with_gc
(** Extension ([wfq_bench polylog]): the helping-cost crossover — opt
    WF (1+2) and WF fps pooled (O(p)-step helping scans) vs the
    polylog tournament-tree queue (O(log{^ 2} p) steps/op) on the
    strict pairs workload. The matching certified step-bound-vs-p
    table is built by the bench driver from {!Wfq_sim.Check.certify}
    certificates, not here (the harness stays simulator-free). *)

val all_figures : ?scale:scale -> unit -> Report.series list
(** Every paper figure in one dataset, labels prefixed "figN:". Fig. 10
    points use queue size as x; the rest use threads. *)

val ablation : ?scale:scale -> unit -> Report.series list
(** Extension: helping-chunk size and tuning enhancements (§3.3 design
    knobs the paper describes but does not evaluate). *)

val print_fig : title:string -> y_label:string -> Report.series list -> unit
val print_fig10 : Report.series list -> unit
