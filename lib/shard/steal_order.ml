(* Single-lap ring sweep order. The arithmetic is deliberately the
   branch-and-subtract form rather than [mod]: both arguments are
   already reduced, so one comparison replaces a division in code that
   runs once per visited queue on the dequeue path. *)

let check ~n ~start =
  if n <= 0 then invalid_arg "Steal_order: n must be positive";
  if start < 0 || start >= n then invalid_arg "Steal_order: start"

let visit ~n ~start i =
  check ~n ~start;
  if i < 0 || i >= n then invalid_arg "Steal_order: position";
  let s = start + i in
  if s >= n then s - n else s

let next ~n s =
  check ~n ~start:s;
  if s + 1 = n then 0 else s + 1

let order ~n ~start =
  check ~n ~start;
  List.init n (fun i -> visit ~n ~start i)
