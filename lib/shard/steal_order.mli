(** The steal-on-empty visiting order shared by the {!Shard} dequeue
    sweep and the [Wfq_sched] work-stealing take.

    A sweep over [n] queues starting at [start] visits
    [start, start+1, ..., n-1, 0, ..., start-1]: every queue exactly
    once, neighbours first, so a stolen element comes from the closest
    non-empty victim in ring order. Keeping the order in one place pins
    it as a contract — the shard front-end's never-false-empty argument
    and the scheduler's steal fairness both assume a full single lap. *)

val visit : n:int -> start:int -> int -> int
(** [visit ~n ~start i] is the queue index visited at position [i]
    (0-based, [0 <= i < n]) of the sweep: [(start + i) mod n] computed
    with a single conditional subtraction (no division on the hot
    path). Raises [Invalid_argument] if [n <= 0], [start] is outside
    [0, n), or [i] is outside [0, n). *)

val next : n:int -> int -> int
(** [next ~n s] is the ring successor [s + 1 mod n] — the single-step
    advance used by batch drains and two-choice neighbour sampling.
    Raises [Invalid_argument] if [n <= 0] or [s] is outside [0, n). *)

val order : n:int -> start:int -> int list
(** The whole lap as a list, [visit] at every position — for tests and
    diagnostics, not hot paths. *)
