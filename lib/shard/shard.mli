(** [Wfq_shard.Shard] — a sharded, batched wait-free MPMC queue
    front-end composing [N] independent Kogan-Petrank queues.

    The KP queue is wait-free but funnels every operation through a
    single [head]/[tail] pair, so throughput flattens once a handful of
    domains contend. This subsystem fans operations out over [N]
    independent KP shards (each the fully optimized opt-(1+2) variant)
    selected by wait-free fetch-and-add tickets, trading a bounded
    amount of global FIFO order for shard-local contention.

    {2 Ordering contract (relaxed FIFO)}

    - {b Per-shard FIFO}: each shard is a linearizable FIFO queue;
      elements placed in the same shard are dequeued in insertion
      order. Batches enqueued with a contiguous policy (tid-affine or
      length-aware) stay in one shard and are consumed in order.
    - {b k-relaxed global order}: with [N > 1] shards, two elements
      enqueued into different shards may be dequeued in either order.
      The inversion is bounded: round-robin tickets place consecutive
      global enqueues on consecutive shards, so an element can be
      overtaken by at most [N - 1] ticket successors plus the elements
      ahead of it in its own shard — never unboundedly.
    - {b Strict mode}: [N = 1] ({!create_strict}) degenerates to a
      single KP shard and is a strict linearizable FIFO; ticket
      acquisition is skipped, so strict mode adds no overhead over the
      underlying queue.
    - {b Empty-sweep semantics}: a dequeue that finds its start shard
      empty sweeps every other shard ({e steal-on-empty}) before
      returning [None]. At quiescence a sweep therefore never reports
      [None] while an element is present anywhere. Under concurrency a
      sweep is not atomic: [None] means every shard was {e observed}
      empty at some instant during the sweep, which is weaker than the
      strict queue's "empty at one linearization point".

    {2 Progress}

    Every operation is wait-free: shard selection is one fetch-and-add
    (or none), and a dequeue performs at most [N] wait-free KP dequeues.
    Batches forward to the backends' native batch operations
    (docs/BATCHING.md): [dequeue_batch ~n] performs at most [N] backend
    batch dequeues — one per shard in a single sweep lap, each bounded
    by its remaining want — and [enqueue_batch] at most
    [min (length vs) N] backend batch enqueues. No operation ever
    retries unboundedly.

    Thread identity follows {!Wfq_core.Queue_intf.QUEUE}: every caller
    owns a [tid] in [0, num_threads) (see [Wfq_registry] for dynamic
    populations). *)

(** Shard-selection policy for both enqueue and dequeue start shards. *)
type policy =
  | Round_robin
      (** one global fetch-and-add ticket per operation (default):
          spreads load evenly and bounds global reordering by the shard
          count *)
  | Tid_affine
      (** shard = [tid mod N]; no shared selection state at all. With
          at least as many shards as threads this partitions the queue
          into per-thread lanes (dequeues still steal on empty). *)
  | Length_aware
      (** two-choice selection on approximate shard sizes: enqueue to
          the shorter of two sampled shards, dequeue from the longer —
          evens shard lengths under skewed producers at the cost of one
          extra counter read per operation *)

(** Per-shard queue algorithm. All variants are wait-free strict FIFOs,
    so the front-end's ordering and progress contracts hold for every
    backend; they differ in memory behaviour and slow-path shape.
    Default is {!Kp_opt12}. *)
type backend =
  | Kp_opt12
      (** base Kogan-Petrank queue, opt-(1+2) configuration (default —
          the original front-end behaviour); unbounded, one node
          allocation per element *)
  | Fps of { max_failures : int }
      (** fast-path/slow-path variant ({!Wfq_core.Kp_queue_fps}):
          lock-free rounds until [max_failures] failures per operation,
          then the KP helping slow path; unbounded, pooled-node
          allocation *)
  | Ring of { capacity : int; max_failures : int }
      (** bounded-memory ring ({!Wfq_core.Ring_queue}): [capacity]
          pre-allocated slots per shard, zero steady-state allocation,
          array locality; [max_failures] fast slot-CAS rounds before
          the helping slow path. {b Bounded}: with this backend each
          shard holds at most [capacity] elements and [enqueue] raises
          [Wfq_core.Ring_queue.Ring_full] on a full shard (total
          front-end capacity = [shards * capacity]) *)
  | Registered of string
      (** any backend registered in {!Wfq_core.Backends}, by id (e.g.
          ["polylog"]), in its registered default configuration — the
          uniform QUEUE_BACKEND route: a backend added to the registry
          is usable as a shard with no edit to this subsystem. The
          three constructors above remain for configurations that need
          per-shard tuning parameters. *)

(** Per-shard operation counters (monotonic, snapshot via {!Make.stats};
    exact at quiescence, indicative under concurrency). *)
type shard_stats = {
  enqueues : int;  (** elements placed in this shard *)
  dequeues : int;  (** successful dequeues served by this shard *)
  steals : int;
      (** dequeues served by this shard after the caller's start shard
          was found empty (subset of [dequeues]) *)
  empty_sweeps : int;
      (** dequeues that started at this shard, swept every shard and
          returned [None] *)
}

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val name : string

  val create :
    ?policy:policy ->
    ?backend:backend ->
    ?shards:int ->
    num_threads:int ->
    unit ->
    'a t
  (** [create ~policy ~backend ~shards ~num_threads ()] builds a
      front-end over [shards] (default 4) independent queues of the
      given [backend] (default {!Kp_opt12}), each usable by threads
      [0 .. num_threads - 1] (every thread may touch every shard via
      stealing). Default policy is {!Round_robin}. Raises
      [Invalid_argument] for [shards <= 0], [num_threads <= 0], or an
      invalid backend configuration — negative [max_failures] in {!Fps}
      or {!Ring}, or non-positive [capacity] in {!Ring}; the message
      names the offending backend and field. *)

  val create_strict : num_threads:int -> unit -> 'a t
  (** Single-shard strict FIFO mode: equivalent to [create ~shards:1],
      with shard selection compiled away. *)

  val shards : 'a t -> int
  val policy : 'a t -> policy
  val backend : 'a t -> backend

  val enqueue : 'a t -> tid:int -> 'a -> unit
  (** Wait-free insert into the policy-selected shard. *)

  val dequeue : 'a t -> tid:int -> 'a option
  (** Wait-free remove: tries the policy-selected start shard, then
      sweeps the remaining shards (steal-on-empty). [None] iff every
      shard was observed empty during the sweep. *)

  val enqueue_batch : 'a t -> tid:int -> 'a list -> unit
  (** Insert a whole batch through the backends' native batch enqueue,
      with batch-aware spread-vs-keep-together routing. [Tid_affine]
      and [Length_aware] keep the batch together: one selection, one
      backend batch, the whole batch contiguous in its shard.
      [Round_robin] spreads a batch of [k >= N] elements as [N]
      contiguous sub-batches over consecutive ticket-selected shards
      (load balance at native-batch cost); smaller Round_robin batches
      keep together too — spreading them would degenerate to
      per-element sub-batches — rotating shards across successive
      batches via the ticket. Intra-batch FIFO order is preserved
      within each shard's sub-batch. With the {!Ring} backend a full
      shard raises [Wfq_core.Ring_queue.Ring_full]; the elements
      already accepted remain enqueued. *)

  val dequeue_batch : 'a t -> tid:int -> n:int -> 'a list
  (** Remove up to [n] elements with a single ticket acquisition: one
      backend-native batch dequeue per shard, asking each visited shard
      for the whole remaining want, sweeping at most one
      {!Steal_order} lap (at most [N] backend batch dequeues — the
      backend returns short only when it observed its shard empty, so
      no shard needs a second visit). Returns fewer than [n] elements
      only after the lap observed every shard empty. Elements taken
      from the same shard preserve that shard's FIFO order. *)

  (** {2 Quiescent observers} (exact only at quiescence) *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int

  val to_list : 'a t -> 'a list
  (** Contents as shard-0 front-to-back, then shard 1, … — {e not} a
      global FIFO order ([N > 1] has none). *)

  val shard_length : 'a t -> int -> int
  (** Length of one shard (quiescent). *)

  val stats : 'a t -> shard_stats array
  (** Per-shard counter snapshot, index = shard. *)

  val check_quiescent_invariants : 'a t -> (unit, string) result
  (** Every shard's KP invariants, plus agreement between the stats
      counters, the approximate size counters and the actual shard
      lengths.

      {b Explicit quiescence guarantee}: the cross-checks are reported
      only if no operation was in flight when the check started and
      none started or finished while it ran (witnessed by per-tid
      operation-sequence cells each operation bumps on entry and exit).
      When concurrency is detected the check returns [Ok ()] vacuously —
      it can never fail spuriously under load. A genuinely quiescent
      caller always gets the real verdict. *)

  (** {2 White-box probes (tests)} *)

  val last_enqueue_shard : 'a t -> tid:int -> int
  (** Shard that received [tid]'s most recent completed enqueue (or the
      last element of its most recent batch); [-1] before any. *)

  val last_dequeue_shard : 'a t -> tid:int -> int
  (** Shard that served [tid]'s most recent successful dequeue (or the
      last element of its most recent non-empty batch); [-1] before
      any, and [-1] again after an empty sweep. *)

  val last_enqueue_batch_calls : 'a t -> tid:int -> int
  (** Backend batch enqueues performed by [tid]'s most recent
      [enqueue_batch]: 1 on the keep-together route, [N] on the spread
      route — the cost contract's probe. 0 before any batch. *)

  val last_dequeue_batch_calls : 'a t -> tid:int -> int
  (** Backend batch dequeues performed by [tid]'s most recent
      [dequeue_batch] — at most [N] by the single-lap cost contract
      (steal visits pre-checked empty are skipped and not counted). *)

  val in_flight : 'a t -> bool
  (** Whether any thread's operation-sequence cell is currently odd,
      i.e. some operation is observed mid-flight. Racy (a snapshot);
      exact at quiescence. *)

  val register_metrics :
    'a t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Attach the whole-queue depth gauge under [prefix ^ ".depth"] (the
      uniform [Wfq_core.Queue_intf.RUN_QUEUE] contract) plus each
      shard's live counters and depth gauge under
      [prefix ^ ".shard<i>.enqueues"/".dequeues"/".steals"/
      ".empty_sweeps"/".depth"]. *)
end
