(** Sharded, batched front-end over [N] independent Kogan-Petrank
    queues. See the interface for the ordering contract; the short
    version: strict FIFO per shard, bounded ("k-relaxed") reordering
    across shards, steal-on-empty dequeue sweeps.

    Shard selection is the only new shared state on the hot path and it
    is a single fetch-and-add ticket (or nothing, for [Tid_affine]), so
    the front-end inherits wait-freedom from the shards: an enqueue is
    one ticket plus one KP enqueue; a dequeue is one ticket plus at most
    [N] KP dequeues.

    Hot-path discipline: everything the front-end adds per operation
    must stay cheaper than the contention it removes. Statistics are
    therefore [Wfq_obsv.Counter] cells — per-tid single-writer padded
    plain ints, one counter per shard (exact at quiescence, no shared
    cache line, no RMW) — and the approximate size counters that drive
    [Length_aware] are maintained only under that policy. The size
    counters use [Stdlib.Atomic] rather than the [A] functor argument
    deliberately: they never affect correctness, and keeping them (and
    the obsv cells) off the simulated-atomic plane means model checking
    explores only algorithm-relevant interleavings.

    Quiescence detection: every public operation bumps its tid's
    [op_seq] cell on entry (to odd) and exit (to even).
    [check_quiescent_invariants] uses the cells to make its stats/length
    cross-checks {e vacuously true} unless the whole check ran inside a
    quiescent window — so it can never fail spuriously when called
    concurrently with operations, which the racy snapshot-vs-length
    comparison it replaces could. *)

type policy = Round_robin | Tid_affine | Length_aware

type backend =
  | Kp_opt12
  | Fps of { max_failures : int }
  | Ring of { capacity : int; max_failures : int }
  | Registered of string

type shard_stats = {
  enqueues : int;
  dequeues : int;
  steals : int;
  empty_sweeps : int;
}

module Qi = Wfq_core.Queue_intf

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) = struct
  module Kp = Wfq_core.Kp_queue.Make (A)
  module Fq = Wfq_core.Kp_queue_fps.Make (A)
  module Rg = Wfq_core.Ring_queue.Make (A)

  (* Per-shard queue: any {!Wfq_core.Queue_intf.instance} — all
     registered backends are wait-free strict FIFOs, so the front-end's
     ordering and progress contracts are backend-independent (bounded
     backends additionally bound each shard — see the interface). The
     closure-record indirection replaces the closed per-backend variant
     this file used to dispatch on: one indirect call, negligible next
     to the atomic traffic of the operation itself, and a new backend
     needs no edit here at all ([Registered id] reaches it through
     {!Wfq_core.Backends}). The three legacy constructors carry their
     tuning parameters, so their instances are built directly on the
     family functors. *)

  let kp_instance ~num_threads () : _ Qi.instance =
    let q =
      Kp.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ()
    in
    {
      Qi.i_name = Kp.name;
      enq = (fun ~tid v -> Kp.enqueue q ~tid v);
      try_enq =
        (fun ~tid v ->
          Kp.enqueue q ~tid v;
          true);
      deq = (fun ~tid -> Kp.dequeue q ~tid);
      enq_batch = (fun ~tid vs -> Kp.enqueue_batch q ~tid vs);
      deq_batch = (fun ~tid ~n -> Kp.dequeue_batch q ~tid ~n);
      size = (fun () -> Kp.length q);
      empty = (fun () -> Kp.is_empty q);
      dump = (fun () -> Kp.to_list q);
      check = (fun () -> Kp.check_quiescent_invariants q);
      metrics = (fun r ~prefix -> Kp.register_metrics q r ~prefix);
    }

  let fps_instance ~max_failures ~num_threads () : _ Qi.instance =
    let q =
      Fq.create_with ~max_failures ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ()
    in
    {
      Qi.i_name = Fq.name;
      enq = (fun ~tid v -> Fq.enqueue q ~tid v);
      try_enq =
        (fun ~tid v ->
          Fq.enqueue q ~tid v;
          true);
      deq = (fun ~tid -> Fq.dequeue q ~tid);
      enq_batch = (fun ~tid vs -> Fq.enqueue_batch q ~tid vs);
      deq_batch = (fun ~tid ~n -> Fq.dequeue_batch q ~tid ~n);
      size = (fun () -> Fq.length q);
      empty = (fun () -> Fq.is_empty q);
      dump = (fun () -> Fq.to_list q);
      check = (fun () -> Fq.check_quiescent_invariants q);
      metrics = (fun r ~prefix -> Fq.register_metrics q r ~prefix);
    }

  let ring_instance ~capacity ~max_failures ~num_threads () : _ Qi.instance =
    let q = Rg.create_with ~capacity ~max_failures ~num_threads () in
    {
      Qi.i_name = Rg.name;
      enq = (fun ~tid v -> Rg.enqueue q ~tid v);
      try_enq = (fun ~tid v -> Rg.try_enqueue q ~tid v);
      deq = (fun ~tid -> Rg.dequeue q ~tid);
      enq_batch = (fun ~tid vs -> Rg.enqueue_batch q ~tid vs);
      deq_batch = (fun ~tid ~n -> Rg.dequeue_batch q ~tid ~n);
      size = (fun () -> Rg.length q);
      empty = (fun () -> Rg.is_empty q);
      dump = (fun () -> Rg.to_list q);
      check = (fun () -> Rg.check_quiescent_invariants q);
      metrics = (fun r ~prefix -> Rg.register_metrics q r ~prefix);
    }

  type 'a t = {
    shards : 'a Qi.instance array;
    n : int;
    policy : policy;
    backend : backend;
    enq_ticket : int A.t;
    deq_ticket : int A.t;
    track_sizes : bool;  (** only [Length_aware] pays for size upkeep *)
    sizes : int Atomic.t array;
    (* Per-shard counters, each with one single-writer slot per tid. *)
    s_enq : Wfq_obsv.Counter.t array;
    s_deq : Wfq_obsv.Counter.t array;
    s_steal : Wfq_obsv.Counter.t array;
    s_sweep : Wfq_obsv.Counter.t array;
    (* Per-tid operation sequence: odd while an operation is in flight,
       even between operations (two plain stores per op). The explicit
       quiescence witness for [check_quiescent_invariants]. *)
    op_seq : Wfq_obsv.Counter.t;
    (* Single-writer probe slots, indexed by tid. *)
    last_enq_shard : int array;
    last_deq_shard : int array;
    (* Backend batch operations performed by the tid's most recent
       batch op — the cost-contract probe the tests pin. *)
    last_enq_batch_calls : int array;
    last_deq_batch_calls : int array;
  }

  let name = "wf-shard"

  let create ?(policy = Round_robin) ?(backend = Kp_opt12) ?(shards = 4)
      ~num_threads () =
    if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
    if num_threads <= 0 then invalid_arg "Shard.create: num_threads";
    (* Validate backend parameters here, with one uniform message, so a
       bad configuration fails before any shard is allocated rather
       than deep inside a shard constructor. *)
    (match backend with
    | Kp_opt12 -> ()
    | Fps { max_failures } ->
        if max_failures < 0 then
          invalid_arg
            "Shard.create: invalid backend configuration (Fps: negative \
             max_failures)"
    | Ring { capacity; max_failures } ->
        if capacity <= 0 then
          invalid_arg
            "Shard.create: invalid backend configuration (Ring: capacity \
             must be positive)";
        if max_failures < 0 then
          invalid_arg
            "Shard.create: invalid backend configuration (Ring: negative \
             max_failures)"
    | Registered id ->
        if not (List.mem id (Wfq_core.Backends.ids ())) then
          invalid_arg
            (Printf.sprintf
               "Shard.create: invalid backend configuration (Registered: \
                unknown backend %S; known: %s)"
               id
               (String.concat ", " (Wfq_core.Backends.ids ()))));
    let per_shard_tids () =
      Array.init shards (fun _ ->
          Wfq_obsv.Counter.create ~slots:num_threads ())
    in
    (* Every thread may touch every shard (stealing), so each shard is
       sized for the full thread population. Both backends run the slow
       path in the opt-(1+2) configuration, the paper's fastest (the
       §3.3 tuning enhancements measured slower here — see
       EXPERIMENTS.md). *)
    let make_shard () =
      match backend with
      | Kp_opt12 -> kp_instance ~num_threads ()
      | Fps { max_failures } -> fps_instance ~max_failures ~num_threads ()
      | Ring { capacity; max_failures } ->
          ring_instance ~capacity ~max_failures ~num_threads ()
      | Registered id ->
          Wfq_core.Backends.instantiate_with
            (module A)
            (Wfq_core.Backends.find id)
            ~num_threads ()
    in
    {
      shards = Array.init shards (fun _ -> make_shard ());
      n = shards;
      policy;
      backend;
      enq_ticket = A.make 0;
      deq_ticket = A.make 0;
      track_sizes = policy = Length_aware;
      sizes = Array.init shards (fun _ -> Atomic.make 0);
      s_enq = per_shard_tids ();
      s_deq = per_shard_tids ();
      s_steal = per_shard_tids ();
      s_sweep = per_shard_tids ();
      op_seq = Wfq_obsv.Counter.create ~slots:num_threads ();
      last_enq_shard = Array.make num_threads (-1);
      last_deq_shard = Array.make num_threads (-1);
      last_enq_batch_calls = Array.make num_threads 0;
      last_deq_batch_calls = Array.make num_threads 0;
    }

  let create_strict ~num_threads () = create ~shards:1 ~num_threads ()
  let shards t = t.n
  let policy t = t.policy
  let backend t = t.backend

  (* --- shard selection ------------------------------------------- *)

  let size t s = Atomic.get t.sizes.(s)

  let start_enq t ~tid =
    if t.n = 1 then 0
    else
      match t.policy with
      | Round_robin -> A.fetch_and_add t.enq_ticket 1 mod t.n
      | Tid_affine -> tid mod t.n
      | Length_aware ->
          (* Two-choice: sample the ticket shard and its neighbour,
             enqueue to the (approximately) shorter. *)
          let s1 = A.fetch_and_add t.enq_ticket 1 mod t.n in
          let s2 = Steal_order.next ~n:t.n s1 in
          if size t s2 < size t s1 then s2 else s1

  let start_deq t ~tid =
    if t.n = 1 then 0
    else
      match t.policy with
      | Round_robin -> A.fetch_and_add t.deq_ticket 1 mod t.n
      | Tid_affine -> tid mod t.n
      | Length_aware ->
          let s1 = A.fetch_and_add t.deq_ticket 1 mod t.n in
          let s2 = Steal_order.next ~n:t.n s1 in
          if size t s2 > size t s1 then s2 else s1

  (* --- core operations ------------------------------------------- *)

  (* Quiescence witness: odd while [tid] is inside an operation. One
     plain padded store each, dwarfed by the shard op they bracket. *)
  let seq_enter t ~tid = Wfq_obsv.Counter.incr t.op_seq ~slot:tid
  let seq_exit t ~tid = Wfq_obsv.Counter.incr t.op_seq ~slot:tid

  let enqueue_to t ~tid s v =
    t.shards.(s).Qi.enq ~tid v;
    if t.track_sizes then Atomic.incr t.sizes.(s);
    Wfq_obsv.Counter.incr t.s_enq.(s) ~slot:tid;
    t.last_enq_shard.(tid) <- s

  let enqueue t ~tid v =
    seq_enter t ~tid;
    enqueue_to t ~tid (start_enq t ~tid) v;
    seq_exit t ~tid

  (* Batch counterpart of [enqueue_to]: one backend-native batch op,
     counters bumped by the batch size. *)
  let enqueue_batch_to t ~tid s vs ~k =
    t.shards.(s).Qi.enq_batch ~tid vs;
    t.last_enq_batch_calls.(tid) <- t.last_enq_batch_calls.(tid) + 1;
    if t.track_sizes then ignore (Atomic.fetch_and_add t.sizes.(s) k : int);
    Wfq_obsv.Counter.add t.s_enq.(s) ~slot:tid k;
    t.last_enq_shard.(tid) <- s

  (* Account a successful dequeue served by shard [s]. *)
  let took t ~tid ~stolen s =
    if t.track_sizes then Atomic.decr t.sizes.(s);
    Wfq_obsv.Counter.incr t.s_deq.(s) ~slot:tid;
    if stolen then Wfq_obsv.Counter.incr t.s_steal.(s) ~slot:tid;
    t.last_deq_shard.(tid) <- s

  let took_batch t ~tid ~stolen s ~k =
    if t.track_sizes then ignore (Atomic.fetch_and_add t.sizes.(s) (-k) : int);
    Wfq_obsv.Counter.add t.s_deq.(s) ~slot:tid k;
    if stolen then Wfq_obsv.Counter.add t.s_steal.(s) ~slot:tid k;
    t.last_deq_shard.(tid) <- s

  (* Steal visits pre-check [is_empty] (two atomic reads) before paying
     for a full KP dequeue — with many shards most swept shards are
     empty, and a KP dequeue on an empty queue still runs the whole
     phase/descriptor/helping ceremony. The quiescent no-false-empty
     guarantee survives: at quiescence [is_empty] is exact, so the shard
     holding an element is never skipped. The start shard is attempted
     unconditionally (it is the most likely hit). The visiting order is
     {!Steal_order}'s single lap, shared with the scheduler's steal. *)
  let rec sweep t ~tid s0 i =
    if i = t.n then begin
      Wfq_obsv.Counter.incr t.s_sweep.(s0) ~slot:tid;
      t.last_deq_shard.(tid) <- -1;
      None
    end
    else
      let s = Steal_order.visit ~n:t.n ~start:s0 i in
      if i > 0 && t.shards.(s).Qi.empty () then sweep t ~tid s0 (i + 1)
      else
        match t.shards.(s).Qi.deq ~tid with
        | Some _ as r ->
            took t ~tid ~stolen:(i > 0) s;
            r
        | None -> sweep t ~tid s0 (i + 1)

  let dequeue t ~tid =
    seq_enter t ~tid;
    let r = sweep t ~tid (start_deq t ~tid) 0 in
    seq_exit t ~tid;
    r

  (* --- batch operations ------------------------------------------ *)

  (* Split [vs] (length [k]) into [n] contiguous chunks whose sizes
     differ by at most one, front chunks larger. Used by the spread
     route; [k >= n >= 1] there, so no chunk is empty. *)
  let split_chunks vs ~k ~n =
    let base = k / n and extra = k mod n in
    let rec take i acc rest =
      if i = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | v :: tl -> take (i - 1) (v :: acc) tl
    in
    let rec go j rest =
      if j = n then []
      else
        let sz = base + if j < extra then 1 else 0 in
        let chunk, rest = take sz [] rest in
        chunk :: go (j + 1) rest
    in
    go 0 vs

  let enqueue_batch t ~tid vs =
    match vs with
    | [] -> ()
    | vs ->
        seq_enter t ~tid;
        t.last_enq_batch_calls.(tid) <- 0;
        (match vs with
        | [ v ] ->
            enqueue_to t ~tid (start_enq t ~tid) v;
            t.last_enq_batch_calls.(tid) <- 1
        | vs -> (
            let k = List.length vs in
            match t.policy with
            | Round_robin when t.n > 1 && k >= t.n ->
                (* Spread: a batch large enough to give every shard a
                   real run is split into [n] contiguous sub-batches,
                   each forwarded to its shard's native batch op — load
                   balance without collapsing back to the per-element
                   protocol. One fetch-and-add claims a ticket per
                   chunk; chunk [j] lands on the shard ticket [t0 + j]
                   would have selected. *)
                let t0 = A.fetch_and_add t.enq_ticket t.n in
                List.iteri
                  (fun j chunk ->
                    enqueue_batch_to t ~tid
                      ((t0 + j) mod t.n)
                      chunk ~k:(List.length chunk))
                  (split_chunks vs ~k ~n:t.n)
            | Round_robin | Tid_affine | Length_aware ->
                (* Keep together: one selection, one backend-native
                   batch — intra-batch FIFO preserved, the whole batch
                   contiguous in its shard. Small Round_robin batches
                   ([k < n]) take this route too: spreading them would
                   degenerate to per-element sub-batches, paying the
                   full protocol per item again (successive batches
                   still rotate shards through the ticket). *)
                enqueue_batch_to t ~tid (start_enq t ~tid) vs ~k));
        seq_exit t ~tid

  let dequeue_batch t ~tid ~n =
    if n < 0 then invalid_arg "Shard.dequeue_batch: n";
    seq_enter t ~tid;
    t.last_deq_batch_calls.(tid) <- 0;
    let s0 = start_deq t ~tid in
    (* One backend-native batch dequeue per shard visited, asking for
       the whole remaining want: the backend returns short only when it
       observed the shard empty, so a single {!Steal_order} lap
       suffices — at most [N] backend batch operations total (each
       itself bounded by its want), replacing the per-element
       [(n + 1) * N] sweep this front-end used before batches were
       backend-native. Steal visits keep the [is_empty] pre-check. *)
    let rec go acc got i =
      if got = n || i = t.n then acc
      else
        let s = Steal_order.visit ~n:t.n ~start:s0 i in
        if i > 0 && t.shards.(s).Qi.empty () then go acc got (i + 1)
        else
          let xs = t.shards.(s).Qi.deq_batch ~tid ~n:(n - got) in
          t.last_deq_batch_calls.(tid) <- t.last_deq_batch_calls.(tid) + 1;
          let k = List.length xs in
          if k > 0 then took_batch t ~tid ~stolen:(i > 0) s ~k;
          go (xs :: acc) (got + k) (i + 1)
    in
    let out = List.concat (List.rev (go [] 0 0)) in
    if out = [] && n > 0 then begin
      Wfq_obsv.Counter.incr t.s_sweep.(s0) ~slot:tid;
      t.last_deq_shard.(tid) <- -1
    end;
    seq_exit t ~tid;
    out

  (* --- quiescent observers --------------------------------------- *)

  let is_empty t = Array.for_all (fun sh -> sh.Qi.empty ()) t.shards
  let length t = Array.fold_left (fun acc sh -> acc + sh.Qi.size ()) 0 t.shards
  let to_list t = List.concat_map (fun sh -> sh.Qi.dump ()) (Array.to_list t.shards)

  let shard_length t s =
    if s < 0 || s >= t.n then invalid_arg "Shard.shard_length: shard";
    t.shards.(s).Qi.size ()

  let stats t =
    Array.init t.n (fun s ->
        {
          enqueues = Wfq_obsv.Counter.total t.s_enq.(s);
          dequeues = Wfq_obsv.Counter.total t.s_deq.(s);
          steals = Wfq_obsv.Counter.total t.s_steal.(s);
          empty_sweeps = Wfq_obsv.Counter.total t.s_sweep.(s);
        })

  (* The stats/length and approx-size/length cross-checks are only
     meaningful at quiescence: under concurrency a thread can sit
     between its shard dequeue and its counter bump, making the honest
     snapshots disagree with the honest lengths. The [op_seq] witness
     makes the guarantee explicit: the verdict is reported only when no
     operation was in flight at the start of the check AND no operation
     started or finished while it ran — otherwise the check is vacuously
     [Ok] (we learned nothing, we claim nothing). A concurrent caller
     can therefore never see a spurious [Error]; a quiescent caller gets
     the exact check, as before. *)
  let check_quiescent_invariants t =
    let seq0 = Wfq_obsv.Counter.snapshot t.op_seq in
    if Array.exists (fun c -> c land 1 = 1) seq0 then Ok ()
    else
      let st = stats t in
      let rec shards_ok s =
        if s = t.n then Ok ()
        else
          match t.shards.(s).Qi.check () with
          | Error e -> Error (Printf.sprintf "shard %d: %s" s e)
          | Ok () ->
              let len = t.shards.(s).Qi.size () in
              if st.(s).enqueues - st.(s).dequeues <> len then
                Error
                  (Printf.sprintf
                     "shard %d: stats imbalance (enq %d - deq %d <> len %d)"
                     s st.(s).enqueues st.(s).dequeues len)
              else if t.track_sizes && size t s <> len then
                Error
                  (Printf.sprintf
                     "shard %d: approx size %d <> actual length %d" s
                     (size t s) len)
              else shards_ok (s + 1)
      in
      let verdict = shards_ok 0 in
      if Wfq_obsv.Counter.snapshot t.op_seq <> seq0 then Ok () else verdict

  (* --- probes ----------------------------------------------------- *)

  let last_enqueue_shard t ~tid = t.last_enq_shard.(tid)
  let last_dequeue_shard t ~tid = t.last_deq_shard.(tid)
  let last_enqueue_batch_calls t ~tid = t.last_enq_batch_calls.(tid)
  let last_dequeue_batch_calls t ~tid = t.last_deq_batch_calls.(tid)

  let in_flight t =
    Array.exists
      (fun c -> c land 1 = 1)
      (Wfq_obsv.Counter.snapshot t.op_seq)

  (* Attach the per-shard counters and live depth gauges to a metrics
     registry under [prefix ^ ".shard<i>.<metric>"], plus the
     whole-queue [prefix ^ ".depth"] gauge every RUN_QUEUE backend
     exposes (see [Wfq_core.Queue_intf.RUN_QUEUE]). *)
  let register_metrics t registry ~prefix =
    let open Wfq_obsv in
    Metrics.gauge registry ~name:(prefix ^ ".depth") (fun () -> length t);
    for s = 0 to t.n - 1 do
      let p = Printf.sprintf "%s.shard%d" prefix s in
      Metrics.register registry (p ^ ".enqueues") (Metrics.Counter t.s_enq.(s));
      Metrics.register registry (p ^ ".dequeues") (Metrics.Counter t.s_deq.(s));
      Metrics.register registry (p ^ ".steals") (Metrics.Counter t.s_steal.(s));
      Metrics.register registry (p ^ ".empty_sweeps")
        (Metrics.Counter t.s_sweep.(s));
      Metrics.gauge registry ~name:(p ^ ".depth") (fun () ->
          t.shards.(s).Qi.size ())
    done
end
