(** Operation histories for linearizability checking.

    Records invocation/response events with sequence-number timestamps.
    Under the simulator the recording is exact (runs are single-domain);
    on real domains pass [~thread_safe:true] — the recorder's lock only
    coarsens intervals, which keeps the check sound. *)

type op = Enq of int | Deq

type response =
  | Done  (** enqueue returned *)
  | Got of int  (** dequeue returned a value *)
  | Empty  (** dequeue observed an empty queue *)
  | Rejected  (** bounded enqueue observed a full queue *)

type completed = {
  thread : int;
  op : op;
  response : response;
  call : int;  (** sequence number of the invocation event *)
  return : int;  (** sequence number of the response event *)
}

type t

val create : ?thread_safe:bool -> unit -> t

val call : t -> thread:int -> op -> unit
(** Record an invocation; at most one call may be pending per thread. *)

val return : t -> thread:int -> response -> unit
(** Record the response to the thread's pending call. Raises
    [Invalid_argument] when no call is pending for that thread. *)

val call_batch : t -> thread:int -> op list -> unit
(** Record one invocation per batch element, in batch order, before the
    batch operation runs. The sub-ops share the batch's real-time
    window; their intra-batch order is their invocation order, which
    the checker enforces as per-thread program order. *)

val return_batch : t -> thread:int -> response list -> unit
(** Complete the thread's pending sub-ops, responses matched to sub-ops
    in invocation order. Raises [Invalid_argument] when the counts
    disagree. *)

val completed : t -> completed list
(** All completed operations, oldest first. *)

val has_pending : t -> bool

val pp_op : Format.formatter -> op -> unit
val pp_response : Format.formatter -> response -> unit
val pp_completed : Format.formatter -> completed -> unit
