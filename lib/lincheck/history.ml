(** Operation histories for linearizability checking.

    A history is the sequence of invocation and response events observed
    while threads operate on a queue. Under the simulator the recorder is
    exact: runs are single-domain, so appending an event at the moment the
    fiber executes gives a total order consistent with real time. On real
    domains the recorder can still be used with a lock (the lock only
    coarsens intervals, which keeps the check sound: any linearization of
    the coarsened history is one of the true history). *)

type op = Enq of int | Deq

type response =
  | Done  (** enqueue returned *)
  | Got of int  (** dequeue returned a value *)
  | Empty  (** dequeue observed an empty queue *)
  | Rejected  (** bounded enqueue observed a full queue *)

type completed = {
  thread : int;
  op : op;
  response : response;
  call : int;  (** sequence number of the invocation event *)
  return : int;  (** sequence number of the response event *)
}

type t = {
  mutable clock : int;
  mutable pending : (int * op * int) list; (* thread, op, call time *)
  mutable completed_rev : completed list;
  mutable lock : Mutex.t option;
}

let create ?(thread_safe = false) () =
  {
    clock = 0;
    pending = [];
    completed_rev = [];
    lock = (if thread_safe then Some (Mutex.create ()) else None);
  }

let locked t f =
  match t.lock with
  | None -> f ()
  | Some m ->
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let tick t =
  let c = t.clock in
  t.clock <- c + 1;
  c

let call t ~thread op =
  locked t (fun () -> t.pending <- (thread, op, tick t) :: t.pending)

let return t ~thread response =
  locked t (fun () ->
      match List.partition (fun (th, _, _) -> th = thread) t.pending with
      | [ (_, op, call) ], rest ->
          t.pending <- rest;
          t.completed_rev <-
            { thread; op; response; call; return = tick t }
            :: t.completed_rev
      | [], _ -> invalid_arg "History.return: no pending call for thread"
      | _ :: _ :: _, _ ->
          invalid_arg "History.return: multiple pending calls for thread")

(* Batch operations expand to one sub-op per element: all invocations
   recorded before the batch runs, all responses after it returns, so
   every element's true linearization point lies inside its recorded
   interval. The sub-ops deliberately overlap (they share the batch's
   real-time window); the checker restores their relative order from
   the per-thread invocation order (intra-batch program order), which
   is what makes "intra-batch FIFO" a checkable property. *)
let call_batch t ~thread ops =
  locked t (fun () ->
      List.iter
        (fun op -> t.pending <- (thread, op, tick t) :: t.pending)
        ops)

let return_batch t ~thread responses =
  locked t (fun () ->
      let mine, rest =
        List.partition (fun (th, _, _) -> th = thread) t.pending
      in
      let mine =
        List.sort (fun (_, _, c1) (_, _, c2) -> compare c1 c2) mine
      in
      if List.length mine <> List.length responses then
        invalid_arg "History.return_batch: response count mismatch";
      t.pending <- rest;
      let ret = tick t in
      t.completed_rev <-
        List.rev_append
          (List.map2
             (fun (_, op, call) response ->
               { thread; op; response; call; return = ret })
             mine responses)
          t.completed_rev)

let completed t = locked t (fun () -> List.rev t.completed_rev)
let has_pending t = locked t (fun () -> t.pending <> [])

let pp_op fmt = function
  | Enq v -> Format.fprintf fmt "enq(%d)" v
  | Deq -> Format.fprintf fmt "deq()"

let pp_response fmt = function
  | Done -> Format.fprintf fmt "ok"
  | Got v -> Format.fprintf fmt "-> %d" v
  | Empty -> Format.fprintf fmt "-> empty"
  | Rejected -> Format.fprintf fmt "-> full"

let pp_completed fmt c =
  Format.fprintf fmt "[%d..%d] t%d: %a %a" c.call c.return c.thread pp_op
    c.op pp_response c.response
