(** Linearizability checker for FIFO-queue histories.

    Wing & Gong's algorithm with Lowe-style memoization: depth-first
    search over candidate linearization orders of a complete history,
    validating each prefix against the sequential queue specification.

    An operation [o] may be linearized next iff no unlinearized operation
    returned strictly before [o] was invoked (otherwise real-time order
    would be violated). Visited configurations are memoized by the pair
    (set of linearized operations, abstract queue state) — the state is
    not a function of the set alone, because different enqueue orders
    yield different queues, so both components are needed.

    Worst case exponential (the problem is NP-complete), but with
    memoization queue histories of a few hundred operations check in
    milliseconds. *)

(* Functional FIFO: (front, back) with back reversed; [size] tracked so
   the bounded spec can answer full/not-full in O(1). *)
module Model = struct
  type t = { front : int list; back : int list; size : int }

  let empty = { front = []; back = []; size = 0 }
  let push q v = { q with back = v :: q.back; size = q.size + 1 }

  let pop q =
    match q.front with
    | v :: front -> Some (v, { q with front; size = q.size - 1 })
    | [] -> (
        match List.rev q.back with
        | [] -> None
        | v :: front -> Some (v, { front; back = []; size = q.size - 1 }))

  (* Canonical form so that structurally equal queues hash equally. *)
  let canonical q = q.front @ List.rev q.back
end

type verdict = Linearizable of History.completed list | Not_linearizable

(* [capacity]: check against the bounded-queue specification instead of
   the unbounded one. A bounded queue accepts an enqueue ([Done]) only
   when it holds fewer than [capacity] elements and rejects it
   ([Rejected]) only when it holds exactly [capacity] — the rejection
   is a reachability fact about the linearization point, so it takes
   part in the search like any other operation. *)
let check ?capacity (ops : History.completed list) : verdict =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  if n > 62 then
    invalid_arg "Checker.check: histories over 62 operations not supported";
  let visited : (int * int list, unit) Hashtbl.t = Hashtbl.create 1024 in
  (* Per-thread program order: op [i] may linearize only after every
     same-thread op invoked before it. For sequential threads (one
     pending call at a time) this is implied by the interval check; for
     batch sub-ops — which share their batch's real-time window — it is
     the constraint that makes intra-batch FIFO checkable rather than
     letting the search reorder elements within a batch. *)
  let pred = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        j <> i
        && ops.(j).History.thread = ops.(i).History.thread
        && ops.(j).History.call < ops.(i).History.call
      then pred.(i) <- pred.(i) lor (1 lsl j)
    done
  done;
  (* mask has bit i set iff ops.(i) is already linearized *)
  let rec search mask model order =
    if mask = (1 lsl n) - 1 then Some (List.rev order)
    else begin
      let key = (mask, Model.canonical model) in
      if Hashtbl.mem visited key then None
      else begin
        Hashtbl.add visited key ();
        (* Earliest return among unlinearized ops bounds what may come
           next in real time. *)
        let min_return = ref max_int in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 then
            min_return := min !min_return ops.(i).return
        done;
        let rec try_ops i =
          if i >= n then None
          else if mask land (1 lsl i) <> 0 then try_ops (i + 1)
          else if ops.(i).call > !min_return then try_ops (i + 1)
          else if mask land pred.(i) <> pred.(i) then try_ops (i + 1)
          else begin
            let continue_with model' =
              search (mask lor (1 lsl i)) model' (ops.(i) :: order)
            in
            let attempt =
              match (ops.(i).op, ops.(i).response) with
              | History.Enq v, History.Done -> (
                  match capacity with
                  | Some c when model.Model.size >= c ->
                      None (* accepted while full *)
                  | Some _ | None -> continue_with (Model.push model v))
              | History.Enq _, History.Rejected -> (
                  match capacity with
                  | Some c when model.Model.size = c -> continue_with model
                  | Some _ -> None (* rejected while not full *)
                  | None -> None (* unbounded queues never reject *))
              | History.Enq _, (History.Got _ | History.Empty) ->
                  None (* malformed history *)
              | History.Deq, History.Got v -> (
                  match Model.pop model with
                  | Some (v', model') when v = v' -> continue_with model'
                  | Some _ | None -> None)
              | History.Deq, History.Empty -> (
                  match Model.pop model with
                  | None -> continue_with model
                  | Some _ -> None)
              | History.Deq, (History.Done | History.Rejected) ->
                  None (* malformed history *)
            in
            match attempt with Some _ as r -> r | None -> try_ops (i + 1)
          end
        in
        try_ops 0
      end
    end
  in
  match search 0 Model.empty [] with
  | Some order -> Linearizable order
  | None -> Not_linearizable

let is_linearizable ?capacity ops =
  match check ?capacity ops with
  | Linearizable _ -> true
  | Not_linearizable -> false

(** Render a non-linearizable history for diagnostics. *)
let pp_history fmt ops =
  List.iter (fun c -> Format.fprintf fmt "%a@." History.pp_completed c) ops

(** Render a verdict: the witness linearization order, or the marker. *)
let pp_verdict fmt = function
  | Not_linearizable -> Format.pp_print_string fmt "NOT LINEARIZABLE"
  | Linearizable order ->
      Format.fprintf fmt "@[<v>linearizable; witness order:@,%a@]"
        (Format.pp_print_list (fun fmt (c : History.completed) ->
             Format.fprintf fmt "  %a" History.pp_completed c))
        order
