(** Linearizability checker for FIFO-queue histories: Wing & Gong's
    depth-first search with memoization on (linearized set, abstract
    queue state). Worst-case exponential (the problem is NP-complete);
    with memoization queue histories of a few hundred operations check in
    milliseconds. *)

type verdict =
  | Linearizable of History.completed list
      (** a witness linearization order *)
  | Not_linearizable

val check : ?capacity:int -> History.completed list -> verdict
(** Decide linearizability of a complete history against the sequential
    FIFO specification. An operation may linearize before another only if
    it did not begin after the other returned (real-time order), and
    never before a same-thread operation invoked earlier (per-thread
    program order — what pins intra-batch FIFO for the overlapping
    sub-ops {!History.call_batch} records). Raises [Invalid_argument]
    for histories of more than 62 operations (the linearized set is a
    native-int bitmask).

    [capacity] switches to the bounded-queue specification: an enqueue
    answering [Done] must linearize at a state holding fewer than
    [capacity] elements, and one answering [Rejected] at a state holding
    exactly [capacity]. Without [capacity], any [Rejected] response
    makes the history non-linearizable (unbounded queues never
    reject). *)

val is_linearizable : ?capacity:int -> History.completed list -> bool

val pp_history : Format.formatter -> History.completed list -> unit

val pp_verdict : Format.formatter -> verdict -> unit
(** The witness linearization order, or a NOT LINEARIZABLE marker —
    used by the model-checking CLI ([wfq_check dpor]) to report what the
    checker concluded about a schedule's history. *)
