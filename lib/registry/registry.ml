(** Long-lived thread-ID registry (§3.3 "relaxing the tid assumption").

    The queue algorithms assume threads carry IDs in [0, num_threads).
    The paper notes that dynamically created threads with arbitrary IDs
    can obtain and release virtual IDs from a small name space through a
    long-lived renaming algorithm. This registry provides that name
    space: a fixed array of slots acquired by test-and-set CAS.

    Progress: an [acquire] scan fails on a slot only when another thread
    concurrently took it, and a full pass over [capacity] slots fails
    only if [capacity] distinct acquisitions happened during the pass, so
    with at most [capacity] concurrent holders the loop terminates; the
    retry count is bounded by the release/re-acquire churn, which makes
    it wait-free under bounded churn (the adaptive algorithms the paper
    cites, e.g. Afek-Merritt renaming, remove that caveat at considerable
    complexity). *)

type t = {
  slots : bool Atomic.t array;
  (* Per-slot acquisition counts. Slot [i] is bumped by whichever
     thread just won the CAS on [slots.(i)] — a different thread after
     every release/re-acquire — so these cells are multi-writer and
     must be atomic: the plain [int array] this replaces could lose a
     bump when a release/re-acquire pair raced the previous holder's
     increment (two plain read-modify-writes of the same cell). Exact
     totals are the point of the counter, so the 1.3x-slower RMW cell
     is the right trade here (see lib/obsv/shared_counter.mli). *)
  acquisitions : Wfq_obsv.Shared_counter.t;
}

exception Exhausted

let create ~capacity =
  if capacity <= 0 then invalid_arg "Registry.create: capacity";
  {
    slots = Array.init capacity (fun _ -> Atomic.make false);
    acquisitions = Wfq_obsv.Shared_counter.create ~slots:capacity ();
  }

let capacity t = Array.length t.slots

(** Acquire a free ID; raises {!Exhausted} if [capacity] holders already
    exist (checked over a full clean pass). *)
let acquire t =
  let n = Array.length t.slots in
  let rec scan i failures =
    if i >= n then
      (* Every slot was observed taken. Concurrent churn may have freed
         one since; retry a bounded number of passes, then report. *)
      if failures >= n then raise Exhausted else scan 0 (failures + 1)
    else if
      (not (Atomic.get t.slots.(i)))
      && Atomic.compare_and_set t.slots.(i) false true
    then begin
      Wfq_obsv.Shared_counter.incr t.acquisitions ~slot:i;
      i
    end
    else scan (i + 1) failures
  in
  scan 0 0

let release t tid =
  if tid < 0 || tid >= Array.length t.slots then
    invalid_arg "Registry.release: bad tid";
  if not (Atomic.get t.slots.(tid)) then
    invalid_arg "Registry.release: tid not held";
  Atomic.set t.slots.(tid) false

(** Run [f tid] with an acquired ID, releasing it afterwards. *)
let with_tid t f =
  let tid = acquire t in
  Fun.protect ~finally:(fun () -> release t tid) (fun () -> f tid)

let held t =
  Array.fold_left (fun acc s -> if Atomic.get s then acc + 1 else acc) 0 t.slots

let total_acquisitions t = Wfq_obsv.Shared_counter.total t.acquisitions

let register_metrics t metrics ~prefix =
  Wfq_obsv.Metrics.register metrics
    (prefix ^ ".acquisitions")
    (Wfq_obsv.Metrics.Shared t.acquisitions);
  Wfq_obsv.Metrics.gauge metrics ~name:(prefix ^ ".held") (fun () -> held t)
