(** Long-lived thread-ID registry (paper §3.3, "relaxing the tid
    assumption").

    The queue algorithms need thread IDs in [0, num_threads); this
    registry is the small renaming name space the paper points to for
    applications that create and destroy threads dynamically: a fixed
    array of slots acquired by test-and-set CAS and released by their
    holder. With at most [capacity] concurrent holders an acquisition
    scan terminates; the retry count is bounded by release/re-acquire
    churn during the scan. *)

type t

exception Exhausted
(** Raised by {!acquire} when all slots stayed taken across a full bound
    of scan passes. *)

val create : capacity:int -> t
val capacity : t -> int

val acquire : t -> int
(** Acquire a free ID in [0, capacity). Raises {!Exhausted} when
    [capacity] holders already exist. *)

val release : t -> int -> unit
(** Release a held ID. Raises [Invalid_argument] if the ID is out of
    range or not currently held. *)

val with_tid : t -> (int -> 'a) -> 'a
(** [with_tid t f] runs [f tid] with an acquired ID, releasing it
    afterwards (also on exception). *)

val held : t -> int
(** Number of currently held IDs (snapshot). *)

val total_acquisitions : t -> int
(** Total successful acquisitions since creation. {b Exact} even under
    churn: the per-slot counters are atomic ({!Wfq_obsv.Shared_counter})
    because consecutive holders of the same slot are different threads —
    a plain cell could lose increments across a release/re-acquire
    race. *)

val register_metrics : t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
(** Attach the live acquisition counter and a held-count gauge under
    [prefix ^ ".acquisitions"] / [".held"]. *)
