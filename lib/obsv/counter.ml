(** Per-slot, cache-padded, single-writer event counters.

    The queue stack's diagnostic counters were ad-hoc plain [int array]s
    before this module existed, and two of them were racy (multi-domain
    writers with no synchronization — see docs/OBSERVABILITY.md). This
    module is the single replacement mechanism. Its contract:

    {b Single-writer rule.} Each slot is written by exactly one domain
    at a time. Queue code indexes slots by the {e executing} thread's
    tid, so helper traffic is accounted to the helper — which keeps the
    rule intact even though operations are completed cooperatively.
    When slot ownership migrates between domains (e.g. the tid registry
    hands a slot to a new domain), the migration must happen through a
    synchronizing operation (a CAS on the slot's ownership word);
    writers that cannot guarantee that must use {!Shared_counter}
    instead.

    {b Racy reads.} [total] / [snapshot] read the slots with plain
    loads, concurrently with the writers. OCaml immediate ints are
    word-sized, so a racing read returns some previously-written value
    of that slot — never a torn word. Sums are therefore per-slot
    consistent, monotone under monotone writers, and exact once the
    writers are quiescent. They are {e not} a linearizable cut across
    slots, and must not be used for control decisions, only reporting.

    {b Cost.} An increment is one bounds-checked array load + store to a
    slot that no other domain writes; slots are strided one cache line
    apart so concurrent writers never share a line. No RMW, no fence:
    this is deliberately {e cheaper} than an [Atomic.t] and is what lets
    instrumentation sit on queue hot paths within the ≤2% overhead
    budget. *)

type t = { cells : int array; slots : int }

(* One slot per 16 words = 128 bytes: a cache line on x86-64 plus guard
   against adjacent-line prefetch pairing. *)
let stride = 16

let create ~slots () =
  if slots <= 0 then invalid_arg "Obsv.Counter.create: slots";
  { cells = Array.make (slots * stride) 0; slots }

let slots t = t.slots

let incr t ~slot =
  let i = slot * stride in
  t.cells.(i) <- t.cells.(i) + 1

let add t ~slot n =
  let i = slot * stride in
  t.cells.(i) <- t.cells.(i) + n

let slot_value t ~slot = t.cells.(slot * stride)

let snapshot t = Array.init t.slots (fun i -> t.cells.(i * stride))

let total t =
  let acc = ref 0 in
  for i = 0 to t.slots - 1 do
    acc := !acc + t.cells.(i * stride)
  done;
  !acc
