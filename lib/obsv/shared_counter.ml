(** Multi-writer atomic counters, for slots whose writer changes domains
    without a synchronizing hand-off the single-writer {!Counter} could
    piggyback on.

    The motivating client is [Wfq_registry]: its per-slot acquisition
    counter is bumped by whichever domain just won the slot, and across
    release/re-acquire churn the writer changes arbitrarily often. The
    original plain [int array] could lose increments under that churn;
    here each bump is a [fetch_and_add], so totals are exact — the churn
    test in test/test_registry.ml asserts equality with a
    domain-local reference count.

    Cells are strided so concurrent writers of {e different} slots do
    not false-share; same-slot contention pays the usual RMW price,
    which is acceptable because every client bump already sits next to
    a CAS (slot acquisition) on its path. *)

type t = { cells : int Atomic.t array; slots : int }

(* 8 pointers per slot: the pointed-to atomic records are allocated
   back-to-back at create time, so spacing the *used* ones 8 records
   apart keeps their mutable words on distinct cache lines. *)
let stride = 8

let create ~slots () =
  if slots <= 0 then invalid_arg "Obsv.Shared_counter.create: slots";
  { cells = Array.init (slots * stride) (fun _ -> Atomic.make 0); slots }

let slots t = t.slots
let incr t ~slot = ignore (Atomic.fetch_and_add t.cells.(slot * stride) 1)
let add t ~slot n = ignore (Atomic.fetch_and_add t.cells.(slot * stride) n)
let slot_value t ~slot = Atomic.get t.cells.(slot * stride)

let snapshot t = Array.init t.slots (fun i -> Atomic.get t.cells.(i * stride))

let total t =
  let acc = ref 0 in
  for i = 0 to t.slots - 1 do
    acc := !acc + Atomic.get t.cells.(i * stride)
  done;
  !acc
