(** Power-of-two-bucket histograms (48 buckets: bucket [b] holds
    [2^b <= v < 2^(b+1)], bucket 0 absorbs [v <= 1]) under the
    single-writer-per-slot rule of {!Counter}. Record cost is two plain
    slot-local stores; quantiles are within 1.5x (bucket geometric
    representative), maxima exact. *)

type t

val buckets : int

val create : slots:int -> unit -> t
(** Raises [Invalid_argument] for [slots <= 0]. *)

val slots : t -> int

val bucket_of : int -> int
(** The bucket a value lands in (exposed for tests). *)

val record : t -> slot:int -> int -> unit
(** Record one sample (any non-negative int: latencies in ns, phase
    lags, ...). Caller must be the slot's unique current writer. *)

val merged : t -> int array
(** Racy merged bucket counts, index = bucket. *)

val percentile : t -> float -> float
(** Nearest-rank quantile over the racy merged counts, reported as the
    bucket's geometric representative (within 1.5x). Any [p] in
    [0, 100] — the open-loop latency engine reads p50/p99/p99.9 from
    the same recording the metrics registry snapshots. [0.] when the
    histogram is empty; raises [Invalid_argument] outside [0, 100]. *)

type summary = {
  count : int;
  p50 : float;  (** bucket representative: within 1.5x *)
  p99 : float;  (** bucket representative: within 1.5x *)
  max : int;  (** exact largest recorded sample *)
}

val summary : t -> summary
(** Racy merge of all slots; exact at writer quiescence. *)
