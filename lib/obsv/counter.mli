(** Per-slot, cache-padded, {e single-writer} event counters — the one
    mechanism behind every diagnostic counter in the queue stack.

    Contract: each slot has exactly one writing domain at a time (queue
    code indexes by the executing thread's tid); slot hand-off between
    domains must synchronize through an atomic operation. Reads are
    racy snapshots: per-slot untorn, exact at writer quiescence, not a
    linearizable cut. Writers whose slot ownership is not synchronized
    must use {!Shared_counter}. *)

type t

val create : slots:int -> unit -> t
(** [slots] independent cells, each padded to its own cache line.
    Raises [Invalid_argument] for [slots <= 0]. *)

val slots : t -> int

val incr : t -> slot:int -> unit
(** One plain load + store; no RMW, no fence. Caller must be the slot's
    unique current writer. *)

val add : t -> slot:int -> int -> unit
(** Like {!incr} by [n]. Negative [n] is allowed (gauge-style use). *)

val slot_value : t -> slot:int -> int
(** Racy read of one slot. *)

val snapshot : t -> int array
(** Racy per-slot snapshot (index = slot). *)

val total : t -> int
(** Racy sum over all slots; exact once writers are quiescent. *)
