(** Power-of-two-bucket histograms with the same per-slot single-writer
    discipline as {!Counter}.

    Bucket [b] holds samples [v] with [2^b <= v < 2^(b+1)] (bucket 0
    also absorbs [v <= 1]), so 48 buckets cover sub-nanosecond to
    multi-day latencies with a two-instruction record path and ~2x
    worst-case quantile error — the right trade for "is p99 1µs or
    1ms?" questions. Per-slot true maxima are tracked exactly.

    Recording is slot-local plain stores (one array increment + a max
    update); {!summary} merges all slots with racy reads, same caveats
    as {!Counter.total}. *)

let buckets = 48

type t = {
  counts : int array array; (* per slot: separately allocated, no sharing *)
  maxes : int array; (* per slot, strided *)
  slots : int;
}

let stride = 16

let create ~slots () =
  if slots <= 0 then invalid_arg "Obsv.Histogram.create: slots";
  {
    counts = Array.init slots (fun _ -> Array.make buckets 0);
    maxes = Array.make (slots * stride) 0;
    slots;
  }

let slots t = t.slots

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go v b = if v <= 1 then b else go (v lsr 1) (b + 1) in
    let b = go v 0 in
    if b >= buckets then buckets - 1 else b
  end

let record t ~slot v =
  let c = t.counts.(slot) in
  let b = bucket_of v in
  c.(b) <- c.(b) + 1;
  let mi = slot * stride in
  if v > t.maxes.(mi) then t.maxes.(mi) <- v

(** Merged bucket counts (racy snapshot), index = bucket. *)
let merged t =
  let out = Array.make buckets 0 in
  for s = 0 to t.slots - 1 do
    let c = t.counts.(s) in
    for b = 0 to buckets - 1 do
      out.(b) <- out.(b) + c.(b)
    done
  done;
  out

type summary = {
  count : int;
  p50 : float;
  p99 : float;
  max : int;  (** exact maximum recorded value, not a bucket bound *)
}

(* Nearest-rank percentile over the merged buckets; a bucket is
   reported as its geometric representative (1.5 * 2^b; bucket 0 as 1),
   i.e. within 1.5x of any sample it contains. *)
let percentile_from merged total p =
  if p < 0.0 || p > 100.0 then
    invalid_arg "Obsv.Histogram.percentile: p out of range";
  if total = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
      if r < 1 then 1 else r
    in
    let rec walk b cum =
      if b >= buckets then float_of_int max_int
      else
        let cum = cum + merged.(b) in
        if cum >= rank then
          if b = 0 then 1.0 else 1.5 *. float_of_int (1 lsl b)
        else walk (b + 1) cum
    in
    walk 0 0
  end

let percentile t p =
  let m = merged t in
  percentile_from m (Array.fold_left ( + ) 0 m) p

let summary t =
  let m = merged t in
  let count = Array.fold_left ( + ) 0 m in
  let max_v =
    let acc = ref 0 in
    for s = 0 to t.slots - 1 do
      let v = t.maxes.(s * stride) in
      if v > !acc then acc := v
    done;
    !acc
  in
  {
    count;
    p50 = percentile_from m count 50.0;
    p99 = percentile_from m count 99.0;
    max = max_v;
  }
