(** Multi-writer atomic counters: exact totals under arbitrary writer
    churn, at fetch-and-add cost per bump. Use {!Counter} whenever the
    single-writer rule can be met — it is strictly cheaper. *)

type t

val create : slots:int -> unit -> t
(** Raises [Invalid_argument] for [slots <= 0]. *)

val slots : t -> int

val incr : t -> slot:int -> unit
(** Atomic fetch-and-add; any domain may bump any slot. *)

val add : t -> slot:int -> int -> unit
val slot_value : t -> slot:int -> int
val snapshot : t -> int array

val total : t -> int
(** Sum of atomic per-slot reads: every completed bump is counted;
    concurrent bumps may or may not be. Exact at quiescence. *)
