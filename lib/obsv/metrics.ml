(** Named-metric registry: the reporting surface over {!Counter},
    {!Shared_counter}, {!Histogram} and polled gauges.

    Registration happens at construction time (queue/pool/shard create
    paths) under a mutex; reading ([to_json], [dump], [value]) takes
    racy snapshots through each metric's own aggregate API and never
    blocks writers — snapshots are exact at quiescence, indicative under
    load, and by design invisible to the queue protocol (no shared-cell
    traffic the model checker would schedule; test/test_obsv.ml pins
    that). *)

type metric =
  | Counter of Counter.t
  | Shared of Shared_counter.t
  | Histogram of Histogram.t
  | Gauge of (unit -> int)

type t = {
  mutable entries : (string * metric) list; (* newest first *)
  lock : Mutex.t;
}

let create () = { entries = []; lock = Mutex.create () }

let register t name m =
  Mutex.protect t.lock (fun () ->
      if List.mem_assoc name t.entries then
        invalid_arg ("Obsv.Metrics.register: duplicate metric " ^ name);
      t.entries <- (name, m) :: t.entries)

let counter t ~name ~slots =
  let c = Counter.create ~slots () in
  register t name (Counter c);
  c

let shared_counter t ~name ~slots =
  let c = Shared_counter.create ~slots () in
  register t name (Shared c);
  c

let histogram t ~name ~slots =
  let h = Histogram.create ~slots () in
  register t name (Histogram h);
  h

let gauge t ~name f = register t name (Gauge f)

let entries t =
  Mutex.protect t.lock (fun () -> List.rev t.entries)

let find t name =
  Mutex.protect t.lock (fun () -> List.assoc_opt name t.entries)

(** Scalar view of a metric: counter/shared total, gauge poll,
    histogram sample count. [None] for unregistered names. *)
let value t name =
  match find t name with
  | None -> None
  | Some (Counter c) -> Some (Counter.total c)
  | Some (Shared c) -> Some (Shared_counter.total c)
  | Some (Gauge f) -> Some (f ())
  | Some (Histogram h) -> Some (Histogram.summary h).Histogram.count

let histogram_summary t name =
  match find t name with
  | Some (Histogram h) -> Some (Histogram.summary h)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_ints buf a =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (string_of_int v))
    a;
  Buffer.add_char buf ']'

(** One JSON object per metric, under a ["metrics"] array:
    [{"name", "type", ...}] with [total]+[slots] for counters,
    [count]/[p50]/[p99]/[max]+non-empty [buckets] ([[lower_bound,
    count], ...]) for histograms, [value] for gauges. *)
let to_json_body buf t =
  Buffer.add_string buf "\"metrics\": [\n";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": \"%s\", " (json_escape name));
      (match m with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "\"type\": \"counter\", \"total\": %d, \"slots\": "
               (Counter.total c));
          add_ints buf (Counter.snapshot c)
      | Shared c ->
          Buffer.add_string buf
            (Printf.sprintf
               "\"type\": \"shared_counter\", \"total\": %d, \"slots\": "
               (Shared_counter.total c));
          add_ints buf (Shared_counter.snapshot c)
      | Histogram h ->
          let s = Histogram.summary h in
          Buffer.add_string buf
            (Printf.sprintf
               "\"type\": \"histogram\", \"count\": %d, \"p50\": %g, \
                \"p99\": %g, \"max\": %d, \"buckets\": ["
               s.Histogram.count s.Histogram.p50 s.Histogram.p99
               s.Histogram.max);
          let m = Histogram.merged h in
          let first = ref true in
          Array.iteri
            (fun b n ->
              if n > 0 then begin
                if not !first then Buffer.add_string buf ", ";
                first := false;
                Buffer.add_string buf
                  (Printf.sprintf "[%d, %d]" (if b = 0 then 0 else 1 lsl b) n)
              end)
            m;
          Buffer.add_char buf ']'
      | Gauge f ->
          Buffer.add_string buf
            (Printf.sprintf "\"type\": \"gauge\", \"value\": %d" (f ())));
      Buffer.add_char buf '}')
    (entries t);
  Buffer.add_string buf "\n  ]"

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  ";
  to_json_body buf t;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(** Human report, one metric per line (the [debug_dump] analogue). *)
let dump t out =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c ->
          Printf.fprintf out "%-40s counter  total=%d\n" name
            (Counter.total c)
      | Shared c ->
          Printf.fprintf out "%-40s counter* total=%d\n" name
            (Shared_counter.total c)
      | Histogram h ->
          let s = Histogram.summary h in
          Printf.fprintf out
            "%-40s histo    count=%d p50=%.0f p99=%.0f max=%d\n" name
            s.Histogram.count s.Histogram.p50 s.Histogram.p99 s.Histogram.max
      | Gauge f -> Printf.fprintf out "%-40s gauge    value=%d\n" name (f ()))
    (entries t)
