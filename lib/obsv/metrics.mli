(** Named-metric registry: create-or-attach metrics under unique names,
    snapshot them as JSON or a human report. Registration is
    mutex-guarded (construction paths only); reads are racy aggregate
    snapshots that never block writers and perform no shared-cell
    traffic visible to the model checker. *)

type metric =
  | Counter of Counter.t
  | Shared of Shared_counter.t
  | Histogram of Histogram.t
  | Gauge of (unit -> int)  (** polled on every snapshot *)

type t

val create : unit -> t

val register : t -> string -> metric -> unit
(** Attach an existing metric under [name]. Raises [Invalid_argument]
    on a duplicate name. *)

val counter : t -> name:string -> slots:int -> Counter.t
(** Create and register in one step; same for the three below. *)

val shared_counter : t -> name:string -> slots:int -> Shared_counter.t
val histogram : t -> name:string -> slots:int -> Histogram.t
val gauge : t -> name:string -> (unit -> int) -> unit

val entries : t -> (string * metric) list
(** Registration order. *)

val find : t -> string -> metric option

val value : t -> string -> int option
(** Scalar snapshot: counter total, gauge poll, histogram count. *)

val histogram_summary : t -> string -> Histogram.summary option

val to_json : t -> string
(** [{"metrics": [{"name", "type", ...}, ...]}] — counters carry
    [total] + per-slot [slots], histograms [count]/[p50]/[p99]/[max] +
    non-empty [buckets] as [[lower_bound, count]] pairs, gauges
    [value]. *)

val to_json_body : Buffer.t -> t -> unit
(** Append just the ["metrics": [...]] member (no surrounding braces),
    for embedding the registry in a larger JSON envelope. *)

val dump : t -> out_channel -> unit
(** One line per metric, aligned (the human [debug_dump] analogue). *)
