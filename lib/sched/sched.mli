(** Effect-based fiber scheduler over this library's wait-free queues.

    [N] workers — OCaml domains in production ({!S.run}), or arbitrary
    callers of the deterministic core ({!S.step}) under the simulator —
    each own one MPMC run-queue of fiber slices, backed by any
    {!RUN_QUEUE} (KP, fast-path/slow-path pooled, the sharded
    front-end, or the bounded ring). A worker serves its own queue
    first and, on empty,
    steals with one {!Wfq_shard.Steal_order} lap over the other
    workers' queues — the same sweep contract as the shard dequeue.

    Fibers are effect-handler coroutines: {!S.spawn} starts a new fiber
    and returns a promise, {!S.yield} requeues the current fiber behind
    its local queue, {!S.await} suspends until a promise completes
    (re-raising if the awaited fiber failed). Handlers are {e shallow}:
    every slice runs under a handler built by the worker executing it,
    so a fiber resumed by a different worker (steal, wakeup) performs
    its queue operations under the resuming domain's [tid] — the
    Kogan-Petrank thread-identity discipline — and effects the
    scheduler does not own (e.g. the simulator's yield-per-access) are
    forwarded to outer handlers, keeping the core model-checkable.

    Wait-freedom inheritance: a scheduler step adds one FAA and a few
    single-writer padded-counter stores around run-queue operations
    that are themselves wait-free, so fiber hand-off (spawn, steal,
    wakeup) is wait-free end to end; only the {e idle} worker spins —
    on the shared clamped {!Wfq_primitives.Backoff} schedule, reset the
    moment a task is found — and only while the system is genuinely
    empty of runnable tasks.

    See docs/SCHEDULER.md for the full protocol walkthrough. *)

module Steal_order = Wfq_shard.Steal_order

module type RUN_QUEUE = Wfq_core.Queue_intf.RUN_QUEUE
(** What a run-queue must provide: the {!Wfq_core.Queue_intf.QUEUE}
    operations plus the uniform [register_metrics] hookup. *)

type metrics
(** Instrumentation handle ({!Wfq_obsv}): the run-queue depth histogram
    (sampled at every push from the push/take counters) and the
    per-fiber spawn-to-completion latency histogram (recorded only when
    the scheduler also has a [?clock]). Writes are per-tid
    single-writer plain cells — no extra shared traffic, DPOR traces
    identical with or without. *)

val metrics : Wfq_obsv.Metrics.t -> prefix:string -> slots:int -> metrics
(** Create the handle and register its histograms under
    [prefix ^ ".runq_depth"] / [".fiber_latency_ns"]. [slots] must be
    the scheduler's [num_workers]. *)

(** Output signature of {!Make}. *)
module type S = sig
  type t

  type 'a promise
  (** Completion cell of one fiber: carries its value, or the exception
      that escaped its body. *)

  val name : string
  (** ["sched(<run-queue name>)"]. *)

  val create :
    ?obsv:metrics -> ?clock:(unit -> int) -> num_workers:int -> unit -> t
  (** [num_workers] fixes the worker (and run-queue) count; worker
      [tid]s are [0 .. num_workers - 1]. [clock] is a monotonic ns
      clock enabling fiber-latency recording (e.g. bechamel's
      [Monotonic_clock.now]); without it latency is not sampled.
      Raises [Invalid_argument] for [num_workers <= 0]. *)

  val num_workers : t -> int

  (** {2 Fiber context}

      These perform effects and must run inside a fiber (a computation
      started by {!run}, {!submit} or {!spawn}); outside one they raise
      [Effect.Unhandled]. *)

  val spawn : (unit -> 'a) -> 'a promise
  (** Start a new fiber on the current worker's run-queue. *)

  val spawn_many : (unit -> 'a) list -> 'a promise list
  (** Fan-out: start one fiber per body, pushing every fresh task with
      a {e single} backend-native run-queue batch
      ({!Wfq_core.Queue_intf.RUN_QUEUE.enqueue_batch}) — on the
      KP-family backends the whole fan-out linearizes at one append
      CAS. Promises are returned in body order. [spawn_many []] is
      [[]]. *)

  val yield : unit -> unit
  (** Requeue the current fiber behind its worker's local queue. *)

  val await : 'a promise -> 'a
  (** The promise's value, suspending until it completes. Re-raises the
      awaited fiber's exception if it failed. *)

  (** {2 External operations} *)

  val submit : t -> tid:int -> (unit -> 'a) -> 'a promise
  (** Enqueue a fresh fiber on worker [tid]'s run-queue from outside
      any fiber (setup code, tests). The caller must own [tid]'s slot
      for the duration of the call (quiescent setup, or the worker
      itself). *)

  val submit_batch : t -> tid:int -> (unit -> 'a) list -> 'a promise list
  (** {!submit}'s fan-out form: one run-queue batch for the whole list,
      as {!spawn_many}. Same [tid]-ownership requirement. *)

  val result : 'a promise -> ('a, exn) result option
  (** Non-blocking completion probe; [None] while the fiber runs. *)

  val run : t -> (unit -> 'a) -> 'a
  (** Execute [main] to completion: the calling domain becomes worker 0
      and [num_workers - 1] domains are spawned for the rest. Returns
      when {e every} fiber has completed, with [main]'s value (or
      re-raises its escaped exception). Do not call concurrently with
      itself or with external [submit]s. *)

  (** {2 Deterministic core}

      The worker loop decomposed for tests and the simulator: no
      domains, no spinning — the caller owns the schedule. At most one
      caller per [tid] at a time. *)

  val step : t -> tid:int -> bool
  (** Take one task (own queue, then one steal lap) and run it to its
      next suspension point. [false] iff no task was found. *)

  val drain : t -> tid:int -> int
  (** [step] until idle; the number of slices executed. Single-threaded
      completeness: with no other worker active, [drain] returning with
      {!pending_fibers}[ > 0] means some fiber is suspended on a
      promise nothing will complete — a user-level deadlock. *)

  (** {2 Probes} (racy snapshots; exact at quiescence) *)

  val pending_fibers : t -> int
  (** Fibers spawned and not yet completed (running, queued, or
      suspended). *)

  val fibers_spawned : t -> int

  val fibers_completed : t -> int

  val steal_attempts : t -> int
  (** Steal laps entered (local queue found empty). *)

  val steals_won : t -> int
  (** Tasks obtained from another worker's queue. *)

  val run_queue_depth : t -> int -> int
  (** Approximate depth of one run-queue, from the push/take counters.
      Raises [Invalid_argument] for an out-of-range index. *)

  val register_metrics : t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
  (** Attach the always-on scheduler counters
      ([prefix ^ ".fibers_spawned"/".fibers_completed"/
      ".steal_attempts"/".steals_won"], a [".pending_fibers"] gauge)
      and, per run-queue [i], [prefix ^ ".rq<i>.pushes"/".takes"] plus
      the backend's own uniform registration under [".rq<i>"] (at
      minimum its [".depth"] gauge). *)
end

module Make (A : Wfq_primitives.Atomic_intf.ATOMIC) (Q : RUN_QUEUE) : S
(** Build a scheduler over an atomic plane and a run-queue backend.
    Instantiating [Q] over the same [A] keeps the whole system on one
    plane — mandatory for simulator runs. *)

(** {2 Run-queue backends}

    Pre-packaged {!RUN_QUEUE}s, each in the paper's fastest slow-path
    configuration (opt (1+2)). *)

module Rq_kp (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE
(** The wait-free Kogan-Petrank queue, opt WF (1+2). *)

module Rq_fps_pooled (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE
(** The fast-path/slow-path queue with segment-pooled nodes and
    descriptors — the lowest-allocation backend. *)

module Rq_shard (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE
(** A 2-shard round-robin {!Wfq_shard} front-end per run-queue:
    k-relaxed order within one worker's queue, strict per shard. *)

module Rq_ring (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE
(** The bounded-memory {!Wfq_core.Ring_queue}, 4096 slots per worker:
    zero allocation per task hand-off. A worker exceeding 4096 queued
    slices sees [Wfq_core.Ring_queue.Ring_full] — a bound no workload
    here approaches. *)

module Rq_of
    (B : Wfq_core.Queue_intf.BACKEND)
    (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE
(** Any registered backend as a run-queue, in its registered default
    configuration: [Make (A) (Rq_of (B) (A))] builds a scheduler on
    backend [B] with no per-backend adapter — e.g.
    [Rq_of ((val Wfq_core.Backends.find "polylog")) (A)]. *)
