(* Effect-based fiber scheduler over wait-free run-queues.

   N workers (OCaml domains in production, or plain callers of [step]
   under the deterministic simulator) each own one MPMC run-queue of
   tasks. A task is a slice of a fiber: either the start of a fresh
   fiber or a captured continuation to resume. Fibers interact with the
   scheduler through effects ([Yield], [Spawn], [Await] and the
   internal [Complete]); the worker executing a slice installs a
   {e shallow} handler for exactly that slice.

   Why shallow handlers: a fiber suspended on this scheduler is resumed
   by {e whichever} worker dequeues it — usually not the worker that
   started it. A deep handler is captured inside the continuation, so
   the resuming worker would run the fiber under the {e original}
   worker's handler, and any thread identity closed over in it would be
   stale: two domains would perform queue operations under the same
   [tid], breaking the Kogan-Petrank per-thread state discipline. With
   shallow handlers every resumption installs a handler freshly
   constructed by the executing worker, closing over {e its} tid, so
   the tid used for every run-queue operation is always the operating
   domain's own. (This also keeps the core simulator-runnable: effects
   the handler does not recognize — the simulator's yield-per-access
   effects — are forwarded to the outer handler by returning [None].)

   Progress and termination: [outstanding] counts fibers spawned but
   not yet completed. It is incremented {e before} the fresh task is
   enqueued and decremented only by [Complete], so [outstanding = 0]
   implies no task exists in any queue and none is mid-execution —
   the condition under which [run]'s workers exit. A fiber suspended
   on [Await] sits in no queue, but its own spawn count keeps
   [outstanding] positive until it completes.

   The await/complete hand-off is the one genuinely racy protocol the
   scheduler adds on top of the queues (stealing is just a dequeue by
   another tid, already covered by the queue's own linearizability):
   [Await] publishes the waiter with a CAS on the promise cell, and
   [Complete] claims the whole waiter list with an exchange. If the
   exchange lands first, the waiter's CAS fails (the cell changed) and
   the awaiter re-reads the completed value — no lost wakeup; if the
   CAS lands first, the exchange sees the waiter and re-enqueues it.
   Both cells live on the [A] functor plane, so DPOR explores exactly
   these interleavings (test_sched.ml litmus). *)

module C = Wfq_obsv.Counter
module H = Wfq_obsv.Histogram
module Steal_order = Wfq_shard.Steal_order

module type RUN_QUEUE = Wfq_core.Queue_intf.RUN_QUEUE

(* ------------------------------------------------------------------ *)
(* Observability handle                                               *)
(* ------------------------------------------------------------------ *)

(* Same split as Kp_queue/Kp_queue_fps: always-on Counter cells live in
   [t] and are attached by [register_metrics]; the [?obsv] handle
   carries the two histograms whose sampling is opt-in. All writes are
   per-tid single-writer plain cells, so an instrumented scheduler
   performs no extra shared-cell traffic and its DPOR traces are
   identical to an uninstrumented one's. *)
type metrics = { m_depth : H.t; m_latency : H.t }

let metrics registry ~prefix ~slots =
  {
    m_depth =
      Wfq_obsv.Metrics.histogram registry ~name:(prefix ^ ".runq_depth")
        ~slots;
    m_latency =
      Wfq_obsv.Metrics.histogram registry
        ~name:(prefix ^ ".fiber_latency_ns") ~slots;
  }

(* ------------------------------------------------------------------ *)
(* The scheduler functor                                              *)
(* ------------------------------------------------------------------ *)

module type S = sig
  type t
  type 'a promise

  val name : string

  val create :
    ?obsv:metrics -> ?clock:(unit -> int) -> num_workers:int -> unit -> t

  val num_workers : t -> int

  (* Fiber-context operations (require a worker's handler). *)
  val spawn : (unit -> 'a) -> 'a promise
  val spawn_many : (unit -> 'a) list -> 'a promise list
  val yield : unit -> unit
  val await : 'a promise -> 'a

  (* External operations. *)
  val submit : t -> tid:int -> (unit -> 'a) -> 'a promise
  val submit_batch : t -> tid:int -> (unit -> 'a) list -> 'a promise list
  val result : 'a promise -> ('a, exn) result option
  val run : t -> (unit -> 'a) -> 'a

  (* Deterministic core (single caller per tid at a time). *)
  val step : t -> tid:int -> bool
  val drain : t -> tid:int -> int

  (* Probes (racy snapshots; exact at quiescence). *)
  val pending_fibers : t -> int
  val fibers_spawned : t -> int
  val fibers_completed : t -> int
  val steal_attempts : t -> int
  val steals_won : t -> int
  val run_queue_depth : t -> int -> int

  val register_metrics : t -> Wfq_obsv.Metrics.t -> prefix:string -> unit
end

module Make
    (A : Wfq_primitives.Atomic_intf.ATOMIC)
    (Q : RUN_QUEUE) : S = struct
  (* A fiber's overall computation always has type [unit]: user bodies
     are wrapped to deliver their value (or exception) to the fiber's
     promise via [Complete], so every captured continuation is a
     [(_, unit) Effect.Shallow.continuation]. *)
  type 'a state =
    | Completed of ('a, exn) result
    | Pending of ('a, unit) Effect.Shallow.continuation list
        (** waiters, most recent first; woken in FIFO order *)

  type 'a promise = 'a state A.t

  type task =
    | Fresh of (unit -> unit)  (** start a new fiber *)
    | Resume : ('a, unit) Effect.Shallow.continuation * 'a -> task
        (** resume a suspended fiber with an effect's result *)
    | Cancel : ('a, unit) Effect.Shallow.continuation * exn -> task
        (** resume a suspended fiber by raising at its await point
            (the awaited fiber failed) *)

  (* [Spawn]'s answer type must determine ['a], but ['a promise] is
     abstract over [A.t] and so not known injective; the concrete box
     restores deducibility. *)
  type 'a pbox = Prom of 'a promise

  type _ Effect.t +=
    | Yield : unit Effect.t
    | Await : 'a promise -> 'a Effect.t
    | Spawn : (unit -> 'a) -> 'a pbox Effect.t
    | Spawn_many : (unit -> 'a) list -> 'a pbox list Effect.t
          (** fan-out: all fresh tasks pushed with one run-queue batch *)
    | Complete : 'a promise * ('a, exn) result * int -> unit Effect.t
          (** internal: fiber body finished; the [int] is its spawn
              timestamp for the latency histogram *)

  type t = {
    workers : int;
    queues : task Q.t array;  (** run-queue [i] is worker [i]'s *)
    outstanding : int A.t;  (** fibers spawned and not yet completed *)
    (* Always-on single-writer stats, indexed by the executing tid. *)
    spawned : C.t;
    completed : C.t;
    steal_attempts : C.t;  (** empty-local-queue sweeps entered *)
    steals_won : C.t;  (** tasks taken from another worker's queue *)
    rq_push : C.t array;  (** per queue: tasks pushed, by pusher tid *)
    rq_take : C.t array;  (** per queue: tasks taken, by taker tid *)
    obsv : metrics option;
    clock : (unit -> int) option;  (** monotonic ns for fiber latency *)
  }

  let name = "sched(" ^ Q.name ^ ")"

  let create ?obsv ?clock ~num_workers () =
    if num_workers <= 0 then invalid_arg "Sched.create: num_workers";
    let counter () = C.create ~slots:num_workers () in
    {
      workers = num_workers;
      queues =
        Array.init num_workers (fun _ ->
            Q.create ~num_threads:num_workers ());
      outstanding = A.make 0;
      spawned = counter ();
      completed = counter ();
      steal_attempts = counter ();
      steals_won = counter ();
      rq_push = Array.init num_workers (fun _ -> counter ());
      rq_take = Array.init num_workers (fun _ -> counter ());
      obsv;
      clock;
    }

  let num_workers t = t.workers
  let now t = match t.clock with Some f -> f () | None -> 0
  let pending_fibers t = A.get t.outstanding
  let fibers_spawned t = C.total t.spawned
  let fibers_completed t = C.total t.completed
  let steal_attempts t = C.total t.steal_attempts
  let steals_won t = C.total t.steals_won

  let run_queue_depth t i =
    if i < 0 || i >= t.workers then invalid_arg "Sched.run_queue_depth";
    C.total t.rq_push.(i) - C.total t.rq_take.(i)

  (* --- task plumbing ---------------------------------------------- *)

  (* All pushes are local (to the pushing worker's own queue): spawns,
     yields and wakeups land where they happened, and redistribution is
     the stealers' job — the classic work-stealing locality split. *)
  let push_local t ~tid task =
    Q.enqueue t.queues.(tid) ~tid task;
    C.incr t.rq_push.(tid) ~slot:tid;
    match t.obsv with
    | Some m ->
        (* Approximate depth from the push/take counters: two plain
           sums over [workers] padded cells — no atomic traffic, cheap
           next to the enqueue itself. *)
        let d = C.total t.rq_push.(tid) - C.total t.rq_take.(tid) in
        H.record m.m_depth ~slot:tid (max d 0)
    | None -> ()

  (* Fan-out counterpart of [push_local]: one backend-native run-queue
     batch covers every task (docs/BATCHING.md) — on the KP-family
     backends the whole fan-out linearizes at a single append CAS. *)
  let push_local_batch t ~tid tasks =
    match tasks with
    | [] -> ()
    | tasks ->
        let k = List.length tasks in
        Q.enqueue_batch t.queues.(tid) ~tid tasks;
        C.add t.rq_push.(tid) ~slot:tid k;
        (match t.obsv with
        | Some m ->
            let d = C.total t.rq_push.(tid) - C.total t.rq_take.(tid) in
            H.record m.m_depth ~slot:tid (max d 0)
        | None -> ())

  let wrap_body pr t0 f () =
    let r = match f () with v -> Ok v | exception e -> Error e in
    Effect.perform (Complete (pr, r, t0))

  (* Spawn accounting order matters: [outstanding] rises before the
     task becomes visible, so a worker can never observe an empty
     system ([outstanding = 0]) while a runnable task exists. *)
  let spawn_into t ~tid f =
    ignore (A.fetch_and_add t.outstanding 1 : int);
    C.incr t.spawned ~slot:tid;
    let pr = A.make (Pending []) in
    push_local t ~tid (Fresh (wrap_body pr (now t) f));
    pr

  (* Batch spawn: the whole fan-out is accounted (outstanding up by
     [k] first, same visibility argument as [spawn_into]) and then
     pushed as one run-queue batch. *)
  let spawn_many_into t ~tid fs =
    match fs with
    | [] -> []
    | [ f ] -> [ spawn_into t ~tid f ]
    | fs ->
        let k = List.length fs in
        ignore (A.fetch_and_add t.outstanding k : int);
        C.add t.spawned ~slot:tid k;
        let t0 = now t in
        let entries =
          List.map
            (fun f ->
              let pr = A.make (Pending []) in
              (pr, Fresh (wrap_body pr t0 f)))
            fs
        in
        push_local_batch t ~tid (List.map snd entries);
        List.map fst entries

  let submit t ~tid f =
    if tid < 0 || tid >= t.workers then invalid_arg "Sched.submit: tid";
    spawn_into t ~tid f

  let submit_batch t ~tid fs =
    if tid < 0 || tid >= t.workers then invalid_arg "Sched.submit_batch: tid";
    spawn_many_into t ~tid fs

  let result p =
    match A.get p with Completed r -> Some r | Pending _ -> None

  (* Complete the promise and wake its waiters. The exchange claims the
     whole waiter list atomically against concurrent [Await] CASes. The
     completed fiber's [outstanding] decrement comes last: until then
     the system still counts it, so no worker can exit between the
     value becoming visible and the waiters being requeued. *)
  let complete : type a. t -> tid:int -> a promise -> (a, exn) result
      -> int -> unit =
   fun t ~tid pr r t0 ->
    (match A.exchange pr (Completed r) with
    | Pending waiters ->
        (* Wake every waiter with one run-queue batch, FIFO order
           (waiters are stored most recent first). *)
        push_local_batch t ~tid
          (List.rev_map
             (fun k ->
               match r with
               | Ok v -> Resume (k, v)
               | Error e -> Cancel (k, e))
             waiters)
    | Completed _ ->
        (* A promise is completed exactly once, by its own fiber. *)
        assert false);
    C.incr t.completed ~slot:tid;
    (match (t.obsv, t.clock) with
    | Some m, Some _ -> H.record m.m_latency ~slot:tid (max 0 (now t - t0))
    | _ -> ());
    ignore (A.fetch_and_add t.outstanding (-1) : int)

  (* --- the per-slice handler -------------------------------------- *)

  let rec handler : t -> tid:int -> (unit, unit) Effect.Shallow.handler =
   fun t ~tid ->
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (c, unit) Effect.Shallow.continuation) ->
                  push_local t ~tid (Resume (k, ())))
          | Spawn f ->
              Some
                (fun k ->
                  let pr = spawn_into t ~tid f in
                  Effect.Shallow.continue_with k (Prom pr) (handler t ~tid))
          | Spawn_many fs ->
              Some
                (fun k ->
                  let prs = spawn_many_into t ~tid fs in
                  Effect.Shallow.continue_with k
                    (List.map (fun p -> Prom p) prs)
                    (handler t ~tid))
          | Await p -> Some (fun k -> await_with t ~tid p k)
          | Complete (pr, r, t0) ->
              Some
                (fun k ->
                  complete t ~tid pr r t0;
                  Effect.Shallow.continue_with k () (handler t ~tid))
          | _ -> None (* forward (e.g. the simulator's yields) *));
    }

  and await_with : type a. t -> tid:int -> a promise
      -> (a, unit) Effect.Shallow.continuation -> unit =
   fun t ~tid p k ->
    match A.get p with
    | Completed (Ok v) ->
        Effect.Shallow.continue_with k v (handler t ~tid)
    | Completed (Error e) ->
        Effect.Shallow.discontinue_with k e (handler t ~tid)
    | Pending waiters as old ->
        if A.compare_and_set p old (Pending (k :: waiters)) then ()
          (* Suspended: the completing fiber now owns the wakeup. *)
        else await_with t ~tid p k

  let exec t ~tid task =
    match task with
    | Fresh body ->
        Effect.Shallow.continue_with (Effect.Shallow.fiber body) ()
          (handler t ~tid)
    | Resume (k, v) -> Effect.Shallow.continue_with k v (handler t ~tid)
    | Cancel (k, e) -> Effect.Shallow.discontinue_with k e (handler t ~tid)

  (* --- taking work ------------------------------------------------- *)

  (* Own queue first; on empty, one {!Steal_order} lap over the other
     workers' queues, with the same [is_empty] pre-check discipline as
     the shard sweep (most swept queues are empty; a full dequeue on an
     empty KP queue still runs the phase/descriptor ceremony). *)
  let take t ~tid =
    match Q.dequeue t.queues.(tid) ~tid with
    | Some _ as r ->
        C.incr t.rq_take.(tid) ~slot:tid;
        r
    | None ->
        let n = t.workers in
        if n = 1 then None
        else begin
          C.incr t.steal_attempts ~slot:tid;
          let rec sweep i =
            if i = n then None
            else
              let v = Steal_order.visit ~n ~start:tid i in
              if Q.is_empty t.queues.(v) then sweep (i + 1)
              else
                match Q.dequeue t.queues.(v) ~tid with
                | Some _ as r ->
                    C.incr t.rq_take.(v) ~slot:tid;
                    C.incr t.steals_won ~slot:tid;
                    r
                | None -> sweep (i + 1)
          in
          sweep 1
        end

  let step t ~tid =
    match take t ~tid with
    | Some task ->
        exec t ~tid task;
        true
    | None -> false

  let drain t ~tid =
    let rec go n = if step t ~tid then go (n + 1) else n in
    go 0

  (* --- fiber-context API ------------------------------------------- *)

  let yield () = Effect.perform Yield
  let await p = Effect.perform (Await p)
  let spawn f = match Effect.perform (Spawn f) with Prom p -> p

  let spawn_many fs =
    match fs with
    | [] -> []
    | fs ->
        List.map (fun (Prom p) -> p) (Effect.perform (Spawn_many fs))

  (* --- parallel runner --------------------------------------------- *)

  (* Work until the system is empty: a failed take with [outstanding]
     still positive means some fiber is mid-execution on another worker
     or suspended on a promise a running fiber will complete — back
     off and retry. [outstanding = 0] is stable (only fibers create
     fibers, and external submits are the caller's responsibility), so
     exiting is safe.

     The idle wait is the shared clamped {!Wfq_primitives.Backoff}
     schedule rather than a raw [cpu_relax] per probe: each failed
     probe doubles the spin-wait (16 .. 4096 relax hints), reset as
     soon as a task is found. An idle worker therefore re-enters the
     steal sweep geometrically less often — steal_attempts drops by an
     order of magnitude on imbalanced workloads (BENCH_sched.json) —
     while the clamp keeps the worst extra wake-up latency at one
     bounded spin, leaving fiber p99 unchanged. *)
  let worker_loop t ~tid =
    let b = Wfq_primitives.Backoff.create () in
    let rec go () =
      if step t ~tid then begin
        Wfq_primitives.Backoff.reset b;
        go ()
      end
      else if A.get t.outstanding > 0 then begin
        Wfq_primitives.Backoff.once b;
        go ()
      end
    in
    go ()

  let run t main =
    let pr = submit t ~tid:0 main in
    let others =
      Array.init (t.workers - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~tid:(i + 1)))
    in
    worker_loop t ~tid:0;
    Array.iter Domain.join others;
    match A.get pr with
    | Completed (Ok v) -> v
    | Completed (Error e) -> raise e
    | Pending _ ->
        (* outstanding hit 0, so every fiber — main included —
           completed. *)
        assert false

  (* --- observability ------------------------------------------------ *)

  let register_metrics t registry ~prefix =
    let open Wfq_obsv in
    Metrics.register registry
      (prefix ^ ".fibers_spawned")
      (Metrics.Counter t.spawned);
    Metrics.register registry
      (prefix ^ ".fibers_completed")
      (Metrics.Counter t.completed);
    Metrics.register registry
      (prefix ^ ".steal_attempts")
      (Metrics.Counter t.steal_attempts);
    Metrics.register registry (prefix ^ ".steals_won")
      (Metrics.Counter t.steals_won);
    Metrics.gauge registry
      ~name:(prefix ^ ".pending_fibers")
      (fun () -> pending_fibers t);
    Array.iteri
      (fun i q ->
        let p = Printf.sprintf "%s.rq%d" prefix i in
        Metrics.register registry (p ^ ".pushes")
          (Metrics.Counter t.rq_push.(i));
        Metrics.register registry (p ^ ".takes")
          (Metrics.Counter t.rq_take.(i));
        (* The uniform RUN_QUEUE hook: every backend contributes at
           least its depth gauge here, plus its own diagnostics. *)
        Q.register_metrics q registry ~prefix:p)
      t.queues
end

(* ------------------------------------------------------------------ *)
(* Run-queue backends                                                 *)
(* ------------------------------------------------------------------ *)

(* Each backend is the paper's fastest slow-path configuration
   (opt (1+2): Help_one_cyclic + Phase_counter), matching the shard
   front-end's choice. *)

module Rq_kp (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE = struct
  module Kp = Wfq_core.Kp_queue.Make (A)
  include Kp

  let name = "kp_opt12"

  let create ~num_threads () =
    Kp.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
      ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ()
end

module Rq_fps_pooled (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE =
struct
  module Fq = Wfq_core.Kp_queue_fps.Make (A)
  include Fq

  let name = "fps_pooled"

  let create ~num_threads () =
    Fq.create_with ~pool:true ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
      ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ()
end

module Rq_shard (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE = struct
  module Sh = Wfq_shard.Shard.Make (A)
  include Sh

  let name = "shard_rr2"

  let create ~num_threads () =
    Sh.create ~policy:Wfq_shard.Shard.Round_robin ~shards:2 ~num_threads ()
end

module Rq_ring (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE = struct
  module Rg = Wfq_core.Ring_queue.Make (A)
  include Rg

  let name = "ring"

  (* 4096 pre-allocated slots per worker: zero allocation per task
     hand-off and array locality on the hot path. The bound is a real
     contract — a worker with more than 4096 queued slices sees
     [Ring_full] from its push — but a run-queue's depth is bounded by
     live fibers, far below this in every workload here. *)
  let create ~num_threads () = Rg.create_with ~capacity:4096 ~num_threads ()
end

(* The registry route: any {!Wfq_core.Queue_intf.BACKEND} as a
   run-queue. A QUEUE_BACKEND's [create] carries the optional [?obsv] /
   [?pool] configuration hooks, so the only adaptation needed is
   pinning [create] to the plain RUN_QUEUE arity — the backend's
   registered default configuration applies. *)
module Rq_of
    (B : Wfq_core.Queue_intf.BACKEND)
    (A : Wfq_primitives.Atomic_intf.ATOMIC) : RUN_QUEUE = struct
  module Q = B.Make (A)
  include Q

  let create ~num_threads () = Q.create ~num_threads ()
end
