(* Tests for Herlihy's universal construction and its queue instance:
   sequential semantics, wait-freedom under stalls (announce-based
   helping), bounded steps, model-checked linearizability, and domain
   stress. *)

module A = Wfq_primitives.Real_atomic
module SA = Wfq_sim.Sim_atomic
module S = Wfq_sim.Scheduler
module E = Wfq_sim.Explore
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker
module Uq = Wfq_universal.Universal.Queue (A)
module UqSim = Wfq_universal.Universal.Queue (SA)
module Qo = Wfq_universal.Universal.Queue_object

(* --------------------- sequential object ------------------------- *)

let test_queue_object () =
  let st = Qo.initial in
  let st, r1 = Qo.apply st (Qo.Enq 1) in
  let st, r2 = Qo.apply st (Qo.Enq 2) in
  Alcotest.(check bool) "enq responses" true (r1 = Qo.Done && r2 = Qo.Done);
  Alcotest.(check (list int)) "contents" [ 1; 2 ] (Qo.to_list st);
  let st, g1 = Qo.apply st Qo.Deq in
  let st, g2 = Qo.apply st Qo.Deq in
  let st, g3 = Qo.apply st Qo.Deq in
  Alcotest.(check bool) "fifo" true (g1 = Qo.Got 1 && g2 = Qo.Got 2);
  Alcotest.(check bool) "empty" true (g3 = Qo.Empty);
  Alcotest.(check (list int)) "drained" [] (Qo.to_list st)

(* ----------------------- sequential queue ------------------------ *)

let test_sequential_differential () =
  let q = Uq.create ~num_threads:2 () in
  let model = Queue.create () in
  let rng = Wfq_primitives.Rng.create ~seed:5 in
  for i = 1 to 1_000 do
    let tid = Wfq_primitives.Rng.below rng 2 in
    if Wfq_primitives.Rng.bool rng then begin
      Uq.enqueue q ~tid i;
      Queue.push i model
    end
    else if Uq.dequeue q ~tid <> Queue.take_opt model then
      Alcotest.fail "diverged from model"
  done;
  Alcotest.(check (list int)) "final contents"
    (List.of_seq (Queue.to_seq model))
    (Uq.to_list q)

(* -------------------- simulator: linearizability ------------------ *)

let scenario scripts () =
  let num_threads = List.length scripts in
  let q = UqSim.create ~num_threads () in
  let hist = H.create () in
  let fiber tid script () =
    List.iter
      (function
        | `Enq v ->
            H.call hist ~thread:tid (H.Enq v);
            UqSim.enqueue q ~tid v;
            H.return hist ~thread:tid H.Done
        | `Deq -> (
            H.call hist ~thread:tid H.Deq;
            match UqSim.dequeue q ~tid with
            | Some v -> H.return hist ~thread:tid (H.Got v)
            | None -> H.return hist ~thread:tid H.Empty))
      script
  in
  let check (_ : S.result) =
    if C.is_linearizable (H.completed hist) then Ok ()
    else
      Error
        (Format.asprintf "not linearizable:@.%a" C.pp_history
           (H.completed hist))
  in
  (Array.of_list (List.mapi fiber scripts), check)

let systematic_case (name, scripts, budget) =
  Alcotest.test_case name `Quick (fun () ->
      let report =
        E.preemption_bounded ~budget ~max_schedules:60_000
          ~make:(scenario scripts) ()
      in
      (match report.E.failure with
      | Some (_, msg) -> Alcotest.fail msg
      | None -> ());
      Alcotest.(check bool) "exhausted" true report.E.exhausted)

let systematic_tests =
  List.map systematic_case
    [
      ("enq race (<=2 preemptions)", [ [ `Enq 1 ]; [ `Enq 2 ] ], 2);
      ("enq vs deq (<=2 preemptions)", [ [ `Enq 1 ]; [ `Deq ] ], 2);
      ("pairs (<=2 preemptions)", [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ], 2);
    ]

let test_fuzz () =
  let scripts = [ [ `Enq 1; `Deq; `Enq 2 ]; [ `Deq; `Enq 3; `Deq ] ] in
  let report = E.fuzz ~count:400 ~make:(scenario scripts) () in
  match report.E.failure with
  | Some (_, msg) -> Alcotest.fail msg
  | None -> ()

(* ------------------ wait-freedom: stall helping ------------------- *)

let test_stalled_operation_is_threaded () =
  (* Thread 0 announces an enqueue then stalls; thread 1's subsequent
     operations must adopt it via the turn rule: the element appears in
     the queue even though its owner never ran again. *)
  let probe =
    S.run
      [|
        (fun () ->
          let q = UqSim.create ~num_threads:2 () in
          UqSim.enqueue q ~tid:0 1);
      |]
  in
  let op_steps = probe.S.steps.(0) in
  let helped = ref 0 and total = ref 0 in
  for stall_at = 1 to op_steps - 1 do
    let q = UqSim.create ~num_threads:2 () in
    let fibers =
      [|
        (fun () -> UqSim.enqueue q ~tid:0 111);
        (fun () ->
          (* Two ops so the helper passes thread 0's turn slot. *)
          UqSim.enqueue q ~tid:1 222;
          UqSim.enqueue q ~tid:1 333);
      |]
    in
    let res = S.run ~stalls:[ (0, stall_at) ] fibers in
    (match res.S.outcome with
    | S.Step_limit_hit | S.Aborted ->
        Alcotest.fail "peer failed to make progress"
    | S.All_finished | S.Only_stalled_left -> ());
    incr total;
    let contents = S.ignore_yields (fun () -> UqSim.to_list q) in
    Alcotest.(check bool) "peer ops completed" true
      (List.mem 222 contents && List.mem 333 contents);
    if List.mem 111 contents then incr helped
  done;
  (* The announce write happens within the first few steps; from then on
     the turn rule guarantees adoption. *)
  Alcotest.(check bool)
    (Printf.sprintf "stalled op adopted at most stall points (%d/%d)"
       !helped !total)
    true
    (!helped >= !total - 4)

let test_steps_bounded () =
  (* One enqueue vs k peer enqueues: worst-case steps of thread 0 must
     not scale with k (wait-freedom). *)
  let make k =
    let q = UqSim.create ~num_threads:2 () in
    [|
      (fun () -> UqSim.enqueue q ~tid:0 0);
      (fun () ->
        for i = 1 to k do
          UqSim.enqueue q ~tid:1 i
        done);
    |]
  in
  let worst k =
    let acc = ref 0 in
    for seed = 0 to 199 do
      let res = S.run ~strategy:(S.Random_seeded seed) (make k) in
      (match res.S.error with
      | Some e -> Alcotest.fail (Printexc.to_string e)
      | None -> ());
      acc := max !acc res.S.steps.(0)
    done;
    !acc
  in
  let w5 = worst 5 and w50 = worst 50 in
  Alcotest.(check bool)
    (Printf.sprintf "steps stable: k=5 -> %d, k=50 -> %d" w5 w50)
    true
    (w50 <= (2 * w5) + 16)

(* ------------------------- domains -------------------------------- *)

let test_domain_pairs () =
  let threads = 4 and iters = 1_000 in
  let q = Uq.create ~num_threads:threads () in
  let empties = Atomic.make 0 in
  let ds =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Uq.enqueue q ~tid ((tid * iters) + i);
              match Uq.dequeue q ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no empties in pairs" 0 (Atomic.get empties);
  Alcotest.(check int) "drained" 0 (Uq.length q)

let test_create_validation () =
  Alcotest.check_raises "num_threads"
    (Invalid_argument "Universal.create: num_threads") (fun () ->
      ignore (Uq.create ~num_threads:0 ()))

let () =
  Alcotest.run "universal"
    [
      ( "sequential",
        [
          Alcotest.test_case "queue object semantics" `Quick
            test_queue_object;
          Alcotest.test_case "queue ≡ model" `Quick
            test_sequential_differential;
          Alcotest.test_case "create validation" `Quick
            test_create_validation;
        ] );
      ("systematic", systematic_tests);
      ( "fuzz",
        [ Alcotest.test_case "mixed scripts (400 seeds)" `Quick test_fuzz ]
      );
      ( "wait-freedom",
        [
          Alcotest.test_case "stalled op adopted via turn rule" `Quick
            test_stalled_operation_is_threaded;
          Alcotest.test_case "steps bounded vs interference" `Quick
            test_steps_bounded;
        ] );
      ( "domains",
        [ Alcotest.test_case "pairs stress" `Quick test_domain_pairs ] );
    ]
