(* Model checking the queue algorithms under the deterministic simulator.

   The queues are instantiated with Sim_atomic, so every shared access is
   a scheduling point; scenarios are explored with preemption-bounded
   systematic search (every schedule with <= N preemptions) plus seeded
   random fuzzing, and every explored interleaving's history must be
   linearizable against the sequential FIFO spec.

   Also here: the paper's progress claims, made observable —
   - helping: a thread stalled mid-operation still gets its operation
     completed by peers (wait-freedom's mechanism, §3.1);
   - step bounds: no KP operation exceeds a schedule-independent step
     bound, while the MS queue admits schedules whose enqueue step count
     grows with the interference (lock-freedom only). *)

module S = Wfq_sim.Scheduler
module SA = Wfq_sim.Sim_atomic
module E = Wfq_sim.Explore
module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker

module Ms = Wfq_core.Ms_queue.Make (SA)
module Kp = Wfq_core.Kp_queue.Make (SA)
module Kp_hp = Wfq_core.Kp_queue_hp.Make (SA)
module Lms = Wfq_core.Lms_queue.Make (SA)

type script = [ `Enq of int | `Deq ] list

(* A queue packaged for scenario building. *)
type 'q sim_queue = {
  make : num_threads:int -> 'q;
  enq : 'q -> tid:int -> int -> unit;
  deq : 'q -> tid:int -> int option;
  contents : 'q -> int list;
}

type packed = Q : string * 'q sim_queue -> packed

let ms_q =
  Q
    ( "ms",
      {
        make = (fun ~num_threads -> Ms.create ~num_threads ());
        enq = (fun q ~tid v -> Ms.enqueue q ~tid v);
        deq = (fun q ~tid -> Ms.dequeue q ~tid);
        contents = Ms.to_list;
      } )

let kp_q name help phase =
  Q
    ( name,
      {
        make = (fun ~num_threads -> Kp.create_with ~help ~phase ~num_threads ());
        enq = (fun q ~tid v -> Kp.enqueue q ~tid v);
        deq = (fun q ~tid -> Kp.dequeue q ~tid);
        contents = Kp.to_list;
      } )

let kp_base =
  kp_q "kp-base" Wfq_core.Kp_queue.Help_all Wfq_core.Kp_queue.Phase_scan

let kp_opt12 =
  kp_q "kp-opt12" Wfq_core.Kp_queue.Help_one_cyclic
    Wfq_core.Kp_queue.Phase_counter

(* Tiny scan threshold + pool so recycling happens even in short
   simulated scenarios — maximal reuse pressure on the HP protocol. *)
let kp_hp_q =
  Q
    ( "kp-hp",
      {
        make =
          (fun ~num_threads ->
            Kp_hp.create ~scan_threshold:1 ~pool_capacity:64 ~num_threads ());
        enq = (fun q ~tid v -> Kp_hp.enqueue q ~tid v);
        deq = (fun q ~tid -> Kp_hp.dequeue q ~tid);
        contents = Kp_hp.to_list;
      } )

let lms_q =
  Q
    ( "lms",
      {
        make = (fun ~num_threads -> Lms.create ~num_threads ());
        enq = (fun q ~tid v -> Lms.enqueue q ~tid v);
        deq = (fun q ~tid -> Lms.dequeue q ~tid);
        contents = Lms.to_list;
      } )

let checked_queues = [ ms_q; kp_base; kp_opt12; kp_hp_q; lms_q ]

(* Build an explorable scenario: one fiber per script, with history
   recording; the check validates linearizability AND element
   conservation of the final structure. *)
let scenario (Q (_, ops)) (scripts : script list) () =
  let num_threads = List.length scripts in
  let q = ops.make ~num_threads in
  let hist = H.create () in
  let fiber tid script () =
    List.iter
      (function
        | `Enq v ->
            H.call hist ~thread:tid (H.Enq v);
            ops.enq q ~tid v;
            H.return hist ~thread:tid H.Done
        | `Deq -> (
            H.call hist ~thread:tid H.Deq;
            match ops.deq q ~tid with
            | Some v -> H.return hist ~thread:tid (H.Got v)
            | None -> H.return hist ~thread:tid H.Empty))
      script
  in
  let check (_ : S.result) =
    let completed = H.completed hist in
    let enqueued =
      List.filter_map
        (fun (c : H.completed) ->
          match c.op with H.Enq v -> Some v | H.Deq -> None)
        completed
    in
    let dequeued =
      List.filter_map
        (fun (c : H.completed) ->
          match c.response with H.Got v -> Some v | H.Done | H.Empty | H.Rejected -> None)
        completed
    in
    let left = S.ignore_yields (fun () -> ops.contents q) in
    let sort = List.sort compare in
    if sort enqueued <> sort (dequeued @ left) then
      Error
        (Printf.sprintf "conservation violated: %d enq, %d deq, %d left"
           (List.length enqueued) (List.length dequeued) (List.length left))
    else if not (C.is_linearizable completed) then
      Error
        (Format.asprintf "not linearizable:@.%a" C.pp_history completed)
    else Ok ()
  in
  (Array.of_list (List.mapi fiber scripts), check)

let scenarios : (string * script list) list =
  [
    ("2x enq race", [ [ `Enq 1 ]; [ `Enq 2 ] ]);
    ("enq vs deq on empty", [ [ `Enq 1 ]; [ `Deq ] ]);
    ("2x deq on singleton", [ [ `Deq ]; [ `Deq; `Enq 9 ] ]);
    ("pairs x2", [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ]);
    ("producer/consumer", [ [ `Enq 1; `Enq 2 ]; [ `Deq; `Deq ] ]);
    ("three-way", [ [ `Enq 1 ]; [ `Enq 2 ]; [ `Deq; `Deq; `Deq ] ]);
  ]

let explore_case (Q (name, _) as q) (scen_name, scripts) budget =
  Alcotest.test_case
    (Printf.sprintf "%s: %s (<=%d preemptions)" name scen_name budget)
    `Quick
    (fun () ->
      let report =
        E.preemption_bounded ~budget ~max_schedules:60_000
          ~make:(scenario q scripts) ()
      in
      (match report.E.failure with
      | Some (prefix, msg) ->
          Alcotest.fail
            (Printf.sprintf "schedule %s failed: %s"
               (String.concat "," (List.map string_of_int prefix))
               msg)
      | None -> ());
      Alcotest.(check bool) "search exhausted" true report.E.exhausted)

let fuzz_case (Q (name, _) as q) (scen_name, scripts) count =
  Alcotest.test_case
    (Printf.sprintf "%s: %s (fuzz %d)" name scen_name count)
    `Quick
    (fun () ->
      let report = E.fuzz ~count ~make:(scenario q scripts) () in
      match report.E.failure with
      | Some (_, msg) -> Alcotest.fail msg
      | None -> ())

let systematic_tests =
  (* Two-fiber scenarios are explored with every schedule of <= 2
     preemptions; the three-fiber scenario with <= 1 (the schedule count
     at budget 2 exceeds the per-test cap for the Help_all variants,
     whose operations scan the whole state array). *)
  List.concat_map
    (fun q ->
      List.map
        (fun ((_, scripts) as scen) ->
          explore_case q scen (if List.length scripts >= 3 then 1 else 2))
        scenarios)
    checked_queues

let pct_case (Q (name, _) as q) (scen_name, scripts) count =
  Alcotest.test_case
    (Printf.sprintf "%s: %s (pct %d)" name scen_name count)
    `Quick
    (fun () ->
      let report =
        E.pct ~count ~change_points:3 ~make:(scenario q scripts) ()
      in
      match report.E.failure with
      | Some (_, msg) -> Alcotest.fail msg
      | None -> ())

let fuzz_tests =
  let big_scenarios : (string * script list) list =
    [
      ( "4 threads mixed",
        [
          [ `Enq 1; `Deq; `Enq 2 ];
          [ `Deq; `Enq 3; `Deq ];
          [ `Enq 4; `Enq 5; `Deq ];
          [ `Deq; `Deq; `Enq 6 ];
        ] );
      ( "bursty",
        [
          [ `Enq 1; `Enq 2; `Enq 3; `Deq; `Deq; `Deq ];
          [ `Deq; `Deq; `Enq 7; `Enq 8; `Deq; `Deq ];
          [ `Enq 4; `Deq; `Enq 5; `Deq; `Enq 6; `Deq ];
        ] );
    ]
  in
  List.concat_map
    (fun q ->
      List.map (fun scen -> fuzz_case q scen 400) big_scenarios
      @ List.map (fun scen -> pct_case q scen 150) big_scenarios)
    checked_queues

(* ---------------------------------------------------------------- *)
(* Regression: help_finish_deq descriptor/head read ordering          *)
(* ---------------------------------------------------------------- *)

(* A stale helper suspended in help_finish_deq between reading
   [first.deq_tid] and re-validating [head == first] must not complete
   the owner's NEXT dequeue with THIS dequeue's value. The bug shape
   needs the same thread to dequeue twice with a helper around; the
   buggy ordering (validate head before reading the descriptor, as this
   repository's HP variant briefly did) is found by this exploration in
   a few thousand schedules, and by PCT within ~40 runs. *)
let test_hp_finish_deq_ordering_regression () =
  let scripts : script list = [ [ `Enq 1; `Enq 2; `Deq; `Deq ]; [ `Deq ] ] in
  let report =
    E.preemption_bounded ~budget:2 ~max_schedules:60_000
      ~make:(scenario kp_hp_q scripts) ()
  in
  (match report.E.failure with
  | Some (_, msg) -> Alcotest.fail msg
  | None -> ());
  Alcotest.(check bool) "exhausted" true report.E.exhausted

let test_hp_finish_deq_ordering_regression_pct () =
  let scripts : script list =
    [ [ `Enq 1; `Enq 2; `Enq 3 ]; [ `Deq; `Deq ]; [ `Deq ] ]
  in
  let report =
    E.pct ~count:1500 ~change_points:4 ~make:(scenario kp_hp_q scripts) ()
  in
  match report.E.failure with
  | Some (_, msg) -> Alcotest.fail msg
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Helping: a stalled thread's operation completes anyway            *)
(* ---------------------------------------------------------------- *)

(* Thread 0 publishes an enqueue and stalls after [stall_at] steps;
   thread 1 runs a full operation. If thread 0 got far enough to publish
   its descriptor, the element must be IN THE QUEUE even though thread 0
   never ran again. We scan all stall points covering the whole operation
   and assert that, from the publication point on, helping completes the
   operation. *)
let test_kp_helping_completes_stalled_enqueue () =
  (* Determine the step length of an uncontended enqueue. *)
  let probe =
    S.run
      [|
        (fun () ->
          let q = Kp.create ~num_threads:2 () in
          Kp.enqueue q ~tid:0 1);
      |]
  in
  let op_steps = probe.S.steps.(0) in
  Alcotest.(check bool) "operation is non-trivial" true (op_steps > 5);
  let helped = ref 0 in
  for stall_at = 1 to op_steps - 1 do
    let q = Kp.create ~num_threads:2 () in
    let fibers =
      [|
        (fun () -> Kp.enqueue q ~tid:0 111);
        (fun () -> Kp.enqueue q ~tid:1 222);
      |]
    in
    let res = S.run ~stalls:[ (0, stall_at) ] fibers in
    (match res.S.outcome with
    | S.Only_stalled_left | S.All_finished -> ()
    | S.Step_limit_hit | S.Aborted ->
        Alcotest.fail "helper failed to make progress");
    let contents = S.ignore_yields (fun () -> Kp.to_list q) in
    (* Thread 1's own operation must always complete (wait-freedom). *)
    Alcotest.(check bool)
      (Printf.sprintf "222 present (stall@%d)" stall_at)
      true
      (List.mem 222 contents);
    if List.mem 111 contents then incr helped
  done;
  (* The descriptor is published within the first few steps; from then on
     helpers must finish the stalled operation. *)
  Alcotest.(check bool)
    (Printf.sprintf "helping occurred at most stall points (%d/%d)" !helped
       (op_steps - 1))
    true
    (!helped >= op_steps - 1 - 6)

let test_kp_helping_completes_stalled_dequeue () =
  let probe =
    S.run
      [|
        (fun () ->
          let q = Kp.create ~num_threads:2 () in
          Kp.enqueue q ~tid:0 1;
          Kp.enqueue q ~tid:0 2;
          ignore (Kp.dequeue q ~tid:0));
      |]
  in
  let total_steps = probe.S.steps.(0) in
  let helped = ref 0 and attempts = ref 0 in
  for stall_at = 1 to total_steps - 1 do
    let q = Kp.create ~num_threads:2 () in
    (* Pre-fill sequentially inside fiber 0 before its dequeue. *)
    let fibers =
      [|
        (fun () ->
          Kp.enqueue q ~tid:0 1;
          Kp.enqueue q ~tid:0 2;
          ignore (Kp.dequeue q ~tid:0));
        (fun () -> ignore (Kp.dequeue q ~tid:1));
      |]
    in
    let res = S.run ~stalls:[ (0, stall_at) ] fibers in
    (match res.S.outcome with
    | S.Only_stalled_left | S.All_finished -> ()
    | S.Step_limit_hit | S.Aborted ->
        Alcotest.fail "helper failed to make progress");
    incr attempts;
    (* Thread 1's dequeue always completes; if thread 0 stalls after both
       its enqueues finished and its dequeue descriptor was published,
       the combined dequeues must have removed both elements. *)
    let contents = S.ignore_yields (fun () -> Kp.to_list q) in
    if List.length contents = 0 then incr helped
  done;
  Alcotest.(check bool)
    (Printf.sprintf "stalled dequeues helped to completion (%d/%d)" !helped
       !attempts)
    true (!helped > 0)

(* MS contrast: stalling the enqueuer before its linearizing CAS simply
   loses the operation — nobody can help, because nothing was published.
   (After the CAS, MS's lazy tail fix IS helped; both facts checked.) *)
let test_ms_stalled_enqueue_not_helped () =
  let q0 = Ms.create ~num_threads:2 () in
  ignore q0;
  let lost = ref 0 and completed = ref 0 in
  let probe =
    S.run
      [|
        (fun () ->
          let q = Ms.create ~num_threads:2 () in
          Ms.enqueue q ~tid:0 1);
      |]
  in
  let op_steps = probe.S.steps.(0) in
  for stall_at = 1 to op_steps - 1 do
    let q = Ms.create ~num_threads:2 () in
    let fibers =
      [|
        (fun () -> Ms.enqueue q ~tid:0 111);
        (fun () -> Ms.enqueue q ~tid:1 222);
      |]
    in
    ignore (S.run ~stalls:[ (0, stall_at) ] fibers);
    let contents = S.ignore_yields (fun () -> Ms.to_list q) in
    Alcotest.(check bool) "peer op completes (lock-freedom)" true
      (List.mem 222 contents);
    if List.mem 111 contents then incr completed else incr lost
  done;
  Alcotest.(check bool) "some stall points lose the op entirely" true
    (!lost > 0)

(* ---------------------------------------------------------------- *)
(* Step bounds: wait-freedom vs lock-freedom                         *)
(* ---------------------------------------------------------------- *)

(* Thread 0 performs ONE enqueue while thread 1 performs [k] enqueues.
   Over many adversarial (seeded random) schedules, record the maximum
   number of steps thread 0 needed. For the wait-free queue this bound
   must not grow with k; for the MS queue it does (each interference can
   fail thread 0's CAS). *)
let max_steps_one_vs_k ~make_fibers k seeds =
  let worst = ref 0 in
  for seed = 0 to seeds - 1 do
    let fibers = make_fibers k in
    let res = S.run ~strategy:(S.Random_seeded seed) fibers in
    (match res.S.error with
    | Some e -> Alcotest.fail (Printexc.to_string e)
    | None -> ());
    worst := max !worst res.S.steps.(0)
  done;
  !worst

let kp_fibers k =
  let q = Kp.create ~num_threads:2 () in
  [|
    (fun () -> Kp.enqueue q ~tid:0 0);
    (fun () ->
      for i = 1 to k do
        Kp.enqueue q ~tid:1 i
      done);
  |]

let ms_fibers k =
  let q = Ms.create ~num_threads:2 () in
  [|
    (fun () -> Ms.enqueue q ~tid:0 0);
    (fun () ->
      for i = 1 to k do
        Ms.enqueue q ~tid:1 i
      done);
  |]

let test_kp_steps_bounded () =
  let seeds = 300 in
  let w5 = max_steps_one_vs_k ~make_fibers:kp_fibers 5 seeds in
  let w50 = max_steps_one_vs_k ~make_fibers:kp_fibers 50 seeds in
  (* Wait-freedom: the worst case must not scale with the peer's op
     count. Allow constant slack for scheduling noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "KP worst steps stable: k=5 -> %d, k=50 -> %d" w5 w50)
    true
    (w50 <= (2 * w5) + 16)

let test_ms_steps_grow_with_interference () =
  let seeds = 300 in
  let w2 = max_steps_one_vs_k ~make_fibers:ms_fibers 2 seeds in
  let w80 = max_steps_one_vs_k ~make_fibers:ms_fibers 80 seeds in
  (* Lock-freedom only: adversarial schedules make thread 0 retry; worst
     case grows with available interference. *)
  Alcotest.(check bool)
    (Printf.sprintf "MS worst steps grow: k=2 -> %d, k=80 -> %d" w2 w80)
    true (w80 > w2)

(* The paper's rationale for optimization 1: under contention, Help_all
   lets every thread pile onto the same pending operation, wasting total
   work. Measure system-wide steps for the same workload under both
   helping policies across random schedules: the cyclic policy must do
   less total work on average. *)
let test_help_all_wastes_total_work () =
  let total_steps help seed =
    let q =
      Kp.create_with ~help ~phase:Wfq_core.Kp_queue.Phase_counter
        ~num_threads:6 ()
    in
    let fibers =
      Array.init 6 (fun tid () ->
          for i = 1 to 2 do
            Kp.enqueue q ~tid ((tid * 10) + i);
            ignore (Kp.dequeue q ~tid)
          done)
    in
    let res = S.run ~strategy:(S.Random_seeded seed) fibers in
    (match res.S.error with
    | Some e -> Alcotest.fail (Printexc.to_string e)
    | None -> ());
    res.S.total_steps
  in
  let seeds = 80 in
  let avg help =
    let sum = ref 0 in
    for seed = 0 to seeds - 1 do
      sum := !sum + total_steps help seed
    done;
    float_of_int !sum /. float_of_int seeds
  in
  let all = avg Wfq_core.Kp_queue.Help_all in
  let cyclic = avg Wfq_core.Kp_queue.Help_one_cyclic in
  Alcotest.(check bool)
    (Printf.sprintf "Help_all total work %.0f > Help_one_cyclic %.0f" all
       cyclic)
    true (all > cyclic)

(* ---------------------------------------------------------------- *)
(* SPSC ring under the simulator                                     *)
(* ---------------------------------------------------------------- *)

(* Lamport's ring is only safe for one producer and one consumer; its
   scenario therefore fixes the roles. The consumer polls a bounded
   number of times (an unbounded poll loop spins forever under the
   explorer's non-preemptive default schedule); whatever it managed to
   receive must be exactly the prefix 1..k, in order — no loss, no
   duplication, no reordering, under every explored interleaving. *)
module Spsc = Wfq_core.Spsc_queue.Make (SA)

let test_spsc_systematic () =
  let make () =
    let q = Spsc.create ~capacity:8 ~num_threads:2 () in
    let got = ref [] in
    let fibers =
      [|
        (fun () ->
          for i = 1 to 3 do
            if not (Spsc.try_enqueue q i) then failwith "unexpected full"
          done);
        (fun () ->
          for _ = 1 to 12 do
            match Spsc.dequeue q ~tid:1 with
            | Some v -> got := v :: !got
            | None -> ()
          done);
      |]
    in
    let check (_ : S.result) =
      let received = List.rev !got in
      let expected = List.init (List.length received) (fun i -> i + 1) in
      if received = expected then Ok ()
      else
        Error
          (Printf.sprintf "not an in-order prefix: [%s]"
             (String.concat ";" (List.map string_of_int received)))
    in
    (fibers, check)
  in
  let report =
    E.preemption_bounded ~budget:3 ~max_schedules:100_000 ~make ()
  in
  (match report.E.failure with
  | Some (_, msg) -> Alcotest.fail msg
  | None -> ());
  Alcotest.(check bool) "exhausted" true report.E.exhausted

(* ---------------------------------------------------------------- *)
(* qcheck: randomly generated scenarios, fuzzed schedules            *)
(* ---------------------------------------------------------------- *)

(* Generate 2-3 scripts of up to 3 ops each; enqueue values are made
   unique by position so delivered-twice bugs are visible. *)
let scripts_gen =
  QCheck2.Gen.(
    let* threads = int_range 2 3 in
    let* codes = list_size (int_range 2 9) (int_bound 2) in
    let scripts = Array.make threads [] in
    List.iteri
      (fun i code ->
        let tid = i mod threads in
        let op = if code = 2 then `Deq else `Enq (100 + i) in
        scripts.(tid) <- op :: scripts.(tid))
      codes;
    return (Array.to_list (Array.map List.rev scripts)))

let print_scripts scripts =
  String.concat " | "
    (List.map
       (fun script ->
         String.concat ";"
           (List.map
              (function `Enq v -> Printf.sprintf "E%d" v | `Deq -> "D")
              script))
       scripts)

let random_scenario_prop q scripts =
  let report = E.fuzz ~count:25 ~make:(scenario q scripts) () in
  match report.E.failure with
  | None -> true
  | Some (_, msg) -> QCheck2.Test.fail_report msg

let qcheck_tests =
  List.map
    (fun (Q (name, _) as q) ->
      QCheck_alcotest.to_alcotest
        (QCheck2.Test.make
           ~name:(name ^ ": random scenarios stay linearizable")
           ~count:30 ~print:print_scripts scripts_gen
           (random_scenario_prop q)))
    [ kp_base; kp_opt12; kp_hp_q ]

let () =
  Alcotest.run "sim-queues"
    [
      ("systematic (preemption-bounded)", systematic_tests);
      ("fuzz (random schedules)", fuzz_tests);
      ("qcheck scenarios", qcheck_tests);
      ( "spsc",
        [ Alcotest.test_case "ordered under <=3 preemptions" `Quick
            test_spsc_systematic ] );
      ( "regressions",
        [
          Alcotest.test_case "hp finish_deq ordering (systematic)" `Quick
            test_hp_finish_deq_ordering_regression;
          Alcotest.test_case "hp finish_deq ordering (pct)" `Quick
            test_hp_finish_deq_ordering_regression_pct;
        ] );
      ( "progress",
        [
          Alcotest.test_case "KP stalled enqueue is helped" `Quick
            test_kp_helping_completes_stalled_enqueue;
          Alcotest.test_case "KP stalled dequeue is helped" `Quick
            test_kp_helping_completes_stalled_dequeue;
          Alcotest.test_case "MS stalled enqueue is lost" `Quick
            test_ms_stalled_enqueue_not_helped;
          Alcotest.test_case "KP step bound independent of interference"
            `Quick test_kp_steps_bounded;
          Alcotest.test_case "MS steps grow with interference" `Quick
            test_ms_steps_grow_with_interference;
          Alcotest.test_case "Help_all wastes total work (opt-1 rationale)"
            `Quick test_help_all_wastes_total_work;
        ] );
    ]
