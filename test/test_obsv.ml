(* Tests for the Wfq_obsv observability layer and the counter-migration
   bugfixes that ride on it:

   - counter/histogram/metrics unit behaviour, including the exactness
     contract: single-writer Counter slots and multi-writer
     Shared_counter slots both sum to exact totals at quiescence;
   - the Registry.acquisitions fix — the old plain [int array] dropped
     increments under concurrent acquire; the Shared_counter replacement
     must account every acquisition exactly;
   - the Shard.check_quiescent_invariants fix — the check must be
     impossible to fail spuriously while operations are in flight;
   - Phase_counter per-thread phase monotonicity, with the lost-bump
     CAS counter surfacing footnote-3 races instead of losing them;
   - DPOR/scheduler invisibility: instrumented queues perform the same
     shared-memory steps as plain ones (obsv cells are plain OCaml
     slots, not Sim_atomic cells), and metric reads take no scheduler
     steps at all — they cannot deadlock or linearize into queue
     operations. *)

module O = Wfq_obsv
module S = Wfq_sim.Scheduler
module SA = Wfq_sim.Sim_atomic
module Ck = Wfq_sim.Check
module KpSim = Wfq_core.Kp_queue.Make (SA)
module Kp = Wfq_core.Kp_queue.Make (Wfq_primitives.Real_atomic)
module Fq = Wfq_core.Kp_queue_fps.Make (Wfq_primitives.Real_atomic)
module Sh = Wfq_shard.Shard.Make (Wfq_primitives.Real_atomic)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Counter / Shared_counter units                                     *)
(* ------------------------------------------------------------------ *)

let test_counter_basic () =
  let c = O.Counter.create ~slots:3 () in
  Alcotest.(check int) "fresh total" 0 (O.Counter.total c);
  O.Counter.incr c ~slot:0;
  O.Counter.add c ~slot:2 41;
  O.Counter.incr c ~slot:2;
  Alcotest.(check int) "slot 0" 1 (O.Counter.slot_value c ~slot:0);
  Alcotest.(check int) "slot 1" 0 (O.Counter.slot_value c ~slot:1);
  Alcotest.(check int) "slot 2" 42 (O.Counter.slot_value c ~slot:2);
  Alcotest.(check int) "total" 43 (O.Counter.total c);
  Alcotest.(check (array int)) "snapshot" [| 1; 0; 42 |]
    (O.Counter.snapshot c);
  Alcotest.check_raises "slots <= 0"
    (Invalid_argument "Obsv.Counter.create: slots") (fun () ->
      ignore (O.Counter.create ~slots:0 ()))

(* The single-writer contract end to end on real domains: one domain
   per slot, exact totals once the writers join. *)
let test_counter_single_writer_exact () =
  let domains = 4 and n = 25_000 in
  let c = O.Counter.create ~slots:domains () in
  Array.init domains (fun slot ->
      Domain.spawn (fun () ->
          for _ = 1 to n do
            O.Counter.incr c ~slot
          done))
  |> Array.iter Domain.join;
  Alcotest.(check int) "exact total" (domains * n) (O.Counter.total c);
  Array.iter
    (fun v -> Alcotest.(check int) "exact slot" n v)
    (O.Counter.snapshot c)

(* Shared_counter tolerates what Counter forbids: many domains on the
   SAME slot, still exact. This is the mechanism behind the
   Registry.acquisitions fix. *)
let test_shared_counter_multi_writer_exact () =
  let domains = 4 and n = 25_000 in
  let c = O.Shared_counter.create ~slots:2 () in
  Array.init domains (fun _ ->
      Domain.spawn (fun () ->
          for _ = 1 to n do
            O.Shared_counter.incr c ~slot:0
          done))
  |> Array.iter Domain.join;
  Alcotest.(check int) "exact contended slot" (domains * n)
    (O.Shared_counter.slot_value c ~slot:0);
  Alcotest.(check int) "exact total" (domains * n) (O.Shared_counter.total c)

(* ------------------------------------------------------------------ *)
(* Histogram units                                                    *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  List.iter
    (fun (v, b) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_of %d" v)
        b (O.Histogram.bucket_of v))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3);
      (1023, 9); (1024, 10); (1 lsl 40, 40) ]

let test_histogram_summary () =
  let h = O.Histogram.create ~slots:2 () in
  for _ = 1 to 97 do
    O.Histogram.record h ~slot:0 1
  done;
  for _ = 1 to 3 do
    O.Histogram.record h ~slot:1 1_000_000
  done;
  let s = O.Histogram.summary h in
  Alcotest.(check int) "count" 100 s.O.Histogram.count;
  Alcotest.(check int) "max exact" 1_000_000 s.O.Histogram.max;
  Alcotest.(check bool) "p50 in low bucket" true (s.O.Histogram.p50 <= 2.0);
  Alcotest.(check bool) "p99 reaches the outlier bucket" true
    (s.O.Histogram.p99 >= 500_000.0);
  Alcotest.(check int) "merged sums to count" 100
    (Array.fold_left ( + ) 0 (O.Histogram.merged h))

(* Direct quantile reads — the open-loop latency engine reads
   p50/p99/p99.9 straight off the recording the metrics registry
   snapshots, so the bucket-representative arithmetic is pinned here. *)
let test_histogram_percentile () =
  let h = O.Histogram.create ~slots:1 () in
  Alcotest.(check (float 0.0)) "empty histogram" 0.0
    (O.Histogram.percentile h 99.0);
  (* 999 samples in bucket 9 (512..1023), 1 sample in bucket 20: p99.9
     has rank 1000 and must walk into the outlier bucket, whose
     representative is 1.5 * 2^20. *)
  for _ = 1 to 999 do
    O.Histogram.record h ~slot:0 600
  done;
  O.Histogram.record h ~slot:0 (1 lsl 20);
  let repr b = 1.5 *. float_of_int (1 lsl b) in
  Alcotest.(check (float 0.0)) "p50 bucket representative" (repr 9)
    (O.Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "p99 still in main bucket" (repr 9)
    (O.Histogram.percentile h 99.0);
  Alcotest.(check (float 0.0)) "p99.9 reaches the outlier" (repr 20)
    (O.Histogram.percentile h 99.9);
  Alcotest.(check (float 0.0)) "p100 = top occupied bucket" (repr 20)
    (O.Histogram.percentile h 100.0);
  (* representative is within its bucket: 1.5x-accurate for any sample *)
  Alcotest.(check bool) "p50 within 1.5x of the exact median" true
    (repr 9 /. 600.0 <= 1.5 && 600.0 /. repr 9 <= 1.5);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Obsv.Histogram.percentile: p out of range")
    (fun () -> ignore (O.Histogram.percentile h 100.5))

(* ------------------------------------------------------------------ *)
(* Metrics registry units                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let reg = O.Metrics.create () in
  let c = O.Metrics.counter reg ~name:"q.events" ~slots:2 in
  let h = O.Metrics.histogram reg ~name:"q.lat" ~slots:2 in
  O.Metrics.gauge reg ~name:"q.depth" (fun () -> 7);
  O.Counter.add c ~slot:1 5;
  O.Histogram.record h ~slot:0 3;
  Alcotest.(check (option int)) "counter value" (Some 5)
    (O.Metrics.value reg "q.events");
  Alcotest.(check (option int)) "gauge value" (Some 7)
    (O.Metrics.value reg "q.depth");
  Alcotest.(check (option int)) "histogram count as value" (Some 1)
    (O.Metrics.value reg "q.lat");
  Alcotest.(check (option int)) "missing" None (O.Metrics.value reg "nope");
  Alcotest.(check int) "entries in registration order" 3
    (List.length (O.Metrics.entries reg));
  (match O.Metrics.histogram_summary reg "q.lat" with
  | Some s -> Alcotest.(check int) "summary count" 1 s.O.Histogram.count
  | None -> Alcotest.fail "histogram_summary");
  let json = O.Metrics.to_json reg in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("json has " ^ sub) true (contains_sub json sub))
    [ "\"q.events\""; "\"q.lat\""; "\"q.depth\""; "\"total\": 5" ];
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Obsv.Metrics.register: duplicate metric q.events")
    (fun () -> ignore (O.Metrics.counter reg ~name:"q.events" ~slots:1))

(* ------------------------------------------------------------------ *)
(* Satellite: Registry.acquisitions exactness under churn             *)
(* ------------------------------------------------------------------ *)

let test_registry_churn_exact () =
  let domains = 4 and rounds = 10_000 in
  let rg = Wfq_registry.Registry.create ~capacity:domains in
  Array.init domains (fun _ ->
      Domain.spawn (fun () ->
          for _ = 1 to rounds do
            Wfq_registry.Registry.with_tid rg (fun (_ : int) -> ())
          done))
  |> Array.iter Domain.join;
  (* The old plain int array lost increments exactly here: [domains]
     writers bumping the same hot slots. Exact or the fix regressed. *)
  Alcotest.(check int) "every acquisition accounted" (domains * rounds)
    (Wfq_registry.Registry.total_acquisitions rg);
  Alcotest.(check int) "none held" 0 (Wfq_registry.Registry.held rg)

(* ------------------------------------------------------------------ *)
(* Satellite: shard check cannot fail spuriously mid-flight           *)
(* ------------------------------------------------------------------ *)

let test_shard_check_never_spurious () =
  let workers = 2 in
  let t =
    Sh.create ~policy:Wfq_shard.Shard.Round_robin ~shards:4
      ~num_threads:workers ()
  in
  let stop = Atomic.make false in
  let doms =
    Array.init workers (fun tid ->
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              Sh.enqueue t ~tid !i;
              ignore (Sh.dequeue t ~tid : int option)
            done))
  in
  (* Hammer the checker while operations are genuinely in flight: the
     quiescence witness must turn every mid-flight snapshot into a
     vacuous Ok, never an Error. *)
  for _ = 1 to 20_000 do
    match Sh.check_quiescent_invariants t with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("spurious mid-flight failure: " ^ m)
  done;
  Atomic.set stop true;
  Array.iter Domain.join doms;
  (* At real quiescence the check is live again and must still pass. *)
  Alcotest.(check bool) "no ops in flight" false (Sh.in_flight t);
  match Sh.check_quiescent_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("quiescent failure: " ^ m)

(* ------------------------------------------------------------------ *)
(* Satellite: Phase_counter monotonicity + lost-bump visibility       *)
(* ------------------------------------------------------------------ *)

(* Footnote 3's result-ignored CAS may lose the bump (two threads share
   a phase) but each thread's own phase sequence must still strictly
   increase: the counter ends >= the claimed phase whether or not the
   CAS won. The obsv counter makes the losses visible; the probe makes
   the monotonicity checkable. *)
let test_phase_counter_monotone () =
  let workers = 3 and per = 5_000 in
  let reg = O.Metrics.create () in
  let q =
    Kp.create_with
      ~obsv:(Wfq_core.Kp_queue.metrics reg ~prefix:"kp" ~slots:workers)
      ~help:Wfq_core.Kp_queue.Help_one_cyclic
      ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads:workers ()
  in
  let ok = Array.make workers true in
  Array.init workers (fun tid ->
      Domain.spawn (fun () ->
          let last = ref (-1) in
          for i = 1 to per do
            Kp.enqueue q ~tid i;
            let p = Kp.phase_of q ~tid in
            if p <= !last then ok.(tid) <- false;
            last := p;
            ignore (Kp.dequeue q ~tid : int option);
            let p = Kp.phase_of q ~tid in
            if p <= !last then ok.(tid) <- false;
            last := p
          done))
  |> Array.iter Domain.join;
  Array.iteri
    (fun tid good ->
      Alcotest.(check bool)
        (Printf.sprintf "tid %d phases strictly increase" tid)
        true good)
    ok;
  (* The lost-bump counter exists and is consistent: lost bumps cannot
     exceed the number of phase claims that raced for the counter. *)
  match O.Metrics.value reg "kp.phase_cas_lost" with
  | None -> Alcotest.fail "kp.phase_cas_lost not registered"
  | Some lost ->
      Alcotest.(check bool) "lost bumps within bound" true
        (lost >= 0 && lost <= 2 * workers * per)

(* ------------------------------------------------------------------ *)
(* Satellite: DPOR / scheduler invisibility of the obsv plane         *)
(* ------------------------------------------------------------------ *)

let kp_ops ~obsv : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        let obsv =
          if obsv then
            Some
              (Wfq_core.Kp_queue.metrics (O.Metrics.create ()) ~prefix:"kp"
                 ~slots:num_threads)
          else None
        in
        KpSim.create_with ?obsv ~help:Wfq_core.Kp_queue.Help_one_cyclic
          ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ());
    enqueue = (fun q ~tid v -> KpSim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> KpSim.dequeue q ~tid);
    contents = KpSim.to_list;
  }

(* Obsv cells are plain OCaml slots, not Sim_atomic cells: an
   instrumented queue takes the same shared-memory steps as a plain
   one, so DPOR explores the same Mazurkiewicz traces with the same
   per-fiber step counts. If instrumentation ever grew a shared atomic,
   the schedule count would shift and this pins it. *)
let test_dpor_invisibility () =
  let explore obsv =
    Ck.run ~mode:Ck.Dpor ~max_schedules:200_000 ~queue:(kp_ops ~obsv)
      ~scripts:[ [ `Enq 1 ]; [ `Deq ] ]
      ()
  in
  let plain = explore false and inst = explore true in
  (match inst.Ck.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "instrumented exploration failed: %a" Ck.pp_failure f);
  Alcotest.(check bool) "both exhausted" true
    (plain.Ck.exhausted && inst.Ck.exhausted);
  Alcotest.(check int) "same schedule count" plain.Ck.schedules
    inst.Ck.schedules;
  Alcotest.(check int) "same max fiber steps" plain.Ck.max_fiber_steps
    inst.Ck.max_fiber_steps

(* Same property at the raw scheduler level, plus the reader side: a
   fiber that snapshots metrics concurrently with queue operations
   performs zero shared accesses — it cannot block, be blocked, or
   perturb the queue fibers' schedule. *)
let test_scheduler_steps_and_reader () =
  let reg = O.Metrics.create () in
  let observed = ref (-1) in
  let run ~obsv ~reader =
    let obsv =
      if obsv then
        Some (Wfq_core.Kp_queue.metrics (O.Metrics.create ()) ~prefix:"kp"
                ~slots:2)
      else None
    in
    let q =
      KpSim.create_with ?obsv ~help:Wfq_core.Kp_queue.Help_one_cyclic
        ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads:2 ()
    in
    let f0 () = KpSim.enqueue q ~tid:0 1 in
    let f1 () = ignore (KpSim.dequeue q ~tid:1 : int option) in
    let fibers =
      if reader then
        [| f0; f1;
           (fun () ->
             (* Plain loads only: no Sim_atomic access, no yield. *)
             observed := List.length (O.Metrics.entries reg))
        |]
      else [| f0; f1 |]
    in
    S.run ~strategy:S.First_enabled fibers
  in
  let plain = run ~obsv:false ~reader:false in
  let inst = run ~obsv:true ~reader:false in
  Alcotest.(check bool) "plain finished" true
    (plain.S.outcome = S.All_finished);
  Alcotest.(check bool) "instrumented finished" true
    (inst.S.outcome = S.All_finished);
  Alcotest.(check int) "identical scheduler step count" plain.S.total_steps
    inst.S.total_steps;
  let withr = run ~obsv:true ~reader:true in
  Alcotest.(check bool) "reader run finished" true
    (withr.S.outcome = S.All_finished);
  Alcotest.(check bool) "reader completed" true (!observed >= 0);
  (* The reader fiber contributes only its startup slice: metric reads
     are invisible to the schedule. *)
  Alcotest.(check int) "reader takes one scheduler step" 1
    withr.S.steps.(2);
  Alcotest.(check int) "queue fibers unperturbed"
    (inst.S.steps.(0) + inst.S.steps.(1))
    (withr.S.steps.(0) + withr.S.steps.(1))

(* ------------------------------------------------------------------ *)
(* Instrumented end-to-end smoke: metrics actually populate           *)
(* ------------------------------------------------------------------ *)

let test_instrumented_fps_populates () =
  let workers = 2 and per = 2_000 in
  let reg = O.Metrics.create () in
  let q =
    Fq.create_with ~max_failures:0
      ~obsv:(Wfq_core.Kp_queue_fps.metrics reg ~prefix:"fps" ~slots:workers)
      ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
      ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads:workers ()
  in
  Fq.register_metrics q reg ~prefix:"fps";
  Array.init workers (fun tid ->
      Domain.spawn (fun () ->
          for i = 1 to per do
            Fq.enqueue q ~tid i;
            ignore (Fq.dequeue q ~tid : int option)
          done))
  |> Array.iter Domain.join;
  (* max_failures = 0: every operation must take the slow path, and the
     always-on counters agree with the registry view exactly. *)
  Alcotest.(check int) "all ops slow" (2 * workers * per)
    (Fq.slow_path_entries q);
  Alcotest.(check (option int)) "registry sees the same"
    (Some (2 * workers * per))
    (O.Metrics.value reg "fps.slow_entries");
  Alcotest.(check (option int)) "no fast hits" (Some 0)
    (O.Metrics.value reg "fps.fast_hits")

let () =
  Alcotest.run "obsv"
    [
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "single-writer exact" `Quick
            test_counter_single_writer_exact;
          Alcotest.test_case "shared multi-writer exact" `Quick
            test_shared_counter_multi_writer_exact;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "summary" `Quick test_histogram_summary;
          Alcotest.test_case "direct percentile reads" `Quick
            test_histogram_percentile;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "bugfixes",
        [
          Alcotest.test_case "registry churn exact" `Quick
            test_registry_churn_exact;
          Alcotest.test_case "shard check never spurious" `Quick
            test_shard_check_never_spurious;
          Alcotest.test_case "phase counter monotone" `Quick
            test_phase_counter_monotone;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "dpor traces identical" `Quick
            test_dpor_invisibility;
          Alcotest.test_case "scheduler steps + racy reader" `Quick
            test_scheduler_steps_and_reader;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fps metrics populate" `Quick
            test_instrumented_fps_populates;
        ] );
    ]
