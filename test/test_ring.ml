(* Ring_queue (bounded wait-free MPMC ring) tests:

   - creation validation and the bounded API surface (try_enqueue /
     Ring_full / dequeue-on-empty) on capacity-1 and small rings;
   - wraparound past 2*capacity, sequentially on both paths (fast and
     all-slow), with white-box Probe checks that slot positions and
     hints track the lap count;
   - DPOR model checking of the protocol corners the conc-queue suite
     does not already cover: the stage-1 claim/rollback race between
     two slow enqueues, the helping hand-off between two slow
     dequeues, the dequeue-on-empty race, and wraparound under
     [`Try_enq] on a capacity-1 ring — each explored to exhaustion
     with the wait-freedom certifier and the quiescent audit on;
   - the seeded [Rollback_skipped] fault: the checker must find the
     duplicate-install schedule and shrink it;
   - an 8-domain conservation stress on real atomics at capacity 8
     (peak occupancy == capacity, so the run crosses thousands of
     laps);
   - the [?obsv] metrics contract and the [register_metrics] gauges. *)

module A = Wfq_primitives.Real_atomic
module SA = Wfq_sim.Sim_atomic
module Ck = Wfq_sim.Check
module Rq = Wfq_core.Ring_queue
module Ring = Rq.Make (A)
module Ring_sim = Rq.Make (SA)
module M = Wfq_obsv.Metrics

let check_audit name q =
  match Ring.check_quiescent_invariants q with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: quiescent audit: %s" name e

(* ------------------------------------------------------------------ *)
(* Creation and sequential semantics                                  *)
(* ------------------------------------------------------------------ *)

let test_create_validation () =
  let invalid name f = Alcotest.check_raises name (Invalid_argument name) f in
  invalid "Ring_queue.create: num_threads" (fun () ->
      ignore (Ring.create ~num_threads:0 ()));
  invalid "Ring_queue.create: capacity" (fun () ->
      ignore (Ring.create_with ~capacity:0 ~num_threads:1 ()));
  invalid "Ring_queue.create: capacity" (fun () ->
      ignore (Ring.create_with ~capacity:(-4) ~num_threads:1 ()));
  invalid "Ring_queue.create: max_failures" (fun () ->
      ignore (Ring.create_with ~max_failures:(-1) ~num_threads:1 ()));
  let q = Ring.create ~num_threads:1 () in
  Alcotest.(check int) "default capacity" Rq.default_capacity (Ring.capacity q);
  Alcotest.(check string) "name" "ring" Ring.name;
  (* max_failures = 0 is legal: the all-slow-path configuration. *)
  let q0 = Ring.create_with ~capacity:2 ~max_failures:0 ~num_threads:1 () in
  Alcotest.(check int) "all-slow capacity" 2 (Ring.capacity q0)

let test_sequential_fifo () =
  let q = Ring.create_with ~capacity:8 ~num_threads:1 () in
  Alcotest.(check bool) "fresh is empty" true (Ring.is_empty q);
  for i = 1 to 6 do
    Ring.enqueue q ~tid:0 i
  done;
  Alcotest.(check int) "length" 6 (Ring.length q);
  Alcotest.(check (list int)) "to_list oldest first" [ 1; 2; 3; 4; 5; 6 ]
    (Ring.to_list q);
  check_audit "after burst" q;
  for i = 1 to 6 do
    Alcotest.(check (option int))
      (Printf.sprintf "deq %d" i)
      (Some i) (Ring.dequeue q ~tid:0)
  done;
  Alcotest.(check (option int)) "empty after drain" None (Ring.dequeue q ~tid:0);
  Alcotest.(check bool) "is_empty" true (Ring.is_empty q);
  check_audit "after drain" q

let test_capacity_one () =
  let q = Ring.create_with ~capacity:1 ~num_threads:1 () in
  Alcotest.(check bool) "accepts first" true (Ring.try_enqueue q ~tid:0 7);
  Alcotest.(check bool) "rejects second" false (Ring.try_enqueue q ~tid:0 8);
  Alcotest.check_raises "enqueue raises on full" Rq.Ring_full (fun () ->
      Ring.enqueue q ~tid:0 9);
  Alcotest.(check int) "still one element" 1 (Ring.length q);
  Alcotest.(check (option int)) "the element" (Some 7) (Ring.dequeue q ~tid:0);
  Alcotest.(check (option int)) "then empty" None (Ring.dequeue q ~tid:0);
  Alcotest.(check bool) "accepts again" true (Ring.try_enqueue q ~tid:0 10);
  check_audit "capacity-1" q

(* Wraparound past 2*capacity: twelve pairs through a 4-slot ring cross
   the position space three full laps. Uncontended hint CASes always
   succeed, so the hints and the slots' stored positions are exact. *)
let test_wraparound_fast () =
  let cap = 4 in
  let q = Ring.create_with ~capacity:cap ~num_threads:1 () in
  for i = 1 to 3 * cap do
    Ring.enqueue q ~tid:0 (100 + i);
    Alcotest.(check (option int))
      (Printf.sprintf "pair %d" i)
      (Some (100 + i))
      (Ring.dequeue q ~tid:0)
  done;
  Alcotest.(check int) "tail crossed 2*capacity" (3 * cap) (Ring.Probe.tail q);
  Alcotest.(check int) "head caught up" (3 * cap) (Ring.Probe.head q);
  for j = 0 to cap - 1 do
    match Ring.Probe.slot_state q j with
    | `Free p ->
        Alcotest.(check int)
          (Printf.sprintf "slot %d free at lap-3 position" j)
          ((3 * cap) + j) p
    | `Full _ | `Taken _ -> Alcotest.failf "slot %d not free" j
  done;
  check_audit "after three laps" q

(* The same laps with max_failures = 0: every operation publishes a
   descriptor and completes through the helping machinery. *)
let test_wraparound_all_slow () =
  let cap = 2 in
  let q = Ring.create_with ~capacity:cap ~max_failures:0 ~num_threads:2 () in
  for lap = 0 to 2 do
    for j = 1 to cap do
      Ring.enqueue q ~tid:(j mod 2) ((10 * lap) + j)
    done;
    for j = 1 to cap do
      Alcotest.(check (option int))
        (Printf.sprintf "lap %d deq %d" lap j)
        (Some ((10 * lap) + j))
        (Ring.dequeue q ~tid:(j mod 2))
    done
  done;
  Alcotest.(check int) "positions past 2*capacity" (3 * cap)
    (Ring.Probe.tail q);
  Alcotest.(check bool) "no descriptor left pending" false
    (Ring.Probe.desc_pending q 0 || Ring.Probe.desc_pending q 1);
  check_audit "all-slow laps" q

let test_probe_fresh () =
  let q = Ring.create_with ~capacity:4 ~num_threads:2 () in
  Alcotest.(check int) "head hint" 0 (Ring.Probe.head q);
  Alcotest.(check int) "tail hint" 0 (Ring.Probe.tail q);
  for j = 0 to 3 do
    match Ring.Probe.slot_state q j with
    | `Free p -> Alcotest.(check int) "slot position" j p
    | _ -> Alcotest.failf "fresh slot %d not free" j
  done;
  Ring.enqueue q ~tid:1 42;
  Alcotest.(check int) "tail advanced" 1 (Ring.Probe.tail q);
  (match Ring.Probe.slot_state q 0 with
  | `Full (p, tid) ->
      Alcotest.(check int) "installed at position 0" 0 p;
      Alcotest.(check int) "fast-path install carries tid -1" (-1) tid
  | _ -> Alcotest.fail "slot 0 not full");
  Alcotest.(check bool) "no pending descriptor" false
    (Ring.Probe.desc_pending q 0 || Ring.Probe.desc_pending q 1)

(* ------------------------------------------------------------------ *)
(* DPOR litmuses (sim atomics)                                        *)
(* ------------------------------------------------------------------ *)

let ring_sim_ops ?fault ~capacity ~max_failures () : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        Ring_sim.create_with ~capacity ~max_failures ?fault ~num_threads ());
    enqueue = (fun q ~tid v -> Ring_sim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Ring_sim.dequeue q ~tid);
    contents = Ring_sim.to_list;
  }

let ring_try_enq q ~tid v = Ring_sim.try_enqueue q ~tid v
let ring_audit q = Ring_sim.check_quiescent_invariants q

let check_clean name (r : Ck.report) =
  (match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "%s: %a" name Ck.pp_failure f);
  Alcotest.(check bool) (name ^ ": exhausted") true r.Ck.exhausted

(* Two all-slow-path enqueues racing for the same position: stage-1
   claims collide and exactly one must roll back without losing either
   value. *)
let test_dpor_claim_rollback () =
  check_clean "claim/rollback (enq|enq, mf=0)"
    (Ck.run ~mode:Ck.Dpor ~max_schedules:300_000 ~step_bound:200
       ~extra_check:ring_audit
       ~queue:(ring_sim_ops ~capacity:2 ~max_failures:0 ())
       ~scripts:[ [ `Enq 1 ]; [ `Enq 2 ] ]
       ())

(* Two all-slow-path dequeues over one element: one must win the
   hand-off (the helper publishes the value into the loser-or-winner's
   descriptor before freeing the slot), the other must observe empty. *)
let test_dpor_help_handoff () =
  check_clean "helping hand-off (deq|deq over one element, mf=0)"
    (Ck.run ~mode:Ck.Dpor ~max_schedules:300_000 ~step_bound:200
       ~init:[ 1 ] ~extra_check:ring_audit
       ~queue:(ring_sim_ops ~capacity:2 ~max_failures:0 ())
       ~scripts:[ [ `Deq ]; [ `Deq ] ]
       ())

(* Dequeue racing a slow enqueue on an initially empty capacity-1 ring:
   None is legal only when the dequeue linearizes before the insert. *)
let test_dpor_empty_race () =
  check_clean "dequeue-on-empty race (capacity 1, mf=0)"
    (Ck.run ~mode:Ck.Dpor ~max_schedules:300_000 ~step_bound:200
       ~extra_check:ring_audit
       ~queue:(ring_sim_ops ~capacity:1 ~max_failures:0 ())
       ~scripts:[ [ `Enq 1 ]; [ `Deq ] ]
       ())

(* Wraparound under contention: three bounded inserts chase three
   dequeues through a capacity-1 ring, so accepted positions cross
   2*capacity and every acceptance/rejection must match the bounded
   spec at its linearization point. *)
let test_dpor_wraparound () =
  check_clean "wraparound past 2*capacity (capacity 1)"
    (Ck.run ~mode:Ck.Dpor ~max_schedules:300_000 ~step_bound:200
       ~try_enqueue:ring_try_enq ~capacity:1 ~extra_check:ring_audit
       ~queue:(ring_sim_ops ~capacity:1 ~max_failures:1 ())
       ~scripts:[ [ `Try_enq 1; `Try_enq 2; `Try_enq 3 ]; [ `Deq; `Deq; `Deq ] ]
       ())

(* The seeded bug: a slow-path enqueue helper rolls a claim back
   without checking that its own install landed, so the value is
   installed twice. DPOR must find the schedule and shrink it. *)
let test_dpor_fault_found () =
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:50_000 ~step_bound:200
      ~try_enqueue:ring_try_enq ~capacity:1
      ~queue:
        (ring_sim_ops ~fault:Rq.Rollback_skipped ~capacity:1 ~max_failures:0
           ())
      ~scripts:[ [ `Try_enq 1 ]; [ `Deq ] ]
      ()
  in
  match r.Ck.failure with
  | None ->
      Alcotest.fail "seeded Rollback_skipped fault not detected"
  | Some f ->
      Alcotest.(check bool)
        "counterexample shrunk" true
        (f.Ck.shrunk <> None)

(* ------------------------------------------------------------------ *)
(* 8-domain conservation stress (real atomics)                        *)
(* ------------------------------------------------------------------ *)

(* Pairs over a ring whose capacity equals the peak occupancy (one
   in-flight element per domain): every slot is contended on every lap
   and the run crosses [iters] laps. mf=1 keeps the slow path hot.
   try_enqueue can meet a momentarily full ring (another domain's
   element occupying the slot), so inserts retry; dequeues retry on
   transient empty. Conservation and per-producer order are checked on
   the merged logs, as in test_queues_conc. *)
let test_stress_8_domains () =
  let domains = 8 and iters = 2_000 in
  let q =
    Ring.create_with ~capacity:domains ~max_failures:1 ~num_threads:domains ()
  in
  let encode ~producer ~seq = (producer * 1_000_000) + seq in
  let logs = Array.make domains [] in
  let worker tid () =
    let got = ref [] in
    for seq = 1 to iters do
      while not (Ring.try_enqueue q ~tid (encode ~producer:tid ~seq)) do
        Domain.cpu_relax ()
      done;
      let rec take () =
        match Ring.dequeue q ~tid with
        | Some v -> got := v :: !got
        | None ->
            Domain.cpu_relax ();
            take ()
      in
      take ()
    done;
    logs.(tid) <- List.rev !got
  in
  let ds = List.init domains (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  let total = domains * iters in
  let seen = Hashtbl.create total in
  Array.iter
    (List.iter (fun v ->
         if Hashtbl.mem seen v then
           Alcotest.failf "value %d dequeued twice" v;
         Hashtbl.add seen v ()))
    logs;
  Alcotest.(check int) "every value dequeued exactly once" total
    (Hashtbl.length seen);
  Alcotest.(check int) "ring empty" 0 (Ring.length q);
  Array.iter
    (fun log ->
      let last_seq = Array.make domains 0 in
      List.iter
        (fun v ->
          let p = v / 1_000_000 and s = v mod 1_000_000 in
          if s <= last_seq.(p) then
            Alcotest.failf "per-producer order violated (p%d: %d after %d)" p
              s last_seq.(p);
          last_seq.(p) <- s)
        log)
    logs;
  check_audit "post-stress" q

(* ------------------------------------------------------------------ *)
(* Observability contract                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics () =
  let reg = M.create () in
  let obsv = Rq.metrics reg ~prefix:"ring" ~slots:1 in
  let q =
    Ring.create_with ~capacity:4 ~max_failures:0 ~obsv ~num_threads:1 ()
  in
  for i = 1 to 4 do
    Ring.enqueue q ~tid:0 i
  done;
  Alcotest.(check bool) "full ring rejects" false (Ring.try_enqueue q ~tid:0 5);
  ignore (Ring.dequeue q ~tid:0);
  let value name =
    match M.value reg name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s not registered" name
  in
  Alcotest.(check bool) "slow entries counted (mf=0 forces slow path)" true
    (value "ring.slow_entries" > 0);
  Alcotest.(check bool) "full rejection counted" true
    (value "ring.full_rejections" >= 1);
  Alcotest.(check bool) "occupancy histogram sampled" true
    (value "ring.occupancy" > 0);
  Ring.register_metrics q reg ~prefix:"ring";
  Alcotest.(check int) "depth gauge" 3 (value "ring.depth");
  Alcotest.(check int) "capacity gauge" 4 (value "ring.capacity")

let () =
  Alcotest.run "ring-queue"
    [
      ( "sequential",
        [
          Alcotest.test_case "create validation / defaults" `Quick
            test_create_validation;
          Alcotest.test_case "FIFO, length, to_list, audit" `Quick
            test_sequential_fifo;
          Alcotest.test_case "capacity-1: full / Ring_full / reuse" `Quick
            test_capacity_one;
          Alcotest.test_case "wraparound past 2*capacity (fast path)" `Quick
            test_wraparound_fast;
          Alcotest.test_case "wraparound past 2*capacity (all slow path)"
            `Quick test_wraparound_all_slow;
          Alcotest.test_case "probe: fresh state and first install" `Quick
            test_probe_fresh;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "claim/rollback race exhausted" `Quick
            test_dpor_claim_rollback;
          Alcotest.test_case "helping hand-off exhausted" `Quick
            test_dpor_help_handoff;
          Alcotest.test_case "dequeue-on-empty race exhausted" `Quick
            test_dpor_empty_race;
          Alcotest.test_case "wraparound litmus exhausted" `Quick
            test_dpor_wraparound;
          Alcotest.test_case "seeded rollback-skipped fault found + shrunk"
            `Quick test_dpor_fault_found;
        ] );
      ( "stress",
        [
          Alcotest.test_case "8-domain conservation at capacity 8" `Quick
            test_stress_8_domains;
        ] );
      ( "obsv",
        [ Alcotest.test_case "metrics contract" `Quick test_metrics ] );
    ]
