(* Open-loop load engine (lib/harness/{clock,arrivals,open_loop}.ml):
   deterministic arrival schedules, coordinated-omission-safe latency
   recording, the saturation knee, and the monotonic-clock contract the
   whole harness now times on. *)

module A = Wfq_harness.Arrivals
module OL = Wfq_harness.Open_loop
module Clock = Wfq_harness.Clock
module Bks = Wfq_core.Backends

let kp_opt12 () = OL.impl_of_backend (Bks.find "kp-opt12")

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

(* The satellite bugfix's pin: harness timing is CLOCK_MONOTONIC, so a
   backwards wall-clock step can never produce a negative sample. We
   cannot step the wall clock in a test, but we can pin the property
   the fix rests on — the source never goes backwards, ever, across
   many samples and across work of varying length. *)
let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for i = 1 to 100_000 do
    let t = Clock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock regressed at sample %d: %d < %d" i t !prev;
    prev := t;
    if i mod 10_000 = 0 then Sys.opaque_identity (ignore (Gc.minor ()))
  done;
  (* deltas of back-to-back reads are non-negative by the same token *)
  let t0 = Clock.now_ns () in
  let t1 = Clock.now_ns () in
  Alcotest.(check bool) "delta non-negative" true (t1 - t0 >= 0)

let test_clock_wait_until () =
  let start = Clock.now_ns () in
  let target = start + 3_000_000 (* 3 ms: crosses the sleep+spin split *) in
  Clock.wait_until target;
  let now = Clock.now_ns () in
  Alcotest.(check bool) "released at or after the target" true (now >= target);
  (* a target already in the past returns immediately (no negative sleep) *)
  Clock.wait_until (now - 1_000_000);
  Alcotest.(check bool) "past target is a no-op" true
    (Clock.now_ns () - now < 1_000_000_000)

(* ------------------------------------------------------------------ *)
(* Arrival schedules                                                  *)
(* ------------------------------------------------------------------ *)

let test_poisson_schedule () =
  let rate = 100_000.0 and n = 20_000 in
  let s = A.generate A.Poisson ~seed:7 ~rate ~n in
  Alcotest.(check int) "n events" n (Array.length s);
  let prev = ref 0 in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "gaps >= 1 ns, ascending" true (t > !prev);
      prev := t)
    s;
  (* long-run mean interarrival within 5% of 1/rate (n = 20k i.i.d.
     exponentials: the seeded draw below is well inside that) *)
  let mean_gap = float_of_int s.(n - 1) /. float_of_int n in
  let expect = 1e9 /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "mean interarrival %.0f ~ %.0f" mean_gap expect)
    true
    (Float.abs (mean_gap -. expect) /. expect < 0.05);
  (* byte-for-byte determinism per seed; a different seed differs *)
  Alcotest.(check bool) "same seed reproduces" true
    (s = A.generate A.Poisson ~seed:7 ~rate ~n);
  Alcotest.(check bool) "different seed differs" false
    (s = A.generate A.Poisson ~seed:8 ~rate ~n)

(* The burst process pinned byte-for-byte: any change to the gap
   arithmetic, the RNG draw order, or the OFF-gap balancing shows up
   here as a changed schedule, not as a silently different workload. *)
let test_burst_schedule_pinned () =
  let s =
    A.generate
      (A.Burst { duty = 0.25; burst_len = 4 })
      ~seed:9 ~rate:1e6 ~n:12
  in
  Alcotest.(check (array int))
    "burst schedule (seed 9)"
    [|
      286; 363; 1306; 13689; 13911; 14973; 19796; 19850; 20132; 20543;
      20702; 21511;
    |]
    s;
  let p = A.generate A.Poisson ~seed:9 ~rate:1e6 ~n:8 in
  Alcotest.(check (array int)) "poisson schedule (seed 9)"
    [| 1146; 2535; 2843; 4379; 4683; 4804; 5841; 9948 |]
    p

let test_burst_long_run_rate () =
  (* The on/off balancing must keep the long-run mean at the offered
     rate: duty only reshapes the arrival process. *)
  let rate = 1e6 and n = 50_000 in
  let s = A.generate (A.Burst { duty = 0.2; burst_len = 16 }) ~seed:3 ~rate ~n in
  let mean_gap = float_of_int s.(n - 1) /. float_of_int n in
  let expect = 1e9 /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "burst mean interarrival %.0f ~ %.0f" mean_gap expect)
    true
    (Float.abs (mean_gap -. expect) /. expect < 0.10);
  (* and it must actually burst: the minimum gap is far below the mean *)
  let min_gap = ref max_int in
  let prev = ref 0 in
  Array.iter
    (fun t ->
      min_gap := min !min_gap (t - !prev);
      prev := t)
    s;
  Alcotest.(check bool) "ON gaps ~ duty * mean" true
    (float_of_int !min_gap < expect /. 2.0)

let test_burst_validation () =
  Alcotest.check_raises "duty > 1 rejected"
    (Invalid_argument "Arrivals.generate: duty must be in (0, 1]")
    (fun () ->
      ignore (A.generate (A.Burst { duty = 1.5; burst_len = 4 }) ~seed:0
                ~rate:1e6 ~n:4));
  Alcotest.check_raises "rate <= 0 rejected"
    (Invalid_argument "Arrivals.generate: rate must be positive")
    (fun () -> ignore (A.generate A.Poisson ~seed:0 ~rate:0.0 ~n:4))

let test_split_skew () =
  let schedule = A.generate A.Poisson ~seed:11 ~rate:1e6 ~n:10_000 in
  (* weights: normalized, uniform at skew 0, front-loaded at skew 2 *)
  let w0 = A.weights ~workers:4 ~skew:0.0 in
  Array.iter (fun w -> Alcotest.(check (float 1e-9)) "uniform" 0.25 w) w0;
  let w2 = A.weights ~workers:4 ~skew:2.0 in
  Alcotest.(check (float 1e-9)) "normalized" 1.0
    (Array.fold_left ( +. ) 0.0 w2);
  Alcotest.(check bool) "front-loaded" true (w2.(0) > 4.0 *. w2.(3));
  let subs = A.split schedule ~workers:4 ~skew:2.0 ~seed:5 in
  (* partition: every event exactly once, each row in global order *)
  Alcotest.(check int) "partitioned" (Array.length schedule)
    (Array.fold_left (fun a s -> a + Array.length s) 0 subs);
  let all = Array.concat (Array.to_list subs) in
  Array.sort compare all;
  Alcotest.(check bool) "multiset preserved" true (all = schedule);
  Array.iter
    (fun sub ->
      let prev = ref (-1) in
      Array.iter
        (fun t ->
          Alcotest.(check bool) "row ascending" true (t > !prev);
          prev := t)
        sub)
    subs;
  (* skew 2 at 4 workers: producer 0 carries the clear majority *)
  Alcotest.(check bool) "producer 0 is hot" true
    (Array.length subs.(0) > 2 * Array.length subs.(3));
  Alcotest.(check bool) "split deterministic" true
    (subs = A.split schedule ~workers:4 ~skew:2.0 ~seed:5)

(* ------------------------------------------------------------------ *)
(* Coordinated omission: the deterministic pin                        *)
(* ------------------------------------------------------------------ *)

(* One execution, two measurements. The virtual-time simulation drives
   a real registry backend through a stall and reports the same
   completions twice: from the intended send time (open loop — this
   PR's engine) and from the service start (closed loop — a
   timestamp-around-the-call harness). Closed-loop must not see the
   queueing delay the stall caused; open-loop must. *)
let test_simulate_stall_coordinated_omission () =
  let events = 2_000 and rate = 100_000.0 (* 10 us gaps *) in
  let stall = { OL.victim = 0; after = 100; duration_ns = 5_000_000 } in
  let r =
    OL.simulate ~service_ns:1_000 ~stall ~pattern:A.Poisson ~seed:13 ~rate
      ~events (kp_opt12 ())
  in
  (* closed loop: every sample is a bare service time except the one
     operation that contained the stall — the tail stays flat, the
     queueing delay is omitted *)
  Alcotest.(check (float 0.0)) "closed-loop p50 = service" 1_000.0
    r.OL.closed_loop.OL.p50;
  Alcotest.(check (float 0.0)) "closed-loop p99 = service" 1_000.0
    r.OL.closed_loop.OL.p99;
  (* open loop: the ~500 arrivals during the 5 ms outage each carry the
     queueing delay they suffered *)
  Alcotest.(check bool)
    (Printf.sprintf "open-loop p99 (%.0f ns) includes queueing delay"
       r.OL.open_loop.OL.p99)
    true
    (r.OL.open_loop.OL.p99 > 100.0 *. r.OL.closed_loop.OL.p99);
  Alcotest.(check bool) "open-loop max >= the stall itself" true
    (r.OL.open_loop.OL.max >= float_of_int stall.OL.duration_ns);
  (* same execution, so the two sides agree on sample counts *)
  Alcotest.(check int) "samples" events r.OL.open_loop.OL.samples;
  Alcotest.(check int) "samples (closed)" events r.OL.closed_loop.OL.samples

let test_simulate_no_stall_agrees () =
  (* Without a stall and with service << interarrival, the queue is
     almost always idle at each arrival: both measurements see mostly
     bare service times and the medians coincide. *)
  let r =
    OL.simulate ~service_ns:1_000 ~pattern:A.Poisson ~seed:21 ~rate:10_000.0
      ~events:2_000 (kp_opt12 ())
  in
  Alcotest.(check (float 0.0)) "open p50 = closed p50 when unqueued"
    r.OL.closed_loop.OL.p50 r.OL.open_loop.OL.p50;
  (* FIFO was checked internally for every event; also across backends *)
  List.iter
    (fun id ->
      let r =
        OL.simulate ~service_ns:500 ~pattern:A.Poisson ~seed:2 ~rate:1e5
          ~events:500
          (OL.impl_of_backend (Bks.find id))
      in
      Alcotest.(check bool) (id ^ " simulated") true
        (r.OL.open_loop.OL.samples = 500))
    [ "fps-pooled"; "ring"; "polylog" ]

(* ------------------------------------------------------------------ *)
(* Saturation knee                                                    *)
(* ------------------------------------------------------------------ *)

let test_knee () =
  (* knee = first load whose p99 exceeds mult x the lowest load's *)
  let curve = [ (1_000.0, 10.0); (2_000.0, 25.0); (4_000.0, 50.0) ] in
  Alcotest.(check (option (float 0.0))) "crosses at 4k" (Some 4_000.0)
    (OL.knee ~mult:4.0 curve);
  Alcotest.(check (option (float 0.0))) "tighter mult crosses earlier"
    (Some 2_000.0)
    (OL.knee ~mult:2.0 curve);
  Alcotest.(check (option (float 0.0))) "never crosses" None
    (OL.knee ~mult:10.0 curve);
  (* input order must not matter: the baseline is the lowest load *)
  Alcotest.(check (option (float 0.0))) "unsorted input" (Some 4_000.0)
    (OL.knee ~mult:4.0 (List.rev curve));
  (* the baseline point itself can never be the knee (p99 = 1x > mult
     requires mult < 1, which is not a regression definition) *)
  Alcotest.(check (option (float 0.0))) "single point" None
    (OL.knee ~mult:4.0 [ (1_000.0, 99.0) ]);
  Alcotest.check_raises "empty curve rejected"
    (Invalid_argument "Open_loop.knee: empty curve") (fun () ->
      ignore (OL.knee []))

(* ------------------------------------------------------------------ *)
(* Real-domain engine                                                 *)
(* ------------------------------------------------------------------ *)

let test_run_smoke () =
  let cfg =
    {
      OL.default_config with
      OL.producers = 2;
      consumers = 1;
      rate = 50_000.0;
      events = 600;
      skew = 1.0;
      seed = 3;
    }
  in
  let reg = Wfq_obsv.Metrics.create () in
  let r = OL.run ~metrics:(reg, "ol") cfg (kp_opt12 ()) in
  (* conservation was checked inside run (raises on violation) *)
  Alcotest.(check int) "every event's enqueue sampled" 600
    r.OL.enq.OL.samples;
  Alcotest.(check int) "every event's sojourn sampled" 600
    r.OL.sojourn.OL.samples;
  Alcotest.(check bool) "duration positive" true (r.OL.duration_s > 0.0);
  Alcotest.(check bool) "achieved rate positive" true
    (r.OL.achieved_rate > 0.0);
  Alcotest.(check bool) "sojourn >= enqueue at p50" true
    (r.OL.sojourn.OL.p50 >= r.OL.enq.OL.p50);
  (* the histograms registered for the metrics registry hold the same
     recording: same counts, and the bucketed p50 within the bucket
     representative's 1.5x of the exact p50 *)
  Alcotest.(check (option int)) "enq histogram registered" (Some 600)
    (Wfq_obsv.Metrics.value reg "ol.enq_latency_ns");
  Alcotest.(check (option int)) "sojourn histogram registered" (Some 600)
    (Wfq_obsv.Metrics.value reg "ol.sojourn_ns");
  let hp50 = Wfq_obsv.Histogram.percentile r.OL.sojourn_hist 50.0 in
  let exact = r.OL.sojourn.OL.p50 in
  Alcotest.(check bool)
    (Printf.sprintf "histogram p50 %.0f within 1.5x of exact %.0f" hp50 exact)
    true
    (exact <= 1.0 || (hp50 /. exact <= 1.5 && exact /. hp50 <= 2.0))

let test_run_stall_injection () =
  (* The real-domain stall: the only consumer goes dark for 20 ms after
     its 50th dequeue while the schedule keeps arriving at 25 us gaps,
     so the remaining events queue up behind the outage. The open-loop
     sojourn tail must contain that delay. *)
  let stall = { OL.victim = 0; after = 50; duration_ns = 20_000_000 } in
  let cfg =
    {
      OL.default_config with
      OL.rate = 40_000.0;
      events = 400;
      seed = 17;
      stall = Some stall;
    }
  in
  let r = OL.run cfg (kp_opt12 ()) in
  Alcotest.(check int) "all events accounted" 400 r.OL.sojourn.OL.samples;
  Alcotest.(check bool)
    (Printf.sprintf "sojourn p99 (%.1f ms) includes the injected outage"
       (r.OL.sojourn.OL.p99 /. 1e6))
    true
    (r.OL.sojourn.OL.p99 >= float_of_int stall.OL.duration_ns /. 4.0);
  Alcotest.(check bool) "max >= half the outage" true
    (r.OL.sojourn.OL.max >= float_of_int stall.OL.duration_ns /. 2.0)

let test_run_validation () =
  let impl = kp_opt12 () in
  Alcotest.check_raises "non-positive producers"
    (Invalid_argument "Open_loop.run: producers/consumers must be positive")
    (fun () ->
      ignore (OL.run { OL.default_config with OL.producers = 0 } impl));
  Alcotest.check_raises "stall victim out of range"
    (Invalid_argument "Open_loop.run: stall victim out of range") (fun () ->
      ignore
        (OL.run
           {
             OL.default_config with
             OL.stall = Some { OL.victim = 5; after = 0; duration_ns = 1 };
           }
           impl));
  Alcotest.check_raises "non-positive rate"
    (Invalid_argument "Open_loop.run: rate must be positive") (fun () ->
      ignore (OL.run { OL.default_config with OL.rate = 0.0 } impl))

let () =
  Alcotest.run "openloop"
    [
      ( "clock",
        [
          Alcotest.test_case "monotone across 100k samples" `Quick
            test_clock_monotone;
          Alcotest.test_case "wait_until hits the target" `Quick
            test_clock_wait_until;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson: mean, order, determinism" `Quick
            test_poisson_schedule;
          Alcotest.test_case "burst schedule pinned byte-for-byte" `Quick
            test_burst_schedule_pinned;
          Alcotest.test_case "burst long-run rate" `Quick
            test_burst_long_run_rate;
          Alcotest.test_case "validation" `Quick test_burst_validation;
          Alcotest.test_case "skewed split" `Quick test_split_skew;
        ] );
      ( "coordinated-omission",
        [
          Alcotest.test_case "stall: open sees delay, closed omits it"
            `Quick test_simulate_stall_coordinated_omission;
          Alcotest.test_case "no stall: measurements agree" `Quick
            test_simulate_no_stall_agrees;
        ] );
      ("knee", [ Alcotest.test_case "saturation knee" `Quick test_knee ]);
      ( "engine",
        [
          Alcotest.test_case "real-domain smoke" `Quick test_run_smoke;
          Alcotest.test_case "real-domain stall injection" `Quick
            test_run_stall_injection;
          Alcotest.test_case "validation" `Quick test_run_validation;
        ] );
    ]
