(* Tests for the linearizability checker itself: known-good and known-bad
   histories, the real-time-order rule, and qcheck properties relating
   sequential histories to linearizability. *)

module H = Wfq_lincheck.History
module C = Wfq_lincheck.Checker

(* Handy constructor for completed operations. *)
let op ?(thread = 0) ~call ~return o resp =
  { H.thread; op = o; response = resp; call; return }

let lin = C.is_linearizable

let test_empty_history () = Alcotest.(check bool) "empty ok" true (lin [])

let test_sequential_good () =
  let h =
    [
      op ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~call:2 ~return:3 (H.Enq 2) H.Done;
      op ~call:4 ~return:5 H.Deq (H.Got 1);
      op ~call:6 ~return:7 H.Deq (H.Got 2);
      op ~call:8 ~return:9 H.Deq H.Empty;
    ]
  in
  Alcotest.(check bool) "fifo respected" true (lin h)

let test_sequential_wrong_order () =
  let h =
    [
      op ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~call:2 ~return:3 (H.Enq 2) H.Done;
      op ~call:4 ~return:5 H.Deq (H.Got 2) (* LIFO! *);
    ]
  in
  Alcotest.(check bool) "lifo rejected" false (lin h)

let test_sequential_false_empty () =
  let h =
    [
      op ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~call:2 ~return:3 H.Deq H.Empty;
    ]
  in
  Alcotest.(check bool) "empty after enq rejected" false (lin h)

let test_dequeue_of_never_enqueued () =
  let h = [ op ~call:0 ~return:1 H.Deq (H.Got 99) ] in
  Alcotest.(check bool) "phantom value rejected" false (lin h)

let test_concurrent_flexibility () =
  (* Two overlapping enqueues followed by two dequeues that observe them
     in either order: both response orders must be accepted. *)
  let base got1 got2 =
    [
      op ~thread:0 ~call:0 ~return:3 (H.Enq 1) H.Done;
      op ~thread:1 ~call:1 ~return:2 (H.Enq 2) H.Done;
      op ~thread:0 ~call:4 ~return:5 H.Deq (H.Got got1);
      op ~thread:0 ~call:6 ~return:7 H.Deq (H.Got got2);
    ]
  in
  Alcotest.(check bool) "order 1,2 ok" true (lin (base 1 2));
  Alcotest.(check bool) "order 2,1 ok" true (lin (base 2 1))

let test_real_time_order_enforced () =
  (* enq(1) completes strictly before enq(2) begins, so deq order 2,1 is
     NOT allowed — the same responses as above, minus the overlap. *)
  let h =
    [
      op ~thread:0 ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~thread:1 ~call:2 ~return:3 (H.Enq 2) H.Done;
      op ~thread:0 ~call:4 ~return:5 H.Deq (H.Got 2);
      op ~thread:0 ~call:6 ~return:7 H.Deq (H.Got 1);
    ]
  in
  Alcotest.(check bool) "real-time order enforced" false (lin h)

let test_concurrent_empty () =
  (* A dequeue overlapping an enqueue may legitimately report empty. *)
  let h =
    [
      op ~thread:0 ~call:0 ~return:3 (H.Enq 1) H.Done;
      op ~thread:1 ~call:1 ~return:2 H.Deq H.Empty;
      op ~thread:1 ~call:4 ~return:5 H.Deq (H.Got 1);
    ]
  in
  Alcotest.(check bool) "overlapping empty ok" true (lin h)

let test_duplicate_delivery_rejected () =
  let h =
    [
      op ~thread:0 ~call:0 ~return:1 (H.Enq 7) H.Done;
      op ~thread:0 ~call:2 ~return:3 H.Deq (H.Got 7);
      op ~thread:1 ~call:4 ~return:5 H.Deq (H.Got 7);
    ]
  in
  Alcotest.(check bool) "element delivered twice rejected" false (lin h)

let test_witness_order_is_valid () =
  let h =
    [
      op ~thread:0 ~call:0 ~return:5 (H.Enq 1) H.Done;
      op ~thread:1 ~call:1 ~return:4 (H.Enq 2) H.Done;
      op ~thread:2 ~call:2 ~return:3 H.Deq (H.Got 2);
    ]
  in
  match C.check h with
  | C.Not_linearizable -> Alcotest.fail "expected linearizable"
  | C.Linearizable order ->
      Alcotest.(check int) "witness covers all ops" (List.length h)
        (List.length order);
      (* Replaying the witness sequentially must satisfy the spec. *)
      let q = Queue.create () in
      List.iter
        (fun (c : H.completed) ->
          match (c.op, c.response) with
          | H.Enq v, H.Done -> Queue.push v q
          | H.Deq, H.Got v ->
              Alcotest.(check (option int)) "witness deq" (Some v)
                (Queue.take_opt q)
          | H.Deq, H.Empty ->
              Alcotest.(check bool) "witness empty" true (Queue.is_empty q)
          | _ -> Alcotest.fail "malformed witness op")
        order

(* ------------------------ bounded spec -------------------------- *)

let test_bounded_reject_at_capacity () =
  (* Full queue rejects: legal exactly at the bounded capacity. *)
  let h =
    [
      op ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~call:2 ~return:3 (H.Enq 2) H.Rejected;
    ]
  in
  Alcotest.(check bool) "rejection at capacity 1 accepted" true
    (lin ~capacity:1 h);
  Alcotest.(check bool) "rejection below capacity 2 non-linearizable" false
    (lin ~capacity:2 h)

let test_bounded_done_over_capacity () =
  (* Accepting past the bound is as wrong as rejecting under it. *)
  let h =
    [
      op ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~call:2 ~return:3 (H.Enq 2) H.Done;
    ]
  in
  Alcotest.(check bool) "second Done breaks capacity 1" false
    (lin ~capacity:1 h);
  Alcotest.(check bool) "fine at capacity 2" true (lin ~capacity:2 h)

let test_bounded_reject_then_reuse () =
  (* Reject while full, dequeue, then the slot is insertable again. *)
  let h =
    [
      op ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~call:2 ~return:3 (H.Enq 2) H.Rejected;
      op ~call:4 ~return:5 H.Deq (H.Got 1);
      op ~call:6 ~return:7 (H.Enq 3) H.Done;
      op ~call:8 ~return:9 H.Deq (H.Got 3);
    ]
  in
  Alcotest.(check bool) "reject / drain / reuse" true (lin ~capacity:1 h)

let test_bounded_reject_overlapping_deq () =
  (* The rejecting enqueue overlaps the dequeue that empties the queue:
     it may linearize before the removal (full -> Rejected is legal),
     even though after the removal there is room. *)
  let h =
    [
      op ~thread:0 ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~thread:0 ~call:2 ~return:5 H.Deq (H.Got 1);
      op ~thread:1 ~call:3 ~return:4 (H.Enq 2) H.Rejected;
    ]
  in
  Alcotest.(check bool) "overlapping rejection accepted" true
    (lin ~capacity:1 h);
  (* Sequentially after the dequeue, the same rejection is a bug. *)
  let h_seq =
    [
      op ~thread:0 ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~thread:0 ~call:2 ~return:3 H.Deq (H.Got 1);
      op ~thread:1 ~call:4 ~return:5 (H.Enq 2) H.Rejected;
    ]
  in
  Alcotest.(check bool) "rejection on empty queue rejected" false
    (lin ~capacity:1 h_seq)

let test_rejected_without_capacity () =
  (* Unbounded queues never reject: any Rejected response without
     ~capacity is non-linearizable, however plausible the schedule. *)
  let h = [ op ~call:0 ~return:1 (H.Enq 1) H.Rejected ] in
  Alcotest.(check bool) "Rejected under unbounded spec" false (lin h)

let test_rejected_dequeue_malformed () =
  (* Rejected is an enqueue response; on a dequeue it is malformed even
     under the bounded spec. *)
  let h =
    [
      op ~call:0 ~return:1 (H.Enq 1) H.Done;
      op ~call:2 ~return:3 H.Deq H.Rejected;
    ]
  in
  Alcotest.(check bool) "Deq/Rejected rejected (bounded)" false
    (lin ~capacity:1 h);
  Alcotest.(check bool) "Deq/Rejected rejected (unbounded)" false (lin h)

let test_size_guard () =
  let h =
    List.init 63 (fun i -> op ~call:(2 * i) ~return:((2 * i) + 1) (H.Enq i) H.Done)
  in
  Alcotest.check_raises "over 62 ops rejected"
    (Invalid_argument "Checker.check: histories over 62 operations not supported")
    (fun () -> ignore (C.check h))

(* --------------------------- recorder --------------------------- *)

let test_history_recorder () =
  let h = H.create () in
  H.call h ~thread:0 (H.Enq 5);
  Alcotest.(check bool) "pending registered" true (H.has_pending h);
  H.return h ~thread:0 H.Done;
  H.call h ~thread:1 H.Deq;
  H.return h ~thread:1 (H.Got 5);
  let completed = H.completed h in
  Alcotest.(check int) "two completed" 2 (List.length completed);
  Alcotest.(check bool) "no pending left" false (H.has_pending h);
  Alcotest.(check bool) "recorded history linearizable" true (lin completed);
  (* intervals are well-formed and ordered *)
  List.iter
    (fun (c : H.completed) ->
      Alcotest.(check bool) "call < return" true (c.call < c.return))
    completed

let test_history_recorder_errors () =
  let h = H.create () in
  Alcotest.check_raises "return without call"
    (Invalid_argument "History.return: no pending call for thread")
    (fun () -> H.return h ~thread:3 H.Done)

(* -------------------------- batch spec -------------------------- *)

(* Batch operations are recorded as per-element sub-ops sharing the
   batch's real-time window: increasing call ticks (the intra-batch
   order) and one shared return tick. The checker's per-thread
   program-order constraint is what pins intra-batch FIFO — these
   histories would all be linearizable under the interval rule alone. *)

let batch_enq thread ~call ~return vs =
  List.mapi
    (fun i v -> op ~thread ~call:(call + i) ~return (H.Enq v) H.Done)
    vs

let test_batch_fifo_accepted () =
  (* enqueue_batch [1;2] then dequeues observing batch order *)
  let h =
    batch_enq 0 ~call:0 ~return:2 [ 1; 2 ]
    @ [
        op ~thread:1 ~call:3 ~return:4 H.Deq (H.Got 1);
        op ~thread:1 ~call:5 ~return:6 H.Deq (H.Got 2);
      ]
  in
  Alcotest.(check bool) "batch order observed" true (lin h)

let test_batch_fifo_violation_rejected () =
  (* Same window, dequeues observing the batch in REVERSE order: the
     sub-ops overlap in real time, so only the program-order constraint
     can reject this. *)
  let h =
    batch_enq 0 ~call:0 ~return:2 [ 1; 2 ]
    @ [
        op ~thread:1 ~call:3 ~return:4 H.Deq (H.Got 2);
        op ~thread:1 ~call:5 ~return:6 H.Deq (H.Got 1);
      ]
  in
  Alcotest.(check bool) "intra-batch reorder rejected" false (lin h)

let test_batch_exactly_once () =
  (* One batch element delivered twice: conservation inside the spec. *)
  let h =
    batch_enq 0 ~call:0 ~return:2 [ 1; 2 ]
    @ [
        op ~thread:1 ~call:3 ~return:4 H.Deq (H.Got 1);
        op ~thread:1 ~call:5 ~return:6 H.Deq (H.Got 1);
      ]
  in
  Alcotest.(check bool) "duplicate batch element rejected" false (lin h)

let test_batches_interleave_across_threads () =
  (* Two concurrent batches may interleave with each other at batch
     granularity — only the order WITHIN each batch is pinned. *)
  let deqs got =
    List.mapi
      (fun i v ->
        op ~thread:2 ~call:(10 + (2 * i)) ~return:(11 + (2 * i)) H.Deq
          (H.Got v))
      got
  in
  let both =
    batch_enq 0 ~call:0 ~return:4 [ 1; 2 ] @ batch_enq 1 ~call:1 ~return:4 [ 3; 4 ]
  in
  Alcotest.(check bool) "interleaved batches ok" true
    (lin (both @ deqs [ 1; 3; 2; 4 ]));
  Alcotest.(check bool) "intra-batch order still pinned" false
    (lin (both @ deqs [ 2; 3; 1; 4 ]))

let test_batch_partial_reject_on_full () =
  (* A bounded batch accepts a prefix and rejects the rest at one full
     observation: Done then Rejected is legal exactly at capacity 1. *)
  let h =
    [
      op ~thread:0 ~call:0 ~return:2 (H.Enq 1) H.Done;
      op ~thread:0 ~call:1 ~return:2 (H.Enq 2) H.Rejected;
    ]
  in
  Alcotest.(check bool) "partial batch at capacity 1" true
    (lin ~capacity:1 h);
  Alcotest.(check bool) "rejection below capacity 2 rejected" false
    (lin ~capacity:2 h);
  Alcotest.(check bool) "rejection under unbounded spec rejected" false
    (lin h)

let test_batch_short_dequeue_empty_suffix () =
  (* A short batch dequeue answers Empty for its unserved suffix; all
     the Empties can share the one observed-empty point. *)
  let h =
    batch_enq 0 ~call:0 ~return:2 [ 1; 2 ]
    @ [
        op ~thread:1 ~call:3 ~return:7 H.Deq (H.Got 1);
        op ~thread:1 ~call:4 ~return:7 H.Deq (H.Got 2);
        op ~thread:1 ~call:5 ~return:7 H.Deq H.Empty;
        op ~thread:1 ~call:6 ~return:7 H.Deq H.Empty;
      ]
  in
  Alcotest.(check bool) "short batch Empty suffix ok" true (lin h);
  (* An Empty BEFORE a Got in the same batch is a FIFO violation of the
     batch dequeue itself: the suffix observed empty, then a later
     sub-op got a value that was already there. *)
  let bad =
    batch_enq 0 ~call:0 ~return:2 [ 1 ]
    @ [
        op ~thread:1 ~call:3 ~return:5 H.Deq H.Empty;
        op ~thread:1 ~call:4 ~return:5 H.Deq (H.Got 1);
      ]
  in
  Alcotest.(check bool) "Empty before Got within batch rejected" false
    (lin bad)

let test_batch_recorder () =
  let h = H.create () in
  H.call_batch h ~thread:0 [ H.Enq 1; H.Enq 2; H.Enq 3 ];
  Alcotest.(check bool) "batch pending" true (H.has_pending h);
  H.return_batch h ~thread:0 [ H.Done; H.Done; H.Done ];
  H.call_batch h ~thread:1 [ H.Deq; H.Deq ];
  H.return_batch h ~thread:1 [ H.Got 1; H.Got 2 ];
  let completed = H.completed h in
  Alcotest.(check int) "five sub-ops" 5 (List.length completed);
  Alcotest.(check bool) "no pending left" false (H.has_pending h);
  Alcotest.(check bool) "recorded batch history linearizable" true
    (lin completed);
  (* Sub-ops of one batch share a return tick and carry increasing call
     ticks (their intra-batch order). *)
  let enqs =
    List.filter (fun (c : H.completed) -> c.thread = 0) completed
  in
  (match enqs with
  | [ a; b; c ] ->
      Alcotest.(check bool) "calls increase" true
        (a.call < b.call && b.call < c.call);
      Alcotest.(check bool) "returns shared" true
        (a.return = b.return && b.return = c.return)
  | _ -> Alcotest.fail "expected three enqueue sub-ops");
  Alcotest.check_raises "response count mismatch"
    (Invalid_argument "History.return_batch: response count mismatch")
    (fun () ->
      H.call_batch h ~thread:2 [ H.Deq; H.Deq ];
      H.return_batch h ~thread:2 [ H.Empty ])

(* ---------------------- qcheck properties ----------------------- *)

(* Independent oracle: enumerate ALL permutations of the operations
   (histories are kept tiny), keep those compatible with real-time
   precedence (if op a returned before op b was invoked, a must precede
   b), and replay each against the model queue. Shares no code or search
   strategy with the memoized Wing-Gong checker. *)
let brute_force (ops : H.completed list) =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
        (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x rest)
  in
  let rec permutations = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert_everywhere x) (permutations rest)
  in
  let respects_precedence order =
    let arr = Array.of_list order in
    let ok = ref true in
    Array.iteri
      (fun i (a : H.completed) ->
        Array.iteri
          (fun j (b : H.completed) ->
            if i < j && b.return < a.call then ok := false)
          arr)
      arr;
    !ok
  in
  let replays order =
    let q = Queue.create () in
    List.for_all
      (fun (c : H.completed) ->
        match (c.op, c.response) with
        | H.Enq v, H.Done ->
            Queue.push v q;
            true
        | H.Deq, H.Got v -> Queue.take_opt q = Some v
        | H.Deq, H.Empty -> Queue.is_empty q
        | _ -> false)
      order
  in
  List.exists
    (fun order -> respects_precedence order && replays order)
    (permutations ops)

(* Random tiny concurrent histories: per-thread sequential intervals with
   random spacing and arbitrary (often inconsistent) responses. The
   checker must agree with the brute-force oracle on every one. *)
let history_gen =
  QCheck2.Gen.(
    let* threads = int_range 1 3 in
    let* ops_per_thread = int_range 1 2 in
    let* raw =
      list_size
        (return (threads * ops_per_thread))
        (tup3 (int_bound 2) (int_bound 3) (int_bound 4))
    in
    (* Assign ops to threads round-robin; give thread t's k-th op the
       interval [base, base + 1 + gap] with bases spread so intervals
       overlap across threads but stay sequential within one. The
       per-thread clamp enforces the sequentiality: a thread's next
       call strictly follows its previous return, as in any history
       the recorder can produce — the checker's per-thread
       program-order constraint (which restores intra-batch order)
       assumes exactly this well-formedness. *)
    let last_return = Array.make threads (-1) in
    let ops =
      List.mapi
        (fun i (kind, v, gap) ->
          let thread = i mod threads in
          let call =
            max ((i * 2) + (gap mod 3)) (last_return.(thread) + 1)
          in
          let return = call + 1 + gap in
          last_return.(thread) <- return;
          match kind with
          | 0 -> { H.thread; op = H.Enq v; response = H.Done; call; return }
          | 1 ->
              { H.thread; op = H.Deq; response = H.Got v; call; return }
          | _ -> { H.thread; op = H.Deq; response = H.Empty; call; return })
        raw
    in
    return ops)

let checker_agrees_with_brute_force =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"checker ≡ brute-force oracle" ~count:500
       ~print:(fun ops -> Format.asprintf "%a" C.pp_history ops)
       history_gen
       (fun ops -> lin ops = brute_force ops))

(* Any history generated by running ops sequentially against a real FIFO
   is linearizable. *)
let sequential_histories_linearizable =
  QCheck2.Test.make ~name:"sequential executions are linearizable"
    ~count:300
    QCheck2.Gen.(
      list_size (int_bound 30)
        (oneof [ map (fun v -> `Enq v) (int_bound 100); return `Deq ]))
    (fun script ->
      let h = H.create () in
      let q = Queue.create () in
      List.iter
        (fun cmd ->
          match cmd with
          | `Enq v ->
              H.call h ~thread:0 (H.Enq v);
              Queue.push v q;
              H.return h ~thread:0 H.Done
          | `Deq -> (
              H.call h ~thread:0 H.Deq;
              match Queue.take_opt q with
              | Some v -> H.return h ~thread:0 (H.Got v)
              | None -> H.return h ~thread:0 H.Empty))
        script;
      lin (H.completed h))

(* Corrupting one dequeue response of a valid sequential history with a
   value that was never enqueued must break linearizability. *)
let corrupted_histories_rejected =
  QCheck2.Test.make ~name:"phantom-value corruption is detected" ~count:200
    QCheck2.Gen.(int_range 1 20)
    (fun n ->
      let ops =
        List.concat
          (List.init n (fun i ->
               [
                 op ~call:(4 * i) ~return:((4 * i) + 1) (H.Enq i) H.Done;
                 op ~call:((4 * i) + 2) ~return:((4 * i) + 3) H.Deq
                   (H.Got (if i = n - 1 then 777777 else i));
               ]))
      in
      not (lin ops))

(* Thread-safe recording on real domains: concurrent operations against
   the mutex queue recorded with the locked recorder must produce a
   linearizable history (the lock coarsens intervals but keeps the check
   sound). *)
let test_thread_safe_recording () =
  let module Mq = Wfq_core.Mutex_queue in
  let h = H.create ~thread_safe:true () in
  let q = Mq.create ~num_threads:3 () in
  let worker thread () =
    for i = 1 to 8 do
      if i mod 2 = 1 then begin
        H.call h ~thread (H.Enq ((thread * 100) + i));
        Mq.enqueue q ~tid:thread ((thread * 100) + i);
        H.return h ~thread H.Done
      end
      else begin
        H.call h ~thread H.Deq;
        match Mq.dequeue q ~tid:thread with
        | Some v -> H.return h ~thread (H.Got v)
        | None -> H.return h ~thread H.Empty
      end
    done
  in
  let ds = List.init 3 (fun t -> Domain.spawn (worker t)) in
  List.iter Domain.join ds;
  let completed = H.completed h in
  Alcotest.(check int) "all recorded" 24 (List.length completed);
  Alcotest.(check bool) "real-domain history linearizable" true
    (lin completed)

let () =
  Alcotest.run "lincheck"
    [
      ( "checker",
        [
          Alcotest.test_case "empty history" `Quick test_empty_history;
          Alcotest.test_case "sequential FIFO accepted" `Quick
            test_sequential_good;
          Alcotest.test_case "LIFO rejected" `Quick
            test_sequential_wrong_order;
          Alcotest.test_case "false empty rejected" `Quick
            test_sequential_false_empty;
          Alcotest.test_case "phantom value rejected" `Quick
            test_dequeue_of_never_enqueued;
          Alcotest.test_case "overlap permits both orders" `Quick
            test_concurrent_flexibility;
          Alcotest.test_case "real-time order enforced" `Quick
            test_real_time_order_enforced;
          Alcotest.test_case "overlapping empty accepted" `Quick
            test_concurrent_empty;
          Alcotest.test_case "duplicate delivery rejected" `Quick
            test_duplicate_delivery_rejected;
          Alcotest.test_case "witness order replays" `Quick
            test_witness_order_is_valid;
          Alcotest.test_case "size guard" `Quick test_size_guard;
        ] );
      ( "bounded spec",
        [
          Alcotest.test_case "reject legal only at capacity" `Quick
            test_bounded_reject_at_capacity;
          Alcotest.test_case "accept illegal over capacity" `Quick
            test_bounded_done_over_capacity;
          Alcotest.test_case "reject / drain / reuse" `Quick
            test_bounded_reject_then_reuse;
          Alcotest.test_case "overlapping rejection" `Quick
            test_bounded_reject_overlapping_deq;
          Alcotest.test_case "Rejected without capacity" `Quick
            test_rejected_without_capacity;
          Alcotest.test_case "Rejected dequeue malformed" `Quick
            test_rejected_dequeue_malformed;
        ] );
      ( "batch spec",
        [
          Alcotest.test_case "intra-batch FIFO accepted" `Quick
            test_batch_fifo_accepted;
          Alcotest.test_case "intra-batch reorder rejected" `Quick
            test_batch_fifo_violation_rejected;
          Alcotest.test_case "exactly-once per element" `Quick
            test_batch_exactly_once;
          Alcotest.test_case "batches interleave across threads" `Quick
            test_batches_interleave_across_threads;
          Alcotest.test_case "partial batch Rejected on full" `Quick
            test_batch_partial_reject_on_full;
          Alcotest.test_case "short batch Empty suffix" `Quick
            test_batch_short_dequeue_empty_suffix;
          Alcotest.test_case "batch recorder" `Quick test_batch_recorder;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "records calls and returns" `Quick
            test_history_recorder;
          Alcotest.test_case "rejects unmatched return" `Quick
            test_history_recorder_errors;
          Alcotest.test_case "thread-safe recording on domains" `Quick
            test_thread_safe_recording;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest sequential_histories_linearizable;
          QCheck_alcotest.to_alcotest corrupted_histories_rejected;
          checker_agrees_with_brute_force;
        ] );
    ]
