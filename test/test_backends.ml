(* The registry-driven conformance battery (docs/BACKENDS.md): every
   backend registered in Wfq_core.Backends automatically runs

   - the sequential suite (fifo basics, empty-dequeue stability,
     drain/refill, differential vs Stdlib.Queue),
   - a real-domains pairs stress,
   - the (bounded-aware) lincheck litmus under the model checker, and
   - the batch lincheck spec,

   replacing the hand-maintained per-backend row lists the concurrent
   test file used to carry. A new backend gets all of this from its one
   registration line; nothing here names a backend. *)

module Q = Wfq_core.Queue_intf
module B = Wfq_core.Backends
module SA = Wfq_sim.Sim_atomic
module Ck = Wfq_sim.Check

let backends = B.all ()
let bid (module Bk : Q.BACKEND) = Bk.id

(* ------------------------------------------------------------------ *)
(* Registry sanity *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  let ids = B.ids () in
  Alcotest.(check bool) "non-empty" true (ids <> []);
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "ids unique" (List.length ids) (List.length sorted);
  List.iter
    (fun id -> Alcotest.(check string) "find roundtrip" id (bid (B.find id)))
    ids;
  Alcotest.(check bool) "polylog registered" true (List.mem "polylog" ids);
  match B.find "no-such-backend" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find of unknown id must raise"

(* ------------------------------------------------------------------ *)
(* Sequential suite (real atomics, one thread) *)
(* ------------------------------------------------------------------ *)

let test_seq_fifo bk () =
  let i : int Q.instance = B.instantiate bk ~num_threads:1 () in
  Alcotest.(check bool) "fresh empty" true (i.Q.empty ());
  Alcotest.(check (option int)) "deq on empty" None (i.Q.deq ~tid:0);
  List.iter (fun v -> i.Q.enq ~tid:0 v) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length" 5 (i.Q.size ());
  Alcotest.(check (list int)) "contents" [ 1; 2; 3; 4; 5 ] (i.Q.dump ());
  Alcotest.(check (option int)) "fifo" (Some 1) (i.Q.deq ~tid:0);
  Alcotest.(check bool) "try_enq accepts" true (i.Q.try_enq ~tid:0 6);
  Alcotest.(check (list int)) "mixed" [ 2; 3; 4; 5; 6 ] (i.Q.dump ());
  (match i.Q.check () with Ok () -> () | Error m -> Alcotest.fail m);
  for v = 2 to 6 do
    Alcotest.(check (option int)) "drain" (Some v) (i.Q.deq ~tid:0)
  done;
  Alcotest.(check (option int)) "empty again" None (i.Q.deq ~tid:0)

let test_seq_empty_runs bk () =
  let i : int Q.instance = B.instantiate bk ~num_threads:1 () in
  for _ = 1 to 10 do
    Alcotest.(check (option int)) "still empty" None (i.Q.deq ~tid:0)
  done;
  i.Q.enq ~tid:0 42;
  Alcotest.(check (option int)) "revived" (Some 42) (i.Q.deq ~tid:0)

let test_seq_batches bk () =
  let i : int Q.instance = B.instantiate bk ~num_threads:1 () in
  i.Q.enq_batch ~tid:0 [ 1; 2; 3 ];
  i.Q.enq_batch ~tid:0 [];
  Alcotest.(check (list int)) "batch in" [ 1; 2; 3 ] (i.Q.dump ());
  Alcotest.(check (list int)) "batch out" [ 1; 2 ] (i.Q.deq_batch ~tid:0 ~n:2);
  Alcotest.(check (list int)) "short out" [ 3 ] (i.Q.deq_batch ~tid:0 ~n:5);
  match i.Q.check () with Ok () -> () | Error m -> Alcotest.fail m

let test_seq_differential bk () =
  let i : int Q.instance = B.instantiate bk ~num_threads:1 () in
  let model = Queue.create () in
  let rng = Wfq_primitives.Rng.create ~seed:23 in
  for v = 1 to 800 do
    if Wfq_primitives.Rng.bool rng then begin
      (* [try_enq] keeps bounded backends honest if a configuration
         ever registers a capacity smaller than this run. *)
      if i.Q.try_enq ~tid:0 v then Queue.push v model
    end
    else if i.Q.deq ~tid:0 <> Queue.take_opt model then
      Alcotest.failf "diverged from model at op %d" v
  done;
  Alcotest.(check (list int))
    "final contents"
    (List.of_seq (Queue.to_seq model))
    (i.Q.dump ())

(* ------------------------------------------------------------------ *)
(* Real domains: pairs stress *)
(* ------------------------------------------------------------------ *)

let test_domains bk () =
  let threads = 4 and iters = 1_500 in
  let i : int Q.instance = B.instantiate bk ~num_threads:threads () in
  let empties = Atomic.make 0 in
  let ds =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for n = 1 to iters do
              i.Q.enq ~tid ((tid * iters) + n);
              match i.Q.deq ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no empties in pairs" 0 (Atomic.get empties);
  Alcotest.(check int) "drained" 0 (i.Q.size ());
  match i.Q.check () with Ok () -> () | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Model-checked lincheck litmuses (sim-safe backends) *)
(* ------------------------------------------------------------------ *)

let sim_ops bk : int Q.instance Ck.ops =
  {
    Ck.create =
      (fun ~num_threads -> B.instantiate_with (module SA) bk ~num_threads ());
    enqueue = (fun i ~tid v -> i.Q.enq ~tid v);
    dequeue = (fun i ~tid -> i.Q.deq ~tid);
    contents = (fun i -> i.Q.dump ());
  }

let run_battery_litmus (module Bk : Q.BACKEND) scripts =
  Ck.run ~mode:Ck.Dpor ~max_schedules:300_000
    ?capacity:Bk.capacity
    ~try_enqueue:(fun i ~tid v -> i.Q.try_enq ~tid v)
    ~enqueue_batch:(fun i ~tid vs -> i.Q.enq_batch ~tid vs)
    ~dequeue_batch:(fun i ~tid ~n -> i.Q.deq_batch ~tid ~n)
    ~extra_check:(fun i -> i.Q.check ())
    ~queue:(sim_ops (module Bk))
    ~scripts ()

let expect_clean name (r : Ck.report) =
  (match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "%s: %a" name Ck.pp_failure f);
  Alcotest.(check bool) (name ^ ": exhausted") true r.Ck.exhausted

let test_lincheck (module Bk : Q.BACKEND) () =
  expect_clean Bk.id
    (run_battery_litmus (module Bk) [ [ `Enq 1 ]; [ `Deq ] ])

let test_lincheck_batch (module Bk : Q.BACKEND) () =
  expect_clean (Bk.id ^ " batch")
    (run_battery_litmus (module Bk)
       [ [ `Enq_batch [ 1; 2 ] ]; [ `Deq_batch 2 ] ])

(* ------------------------------------------------------------------ *)

let per_backend mk label =
  List.map
    (fun bk -> Alcotest.test_case (bid bk ^ " " ^ label) `Quick (mk bk))
    backends

let sim_backends =
  List.filter (fun (module Bk : Q.BACKEND) -> Bk.sim_safe) backends

let per_sim_backend mk label =
  List.map
    (fun bk -> Alcotest.test_case (bid bk ^ " " ^ label) `Quick (mk bk))
    sim_backends

let () =
  Alcotest.run "backend-battery"
    [
      ("registry", [ Alcotest.test_case "sanity" `Quick test_registry ]);
      ( "sequential",
        per_backend test_seq_fifo "fifo"
        @ per_backend test_seq_empty_runs "empty runs"
        @ per_backend test_seq_batches "batches"
        @ per_backend test_seq_differential "differential" );
      ("domains", per_backend test_domains "pairs");
      ( "lincheck",
        per_sim_backend test_lincheck "enq|deq"
        @ per_sim_backend test_lincheck_batch "batch spec" );
    ]
