(* The model checker's own test suite: DPOR trace counts pinned against
   hand-computed Mazurkiewicz-trace identities, shrinking, forced-replay
   determinism, and the Explore × Lincheck driver catching seeded bugs.

   Litmus counts are exact: for two straight-line fibers taking s0 and s1
   scheduler slices (shared accesses + one startup slice each),
   exhaustive exploration runs C(s0 + s1, s0) interleavings, while DPOR
   runs one schedule per Mazurkiewicz trace — 1 when the fibers touch
   disjoint cells, C(k1 + k2, k1) when every access conflicts. *)

module S = Wfq_sim.Scheduler
module SA = Wfq_sim.Sim_atomic
module D = Wfq_sim.Dpor
module E = Wfq_sim.Explore
module Sh = Wfq_sim.Shrink
module Ck = Wfq_sim.Check
module KpSim = Wfq_core.Kp_queue.Make (SA)
module FpsSim = Wfq_core.Kp_queue_fps.Make (SA)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let binom n k =
  let k = min k (n - k) in
  let acc = ref 1.0 in
  for i = 1 to k do
    acc := !acc *. float_of_int (n - k + i) /. float_of_int i
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Litmus programs                                                    *)
(* ------------------------------------------------------------------ *)

(* Store buffering: W x / R y vs W y / R x. Sequential consistency
   forbids both reads returning 0; three Mazurkiewicz traces exist (the
   fourth combination of the two race orders is cyclic). *)
let store_buffering () =
  let x = SA.make 0 and y = SA.make 0 in
  let r0 = ref (-1) and r1 = ref (-1) in
  let f0 () =
    SA.set x 1;
    r0 := SA.get y
  in
  let f1 () =
    SA.set y 1;
    r1 := SA.get x
  in
  let check (_ : S.result) =
    if !r0 = 0 && !r1 = 0 then Error "store buffering: r0 = r1 = 0"
    else Ok ()
  in
  ([| f0; f1 |], check)

(* Message passing: W data / W flag vs R flag / R data. Forbidden:
   seeing the flag but not the data. Same dependency shape as store
   buffering: three traces. *)
let message_passing () =
  let data = SA.make 0 and flag = SA.make 0 in
  let rf = ref (-1) and rd = ref (-1) in
  let f0 () =
    SA.set data 1;
    SA.set flag 1
  in
  let f1 () =
    rf := SA.get flag;
    rd := SA.get data
  in
  let check (_ : S.result) =
    if !rf = 1 && !rd = 0 then Error "message passing: flag without data"
    else Ok ()
  in
  ([| f0; f1 |], check)

(* Two fibers on disjoint cells: every interleaving is equivalent. *)
let independent a b () =
  let x = SA.make 0 and y = SA.make 0 in
  let f0 () =
    for _ = 1 to a do
      SA.set x 1
    done
  in
  let f1 () =
    for _ = 1 to b do
      SA.set y 1
    done
  in
  ([| f0; f1 |], fun (_ : S.result) -> Ok ())

(* Two fibers writing the same cell: every interleaving is its own
   trace — C(k1 + k2, k1) of them. *)
let same_loc k1 k2 () =
  let c = SA.make 0 in
  let f0 () =
    for _ = 1 to k1 do
      SA.set c 0
    done
  in
  let f1 () =
    for _ = 1 to k2 do
      SA.set c 1
    done
  in
  ([| f0; f1 |], fun (_ : S.result) -> Ok ())

(* Non-atomic increment: the classic lost update. *)
let racy_counter () =
  let c = SA.make 0 in
  let incr () =
    let v = SA.get c in
    SA.set c (v + 1)
  in
  let check (_ : S.result) =
    if SA.peek c <> 2 then Error "lost increment" else Ok ()
  in
  ([| incr; incr |], check)

(* Atomic increment: correct under every schedule. *)
let faa_counter () =
  let c = SA.make 0 in
  let incr () = ignore (SA.fetch_and_add c 1) in
  let check (_ : S.result) =
    if SA.peek c <> 2 then Error "lost increment" else Ok ()
  in
  ([| incr; incr |], check)

(* ------------------------------------------------------------------ *)
(* Litmus assertions                                                  *)
(* ------------------------------------------------------------------ *)

let run_both make = (D.explore ~make (), E.exhaustive ~max_schedules:1_000 ~make ())

let test_store_buffering () =
  let d, e = run_both store_buffering in
  Alcotest.(check int) "dpor: one schedule per trace" 3 d.D.schedules;
  Alcotest.(check int) "dpor: no redundant executions" 0 d.D.redundant;
  Alcotest.(check bool) "dpor exhausted" true d.D.exhausted;
  Alcotest.(check int) "exhaustive: C(6,3) interleavings" 20 e.E.schedules;
  Alcotest.(check bool) "dpor: SC holds" true (d.D.failure = None);
  Alcotest.(check bool) "exhaustive agrees" true (e.E.failure = None)

let test_message_passing () =
  let d, e = run_both message_passing in
  Alcotest.(check int) "dpor traces" 3 d.D.schedules;
  Alcotest.(check int) "exhaustive interleavings" 20 e.E.schedules;
  Alcotest.(check bool) "dpor: no stale read" true (d.D.failure = None);
  Alcotest.(check bool) "exhaustive agrees" true (e.E.failure = None)

let test_independent_identity () =
  let d, e = run_both (independent 3 3) in
  (* 3 accesses + 1 startup slice per fiber: C(8,4) interleavings, all
     equivalent — the full C(a+b, a) blow-up collapses to 1. *)
  Alcotest.(check int) "exhaustive: C(8,4)" 70 e.E.schedules;
  Alcotest.(check int) "binomial identity"
    (int_of_float (binom 8 4))
    e.E.schedules;
  Alcotest.(check int) "dpor: a single trace" 1 d.D.schedules;
  Alcotest.(check int) "reduction ratio pinned: 70x" 70
    (e.E.schedules / d.D.schedules)

let test_same_loc_counts () =
  let d22 = D.explore ~make:(same_loc 2 2) () in
  let d32 = D.explore ~make:(same_loc 3 2) () in
  Alcotest.(check int) "2x2 writers: C(4,2) traces" 6 d22.D.schedules;
  Alcotest.(check int) "3x2 writers: C(5,2) traces" 10 d32.D.schedules;
  Alcotest.(check bool) "exhausted" true (d22.D.exhausted && d32.D.exhausted)

let test_violation_parity () =
  (* DPOR must find exactly the violations exhaustive finds — present on
     the racy counter, absent on the atomic one. *)
  let d, e = run_both racy_counter in
  (match (d.D.failure, e.E.failure) with
  | Some (_, dm), Some (_, em) ->
      Alcotest.(check string) "same violation" em dm
  | _ -> Alcotest.fail "racy counter: both explorers must fail");
  let d, e = run_both faa_counter in
  Alcotest.(check bool) "faa clean under dpor" true (d.D.failure = None);
  Alcotest.(check bool) "faa clean under exhaustive" true (e.E.failure = None);
  Alcotest.(check int) "faa: 2 traces" 2 d.D.schedules;
  Alcotest.(check int) "faa: 6 interleavings" 6 e.E.schedules

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

(* Fails iff fiber 1 observes a = 1 but b = 0, i.e. its two reads land
   between fiber 0's two writes. The minimal forced schedule is 5
   decisions: run fiber 0 through W a, then fiber 1 through both reads. *)
let window () =
  let a = SA.make 0 and b = SA.make 0 in
  let ra = ref 0 and rb = ref 0 in
  let f0 () =
    SA.set a 1;
    SA.set b 1
  in
  let f1 () =
    ra := SA.get a;
    rb := SA.get b
  in
  let check (_ : S.result) =
    if !ra = 1 && !rb = 0 then Error "a before b" else Ok ()
  in
  ([| f0; f1 |], check)

let test_shrink_minimal () =
  let d = D.explore ~make:window () in
  match d.D.failure with
  | None -> Alcotest.fail "window bug not found"
  | Some (forced, _) ->
      let s = Sh.shrink ~make:window ~forced () in
      Alcotest.(check int) "minimal forced prefix" 5
        (List.length s.Sh.forced);
      Alcotest.(check string) "failure preserved" "a before b" s.Sh.message;
      Alcotest.(check bool) "shrunk from a longer trace" true
        (s.Sh.original_length > List.length s.Sh.forced);
      (* The shrunk prefix must itself replay to the failure. *)
      let fibers, check = window () in
      let r = S.run ~strategy:S.First_enabled ~forced:s.Sh.forced fibers in
      Alcotest.(check bool) "shrunk schedule still fails" true
        (check r = Error "a before b");
      (* Pretty-printer: one line per forced decision with fiber + access. *)
      let out = Format.asprintf "%a" Sh.pp s in
      Alcotest.(check bool) "pp names fibers" true
        (contains_sub out "fiber 1");
      Alcotest.(check bool) "pp shows failure" true
        (contains_sub out "a before b")

let test_shrink_rejects_passing_schedule () =
  Alcotest.check_raises "non-failing schedule rejected"
    (Invalid_argument "Shrink.shrink: the given schedule does not fail")
    (fun () -> ignore (Sh.shrink ~make:window ~forced:[] ()))

(* ------------------------------------------------------------------ *)
(* Forced-replay determinism (the shrinker's core assumption)         *)
(* ------------------------------------------------------------------ *)

let kp_opt_ops : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        KpSim.create_with ~help:Wfq_core.Kp_queue.Help_one_cyclic
          ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ());
    enqueue = (fun q ~tid v -> KpSim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> KpSim.dequeue q ~tid);
    contents = KpSim.to_list;
  }

let fps_ops ?fault ~max_failures () : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        FpsSim.create_with ?fault ~max_failures
          ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
          ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
    enqueue = (fun q ~tid v -> FpsSim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> FpsSim.dequeue q ~tid);
    contents = FpsSim.to_list;
  }

let test_replay_determinism () =
  let mfs = ref 0 in
  let make () =
    Ck.make_scenario ~queue:kp_opt_ops
      ~scripts:[ [ `Enq 1 ]; [ `Deq ] ]
      ~init:[] ~max_fiber_steps:mfs ()
  in
  (* Record a random schedule, then replay its decision trace — twice —
     against fresh executions. Outcome, per-fiber step counts and the
     full decision sequence must be identical (cell ids are
     per-execution, so accesses are compared by kind). *)
  let fibers, _ = make () in
  let r0 = S.run ~strategy:(S.Random_seeded 7) fibers in
  let forced = List.map (fun d -> d.S.d_index) r0.S.decisions in
  let key (r : S.result) =
    ( r.S.outcome,
      Array.to_list r.S.steps,
      r.S.total_steps,
      List.map
        (fun d ->
          ( d.S.d_chosen,
            d.S.d_index,
            Option.map (fun (a : S.access) -> a.S.kind) d.S.d_access ))
        r.S.decisions )
  in
  let replay () =
    let fibers, check = make () in
    let r = S.run ~strategy:S.First_enabled ~forced fibers in
    (match check r with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("replayed schedule failed check: " ^ m));
    key r
  in
  Alcotest.(check bool) "replay 1 bit-identical" true (replay () = key r0);
  Alcotest.(check bool) "replay 2 bit-identical" true (replay () = key r0)

(* ------------------------------------------------------------------ *)
(* The pinned acceptance scenario (>= 40 shared accesses)             *)
(* ------------------------------------------------------------------ *)

let test_pinned_kp_scenario () =
  (* Two concurrent slow-path enqueues on the paper's fastest variant:
     41 shared accesses. DPOR covers every trace in ~69k schedules (a
     couple of seconds); the exhaustive interleaving count is
     C(43,21) ~ 5.4e11 — infeasible by six orders of magnitude. *)
  let scripts = [ [ `Enq 1 ]; [ `Enq 2 ] ] in
  let mfs = ref 0 in
  let fibers, check =
    Ck.make_scenario ~queue:kp_opt_ops ~scripts ~init:[]
      ~max_fiber_steps:mfs ()
  in
  let probe = S.run ~strategy:S.First_enabled fibers in
  (match check probe with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("baseline schedule failed: " ^ m));
  let accesses =
    List.length
      (List.filter (fun d -> d.S.d_access <> None) probe.S.decisions)
  in
  Alcotest.(check bool)
    (Printf.sprintf "scenario has >= 40 shared accesses (got %d)" accesses)
    true (accesses >= 40);
  (* Exhaustive infeasibility, from the measured per-fiber slice counts:
     the interleaving count C(s0+s1, s0) dwarfs any schedule budget. *)
  let s0 = probe.S.steps.(0) and s1 = probe.S.steps.(1) in
  let interleavings = binom (s0 + s1) s0 in
  Alcotest.(check bool)
    (Printf.sprintf "exhaustive infeasible: C(%d,%d) = %.3g > 1e9"
       (s0 + s1) s0 interleavings)
    true
    (interleavings > 1e9);
  (* DPOR, by contrast, terminates — with the trace count pinned. *)
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:200_000 ~queue:kp_opt_ops ~scripts ()
  in
  (match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "unexpected failure: %a" Ck.pp_failure f);
  Alcotest.(check bool) "dpor exhausted the trace space" true r.Ck.exhausted;
  Alcotest.(check int) "Mazurkiewicz trace count pinned" 69_363 r.Ck.schedules

(* ------------------------------------------------------------------ *)
(* Seeded bugs through the Explore × Lincheck driver                  *)
(* ------------------------------------------------------------------ *)

(* Seeded mutant: Michael-Scott dequeue with the linearization CAS on
   [head] downgraded to a blind store — the guard that makes two
   concurrent dequeues of the same sentinel impossible, dropped. Two
   racing dequeues then deliver the same element twice. *)
module Ms_blind = struct
  type 'a node = { value : 'a option; next : 'a node option SA.t }
  type 'a t = { head : 'a node SA.t; tail : 'a node SA.t }

  let create ~num_threads:_ =
    let s = { value = None; next = SA.make None } in
    { head = SA.make s; tail = SA.make s }

  let enqueue t ~tid:_ value =
    let node = { value = Some value; next = SA.make None } in
    let rec loop () =
      let last = SA.get t.tail in
      let next = SA.get last.next in
      if last == SA.get t.tail then
        match next with
        | None ->
            if SA.compare_and_set last.next None (Some node) then
              ignore (SA.compare_and_set t.tail last node)
            else loop ()
        | Some n ->
            ignore (SA.compare_and_set t.tail last n);
            loop ()
      else loop ()
    in
    loop ()

  let dequeue t ~tid:_ =
    let rec loop () =
      let first = SA.get t.head in
      let last = SA.get t.tail in
      let next = SA.get first.next in
      if first == SA.get t.head then
        if first == last then
          match next with
          | None -> None
          | Some n ->
              ignore (SA.compare_and_set t.tail last n);
              loop ()
        else
          match next with
          | None -> loop ()
          | Some n ->
              let v = n.value in
              SA.set t.head n;
              (* seeded bug: was [compare_and_set t.head first n] *)
              v
      else loop ()
    in
    loop ()

  let to_list t =
    let rec collect acc node =
      match SA.get node.next with
      | None -> List.rev acc
      | Some n -> (
          match n.value with
          | Some v -> collect (v :: acc) n
          | None -> collect acc n)
    in
    collect [] (SA.get t.head)
end

let ms_blind_ops : _ Ck.ops =
  {
    Ck.create = (fun ~num_threads -> Ms_blind.create ~num_threads);
    enqueue = (fun q ~tid v -> Ms_blind.enqueue q ~tid v);
    dequeue = (fun q ~tid -> Ms_blind.dequeue q ~tid);
    contents = Ms_blind.to_list;
  }

let shrunk_length (f : Ck.failure) =
  match f.Ck.shrunk with
  | Some s -> List.length s.Sh.forced
  | None -> Alcotest.fail "failure arrived unshrunk"

let test_seeded_blind_swing_caught () =
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:10_000 ~init:[ 1; 2 ]
      ~queue:ms_blind_ops
      ~scripts:[ [ `Deq ]; [ `Deq ] ]
      ()
  in
  match r.Ck.failure with
  | None -> Alcotest.fail "dropped CAS guard not caught"
  | Some f ->
      Alcotest.(check bool) "found within a handful of schedules" true
        (r.Ck.schedules <= 10);
      let len = shrunk_length f in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk trace <= 25 decisions (got %d)" len)
        true (len <= 25);
      Alcotest.(check bool) "conservation violation reported" true
        (contains_sub f.Ck.message "conservation")

let test_seeded_fast_deq_no_claim_caught () =
  (* The fast/slow handshake bug proper: fast-path dequeues that swing
     [head] without claiming [deq_tid] race a slow dequeue that already
     owns the sentinel into a duplicate delivery. Needs a fast dequeue
     concurrent with a claimed-but-unfinished slow dequeue, so the
     scenario gives fiber 0 two fast dequeues and starves fiber 1 into
     the slow path (max_failures = 1). *)
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:10_000 ~init:[ 1; 2 ]
      ~queue:
        (fps_ops ~fault:Wfq_core.Kp_queue_fps.Fast_deq_no_claim
           ~max_failures:1 ())
      ~scripts:[ [ `Deq; `Deq ]; [ `Deq ] ]
      ()
  in
  match r.Ck.failure with
  | None -> Alcotest.fail "Fast_deq_no_claim not caught"
  | Some f ->
      Alcotest.(check bool) "found quickly" true (r.Ck.schedules <= 100);
      let len = shrunk_length f in
      (* 34 before PR 4; the epoch-tagged claim protocol added one
         claim-word read per dequeue attempt, lengthening the minimal
         counterexample to 37 decisions. *)
      Alcotest.(check bool)
        (Printf.sprintf "shrunk trace <= 37 decisions (got %d)" len)
        true (len <= 37)

let test_fps_clean_baseline () =
  (* Same scenario shape, no fault: every trace linearizable and
     element-conserving. *)
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:50_000 ~init:[ 1; 2 ]
      ~queue:(fps_ops ~max_failures:1 ())
      ~scripts:[ [ `Deq ]; [ `Deq ] ]
      ()
  in
  (match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "clean queue failed: %a" Ck.pp_failure f);
  Alcotest.(check bool) "exhausted" true r.Ck.exhausted

(* ------------------------------------------------------------------ *)
(* PR 2 stale-helper regression, re-found systematically              *)
(* ------------------------------------------------------------------ *)

let test_stale_helper_refound_by_dpor () =
  (* PR 2's livelock (docs/FASTPATH.md): helpers helping at the caller's
     phase bound instead of the descriptor's own latch onto the helped
     thread's *next* operation. Originally found by random fuzz;
     here DPOR re-finds it by systematic search — no hand-pinned
     schedule — and the shrinker must do at least as well as the
     49-decision trace recorded in docs/FASTPATH.md. *)
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:250_000 ~step_limit:2_000
      ~init:[ 1 ]
      ~queue:
        (fps_ops ~fault:Wfq_core.Kp_queue_fps.Stale_helper_caller_phase
           ~max_failures:0 ())
      ~scripts:[ [ `Deq; `Enq 7 ]; [ `Deq ] ]
      ()
  in
  match r.Ck.failure with
  | None -> Alcotest.fail "stale-helper livelock not re-found by DPOR"
  | Some f ->
      Alcotest.(check bool) "manifests as starvation/livelock" true
        (contains_sub f.Ck.message "step limit");
      let len = shrunk_length f in
      (* docs/FASTPATH.md recorded 49 decisions before PR 4; the
         epoch-tagged claim protocol's extra claim-word read per
         help_deq iteration stretches the minimal trace to 51. *)
      Alcotest.(check bool)
        (Printf.sprintf
           "shrunk trace <= docs/FASTPATH.md's 51 decisions (got %d)" len)
        true (len <= 51)

let () =
  Alcotest.run "dpor"
    [
      ( "litmus",
        [
          Alcotest.test_case "store buffering" `Quick test_store_buffering;
          Alcotest.test_case "message passing" `Quick test_message_passing;
          Alcotest.test_case "independent fibers: C(a+b,a) -> 1" `Quick
            test_independent_identity;
          Alcotest.test_case "same-loc writers: C(k1+k2,k1)" `Quick
            test_same_loc_counts;
          Alcotest.test_case "violation parity with exhaustive" `Quick
            test_violation_parity;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "delta-debugs to minimal schedule" `Quick
            test_shrink_minimal;
          Alcotest.test_case "rejects passing schedules" `Quick
            test_shrink_rejects_passing_schedule;
        ] );
      ( "replay",
        [
          Alcotest.test_case "forced replay is deterministic" `Quick
            test_replay_determinism;
        ] );
      ( "kp-pinned",
        [
          Alcotest.test_case "41-access scenario: dpor yes, exhaustive no"
            `Slow test_pinned_kp_scenario;
        ] );
      ( "seeded-bugs",
        [
          Alcotest.test_case "dropped CAS guard (MS mutant)" `Quick
            test_seeded_blind_swing_caught;
          Alcotest.test_case "Fast_deq_no_claim (fps)" `Quick
            test_seeded_fast_deq_no_claim_caught;
          Alcotest.test_case "clean fps baseline" `Quick
            test_fps_clean_baseline;
          Alcotest.test_case "stale-helper livelock re-found" `Slow
            test_stale_helper_refound_by_dpor;
        ] );
    ]
