(* Segment_pool: unit tests for the pool mechanics (carve, reuse,
   clock, quarantine maturity, exact statistics), multi-domain
   conservation stress of the pooled queues, and the PR-4 DPOR
   calibration pair:

   - the recycle-ABA scenario run with quarantine OFF, so the epoch tag
     in the claim word is the only thing standing between a stalled
     dequeuer and a recycled sentinel — every trace must still be
     linearizable and element-conserving;
   - the same scenario with the [Untagged_pool_claim] fault seeded
     (recycle without bumping the incarnation): DPOR must find the
     duplicate delivery and the shrinker must produce a small
     counterexample.

   Together they certify that the tag is load-bearing, not decorative. *)

module A = Wfq_primitives.Real_atomic
module Pool = Wfq_primitives.Segment_pool.Make (A)
module SA = Wfq_sim.Sim_atomic
module Ck = Wfq_sim.Check
module Sh = Wfq_sim.Shrink
module Ms = Wfq_core.Ms_queue.Make (A)
module Kp = Wfq_core.Kp_queue.Make (A)
module Fps = Wfq_core.Kp_queue_fps.Make (A)
module FpsSim = Wfq_core.Kp_queue_fps.Make (SA)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* A minimal intrusive pool client                                    *)
(* ------------------------------------------------------------------ *)

type obj = { mutable lives : int; mutable link : obj; mutable stamp : int }

let fresh_obj () =
  let rec o = { lives = 0; link = o; stamp = 0 } in
  o

let obj_ops =
  {
    Wfq_primitives.Segment_pool.get_next = (fun o -> o.link);
    set_next = (fun o p -> o.link <- p);
    get_stamp = (fun o -> o.stamp);
    set_stamp = (fun o s -> o.stamp <- s);
  }

(* [reset] counts incarnations, standing in for the epoch bump a queue
   node performs. *)
let mk_pool ?(segment_size = 4) ?(quarantine = true) ?(num_threads = 1) ()
    =
  let clock = Pool.Clock.create ~num_threads in
  ( clock,
    Pool.create ~segment_size ~quarantine ~clock ~num_threads ~ops:obj_ops
      ~fresh:fresh_obj
      ~reset:(fun o -> o.lives <- o.lives + 1)
      () )

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_create_validation () =
  let clock = Pool.Clock.create ~num_threads:2 in
  let mk ?(segment_size = 4) ?(num_threads = 2) () =
    ignore
      (Pool.create ~segment_size ~clock ~num_threads ~ops:obj_ops
         ~fresh:fresh_obj ~reset:ignore ())
  in
  Alcotest.check_raises "segment_size 0"
    (Invalid_argument "Segment_pool.create: segment_size must be positive")
    (fun () -> mk ~segment_size:0 ());
  Alcotest.check_raises "num_threads 0"
    (Invalid_argument "Segment_pool.create: num_threads") (fun () ->
      mk ~num_threads:0 ());
  Alcotest.check_raises "more threads than the clock serves"
    (Invalid_argument "Segment_pool.create: more threads than the clock serves")
    (fun () -> mk ~num_threads:3 ());
  Alcotest.check_raises "clock num_threads 0"
    (Invalid_argument "Segment_pool.Clock.create: num_threads") (fun () ->
      ignore (Pool.Clock.create ~num_threads:0))

let test_carve_and_stats () =
  let _, p = mk_pool ~segment_size:4 () in
  Pool.enter p ~tid:0;
  let o = Pool.alloc p ~tid:0 in
  (* First alloc carves one segment and hands out a first-life object. *)
  Alcotest.(check int) "one segment" 1 (Pool.segments p);
  Alcotest.(check int) "rest of the segment pooled" 3 (Pool.pooled p);
  Alcotest.(check int) "fresh" 1 (Pool.allocated_fresh p);
  Alcotest.(check int) "no reuse yet" 0 (Pool.reused p);
  Alcotest.(check int) "reset ran" 1 o.lives;
  Pool.release p ~tid:0 o;
  Alcotest.(check int) "released object quarantined" 1 (Pool.quarantined p);
  Pool.exit p ~tid:0

let test_clock_advance () =
  let c = Pool.Clock.create ~num_threads:2 in
  Alcotest.(check int) "starts at 0" 0 (Pool.Clock.current c);
  Pool.Clock.enter c ~tid:0;
  Pool.Clock.enter c ~tid:1;
  (* Threads announced at the current epoch don't block one advance... *)
  Pool.Clock.try_advance c;
  Alcotest.(check int) "advanced once" 1 (Pool.Clock.current c);
  (* ...but they pin the epoch they are in: no second advance. *)
  Pool.Clock.try_advance c;
  Alcotest.(check int) "pinned by announcements" 1 (Pool.Clock.current c);
  Pool.Clock.exit c ~tid:0;
  Pool.Clock.try_advance c;
  Alcotest.(check int) "still pinned by tid 1" 1 (Pool.Clock.current c);
  Pool.Clock.exit c ~tid:1;
  Pool.Clock.try_advance c;
  Alcotest.(check int) "free to advance" 2 (Pool.Clock.current c)

let test_quarantine_maturity () =
  (* segment_size 1 forces every alloc through the slow path, so each
     alloc is also a promotion attempt. An object released in epoch e
     must not be handed out again until the global clock reaches e + 2,
     i.e. every thread has left the operation it was in at release
     time. *)
  let _, p = mk_pool ~segment_size:1 () in
  Pool.enter p ~tid:0;
  let a = Pool.alloc p ~tid:0 in
  Pool.release p ~tid:0 a;
  let b = Pool.alloc p ~tid:0 in
  Alcotest.(check bool) "too young to reuse" true (b != a);
  Pool.release p ~tid:0 b;
  Pool.exit p ~tid:0;
  (* One full operation boundary later the clock may advance once... *)
  Pool.enter p ~tid:0;
  let c = Pool.alloc p ~tid:0 in
  Alcotest.(check bool) "one epoch is not enough" true (c != a && c != b);
  Pool.release p ~tid:0 c;
  Pool.exit p ~tid:0;
  (* ...and after a second boundary the epoch-(e) retirees mature. The
     free list is LIFO over the promoted FIFO: a then b on the stack,
     so b comes back first. *)
  Pool.enter p ~tid:0;
  let d = Pool.alloc p ~tid:0 in
  Alcotest.(check bool) "matured retiree reused" true (d == b);
  Alcotest.(check int) "second life" 2 d.lives;
  let e = Pool.alloc p ~tid:0 in
  Alcotest.(check bool) "in FIFO retirement order" true (e == a);
  Alcotest.(check int) "c still quarantined" 1 (Pool.quarantined p);
  Pool.exit p ~tid:0

let test_no_quarantine_immediate_reuse () =
  let _, p = mk_pool ~segment_size:1 ~quarantine:false () in
  let a = Pool.alloc p ~tid:0 in
  Alcotest.(check int) "first life" 1 a.lives;
  Pool.release p ~tid:0 a;
  let b = Pool.alloc p ~tid:0 in
  Alcotest.(check bool) "immediately reusable" true (b == a);
  Alcotest.(check int) "reset on reuse" 2 b.lives;
  Alcotest.(check int) "exactly one reuse" 1 (Pool.reused p);
  Alcotest.(check int) "exactly one fresh" 1 (Pool.allocated_fresh p)

let test_steady_state_reuses () =
  (* Alternating alloc/release on one thread: after warm-up the pool
     must serve every request from recycled objects — fresh allocations
     stay bounded by the carved segments. *)
  let _, p = mk_pool ~segment_size:4 ~num_threads:1 () in
  for _ = 1 to 1_000 do
    Pool.enter p ~tid:0;
    let o = Pool.alloc p ~tid:0 in
    Pool.release p ~tid:0 o;
    Pool.exit p ~tid:0
  done;
  let reused = Pool.reused p and fresh = Pool.allocated_fresh p in
  Alcotest.(check int) "conservation of allocs" 1_000 (reused + fresh);
  Alcotest.(check bool)
    (Printf.sprintf "mostly reuses (fresh = %d)" fresh)
    true
    (fresh <= 4 * Pool.segments p && reused >= 900);
  Alcotest.(check int) "everything back in the pool" 1_000
    (Pool.reused p + Pool.allocated_fresh p)

(* ------------------------------------------------------------------ *)
(* Pooled queues under real domains: conservation + recycling         *)
(* ------------------------------------------------------------------ *)

type 'q pooled_queue = {
  make : num_threads:int -> 'q;
  enq : 'q -> tid:int -> int -> unit;
  deq : 'q -> tid:int -> int option;
  drain_deq : 'q -> tid:int -> int option;
  reuse_count : 'q -> int;
}

type packed = Q : string * 'q pooled_queue -> packed

let pooled_queues =
  [
    Q
      ( "ms pooled",
        {
          make = (fun ~num_threads -> Ms.create_pooled ~num_threads ());
          enq = (fun q ~tid v -> Ms.enqueue q ~tid v);
          deq = (fun q ~tid -> Ms.dequeue q ~tid);
          drain_deq = (fun q ~tid -> Ms.dequeue q ~tid);
          reuse_count =
            (fun q ->
              match Ms.pool_stats q with Some (r, _, _) -> r | None -> -1);
        } );
    Q
      ( "kp-opt12 pooled",
        {
          make =
            (fun ~num_threads ->
              Kp.create_with ~pool:true ~help:Wfq_core.Kp_queue.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Kp.enqueue q ~tid v);
          deq = (fun q ~tid -> Kp.dequeue q ~tid);
          drain_deq = (fun q ~tid -> Kp.dequeue q ~tid);
          reuse_count =
            (fun q ->
              match Kp.pool_stats q with
              | Some ((r, _, _), _) -> r
              | None -> -1);
        } );
    Q
      ( "kp-fps pooled",
        {
          make =
            (fun ~num_threads ->
              Fps.create_with ~pool:true
                ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
                ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
          enq = (fun q ~tid v -> Fps.enqueue q ~tid v);
          deq = (fun q ~tid -> Fps.dequeue q ~tid);
          drain_deq = (fun q ~tid -> Fps.dequeue q ~tid);
          reuse_count =
            (fun q ->
              match Fps.pool_stats q with
              | Some ((r, _, _), _) -> r
              | None -> -1);
        } );
  ]

let test_pooled_conservation (Q (name, q)) () =
  let domains = 4 and per_domain = 4_000 in
  let t = q.make ~num_threads:domains in
  let got = Array.make domains [] in
  let barrier = Atomic.make 0 in
  let worker tid () =
    Atomic.incr barrier;
    while Atomic.get barrier < domains do
      Domain.cpu_relax ()
    done;
    for i = 1 to per_domain do
      q.enq t ~tid ((tid * per_domain) + i);
      match q.deq t ~tid with
      | Some v -> got.(tid) <- v :: got.(tid)
      | None ->
          (* pairs on a queue seeded by the same thread: never empty *)
          Alcotest.failf "%s: empty queue in pairs workload" name
    done
  in
  let ds = Array.init domains (fun tid -> Domain.spawn (worker tid)) in
  Array.iter Domain.join ds;
  let rec drain acc =
    match q.drain_deq t ~tid:0 with
    | Some v -> drain (v :: acc)
    | None -> acc
  in
  let consumed = drain (Array.to_list got |> List.concat) in
  let expected =
    List.init domains (fun tid ->
        List.init per_domain (fun i -> (tid * per_domain) + i + 1))
    |> List.concat |> List.sort compare
  in
  Alcotest.(check (list int))
    "every value delivered exactly once" expected
    (List.sort compare consumed);
  let reused = q.reuse_count t in
  (* Quarantine and carve batching keep some nodes parked, but a clear
     majority of a domain's allocations must be served by recycling. *)
  Alcotest.(check bool)
    (Printf.sprintf "nodes recycled (reused = %d)" reused)
    true
    (reused > domains * per_domain / 4)

(* ------------------------------------------------------------------ *)
(* DPOR: the recycle-ABA suite                                        *)
(*                                                                    *)
(* Recycling is defended by two independent mechanisms, and the tests  *)
(* separate them deliberately:                                        *)
(*                                                                    *)
(* - the epoch TAG defends the claim CAS. Proven in isolation by a    *)
(*   claim-protocol litmus over a real pool: the tagged run is clean   *)
(*   on every trace, the untagged one double-claims across            *)
(*   incarnations.                                                    *)
(* - QUARANTINE defends the pointer CASes, which the tag cannot (an   *)
(*   expected head/next value is a bare reference). Proven by a       *)
(*   queue-level negative: with quarantine off, DPOR finds a          *)
(*   conservation violation even with tags intact — the helper        *)
(*   releases the old sentinel while the claim owner still holds a    *)
(*   head-CAS expectation on it, the sentinel is recycled back into   *)
(*   the list, and the stale CAS rolls head backwards.                *)
(* ------------------------------------------------------------------ *)

module NSim = Wfq_core.Kp_internals.Make (SA)
module PoolSim = Wfq_primitives.Segment_pool.Make (SA)
module E = Wfq_sim.Explore

(* The claim-protocol litmus. Fiber 1 plays the fast dequeuer: claim
   the node, retire it, and re-allocate it (segment_size 1 + no
   quarantine = immediate recycling). Fiber 0 plays the stalled helper:
   it captured the claim word in the node's first incarnation and CASes
   against it late. The protocol invariant is that claims on distinct
   incarnations cannot both succeed. *)
let claim_litmus ~reset () =
  let clock = PoolSim.Clock.create ~num_threads:2 in
  let p =
    PoolSim.create ~segment_size:1 ~quarantine:false ~clock ~num_threads:2
      ~ops:NSim.pool_ops ~fresh:NSim.make_sentinel ~reset ()
  in
  (* First-life node minted directly ([reset] runs sim-atomic accesses,
     so the pool can only be driven from inside a fiber). Its claim word
     is statically known — unclaimed at epoch 0 packs to the raw
     [no_tid] — so fiber 0's capture is pinned to incarnation 0 and a
     late success is a cross-incarnation claim by construction. *)
  let n = NSim.make_sentinel () in
  let observed0 = NSim.no_tid in
  let ok0 = ref false and ok1 = ref false in
  let f0 () = ok0 := NSim.try_claim n ~observed:observed0 ~tid:0 in
  let f1 () =
    ok1 := NSim.try_claim n ~observed:(SA.get n.NSim.deq_tid) ~tid:1;
    PoolSim.release p ~tid:1 n;
    ignore (PoolSim.alloc p ~tid:1)
  in
  (* Both claims succeeding means fiber 0's incarnation-0 word claimed
     the node after fiber 1 had already claimed *and recycled* it. *)
  let check (_ : Wfq_sim.Scheduler.result) =
    if !ok0 && !ok1 then Error "double claim across incarnations" else Ok ()
  in
  ([| f0; f1 |], check)

let test_claim_tag_litmus_holds () =
  let r = E.dpor ~make:(claim_litmus ~reset:NSim.recycle) () in
  (match r.E.failure with
  | None -> ()
  | Some (_, msg) -> Alcotest.failf "tagged claim protocol failed: %s" msg);
  Alcotest.(check bool) "exhausted" true r.E.exhausted

let test_claim_tag_litmus_untagged_caught () =
  let r = E.dpor ~make:(claim_litmus ~reset:NSim.recycle_untagged) () in
  match r.E.failure with
  | None -> Alcotest.fail "untagged recycle not caught by the litmus"
  | Some (_, msg) ->
      Alcotest.(check bool) "double claim reported" true
        (contains_sub msg "double claim")

let fps_pooled_ops ?fault ~pool_quarantine ~max_failures () : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads ->
        FpsSim.create_with ?fault ~max_failures ~pool:true ~pool_segment:1
          ~pool_quarantine ~help:Wfq_core.Kp_queue_fps.Help_one_cyclic
          ~phase:Wfq_core.Kp_queue_fps.Phase_counter ~num_threads ());
    enqueue = (fun q ~tid v -> FpsSim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> FpsSim.dequeue q ~tid);
    contents = FpsSim.to_list;
  }

(* The recycle-ABA shape at queue level. With [pool_segment = 1] and
   quarantine off, the sentinel released by fiber 1's first dequeue is
   recycled immediately by its enqueue and re-enters the list; fiber
   1's second dequeue then swings [head] back onto the recycled object
   while fiber 0 may still hold stale references into the object's
   first life. *)
let recycle_scripts : Ck.script list = [ [ `Deq ]; [ `Deq; `Enq 9; `Deq ] ]

let test_unquarantined_pointer_aba_caught () =
  (* Negative control: tags intact, quarantine disabled. The tag cannot
     protect the head CAS, so DPOR must find the rollback — this is the
     witness that quarantine is load-bearing, not belt-and-braces. *)
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:500_000 ~init:[ 1 ]
      ~queue:(fps_pooled_ops ~pool_quarantine:false ~max_failures:64 ())
      ~scripts:recycle_scripts ()
  in
  match r.Ck.failure with
  | None -> Alcotest.fail "unquarantined reuse not caught"
  | Some f ->
      Alcotest.(check bool) "conservation violation" true
        (contains_sub f.Ck.message "conservation");
      let len =
        match f.Ck.shrunk with
        | Some s -> List.length s.Sh.forced
        | None -> Alcotest.fail "failure arrived unshrunk"
      in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to a small counterexample (got %d)" len)
        true (len <= 50)

let test_recycle_aba_untagged_caught () =
  (* The seeded fault: recycling skips the incarnation bump
     ([Untagged_pool_claim]), so on top of the pointer hazard a stalled
     claim CAS can succeed against the recycled sentinel. The model
     checker must find and shrink a conservation violation. *)
  let r =
    Ck.run ~mode:Ck.Dpor ~max_schedules:500_000 ~init:[ 1 ]
      ~queue:
        (fps_pooled_ops ~fault:Wfq_core.Kp_queue_fps.Untagged_pool_claim
           ~pool_quarantine:false ~max_failures:64 ())
      ~scripts:recycle_scripts ()
  in
  match r.Ck.failure with
  | None -> Alcotest.fail "Untagged_pool_claim not caught"
  | Some f ->
      Alcotest.(check bool) "violation, not a crash" true
        (contains_sub f.Ck.message "conservation"
        || contains_sub f.Ck.message "linearizable");
      let len =
        match f.Ck.shrunk with
        | Some s -> List.length s.Sh.forced
        | None -> Alcotest.fail "failure arrived unshrunk"
      in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to a small counterexample (got %d)" len)
        true (len <= 60)

let test_pooled_fast_path_clean () =
  (* The production configuration (quarantine on) over the same
     recycle-heavy scenario: every explored schedule must stay
     linearizable and element-conserving. Preemption-bounded: the clock
     announcements make full DPOR impractical here, and 3 preemptions
     is past the depth at which the unquarantined variant fails. *)
  let r =
    Ck.run ~mode:(Ck.Preemption_bounded 3) ~max_schedules:500_000
      ~init:[ 1 ]
      ~queue:(fps_pooled_ops ~pool_quarantine:true ~max_failures:64 ())
      ~scripts:recycle_scripts ()
  in
  (match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "pooled fast path failed: %a" Ck.pp_failure f);
  Alcotest.(check bool) "bounded space exhausted" true r.Ck.exhausted

let test_desc_recycling_exactly_once () =
  (* max_failures 0: every operation takes the slow path, so descriptors
     are published, displaced, retired and recycled on every schedule —
     with quarantine on, through the descriptor pool. Exactly-once
     delivery must survive all of it (same preemption bound as above). *)
  let r =
    Ck.run ~mode:(Ck.Preemption_bounded 3) ~max_schedules:500_000
      ~init:[ 1 ]
      ~queue:(fps_pooled_ops ~pool_quarantine:true ~max_failures:0 ())
      ~scripts:[ [ `Deq ]; [ `Enq 2 ] ]
      ()
  in
  (match r.Ck.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "pooled slow path failed: %a" Ck.pp_failure f);
  Alcotest.(check bool) "bounded space exhausted" true r.Ck.exhausted

let () =
  Alcotest.run "pool"
    [
      ( "segment-pool",
        [
          Alcotest.test_case "create validation" `Quick
            test_create_validation;
          Alcotest.test_case "carve and stats" `Quick test_carve_and_stats;
          Alcotest.test_case "clock advance" `Quick test_clock_advance;
          Alcotest.test_case "quarantine maturity" `Quick
            test_quarantine_maturity;
          Alcotest.test_case "no quarantine: immediate reuse" `Quick
            test_no_quarantine_immediate_reuse;
          Alcotest.test_case "steady state reuses" `Quick
            test_steady_state_reuses;
        ] );
      ( "pooled-queues",
        List.map
          (fun (Q (name, _) as q) ->
            Alcotest.test_case name `Quick (test_pooled_conservation q))
          pooled_queues );
      ( "dpor-recycle",
        [
          Alcotest.test_case "claim tag litmus: tagged holds" `Quick
            test_claim_tag_litmus_holds;
          Alcotest.test_case "claim tag litmus: untagged caught" `Quick
            test_claim_tag_litmus_untagged_caught;
          Alcotest.test_case "unquarantined pointer ABA caught" `Quick
            test_unquarantined_pointer_aba_caught;
          Alcotest.test_case "Untagged_pool_claim caught and shrunk" `Quick
            test_recycle_aba_untagged_caught;
          Alcotest.test_case "pooled fast path clean (pb=3)" `Quick
            test_pooled_fast_path_clean;
          Alcotest.test_case "descriptor recycling exactly-once (pb=3)"
            `Quick test_desc_recycling_exactly_once;
        ] );
    ]
