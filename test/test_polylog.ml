(* Polylog tournament-tree queue (Wfq_core.Polylog_queue): sequential
   and batch semantics, white-box probes, real-domain stress, and the
   model-checked litmuses — DPOR linearizability, the seeded
   No_double_refresh fault, and the certified step bound whose growth
   with p the crossover bench compares against KP. *)

module A = Wfq_primitives.Real_atomic
module P = Wfq_core.Polylog_queue.Make (A)
module SA = Wfq_sim.Sim_atomic
module PSim = Wfq_core.Polylog_queue.Make (SA)
module Ck = Wfq_sim.Check

(* ------------------------------------------------------------------ *)
(* Sequential semantics *)
(* ------------------------------------------------------------------ *)

let test_fifo_basics () =
  let q = P.create ~num_threads:1 () in
  Alcotest.(check bool) "fresh empty" true (P.is_empty q);
  Alcotest.(check (option int)) "deq on empty" None (P.dequeue q ~tid:0);
  List.iter (P.enqueue q ~tid:0) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length 5" 5 (P.length q);
  Alcotest.(check (list int)) "contents" [ 1; 2; 3; 4; 5 ] (P.to_list q);
  Alcotest.(check (option int)) "deq 1" (Some 1) (P.dequeue q ~tid:0);
  P.enqueue q ~tid:0 6;
  Alcotest.(check (list int)) "mixed" [ 2; 3; 4; 5; 6 ] (P.to_list q);
  for i = 2 to 6 do
    Alcotest.(check (option int)) "drain" (Some i) (P.dequeue q ~tid:0)
  done;
  Alcotest.(check (option int)) "empty again" None (P.dequeue q ~tid:0);
  match P.check_quiescent_invariants q with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* Random op sequences across all tids must match Stdlib.Queue. *)
let test_differential () =
  let threads = 3 in
  let q = P.create ~num_threads:threads () in
  let model = Queue.create () in
  let rng = Wfq_primitives.Rng.create ~seed:7 in
  for i = 1 to 3_000 do
    let tid = Wfq_primitives.Rng.below rng threads in
    if Wfq_primitives.Rng.bool rng then begin
      P.enqueue q ~tid i;
      Queue.push i model
    end
    else if P.dequeue q ~tid <> Queue.take_opt model then
      Alcotest.failf "diverged from model at op %d" i
  done;
  Alcotest.(check (list int))
    "final contents"
    (List.of_seq (Queue.to_seq model))
    (P.to_list q);
  match P.check_quiescent_invariants q with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_batch_ops () =
  let q = P.create ~num_threads:2 () in
  P.enqueue_batch q ~tid:0 [ 1; 2; 3 ];
  P.enqueue_batch q ~tid:1 [ 4; 5 ];
  Alcotest.(check int) "5 queued" 5 (P.length q);
  Alcotest.(check (list int)) "batch order" [ 1; 2; 3 ] (P.dequeue_batch q ~tid:1 ~n:3);
  Alcotest.(check (list int)) "short batch" [ 4; 5 ] (P.dequeue_batch q ~tid:0 ~n:10);
  Alcotest.(check (list int)) "empty batch" [] (P.dequeue_batch q ~tid:0 ~n:4);
  P.enqueue_batch q ~tid:0 [];
  Alcotest.(check bool) "noop empty batch" true (P.is_empty q);
  Alcotest.check_raises "negative n" (Invalid_argument "Polylog_queue.dequeue_batch: n")
    (fun () -> ignore (P.dequeue_batch q ~tid:0 ~n:(-1)));
  match P.check_quiescent_invariants q with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_generic_payload () =
  let q = P.create ~num_threads:1 () in
  P.enqueue q ~tid:0 "alpha";
  P.enqueue q ~tid:0 "beta";
  Alcotest.(check (option string)) "string" (Some "alpha") (P.dequeue q ~tid:0);
  Alcotest.(check (option string)) "string 2" (Some "beta") (P.dequeue q ~tid:0)

let test_probes () =
  let q = P.create ~num_threads:3 () in
  Alcotest.(check int) "leaves = next pow2" 4 (P.Probe.leaves q);
  Alcotest.(check int) "no root blocks yet" 0 (P.Probe.root_blocks q);
  P.enqueue q ~tid:2 1;
  Alcotest.(check bool) "root advanced" true (P.Probe.root_blocks q >= 1);
  Alcotest.(check int) "tid 2 announced" 1 (P.Probe.leaf_blocks q ~tid:2);
  Alcotest.(check int) "tid 0 idle" 0 (P.Probe.leaf_blocks q ~tid:0);
  Alcotest.(check int) "root size" 1 (P.Probe.root_size q)

(* Many empty dequeues then refill: the null-dequeue accounting (deqs
   counted in sum_deq but not sum_removed) must not corrupt later
   indexes. *)
let test_empty_runs () =
  let q = P.create ~num_threads:2 () in
  for _ = 1 to 20 do
    Alcotest.(check (option int)) "still empty" None (P.dequeue q ~tid:1)
  done;
  P.enqueue q ~tid:0 42;
  Alcotest.(check (option int)) "revived" (Some 42) (P.dequeue q ~tid:1);
  match P.check_quiescent_invariants q with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Real domains *)
(* ------------------------------------------------------------------ *)

let test_domains_pairs () =
  let threads = 4 and iters = 2_000 in
  let q = P.create ~num_threads:threads () in
  let empties = Atomic.make 0 in
  let ds =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              P.enqueue q ~tid ((tid * iters) + i);
              match P.dequeue q ~tid with
              | Some _ -> ()
              | None -> Atomic.incr empties
            done))
  in
  List.iter Domain.join ds;
  (* Strict FIFO: a dequeue that follows the same thread's enqueue can
     never observe empty. *)
  Alcotest.(check int) "no empties in pairs" 0 (Atomic.get empties);
  Alcotest.(check int) "drained" 0 (P.length q);
  match P.check_quiescent_invariants q with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_domains_batch () =
  let threads = 4 and rounds = 300 and k = 8 in
  let q = P.create ~num_threads:threads () in
  let got = Array.make threads 0 in
  let ds =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for r = 1 to rounds do
              P.enqueue_batch q ~tid
                (List.init k (fun i -> (tid * 1_000_000) + (r * k) + i));
              got.(tid) <-
                got.(tid) + List.length (P.dequeue_batch q ~tid ~n:k)
            done))
  in
  List.iter Domain.join ds;
  let total = Array.fold_left ( + ) 0 got in
  Alcotest.(check int) "conservation"
    (threads * rounds * k)
    (total + P.length q);
  match P.check_quiescent_invariants q with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Model checking *)
(* ------------------------------------------------------------------ *)

let sim_ops ?fault () : _ Ck.ops =
  {
    Ck.create =
      (fun ~num_threads -> PSim.create_with ?fault ~num_threads ());
    enqueue = (fun q ~tid v -> PSim.enqueue q ~tid v);
    dequeue = (fun q ~tid -> PSim.dequeue q ~tid);
    contents = PSim.to_list;
  }

let run_litmus ?fault ?init ?mode ?(max_schedules = 400_000) scripts =
  Ck.run ?mode ~max_schedules ?init
    ~enqueue_batch:(fun q ~tid vs -> PSim.enqueue_batch q ~tid vs)
    ~dequeue_batch:(fun q ~tid ~n -> PSim.dequeue_batch q ~tid ~n)
    ~extra_check:PSim.check_quiescent_invariants
    ~queue:(sim_ops ?fault ()) ~scripts ()

let expect_clean name (r : Ck.report) =
  (match r.Ck.failure with
  | None -> ()
  | Some f -> Alcotest.failf "%s: %a" name Ck.pp_failure f);
  Alcotest.(check bool) (name ^ ": exhausted") true r.Ck.exhausted

(* Leaf announce / root merge race: two threads, enq vs deq. *)
let test_dpor_enq_deq () =
  expect_clean "enq|deq" (run_litmus [ [ `Enq 1 ]; [ `Deq ] ])

(* Root hand-off: both threads contend on the same root slot with
   mixed programs. Four ~50-step ops put full DPOR past 400k traces, so
   this one certifies under a preemption budget instead (the same
   fallback the Help_all KP variants use). *)
let test_dpor_pairs () =
  expect_clean "pairs"
    (run_litmus ~mode:(Ck.Preemption_bounded 2)
       [ [ `Enq 1; `Deq ]; [ `Enq 2; `Deq ] ])

(* Dequeue-index resolution race: dequeues racing each other over a
   pre-filled queue must resolve distinct indexes. *)
let test_dpor_deq_deq () =
  expect_clean "deq|deq" (run_litmus ~init:[ 7 ] [ [ `Deq ]; [ `Deq ] ])

(* Batch blocks through the same tree: atomic batch enqueue vs batch
   dequeue. *)
let test_dpor_batch () =
  expect_clean "batch"
    (run_litmus [ [ `Enq_batch [ 1; 2 ] ]; [ `Deq_batch 2 ] ])

(* The seeded fault: single refresh per level breaks the double-refresh
   lemma, so some schedule leaves an announced block unmerged and the
   op spins for its root position — the checker must report it (as a
   livelock / step-limit hit), proving the litmus has teeth. *)
let test_fault_caught () =
  let r =
    run_litmus ~fault:Wfq_core.Polylog_queue.No_double_refresh
      ~max_schedules:400_000
      [ [ `Enq 1 ]; [ `Enq 2; `Deq ] ]
  in
  match r.Ck.failure with
  | Some _ -> ()
  | None ->
      Alcotest.fail "No_double_refresh survived every explored schedule"

(* Wait-freedom certification at p = 2 (the crossover bench extends
   this to p = 3, 4 and compares growth against KP). *)
let certified_step_bound = 160

let test_certified () =
  match
    Ck.certify ~mode:Ck.Dpor ~max_schedules:400_000
      ~bound:certified_step_bound ~queue:(sim_ops ())
      ~scripts:[ [ `Enq 1 ]; [ `Deq ] ]
      ()
  with
  | Error m -> Alcotest.fail m
  | Ok c ->
      Alcotest.(check bool)
        (Printf.sprintf "observed max %d within certified bound %d"
           c.Ck.observed_bound certified_step_bound)
        true
        (c.Ck.observed_bound <= certified_step_bound)

let () =
  Alcotest.run "polylog"
    [
      ( "sequential",
        [
          Alcotest.test_case "fifo basics" `Quick test_fifo_basics;
          Alcotest.test_case "differential vs model" `Quick test_differential;
          Alcotest.test_case "batch ops" `Quick test_batch_ops;
          Alcotest.test_case "generic payload" `Quick test_generic_payload;
          Alcotest.test_case "probes" `Quick test_probes;
          Alcotest.test_case "empty runs" `Quick test_empty_runs;
        ] );
      ( "domains",
        [
          Alcotest.test_case "pairs stress" `Quick test_domains_pairs;
          Alcotest.test_case "batch conservation" `Quick test_domains_batch;
        ] );
      ( "model-checked",
        [
          Alcotest.test_case "enq|deq litmus" `Quick test_dpor_enq_deq;
          Alcotest.test_case "pairs litmus" `Quick test_dpor_pairs;
          Alcotest.test_case "deq|deq litmus" `Quick test_dpor_deq_deq;
          Alcotest.test_case "batch litmus" `Quick test_dpor_batch;
          Alcotest.test_case "seeded fault caught" `Quick test_fault_caught;
          Alcotest.test_case "step bound certified" `Quick test_certified;
        ] );
    ]
