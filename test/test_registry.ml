(* Tests for the thread-ID registry (long-lived renaming, §3.3). *)

module R = Wfq_registry.Registry

let test_acquire_all () =
  let r = R.create ~capacity:4 in
  let ids = List.init 4 (fun _ -> R.acquire r) in
  Alcotest.(check (list int)) "distinct ids in order" [ 0; 1; 2; 3 ] ids;
  Alcotest.(check int) "all held" 4 (R.held r);
  Alcotest.check_raises "fifth acquire exhausted" R.Exhausted (fun () ->
      ignore (R.acquire r))

let test_release_reacquire () =
  let r = R.create ~capacity:3 in
  let a = R.acquire r in
  let b = R.acquire r in
  R.release r a;
  Alcotest.(check int) "one released" 1 (R.held r);
  let c = R.acquire r in
  Alcotest.(check int) "released slot reused" a c;
  R.release r b;
  R.release r c;
  Alcotest.(check int) "all free" 0 (R.held r)

let test_release_validation () =
  let r = R.create ~capacity:2 in
  Alcotest.check_raises "releasing unheld id"
    (Invalid_argument "Registry.release: tid not held") (fun () ->
      R.release r 0);
  Alcotest.check_raises "bad tid"
    (Invalid_argument "Registry.release: bad tid") (fun () -> R.release r 9)

let test_with_tid () =
  let r = R.create ~capacity:1 in
  let v = R.with_tid r (fun tid -> tid + 100) in
  Alcotest.(check int) "slot 0 granted" 100 v;
  Alcotest.(check int) "released after use" 0 (R.held r);
  (* released even on exception *)
  (try R.with_tid r (fun _ -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "released on exception" 0 (R.held r)

let test_concurrent_unique_ids () =
  (* Domains hammer acquire/release; at no point may two domains hold the
     same id — detected via a per-slot owner array. *)
  let capacity = 4 and domains = 8 and rounds = 2_000 in
  let r = R.create ~capacity in
  let owners = Array.init capacity (fun _ -> Atomic.make (-1)) in
  let violations = Atomic.make 0 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              match R.acquire r with
              | tid ->
                  if not (Atomic.compare_and_set owners.(tid) (-1) d) then
                    Atomic.incr violations;
                  Atomic.set owners.(tid) (-1);
                  R.release r tid
              | exception R.Exhausted ->
                  (* More domains than slots: legitimate under load. *)
                  Domain.cpu_relax ()
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no id ever shared" 0 (Atomic.get violations);
  Alcotest.(check int) "all released at quiescence" 0 (R.held r)

let test_registry_with_queue () =
  (* End-to-end: dynamic "threads" borrow tids to use the KP queue. *)
  let module Kp = Wfq_core.Kp_queue.Make (Wfq_primitives.Real_atomic) in
  let capacity = 4 in
  let r = R.create ~capacity in
  let q = Kp.create ~num_threads:capacity () in
  let total = Atomic.make 0 in
  let domains =
    List.init 8 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 500 do
              let did =
                let rec get () =
                  match R.acquire r with
                  | tid -> tid
                  | exception R.Exhausted ->
                      Domain.cpu_relax ();
                      get ()
                in
                get ()
              in
              Kp.enqueue q ~tid:did ((d * 1000) + i);
              (match Kp.dequeue q ~tid:did with
              | Some _ -> Atomic.incr total
              | None -> failwith "impossible empty in pairs pattern");
              R.release r did
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "every dequeue succeeded" 4000 (Atomic.get total);
  Alcotest.(check int) "queue drained" 0 (Kp.length q)

let test_exhausted_across_domains () =
  (* Main holds every slot; concurrent acquirers must all observe
     Exhausted (there is no slot they could legitimately get), and the
     registry must be fully usable again after the release. *)
  let capacity = 3 in
  let r = R.create ~capacity in
  let held = List.init capacity (fun _ -> R.acquire r) in
  let exhausted = Atomic.make 0 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 200 do
              match R.acquire r with
              | tid ->
                  Alcotest.fail
                    (Printf.sprintf "acquired %d from a full registry" tid)
              | exception R.Exhausted -> Atomic.incr exhausted
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "every attempt exhausted" 800 (Atomic.get exhausted);
  List.iter (R.release r) held;
  Alcotest.(check int) "all free again" 0 (R.held r);
  let again = List.init capacity (fun _ -> R.acquire r) in
  Alcotest.(check int) "usable after churn" capacity (List.length again);
  List.iter (R.release r) again

let test_with_tid_exception_churn () =
  (* Domains hammer [with_tid] with bodies that raise half the time.
     The bracket must release on both paths: no slot may ever be
     observed double-granted, and everything is free at quiescence. *)
  let capacity = 4 and domains = 8 and rounds = 1_000 in
  let r = R.create ~capacity in
  let owners = Array.init capacity (fun _ -> Atomic.make (-1)) in
  let violations = Atomic.make 0 in
  let raised = Atomic.make 0 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to rounds do
              match
                R.with_tid r (fun tid ->
                    if not (Atomic.compare_and_set owners.(tid) (-1) d) then
                      Atomic.incr violations;
                    Atomic.set owners.(tid) (-1);
                    if i land 1 = 0 then failwith "boom")
              with
              | () -> ()
              | exception Failure _ -> Atomic.incr raised
              | exception R.Exhausted -> Domain.cpu_relax ()
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no slot double-granted" 0 (Atomic.get violations);
  Alcotest.(check bool) "exceptions propagated" true (Atomic.get raised > 0);
  Alcotest.(check int) "all released at quiescence" 0 (R.held r);
  (* Every slot is genuinely reusable. *)
  let ids = List.sort compare (List.init capacity (fun _ -> R.acquire r)) in
  Alcotest.(check (list int)) "full capacity intact"
    (List.init capacity Fun.id) ids

(* Model-based qcheck: random acquire/release sequences tracked against
   a set model; held counts and slot reuse must agree. *)
let registry_model =
  QCheck2.Test.make ~name:"acquire/release matches set model" ~count:300
    QCheck2.Gen.(list_size (int_bound 60) (int_bound 4))
    (fun cmds ->
      let r = R.create ~capacity:3 in
      let held = Hashtbl.create 8 in
      List.for_all
        (fun cmd ->
          if cmd < 3 then (
            (* try to acquire *)
            match R.acquire r with
            | tid ->
                if Hashtbl.mem held tid then false (* double grant! *)
                else (
                  Hashtbl.add held tid ();
                  true)
            | exception R.Exhausted -> Hashtbl.length held = 3)
          else
            (* release one held id, if any *)
            match Hashtbl.fold (fun k () _ -> Some k) held None with
            | Some tid ->
                Hashtbl.remove held tid;
                R.release r tid;
                true
            | None -> true)
        cmds
      && R.held r = Hashtbl.length held)

let () =
  Alcotest.run "registry"
    [
      ( "sequential",
        [
          Alcotest.test_case "acquire to exhaustion" `Quick test_acquire_all;
          Alcotest.test_case "release and reacquire" `Quick
            test_release_reacquire;
          Alcotest.test_case "release validation" `Quick
            test_release_validation;
          Alcotest.test_case "with_tid bracket" `Quick test_with_tid;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "ids never shared across domains" `Quick
            test_concurrent_unique_ids;
          Alcotest.test_case "dynamic threads drive the KP queue" `Quick
            test_registry_with_queue;
          Alcotest.test_case "full registry exhausts every acquirer" `Quick
            test_exhausted_across_domains;
          Alcotest.test_case "with_tid releases under exception churn"
            `Quick test_with_tid_exception_churn;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest registry_model ]);
    ]
